// Crash-burst helper for wal_fault_test: opens a durable engine with
// fsync=always and appends statements as fast as it can, acknowledging
// each durably-committed id to a separately-fsync'd ack file.  The parent
// test SIGKILLs this process mid-burst; the contract under test is that
// every acknowledged id survives recovery.
//
// Usage: wal_burst_child <data_dir> <ack_file>
//
// Exit codes: 0 burst completed (the parent was too slow to kill us —
// still a valid run), 1 setup error.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "engine/engine.h"

namespace {

// Statements the burst writes before giving up on being killed.
constexpr int kBurstStatements = 200000;

bool IgnorableCreateError(const caldb::Status& status) {
  // On a re-run the tables already exist (recovered from disk).
  return status.code() == caldb::StatusCode::kAlreadyExists;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: wal_burst_child <data_dir> <ack_file>\n");
    return 1;
  }
  const std::string data_dir = argv[1];
  const std::string ack_path = argv[2];

  caldb::EngineOptions opts;
  opts.epoch = caldb::CivilDate{1993, 1, 1};
  opts.pool_threads = 1;
  opts.data_dir = data_dir;
  // Durable-before-acknowledge: an id reaches the ack file only after its
  // statement's WAL frame is fsync'd.
  opts.fsync_policy = caldb::storage::FsyncPolicy::kAlways;
  auto engine = caldb::Engine::Create(opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  for (const char* stmt : {"create table BURST (n int)",
                           "create table FIRES (day int)"}) {
    caldb::Result<caldb::QueryResult> r = (*engine)->Execute(stmt);
    if (!r.ok() && !IgnorableCreateError(r.status())) {
      std::fprintf(stderr, "create: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  // One weekly rule so the kill also interrupts rule firings: recovery
  // must end with exactly one FIRES row per Tuesday passed.
  caldb::TemporalAction action;
  action.command = "append FIRES (day = fire_day())";
  caldb::Result<int64_t> declared =
      (*engine)->DeclareRule("tuesday", "[2]/DAYS:during:WEEKS", action);
  if (!declared.ok() &&
      declared.status().code() != caldb::StatusCode::kAlreadyExists) {
    std::fprintf(stderr, "declare: %s\n", declared.status().ToString().c_str());
    return 1;
  }

  int ack_fd = ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) {
    std::perror("open ack");
    return 1;
  }

  // Resume numbering past any earlier run, so ids stay unique across
  // kill/restart cycles.
  int64_t start = 0;
  {
    caldb::Result<caldb::QueryResult> r =
        (*engine)->Execute("retrieve (b.n) from b in BURST");
    if (r.ok()) {
      for (const caldb::Row& row : r->rows) {
        auto n = row[0].AsInt();
        if (n.ok() && *n >= start) start = *n + 1;
      }
    }
  }

  for (int64_t i = start; i < start + kBurstStatements; ++i) {
    caldb::Result<caldb::QueryResult> r = (*engine)->Execute(
        "append BURST (n = " + std::to_string(i) + ")");
    if (!r.ok()) {
      std::fprintf(stderr, "append %lld: %s\n", static_cast<long long>(i),
                   r.status().ToString().c_str());
      return 1;
    }
    std::string line = std::to_string(i) + "\n";
    if (::write(ack_fd, line.data(), line.size()) !=
            static_cast<ssize_t>(line.size()) ||
        ::fsync(ack_fd) != 0) {
      std::perror("ack");
      return 1;
    }
    // Roll the virtual clock forward every few statements so rule
    // firings interleave with the burst.
    if (i % 16 == 15) {
      caldb::Status st = (*engine)->AdvanceTo((*engine)->Now() + 1);
      if (!st.ok()) {
        std::fprintf(stderr, "advance: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  ::close(ack_fd);
  return 0;
}
