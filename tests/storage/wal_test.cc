// WAL frame format: round trips, torn-tail detection, truncation.

#include "storage/wal.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "storage/codec.h"

namespace caldb::storage {
namespace {

std::string TempWalPath(const char* name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

WalRecord MakeRecord(WalRecordType type, std::string a) {
  WalRecord r;
  r.type = type;
  r.a = std::move(a);
  return r;
}

TEST(WalRecord, EncodeDecodeRoundTripsEveryField) {
  WalRecord r;
  r.type = WalRecordType::kDeclareRule;
  r.lsn = 0x0102030405060708ull;
  r.a = "payday";
  r.b = "last Friday of each month";
  r.c = "append to LOG values (1)";
  r.d = "retrieve COUNTER where n > 0";
  r.day = -12345;
  Result<WalRecord> back = WalRecord::Decode(r.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->type, r.type);
  EXPECT_EQ(back->lsn, r.lsn);
  EXPECT_EQ(back->a, r.a);
  EXPECT_EQ(back->b, r.b);
  EXPECT_EQ(back->c, r.c);
  EXPECT_EQ(back->d, r.d);
  EXPECT_EQ(back->day, r.day);
}

TEST(WalRecord, DecodeRejectsTruncatedPayload) {
  WalRecord r = MakeRecord(WalRecordType::kStatement, "append to T values (1)");
  std::string payload = r.Encode();
  for (size_t cut : {size_t{0}, size_t{1}, payload.size() / 2, payload.size() - 1}) {
    EXPECT_FALSE(WalRecord::Decode(payload.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(WalWriter, AppendsAreReadBackInOrderWithSequentialLsns) {
  std::string path = TempWalPath("wal_roundtrip.wal");
  auto writer = WalWriter::Open(path, {FsyncPolicy::kAlways, 1}, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 0; i < 20; ++i) {
    Result<uint64_t> lsn = (*writer)->Append(
        MakeRecord(WalRecordType::kStatement, "stmt " + std::to_string(i)));
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ((*writer)->last_lsn(), 20u);
  writer->reset();  // close before reading

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(read->records[i].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(read->records[i].a, "stmt " + std::to_string(i));
  }
}

TEST(WalWriter, LsnCounterSurvivesResetAfterCheckpoint) {
  std::string path = TempWalPath("wal_reset.wal");
  auto writer = WalWriter::Open(path, {FsyncPolicy::kOff, 1 << 16}, 7);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeRecord(WalRecordType::kStatement, "a")).ok());
  EXPECT_EQ((*writer)->last_lsn(), 7u);
  ASSERT_TRUE((*writer)->ResetAfterCheckpoint().ok());
  EXPECT_EQ((*writer)->bytes(), 0);
  // LSNs are global: the counter continues past the reset.
  Result<uint64_t> lsn =
      (*writer)->Append(MakeRecord(WalRecordType::kStatement, "b"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 8u);
  writer->reset();

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].lsn, 8u);
}

TEST(ReadWal, MissingFileReadsAsEmpty) {
  Result<WalReadResult> read = ReadWal(TempWalPath("wal_missing.wal"));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(read->valid_bytes, 0);
}

// Builds a WAL file with two good frames and returns (bytes, good_prefix_len).
std::string TwoGoodFrames(int64_t* good_len) {
  std::string path = TempWalPath("wal_build.wal");
  auto writer = WalWriter::Open(path, {FsyncPolicy::kAlways, 1}, 1);
  EXPECT_TRUE(writer.ok());
  EXPECT_TRUE(
      (*writer)->Append(MakeRecord(WalRecordType::kStatement, "first")).ok());
  EXPECT_TRUE(
      (*writer)->Append(MakeRecord(WalRecordType::kStatement, "second")).ok());
  *good_len = (*writer)->bytes();
  writer->reset();
  return ReadFileBytes(path);
}

TEST(ReadWal, PartialTrailingHeaderIsATornTail) {
  int64_t good_len = 0;
  std::string bytes = TwoGoodFrames(&good_len);
  std::string path = TempWalPath("wal_torn_header.wal");
  WriteFileBytes(path, bytes + std::string(3, '\x07'));  // 3 of 8 header bytes

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->valid_bytes, good_len);
}

TEST(ReadWal, PartialTrailingPayloadIsATornTail) {
  int64_t good_len = 0;
  std::string bytes = TwoGoodFrames(&good_len);
  // A header promising 100 payload bytes, with only 5 present.
  std::string frame;
  PutU32(&frame, 100);
  PutU32(&frame, 0);
  frame += "hello";
  std::string path = TempWalPath("wal_torn_payload.wal");
  WriteFileBytes(path, bytes + frame);

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->valid_bytes, good_len);
}

TEST(ReadWal, CrcMismatchStopsParsingForGood) {
  int64_t good_len = 0;
  std::string bytes = TwoGoodFrames(&good_len);
  // Flip one payload byte in the *second* frame: frame 1 survives, frame 2
  // is rejected, and nothing after the corruption is trusted.
  std::string corrupted = bytes;
  corrupted[corrupted.size() - 1] ^= 0x40;
  std::string path = TempWalPath("wal_crc.wal");
  WriteFileBytes(path, corrupted + bytes);  // valid frames after the damage

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);  // no resync past the bad frame
  EXPECT_EQ(read->records[0].a, "first");
  EXPECT_FALSE(read->tail_error.empty());
}

TEST(ReadWal, OversizedLengthFieldIsRejected) {
  std::string frame;
  PutU32(&frame, 0x7FFFFFFF);  // over the 64 MiB cap
  PutU32(&frame, 0);
  std::string path = TempWalPath("wal_oversized.wal");
  WriteFileBytes(path, frame);

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, 0);
}

TEST(ReadWal, LsnRegressionIsRejected) {
  // Two individually-valid frames whose LSNs go backwards: the second is
  // stale (pre-checkpoint leftovers after a partial truncate) and must not
  // replay.
  WalRecord r1 = MakeRecord(WalRecordType::kStatement, "new");
  r1.lsn = 10;
  WalRecord r2 = MakeRecord(WalRecordType::kStatement, "stale");
  r2.lsn = 4;
  std::string bytes;
  for (const WalRecord& r : {r1, r2}) {
    std::string payload = r.Encode();
    PutU32(&bytes, static_cast<uint32_t>(payload.size()));
    PutU32(&bytes, Crc32(payload));
    bytes += payload;
  }
  std::string path = TempWalPath("wal_lsn_regression.wal");
  WriteFileBytes(path, bytes);

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].a, "new");
}

TEST(TruncateWal, RemovesTheTornTail) {
  int64_t good_len = 0;
  std::string bytes = TwoGoodFrames(&good_len);
  std::string path = TempWalPath("wal_truncate.wal");
  WriteFileBytes(path, bytes + "garbage tail");

  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read->torn_tail);
  ASSERT_TRUE(TruncateWal(path, read->valid_bytes).ok());

  Result<WalReadResult> clean = ReadWal(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->torn_tail);
  EXPECT_EQ(clean->records.size(), 2u);
  EXPECT_EQ(static_cast<int64_t>(ReadFileBytes(path).size()), good_len);
}

TEST(Codec, Crc32MatchesKnownVector) {
  // The standard IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

}  // namespace
}  // namespace caldb::storage
