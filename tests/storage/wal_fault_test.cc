// Fault injection for the durability subsystem: a child process writing a
// statement burst (fsync=always, ack-after-durable) is SIGKILLed
// mid-burst; recovery must surface every acknowledged statement, truncate
// a torn WAL tail, replay idempotently, and fire each missed temporal
// rule exactly once.  tools/check.sh runs this under ASan.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "storage/wal.h"

namespace caldb {
namespace {

// The burst-child binary is built next to this test binary.
std::string ChildBinaryPath() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return std::filesystem::path(buf).parent_path() / "wal_burst_child";
}

std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<int64_t> ReadAckedIds(const std::string& path) {
  std::vector<int64_t> ids;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ids.push_back(std::stoll(line));
  }
  return ids;
}

// Spawns the burst child, waits for it to durably ack at least
// `min_acks` statements, SIGKILLs it, and reaps it.  Returns false if the
// child exited early (setup failure) or never produced acks.
bool RunBurstAndKill(const std::string& child, const std::string& data_dir,
                     const std::string& ack_path, size_t min_acks) {
  pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::execl(child.c_str(), child.c_str(), data_dir.c_str(), ack_path.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  // Poll the ack file until the burst is well underway.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      // The child finished (or died) before we killed it; a completed
      // burst is still recoverable, but setup errors are not.
      return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    if (ReadAckedIds(ack_path).size() >= min_acks) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return !ReadAckedIds(ack_path).empty();
}

EngineOptions RecoveryOptions(const std::string& data_dir) {
  EngineOptions opts;
  opts.epoch = CivilDate{1993, 1, 1};
  opts.pool_threads = 1;
  opts.data_dir = data_dir;
  opts.fsync_policy = storage::FsyncPolicy::kOff;
  opts.checkpoint_on_stop = false;  // keep the WAL for double-replay checks
  return opts;
}

std::set<int64_t> SurvivingBurstIds(Engine& engine) {
  Result<QueryResult> rows = engine.Execute("retrieve (b.n) from b in BURST");
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<int64_t> ids;
  if (rows.ok()) {
    for (const Row& row : rows->rows) ids.insert(row[0].AsInt().value());
  }
  return ids;
}

std::vector<int64_t> FireDays(Engine& engine) {
  Result<QueryResult> rows = engine.Execute("retrieve (f.day) from f in FIRES");
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<int64_t> days;
  if (rows.ok()) {
    for (const Row& row : rows->rows) days.push_back(row[0].AsInt().value());
  }
  return days;
}

TEST(WalFault, KilledMidBurstLosesNoAcknowledgedStatement) {
  std::string child = ChildBinaryPath();
  ASSERT_TRUE(std::filesystem::exists(child)) << child;
  std::string data_dir = FreshDir("caldb_fault_burst");
  std::string ack_path = data_dir + "_acks";
  std::remove(ack_path.c_str());

  ASSERT_TRUE(RunBurstAndKill(child, data_dir, ack_path, /*min_acks=*/200));
  std::vector<int64_t> acked = ReadAckedIds(ack_path);
  ASSERT_GE(acked.size(), 1u);

  // First recovery: every acknowledged id must be present (durable before
  // acknowledge).  Un-acked trailing statements may or may not have made
  // it — both are correct.
  int64_t clock_day = 0;
  std::vector<int64_t> fire_days;
  {
    auto engine = Engine::Create(RecoveryOptions(data_dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_GT((*engine)->recovery_stats().wal_records_replayed, 0);
    std::set<int64_t> survived = SurvivingBurstIds(**engine);
    for (int64_t id : acked) {
      EXPECT_TRUE(survived.count(id)) << "acked id " << id << " lost";
    }
    // Rule firings: exactly one FIRES row per Tuesday the clock passed.
    fire_days = FireDays(**engine);
    std::set<int64_t> unique_days(fire_days.begin(), fire_days.end());
    EXPECT_EQ(unique_days.size(), fire_days.size())
        << "a rule fired twice for the same scheduled day";
    clock_day = (*engine)->Now();
    for (int64_t day : fire_days) EXPECT_LE(day, clock_day);
    ASSERT_TRUE((*engine)->Stop().ok());
  }

  // Second recovery from the same directory (checkpoint_on_stop was off,
  // so the same WAL replays again): byte-for-byte the same state —
  // replay is idempotent, missed firings do not double.
  {
    auto engine = Engine::Create(RecoveryOptions(data_dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    std::set<int64_t> survived = SurvivingBurstIds(**engine);
    for (int64_t id : acked) EXPECT_TRUE(survived.count(id));
    EXPECT_EQ(FireDays(**engine), fire_days);
    EXPECT_EQ((*engine)->Now(), clock_day);
  }
}

TEST(WalFault, GarbageTailIsTruncatedAndCommittedPrefixSurvives) {
  std::string child = ChildBinaryPath();
  ASSERT_TRUE(std::filesystem::exists(child)) << child;
  std::string data_dir = FreshDir("caldb_fault_torn");
  std::string ack_path = data_dir + "_acks";
  std::remove(ack_path.c_str());

  ASSERT_TRUE(RunBurstAndKill(child, data_dir, ack_path, /*min_acks=*/100));
  std::vector<int64_t> acked = ReadAckedIds(ack_path);
  ASSERT_GE(acked.size(), 1u);

  // Simulate a crash mid-frame-write: append half a frame of garbage.
  const std::string wal_path = data_dir + "/wal";
  const auto before = std::filesystem::file_size(wal_path);
  {
    std::ofstream wal(wal_path, std::ios::binary | std::ios::app);
    wal << "\x13\x37torn-frame-garbage";
  }

  {
    auto engine = Engine::Create(RecoveryOptions(data_dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_TRUE((*engine)->recovery_stats().torn_tail_truncated);
    std::set<int64_t> survived = SurvivingBurstIds(**engine);
    for (int64_t id : acked) {
      EXPECT_TRUE(survived.count(id)) << "acked id " << id << " lost";
    }
    ASSERT_TRUE((*engine)->Stop().ok());
  }
  // The tail was physically removed: the log is back to intact frames
  // only, and a re-read reports no tear.
  EXPECT_LE(std::filesystem::file_size(wal_path), before);
  Result<storage::WalReadResult> reread = storage::ReadWal(wal_path);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread->torn_tail);

  {
    auto engine = Engine::Create(RecoveryOptions(data_dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_FALSE((*engine)->recovery_stats().torn_tail_truncated);
  }
}

TEST(WalFault, RepeatedKillRestartCyclesAccumulateState) {
  std::string child = ChildBinaryPath();
  ASSERT_TRUE(std::filesystem::exists(child)) << child;
  std::string data_dir = FreshDir("caldb_fault_cycles");
  std::string ack_path = data_dir + "_acks";
  std::remove(ack_path.c_str());

  // Three kill/restart cycles: the child itself recovers on each start
  // (its Engine::Create runs the same recovery path) and resumes
  // numbering after what survived.
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(RunBurstAndKill(child, data_dir, ack_path, /*min_acks=*/60))
        << "cycle " << cycle;
  }
  std::vector<int64_t> acked = ReadAckedIds(ack_path);
  ASSERT_GE(acked.size(), 3u);

  auto engine = Engine::Create(RecoveryOptions(data_dir));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::set<int64_t> survived = SurvivingBurstIds(**engine);
  for (int64_t id : acked) {
    EXPECT_TRUE(survived.count(id)) << "acked id " << id << " lost";
  }
  std::vector<int64_t> fire_days = FireDays(**engine);
  std::set<int64_t> unique_days(fire_days.begin(), fire_days.end());
  EXPECT_EQ(unique_days.size(), fire_days.size());
}

}  // namespace
}  // namespace caldb
