// Snapshot encode/decode and capture/restore round trips.
//
// Named storage_snapshot_test (not snapshot_test) because test binaries
// take their name from the basename and tests/obs/snapshot_test.cc exists.

#include "storage/snapshot.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/calendar.h"
#include "time/time_system.h"

namespace caldb::storage {
namespace {

std::string TempPath(const char* name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

SnapshotImage MakeImage() {
  SnapshotImage image;
  image.epoch = CivilDate{1993, 1, 1};
  image.clock_day = 42;
  image.last_lsn = 99;
  image.next_rule_id = 7;
  image.catalog_dump = "epoch 1993-01-01\n";

  SnapshotImage::TableImage table;
  table.name = "MIXED";
  table.columns = {{"i", ValueType::kInt},       {"f", ValueType::kFloat},
                   {"b", ValueType::kBool},      {"t", ValueType::kText},
                   {"iv", ValueType::kInterval}, {"c", ValueType::kCalendar}};
  table.indexed_columns = {"i"};
  table.rows.push_back({Value::Int(-5), Value::Float(2.5), Value::Bool(true),
                        Value::Text("hello \"quoted\"\nline"),
                        Value::Of(Interval{3, 9}),
                        Value::Of(Calendar::Order1(Granularity::kDays,
                                                   {{10, 12}, {20, 20}}))});
  table.rows.push_back({Value::Null(), Value::Null(), Value::Null(),
                        Value::Null(), Value::Null(), Value::Null()});
  image.tables.push_back(std::move(table));

  image.temporal_rules.push_back(
      {3, "payday", "[-1]/DAYS:during:MONTHS", "append to LOG values (1)",
       "retrieve * from LOG"});
  image.event_rules.push_back({"audit", DbEvent::kAppend, "MIXED",
                               "i > 0", "append to LOG values (2)"});
  return image;
}

void ExpectImagesEqual(const SnapshotImage& a, const SnapshotImage& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.clock_day, b.clock_day);
  EXPECT_EQ(a.last_lsn, b.last_lsn);
  EXPECT_EQ(a.next_rule_id, b.next_rule_id);
  EXPECT_EQ(a.catalog_dump, b.catalog_dump);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].name, b.tables[i].name);
    EXPECT_EQ(a.tables[i].columns, b.tables[i].columns);
    EXPECT_EQ(a.tables[i].indexed_columns, b.tables[i].indexed_columns);
    ASSERT_EQ(a.tables[i].rows.size(), b.tables[i].rows.size());
    for (size_t r = 0; r < a.tables[i].rows.size(); ++r) {
      ASSERT_EQ(a.tables[i].rows[r].size(), b.tables[i].rows[r].size());
      for (size_t c = 0; c < a.tables[i].rows[r].size(); ++c) {
        EXPECT_EQ(a.tables[i].rows[r][c].ToString(),
                  b.tables[i].rows[r][c].ToString())
            << "table " << i << " row " << r << " col " << c;
      }
    }
  }
  ASSERT_EQ(a.temporal_rules.size(), b.temporal_rules.size());
  for (size_t i = 0; i < a.temporal_rules.size(); ++i) {
    EXPECT_EQ(a.temporal_rules[i].id, b.temporal_rules[i].id);
    EXPECT_EQ(a.temporal_rules[i].name, b.temporal_rules[i].name);
    EXPECT_EQ(a.temporal_rules[i].expression, b.temporal_rules[i].expression);
    EXPECT_EQ(a.temporal_rules[i].command, b.temporal_rules[i].command);
    EXPECT_EQ(a.temporal_rules[i].condition_query,
              b.temporal_rules[i].condition_query);
  }
  ASSERT_EQ(a.event_rules.size(), b.event_rules.size());
  for (size_t i = 0; i < a.event_rules.size(); ++i) {
    EXPECT_EQ(a.event_rules[i].name, b.event_rules[i].name);
    EXPECT_EQ(a.event_rules[i].event, b.event_rules[i].event);
    EXPECT_EQ(a.event_rules[i].table, b.event_rules[i].table);
    EXPECT_EQ(a.event_rules[i].where_text, b.event_rules[i].where_text);
    EXPECT_EQ(a.event_rules[i].command, b.event_rules[i].command);
  }
}

TEST(Snapshot, EncodeDecodeRoundTripsEveryValueType) {
  SnapshotImage image = MakeImage();
  Result<std::string> blob = EncodeSnapshot(image);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  Result<SnapshotImage> back = DecodeSnapshot(*blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectImagesEqual(image, *back);
}

TEST(Snapshot, FileRoundTripIsAtomicAndChecksummed) {
  std::string path = TempPath("caldb_snapshot_roundtrip.snp");
  SnapshotImage image = MakeImage();
  ASSERT_TRUE(WriteSnapshotFile(path, image).ok());

  Result<SnapshotReadResult> read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_TRUE(read->found);
  ExpectImagesEqual(image, read->image);

  // No stray tmp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(Snapshot, MissingFileReadsAsNotFound) {
  Result<SnapshotReadResult> read =
      ReadSnapshotFile(TempPath("caldb_snapshot_missing.snp"));
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->found);
}

TEST(Snapshot, CorruptFileIsAHardError) {
  std::string path = TempPath("caldb_snapshot_corrupt.snp");
  SnapshotImage image = MakeImage();
  ASSERT_TRUE(WriteSnapshotFile(path, image).ok());

  // Flip a byte in the payload: unlike the WAL, a snapshot is
  // all-or-nothing — no partial salvage.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(ReadSnapshotFile(path).ok());

  // Bad magic fails too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTASNAP" << std::string(32, '\0');
  }
  EXPECT_FALSE(ReadSnapshotFile(path).ok());
}

TEST(Snapshot, CaptureAndRestoreTablesReproducesTheDatabase) {
  TimeSystem time_system{CivilDate{1993, 1, 1}};
  CalendarCatalog catalog{time_system};
  ASSERT_TRUE(catalog.DefineDerived("Tuesdays", "[2]/DAYS:during:WEEKS").ok());

  Database db;
  ASSERT_TRUE(db.Execute("create table EMP (id int, name text, paid bool)").ok());
  ASSERT_TRUE(db.Execute("create index on EMP (id)").ok());
  ASSERT_TRUE(db.Execute("append EMP (id = 1, name = 'ada', paid = true)").ok());
  ASSERT_TRUE(db.Execute("append EMP (id = 2, name = 'grace', paid = false)").ok());

  auto rules = TemporalRuleManager::Create(&catalog, &db, 500);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  TemporalAction action;
  action.command = "append EMP (id = 3, name = 'mary', paid = true)";
  ASSERT_TRUE(
      (*rules)->DeclareRule("hire", "Tuesdays", std::move(action), 1).ok());

  Result<SnapshotImage> image = CaptureSnapshot(db, catalog, **rules, 17, 23);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->clock_day, 17);
  EXPECT_EQ(image->last_lsn, 23u);
  EXPECT_EQ(image->next_rule_id, (*rules)->next_id());
  ASSERT_EQ(image->temporal_rules.size(), 1u);
  EXPECT_EQ(image->temporal_rules[0].name, "hire");
  EXPECT_NE(image->catalog_dump.find("Tuesdays"), std::string::npos);

  // Round trip through bytes, then restore the tables into a fresh db.
  Result<std::string> blob = EncodeSnapshot(*image);
  ASSERT_TRUE(blob.ok());
  Result<SnapshotImage> decoded = DecodeSnapshot(*blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  Database fresh;
  ASSERT_TRUE(RestoreTables(*decoded, &fresh).ok());
  Result<QueryResult> rows =
      fresh.Execute("retrieve (e.id, e.name, e.paid) from e in EMP");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 2u);
  Result<Table*> table = fresh.GetTable("EMP");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->HasIndex("id"));

  // RULE_INFO / RULE_TIME travel as ordinary tables.
  Result<QueryResult> rule_rows =
      fresh.Execute("retrieve (t.next_fire) from t in RULE_TIME");
  ASSERT_TRUE(rule_rows.ok()) << rule_rows.status().ToString();
  EXPECT_EQ(rule_rows->rows.size(), 1u);
}

TEST(Snapshot, RestoreTablesRejectsNameClashes) {
  SnapshotImage image = MakeImage();
  Database db;
  ASSERT_TRUE(db.Execute("create table MIXED (x int)").ok());
  EXPECT_FALSE(RestoreTables(image, &db).ok());
}

}  // namespace
}  // namespace caldb::storage
