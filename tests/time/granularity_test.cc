#include "time/granularity.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(GranularityTest, NamesRoundTrip) {
  for (Granularity g :
       {Granularity::kSeconds, Granularity::kMinutes, Granularity::kHours,
        Granularity::kDays, Granularity::kWeeks, Granularity::kMonths,
        Granularity::kYears, Granularity::kDecades, Granularity::kCenturies}) {
    auto parsed = ParseGranularity(GranularityName(g));
    ASSERT_TRUE(parsed.ok()) << GranularityName(g);
    EXPECT_EQ(*parsed, g);
  }
}

TEST(GranularityTest, ParseAcceptsSingularAndCase) {
  EXPECT_EQ(ParseGranularity("day").value(), Granularity::kDays);
  EXPECT_EQ(ParseGranularity("Week").value(), Granularity::kWeeks);
  EXPECT_EQ(ParseGranularity("CENTURIES").value(), Granularity::kCenturies);
  EXPECT_EQ(ParseGranularity("century").value(), Granularity::kCenturies);
  EXPECT_FALSE(ParseGranularity("fortnight").ok());
  EXPECT_FALSE(ParseGranularity("").ok());
}

TEST(GranularityTest, Ordering) {
  EXPECT_TRUE(FinerThan(Granularity::kSeconds, Granularity::kMinutes));
  EXPECT_TRUE(FinerThan(Granularity::kDays, Granularity::kWeeks));
  EXPECT_TRUE(FinerThan(Granularity::kWeeks, Granularity::kMonths));
  EXPECT_FALSE(FinerThan(Granularity::kYears, Granularity::kMonths));
  EXPECT_FALSE(FinerThan(Granularity::kDays, Granularity::kDays));
  EXPECT_EQ(Finest(Granularity::kDays, Granularity::kYears), Granularity::kDays);
  EXPECT_EQ(Finest(Granularity::kYears, Granularity::kDays), Granularity::kDays);
}

TEST(GranularityTest, UniformityAndSizes) {
  EXPECT_TRUE(IsUniform(Granularity::kSeconds));
  EXPECT_TRUE(IsUniform(Granularity::kWeeks));
  EXPECT_FALSE(IsUniform(Granularity::kMonths));
  EXPECT_FALSE(IsUniform(Granularity::kCenturies));
  EXPECT_EQ(SecondsPerGranule(Granularity::kMinutes), 60);
  EXPECT_EQ(SecondsPerGranule(Granularity::kDays), 86400);
  EXPECT_EQ(SecondsPerGranule(Granularity::kWeeks), 7 * 86400);
  EXPECT_TRUE(IsSubDay(Granularity::kHours));
  EXPECT_FALSE(IsSubDay(Granularity::kDays));
  EXPECT_EQ(GranulesPerDay(Granularity::kSeconds), 86400);
  EXPECT_EQ(GranulesPerDay(Granularity::kMinutes), 1440);
  EXPECT_EQ(GranulesPerDay(Granularity::kHours), 24);
}

}  // namespace
}  // namespace caldb
