#include "time/civil.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(CivilTest, EpochSerialIsZero) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
  EXPECT_EQ(DaysFromCivil({1970, 1, 2}), 1);
  EXPECT_EQ(DaysFromCivil({1969, 12, 31}), -1);
}

TEST(CivilTest, KnownSerials) {
  EXPECT_EQ(DaysFromCivil({2000, 1, 1}), 10957);
  EXPECT_EQ(DaysFromCivil({1987, 1, 1}), 6209);
  EXPECT_EQ(DaysFromCivil({1993, 1, 1}), 8401);
}

TEST(CivilTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(1988));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(1993));
  EXPECT_TRUE(IsLeapYear(1992));
}

TEST(CivilTest, DaysInMonth) {
  EXPECT_EQ(DaysInMonth(1993, 1), 31);
  EXPECT_EQ(DaysInMonth(1993, 2), 28);
  EXPECT_EQ(DaysInMonth(1992, 2), 29);
  EXPECT_EQ(DaysInMonth(1993, 4), 30);
  EXPECT_EQ(DaysInMonth(1993, 12), 31);
}

TEST(CivilTest, DaysInYear) {
  EXPECT_EQ(DaysInYear(1987), 365);
  EXPECT_EQ(DaysInYear(1988), 366);
}

TEST(CivilTest, Weekdays) {
  // 1970-01-01 was a Thursday.
  EXPECT_EQ(WeekdayFromDays(DaysFromCivil({1970, 1, 1})), Weekday::kThursday);
  // 1993-01-01 was a Friday (underpins the paper's WEEKS example).
  EXPECT_EQ(WeekdayFromDays(DaysFromCivil({1993, 1, 1})), Weekday::kFriday);
  // 1987-01-01 was a Thursday.
  EXPECT_EQ(WeekdayFromDays(DaysFromCivil({1987, 1, 1})), Weekday::kThursday);
  // 1992-12-28 was a Monday (start of the week containing 1993-01-01).
  EXPECT_EQ(WeekdayFromDays(DaysFromCivil({1992, 12, 28})), Weekday::kMonday);
}

TEST(CivilTest, Validation) {
  EXPECT_TRUE(IsValidCivil({1993, 2, 28}));
  EXPECT_FALSE(IsValidCivil({1993, 2, 29}));
  EXPECT_TRUE(IsValidCivil({1992, 2, 29}));
  EXPECT_FALSE(IsValidCivil({1993, 13, 1}));
  EXPECT_FALSE(IsValidCivil({1993, 0, 1}));
  EXPECT_FALSE(IsValidCivil({1993, 6, 31}));
  EXPECT_FALSE(IsValidCivil({1993, 6, 0}));
}

TEST(CivilTest, FormatAndParse) {
  EXPECT_EQ(FormatCivil({1993, 1, 5}), "1993-01-05");
  auto parsed = ParseCivil("1993-01-05");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), (CivilDate{1993, 1, 5}));
  EXPECT_FALSE(ParseCivil("1993-02-31").ok());
  EXPECT_FALSE(ParseCivil("1993/01/05").ok());
  EXPECT_FALSE(ParseCivil("hello").ok());
}

TEST(CivilTest, WeekdayNames) {
  EXPECT_EQ(WeekdayName(Weekday::kMonday), "Mon");
  EXPECT_EQ(WeekdayName(Weekday::kSunday), "Sun");
}

// Property sweep: round trip over a wide range of serial days.
class CivilRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(CivilRoundTrip, SerialToCivilAndBack) {
  const int64_t start = GetParam();
  for (int64_t d = start; d < start + 1000; ++d) {
    CivilDate c = CivilFromDays(d);
    EXPECT_TRUE(IsValidCivil(c));
    EXPECT_EQ(DaysFromCivil(c), d) << FormatCivil(c);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CivilRoundTrip,
                         ::testing::Values<int64_t>(-200000, -100000, -50000, -365,
                                                    0, 6209, 8401, 50000, 100000,
                                                    2000000));

// Property: consecutive serials yield consecutive civil dates.
class CivilMonotonic : public ::testing::TestWithParam<int64_t> {};

TEST_P(CivilMonotonic, SuccessorIsNextDay) {
  const int64_t d = GetParam();
  CivilDate a = CivilFromDays(d);
  CivilDate b = CivilFromDays(d + 1);
  EXPECT_LT(a, b);
  // b is either the next day in the same month or the 1st of a later month.
  if (b.day != 1) {
    EXPECT_EQ(b.year, a.year);
    EXPECT_EQ(b.month, a.month);
    EXPECT_EQ(b.day, a.day + 1);
  } else {
    EXPECT_EQ(a.day, DaysInMonth(a.year, a.month));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CivilMonotonic,
                         ::testing::Range<int64_t>(8000, 9000, 13));

TEST(CivilArithmeticTest, AddMonthsClampsToMonthEnd) {
  EXPECT_EQ(AddMonths({1993, 1, 31}, 1), (CivilDate{1993, 2, 28}));
  EXPECT_EQ(AddMonths({1992, 1, 31}, 1), (CivilDate{1992, 2, 29}));
  EXPECT_EQ(AddMonths({1993, 3, 31}, 1), (CivilDate{1993, 4, 30}));
  // Non-clamping additions keep the day.
  EXPECT_EQ(AddMonths({1993, 1, 15}, 1), (CivilDate{1993, 2, 15}));
}

TEST(CivilArithmeticTest, AddMonthsRollsOverYears) {
  EXPECT_EQ(AddMonths({1993, 11, 30}, 3), (CivilDate{1994, 2, 28}));
  EXPECT_EQ(AddMonths({1993, 6, 15}, 12), (CivilDate{1994, 6, 15}));
  EXPECT_EQ(AddMonths({1993, 6, 15}, 31), (CivilDate{1996, 1, 15}));
  // Negative counts roll backwards, including across year zero.
  EXPECT_EQ(AddMonths({1993, 1, 15}, -1), (CivilDate{1992, 12, 15}));
  EXPECT_EQ(AddMonths({1993, 3, 31}, -1), (CivilDate{1993, 2, 28}));
  EXPECT_EQ(AddMonths({0, 2, 15}, -3), (CivilDate{-1, 11, 15}));
}

TEST(CivilArithmeticTest, AddMonthsIsValidOverASweep) {
  // Whatever the anchor, the result must be a real date.
  for (int64_t d = 6000; d < 6400; d += 7) {
    CivilDate base = CivilFromDays(d);
    for (int64_t m = -30; m <= 30; m += 5) {
      EXPECT_TRUE(IsValidCivil(AddMonths(base, m)))
          << FormatCivil(base) << " + " << m << " months";
    }
  }
}

TEST(CivilArithmeticTest, AddYearsClampsLeapDay) {
  // The leap-day recurrence rule: a Feb 29 anniversary resolves to Feb 28
  // in non-leap years, and back to Feb 29 when the target year is leap.
  EXPECT_EQ(AddYears({1992, 2, 29}, 1), (CivilDate{1993, 2, 28}));
  EXPECT_EQ(AddYears({1992, 2, 29}, 4), (CivilDate{1996, 2, 29}));
  EXPECT_EQ(AddYears({1992, 2, 29}, -1), (CivilDate{1991, 2, 28}));
  EXPECT_EQ(AddYears({1992, 2, 29}, 8), (CivilDate{2000, 2, 29}));
  // 1900 is not a leap year (century rule).
  EXPECT_EQ(AddYears({1896, 2, 29}, 4), (CivilDate{1900, 2, 28}));
  // Other dates pass through untouched.
  EXPECT_EQ(AddYears({1993, 7, 4}, 10), (CivilDate{2003, 7, 4}));
}

}  // namespace
}  // namespace caldb
