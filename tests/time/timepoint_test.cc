#include "time/timepoint.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(TimePointTest, OffsetMapping) {
  EXPECT_EQ(PointToOffset(1), 0);
  EXPECT_EQ(PointToOffset(2), 1);
  EXPECT_EQ(PointToOffset(-1), -1);
  EXPECT_EQ(PointToOffset(-4), -4);
  EXPECT_EQ(OffsetToPoint(0), 1);
  EXPECT_EQ(OffsetToPoint(1), 2);
  EXPECT_EQ(OffsetToPoint(-1), -1);
  EXPECT_EQ(OffsetToPoint(-4), -4);
}

TEST(TimePointTest, ZeroIsInvalid) {
  EXPECT_FALSE(IsValidPoint(0));
  EXPECT_TRUE(IsValidPoint(1));
  EXPECT_TRUE(IsValidPoint(-1));
}

TEST(TimePointTest, AdditionSkipsZero) {
  EXPECT_EQ(PointAdd(-1, 1), 1);
  EXPECT_EQ(PointAdd(1, -1), -1);
  EXPECT_EQ(PointAdd(-4, 7), 4);   // the paper's week (-4,3) spans to next Monday 4
  EXPECT_EQ(PointAdd(3, 1), 4);
  EXPECT_EQ(PointAdd(5, -10), -6);
}

TEST(TimePointTest, Distance) {
  EXPECT_EQ(PointDistance(-4, 3), 6);   // 7 points (0 skipped), distance 6
  EXPECT_EQ(PointDistance(1, 1), 0);
  EXPECT_EQ(PointDistance(3, -4), -6);
  EXPECT_EQ(PointDistance(-1, 1), 1);   // adjacent across the gap
}

// Property: OffsetToPoint and PointToOffset are mutually inverse.
class RoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(RoundTrip, Inverse) {
  int64_t off = GetParam();
  EXPECT_EQ(PointToOffset(OffsetToPoint(off)), off);
  TimePoint p = GetParam() == 0 ? 1 : GetParam();
  EXPECT_EQ(OffsetToPoint(PointToOffset(p)), p);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundTrip,
                         ::testing::Range<int64_t>(-50, 50, 1));

}  // namespace
}  // namespace caldb
