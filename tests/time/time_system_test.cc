#include "time/time_system.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

// The §3.1 examples number days from Jan 1 1993 (day 1).
class TimeSystem1993 : public ::testing::Test {
 protected:
  TimeSystem ts_{CivilDate{1993, 1, 1}};
};

TEST_F(TimeSystem1993, DayPoints) {
  EXPECT_EQ(ts_.DayPointFromCivil({1993, 1, 1}), 1);
  EXPECT_EQ(ts_.DayPointFromCivil({1993, 1, 31}), 31);
  EXPECT_EQ(ts_.DayPointFromCivil({1993, 2, 1}), 32);
  EXPECT_EQ(ts_.DayPointFromCivil({1993, 3, 1}), 60);
  EXPECT_EQ(ts_.DayPointFromCivil({1992, 12, 31}), -1);
  EXPECT_EQ(ts_.DayPointFromCivil({1992, 12, 28}), -4);
}

TEST_F(TimeSystem1993, DayPointRoundTrip) {
  for (int64_t p = -400; p <= 400; ++p) {
    if (p == 0) continue;
    CivilDate c = ts_.CivilFromDayPoint(p);
    EXPECT_EQ(ts_.DayPointFromCivil(c), p) << FormatCivil(c);
  }
}

TEST_F(TimeSystem1993, WeekdayOfDayPoint) {
  EXPECT_EQ(ts_.WeekdayOfDayPoint(1), Weekday::kFriday);   // Jan 1 1993
  EXPECT_EQ(ts_.WeekdayOfDayPoint(-4), Weekday::kMonday);  // Dec 28 1992
  EXPECT_EQ(ts_.WeekdayOfDayPoint(4), Weekday::kMonday);   // Jan 4 1993
  EXPECT_EQ(ts_.WeekdayOfDayPoint(60), Weekday::kMonday);  // Mar 1 1993
}

TEST_F(TimeSystem1993, WeekGranulesMatchPaper) {
  // WEEKS of 1993 = {(-4,3),(4,10),(11,17),(18,24),(25,31),(32,38),(39,45),...}
  auto w1 = ts_.GranuleToUnit(Granularity::kWeeks, 1, Granularity::kDays);
  ASSERT_TRUE(w1.ok());
  EXPECT_EQ(*w1, (Interval{-4, 3}));
  auto w2 = ts_.GranuleToUnit(Granularity::kWeeks, 2, Granularity::kDays);
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(*w2, (Interval{4, 10}));
  auto w7 = ts_.GranuleToUnit(Granularity::kWeeks, 7, Granularity::kDays);
  ASSERT_TRUE(w7.ok());
  EXPECT_EQ(*w7, (Interval{39, 45}));
}

TEST_F(TimeSystem1993, MonthGranulesMatchPaper) {
  // Year-1993 = {(1,31),(32,59),(60,90),(91,120),...}
  const Interval kExpected[] = {{1, 31}, {32, 59}, {60, 90}, {91, 120}};
  for (int m = 1; m <= 4; ++m) {
    auto r = ts_.GranuleToUnit(Granularity::kMonths, m, Granularity::kDays);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, kExpected[m - 1]) << "month " << m;
  }
}

TEST_F(TimeSystem1993, GranuleContaining) {
  auto m = ts_.GranuleContaining(Granularity::kMonths, 45, Granularity::kDays);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, 2);  // day 45 is in February
  auto w = ts_.GranuleContaining(Granularity::kWeeks, -4, Granularity::kDays);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, 1);  // Dec 28 1992 is in week 1 (contains the epoch)
  auto y = ts_.GranuleContaining(Granularity::kYears, -1, Granularity::kDays);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, -1);  // Dec 31 1992 is in year -1 (1992)
}

TEST_F(TimeSystem1993, YearInMonths) {
  auto r = ts_.GranuleToUnit(Granularity::kYears, 1, Granularity::kMonths);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Interval{1, 12}));
  auto prev = ts_.GranuleToUnit(Granularity::kYears, -1, Granularity::kMonths);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(*prev, (Interval{-12, -1}));
}

TEST_F(TimeSystem1993, SubDayGranules) {
  auto h = ts_.GranuleToUnit(Granularity::kDays, 1, Granularity::kHours);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*h, (Interval{1, 24}));
  auto h2 = ts_.GranuleToUnit(Granularity::kDays, 2, Granularity::kHours);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(*h2, (Interval{25, 48}));
  auto m = ts_.GranuleToUnit(Granularity::kHours, 1, Granularity::kMinutes);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, (Interval{1, 60}));
  auto s = ts_.GranuleToUnit(Granularity::kMinutes, 2, Granularity::kSeconds);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, (Interval{61, 120}));
  auto back =
      ts_.GranuleContaining(Granularity::kDays, 25, Granularity::kHours);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, 2);
}

TEST_F(TimeSystem1993, NegativeSubDayGranules) {
  // Hour -1 is the last hour of Dec 31 1992 (day -1).
  auto d = ts_.GranuleContaining(Granularity::kDays, -1, Granularity::kHours);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, -1);
  auto h = ts_.GranuleToUnit(Granularity::kDays, -1, Granularity::kHours);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*h, (Interval{-24, -1}));
}

TEST_F(TimeSystem1993, CoarserUnitRejected) {
  EXPECT_FALSE(
      ts_.GranuleToUnit(Granularity::kDays, 1, Granularity::kMonths).ok());
  EXPECT_FALSE(
      ts_.GranuleContaining(Granularity::kDays, 1, Granularity::kMonths).ok());
  EXPECT_FALSE(ts_.GranuleToUnit(Granularity::kDays, 0, Granularity::kDays).ok());
}

TEST_F(TimeSystem1993, YearAndMonthIndexes) {
  EXPECT_EQ(ts_.YearIndex(1993), 1);
  EXPECT_EQ(ts_.YearIndex(1994), 2);
  EXPECT_EQ(ts_.YearIndex(1992), -1);
  EXPECT_EQ(ts_.CivilYearOfIndex(1), 1993);
  EXPECT_EQ(ts_.CivilYearOfIndex(-1), 1992);
  EXPECT_EQ(ts_.MonthIndex(1993, 1), 1);
  EXPECT_EQ(ts_.MonthIndex(1993, 12), 12);
  EXPECT_EQ(ts_.MonthIndex(1994, 1), 13);
  EXPECT_EQ(ts_.MonthIndex(1992, 12), -1);
}

// The §3.2 example uses epoch Jan 1 1987.
class TimeSystem1987 : public ::testing::Test {
 protected:
  TimeSystem ts_{CivilDate{1987, 1, 1}};
};

TEST_F(TimeSystem1987, YearGranulesMatchPaper) {
  // generate(YEARS, DAYS, ...) produces (1,365),(366,731),(732,1096),...
  const Interval kExpected[] = {
      {1, 365}, {366, 731}, {732, 1096}, {1097, 1461}, {1462, 1826}};
  for (int y = 1; y <= 5; ++y) {
    auto r = ts_.GranuleToUnit(Granularity::kYears, y, Granularity::kDays);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, kExpected[y - 1]) << "year " << y;
  }
}

TEST_F(TimeSystem1987, DecadeInYears) {
  // Epoch decade is 1980-1989: year offsets -7..2, skip-zero (-7,3).
  auto r = ts_.GranuleToUnit(Granularity::kDecades, 1, Granularity::kYears);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Interval{-7, 3}));
  auto next = ts_.GranuleToUnit(Granularity::kDecades, 2, Granularity::kYears);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, (Interval{4, 13}));  // 1990..1999
}

TEST_F(TimeSystem1987, CenturyInYears) {
  // Epoch century is 1900-1999: offsets -87..12.
  auto r = ts_.GranuleToUnit(Granularity::kCenturies, 1, Granularity::kYears);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Interval{-87, 13}));
}

TEST_F(TimeSystem1987, DayIntervalFromCivil) {
  auto r = ts_.DayIntervalFromCivil({1987, 1, 1}, {1992, 1, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Interval{1, 1829}));
  EXPECT_FALSE(ts_.DayIntervalFromCivil({1992, 1, 1}, {1987, 1, 1}).ok());
  EXPECT_FALSE(ts_.DayIntervalFromCivil({1987, 2, 30}, {1992, 1, 1}).ok());
}

// Property: granule ranges tile the timeline without gaps or overlaps.
class GranuleTiling : public ::testing::TestWithParam<Granularity> {};

TEST_P(GranuleTiling, ConsecutiveGranulesAreContiguous) {
  TimeSystem ts{CivilDate{1987, 3, 15}};  // mid-month epoch stresses alignment
  Granularity g = GetParam();
  Granularity unit = IsSubDay(g) ? Granularity::kSeconds : Granularity::kDays;
  auto prev = ts.GranuleToUnit(g, -5, unit);
  ASSERT_TRUE(prev.ok());
  for (TimePoint idx = PointAdd(-5, 1); idx <= 5; idx = PointAdd(idx, 1)) {
    auto cur = ts.GranuleToUnit(g, idx, unit);
    ASSERT_TRUE(cur.ok());
    EXPECT_EQ(PointToOffset(cur->lo), PointToOffset(prev->hi) + 1)
        << GranularityName(g) << " granule " << idx;
    EXPECT_LE(cur->lo, cur->hi);
    // Every covered unit point maps back to this granule.
    auto back_lo = ts.GranuleContaining(g, cur->lo, unit);
    auto back_hi = ts.GranuleContaining(g, cur->hi, unit);
    ASSERT_TRUE(back_lo.ok());
    ASSERT_TRUE(back_hi.ok());
    EXPECT_EQ(*back_lo, idx);
    EXPECT_EQ(*back_hi, idx);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGranularities, GranuleTiling,
    ::testing::Values(Granularity::kMinutes, Granularity::kHours,
                      Granularity::kDays, Granularity::kWeeks,
                      Granularity::kMonths, Granularity::kYears,
                      Granularity::kDecades, Granularity::kCenturies));

TEST(FloorDivTest, RoundsTowardNegativeInfinity) {
  EXPECT_EQ(FloorDiv(7, 2), 3);
  EXPECT_EQ(FloorDiv(-7, 2), -4);
  EXPECT_EQ(FloorDiv(-6, 3), -2);
  EXPECT_EQ(FloorMod(-7, 2), 1);
  EXPECT_EQ(FloorMod(7, 2), 1);
  EXPECT_EQ(FloorMod(-6, 3), 0);
}

}  // namespace
}  // namespace caldb
