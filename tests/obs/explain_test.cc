// Integration: EXPLAIN/PROFILE across the catalog and the DB substrate.

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "catalog/calendar_catalog.h"
#include "db/database.h"

namespace caldb {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {
    // Single-expression calendars are inlined by the analyzer.
    EXPECT_TRUE(catalog_.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS").ok());
    EXPECT_TRUE(
        catalog_.DefineDerived("Januarys", "[1]/MONTHS:during:YEARS").ok());
    // A multi-statement calendar stays a kInvoke call at use sites.
    EXPECT_TRUE(catalog_
                    .DefineDerived("Paydays",
                                   "p = [-1]/DAYS:during:MONTHS; return p;")
                    .ok());
  }

  std::string Explain(const std::string& script) {
    EvalOptions opts;
    auto window = catalog_.YearWindow(1993, 1993);
    EXPECT_TRUE(window.ok());
    opts.window_days = *window;
    auto report = catalog_.ExplainScript(script, opts);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? *report : "";
  }

  CalendarCatalog catalog_;
};

TEST_F(ExplainTest, ReportsFactorizationRewrite) {
  // The paper's Example 1: inlining exposes a factorizable chain.
  std::string report =
      Explain("return Mondays:during:Januarys:during:1993/Years;");
  EXPECT_NE(report.find("factorize=1"), std::string::npos) << report;
  EXPECT_NE(report.find("inline=2"), std::string::npos) << report;
}

TEST_F(ExplainTest, ReportsCacheHitOnSecondEvaluationOfDerivedCalendar) {
  // Paydays is invoked twice; the second invocation's GENERATE steps hit
  // the evaluator's generation cache.
  std::string report = Explain("a = Paydays; b = Paydays; return a;");
  size_t pos = report.find("gen_cache_hits=");
  ASSERT_NE(pos, std::string::npos) << report;
  int hits = std::atoi(report.c_str() + pos + strlen("gen_cache_hits="));
  EXPECT_GT(hits, 0) << report;
}

TEST_F(ExplainTest, AnnotatesPlanNodesWithExecutionCounts) {
  std::string report = Explain("a = Paydays; return a;");
  EXPECT_NE(report.find("INVOKE"), std::string::npos) << report;
  EXPECT_NE(report.find("execs="), std::string::npos) << report;
  EXPECT_NE(report.find("compile:"), std::string::npos) << report;
  EXPECT_NE(report.find("result: calendar"), std::string::npos) << report;
}

TEST(DbExplainTest, DescribesIndexVsFullScan) {
  Database db;
  ASSERT_TRUE(db.Execute("create table payroll (week int, hours int)").ok());
  ASSERT_TRUE(db.Execute("create index on payroll (week)").ok());
  for (int w = 1; w <= 20; ++w) {
    ASSERT_TRUE(db.Execute("append payroll (week = " + std::to_string(w) +
                           ", hours = 40)")
                    .ok());
  }

  auto indexed = db.Execute(
      "explain retrieve (p.hours) from p in payroll where p.week = 3");
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  EXPECT_NE(indexed->message.find("index scan on (week)"), std::string::npos)
      << indexed->message;

  auto full = db.Execute(
      "explain retrieve (p.hours) from p in payroll where p.hours = 40");
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_NE(full->message.find("full scan"), std::string::npos)
      << full->message;
}

TEST(DbExplainTest, ProfileExecutesAndReportsScanCounters) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (v int)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db.Execute("append t (v = " + std::to_string(i) + ")").ok());
  }
  auto result =
      db.Execute("profile retrieve (x.v) from x in t where x.v >= 5");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->message.find("rows_scanned=10"), std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("full_scans=1"), std::string::npos)
      << result->message;
  EXPECT_NE(result->message.find("rows_out=5"), std::string::npos)
      << result->message;
}

TEST(DbExplainTest, ExplainDoesNotExecute) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (v int)").ok());
  ASSERT_TRUE(db.Execute("append t (v = 1)").ok());
  auto result = db.Execute("explain delete x in t where x.v = 1");
  ASSERT_TRUE(result.ok()) << result.status();
  auto remaining = db.Execute("retrieve (x.v) from x in t");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining->rows.size(), 1u);
}

}  // namespace
}  // namespace caldb
