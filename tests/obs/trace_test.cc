#include "obs/trace.h"

#include <thread>

#include <gtest/gtest.h>

#include "tests/obs/json_check.h"

namespace caldb::obs {
namespace {

using caldb::test::JsonValue;
using caldb::test::ParseJson;

TEST(Tracer, RecordsFinishedSpans) {
  Tracer tracer(16);
  {
    Tracer::Span span = tracer.StartSpan("work");
    EXPECT_TRUE(span.active());
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_GE(spans[0].duration_ns(), 0);
}

TEST(Tracer, NestingRecordsParent) {
  Tracer tracer(16);
  uint64_t outer_id = 0;
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    outer_id = outer.id();
    {
      Tracer::Span inner = tracer.StartSpan("inner");
      EXPECT_NE(inner.id(), outer_id);
    }
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Ring order is finish order: inner first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST(Tracer, EndIsIdempotentAndEarly) {
  Tracer tracer(16);
  Tracer::Span span = tracer.StartSpan("early");
  span.End();
  span.End();
  EXPECT_FALSE(span.active());
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(Tracer, AttrsAppearInRecord) {
  Tracer tracer(16);
  {
    Tracer::Span span = tracer.StartSpan("attr");
    span.AddAttr("calendar", "paydays");
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "calendar");
  EXPECT_EQ(spans[0].attrs[0].second, "paydays");
}

TEST(Tracer, RingWrapsOverwritingOldest) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    Tracer::Span span = tracer.StartSpan("s" + std::to_string(i));
  }
  EXPECT_EQ(tracer.total_finished(), 10);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: the last four spans survive.
  EXPECT_EQ(spans[0].name, "s6");
  EXPECT_EQ(spans[3].name, "s9");
}

TEST(Tracer, DisabledSpansAreInactive) {
  Tracer tracer(16);
  tracer.set_enabled(false);
  {
    Tracer::Span span = tracer.StartSpan("ignored");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.set_enabled(true);
  { Tracer::Span span = tracer.StartSpan("seen"); }
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(Tracer, ClearEmptiesRing) {
  Tracer tracer(16);
  { Tracer::Span span = tracer.StartSpan("gone"); }
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_finished(), 0);
}

TEST(Tracer, ToStringIndentsChildren) {
  Tracer tracer(16);
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    Tracer::Span inner = tracer.StartSpan("inner");
  }
  std::string rendered = tracer.ToString();
  size_t outer_pos = rendered.find("outer");
  size_t inner_pos = rendered.find("  inner");
  EXPECT_NE(outer_pos, std::string::npos);
  EXPECT_NE(inner_pos, std::string::npos);
  // Parent renders before (above) the indented child.
  EXPECT_LT(outer_pos, inner_pos);
}

TEST(Tracer, RingWrapsPastDefaultCapacity) {
  Tracer tracer;  // default 4096
  ASSERT_EQ(tracer.capacity(), Tracer::kDefaultCapacity);
  const int kSpans = static_cast<int>(Tracer::kDefaultCapacity) + 100;
  for (int i = 0; i < kSpans; ++i) {
    Tracer::Span span = tracer.StartSpan("s" + std::to_string(i));
  }
  EXPECT_EQ(tracer.total_finished(), kSpans);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), Tracer::kDefaultCapacity);
  // Oldest surviving span is the 101st; newest is the last started.
  EXPECT_EQ(spans.front().name, "s100");
  EXPECT_EQ(spans.back().name, "s" + std::to_string(kSpans - 1));
}

TEST(TraceContext, CurrentContextCapturesInnermostSpan) {
  Tracer tracer(16);
  EXPECT_EQ(Tracer::CurrentContext().span_id, 0u);
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    EXPECT_EQ(Tracer::CurrentContext().span_id, outer.id());
    {
      Tracer::Span inner = tracer.StartSpan("inner");
      EXPECT_EQ(Tracer::CurrentContext().span_id, inner.id());
    }
    EXPECT_EQ(Tracer::CurrentContext().span_id, outer.id());
  }
  EXPECT_EQ(Tracer::CurrentContext().span_id, 0u);
}

TEST(TraceContext, NullContextIsolatesParentage) {
  Tracer tracer(16);
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    {
      ScopedTraceContext isolate{TraceContext{}};
      Tracer::Span orphan = tracer.StartSpan("orphan");
      EXPECT_EQ(Tracer::CurrentContext().span_id, orphan.id());
    }
    // The previous stack is restored, stale entries and all.
    EXPECT_EQ(Tracer::CurrentContext().span_id, outer.id());
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "orphan");
  EXPECT_EQ(spans[0].parent_id, 0u);
}

TEST(TraceContext, AdoptionParentsAcrossThreads) {
  Tracer tracer(16);
  uint64_t root_id = 0;
  {
    Tracer::Span root = tracer.StartSpan("submit");
    root_id = root.id();
    const TraceContext ctx = Tracer::CurrentContext();
    std::thread worker([&] {
      ScopedTraceContext adopt{ctx};
      Tracer::Span child = tracer.StartSpan("work");
    });
    worker.join();
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].parent_id, root_id);
  // The two spans ran on different threads.
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(Tracer, ExportChromeTraceIsValidTraceEventJson) {
  Tracer tracer(16);
  uint64_t parent_id = 0;
  {
    Tracer::Span outer = tracer.StartSpan("db.execute");
    parent_id = outer.id();
    Tracer::Span inner = tracer.StartSpan("cron.fire");
    inner.AddAttr("rule", "pay\"day");
  }
  std::optional<JsonValue> parsed = ParseJson(tracer.ExportChromeTrace());
  ASSERT_TRUE(parsed.has_value()) << tracer.ExportChromeTrace();
  const JsonValue* events = parsed->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 2u);
  for (const JsonValue& event : events->items) {
    EXPECT_EQ(event.Get("ph")->str, "X");
    EXPECT_EQ(event.Get("cat")->str, "caldb");
    EXPECT_GE(event.Get("ts")->number, 0.0);
    EXPECT_GE(event.Get("dur")->number, 0.0);
    EXPECT_GE(event.Get("tid")->number, 1.0);
    ASSERT_NE(event.Get("args"), nullptr);
  }
  // Finish order: inner first; its args carry parent and the attr.
  const JsonValue& inner_event = events->items[0];
  EXPECT_EQ(inner_event.Get("name")->str, "cron.fire");
  EXPECT_DOUBLE_EQ(inner_event.Get("args")->Get("parent")->number,
                   static_cast<double>(parent_id));
  EXPECT_EQ(inner_event.Get("args")->Get("rule")->str, "pay\"day");
}

TEST(Tracer, ExportChromeTraceEmptyRingIsStillValid) {
  Tracer tracer(16);
  std::optional<JsonValue> parsed = ParseJson(tracer.ExportChromeTrace());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->Get("traceEvents"), nullptr);
  EXPECT_TRUE(parsed->Get("traceEvents")->items.empty());
}

}  // namespace
}  // namespace caldb::obs
