#include "obs/trace.h"

#include <gtest/gtest.h>

namespace caldb::obs {
namespace {

TEST(Tracer, RecordsFinishedSpans) {
  Tracer tracer(16);
  {
    Tracer::Span span = tracer.StartSpan("work");
    EXPECT_TRUE(span.active());
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_GE(spans[0].duration_ns(), 0);
}

TEST(Tracer, NestingRecordsParent) {
  Tracer tracer(16);
  uint64_t outer_id = 0;
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    outer_id = outer.id();
    {
      Tracer::Span inner = tracer.StartSpan("inner");
      EXPECT_NE(inner.id(), outer_id);
    }
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Ring order is finish order: inner first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST(Tracer, EndIsIdempotentAndEarly) {
  Tracer tracer(16);
  Tracer::Span span = tracer.StartSpan("early");
  span.End();
  span.End();
  EXPECT_FALSE(span.active());
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(Tracer, AttrsAppearInRecord) {
  Tracer tracer(16);
  {
    Tracer::Span span = tracer.StartSpan("attr");
    span.AddAttr("calendar", "paydays");
  }
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "calendar");
  EXPECT_EQ(spans[0].attrs[0].second, "paydays");
}

TEST(Tracer, RingWrapsOverwritingOldest) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    Tracer::Span span = tracer.StartSpan("s" + std::to_string(i));
  }
  EXPECT_EQ(tracer.total_finished(), 10);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first: the last four spans survive.
  EXPECT_EQ(spans[0].name, "s6");
  EXPECT_EQ(spans[3].name, "s9");
}

TEST(Tracer, DisabledSpansAreInactive) {
  Tracer tracer(16);
  tracer.set_enabled(false);
  {
    Tracer::Span span = tracer.StartSpan("ignored");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.set_enabled(true);
  { Tracer::Span span = tracer.StartSpan("seen"); }
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(Tracer, ClearEmptiesRing) {
  Tracer tracer(16);
  { Tracer::Span span = tracer.StartSpan("gone"); }
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_finished(), 0);
}

TEST(Tracer, ToStringIndentsChildren) {
  Tracer tracer(16);
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    Tracer::Span inner = tracer.StartSpan("inner");
  }
  std::string rendered = tracer.ToString();
  size_t outer_pos = rendered.find("outer");
  size_t inner_pos = rendered.find("  inner");
  EXPECT_NE(outer_pos, std::string::npos);
  EXPECT_NE(inner_pos, std::string::npos);
  // Parent renders before (above) the indented child.
  EXPECT_LT(outer_pos, inner_pos);
}

}  // namespace
}  // namespace caldb::obs
