#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace caldb::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Counter, ConcurrentIncrements) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddMax) {
  Gauge g;
  Gauge high_water;
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.SetWithMax(12, &high_water);
  g.SetWithMax(5, &high_water);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(high_water.value(), 12);
}

TEST(Histogram, CountSumMeanMax) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 60);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.max(), 30);
}

TEST(Histogram, BucketUpperBounds) {
  // Log2 buckets: bucket i holds values in ((1<<(i-1))-1, (1<<i)-1].
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023);
}

TEST(Histogram, PercentileSingleBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  // 1000 lands in the bucket with upper bound 1023; every percentile
  // reports that bound (the <= 2x relative error contract).
  EXPECT_EQ(h.Percentile(50), 1023);
  EXPECT_EQ(h.Percentile(95), 1023);
  EXPECT_EQ(h.Percentile(99), 1023);
}

TEST(Histogram, PercentileAcrossBuckets) {
  Histogram h;
  // 90 fast ops (~100ns), 10 slow ops (~100000ns).
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(100000);
  const int64_t fast_bound = 127;     // 100 -> bucket [64, 127]
  const int64_t slow_bound = 131071;  // 100000 -> bucket [65536, 131071]
  EXPECT_EQ(h.Percentile(50), fast_bound);
  EXPECT_EQ(h.Percentile(90), fast_bound);
  EXPECT_EQ(h.Percentile(95), slow_bound);
  EXPECT_EQ(h.Percentile(99), slow_bound);
}

TEST(Histogram, PercentileEmpty) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(Histogram, ConcurrentRecords) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(i % 1000);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(MetricRegistry, GetOrCreateIsStable) {
  MetricRegistry registry;
  Counter* a = registry.counter("test.counter");
  Counter* b = registry.counter("test.counter");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(b->value(), 7);
}

TEST(MetricRegistry, ExportTextAndReset) {
  MetricRegistry registry;
  registry.counter("a.count")->Add(3);
  registry.gauge("a.depth")->Set(2);
  registry.histogram("a.lat")->Record(100);
  std::string text = registry.ExportText();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("a.depth"), std::string::npos);
  EXPECT_NE(text.find("a.lat"), std::string::npos);
  registry.ResetAll();
  EXPECT_EQ(registry.counter("a.count")->value(), 0);
  EXPECT_EQ(registry.histogram("a.lat")->count(), 0);
}

TEST(MetricRegistry, ExportJsonShape) {
  MetricRegistry registry;
  registry.counter("c.one")->Add(1);
  registry.gauge("g.one")->Set(5);
  registry.histogram("h.one")->Record(50);
  std::string json = registry.ExportJson();
  // Single line, with the three sections present.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\":1"), std::string::npos);
  EXPECT_NE(json.find("\"g.one\":5"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace caldb::obs
