#include "obs/snapshot.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tests/obs/json_check.h"

namespace caldb::obs {
namespace {

using caldb::test::JsonValue;
using caldb::test::ParseJson;

TEST(CounterDeltas, ReportsIncrementsSincePreviousStep) {
  MetricRegistry registry;
  Counter* c = registry.counter("caldb.test.widgets");
  CounterDeltas deltas(&registry);

  c->Add(5);
  std::map<std::string, int64_t> step1 = deltas.Step();
  EXPECT_EQ(step1.at("caldb.test.widgets"), 5);

  c->Add(2);
  std::map<std::string, int64_t> step2 = deltas.Step();
  EXPECT_EQ(step2.at("caldb.test.widgets"), 2);

  // No movement: delta 0.
  std::map<std::string, int64_t> step3 = deltas.Step();
  EXPECT_EQ(step3.at("caldb.test.widgets"), 0);
}

TEST(CounterDeltas, SurvivesCounterReset) {
  MetricRegistry registry;
  Counter* c = registry.counter("caldb.test.reset");
  CounterDeltas deltas(&registry);
  c->Add(100);
  deltas.Step();
  registry.ResetAll();
  c->Add(3);
  // After a reset the value (3) is below the previous value (100); the
  // delta must not go negative — it reports the post-reset value.
  EXPECT_EQ(deltas.Step().at("caldb.test.reset"), 3);
}

TEST(CounterDeltas, PicksUpCountersRegisteredBetweenSteps) {
  MetricRegistry registry;
  CounterDeltas deltas(&registry);
  deltas.Step();
  registry.counter("caldb.test.latecomer")->Add(7);
  EXPECT_EQ(deltas.Step().at("caldb.test.latecomer"), 7);
}

TEST(Snapshotter, SnapshotLineIsValidJsonWithDeltas) {
  MetricRegistry registry;
  registry.counter("caldb.test.ticks")->Add(4);
  registry.gauge("caldb.test.depth")->Set(9);
  registry.histogram("caldb.test.lat_ns")->Record(1000);

  SnapshotterOptions opts;
  opts.registry = &registry;
  MetricsSnapshotter snapshotter(opts);
  const std::string line = snapshotter.SnapshotLine();
  std::optional<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  const JsonValue* counters = parsed->Get("counters_delta");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Get("caldb.test.ticks")->number, 4.0);
  const JsonValue* gauges = parsed->Get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Get("caldb.test.depth")->number, 9.0);
  const JsonValue* hist = parsed->Get("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* lat = hist->Get("caldb.test.lat_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->Get("count")->number, 1.0);

  // Second line: the tick delta is now zero, so it is omitted entirely.
  const std::string line2 = snapshotter.SnapshotLine();
  std::optional<JsonValue> parsed2 = ParseJson(line2);
  ASSERT_TRUE(parsed2.has_value()) << line2;
  EXPECT_EQ(parsed2->Get("counters_delta")->Get("caldb.test.ticks"), nullptr);
}

TEST(Snapshotter, WritesPeriodicLinesToFile) {
  MetricRegistry registry;
  registry.counter("caldb.test.flow")->Add(1);
  const std::string path =
      ::testing::TempDir() + "caldb_snapshotter_test.jsonl";
  std::remove(path.c_str());

  SnapshotterOptions opts;
  opts.path = path;
  opts.interval_ms = 10;
  opts.registry = &registry;
  {
    MetricsSnapshotter snapshotter(opts);
    ASSERT_TRUE(snapshotter.Start().ok());
    // Stop() takes a final snapshot even if the interval never elapsed.
    snapshotter.Stop();
    EXPECT_GE(snapshotter.snapshots(), 1);
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  // Every line parses as JSON.
  size_t lines = 0;
  size_t start = 0;
  while (start < contents.size()) {
    size_t end = contents.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::optional<JsonValue> parsed =
        ParseJson(contents.substr(start, end - start));
    ASSERT_TRUE(parsed.has_value())
        << contents.substr(start, end - start);
    EXPECT_GT(parsed->Get("ts_us")->number, 0.0);
    ++lines;
    start = end + 1;
  }
  EXPECT_GE(lines, 1u);
}

TEST(Snapshotter, StartFailsOnUnopenablePath) {
  SnapshotterOptions opts;
  opts.path = "/nonexistent-dir-xyz/snap.jsonl";
  MetricsSnapshotter snapshotter(opts);
  EXPECT_FALSE(snapshotter.Start().ok());
}

TEST(RenderDashboard, ShowsVitalsFromDeltas) {
  MetricRegistry registry;
  registry.counter("caldb.engine.statements")->Add(100);
  registry.counter("caldb.cron.fires")->Add(3);
  registry.gauge("caldb.engine.pool.queue_depth")->Set(2);
  CounterDeltas deltas(&registry);
  const std::string frame = RenderDashboard(registry, deltas.Step(), 1.0);
  EXPECT_NE(frame.find("statements"), std::string::npos) << frame;
  EXPECT_NE(frame.find("100.0/s engine"), std::string::npos) << frame;
  EXPECT_NE(frame.find("cron"), std::string::npos) << frame;
  EXPECT_NE(frame.find("+3 fires"), std::string::npos) << frame;
  EXPECT_NE(frame.find("pool"), std::string::npos) << frame;
}

}  // namespace
}  // namespace caldb::obs
