#include "obs/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tests/obs/json_check.h"

namespace caldb::obs {
namespace {

using caldb::test::JsonValue;
using caldb::test::ParseJson;

std::string Escaped(std::string_view s) {
  std::string out;
  AppendJsonEscaped(&out, s);
  return out;
}

TEST(Json, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(Escaped("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(Escaped("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
}

TEST(Json, EscapesShortFormControls) {
  EXPECT_EQ(Escaped("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(Json, EscapesRemainingControlsAsUnicode) {
  EXPECT_EQ(Escaped(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(Escaped(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(Escaped(std::string(1, '\0')), "\\u0000");
}

TEST(Json, PassesPlainTextThrough) {
  EXPECT_EQ(Escaped("retrieve (t.day) from t in alerts"),
            "retrieve (t.day) from t in alerts");
}

TEST(Json, StringLiteralRoundTripsThroughParser) {
  const std::string nasty =
      "quote=\" backslash=\\ newline=\n tab=\t ctrl=\x01 done";
  std::string doc;
  AppendJsonString(&doc, nasty);
  std::optional<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_string());
  EXPECT_EQ(parsed->str, nasty);
}

TEST(Json, KeyEmitsQuotedNameAndColon) {
  std::string out;
  AppendJsonKey(&out, "ts_us");
  EXPECT_EQ(out, "\"ts_us\":");
}

TEST(Json, MicrosRendersFractionalMicroseconds) {
  std::string out;
  AppendJsonMicros(&out, 12'345'678);  // ns
  EXPECT_EQ(out, "12345.678");
  out.clear();
  AppendJsonMicros(&out, 999);
  EXPECT_EQ(out, "0.999");
  out.clear();
  AppendJsonMicros(&out, 0);
  EXPECT_EQ(out, "0.000");
}

TEST(Json, DoubleRoundTripsAndSanitizesNonFinite) {
  std::string out;
  AppendJsonDouble(&out, 0.25);
  std::optional<JsonValue> parsed = ParseJson(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->number, 0.25);

  out.clear();
  AppendJsonDouble(&out, std::numeric_limits<double>::quiet_NaN());
  parsed = ParseJson(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->number, 0.0);

  out.clear();
  AppendJsonDouble(&out, std::numeric_limits<double>::infinity());
  parsed = ParseJson(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->number, 0.0);
}

TEST(Json, ObjectWithEscapedStringsParses) {
  std::string doc = "{";
  AppendJsonKey(&doc, "stmt");
  AppendJsonString(&doc, "append t (x = \"v\\n\")");
  doc += ",";
  AppendJsonKey(&doc, "n");
  doc += "42";
  doc += "}";
  std::optional<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const JsonValue* stmt = parsed->Get("stmt");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->str, "append t (x = \"v\\n\")");
  const JsonValue* n = parsed->Get("n");
  ASSERT_NE(n, nullptr);
  EXPECT_DOUBLE_EQ(n->number, 42.0);
}

}  // namespace
}  // namespace caldb::obs
