#include "obs/log.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_check.h"

namespace caldb::obs {
namespace {

using caldb::test::JsonValue;
using caldb::test::ParseJson;

TEST(LogField, RendersEachTypeAsAJsonToken) {
  EXPECT_EQ(LogField("k", "text").json_value(), "\"text\"");
  EXPECT_EQ(LogField("k", int64_t{42}).json_value(), "42");
  EXPECT_EQ(LogField("k", -7).json_value(), "-7");
  EXPECT_EQ(LogField("k", uint64_t{9}).json_value(), "9");
  EXPECT_EQ(LogField("k", true).json_value(), "true");
  EXPECT_EQ(LogField("k", false).json_value(), "false");
  EXPECT_EQ(LogField("k", 0.5).json_value(), "0.5");
}

TEST(LogField, EscapesStringValues) {
  EXPECT_EQ(LogField("k", "a\"b\\c\nd").json_value(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Logger, RecordsAboveMinLevelOnly) {
  Logger log(8);
  log.set_min_level(LogLevel::kWarn);
  log.Log(LogLevel::kInfo, "dropped", {});
  log.Log(LogLevel::kWarn, "kept", {});
  log.Log(LogLevel::kError, "kept_too", {});
  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, "kept");
  EXPECT_EQ(records[1].event, "kept_too");
  EXPECT_EQ(log.total(), 2);
}

TEST(Logger, RingOverwritesOldest) {
  Logger log(4);
  for (int i = 0; i < 10; ++i) {
    log.Log(LogLevel::kInfo, "e" + std::to_string(i), {});
  }
  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].event, "e6");
  EXPECT_EQ(records[3].event, "e9");
  EXPECT_EQ(log.total(), 10);
}

TEST(Logger, StampsThreadLogContext) {
  Logger log(8);
  {
    ScopedLogContext scope{LogContext{7, "retrieve (t.x) from t in a"}};
    log.Log(LogLevel::kInfo, "inner", {});
  }
  log.Log(LogLevel::kInfo, "outer", {});
  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].session_id, 7u);
  EXPECT_EQ(records[0].statement, "retrieve (t.x) from t in a");
  EXPECT_EQ(records[1].session_id, 0u);
  EXPECT_TRUE(records[1].statement.empty());
}

TEST(Logger, ScopedContextRestoresPrevious) {
  {
    ScopedLogContext outer{LogContext{1, "outer stmt"}};
    {
      ScopedLogContext inner{LogContext{2, "inner stmt"}};
      EXPECT_EQ(CurrentLogContext().session_id, 2u);
    }
    EXPECT_EQ(CurrentLogContext().session_id, 1u);
    EXPECT_EQ(CurrentLogContext().statement, "outer stmt");
  }
  EXPECT_EQ(CurrentLogContext().session_id, 0u);
}

TEST(Logger, RenderedLinesAreValidJson) {
  Logger log(8);
  {
    ScopedLogContext scope{LogContext{3, "append t (x = \"a\nb\")"}};
    log.Log(LogLevel::kWarn, "db.slow_statement",
            {{"elapsed_ms", 41.5}, {"note", "path\\with\"stuff"}});
  }
  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const std::string line = RenderLogLine(records[0]);
  std::optional<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Get("level")->str, "warn");
  EXPECT_EQ(parsed->Get("event")->str, "db.slow_statement");
  EXPECT_DOUBLE_EQ(parsed->Get("session")->number, 3.0);
  EXPECT_EQ(parsed->Get("stmt")->str, "append t (x = \"a\nb\")");
  EXPECT_DOUBLE_EQ(parsed->Get("elapsed_ms")->number, 41.5);
  EXPECT_EQ(parsed->Get("note")->str, "path\\with\"stuff");
  EXPECT_GT(parsed->Get("ts_us")->number, 0.0);
  EXPECT_GE(parsed->Get("tid")->number, 1.0);
}

TEST(Logger, TailReturnsMostRecentLines) {
  Logger log(8);
  for (int i = 0; i < 5; ++i) {
    log.Log(LogLevel::kInfo, "e" + std::to_string(i), {});
  }
  const std::string tail = log.Tail(2);
  EXPECT_EQ(tail.find("e0"), std::string::npos);
  EXPECT_NE(tail.find("e3"), std::string::npos);
  EXPECT_NE(tail.find("e4"), std::string::npos);
  // One line per record, each newline-terminated.
  size_t newlines = 0;
  for (char c : tail) newlines += c == '\n';
  EXPECT_EQ(newlines, 2u);
}

TEST(Logger, FileSinkAppendsJsonLines) {
  const std::string path =
      ::testing::TempDir() + "caldb_log_sink_test.jsonl";
  std::remove(path.c_str());
  {
    Logger log(8);
    ASSERT_TRUE(log.SetSinkPath(path).ok());
    EXPECT_TRUE(log.has_sink());
    log.Log(LogLevel::kError, "boom", {{"detail", "it \"broke\""}});
    ASSERT_TRUE(log.SetSinkPath("").ok());  // close + flush
    EXPECT_FALSE(log.has_sink());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  buf[n] = '\0';
  std::string contents(buf);
  ASSERT_FALSE(contents.empty());
  ASSERT_EQ(contents.back(), '\n');
  contents.pop_back();
  std::optional<JsonValue> parsed = ParseJson(contents);
  ASSERT_TRUE(parsed.has_value()) << contents;
  EXPECT_EQ(parsed->Get("event")->str, "boom");
  EXPECT_EQ(parsed->Get("detail")->str, "it \"broke\"");
}

TEST(Logger, FlushDrainsBufferedInfoLinesWithoutClosingTheSink) {
  // Info-level lines are buffered (only warn+ fflush on the hot path), so
  // a reader sees nothing until Flush() — the shutdown path
  // (Engine::Stop) relies on this to not lose the tail of the log.
  const std::string path =
      ::testing::TempDir() + "caldb_log_flush_test.jsonl";
  std::remove(path.c_str());
  Logger log(8);
  ASSERT_TRUE(log.SetSinkPath(path).ok());
  log.Log(LogLevel::kInfo, "buffered_tail", {{"n", int64_t{1}}});

  auto read_all = [&path]() {
    std::string contents;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return contents;
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    contents.assign(buf, n);
    return contents;
  };

  log.Flush();
  std::string contents = read_all();
  EXPECT_NE(contents.find("buffered_tail"), std::string::npos);

  // The sink stays open: later records still land.
  log.Log(LogLevel::kInfo, "after_flush", {});
  log.Flush();
  EXPECT_NE(read_all().find("after_flush"), std::string::npos);

  ASSERT_TRUE(log.SetSinkPath("").ok());
  log.Flush();  // no sink: a no-op, not a crash
  std::remove(path.c_str());
}

TEST(Logger, ClearEmptiesRingAndTotal) {
  Logger log(8);
  log.Log(LogLevel::kInfo, "gone", {});
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.total(), 0);
}

TEST(Logger, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_EQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "error");
}

}  // namespace
}  // namespace caldb::obs
