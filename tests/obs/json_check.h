// A minimal recursive-descent JSON parser for tests: the obs layer only
// *emits* JSON (src/obs/json.h), so the parser that proves those emissions
// well-formed lives here, next to the tests that need it.  It builds a
// small DOM and rejects anything RFC 8259 rejects at the structural level
// (trailing garbage, bad escapes, unterminated strings, malformed
// numbers).  Not a validator of everything — numbers are parsed with
// strtod — but strict enough that "ParseJson succeeded" means a real
// parser would accept the document.

#ifndef CALDB_TESTS_OBS_JSON_CHECK_H_
#define CALDB_TESTS_OBS_JSON_CHECK_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace caldb::test {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                 // kArray
  std::map<std::string, JsonValue> fields;      // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Field lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  std::optional<JsonValue> Parse() {
    std::optional<JsonValue> v = ParseValue();
    SkipWs();
    if (!v.has_value() || pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return std::nullopt;
    switch (s_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't': {
        if (!ConsumeLiteral("true")) return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!ConsumeLiteral("false")) return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        return v;
      }
      case 'n': {
        if (!ConsumeLiteral("null")) return std::nullopt;
        return JsonValue{};
      }
      default:
        return ParseNumber();
    }
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return v;
    for (;;) {
      std::optional<JsonValue> key = ParseString();
      if (!key.has_value()) return std::nullopt;
      if (!Consume(':')) return std::nullopt;
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      v.fields[key->str] = std::move(*value);
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return v;
    for (;;) {
      std::optional<JsonValue> item = ParseValue();
      if (!item.has_value()) return std::nullopt;
      v.items.push_back(std::move(*item));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseString() {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') return std::nullopt;
    ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return v;
      }
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return std::nullopt;
        char esc = s_[pos_++];
        switch (esc) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return std::nullopt;
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return std::nullopt;
            }
            // The emitter only writes \u00XX; decode the Latin-1 subset
            // byte-for-byte and keep anything else as '?' (tests don't
            // emit it).
            v.str += code < 0x100 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return std::nullopt;
        }
        continue;
      }
      v.str += c;
      ++pos_;
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    std::string token(s_.substr(start, pos_ - start));
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

inline std::optional<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace caldb::test

#endif  // CALDB_TESTS_OBS_JSON_CHECK_H_
