#include "obs/audit.h"

#include <string>

#include <gtest/gtest.h>

#include "tests/obs/json_check.h"

namespace caldb::obs {
namespace {

using caldb::test::JsonValue;
using caldb::test::ParseJson;

AuditRecord CronRecord(const std::string& rule, int64_t sched, int64_t fired) {
  AuditRecord r;
  r.source = AuditRecord::Source::kDbCron;
  r.rule = rule;
  r.rule_id = 1;
  r.scheduled_day = sched;
  r.fired_day = fired;
  r.trigger = "dbcron";
  return r;
}

TEST(AuditRecord, ToStringShowsScheduledVsActual) {
  AuditRecord r = CronRecord("payday", 40, 42);
  r.seq = 7;
  r.duration_ns = 300'000;  // 0.3ms
  const std::string line = r.ToString();
  EXPECT_NE(line.find("#7 dbcron rule=payday"), std::string::npos) << line;
  EXPECT_NE(line.find("fired=day42"), std::string::npos) << line;
  EXPECT_NE(line.find("sched=day40"), std::string::npos) << line;
  EXPECT_NE(line.find("(late 2)"), std::string::npos) << line;
  EXPECT_NE(line.find(" ok "), std::string::npos) << line;
  EXPECT_NE(line.find("0.3ms"), std::string::npos) << line;
}

TEST(AuditRecord, ToStringOnTimeOmitsLag) {
  AuditRecord r = CronRecord("payday", 42, 42);
  EXPECT_EQ(r.ToString().find("late"), std::string::npos);
}

TEST(AuditRecord, ToStringStatementShowsTriggerAndSession) {
  AuditRecord r;
  r.source = AuditRecord::Source::kStatement;
  r.rule = "audit_rule";
  r.session_id = 3;
  r.trigger = "append alerts (day = 5)";
  const std::string line = r.ToString();
  EXPECT_NE(line.find("statement rule=audit_rule"), std::string::npos) << line;
  EXPECT_NE(line.find("session=3"), std::string::npos) << line;
  EXPECT_NE(line.find("trigger=\"append alerts (day = 5)\""),
            std::string::npos)
      << line;
  // No scheduled/fired days for event rules.
  EXPECT_EQ(line.find("sched="), std::string::npos) << line;
}

TEST(AuditRecord, ToStringRendersOutcomes) {
  AuditRecord r = CronRecord("r", 1, 1);
  r.outcome = AuditRecord::Outcome::kSuppressed;
  EXPECT_NE(r.ToString().find("suppressed"), std::string::npos);
  r.outcome = AuditRecord::Outcome::kError;
  r.error = "boom";
  EXPECT_NE(r.ToString().find("error=\"boom\""), std::string::npos);
}

TEST(AuditRecord, ToJsonIsValidAndEscaped) {
  AuditRecord r = CronRecord("pay\"day\\", 40, 42);
  r.seq = 2;
  r.duration_ns = 1500;
  r.outcome = AuditRecord::Outcome::kError;
  r.error = "line1\nline2";
  std::optional<JsonValue> parsed = ParseJson(r.ToJson());
  ASSERT_TRUE(parsed.has_value()) << r.ToJson();
  EXPECT_EQ(parsed->Get("source")->str, "dbcron");
  EXPECT_EQ(parsed->Get("outcome")->str, "error");
  EXPECT_EQ(parsed->Get("rule")->str, "pay\"day\\");
  EXPECT_DOUBLE_EQ(parsed->Get("scheduled_day")->number, 40.0);
  EXPECT_DOUBLE_EQ(parsed->Get("fired_day")->number, 42.0);
  EXPECT_EQ(parsed->Get("error")->str, "line1\nline2");
}

TEST(AuditTrail, StampsSeqAndWallClock) {
  AuditTrail trail(8);
  trail.Record(CronRecord("a", 1, 1));
  trail.Record(CronRecord("b", 2, 2));
  std::vector<AuditRecord> records = trail.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 1);
  EXPECT_EQ(records[1].seq, 2);
  EXPECT_GT(records[0].wall_us, 0);
  EXPECT_EQ(trail.total(), 2);
}

TEST(AuditTrail, RingBoundsOverwritingOldest) {
  AuditTrail trail(4);
  for (int i = 0; i < 100; ++i) {
    trail.Record(CronRecord("r" + std::to_string(i), i + 1, i + 1));
  }
  std::vector<AuditRecord> records = trail.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].rule, "r96");
  EXPECT_EQ(records[3].rule, "r99");
  // seq keeps counting across overwrites.
  EXPECT_EQ(records[3].seq, 100);
  EXPECT_EQ(trail.total(), 100);
}

TEST(AuditTrail, ToStringLimitsToMostRecent) {
  AuditTrail trail(8);
  for (int i = 0; i < 5; ++i) {
    trail.Record(CronRecord("r" + std::to_string(i), i + 1, i + 1));
  }
  const std::string out = trail.ToString(2);
  EXPECT_EQ(out.find("rule=r0"), std::string::npos);
  EXPECT_NE(out.find("rule=r3"), std::string::npos);
  EXPECT_NE(out.find("rule=r4"), std::string::npos);
}

TEST(AuditTrail, EmptyTrailSaysSo) {
  AuditTrail trail(8);
  EXPECT_NE(trail.ToString().find("no rule firings"), std::string::npos);
}

TEST(AuditTrail, ClearResets) {
  AuditTrail trail(8);
  trail.Record(CronRecord("gone", 1, 1));
  trail.Clear();
  EXPECT_TRUE(trail.Snapshot().empty());
  EXPECT_EQ(trail.total(), 0);
}

}  // namespace
}  // namespace caldb::obs
