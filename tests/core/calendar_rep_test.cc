// Regression surface for the shared CalendarRep (CSR nesting + COW
// handles): deep orders, empty-order preservation, structural equality
// across rep-shared and freshly-built values, and the set_granularity
// aliasing contract.  See calendar_rep.h for the layout.

#include "core/calendar_rep.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/calendar.h"
#include "obs/obs.h"

namespace caldb {
namespace {

Calendar O1(std::vector<Interval> v) {
  return Calendar::Order1(Granularity::kDays, std::move(v));
}

// {{{(1,2),(3,4)},{(5,6)}},{{(7,8)}}} plus one more wrap: order 4.
Calendar DeepCalendar() {
  Calendar o2a = Calendar::Nested(Granularity::kDays,
                                  {O1({{1, 2}, {3, 4}}), O1({{5, 6}})});
  Calendar o2b = Calendar::Nested(Granularity::kDays, {O1({{7, 8}})});
  Calendar o3 = Calendar::Nested(Granularity::kDays, {o2a, o2b});
  return Calendar::Nested(Granularity::kDays, {o3});
}

TEST(CalendarRepTest, Order4Navigation) {
  Calendar c = DeepCalendar();
  EXPECT_EQ(c.order(), 4);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.TotalIntervals(), 4);
  EXPECT_FALSE(c.IsNull());
  EXPECT_EQ(c.ToString(), "{{{{(1,2),(3,4)},{(5,6)}},{{(7,8)}}}}");

  Calendar o3 = c.child(0);
  EXPECT_EQ(o3.order(), 3);
  EXPECT_EQ(o3.size(), 2u);
  Calendar o2a = o3.child(0);
  EXPECT_EQ(o2a.order(), 2);
  EXPECT_EQ(o2a.size(), 2u);
  Calendar inner = o2a.child(0);
  EXPECT_EQ(inner.order(), 1);
  ASSERT_EQ(inner.intervals().size(), 2u);
  EXPECT_EQ(inner.intervals()[0], (Interval{1, 2}));
  EXPECT_EQ(o3.child(1).child(0).ToString(), "{(7,8)}");

  // Child views share the parent's rep: no interval data is copied.
  EXPECT_EQ(inner.intervals().data(), c.Leaves().data());
}

TEST(CalendarRepTest, Order4SpanFlattenAndContains) {
  Calendar c = DeepCalendar();
  ASSERT_TRUE(c.Span().has_value());
  EXPECT_EQ(*c.Span(), (Interval{1, 8}));
  Calendar flat = c.Flattened();
  EXPECT_EQ(flat.order(), 1);
  EXPECT_EQ(flat.ToString(), "{(1,2),(3,4),(5,6),(7,8)}");
  // The deep build concatenates already-sorted leaves, so flattening is a
  // zero-copy view of the same buffer.
  EXPECT_TRUE(c.LeavesSorted());
  EXPECT_EQ(flat.intervals().data(), c.Leaves().data());
  EXPECT_TRUE(c.ContainsPoint(5));
  EXPECT_FALSE(c.ContainsPoint(9));
}

TEST(CalendarRepTest, EmptyOrderKPreserved) {
  for (int k = 2; k <= 5; ++k) {
    Calendar empty = Calendar::Nested(Granularity::kDays, {}, k);
    EXPECT_EQ(empty.order(), k) << "order_if_empty=" << k;
    EXPECT_TRUE(empty.IsNull());
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_EQ(empty.TotalIntervals(), 0);
    EXPECT_FALSE(empty.Span().has_value());
  }
  // Distinct empty orders are not equal.
  EXPECT_FALSE(Calendar::Nested(Granularity::kDays, {}, 2) ==
               Calendar::Nested(Granularity::kDays, {}, 3));
}

TEST(CalendarRepTest, NestedOfEmptyChildrenKeepsShape) {
  // {{}..{}}: two empty order-1 children — order 2, size 2, null.
  Calendar c = Calendar::Nested(Granularity::kDays, {O1({}), O1({})});
  EXPECT_EQ(c.order(), 2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.IsNull());
  EXPECT_EQ(c.ToString(), "{{},{}}");
  EXPECT_TRUE(c.child(0).IsNull());
}

TEST(CalendarRepTest, EqualityAcrossSharedAndFreshReps) {
  Calendar built = DeepCalendar();
  Calendar shared = built;          // same rep
  Calendar rebuilt = DeepCalendar();  // fresh rep, same structure
  EXPECT_TRUE(built == shared);
  EXPECT_TRUE(built == rebuilt);
  EXPECT_NE(built.Leaves().data(), rebuilt.Leaves().data());

  // A view and an equivalent freshly-built calendar compare equal too.
  Calendar view = built.child(0);
  Calendar fresh_o3 = Calendar::Nested(
      Granularity::kDays,
      {Calendar::Nested(Granularity::kDays,
                        {O1({{1, 2}, {3, 4}}), O1({{5, 6}})}),
       Calendar::Nested(Granularity::kDays, {O1({{7, 8}})})});
  EXPECT_TRUE(view == fresh_o3);

  // Different leaves, same shape: unequal.
  Calendar other = Calendar::Nested(
      Granularity::kDays,
      {Calendar::Nested(
          Granularity::kDays,
          {Calendar::Nested(Granularity::kDays,
                            {O1({{1, 2}, {3, 9}}), O1({{5, 6}})}),
           Calendar::Nested(Granularity::kDays, {O1({{7, 8}})})})});
  EXPECT_FALSE(built == other);
}

TEST(CalendarRepTest, SetGranularityDoesNotAliasAcrossHandles) {
  Calendar a = DeepCalendar();
  Calendar b = a;
  // The two handles genuinely share one rep...
  ASSERT_EQ(a.Leaves().data(), b.Leaves().data());
  // ...yet mutating one's granularity leaves the other untouched.
  b.set_granularity(Granularity::kMonths);
  EXPECT_EQ(b.granularity(), Granularity::kMonths);
  EXPECT_EQ(a.granularity(), Granularity::kDays);
  // Still sharing: set_granularity is O(1), not a rebuild.
  EXPECT_EQ(a.Leaves().data(), b.Leaves().data());
  // Equality is granularity-sensitive.
  EXPECT_FALSE(a == b);
  b.set_granularity(Granularity::kDays);
  EXPECT_TRUE(a == b);
}

TEST(CalendarRepTest, ChildViewsInheritHandleGranularity) {
  Calendar c = DeepCalendar();
  c.set_granularity(Granularity::kWeeks);
  EXPECT_EQ(c.child(0).granularity(), Granularity::kWeeks);
  EXPECT_EQ(c.children()[0].granularity(), Granularity::kWeeks);
  EXPECT_EQ(c.Flattened().granularity(), Granularity::kWeeks);
}

TEST(CalendarRepTest, CopyCountsAsShareNotCopy) {
  Calendar c = DeepCalendar();
  obs::Counter* shares = obs::Metrics().counter("caldb.cal.rep_shares");
  obs::Counter* copies = obs::Metrics().counter("caldb.cal.rep_copies");
  const int64_t shares_before = shares->value();
  const int64_t copies_before = copies->value();
  Calendar copy = c;
  Calendar assigned;
  assigned = c;
  EXPECT_EQ(shares->value(), shares_before + 2);
  EXPECT_EQ(copies->value(), copies_before);
}

TEST(CalendarRepTest, ForEachLeafGroupWalksTreeOrder) {
  Calendar c = DeepCalendar();
  std::vector<size_t> offsets;
  std::vector<size_t> sizes;
  c.ForEachLeafGroup([&](size_t off, IntervalSpan group) {
    offsets.push_back(off);
    sizes.push_back(group.size());
  });
  EXPECT_EQ(offsets, (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 1, 1}));
}

TEST(CalendarRepTest, NestedLikeMirrorsShape) {
  Calendar shape = Calendar::Nested(Granularity::kDays,
                                    {O1({{1, 5}, {10, 15}}), O1({{20, 25}})});
  // One group per leaf of `shape`, deliberately unsorted within a group.
  std::vector<std::vector<Interval>> groups = {
      {{3, 4}, {1, 2}}, {{11, 12}}, {}};
  Calendar out =
      Calendar::NestedLike(shape, Granularity::kDays, std::move(groups));
  EXPECT_EQ(out.order(), 3);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.ToString(), "{{{(1,2),(3,4)},{(11,12)}},{{}}}");
}

TEST(CalendarRepTest, TransformLeavesKeepsStructure) {
  Calendar c = DeepCalendar();
  obs::Counter* rebuilds = obs::Metrics().counter("caldb.cal.cow_rebuilds");
  const int64_t before = rebuilds->value();
  Result<Calendar> shifted = c.TransformLeaves(
      Granularity::kDays, [](const Interval& i) -> Result<Interval> {
        return Interval{i.lo + 100, i.hi + 100};
      });
  ASSERT_TRUE(shifted.ok());
  EXPECT_EQ(rebuilds->value(), before + 1);
  EXPECT_EQ(shifted->order(), 4);
  EXPECT_EQ(shifted->ToString(), "{{{{(101,102),(103,104)},{(105,106)}},{{(107,108)}}}}");
  // The source is untouched (rebuild-on-write, not in-place).
  EXPECT_EQ(c.ToString(), "{{{{(1,2),(3,4)},{(5,6)}},{{(7,8)}}}}");
}

}  // namespace
}  // namespace caldb
