// Differential harness for the sweep kernels: every listop / set operator /
// grouping application is run through both the library (sweep-based) path
// and a naive quadratic reference written straight from the paper's
// definitions, over seeded random calendars — outputs must be bit-identical
// (Calendar::operator==, which compares granularity, order, and every
// interval).  Plus regression cases for the epoch-straddling skip-zero
// audit and the selection out-of-range contract.

#include "core/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/algebra.h"
#include "core/generate.h"

namespace caldb {
namespace {

Calendar Days(std::vector<Interval> v) {
  return Calendar::Order1(Granularity::kDays, std::move(v));
}

// --- naive reference operators (kept deliberately dumb) ---------------------

Calendar NaiveForEachOne(const Calendar& c, ListOp op, const Interval& r,
                         bool strict) {
  const bool clip = strict && ListOpClipsUnderStrict(op);
  std::vector<Interval> out;
  for (const Interval& ci : c.intervals()) {
    if (!EvalListOp(op, ci, r)) continue;
    if (clip) {
      std::optional<Interval> x = Intersect(ci, r);
      if (!x) continue;
      out.push_back(*x);
    } else {
      out.push_back(ci);
    }
  }
  return Calendar::Order1(c.granularity(), std::move(out));
}

Calendar NaiveForEachImpl(const Calendar& c, ListOp op, const Calendar& rhs,
                          bool strict, bool collapse_singleton) {
  if (rhs.order() == 1) {
    if (collapse_singleton && rhs.IsSingleton()) {
      return NaiveForEachOne(c, op, rhs.intervals().front(), strict);
    }
    std::vector<Calendar> children;
    for (const Interval& i : rhs.intervals()) {
      children.push_back(NaiveForEachOne(c, op, i, strict));
    }
    return Calendar::Nested(c.granularity(), std::move(children), 2);
  }
  std::vector<Calendar> children;
  for (const Calendar& rc : rhs.children()) {
    children.push_back(NaiveForEachImpl(c, op, rc, strict, false));
  }
  return Calendar::Nested(c.granularity(), std::move(children),
                          rhs.order() + 1);
}

Calendar NaiveForEach(const Calendar& c, ListOp op, const Calendar& rhs,
                      bool strict) {
  if (op == ListOp::kIntersects) {
    Calendar flat = rhs.order() == 1 ? rhs : rhs.Flattened();
    std::vector<Interval> out;
    if (strict) {
      for (const Interval& ci : c.intervals()) {
        for (const Interval& ri : flat.intervals()) {
          if (std::optional<Interval> x = Intersect(ci, ri)) out.push_back(*x);
        }
      }
    } else {
      for (const Interval& ci : c.intervals()) {
        for (const Interval& ri : flat.intervals()) {
          if (IntervalOverlaps(ci, ri)) {
            out.push_back(ci);
            break;
          }
        }
      }
    }
    return Calendar::Order1(c.granularity(), std::move(out));
  }
  return NaiveForEachImpl(c, op, rhs, strict, true);
}

// The seed's union: concatenate, sort, merge overlapping (adjacent kept).
Calendar NaiveUnion(const Calendar& a, const Calendar& b) {
  std::vector<Interval> merged(a.intervals().begin(), a.intervals().end());
  merged.insert(merged.end(), b.intervals().begin(), b.intervals().end());
  std::sort(merged.begin(), merged.end(),
            [](const Interval& x, const Interval& y) {
              return x.lo != y.lo ? x.lo < y.lo : x.hi < y.hi;
            });
  std::vector<Interval> out;
  for (const Interval& i : merged) {
    if (!out.empty() && i.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, i.hi);
    } else {
      out.push_back(i);
    }
  }
  return Calendar::Order1(a.granularity(), std::move(out));
}

// Per-minuend full scan of the subtrahend, remainder in offset space.
Calendar NaiveDifference(const Calendar& a, const Calendar& b) {
  std::vector<Interval> out;
  for (const Interval& ai : a.intervals()) {
    int64_t lo_off = PointToOffset(ai.lo);
    const int64_t hi_off = PointToOffset(ai.hi);
    bool consumed = false;
    for (const Interval& bi : b.intervals()) {
      const int64_t blo = PointToOffset(bi.lo);
      const int64_t bhi = PointToOffset(bi.hi);
      if (bhi < lo_off || blo > hi_off) continue;
      if (blo > lo_off) {
        out.push_back(Interval{OffsetToPoint(lo_off), OffsetToPoint(blo - 1)});
      }
      lo_off = bhi + 1;
      if (lo_off > hi_off) {
        consumed = true;
        break;
      }
    }
    if (!consumed) {
      out.push_back(Interval{OffsetToPoint(lo_off), OffsetToPoint(hi_off)});
    }
  }
  return Calendar::Order1(a.granularity(), std::move(out));
}

Calendar NaiveIntersection(const Calendar& a, const Calendar& b) {
  std::vector<Interval> out;
  for (const Interval& ai : a.intervals()) {
    for (const Interval& bi : b.intervals()) {
      if (std::optional<Interval> x = Intersect(ai, bi)) out.push_back(*x);
    }
  }
  return Calendar::Order1(a.granularity(), std::move(out));
}

// The seed's caloperate grouping loop, verbatim.
Calendar NaiveCalOperate(const Calendar& c, std::optional<TimePoint> te,
                         const std::vector<int64_t>& groups) {
  std::vector<Interval> out;
  size_t i = 0;
  size_t group_idx = 0;
  IntervalSpan src = c.intervals();
  while (i < src.size()) {
    if (te && src[i].hi > *te) break;
    const int64_t want = groups[group_idx % groups.size()];
    ++group_idx;
    const Interval first = src[i];
    Interval last = first;
    int64_t taken = 0;
    while (i < src.size() && taken < want) {
      if (te && src[i].hi > *te) break;
      last = src[i];
      ++i;
      ++taken;
    }
    if (taken == 0) break;
    out.push_back(Interval{first.lo, last.hi});
  }
  return Calendar::Order1(c.granularity(), std::move(out));
}

// --- seeded random calendar generators --------------------------------------

using Rng = std::mt19937_64;

int64_t Uniform(Rng& rng, int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
}

// Disjoint sorted run (possibly adjacent intervals), offset-space cursor so
// runs can straddle the epoch gap.
std::vector<Interval> RandomDisjoint(Rng& rng, int count, int64_t start_off) {
  std::vector<Interval> v;
  int64_t off = start_off;
  for (int i = 0; i < count; ++i) {
    const int64_t lo = off + Uniform(rng, 0, 3);
    const int64_t hi = lo + Uniform(rng, 0, 4);
    v.push_back({OffsetToPoint(lo), OffsetToPoint(hi)});
    off = hi + 1;
  }
  return v;
}

// Arbitrarily overlapping intervals (still sorted by Calendar::Order1).
std::vector<Interval> RandomMessy(Rng& rng, int count, int64_t start_off,
                                  int64_t span) {
  std::vector<Interval> v;
  for (int i = 0; i < count; ++i) {
    const int64_t lo = start_off + Uniform(rng, 0, span);
    const int64_t hi = lo + Uniform(rng, 0, 8);
    v.push_back({OffsetToPoint(lo), OffsetToPoint(hi)});
  }
  return v;
}

Calendar RandomOrder1(Rng& rng, int max_count) {
  const int count = static_cast<int>(Uniform(rng, 0, max_count));
  const int64_t start = Uniform(rng, -40, 40);  // often straddles the epoch
  if (Uniform(rng, 0, 1) == 0) {
    return Days(RandomDisjoint(rng, count, start));
  }
  return Days(RandomMessy(rng, count, start, 60));
}

Calendar RandomRhs(Rng& rng) {
  switch (Uniform(rng, 0, 3)) {
    case 0:  // singleton — exercises the order-collapse path
      return Days(RandomDisjoint(rng, 1, Uniform(rng, -30, 30)));
    case 1:
    case 2:
      return RandomOrder1(rng, 8);
    default: {  // order-2
      std::vector<Calendar> children;
      const int nchild = static_cast<int>(Uniform(rng, 1, 3));
      for (int i = 0; i < nchild; ++i) children.push_back(RandomOrder1(rng, 5));
      return Calendar::Nested(Granularity::kDays, std::move(children), 2);
    }
  }
}

constexpr ListOp kForeachOps[] = {ListOp::kOverlaps, ListOp::kDuring,
                                  ListOp::kMeets, ListOp::kBefore,
                                  ListOp::kBeforeEq};

// --- the differential sweep --------------------------------------------------

TEST(SweepDifferentialTest, AllOperatorsMatchNaiveReference) {
  Rng rng(0xCA1DB5EEDull);  // fixed seed: fully deterministic
  int64_t applications = 0;
  for (int trial = 0; trial < 700; ++trial) {
    const Calendar lhs = RandomOrder1(rng, 25);
    const Calendar rhs = RandomRhs(rng);
    const Interval probe{OffsetToPoint(Uniform(rng, -30, 30)),
                         OffsetToPoint(Uniform(rng, 31, 70))};

    for (ListOp op : kForeachOps) {
      for (bool strict : {true, false}) {
        auto got = ForEach(lhs, op, rhs, strict);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        Calendar want = NaiveForEach(lhs, op, rhs, strict);
        ASSERT_TRUE(*got == want)
            << "op=" << ListOpName(op) << " strict=" << strict
            << "\nlhs=" << lhs.ToString() << "\nrhs=" << rhs.ToString()
            << "\ngot=" << got->ToString() << "\nwant=" << want.ToString();
        ++applications;
        auto got_i = ForEachInterval(lhs, op, probe, strict);
        ASSERT_TRUE(got_i.ok());
        Calendar want_i = NaiveForEachOne(lhs, op, probe, strict);
        ASSERT_TRUE(*got_i == want_i)
            << "op=" << ListOpName(op) << " strict=" << strict
            << "\nlhs=" << lhs.ToString() << "\nprobe=" << FormatInterval(probe)
            << "\ngot=" << got_i->ToString() << "\nwant=" << want_i.ToString();
        ++applications;
      }
    }

    // Relaxed `intersects` is an overlap semi-join — correct for arbitrary
    // sorted operands, so it gets the messy inputs too.
    {
      auto got = ForEach(lhs, ListOp::kIntersects, rhs, /*strict=*/false);
      ASSERT_TRUE(got.ok());
      Calendar want = NaiveForEach(lhs, ListOp::kIntersects, rhs, false);
      ASSERT_TRUE(*got == want)
          << "relaxed intersects\nlhs=" << lhs.ToString()
          << "\nrhs=" << rhs.ToString() << "\ngot=" << got->ToString()
          << "\nwant=" << want.ToString();
      ++applications;
    }

    // Set operators and strict `intersects`: point-set operands (disjoint
    // runs — the documented normal form for the set layer).
    const Calendar a = Days(RandomDisjoint(
        rng, static_cast<int>(Uniform(rng, 0, 20)), Uniform(rng, -30, 10)));
    const Calendar b = Days(RandomDisjoint(
        rng, static_cast<int>(Uniform(rng, 0, 20)), Uniform(rng, -30, 10)));
    {
      auto got = ForEach(a, ListOp::kIntersects, b, /*strict=*/true);
      ASSERT_TRUE(got.ok());
      Calendar want = NaiveForEach(a, ListOp::kIntersects, b, true);
      ASSERT_TRUE(*got == want)
          << "strict intersects\na=" << a.ToString() << "\nb=" << b.ToString()
          << "\ngot=" << got->ToString() << "\nwant=" << want.ToString();
      ++applications;
    }
    auto u = Union(a, b);
    ASSERT_TRUE(u.ok());
    ASSERT_TRUE(*u == NaiveUnion(a, b))
        << "a=" << a.ToString() << " b=" << b.ToString()
        << "\ngot=" << u->ToString();
    auto d = Difference(a, b);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(*d == NaiveDifference(a, b))
        << "a=" << a.ToString() << " b=" << b.ToString()
        << "\ngot=" << d->ToString();
    auto x = Intersection(a, b);
    ASSERT_TRUE(x.ok());
    ASSERT_TRUE(*x == NaiveIntersection(a, b))
        << "a=" << a.ToString() << " b=" << b.ToString()
        << "\ngot=" << x->ToString();
    applications += 3;

    // caloperate grouping, sometimes with a te cutoff at/near the epoch.
    std::vector<int64_t> groups;
    const int ngroups = static_cast<int>(Uniform(rng, 1, 3));
    for (int i = 0; i < ngroups; ++i) groups.push_back(Uniform(rng, 1, 5));
    std::optional<TimePoint> te;
    if (Uniform(rng, 0, 2) == 0) te = OffsetToPoint(Uniform(rng, -10, 40));
    auto g = CalOperate(a, te, groups);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(*g == NaiveCalOperate(a, te, groups))
        << "a=" << a.ToString() << "\ngot=" << g->ToString();
    ++applications;
  }
  // Acceptance floor: >= 10k randomized operator applications per run.
  EXPECT_GE(applications, 10000);
}

// Kernel-level differential: SweepJoin emits exactly the pairs the naive
// join emits, in the same order, for every op and both monotonicity modes.
TEST(SweepDifferentialTest, SweepJoinPairStreamMatchesNaive) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const bool disjoint = Uniform(rng, 0, 1) == 0;
    std::vector<Interval> lhs =
        disjoint ? RandomDisjoint(rng, 20, Uniform(rng, -30, 0))
                 : RandomMessy(rng, 20, Uniform(rng, -30, 0), 50);
    std::sort(lhs.begin(), lhs.end(), [](const Interval& p, const Interval& q) {
      return p.lo != q.lo ? p.lo < q.lo : p.hi < q.hi;
    });
    std::vector<Interval> rhs = RandomDisjoint(rng, 10, Uniform(rng, -20, 10));
    bool hi_mono = true;
    for (size_t i = 1; i < lhs.size(); ++i) {
      hi_mono = hi_mono && lhs[i].hi >= lhs[i - 1].hi;
    }
    for (ListOp op : {ListOp::kOverlaps, ListOp::kDuring, ListOp::kMeets,
                      ListOp::kBefore, ListOp::kBeforeEq,
                      ListOp::kIntersects}) {
      std::vector<std::pair<size_t, size_t>> got;
      std::vector<std::pair<size_t, size_t>> want;
      SweepJoin(lhs, op, rhs, hi_mono,
                [&](size_t i, size_t j) { got.emplace_back(i, j); });
      naive::Join(lhs, op, rhs,
                  [&](size_t i, size_t j) { want.emplace_back(i, j); });
      ASSERT_EQ(got, want) << "op=" << ListOpName(op)
                           << " disjoint=" << disjoint;
    }
  }
}

// The kernel must do asymptotically less work than the naive join on
// disjoint runs: comparisons scale with n + m + k, not n * m.
TEST(SweepKernelTest, ComparisonsBeatNaiveOnDisjointRuns) {
  std::vector<Interval> days;
  for (int64_t i = 1; i <= 2000; ++i) days.push_back({i, i});
  std::vector<Interval> blocks;
  for (int64_t i = 1; i + 29 <= 2000; i += 30) blocks.push_back({i, i + 29});
  auto drop = [](size_t, size_t) {};
  SweepStats sweep = SweepJoin(days, ListOp::kDuring, blocks, true, drop);
  SweepStats naive = naive::Join(days, ListOp::kDuring, blocks, drop);
  EXPECT_EQ(sweep.emits, naive.emits);
  EXPECT_LT(sweep.comparisons, naive.comparisons / 5);
}

TEST(SweepKernelTest, GallopSkipsEngageOnBeforePredicates) {
  std::vector<Interval> days;
  for (int64_t i = 1; i <= 5000; ++i) days.push_back({i, i});
  // A single probe far to the right: the prefix boundary is found by
  // galloping, not by touching all 5000 elements one comparison at a time.
  const std::vector<Interval> probe = {{4900, 4950}};
  SweepStats st =
      SweepJoin(days, ListOp::kBefore, probe, true, [](size_t, size_t) {});
  EXPECT_EQ(st.emits, 4900);
  EXPECT_GT(st.gallop_skips, 4000);
  EXPECT_LT(st.comparisons, 100);
}

// --- order-contract regression (satellite 3) --------------------------------

TEST(SweepForEachOrderContractTest, SingletonVsOneElementOrder2Differ) {
  Calendar c = Days({{1, 5}, {6, 10}, {11, 15}});
  // Order-1 singleton rhs: treated as a plain interval -> order 1.
  Calendar singleton = Calendar::Singleton(Granularity::kDays, {1, 12});
  auto flat = ForEach(c, ListOp::kDuring, singleton, true);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->order(), 1);
  EXPECT_EQ(flat->ToString(), "{(1,5),(6,10)}");
  // A 1-element order-2 rhs holding the same interval: foreach maps over
  // its children -> order 3, per the header contract (order k -> k+1).
  Calendar nested =
      Calendar::Nested(Granularity::kDays, {Days({{1, 12}})}, 2);
  ASSERT_EQ(nested.order(), 2);
  auto deep = ForEach(c, ListOp::kDuring, nested, true);
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ(deep->order(), 3);
  ASSERT_EQ(deep->children().size(), 1u);
  EXPECT_EQ(deep->children()[0].order(), 2);
  EXPECT_EQ(deep->children()[0].ToString(), "{{(1,5),(6,10)}}");
  // And an order-1 rhs with one interval reached per-element (not top
  // level) keeps its child slot: 2-element order-1 -> order 2, 2 children.
  auto mid = ForEach(c, ListOp::kDuring, Days({{1, 12}, {13, 20}}), true);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->order(), 2);
  EXPECT_EQ(mid->size(), 2u);
}

// --- epoch / skip-zero regressions (satellite 2) ----------------------------

TEST(SweepEpochTest, IntervalNeverContainsZero) {
  Interval straddle{-3, 2};
  EXPECT_FALSE(straddle.Contains(0));
  EXPECT_TRUE(straddle.Contains(-1));
  EXPECT_TRUE(straddle.Contains(1));
  // 5 points: -3,-2,-1,1,2 — the zero gap is not counted.
  EXPECT_EQ(straddle.length(), 5);
  EXPECT_EQ(PointDistance(-1, 1), 1);
  EXPECT_FALSE(MakeInterval(0, 4).ok());
  EXPECT_FALSE(MakeInterval(-2, 0).ok());
  ASSERT_TRUE(MakeInterval(-2, 3).ok());
}

TEST(SweepEpochTest, CalOperateGroupStraddlingEpoch) {
  // Seven day-points around the epoch, grouped in pairs: the group that
  // straddles the gap covers (-1,1) — exactly 2 points, never point 0.
  Calendar days = Days({{-3, -3}, {-2, -2}, {-1, -1}, {1, 1}, {2, 2}, {3, 3},
                        {4, 4}});
  auto grouped = CalOperate(days, std::nullopt, {2});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->ToString(), "{(-3,-2),(-1,1),(2,3),(4,4)}");
  const Interval& straddle = grouped->intervals()[1];
  EXPECT_EQ(straddle.length(), 2);
  EXPECT_FALSE(straddle.Contains(0));
  EXPECT_FALSE(grouped->ContainsPoint(0));
  // A te cutoff on the negative side stops before the epoch group.
  auto cut = CalOperate(days, TimePoint{-1}, {2});
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->ToString(), "{(-3,-2),(-1,-1)}");
}

TEST(SweepEpochTest, JoinsAcrossTheEpochGap) {
  // Meets across the gap: (-3,-1) does NOT meet (1,4) — there is no shared
  // endpoint, the points are merely consecutive.
  EXPECT_FALSE(IntervalMeets({-3, -1}, {1, 4}));
  auto met = ForEachInterval(Days({{-3, -1}}), ListOp::kMeets, {1, 4}, false);
  ASSERT_TRUE(met.ok());
  EXPECT_TRUE(met->IsNull());
  // Union keeps runs that merely touch across the gap distinct.
  auto u = Union(Days({{-2, -1}}), Days({{1, 3}}));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->ToString(), "{(-2,-1),(1,3)}");
  // Difference splitting across the gap (also covered in algebra_test).
  auto d = Difference(Days({{-3, 3}}), Days({{-1, 1}}));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "{(-3,-2),(2,3)}");
}

// --- selection out-of-range contract (satellite 1) --------------------------

TEST(SweepSelectionContractTest, NegativeOutOfRangeSelectsNothingNeverWraps) {
  Calendar c = Days({{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}});
  auto r = Select({SelectionItem::Index(-8)}, c);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsNull());
  // -5 is exactly in range on 5 elements: first element, no off-by-one.
  auto edge = Select({SelectionItem::Index(-5)}, c);
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge->ToString(), "{(1,1)}");
  auto past = Select({SelectionItem::Index(-6)}, c);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->IsNull());
  // Same per-child on order 2: short children contribute nothing.
  Calendar nested = Calendar::Nested(
      Granularity::kDays, {Days({{1, 1}}), Days({{2, 2}, {3, 3}})});
  auto spliced = Select({SelectionItem::Index(-2)}, nested);
  ASSERT_TRUE(spliced.ok());
  EXPECT_EQ(spliced->ToString(), "{(2,2)}");
}

TEST(SweepSelectionContractTest, MalformedPredicatesRejected) {
  Calendar c = Days({{1, 1}, {2, 2}});
  EXPECT_FALSE(Select({SelectionItem::Index(0)}, c).ok());
  EXPECT_FALSE(Select({SelectionItem::Range(0, SelectionItem::kLastMarker)}, c)
                   .ok());
  EXPECT_FALSE(Select({SelectionItem::Range(-3, 2)}, c).ok());
  EXPECT_FALSE(Select({SelectionItem::Range(3, 2)}, c).ok());
}

TEST(SweepSelectionContractTest, OverLongRangeClampsToElementCount) {
  Calendar c = Days({{1, 1}, {2, 2}, {3, 3}});
  // Must answer instantly (clamped to n), selecting the whole calendar.
  auto r = Select({SelectionItem::Range(2, 4000000000000LL)}, c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(2,2),(3,3)}");
}

}  // namespace
}  // namespace caldb
