// EX-C / EX-D: generate and caloperate, matched against §3.2's examples.

#include "core/generate.h"

#include <gtest/gtest.h>

#include "core/algebra.h"

namespace caldb {
namespace {

TEST(GenerateTest, PaperYearsInDaysExample) {
  // generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) ≡
  //   {(1,365),(366,731),(732,1096),(1097,1461),(1462,1826),(1827,1829)}
  TimeSystem ts{CivilDate{1987, 1, 1}};
  auto span = ts.DayIntervalFromCivil({1987, 1, 1}, {1992, 1, 3});
  ASSERT_TRUE(span.ok());
  auto r = GenerateBaseCalendar(ts, Granularity::kYears, Granularity::kDays,
                                *span, /*clip=*/true);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ToString(),
            "{(1,365),(366,731),(732,1096),(1097,1461),(1462,1826),(1827,1829)}");
}

TEST(GenerateTest, UnclippedKeepsWholeGranules) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  auto r = GenerateBaseCalendar(ts, Granularity::kWeeks, Granularity::kDays,
                                Interval{1, 31}, /*clip=*/false);
  ASSERT_TRUE(r.ok());
  // Whole weeks overlapping January: first is the paper's (-4,3).
  EXPECT_EQ(r->ToString(), "{(-4,3),(4,10),(11,17),(18,24),(25,31)}");
}

TEST(GenerateTest, ClippedTrimsBothEnds) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  auto r = GenerateBaseCalendar(ts, Granularity::kWeeks, Granularity::kDays,
                                Interval{5, 20}, /*clip=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(5,10),(11,17),(18,20)}");
}

TEST(GenerateTest, SpanBeforeEpoch) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  auto r = GenerateBaseCalendar(ts, Granularity::kMonths, Granularity::kDays,
                                Interval{-61, -1}, /*clip=*/false);
  ASSERT_TRUE(r.ok());
  // Nov 1992 (30 days) and Dec 1992 (31 days): (-61,-32),(-31,-1).
  EXPECT_EQ(r->ToString(), "{(-61,-32),(-31,-1)}");
}

TEST(GenerateTest, MonthsInYearUnits) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  auto r = GenerateBaseCalendar(ts, Granularity::kYears, Granularity::kMonths,
                                Interval{1, 24}, /*clip=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(1,12),(13,24)}");
}

TEST(GenerateTest, CoarserUnitRejected) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  EXPECT_FALSE(GenerateBaseCalendar(ts, Granularity::kDays, Granularity::kMonths,
                                    Interval{1, 12}, true)
                   .ok());
}

TEST(GenerateTest, IdenticalGranularityIsIdentityGrid) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  auto r = GenerateBaseCalendar(ts, Granularity::kDays, Granularity::kDays,
                                Interval{-2, 2}, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(-2,-2),(-1,-1),(1,1),(2,2)}");
}

TEST(CalOperateTest, PaperWeeksFromDays) {
  // caloperate(<days of year>, *; 7) ≡ {(1,7),(8,14),(15,21),...}
  std::vector<Interval> days;
  for (int64_t d = 1; d <= 365; ++d) days.push_back({d, d});
  Calendar c = Calendar::Order1(Granularity::kDays, days);
  auto r = CalOperate(c, std::nullopt, {7});
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->size(), 3u);
  EXPECT_EQ(r->intervals()[0], (Interval{1, 7}));
  EXPECT_EQ(r->intervals()[1], (Interval{8, 14}));
  EXPECT_EQ(r->intervals()[2], (Interval{15, 21}));
  // 365 = 52*7 + 1: a trailing partial group is kept.
  EXPECT_EQ(r->size(), 53u);
  EXPECT_EQ(r->intervals()[52], (Interval{365, 365}));
}

TEST(CalOperateTest, PaperQuartersFromMonths) {
  // caloperate(MONTHS, *; 3) ≡ {(1,90),(91,181),...} for 1993.
  TimeSystem ts{CivilDate{1993, 1, 1}};
  auto months = GenerateBaseCalendar(ts, Granularity::kMonths, Granularity::kDays,
                                     Interval{1, 365}, false);
  ASSERT_TRUE(months.ok());
  auto r = CalOperate(*months, std::nullopt, {3});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);
  EXPECT_EQ(r->intervals()[0], (Interval{1, 90}));
  EXPECT_EQ(r->intervals()[1], (Interval{91, 181}));
  EXPECT_EQ(r->intervals()[2], (Interval{182, 273}));
  EXPECT_EQ(r->intervals()[3], (Interval{274, 365}));
}

TEST(CalOperateTest, CircularGroupList) {
  std::vector<Interval> points;
  for (int64_t d = 1; d <= 10; ++d) points.push_back({d, d});
  Calendar c = Calendar::Order1(Granularity::kDays, points);
  auto r = CalOperate(c, std::nullopt, {2, 3});
  ASSERT_TRUE(r.ok());
  // Groups of 2,3,2,3 = 10 points.
  EXPECT_EQ(r->ToString(), "{(1,2),(3,5),(6,7),(8,10)}");
}

TEST(CalOperateTest, EndTimeBoundsConsumption) {
  std::vector<Interval> points;
  for (int64_t d = 1; d <= 10; ++d) points.push_back({d, d});
  Calendar c = Calendar::Order1(Granularity::kDays, points);
  auto r = CalOperate(c, TimePoint{7}, {3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(1,3),(4,6),(7,7)}");
}

TEST(CalOperateTest, Validation) {
  Calendar c = Calendar::Order1(Granularity::kDays, {{1, 1}});
  EXPECT_FALSE(CalOperate(c, std::nullopt, {}).ok());
  EXPECT_FALSE(CalOperate(c, std::nullopt, {0}).ok());
  EXPECT_FALSE(CalOperate(c, std::nullopt, {-3}).ok());
  Calendar nested = Calendar::Nested(Granularity::kDays, {c});
  EXPECT_FALSE(CalOperate(nested, std::nullopt, {2}).ok());
}

TEST(RescaleTest, MonthsToDays) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  Calendar months = Calendar::Order1(Granularity::kMonths, {{1, 1}, {2, 3}});
  auto r = Rescale(ts, months, Granularity::kDays);
  ASSERT_TRUE(r.ok());
  // Jan -> (1,31); Feb..Mar -> (32,90).
  EXPECT_EQ(r->ToString(), "{(1,31),(32,90)}");
  EXPECT_EQ(r->granularity(), Granularity::kDays);
}

TEST(RescaleTest, NestedCalendars) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  Calendar inner = Calendar::Order1(Granularity::kYears, {{1, 1}});
  Calendar nested = Calendar::Nested(Granularity::kYears, {inner});
  auto r = Rescale(ts, nested, Granularity::kMonths);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order(), 2);
  EXPECT_EQ(r->ToString(), "{{(1,12)}}");
}

TEST(RescaleTest, SameGranularityIsIdentity) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  Calendar c = Calendar::Order1(Granularity::kDays, {{1, 5}});
  auto r = Rescale(ts, c, Granularity::kDays);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, c);
}

TEST(RescaleTest, CoarserTargetRejected) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  Calendar c = Calendar::Order1(Granularity::kDays, {{1, 5}});
  EXPECT_FALSE(Rescale(ts, c, Granularity::kMonths).ok());
}

TEST(RescaleTest, WeeksAcrossEpoch) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  Calendar weeks = Calendar::Order1(Granularity::kWeeks, {{1, 2}});
  auto r = Rescale(ts, weeks, Granularity::kDays);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(-4,10)}");
}

}  // namespace
}  // namespace caldb
