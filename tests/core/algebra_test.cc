#include "core/algebra.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

Calendar Days(std::vector<Interval> v) {
  return Calendar::Order1(Granularity::kDays, std::move(v));
}

// --- foreach ---------------------------------------------------------------

TEST(ForEachTest, LeftOperandMustBeOrder1) {
  Calendar nested = Calendar::Nested(Granularity::kDays, {Days({{1, 5}})});
  EXPECT_FALSE(ForEachInterval(nested, ListOp::kDuring, {1, 9}, true).ok());
}

TEST(ForEachTest, GranularityMismatchRejected) {
  Calendar weeks = Calendar::Order1(Granularity::kWeeks, {{1, 4}});
  EXPECT_FALSE(
      ForEach(Days({{1, 5}}), ListOp::kDuring, weeks, /*strict=*/true).ok());
}

TEST(ForEachTest, StrictBeforeKeepsWholeIntervals) {
  // Non-overlapping ops keep elements whole even under the strict foreach
  // (matches the paper's AM_BUS_DAYS:<:LDOM_HOL example).
  Calendar c = Days({{1, 1}, {2, 2}, {5, 5}});
  auto r = ForEachInterval(c, ListOp::kBefore, {3, 3}, /*strict=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(1,1),(2,2)}");
}

TEST(ForEachTest, SingletonRhsCollapsesToOrder1) {
  Calendar c = Days({{1, 5}, {6, 10}, {11, 15}});
  Calendar rhs = Calendar::Singleton(Granularity::kDays, {6, 12});
  auto r = ForEach(c, ListOp::kDuring, rhs, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order(), 1);
  EXPECT_EQ(r->ToString(), "{(6,10)}");
}

TEST(ForEachTest, MultiIntervalRhsYieldsOrder2) {
  Calendar c = Days({{1, 5}, {6, 10}, {11, 15}});
  Calendar rhs = Days({{1, 10}, {11, 20}});
  auto r = ForEach(c, ListOp::kDuring, rhs, true);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->order(), 2);
  EXPECT_EQ(r->ToString(), "{{(1,5),(6,10)},{(11,15)}}");
}

TEST(ForEachTest, EmptyChildrenAreKept) {
  Calendar c = Days({{1, 5}});
  Calendar rhs = Days({{1, 10}, {11, 20}});
  auto r = ForEach(c, ListOp::kDuring, rhs, true);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->order(), 2);
  EXPECT_EQ(r->size(), 2u);
  EXPECT_TRUE(r->children()[1].IsNull());
}

TEST(ForEachTest, Order2RhsYieldsOrder3) {
  Calendar c = Days({{1, 5}, {6, 10}});
  Calendar rhs = Calendar::Nested(Granularity::kDays,
                                  {Days({{1, 10}}), Days({{1, 5}, {6, 10}})});
  auto r = ForEach(c, ListOp::kDuring, rhs, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order(), 3);
  // Even a single-interval child stays nested (rectangularity).
  EXPECT_EQ(r->children()[0].order(), 2);
}

TEST(ForEachTest, StrictIntersectsIsSetIntersection) {
  Calendar ldom = Days({{31, 31}, {59, 59}, {90, 90}});
  Calendar holidays = Days({{31, 31}, {90, 90}});
  auto r = ForEach(ldom, ListOp::kIntersects, holidays, /*strict=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order(), 1);
  EXPECT_EQ(r->ToString(), "{(31,31),(90,90)}");
}

TEST(ForEachTest, StrictIntersectsClipsPartialOverlap) {
  auto r = ForEach(Days({{1, 10}}), ListOp::kIntersects, Days({{5, 20}}), true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(5,10)}");
}

TEST(ForEachTest, RelaxedIntersectsKeepsWholeElements) {
  auto r = ForEach(Days({{1, 10}, {15, 20}}), ListOp::kIntersects,
                   Days({{5, 8}}), /*strict=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(1,10)}");
}

TEST(ForEachTest, IntersectsFlattensNestedRhs) {
  Calendar rhs = Calendar::Nested(Granularity::kDays,
                                  {Days({{1, 3}}), Days({{8, 9}})});
  auto r = ForEach(Days({{2, 2}, {5, 5}, {8, 8}}), ListOp::kIntersects, rhs, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(2,2),(8,8)}");
}

// --- selection --------------------------------------------------------------

TEST(SelectTest, IndexFromFront) {
  Calendar c = Days({{1, 3}, {4, 10}, {11, 17}, {18, 24}, {25, 31}});
  auto r = Select({SelectionItem::Index(3)}, c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(11,17)}");
}

TEST(SelectTest, NegativeIndexFromEnd) {
  Calendar c = Days({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  auto r = Select({SelectionItem::Index(-2)}, c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(3,3)}");
}

TEST(SelectTest, LastElement) {
  Calendar c = Days({{1, 1}, {2, 2}, {3, 3}});
  auto r = Select({SelectionItem::Last()}, c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(3,3)}");
}

TEST(SelectTest, ListAndRange) {
  Calendar c = Days({{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}});
  auto list = Select({SelectionItem::Index(1), SelectionItem::Index(4)}, c);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->ToString(), "{(1,1),(4,4)}");
  auto range = Select({SelectionItem::Range(2, 4)}, c);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->ToString(), "{(2,2),(3,3),(4,4)}");
  auto open = Select({SelectionItem::Range(3, SelectionItem::kLastMarker)}, c);
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->ToString(), "{(3,3),(4,4),(5,5)}");
}

TEST(SelectTest, OutOfRangeSelectsNothing) {
  Calendar c = Days({{1, 1}, {2, 2}});
  auto r = Select({SelectionItem::Index(5)}, c);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsNull());
  auto neg = Select({SelectionItem::Index(-5)}, c);
  ASSERT_TRUE(neg.ok());
  EXPECT_TRUE(neg->IsNull());
}

TEST(SelectTest, Order2SplicesPerChild) {
  Calendar nested = Calendar::Nested(
      Granularity::kDays, {Days({{1, 3}, {4, 10}}), Days({{32, 38}, {39, 45}})});
  auto r = Select({SelectionItem::Index(2)}, nested);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order(), 1);
  EXPECT_EQ(r->ToString(), "{(4,10),(39,45)}");
}

TEST(SelectTest, Order2SkipsShortChildren) {
  Calendar nested = Calendar::Nested(
      Granularity::kDays, {Days({{1, 1}}), Days({{2, 2}, {3, 3}})});
  auto r = Select({SelectionItem::Index(2)}, nested);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(3,3)}");
}

TEST(SelectTest, Order3ReducesToOrder2) {
  Calendar leaf1 = Days({{1, 1}});
  Calendar leaf2 = Days({{2, 2}});
  Calendar mid1 = Calendar::Nested(Granularity::kDays, {leaf1, leaf2});
  Calendar mid2 = Calendar::Nested(Granularity::kDays, {leaf2, leaf1});
  Calendar top = Calendar::Nested(Granularity::kDays, {mid1, mid2});
  ASSERT_EQ(top.order(), 3);
  auto r = Select({SelectionItem::Index(1)}, top);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order(), 2);
  EXPECT_EQ(r->ToString(), "{{(1,1)},{(2,2)}}");
}

TEST(SelectTest, EmptyPredicateRejected) {
  EXPECT_FALSE(Select({}, Days({{1, 1}})).ok());
}

// --- set operators ----------------------------------------------------------

TEST(SetOpsTest, UnionMergesOverlapsKeepsAdjacent) {
  auto r = Union(Days({{1, 5}, {10, 12}}), Days({{3, 8}, {13, 14}}));
  ASSERT_TRUE(r.ok());
  // (1,5) and (3,8) overlap -> (1,8); (10,12) and (13,14) are adjacent but
  // kept distinct.
  EXPECT_EQ(r->ToString(), "{(1,8),(10,12),(13,14)}");
}

TEST(SetOpsTest, UnionOfPointLists) {
  // The EMP-DAYS combination: (LDOM - LDOM_HOL) + LAST_BUS_DAY.
  auto diff = Difference(Days({{31, 31}, {59, 59}, {90, 90}}),
                         Days({{31, 31}, {90, 90}}));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->ToString(), "{(59,59)}");
  auto uni = Union(*diff, Days({{30, 30}, {88, 88}}));
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->ToString(), "{(30,30),(59,59),(88,88)}");
}

TEST(SetOpsTest, DifferenceSplitsIntervals) {
  auto r = Difference(Days({{1, 10}}), Days({{4, 6}}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(1,3),(7,10)}");
}

TEST(SetOpsTest, DifferenceAcrossZeroGap) {
  // Subtracting (-1,-1) from (-3,3) must yield (-3,-2) and (1,3): no
  // interval may contain the nonexistent point 0.
  auto r = Difference(Days({{-3, 3}}), Days({{-1, -1}}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(-3,-2),(1,3)}");
}

TEST(SetOpsTest, DifferenceConsumesAll) {
  auto r = Difference(Days({{3, 5}}), Days({{1, 9}}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsNull());
}

TEST(SetOpsTest, IntersectionClips) {
  auto r = Intersection(Days({{1, 5}, {8, 12}}), Days({{4, 9}}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "{(4,5),(8,9)}");
}

TEST(SetOpsTest, RequireOrder1AndMatchingGranularity) {
  Calendar nested = Calendar::Nested(Granularity::kDays, {Days({{1, 1}})});
  EXPECT_FALSE(Union(nested, Days({{1, 1}})).ok());
  Calendar weeks = Calendar::Order1(Granularity::kWeeks, {{1, 1}});
  EXPECT_FALSE(Union(weeks, Days({{1, 1}})).ok());
  EXPECT_FALSE(Difference(weeks, Days({{1, 1}})).ok());
  EXPECT_FALSE(Intersection(weeks, Days({{1, 1}})).ok());
}

// Property sweep: for random-ish interval lists, difference and
// intersection partition the left operand.
class SetOpsProperty : public ::testing::TestWithParam<int> {};

TEST_P(SetOpsProperty, DiffAndIntersectPartitionLeft) {
  // Deterministic pseudo-random lists seeded by the parameter.
  uint64_t seed = static_cast<uint64_t>(GetParam()) * 2654435761u + 1;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return (seed >> 33) % 40 + 1;
  };
  std::vector<Interval> av;
  std::vector<Interval> bv;
  int64_t pos = 1;
  for (int i = 0; i < 8; ++i) {
    int64_t lo = pos + static_cast<int64_t>(next() % 5);
    int64_t hi = lo + static_cast<int64_t>(next() % 7);
    av.push_back({lo, hi});
    pos = hi + 2;
  }
  pos = 1;
  for (int i = 0; i < 8; ++i) {
    int64_t lo = pos + static_cast<int64_t>(next() % 6);
    int64_t hi = lo + static_cast<int64_t>(next() % 9);
    bv.push_back({lo, hi});
    pos = hi + 2;
  }
  Calendar a = Days(av);
  Calendar b = Days(bv);
  auto diff = Difference(a, b);
  auto inter = Intersection(a, b);
  ASSERT_TRUE(diff.ok());
  ASSERT_TRUE(inter.ok());
  // Every point of a is in exactly one of diff/inter; no point outside a.
  auto span = a.Span();
  ASSERT_TRUE(span.has_value());
  for (TimePoint p = span->lo; p <= span->hi; p = PointAdd(p, 1)) {
    bool in_a = a.ContainsPoint(p);
    bool in_b = b.ContainsPoint(p);
    EXPECT_EQ(diff->ContainsPoint(p), in_a && !in_b) << "point " << p;
    EXPECT_EQ(inter->ContainsPoint(p), in_a && in_b) << "point " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpsProperty, ::testing::Range(1, 25));

// Property: strict result is always covered by the relaxed result's
// elements, per child.
class ForEachProperty : public ::testing::TestWithParam<int> {};

TEST_P(ForEachProperty, StrictIsSubsetOfRelaxedPointwise) {
  uint64_t seed = static_cast<uint64_t>(GetParam()) * 0x9e3779b9u + 7;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return (seed >> 33);
  };
  std::vector<Interval> cv;
  int64_t pos = 1;
  for (int i = 0; i < 12; ++i) {
    int64_t lo = pos;
    int64_t hi = lo + static_cast<int64_t>(next() % 5);
    cv.push_back({lo, hi});
    pos = hi + 1 + static_cast<int64_t>(next() % 3);
  }
  Calendar c = Days(cv);
  Interval rhs{static_cast<int64_t>(next() % 20 + 1),
               static_cast<int64_t>(next() % 20 + 21)};
  for (ListOp op : {ListOp::kOverlaps, ListOp::kDuring, ListOp::kMeets,
                    ListOp::kBefore, ListOp::kBeforeEq}) {
    auto strict = ForEachInterval(c, op, rhs, true);
    auto relaxed = ForEachInterval(c, op, rhs, false);
    ASSERT_TRUE(strict.ok());
    ASSERT_TRUE(relaxed.ok());
    // Same number of kept elements; strict elements are covered by relaxed.
    ASSERT_EQ(strict->size(), relaxed->size()) << ListOpName(op);
    for (size_t i = 0; i < strict->size(); ++i) {
      EXPECT_TRUE(relaxed->intervals()[i].Covers(strict->intervals()[i]))
          << ListOpName(op);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForEachProperty, ::testing::Range(1, 25));

}  // namespace
}  // namespace caldb
