#include "core/interval.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(IntervalTest, MakeValidatesEndpoints) {
  EXPECT_TRUE(MakeInterval(1, 5).ok());
  EXPECT_TRUE(MakeInterval(-4, 3).ok());
  EXPECT_FALSE(MakeInterval(0, 5).ok());
  EXPECT_FALSE(MakeInterval(1, 0).ok());
  EXPECT_FALSE(MakeInterval(5, 1).ok());
}

TEST(IntervalTest, LengthSkipsZero) {
  EXPECT_EQ((Interval{1, 1}).length(), 1);
  EXPECT_EQ((Interval{1, 7}).length(), 7);
  // The paper's first 1993 week (-4,3) covers exactly 7 days because
  // point 0 does not exist: -4,-3,-2,-1,1,2,3.
  EXPECT_EQ((Interval{-4, 3}).length(), 7);
  EXPECT_EQ((Interval{-1, 1}).length(), 2);
}

TEST(IntervalTest, Contains) {
  Interval i{-4, 3};
  EXPECT_TRUE(i.Contains(-4));
  EXPECT_TRUE(i.Contains(-1));
  EXPECT_TRUE(i.Contains(1));
  EXPECT_TRUE(i.Contains(3));
  EXPECT_FALSE(i.Contains(4));
  EXPECT_FALSE(i.Contains(-5));
}

TEST(IntervalTest, Covers) {
  EXPECT_TRUE((Interval{1, 31}).Covers({4, 10}));
  EXPECT_TRUE((Interval{1, 31}).Covers({1, 31}));
  EXPECT_FALSE((Interval{1, 31}).Covers({-4, 3}));
  EXPECT_FALSE((Interval{4, 10}).Covers({1, 31}));
}

TEST(IntervalTest, Intersect) {
  auto x = Intersect({-4, 3}, {1, 31});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, (Interval{1, 3}));
  EXPECT_FALSE(Intersect({1, 5}, {7, 9}).has_value());
  auto touch = Intersect({1, 5}, {5, 9});
  ASSERT_TRUE(touch.has_value());
  EXPECT_EQ(*touch, (Interval{5, 5}));
}

TEST(IntervalTest, Format) {
  EXPECT_EQ(FormatInterval({-4, 3}), "(-4,3)");
  EXPECT_EQ(FormatInterval({11, 17}), "(11,17)");
}

// The listop definitions of §3.1, checked against the paper's formulas.
TEST(ListOpTest, Overlaps) {
  EXPECT_TRUE(IntervalOverlaps({-4, 3}, {1, 31}));
  EXPECT_TRUE(IntervalOverlaps({4, 10}, {1, 31}));
  EXPECT_FALSE(IntervalOverlaps({32, 38}, {1, 31}));
  EXPECT_TRUE(IntervalOverlaps({1, 5}, {5, 9}));  // shared endpoint
}

TEST(ListOpTest, During) {
  // int1 during int2 := l1 >= l2 && u2 >= u1.
  EXPECT_TRUE(IntervalDuring({4, 10}, {1, 31}));
  EXPECT_TRUE(IntervalDuring({1, 31}, {1, 31}));
  EXPECT_FALSE(IntervalDuring({-4, 3}, {1, 31}));
  EXPECT_FALSE(IntervalDuring({25, 32}, {1, 31}));
}

TEST(ListOpTest, Meets) {
  // int1 meets int2 := u1 == l2.
  EXPECT_TRUE(IntervalMeets({1, 5}, {5, 9}));
  EXPECT_FALSE(IntervalMeets({1, 5}, {6, 9}));
  EXPECT_FALSE(IntervalMeets({5, 9}, {1, 5}));
}

TEST(ListOpTest, Before) {
  // int1 < int2 := u1 <= l2.
  EXPECT_TRUE(IntervalBefore({1, 5}, {7, 9}));
  EXPECT_TRUE(IntervalBefore({1, 5}, {5, 9}));  // per the paper's formula
  EXPECT_FALSE(IntervalBefore({1, 6}, {5, 9}));
}

TEST(ListOpTest, BeforeEq) {
  // int1 <= int2 := (l1 <= l2) && (u2 >= u1).
  EXPECT_TRUE(IntervalBeforeEq({1, 5}, {3, 9}));
  EXPECT_TRUE(IntervalBeforeEq({1, 5}, {1, 5}));
  EXPECT_FALSE(IntervalBeforeEq({3, 9}, {1, 5}));
  EXPECT_TRUE(IntervalBeforeEq({1, 3}, {7, 9}));
}

TEST(ListOpTest, EvalDispatch) {
  EXPECT_TRUE(EvalListOp(ListOp::kOverlaps, {1, 5}, {3, 9}));
  EXPECT_TRUE(EvalListOp(ListOp::kIntersects, {1, 5}, {3, 9}));
  EXPECT_TRUE(EvalListOp(ListOp::kDuring, {3, 5}, {1, 9}));
  EXPECT_TRUE(EvalListOp(ListOp::kMeets, {1, 5}, {5, 9}));
  EXPECT_TRUE(EvalListOp(ListOp::kBefore, {1, 4}, {5, 9}));
  EXPECT_TRUE(EvalListOp(ListOp::kBeforeEq, {1, 4}, {2, 9}));
}

TEST(ListOpTest, ClipBehaviour) {
  EXPECT_TRUE(ListOpClipsUnderStrict(ListOp::kOverlaps));
  EXPECT_TRUE(ListOpClipsUnderStrict(ListOp::kIntersects));
  EXPECT_TRUE(ListOpClipsUnderStrict(ListOp::kDuring));
  EXPECT_FALSE(ListOpClipsUnderStrict(ListOp::kBefore));
  EXPECT_FALSE(ListOpClipsUnderStrict(ListOp::kBeforeEq));
  EXPECT_FALSE(ListOpClipsUnderStrict(ListOp::kMeets));
}

TEST(ListOpTest, NamesRoundTrip) {
  for (ListOp op : {ListOp::kOverlaps, ListOp::kDuring, ListOp::kMeets,
                    ListOp::kBefore, ListOp::kBeforeEq, ListOp::kIntersects}) {
    auto parsed = ParseListOp(ListOpName(op));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(ParseListOp("bogus").ok());
  auto precedes = ParseListOp("precedes");
  ASSERT_TRUE(precedes.ok());
  EXPECT_EQ(*precedes, ListOp::kBefore);
}

}  // namespace
}  // namespace caldb
