#include "core/calendar.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(CalendarTest, DefaultIsEmptyOrder1) {
  Calendar c;
  EXPECT_EQ(c.order(), 1);
  EXPECT_TRUE(c.IsNull());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.ToString(), "{}");
}

TEST(CalendarTest, Order1SortsIntervals) {
  Calendar c = Calendar::Order1(Granularity::kDays, {{11, 17}, {4, 10}, {-4, 3}});
  EXPECT_EQ(c.ToString(), "{(-4,3),(4,10),(11,17)}");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.granularity(), Granularity::kDays);
}

TEST(CalendarTest, MakeOrder1RejectsBadIntervals) {
  EXPECT_FALSE(Calendar::MakeOrder1(Granularity::kDays, {{0, 5}}).ok());
  EXPECT_FALSE(Calendar::MakeOrder1(Granularity::kDays, {{5, 1}}).ok());
  EXPECT_TRUE(Calendar::MakeOrder1(Granularity::kDays, {{-4, 3}}).ok());
}

TEST(CalendarTest, NestedOrder) {
  Calendar a = Calendar::Order1(Granularity::kDays, {{4, 10}});
  Calendar b = Calendar::Order1(Granularity::kDays, {{32, 38}, {39, 45}});
  Calendar nested = Calendar::Nested(Granularity::kDays, {a, b});
  EXPECT_EQ(nested.order(), 2);
  EXPECT_EQ(nested.size(), 2u);
  EXPECT_EQ(nested.ToString(), "{{(4,10)},{(32,38),(39,45)}}");
  Calendar deeper = Calendar::Nested(Granularity::kDays, {nested});
  EXPECT_EQ(deeper.order(), 3);
}

TEST(CalendarTest, IsNullRecurses) {
  Calendar empty_child = Calendar::Order1(Granularity::kDays, {});
  Calendar nested = Calendar::Nested(Granularity::kDays, {empty_child});
  EXPECT_TRUE(nested.IsNull());
  Calendar nonempty =
      Calendar::Nested(Granularity::kDays,
                       {empty_child, Calendar::Order1(Granularity::kDays, {{1, 1}})});
  EXPECT_FALSE(nonempty.IsNull());
}

TEST(CalendarTest, SingletonDetection) {
  EXPECT_TRUE(Calendar::Singleton(Granularity::kDays, {1, 31}).IsSingleton());
  EXPECT_FALSE(
      Calendar::Order1(Granularity::kDays, {{1, 5}, {7, 9}}).IsSingleton());
  EXPECT_FALSE(Calendar::Order1(Granularity::kDays, {}).IsSingleton());
}

TEST(CalendarTest, FlattenedConcatenatesLeaves) {
  Calendar a = Calendar::Order1(Granularity::kDays, {{11, 17}});
  Calendar b = Calendar::Order1(Granularity::kDays, {{4, 10}});
  Calendar nested = Calendar::Nested(Granularity::kDays, {a, b});
  Calendar flat = nested.Flattened();
  EXPECT_EQ(flat.order(), 1);
  EXPECT_EQ(flat.ToString(), "{(4,10),(11,17)}");
  EXPECT_EQ(nested.TotalIntervals(), 2);
}

TEST(CalendarTest, Span) {
  Calendar c = Calendar::Order1(Granularity::kDays, {{-4, 3}, {25, 31}});
  auto span = c.Span();
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(*span, (Interval{-4, 31}));
  EXPECT_FALSE(Calendar().Span().has_value());
}

TEST(CalendarTest, ContainsPoint) {
  Calendar c = Calendar::Order1(Granularity::kDays, {{-4, 3}, {25, 31}});
  EXPECT_TRUE(c.ContainsPoint(-2));
  EXPECT_TRUE(c.ContainsPoint(31));
  EXPECT_FALSE(c.ContainsPoint(10));
  Calendar nested = Calendar::Nested(Granularity::kDays, {c});
  EXPECT_TRUE(nested.ContainsPoint(25));
  EXPECT_FALSE(nested.ContainsPoint(24));
}

TEST(CalendarTest, SetGranularityRecurses) {
  Calendar a = Calendar::Order1(Granularity::kDays, {{1, 7}});
  Calendar nested = Calendar::Nested(Granularity::kDays, {a});
  nested.set_granularity(Granularity::kWeeks);
  EXPECT_EQ(nested.granularity(), Granularity::kWeeks);
  EXPECT_EQ(nested.children()[0].granularity(), Granularity::kWeeks);
}

TEST(CalendarTest, Equality) {
  Calendar a = Calendar::Order1(Granularity::kDays, {{1, 7}});
  Calendar b = Calendar::Order1(Granularity::kDays, {{1, 7}});
  Calendar c = Calendar::Order1(Granularity::kWeeks, {{1, 7}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);  // granularity differs
}

}  // namespace
}  // namespace caldb
