// Parameterized sweeps across all nine base granularities (§3.2): the
// generate/contain primitives and the algebra behave uniformly from
// SECONDS up to CENTURY.

#include <gtest/gtest.h>

#include "catalog/calendar_catalog.h"
#include "core/algebra.h"
#include "core/generate.h"
#include "time/time_system.h"

namespace caldb {
namespace {

class GranularitySweep : public ::testing::TestWithParam<Granularity> {
 protected:
  TimeSystem ts_{CivilDate{1993, 1, 1}};
};

TEST_P(GranularitySweep, GenerateIdentityGrid) {
  // Generating a calendar in its own unit yields the unit grid.
  Granularity g = GetParam();
  auto cal = GenerateBaseCalendar(ts_, g, g, Interval{-3, 3}, /*clip=*/true);
  ASSERT_TRUE(cal.ok()) << GranularityName(g) << ": " << cal.status();
  EXPECT_EQ(cal->ToString(), "{(-3,-3),(-2,-2),(-1,-1),(1,1),(2,2),(3,3)}");
  EXPECT_EQ(cal->granularity(), g);
}

TEST_P(GranularitySweep, GranulesPartitionTheFinerUnit) {
  Granularity g = GetParam();
  if (g == Granularity::kSeconds) GTEST_SKIP() << "no finer unit";
  // The next finer *nesting* unit (weeks are skipped: they don't nest).
  Granularity finer;
  switch (g) {
    case Granularity::kMinutes:
      finer = Granularity::kSeconds;
      break;
    case Granularity::kHours:
      finer = Granularity::kMinutes;
      break;
    case Granularity::kDays:
      finer = Granularity::kHours;
      break;
    case Granularity::kWeeks:
      finer = Granularity::kDays;
      break;
    case Granularity::kMonths:
      finer = Granularity::kDays;
      break;
    case Granularity::kYears:
      finer = Granularity::kMonths;
      break;
    case Granularity::kDecades:
      finer = Granularity::kYears;
      break;
    default:
      finer = Granularity::kDecades;
      break;
  }
  auto lo = ts_.GranuleToUnit(g, 1, finer);
  auto hi = ts_.GranuleToUnit(g, 2, finer);
  ASSERT_TRUE(lo.ok()) << GranularityName(g);
  ASSERT_TRUE(hi.ok());
  // Contiguous, non-overlapping coverage.
  EXPECT_EQ(PointToOffset(hi->lo), PointToOffset(lo->hi) + 1)
      << GranularityName(g) << " in " << GranularityName(finer);
  // Every covered finer point maps back to granule 1.
  EXPECT_EQ(ts_.GranuleContaining(g, lo->lo, finer).value(), 1);
  EXPECT_EQ(ts_.GranuleContaining(g, lo->hi, finer).value(), 1);
  EXPECT_EQ(ts_.GranuleContaining(g, hi->lo, finer).value(), 2);
}

TEST_P(GranularitySweep, ForEachDuringSelfIsIdentity) {
  Granularity g = GetParam();
  auto cal = GenerateBaseCalendar(ts_, g, g, Interval{1, 5}, true);
  ASSERT_TRUE(cal.ok());
  auto fe = ForEach(*cal, ListOp::kDuring,
                    Calendar::Singleton(g, Interval{1, 5}), /*strict=*/true);
  ASSERT_TRUE(fe.ok());
  EXPECT_EQ(fe->ToString(), cal->ToString());
}

INSTANTIATE_TEST_SUITE_P(
    AllNine, GranularitySweep,
    ::testing::Values(Granularity::kSeconds, Granularity::kMinutes,
                      Granularity::kHours, Granularity::kDays,
                      Granularity::kWeeks, Granularity::kMonths,
                      Granularity::kYears, Granularity::kDecades,
                      Granularity::kCenturies),
    [](const ::testing::TestParamInfo<Granularity>& info) {
      return std::string(GranularityName(info.param));
    });

// NextFireDay agrees with direct evaluation for derived calendars.
class NextFireConsistency : public ::testing::TestWithParam<const char*> {};

TEST_P(NextFireConsistency, MatchesEvaluation) {
  CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
  ASSERT_TRUE(catalog.DefineDerived("C", GetParam()).ok());
  EvalOptions opts;
  opts.window_days = catalog.YearWindow(1993, 1994).value();
  auto evaluated = catalog.EvaluateCalendar("C", opts);
  ASSERT_TRUE(evaluated.ok()) << evaluated.status();
  Calendar flat = evaluated->order() == 1 ? *evaluated : evaluated->Flattened();

  for (TimePoint after : {TimePoint{1}, TimePoint{40}, TimePoint{200}}) {
    auto next = catalog.NextFireDay("C", after, 800);
    ASSERT_TRUE(next.ok()) << next.status();
    // Reference: the smallest covered day > after in the evaluation.
    std::optional<TimePoint> want;
    for (const Interval& i : flat.intervals()) {
      Interval days = IntervalToDays(catalog.time_system(), flat.granularity(), i)
                          .value();
      if (days.hi <= after) continue;
      TimePoint candidate = days.lo > after ? days.lo : PointAdd(after, 1);
      if (!want.has_value() || candidate < *want) want = candidate;
    }
    ASSERT_TRUE(next->has_value()) << "after " << after;
    ASSERT_TRUE(want.has_value());
    EXPECT_EQ(**next, *want) << GetParam() << " after " << after;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Calendars, NextFireConsistency,
    ::testing::Values("[2]/DAYS:during:WEEKS", "[n]/DAYS:during:MONTHS",
                      "[1,3]/DAYS:during:WEEKS",
                      "[n]/DAYS:during:caloperate(MONTHS, *, 3)",
                      "WEEKS:during:MONTHS"));

}  // namespace
}  // namespace caldb
