// EX-A / EX-B of the experiment index: the §3.1 worked examples, verified
// against the exact interval lists printed in the paper.

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/calendar.h"
#include "core/generate.h"
#include "time/time_system.h"

namespace caldb {
namespace {

class PaperExamples : public ::testing::Test {
 protected:
  void SetUp() override {
    // Day numbering from Jan 1 1993, as in §3.1.
    ts_ = std::make_unique<TimeSystem>(CivilDate{1993, 1, 1});
    // WEEKS of 1993 (whole weeks overlapping the year).
    auto weeks = GenerateBaseCalendar(*ts_, Granularity::kWeeks,
                                      Granularity::kDays, Interval{1, 365},
                                      /*clip=*/false);
    ASSERT_TRUE(weeks.ok()) << weeks.status();
    weeks_ = *weeks;
    // Year-1993: the months of 1993 in days.
    auto months = GenerateBaseCalendar(*ts_, Granularity::kMonths,
                                       Granularity::kDays, Interval{1, 365},
                                       /*clip=*/false);
    ASSERT_TRUE(months.ok()) << months.status();
    year_1993_ = *months;
    jan_1993_ = Calendar::Singleton(Granularity::kDays, Interval{1, 31});
  }

  std::unique_ptr<TimeSystem> ts_;
  Calendar weeks_;
  Calendar year_1993_;
  Calendar jan_1993_;
};

TEST_F(PaperExamples, WeeksOf1993MatchPaper) {
  // WEEKS ≡ {(-4,3),(4,10),(11,17),(18,24),(25,31),(32,38),(39,45),...}
  ASSERT_GE(weeks_.size(), 7u);
  const Interval kExpected[] = {{-4, 3},  {4, 10},  {11, 17}, {18, 24},
                                {25, 31}, {32, 38}, {39, 45}};
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(weeks_.intervals()[i], kExpected[i]) << "week " << i + 1;
  }
}

TEST_F(PaperExamples, MonthsOf1993MatchPaper) {
  // Year-1993 ≡ {(1,31),(32,59),(60,90),(91,120),...}
  ASSERT_EQ(year_1993_.size(), 12u);
  EXPECT_EQ(year_1993_.intervals()[0], (Interval{1, 31}));
  EXPECT_EQ(year_1993_.intervals()[1], (Interval{32, 59}));
  EXPECT_EQ(year_1993_.intervals()[2], (Interval{60, 90}));
  EXPECT_EQ(year_1993_.intervals()[3], (Interval{91, 120}));
  EXPECT_EQ(year_1993_.intervals()[11], (Interval{335, 365}));
}

TEST_F(PaperExamples, WeeksDuringJan1993) {
  // WEEKS : during : Jan-1993 ≡ {(4,10),(11,17),(18,24),(25,31)}
  auto r = ForEach(weeks_, ListOp::kDuring, jan_1993_, /*strict=*/true);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ToString(), "{(4,10),(11,17),(18,24),(25,31)}");
}

TEST_F(PaperExamples, WeeksDuringYear1993IsOrder2) {
  // WEEKS : during : Year-1993: weeks fully inside each month.
  auto r = ForEach(weeks_, ListOp::kDuring, year_1993_, /*strict=*/true);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->order(), 2);
  ASSERT_EQ(r->size(), 12u);
  EXPECT_EQ(r->children()[0].ToString(), "{(4,10),(11,17),(18,24),(25,31)}");
  EXPECT_EQ(r->children()[1].ToString(), "{(32,38),(39,45),(46,52),(53,59)}");
  EXPECT_EQ(r->children()[2].ToString(), "{(60,66),(67,73),(74,80),(81,87)}");
  // April (paper): {(95,101),(102,108),(109,115)}
  EXPECT_EQ(r->children()[3].ToString(), "{(95,101),(102,108),(109,115)}");
}

TEST_F(PaperExamples, StrictOverlapsClipsToJan) {
  // WEEKS : overlaps : Jan-1993 ≡ {(1,3),(4,10),(11,17),(18,24),(25,31)}
  auto r = ForEach(weeks_, ListOp::kOverlaps, jan_1993_, /*strict=*/true);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ToString(), "{(1,3),(4,10),(11,17),(18,24),(25,31)}");
}

TEST_F(PaperExamples, RelaxedOverlapsKeepsWholeWeeks) {
  // WEEKS . overlaps . Jan-1993 ≡ {(-4,3),(4,10),(11,17),(18,24),(25,31)}
  auto r = ForEach(weeks_, ListOp::kOverlaps, jan_1993_, /*strict=*/false);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ToString(), "{(-4,3),(4,10),(11,17),(18,24),(25,31)}");
}

TEST_F(PaperExamples, ThirdWeekOfJanuary) {
  // [3]/WEEKS : overlaps : Jan-1993 ≡ {(11,17)}
  auto fe = ForEach(weeks_, ListOp::kOverlaps, jan_1993_, /*strict=*/true);
  ASSERT_TRUE(fe.ok());
  auto sel = Select({SelectionItem::Index(3)}, *fe);
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_EQ(sel->ToString(), "{(11,17)}");
}

TEST_F(PaperExamples, ThirdWeekOfEveryMonth) {
  // [3]/WEEKS : overlaps : Year-1993 ≡ {(11,17),(46,52),(74,80),(102,108),...}
  auto fe = ForEach(weeks_, ListOp::kOverlaps, year_1993_, /*strict=*/true);
  ASSERT_TRUE(fe.ok());
  ASSERT_EQ(fe->order(), 2);
  // March (paper): {(60,66),(67,73),(74,80),(81,87),(88,90)}
  EXPECT_EQ(fe->children()[2].ToString(),
            "{(60,66),(67,73),(74,80),(81,87),(88,90)}");
  // April (paper): {(91,94),(95,101),(102,108),(109,115),...}
  ASSERT_GE(fe->children()[3].size(), 4u);
  EXPECT_EQ(fe->children()[3].intervals()[0], (Interval{91, 94}));
  auto sel = Select({SelectionItem::Index(3)}, *fe);
  ASSERT_TRUE(sel.ok()) << sel.status();
  ASSERT_EQ(sel->order(), 1);
  ASSERT_EQ(sel->size(), 12u);
  EXPECT_EQ(sel->intervals()[0], (Interval{11, 17}));
  EXPECT_EQ(sel->intervals()[1], (Interval{46, 52}));
  EXPECT_EQ(sel->intervals()[2], (Interval{74, 80}));
  EXPECT_EQ(sel->intervals()[3], (Interval{102, 108}));
}

TEST_F(PaperExamples, DuringIsStrictRelaxedInvariant) {
  // §3.1: "the during operator will have the same result with the strict
  // and relaxed foreach operator".
  auto strict = ForEach(weeks_, ListOp::kDuring, jan_1993_, /*strict=*/true);
  auto relaxed = ForEach(weeks_, ListOp::kDuring, jan_1993_, /*strict=*/false);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(strict->ToString(), relaxed->ToString());
  auto strict2 = ForEach(weeks_, ListOp::kDuring, year_1993_, true);
  auto relaxed2 = ForEach(weeks_, ListOp::kDuring, year_1993_, false);
  ASSERT_TRUE(strict2.ok());
  ASSERT_TRUE(relaxed2.ok());
  EXPECT_EQ(strict2->ToString(), relaxed2->ToString());
}

TEST_F(PaperExamples, SecondFromEndSelection) {
  // §3.1: "[-2]/C selects the second element from the end of C".
  auto fe = ForEach(weeks_, ListOp::kOverlaps, jan_1993_, true);
  ASSERT_TRUE(fe.ok());
  auto sel = Select({SelectionItem::Index(-2)}, *fe);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->ToString(), "{(18,24)}");
}

TEST_F(PaperExamples, LastDayOfEveryMonth) {
  // LDOM = [n]/DAYS : during : MONTHS ≡ {(31,31),(59,59),(90,90),...}
  auto days = GenerateBaseCalendar(*ts_, Granularity::kDays, Granularity::kDays,
                                   Interval{1, 365}, /*clip=*/true);
  ASSERT_TRUE(days.ok());
  auto fe = ForEach(*days, ListOp::kDuring, year_1993_, /*strict=*/true);
  ASSERT_TRUE(fe.ok());
  auto ldom = Select({SelectionItem::Last()}, *fe);
  ASSERT_TRUE(ldom.ok());
  ASSERT_EQ(ldom->size(), 12u);
  EXPECT_EQ(ldom->intervals()[0], (Interval{31, 31}));
  EXPECT_EQ(ldom->intervals()[1], (Interval{59, 59}));
  EXPECT_EQ(ldom->intervals()[2], (Interval{90, 90}));
}

}  // namespace
}  // namespace caldb
