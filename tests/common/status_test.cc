#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"

namespace caldb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::EvalError("x").code(), StatusCode::kEvalError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrependsAndPreservesCode) {
  Status s = Status::NotFound("calendar HOLIDAYS");
  Status wrapped = s.WithContext("evaluating EMP-DAYS");
  EXPECT_EQ(wrapped.code(), StatusCode::kNotFound);
  EXPECT_EQ(wrapped.message(), "evaluating EMP-DAYS: calendar HOLIDAYS");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> Double(Result<int> in) {
  CALDB_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(MacrosTest, AssignOrReturnPropagatesError) {
  EXPECT_EQ(Double(Status::EvalError("bad")).status().code(),
            StatusCode::kEvalError);
  EXPECT_EQ(Double(21).value(), 42);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  CALDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(MacrosTest, ReturnIfError) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace caldb
