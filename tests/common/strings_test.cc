#include "common/strings.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("\t\n abc \r\n"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(StringsTest, StrSplit) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  // Empty pieces are kept.
  EXPECT_EQ(StrSplit(",a,", ',').size(), 3u);
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
  EXPECT_EQ(StrSplit("abc", ',').size(), 1u);
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(AsciiToLower("MiXeD_123"), "mixed_123");
  EXPECT_EQ(AsciiToUpper("MiXeD_123"), "MIXED_123");
  EXPECT_TRUE(EqualsIgnoreCase("WEEKS", "weeks"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("week", "weeks"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64(" 1").ok());
}

}  // namespace
}  // namespace caldb
