// EX-E: the CALENDARS table and its Figure 1 example row (Tuesdays).

#include "catalog/calendar_catalog.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {}
  CalendarCatalog catalog_;
};

TEST_F(CatalogTest, Figure1TuesdaysRow) {
  // Figure 1: Tuesdays is derived by {[2]/DAYS:during:WEEKS} — "the 2nd day
  // of every week" (Monday is 1).
  auto lifespan = catalog_.YearWindow(1985, 2010);
  ASSERT_TRUE(lifespan.ok());
  ASSERT_TRUE(
      catalog_.DefineDerived("Tuesdays", "[2]/DAYS:during:WEEKS", *lifespan).ok());

  auto row = catalog_.Describe("Tuesdays");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->name, "Tuesdays");
  EXPECT_EQ(row->derivation_script, "[2]/DAYS:during:WEEKS");
  EXPECT_EQ(row->granularity, Granularity::kDays);  // inferred from the script
  ASSERT_TRUE(row->eval_plan != nullptr);
  EXPECT_GT(row->eval_plan->steps.size(), 0u);
  EXPECT_FALSE(row->values.has_value());

  std::string rendered = catalog_.FormatRow("Tuesdays").value_or("");
  EXPECT_NE(rendered.find("Tuesdays"), std::string::npos);
  EXPECT_NE(rendered.find("[2]/DAYS:during:WEEKS"), std::string::npos);
  EXPECT_NE(rendered.find("set of procedural statements"), std::string::npos);
  EXPECT_NE(rendered.find("DAYS"), std::string::npos);
}

TEST_F(CatalogTest, TuesdaysEvaluate) {
  ASSERT_TRUE(catalog_.DefineDerived("Tuesdays", "[2]/DAYS:during:WEEKS").ok());
  EvalOptions opts;
  opts.window_days = Interval{1, 31};
  auto cal = catalog_.EvaluateCalendar("Tuesdays", opts);
  ASSERT_TRUE(cal.ok()) << cal.status();
  // Tuesdays of January 1993: Jan 5, 12, 19, 26 (and Dec 29 1992 = -3 from
  // the week overlapping the window).
  EXPECT_EQ(cal->ToString(), "{(-3,-3),(5,5),(12,12),(19,19),(26,26)}");
}

TEST_F(CatalogTest, BaseCalendarsResolveWithoutRows) {
  for (const char* name : {"SECONDS", "MINUTES", "HOURS", "DAYS", "WEEKS",
                           "MONTHS", "YEARS", "DECADES", "CENTURY"}) {
    EXPECT_TRUE(catalog_.Contains(name)) << name;
    auto resolved = catalog_.Resolve(name);
    ASSERT_TRUE(resolved.ok()) << name;
    EXPECT_EQ(resolved->kind, ResolvedCalendar::Kind::kBase);
    EXPECT_FALSE(catalog_.Describe(name).ok()) << name;  // no catalog row
  }
}

TEST_F(CatalogTest, EvaluateBaseCalendar) {
  EvalOptions opts;
  opts.window_days = Interval{1, 90};
  auto months = catalog_.EvaluateCalendar("MONTHS", opts);
  ASSERT_TRUE(months.ok());
  EXPECT_EQ(months->granularity(), Granularity::kMonths);
  EXPECT_EQ(months->ToString(), "{(1,1),(2,2),(3,3)}");
}

TEST_F(CatalogTest, ValueCalendarRoundTrip) {
  Calendar holidays = Calendar::Order1(Granularity::kDays, {{31, 31}, {90, 90}});
  ASSERT_TRUE(catalog_.DefineValues("HOLIDAYS", holidays).ok());
  auto row = catalog_.Describe("HOLIDAYS");
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->values.has_value());
  EXPECT_EQ(row->values->ToString(), "{(31,31),(90,90)}");
  EXPECT_EQ(row->granularity, Granularity::kDays);

  EvalOptions opts;
  opts.window_days = Interval{1, 60};
  auto filtered = catalog_.EvaluateCalendar("HOLIDAYS", opts);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->ToString(), "{(31,31)}");
}

TEST_F(CatalogTest, NameCollisions) {
  ASSERT_TRUE(catalog_.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS").ok());
  EXPECT_EQ(catalog_.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS")
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.DefineDerived("DAYS", "[1]/DAYS:during:WEEKS").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.DefineDerived("today", "[1]/DAYS:during:WEEKS").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(
      catalog_.DefineValues("weeks", Calendar::Order1(Granularity::kDays, {}))
          .code(),
      StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, DefinitionErrorsSurfaceContext) {
  Status bad_parse = catalog_.DefineDerived("Broken", "a:nosuchop:b");
  EXPECT_EQ(bad_parse.code(), StatusCode::kParseError);
  EXPECT_NE(bad_parse.message().find("Broken"), std::string::npos);
  Status bad_ref = catalog_.DefineDerived("Dangling", "NoSuch:during:MONTHS");
  EXPECT_EQ(bad_ref.code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, DropAndList) {
  ASSERT_TRUE(catalog_.DefineDerived("A", "[1]/DAYS:during:WEEKS").ok());
  ASSERT_TRUE(catalog_.DefineDerived("B", "[2]/DAYS:during:WEEKS").ok());
  EXPECT_EQ(catalog_.ListCalendars(), (std::vector<std::string>{"A", "B"}));
  ASSERT_TRUE(catalog_.Drop("A").ok());
  EXPECT_EQ(catalog_.ListCalendars(), (std::vector<std::string>{"B"}));
  EXPECT_EQ(catalog_.Drop("A").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, DerivedCalendarsCompose) {
  ASSERT_TRUE(catalog_.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS").ok());
  ASSERT_TRUE(
      catalog_.DefineDerived("FirstMondays", "[1]/Mondays:during:MONTHS").ok());
  EvalOptions opts;
  opts.window_days = Interval{1, 59};
  auto cal = catalog_.EvaluateCalendar("FirstMondays", opts);
  ASSERT_TRUE(cal.ok()) << cal.status();
  // First Monday of Jan 1993 is Jan 4 (day 4); of Feb 1993 is Feb 1 (day 32).
  EXPECT_EQ(cal->ToString(), "{(4,4),(32,32)}");
}

TEST_F(CatalogTest, CyclicDerivationsRejected) {
  // Self-reference is caught at definition time (the name doesn't resolve
  // yet), and indirect cycles cannot form because definitions bind names
  // eagerly.
  Status self = catalog_.DefineDerived("Selfish", "[1]/Selfish:during:WEEKS");
  EXPECT_EQ(self.code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, YearWindow) {
  auto window = catalog_.YearWindow(1993, 1993);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(*window, (Interval{1, 365}));
  EXPECT_FALSE(catalog_.YearWindow(1994, 1993).ok());
}

}  // namespace
}  // namespace caldb
