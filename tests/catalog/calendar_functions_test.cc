// The §5 integration: calendar operators registered with the extensible
// DBMS and used from the query language.

#include "catalog/calendar_functions.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

class CalendarFunctionsTest : public ::testing::Test {
 protected:
  CalendarFunctionsTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {
    EXPECT_TRUE(RegisterCalendarFunctions(&db_, &catalog_).ok());
    EXPECT_TRUE(catalog_
                    .DefineDerived("MONTH_ENDS", "[n]/DAYS:during:MONTHS",
                                   catalog_.YearWindow(1993, 1995).value())
                    .ok());
  }

  Value Call(const std::string& name, std::vector<Value> args) {
    auto r = db_.registry().Call(name, args);
    EXPECT_TRUE(r.ok()) << name << ": " << r.status();
    return r.value_or(Value::Null());
  }

  CalendarCatalog catalog_;
  Database db_;
};

TEST_F(CalendarFunctionsTest, CalContains) {
  EXPECT_TRUE(Call("cal_contains", {Value::Text("MONTH_ENDS"), Value::Int(31)})
                  .AsBool()
                  .value());
  EXPECT_FALSE(Call("cal_contains", {Value::Text("MONTH_ENDS"), Value::Int(30)})
                   .AsBool()
                   .value());
  EXPECT_FALSE(
      db_.registry()
          .Call("cal_contains", {Value::Text("MONTH_ENDS"), Value::Int(0)})
          .ok());
  EXPECT_FALSE(
      db_.registry()
          .Call("cal_contains", {Value::Text("NoSuch"), Value::Int(5)})
          .ok());
}

TEST_F(CalendarFunctionsTest, CalContainsCoarserGranularity) {
  // A months-granularity calendar probed with a day point.
  ASSERT_TRUE(catalog_
                  .DefineDerived("Q1", "MONTHS:during:1993/YEARS",
                                 catalog_.YearWindow(1993, 1993).value())
                  .ok());
  EXPECT_TRUE(Call("cal_contains", {Value::Text("Q1"), Value::Int(45)})
                  .AsBool()
                  .value());  // Feb 14 is inside the months of 1993
}

TEST_F(CalendarFunctionsTest, CalNext) {
  EXPECT_EQ(Call("cal_next", {Value::Text("MONTH_ENDS"), Value::Int(1)})
                .AsInt()
                .value(),
            31);
  EXPECT_EQ(Call("cal_next", {Value::Text("MONTH_ENDS"), Value::Int(31)})
                .AsInt()
                .value(),
            59);
  // Past the lifespan: null.
  EXPECT_TRUE(
      Call("cal_next", {Value::Text("MONTH_ENDS"), Value::Int(5000)}).is_null());
}

TEST_F(CalendarFunctionsTest, CalEvalAndInspection) {
  Value cal = Call("cal_eval", {Value::Text("[1,2]/DAYS:during:MONTHS"),
                                Value::Int(1), Value::Int(59)});
  ASSERT_EQ(cal.type(), ValueType::kCalendar);
  EXPECT_EQ(cal.AsCalendar().value().ToString(), "{(1,1),(2,2),(32,32),(33,33)}");
  EXPECT_EQ(Call("cal_count", {cal}).AsInt().value(), 4);
  Value span = Call("cal_span", {cal});
  EXPECT_EQ(span.AsInterval().value(), (Interval{1, 33}));
}

TEST_F(CalendarFunctionsTest, IntervalHelpersAndListops) {
  Value i = Call("make_interval", {Value::Int(4), Value::Int(10)});
  EXPECT_EQ(Call("interval_lo", {i}).AsInt().value(), 4);
  EXPECT_EQ(Call("interval_hi", {i}).AsInt().value(), 10);
  Value j = Call("make_interval", {Value::Int(1), Value::Int(31)});
  EXPECT_TRUE(Call("during", {i, j}).AsBool().value());
  EXPECT_TRUE(Call("overlaps", {i, j}).AsBool().value());
  EXPECT_FALSE(Call("before", {j, i}).AsBool().value());
  Value k = Call("make_interval", {Value::Int(10), Value::Int(12)});
  EXPECT_TRUE(Call("meets", {i, k}).AsBool().value());
  EXPECT_FALSE(db_.registry().Call("make_interval", {Value::Int(5), Value::Int(1)}).ok());
}

TEST_F(CalendarFunctionsTest, DateConversions) {
  EXPECT_EQ(
      Call("date_to_day", {Value::Text("1993-01-05")}).AsInt().value(), 5);
  EXPECT_EQ(Call("day_to_date", {Value::Int(5)}).AsText().value(), "1993-01-05");
  EXPECT_EQ(Call("day_of_week", {Value::Int(5)}).AsInt().value(), 2);  // Tuesday
  EXPECT_FALSE(db_.registry().Call("date_to_day", {Value::Text("93/01/05")}).ok());
}

TEST_F(CalendarFunctionsTest, UsableFromQueries) {
  ASSERT_TRUE(db_.Execute("create table prices (day int, price float)").ok());
  for (int d : {30, 31, 59, 60}) {
    ASSERT_TRUE(db_.Execute("append prices (day = " + std::to_string(d) +
                            ", price = " + std::to_string(100 + d) + ")")
                    .ok());
  }
  // "Retrieve (stock.price) on expiration-date" — here: on month ends.
  auto r = db_.Execute(
      "retrieve (p.day, p.price) from p in prices "
      "where cal_contains('MONTH_ENDS', p.day)");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt().value(), 31);
  EXPECT_EQ(r->rows[1][0].AsInt().value(), 59);

  // day_of_week in a predicate: Fridays only.
  auto fridays = db_.Execute(
      "retrieve (p.day) from p in prices where day_of_week(p.day) = 5");
  ASSERT_TRUE(fridays.ok());
  // Day 29? not in table. Of 30,31,59,60: Jan30=Sat(6), Jan31=Sun(7),
  // Feb28=Sun(7), Mar1=Mon(1): none are Fridays.
  EXPECT_TRUE(fridays->rows.empty());
}

TEST_F(CalendarFunctionsTest, DoubleRegistrationFails) {
  EXPECT_EQ(RegisterCalendarFunctions(&db_, &catalog_).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace caldb
