// CalendarCatalog::NextFireDay — the primitive filling RULE-TIME (§4).

#include <gtest/gtest.h>

#include "catalog/calendar_catalog.h"
#include "core/generate.h"

namespace caldb {
namespace {

class NextFireTest : public ::testing::Test {
 protected:
  NextFireTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {}

  TimePoint Next(const std::string& name, TimePoint after,
                 TimePoint limit = 4000) {
    auto r = catalog_.NextFireDay(name, after, limit);
    EXPECT_TRUE(r.ok()) << r.status();
    if (!r.ok() || !r->has_value()) return 0;
    return **r;
  }

  CalendarCatalog catalog_;
};

TEST_F(NextFireTest, DerivedCalendarSteps) {
  ASSERT_TRUE(catalog_.DefineDerived("Tuesdays", "[2]/DAYS:during:WEEKS").ok());
  // Jan 1 1993 is Friday; Tuesdays fall on 5, 12, 19, ...
  EXPECT_EQ(Next("Tuesdays", 1), 5);
  EXPECT_EQ(Next("Tuesdays", 5), 12);
  EXPECT_EQ(Next("Tuesdays", 4), 5);
  // Day -10 is Tue Dec 22 1992; the next Tuesday is Dec 29 = point -3.
  EXPECT_EQ(Next("Tuesdays", -10), -3);
}

TEST_F(NextFireTest, CrossesYearBoundary) {
  ASSERT_TRUE(catalog_.DefineDerived("MonthEnds", "[n]/DAYS:during:MONTHS").ok());
  EXPECT_EQ(Next("MonthEnds", 365), 396);  // Dec 31 1993 -> Jan 31 1994
  EXPECT_EQ(Next("MonthEnds", 364), 365);
}

TEST_F(NextFireTest, ValueCalendar) {
  ASSERT_TRUE(catalog_
                  .DefineValues("H", Calendar::Order1(Granularity::kDays,
                                                      {{31, 31}, {90, 90}}))
                  .ok());
  EXPECT_EQ(Next("H", 1), 31);
  EXPECT_EQ(Next("H", 31), 90);
  auto none = catalog_.NextFireDay("H", 90, 4000);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST_F(NextFireTest, BaseCalendarGranulesMapToStartDays) {
  // MONTHS: the next month strictly after day 1 begins Feb 1 (day 32) —
  // day 2 is *within* the current month, so the first day after 1 covered
  // by MONTHS is day 2.
  EXPECT_EQ(Next("MONTHS", 1), 2);
  EXPECT_EQ(Next("DAYS", 10), 11);
}

TEST_F(NextFireTest, IntervalCalendarsFireEachCoveredDay) {
  // A run interval covers every day inside it.
  ASSERT_TRUE(catalog_
                  .DefineValues("RUN", Calendar::Order1(Granularity::kDays,
                                                        {{10, 13}}))
                  .ok());
  EXPECT_EQ(Next("RUN", 1), 10);
  EXPECT_EQ(Next("RUN", 10), 11);
  EXPECT_EQ(Next("RUN", 12), 13);
  auto after = catalog_.NextFireDay("RUN", 13, 4000);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->has_value());
}

TEST_F(NextFireTest, LimitBoundsTheSearch) {
  ASSERT_TRUE(catalog_
                  .DefineValues("FAR", Calendar::Order1(Granularity::kDays,
                                                        {{3000, 3000}}))
                  .ok());
  auto within = catalog_.NextFireDay("FAR", 1, 3500);
  ASSERT_TRUE(within.ok());
  ASSERT_TRUE(within->has_value());
  EXPECT_EQ(**within, 3000);
  auto beyond = catalog_.NextFireDay("FAR", 1, 2000);
  ASSERT_TRUE(beyond.ok());
  EXPECT_FALSE(beyond->has_value());
}

TEST_F(NextFireTest, UnknownCalendar) {
  EXPECT_FALSE(catalog_.NextFireDay("NoSuch", 1, 100).ok());
}

TEST(FormatCalendarCivilTest, RendersDates) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  Calendar c = Calendar::Order1(Granularity::kDays, {{5, 5}, {11, 17}});
  auto text = FormatCalendarCivil(ts, c);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "{1993-01-05, [1993-01-11..1993-01-17]}");

  Calendar months = Calendar::Order1(Granularity::kMonths, {{2, 2}});
  auto month_text = FormatCalendarCivil(ts, months);
  ASSERT_TRUE(month_text.ok());
  EXPECT_EQ(*month_text, "{[1993-02-01..1993-02-28]}");

  Calendar nested = Calendar::Nested(Granularity::kDays, {c});
  EXPECT_FALSE(FormatCalendarCivil(ts, nested).ok());

  Calendar empty = Calendar::Order1(Granularity::kDays, {});
  EXPECT_EQ(FormatCalendarCivil(ts, empty).value(), "{}");
}

}  // namespace
}  // namespace caldb
