#include "catalog/catalog_io.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

class CatalogIoTest : public ::testing::Test {
 protected:
  CatalogIoTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {}
  CalendarCatalog catalog_;
};

TEST_F(CatalogIoTest, RoundTripValuesAndDerived) {
  ASSERT_TRUE(catalog_
                  .DefineValues("HOLIDAYS", Calendar::Order1(Granularity::kDays,
                                                             {{31, 31}, {90, 90}}),
                                Interval{1, 365})
                  .ok());
  ASSERT_TRUE(catalog_.DefineDerived("Tuesdays", "[2]/DAYS:during:WEEKS").ok());
  ASSERT_TRUE(catalog_
                  .DefineDerived("EMP-DAYS", R"({LDOM = [n]/DAYS:during:MONTHS;
LDOM_HOL = LDOM:intersects:HOLIDAYS;
return (LDOM - LDOM_HOL);})")
                  .ok());

  auto dump = DumpCatalog(catalog_);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_NE(dump->find("epoch 1993-01-01"), std::string::npos);
  EXPECT_NE(dump->find("DAYS{(31,31),(90,90)}"), std::string::npos);

  auto restored = LoadCatalog(*dump);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->ListCalendars(), catalog_.ListCalendars());

  // Evaluations agree between original and restored catalogs.
  EvalOptions opts;
  opts.window_days = Interval{1, 120};
  for (const char* name : {"Tuesdays", "EMP-DAYS", "HOLIDAYS"}) {
    auto a = catalog_.EvaluateCalendar(name, opts);
    auto b = (*restored)->EvaluateCalendar(name, opts);
    ASSERT_TRUE(a.ok()) << name << ": " << a.status();
    ASSERT_TRUE(b.ok()) << name << ": " << b.status();
    EXPECT_EQ(a->ToString(), b->ToString()) << name;
  }

  // Lifespans survive.
  auto def = (*restored)->Describe("HOLIDAYS");
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(def->lifespan_days.has_value());
  EXPECT_EQ(*def->lifespan_days, (Interval{1, 365}));
}

TEST_F(CatalogIoTest, DependenciesAreOrderedForReload) {
  // Define dependents before dependencies alphabetically: "A_Uses_Z" would
  // dump before "Z_Base" in name order, so the dump must topo-sort.
  ASSERT_TRUE(catalog_
                  .DefineValues("Z_Base", Calendar::Order1(Granularity::kDays,
                                                           {{5, 5}}))
                  .ok());
  // Multi-statement so Z_Base stays a runtime reference (not inlined text
  // dependent, but the *text* references it either way).
  ASSERT_TRUE(catalog_
                  .DefineDerived("A_Uses_Z",
                                 "{t = DAYS:intersects:Z_Base; return t;}")
                  .ok());
  auto dump = DumpCatalog(catalog_);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_LT(dump->find("calendar Z_Base"), dump->find("calendar A_Uses_Z"));
  auto restored = LoadCatalog(*dump);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EvalOptions opts;
  opts.window_days = Interval{1, 31};
  auto value = (*restored)->EvaluateCalendar("A_Uses_Z", opts);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->ToString(), "{(5,5)}");
}

TEST_F(CatalogIoTest, EmptyCatalogRoundTrips) {
  auto dump = DumpCatalog(catalog_);
  ASSERT_TRUE(dump.ok());
  auto restored = LoadCatalog(*dump);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE((*restored)->ListCalendars().empty());
}

TEST_F(CatalogIoTest, EpochMismatchRejected) {
  auto dump = DumpCatalog(catalog_);
  ASSERT_TRUE(dump.ok());
  CalendarCatalog other{TimeSystem{CivilDate{1987, 1, 1}}};
  Status st = RestoreCatalog(*dump, &other);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("epoch"), std::string::npos);
}

TEST_F(CatalogIoTest, NameClashRejected) {
  ASSERT_TRUE(catalog_.DefineDerived("X", "[1]/DAYS:during:WEEKS").ok());
  auto dump = DumpCatalog(catalog_);
  ASSERT_TRUE(dump.ok());
  // Restoring into the same catalog clashes on X.
  EXPECT_EQ(RestoreCatalog(*dump, &catalog_).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogIoTest, MalformedDumps) {
  CalendarCatalog c{TimeSystem{CivilDate{1993, 1, 1}}};
  EXPECT_FALSE(RestoreCatalog("", &c).ok());
  EXPECT_FALSE(RestoreCatalog("calendar X values lifespan=none\n", &c).ok());
  EXPECT_FALSE(
      RestoreCatalog("epoch 1993-01-01\ncalendar X bogus lifespan=none\n", &c)
          .ok());
  EXPECT_FALSE(RestoreCatalog(
                   "epoch 1993-01-01\ncalendar X derived lifespan=none\n"
                   "<<<SCRIPT\nnever closed\n",
                   &c)
                   .ok());
  EXPECT_FALSE(RestoreCatalog(
                   "epoch 1993-01-01\ncalendar X values lifespan=1,\n"
                   "DAYS{(1,1)}\n",
                   &c)
                   .ok());
  EXPECT_FALSE(LoadCatalog("no epoch here").ok());
}

TEST_F(CatalogIoTest, CommentsAndBlankLinesIgnored) {
  const char* dump =
      "# caldb catalog dump v1\n"
      "\n"
      "epoch 1993-01-01\n"
      "\n"
      "# a values calendar\n"
      "calendar H values lifespan=none\n"
      "DAYS{(7,7)}\n";
  CalendarCatalog c{TimeSystem{CivilDate{1993, 1, 1}}};
  ASSERT_TRUE(RestoreCatalog(dump, &c).ok());
  EXPECT_TRUE(c.Contains("H"));
}

}  // namespace
}  // namespace caldb
