// Integration: every subsystem together — market calendars feed calendar
// scripts, scripts drive temporal rules, DBCRON writes through the DB
// substrate, and a calendar-bound time series records what happened.

#include <gtest/gtest.h>

#include "catalog/calendar_functions.h"
#include "finance/market_calendars.h"
#include "rules/dbcron.h"
#include "timeseries/pattern.h"
#include "timeseries/time_series.h"

namespace caldb {
namespace {

class FullSystemTest : public ::testing::Test {
 protected:
  FullSystemTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {
    EXPECT_TRUE(InstallMarketCalendars(&catalog_, 1993, 1994).ok());
    EXPECT_TRUE(RegisterCalendarFunctions(&db_, &catalog_).ok());
    auto manager = TemporalRuleManager::Create(&catalog_, &db_);
    EXPECT_TRUE(manager.ok());
    rules_ = std::move(manager).value();
  }

  CalendarCatalog catalog_;
  Database db_;
  std::unique_ptr<TemporalRuleManager> rules_;
};

TEST_F(FullSystemTest, YearOfExpirationsViaRulesAndQueries) {
  // The option-expiration calendar as a derived script over the installed
  // market calendars: 3rd Friday of each month, or the preceding business
  // day when it is a holiday.
  ASSERT_TRUE(catalog_
                  .DefineDerived("EXPIRATIONS", R"(
      {Fridays = [5]/DAYS:during:WEEKS;
       Third = [3]/Fridays:overlaps:MONTHS;
       Hol = Third - AM_BUS_DAYS:intersects:Third;
       Fallback = [n]/AM_BUS_DAYS:<:Hol;
       return (Third - Hol + Fallback);})",
                                 catalog_.YearWindow(1993, 1994).value())
                  .ok());

  // A temporal rule appends each expiration to a table as it fires.
  ASSERT_TRUE(db_.Execute("create table expirations (day int)").ok());
  TemporalAction action;
  action.command = "append expirations (day = fire_day())";
  ASSERT_TRUE(
      rules_->DeclareRule("expiry", "EXPIRATIONS", std::move(action), 1).ok());

  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, /*probe_period_days=*/7);
  ASSERT_TRUE(cron.AdvanceTo(365).ok());

  auto rows = db_.Execute("retrieve (e.day) from e in expirations");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 12u);  // one expiration per month of 1993

  // Each recorded day matches the independent C++ computation.
  const TimeSystem& ts = catalog_.time_system();
  auto holidays = UsFederalHolidays(ts, 1993, 1993).value();
  auto business = BusinessDays(ts, Interval{1, 365}, holidays).value();
  for (int month = 1; month <= 12; ++month) {
    auto expected = OptionExpirationDay(ts, 1993, month, business);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(rows->rows[static_cast<size_t>(month - 1)][0].AsInt().value(),
              *expected)
        << "month " << month;
    // All expirations are Fridays in 1993 (none fall on holidays) — check
    // through the registered day_of_week operator.
    auto friday_check = db_.Execute(
        "retrieve (count(e.day) as n) from e in expirations "
        "where day_of_week(e.day) = 5");
    ASSERT_TRUE(friday_check.ok());
    EXPECT_EQ(friday_check->rows[0][0].AsInt().value(), 12);
  }
}

TEST_F(FullSystemTest, SettlementSeriesBoundToRuleCalendar) {
  // A time series bound to the same derived calendar the rules fire on:
  // monthly settlement prices recorded at expiration.
  ASSERT_TRUE(catalog_
                  .DefineDerived("EXPIRATIONS",
                                 "[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS",
                                 catalog_.YearWindow(1993, 1994).value())
                  .ok());
  RegularTimeSeries settle(&catalog_, "EXPIRATIONS", 1);
  for (double v : {100.0, 103.0, 101.0, 105.0, 109.0, 108.0}) settle.Append(v);

  // The third Friday of January 1993 is Jan 15.
  EXPECT_EQ(settle.DayAt(0).value(),
            catalog_.time_system().DayPointFromCivil({1993, 1, 15}));
  // Pattern over the series: expirations where price rose then fell.
  auto peaks = MatchPattern(settle, "S > prev(S) and S > next(S)");
  ASSERT_TRUE(peaks.ok());
  // 103 (Feb) and 109 (May) are local maxima.
  ASSERT_EQ(peaks->size(), 2u);
  EXPECT_EQ(peaks->intervals()[0].lo, settle.DayAt(1).value());
  EXPECT_EQ(peaks->intervals()[1].lo, settle.DayAt(4).value());
}

TEST_F(FullSystemTest, EventRulesAndTemporalRulesCompose) {
  // A temporal rule appends; an event rule on that table escalates.
  ASSERT_TRUE(db_.Execute("create table month_end (day int)").ok());
  ASSERT_TRUE(db_.Execute("create table quarter_flags (day int)").ok());
  ASSERT_TRUE(
      db_.Execute("define rule quarterly on append to month_end "
                  "where cal_contains('QUARTER_ENDS', NEW.day) "
                  "do append quarter_flags (day = NEW.day)")
          .ok());
  ASSERT_TRUE(catalog_
                  .DefineDerived("QUARTER_ENDS",
                                 "[n]/DAYS:during:caloperate(MONTHS, *, 3)",
                                 catalog_.YearWindow(1993, 1994).value())
                  .ok());
  TemporalAction action;
  action.command = "append month_end (day = fire_day())";
  ASSERT_TRUE(rules_
                  ->DeclareRule("month_end_rule", "[n]/DAYS:during:MONTHS",
                                std::move(action), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(365).ok());

  auto months = db_.Execute("retrieve (count(m.day) as n) from m in month_end");
  ASSERT_TRUE(months.ok());
  EXPECT_EQ(months->rows[0][0].AsInt().value(), 12);
  auto quarters = db_.Execute("retrieve (q.day) from q in quarter_flags");
  ASSERT_TRUE(quarters.ok());
  ASSERT_EQ(quarters->rows.size(), 4u);
  EXPECT_EQ(quarters->rows[0][0].AsInt().value(), 90);
  EXPECT_EQ(quarters->rows[3][0].AsInt().value(), 365);
}

TEST_F(FullSystemTest, LastTradingDayAlertOverMarketCalendars) {
  // The §3.3 while-script against the real (synthetic) market calendars:
  // blocked before the trigger, alerting after.
  ASSERT_TRUE(catalog_
                  .DefineValues("Expiration-Month",
                                Calendar::Order1(
                                    Granularity::kDays,
                                    {*catalog_.time_system().DayIntervalFromCivil(
                                        {1993, 11, 1}, {1993, 11, 30})}))
                  .ok());
  const char* script = R"(
    { temp1 = [n]/AM_BUS_DAYS:during:Expiration-Month;
      temp2 = [-7]/AM_BUS_DAYS:<:temp1;
      while (today:<:temp2) ;
      return ("LAST TRADING DAY");
    })";
  const TimeSystem& ts = catalog_.time_system();
  EvalOptions before;
  before.window_days = catalog_.YearWindow(1993, 1993).value();
  before.today_day = ts.DayPointFromCivil({1993, 11, 10});
  auto blocked = catalog_.EvaluateScript(script, before);
  ASSERT_TRUE(blocked.ok()) << blocked.status();
  EXPECT_EQ(blocked->kind, ScriptValue::Kind::kBlocked);

  EvalOptions after = before;
  after.today_day = ts.DayPointFromCivil({1993, 11, 29});
  auto alerted = catalog_.EvaluateScript(script, after);
  ASSERT_TRUE(alerted.ok());
  ASSERT_EQ(alerted->kind, ScriptValue::Kind::kString);
  EXPECT_EQ(alerted->text, "LAST TRADING DAY");
}

}  // namespace
}  // namespace caldb
