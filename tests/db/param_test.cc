// The $n placeholder contract: lexing and signature inference at compile
// time, arity/type checking at bind time, execution through
// Database::ExecuteCompiled with a ParamList, and the places placeholders
// are deliberately rejected (gaps, $0, rule where-clauses, event-rule
// actions).

#include "db/compiled_statement.h"

#include <gtest/gtest.h>

#include "db/database.h"

namespace caldb {
namespace {

void Seed(Database* db) {
  ASSERT_TRUE(db->Execute("create table t (x int, s text)").ok());
  ASSERT_TRUE(db->Execute("append t (x = 1, s = 'one')").ok());
  ASSERT_TRUE(db->Execute("append t (x = 2, s = 'two')").ok());
  ASSERT_TRUE(db->Execute("append t (x = 3, s = 'three')").ok());
}

TEST(ParamCompile, SignatureInferredFromConstSiblings) {
  // Types come only from constant siblings: $1 > 100 pins $1 numeric;
  // $2's sibling is a column reference, so $2 stays "any".
  auto c = CompileStatement(
      "retrieve (t.s) from t in t where $1 > 100 and t.s = $2");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ((*c)->param_count, 2);
  ASSERT_EQ((*c)->param_types.size(), 2u);
  EXPECT_EQ((*c)->param_types[0], ValueType::kInt);
  EXPECT_EQ((*c)->param_types[1], ValueType::kNull);
  EXPECT_EQ(RenderParamSignature(**c), "($1:int, $2:any)");
}

TEST(ParamCompile, NumericAndTextInferenceFromConstants) {
  auto c = CompileStatement(
      "retrieve (t.x) from t in t where t.x = $1 + 100 and $2 = 'x'");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ((*c)->param_count, 2);
  EXPECT_EQ((*c)->param_types[0], ValueType::kInt);
  EXPECT_EQ((*c)->param_types[1], ValueType::kText);
}

TEST(ParamCompile, ConflictingHintsWidenToAny) {
  // $1 compared with both an int and a text constant: no single type is
  // right, so the slot widens back to "any" rather than guessing.
  auto c = CompileStatement(
      "retrieve (t.x) from t in t where $1 = 1 or $1 = 'one'");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ((*c)->param_count, 1);
  EXPECT_EQ((*c)->param_types[0], ValueType::kNull);
  EXPECT_EQ(RenderParamSignature(**c), "($1:any)");
}

TEST(ParamCompile, GapsAreCompileErrors) {
  auto c = CompileStatement(
      "retrieve (t.x) from t in t where t.x = $1 or t.x = $3");
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.status().ToString().find("$2"), std::string::npos)
      << c.status().ToString();
}

TEST(ParamCompile, DollarZeroAndBareDollarAreRejected) {
  EXPECT_FALSE(CompileStatement("retrieve (t.x) from t in t where t.x = $0")
                   .ok());
  EXPECT_FALSE(CompileStatement("retrieve (t.x) from t in t where t.x = $")
                   .ok());
}

TEST(ParamCompile, DollarInsideStringLiteralIsNotAPlaceholder) {
  auto c = CompileStatement("append t (x = 1, s = 'costs $1 per day')");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ((*c)->param_count, 0);
  EXPECT_EQ(RenderParamSignature(**c), "()");
  // And the literal survives normalization untouched (the cache key keeps
  // string contents verbatim).
  EXPECT_NE((*c)->normalized.find("'costs $1 per day'"), std::string::npos);
}

TEST(ParamCompile, NormalizationKeepsPlaceholdersDistinct) {
  // $1 and $2 are different shapes; $1 spelled twice is one shape.
  EXPECT_EQ(NormalizeStatementText("append t (x =  $1)"),
            NormalizeStatementText("append t (x = $1)"));
  EXPECT_NE(NormalizeStatementText("append t (x = $1)"),
            NormalizeStatementText("append t (x = $2)"));
}

TEST(ParamBind, ExecutesWithBoundValues) {
  Database db;
  Seed(&db);
  auto c = CompileStatement("retrieve (t.s) from t in t where t.x = $1");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  for (int i = 1; i <= 3; ++i) {
    ParamList params = {Value::Int(i)};
    auto rows = db.ExecuteCompiled(**c, params);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->rows.size(), 1u);
  }
  ParamList params = {Value::Int(99)};
  auto none = db.ExecuteCompiled(**c, params);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->rows.empty());
}

TEST(ParamBind, RepeatedPlaceholderBindsOneValue) {
  Database db;
  Seed(&db);
  auto c = CompileStatement(
      "retrieve (t.s) from t in t where t.x = $1 or t.x = $1 + 1");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ((*c)->param_count, 1);
  ParamList params = {Value::Int(1)};
  auto rows = db.ExecuteCompiled(**c, params);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 2u);  // x = 1 and x = 2
}

TEST(ParamBind, ArityMismatchIsInvalidArgument) {
  Database db;
  Seed(&db);
  auto c = CompileStatement("retrieve (t.s) from t in t where t.x = $1");
  ASSERT_TRUE(c.ok());
  ParamList none;
  EXPECT_FALSE(db.ExecuteCompiled(**c, none).ok());
  ParamList two = {Value::Int(1), Value::Int(2)};
  auto r = db.ExecuteCompiled(**c, two);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("$1"), std::string::npos);
}

TEST(ParamBind, TypeMismatchIsInvalidArgument) {
  Database db;
  Seed(&db);
  auto c = CompileStatement("retrieve (t.s) from t in t where t.x = $1 + 0");
  ASSERT_TRUE(c.ok());
  ASSERT_EQ((*c)->param_types[0], ValueType::kInt);
  ParamList text = {Value::Text("one")};
  auto r = db.ExecuteCompiled(**c, text);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("expects"), std::string::npos)
      << r.status().ToString();
  // Both numeric classes bind a numeric slot; null binds anything.
  ParamList f = {Value::Float(1.0)};
  EXPECT_TRUE(db.ExecuteCompiled(**c, f).ok());
  ParamList null = {Value::Null()};
  EXPECT_TRUE(db.ExecuteCompiled(**c, null).ok());
}

TEST(ParamBind, BoundPlaceholderDrivesIndexScan) {
  // Index planning sees through $n at execute time: `t.x = $1` with a
  // bound int takes the same index path as `t.x = 2` would.
  Database db;
  Seed(&db);
  ASSERT_TRUE(db.Execute("create index on t (x)").ok());
  auto c = CompileStatement("retrieve (t.s) from t in t where t.x = $1");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  db.ResetStats();
  ParamList params = {Value::Int(2)};
  auto rows = db.ExecuteCompiled(**c, params);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  Database::Stats stats = db.stats();
  EXPECT_EQ(stats.index_scans, 1);
  EXPECT_EQ(stats.full_scans, 0);
  EXPECT_EQ(stats.rows_scanned, 1);  // the range probe, not the table
}

TEST(ParamBind, UnboundExecutionFailsUpFront) {
  Database db;
  Seed(&db);
  auto c = CompileStatement("retrieve (t.s) from t in t where t.x = $1");
  ASSERT_TRUE(c.ok());
  auto r = db.ExecuteCompiled(**c);  // no bind list at all
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("bind"), std::string::npos)
      << r.status().ToString();
}

TEST(ParamBind, AppendAndDeleteThroughPlaceholders) {
  Database db;
  Seed(&db);
  auto ins = CompileStatement("append t (x = $1, s = $2)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  ParamList four = {Value::Int(4), Value::Text("four")};
  ASSERT_TRUE(db.ExecuteCompiled(**ins, four).ok());

  auto del = CompileStatement("delete v in t where v.x = $1");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  ParamList one = {Value::Int(1)};
  ASSERT_TRUE(db.ExecuteCompiled(**del, one).ok());

  auto rows = db.Execute("retrieve (t.x) from t in t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);  // 2, 3, 4
}

TEST(ParamReject, EventRuleWhereClause) {
  auto c = CompileStatement(
      "define rule r on append to t where NEW.x > $1 do delete v in t");
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.status().ToString().find("rule"), std::string::npos);
}

TEST(ParamReject, EventRuleActionCommand) {
  Database db;
  Seed(&db);
  // The action fires with the event's scope, which carries no bind list —
  // rejected at definition, not at first firing.
  auto r = db.Execute(
      "define rule r on append to t do append t (x = $1, s = 'echo')");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace caldb
