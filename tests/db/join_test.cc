// Multi-variable retrieves (nested-loop joins with predicate pushdown).

#include <gtest/gtest.h>

#include "db/database.h"

namespace caldb {
namespace {

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("create table students (name text, foreign_student bool)");
    Exec("create table work (name text, week int, hours int)");
    Exec("append students (name = 'amara', foreign_student = true)");
    Exec("append students (name = 'bo', foreign_student = true)");
    Exec("append students (name = 'carol', foreign_student = false)");
    Exec("append work (name = 'amara', week = 1, hours = 24)");
    Exec("append work (name = 'amara', week = 2, hours = 12)");
    Exec("append work (name = 'bo', week = 1, hours = 8)");
    Exec("append work (name = 'carol', week = 2, hours = 30)");
  }

  void Exec(const std::string& query) {
    auto r = db_.Execute(query);
    ASSERT_TRUE(r.ok()) << query << ": " << r.status();
  }

  QueryResult Query(const std::string& query) {
    auto r = db_.Execute(query);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    return r.value_or(QueryResult{});
  }

  Database db_;
};

TEST_F(JoinTest, ThePaperUniversityQuery) {
  // "Retrieve the names of all foreign students who worked more than 20
  // hours in any week" — one statement now.
  QueryResult r = Query(
      "retrieve (s.name) from s in students, w in work "
      "where s.foreign_student = true and s.name = w.name and w.hours > 20");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText().value(), "amara");
}

TEST_F(JoinTest, CrossProductWithoutPredicate) {
  QueryResult r = Query(
      "retrieve (s.name, w.week) from s in students, w in work");
  EXPECT_EQ(r.rows.size(), 12u);  // 3 x 4
}

TEST_F(JoinTest, ColumnsFromBothSides) {
  QueryResult r = Query(
      "retrieve (s.name, s.foreign_student, w.hours) "
      "from s in students, w in work where s.name = w.name and w.week = 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.columns,
            (std::vector<std::string>{"name", "foreign_student", "hours"}));
  EXPECT_EQ(r.rows[0][2].AsInt().value(), 24);
}

TEST_F(JoinTest, AggregationOverAJoin) {
  QueryResult r = Query(
      "retrieve (s.name, sum(w.hours) as total) "
      "from s in students, w in work "
      "where s.name = w.name group by s.name order by total desc");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsText().value(), "amara");
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 36);
  EXPECT_EQ(r.rows[1][0].AsText().value(), "carol");
  EXPECT_EQ(r.rows[2][1].AsInt().value(), 8);
}

TEST_F(JoinTest, ThreeWayJoin) {
  Exec("create table advisors (student text, advisor text)");
  Exec("append advisors (student = 'amara', advisor = 'prof_x')");
  Exec("append advisors (student = 'bo', advisor = 'prof_y')");
  QueryResult r = Query(
      "retrieve (a.advisor, w.hours) "
      "from s in students, w in work, a in advisors "
      "where s.name = w.name and a.student = s.name and w.week = 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText().value(), "prof_x");
}

TEST_F(JoinTest, IndexAcceleratesOuterTable) {
  Exec("create table events (day int, what text)");
  for (int d = 1; d <= 500; ++d) {
    Exec("append events (day = " + std::to_string(d) + ", what = 'e')");
  }
  Exec("create index on events (day)");
  db_.ResetStats();
  QueryResult r = Query(
      "retrieve (e.day, s.name) from e in events, s in students "
      "where e.day = 42 and s.foreign_student = true");
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(db_.stats().index_scans, 1);
  // The outer scan touched only the indexed row; the inner table scanned
  // once per outer match.
  EXPECT_EQ(db_.stats().rows_scanned, 1 + 3);
}

TEST_F(JoinTest, PushdownFiltersEarly) {
  db_.ResetStats();
  Query(
      "retrieve (s.name, w.hours) from s in students, w in work "
      "where s.foreign_student = true and s.name = w.name");
  // students scanned once (3 rows); work scanned once per surviving
  // student (2 x 4): carol is filtered before the inner loop runs.
  EXPECT_EQ(db_.stats().rows_scanned, 3 + 2 * 4);
}

TEST_F(JoinTest, DuplicateRangeVariableRejected) {
  auto r = db_.Execute(
      "retrieve (s.name) from s in students, s in work where s.name = 'x'");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(JoinTest, UnqualifiedColumnAmbiguousAcrossTables) {
  // `name` exists in both tables: with two bindings the reference is
  // ambiguous and evaluation reports it.
  auto r = db_.Execute(
      "retrieve (name) from s in students, w in work where s.name = w.name");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kEvalError);
}

TEST_F(JoinTest, RetrieveIntoMaterializesResult) {
  QueryResult r = Query(
      "retrieve into busy (s.name, sum(w.hours) as total) "
      "from s in students, w in work where s.name = w.name "
      "group by s.name");
  EXPECT_EQ(r.affected, 3);
  EXPECT_TRUE(r.rows.empty());
  // The materialized table is a first-class table: queryable, indexable.
  QueryResult readback =
      Query("retrieve (b.name, b.total) from b in busy where b.total > 20");
  ASSERT_EQ(readback.rows.size(), 2u);
  Exec("create index on busy (total)");
  // Name collision with an existing table is an error.
  auto dup = db_.Execute("retrieve into busy (s.name) from s in students");
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(JoinTest, RetrieveIntoInfersColumnTypes) {
  Exec("create table t (a int, b text, f float)");
  Exec("append t (a = 1, b = 'x', f = 2.5)");
  Exec("append t (a = 2)");
  Query("retrieve into copy (v.a, v.b, v.f) from v in t");
  auto table = db_.GetTable("copy");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().columns()[0].type, ValueType::kInt);
  EXPECT_EQ((*table)->schema().columns()[1].type, ValueType::kText);
  EXPECT_EQ((*table)->schema().columns()[2].type, ValueType::kFloat);
  EXPECT_EQ((*table)->size(), 2);
}

TEST_F(JoinTest, DropTable) {
  Exec("create table victim (x int)");
  Exec("drop table victim");
  EXPECT_FALSE(db_.HasTable("victim"));
  EXPECT_EQ(db_.Execute("drop table victim").status().code(),
            StatusCode::kNotFound);
  // A table referenced by a rule cannot be dropped.
  Exec("create table watched (x int)");
  Exec("define rule w on append to watched do delete v in watched where v.x = 0");
  auto blocked = db_.Execute("drop table watched");
  EXPECT_EQ(blocked.status().code(), StatusCode::kInvalidArgument);
  Exec("drop rule w");
  Exec("drop table watched");
}

TEST_F(JoinTest, RetrieveRulesFireOncePerTouchedTuple) {
  Exec("create table audit (name text)");
  Exec("define rule spy on retrieve to students do "
       "append audit (name = CURRENT.name)");
  Query(
      "retrieve (s.name, w.week) from s in students, w in work "
      "where s.name = w.name");
  QueryResult audit = Query("retrieve (a.name) from a in audit");
  // Each student row touched once, despite joining against several work
  // rows.
  EXPECT_EQ(audit.rows.size(), 3u);
}

}  // namespace
}  // namespace caldb
