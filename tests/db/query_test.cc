// Query-language parser and expression evaluation tests.

#include "db/query.h"

#include <gtest/gtest.h>

#include "db/expression.h"

namespace caldb {
namespace {

TEST(QueryParserTest, Retrieve) {
  auto r = ParseStatement(
      "retrieve (w.student, w.hours as h) from w in payroll where w.week = 3");
  ASSERT_TRUE(r.ok()) << r.status();
  const auto& stmt = std::get<RetrieveStmt>(*r);
  ASSERT_EQ(stmt.targets.size(), 2u);
  EXPECT_EQ(stmt.targets[0].alias, "student");
  EXPECT_EQ(stmt.targets[1].alias, "h");
  ASSERT_EQ(stmt.tables.size(), 1u);
  EXPECT_EQ(stmt.tables[0].var, "w");
  EXPECT_EQ(stmt.tables[0].table, "payroll");
  ASSERT_TRUE(stmt.where != nullptr);
  EXPECT_EQ(stmt.where->ToString(), "(w.week = 3)");
}

TEST(QueryParserTest, RetrieveGroupOrder) {
  auto r = ParseStatement(
      "retrieve (w.student, sum(w.hours) as total) from w in payroll "
      "group by w.student order by total desc, student");
  ASSERT_TRUE(r.ok()) << r.status();
  const auto& stmt = std::get<RetrieveStmt>(*r);
  ASSERT_EQ(stmt.group_by.size(), 1u);
  EXPECT_EQ(stmt.group_by[0],
            (std::pair<std::string, std::string>{"w", "student"}));
  ASSERT_EQ(stmt.order_by.size(), 2u);
  EXPECT_EQ(stmt.order_by[0], (std::pair<std::string, bool>{"total", false}));
  EXPECT_EQ(stmt.order_by[1], (std::pair<std::string, bool>{"student", true}));
}

TEST(QueryParserTest, AppendReplaceDelete) {
  auto append = ParseStatement("append payroll (student = 'ann', week = 1)");
  ASSERT_TRUE(append.ok()) << append.status();
  EXPECT_EQ(std::get<AppendStmt>(*append).sets.size(), 2u);

  auto replace = ParseStatement(
      "replace w in payroll (hours = w.hours + 1) where w.student = 'ann'");
  ASSERT_TRUE(replace.ok()) << replace.status();
  EXPECT_EQ(std::get<ReplaceStmt>(*replace).sets[0].second->ToString(),
            "(w.hours + 1)");

  auto del = ParseStatement("delete w in payroll where w.week = 2");
  ASSERT_TRUE(del.ok()) << del.status();
  EXPECT_EQ(std::get<DeleteStmt>(*del).table, "payroll");
}

TEST(QueryParserTest, CreateTableAndIndex) {
  auto create = ParseStatement(
      "create table prices (symbol text, day int, price float, span interval, "
      "cal calendar)");
  ASSERT_TRUE(create.ok()) << create.status();
  const auto& stmt = std::get<CreateTableStmt>(*create);
  ASSERT_EQ(stmt.columns.size(), 5u);
  EXPECT_EQ(stmt.columns[3].type, ValueType::kInterval);
  EXPECT_EQ(stmt.columns[4].type, ValueType::kCalendar);

  auto index = ParseStatement("create index on prices (day)");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(std::get<CreateIndexStmt>(*index).column, "day");
}

TEST(QueryParserTest, DefineRuleCapturesActionTail) {
  auto r = ParseStatement(
      "define rule watch on append to payroll where NEW.hours > 20 "
      "do append alerts (student = NEW.student, hours = NEW.hours)");
  ASSERT_TRUE(r.ok()) << r.status();
  const auto& stmt = std::get<DefineRuleStmt>(*r);
  EXPECT_EQ(stmt.name, "watch");
  EXPECT_EQ(stmt.event, DbEvent::kAppend);
  EXPECT_EQ(stmt.table, "payroll");
  ASSERT_TRUE(stmt.where != nullptr);
  EXPECT_EQ(stmt.action_command,
            "append alerts (student = NEW.student, hours = NEW.hours)");
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("retrieve w.x from w in t").ok());  // no parens
  EXPECT_FALSE(ParseStatement("append t (x = )").ok());
  EXPECT_FALSE(ParseStatement("define rule r on bogus to t do x").ok());
  EXPECT_FALSE(ParseStatement("create table t (x varchar)").ok());
  EXPECT_FALSE(ParseStatement("retrieve (x) from w in t extra").ok());
  EXPECT_FALSE(ParseDbExpression("'unterminated").ok());
}

// --- expression evaluation ---------------------------------------------

class ExprEval : public ::testing::Test {
 protected:
  ExprEval()
      : schema_({{"student", ValueType::kText},
                 {"week", ValueType::kInt},
                 {"hours", ValueType::kInt},
                 {"gpa", ValueType::kFloat}}),
        row_({Value::Text("ann"), Value::Int(3), Value::Int(22),
              Value::Float(3.5)}) {
    scope_.tuples["w"] = TupleBinding{&schema_, &row_};
    scope_.registry = &registry_;
  }

  Value Eval(const std::string& text) {
    auto expr = ParseDbExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    auto v = EvalDbExpr(**expr, scope_);
    EXPECT_TRUE(v.ok()) << text << ": " << v.status();
    return v.value_or(Value::Null());
  }

  Schema schema_;
  Row row_;
  FunctionRegistry registry_;
  EvalScope scope_;
};

TEST_F(ExprEval, ColumnsAndComparisons) {
  EXPECT_TRUE(Eval("w.student = 'ann'").AsBool().value());
  EXPECT_TRUE(Eval("w.hours > 20").AsBool().value());
  EXPECT_FALSE(Eval("w.week >= 4").AsBool().value());
  EXPECT_TRUE(Eval("w.gpa < 3.6").AsBool().value());
  EXPECT_TRUE(Eval("hours != 0").AsBool().value());  // unqualified, one binding
}

TEST_F(ExprEval, LogicShortCircuits) {
  EXPECT_TRUE(Eval("w.hours > 20 and w.week = 3").AsBool().value());
  EXPECT_TRUE(Eval("w.hours > 100 or w.week = 3").AsBool().value());
  EXPECT_FALSE(Eval("not (w.week = 3)").AsBool().value());
  // Short-circuit: rhs would error (type mismatch) but is never evaluated.
  EXPECT_FALSE(Eval("false and (w.student > 1)").AsBool().value());
}

TEST_F(ExprEval, Arithmetic) {
  EXPECT_EQ(Eval("w.hours * 2 + 1").AsInt().value(), 45);
  EXPECT_EQ(Eval("7 / 2").AsInt().value(), 3);       // int division
  EXPECT_EQ(Eval("7.0 / 2").AsFloat().value(), 3.5);  // float division
  EXPECT_EQ(Eval("-w.week").AsInt().value(), -3);
  EXPECT_EQ(Eval("-5").AsInt().value(), -5);
}

TEST_F(ExprEval, DivisionByZero) {
  auto expr = ParseDbExpression("1 / 0");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(EvalDbExpr(**expr, scope_).status().code(), StatusCode::kEvalError);
}

TEST_F(ExprEval, RegisteredFunction) {
  ASSERT_TRUE(registry_
                  .Register("double_it", 1, 1,
                            [](const std::vector<Value>& args) -> Result<Value> {
                              auto v = args[0].AsInt();
                              if (!v.ok()) return v.status();
                              return Value::Int(*v * 2);
                            })
                  .ok());
  EXPECT_EQ(Eval("double_it(w.hours)").AsInt().value(), 44);
  auto missing = ParseDbExpression("no_such_fn(1)");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(EvalDbExpr(**missing, scope_).status().code(), StatusCode::kNotFound);
}

TEST_F(ExprEval, UnknownVariableAndColumn) {
  auto bad_var = ParseDbExpression("z.hours");
  ASSERT_TRUE(bad_var.ok());
  EXPECT_FALSE(EvalDbExpr(**bad_var, scope_).ok());
  auto bad_col = ParseDbExpression("w.nope");
  ASSERT_TRUE(bad_col.ok());
  EXPECT_FALSE(EvalDbExpr(**bad_col, scope_).ok());
}

TEST_F(ExprEval, NullSemantics) {
  Row null_row{Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  EvalScope scope;
  scope.tuples["w"] = TupleBinding{&schema_, &null_row};
  auto expr = ParseDbExpression("w.hours > 20");
  ASSERT_TRUE(expr.ok());
  auto v = EvalDbExpr(**expr, scope);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->AsBool().value());  // null comparisons are false
  auto eq = ParseDbExpression("w.hours = null");
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(EvalDbExpr(**eq, scope)->AsBool().value());
}

TEST(ExtractIndexRangeTest, Shapes) {
  auto range_of = [](const std::string& text) {
    auto expr = ParseDbExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    return ExtractIndexRange(**expr, "w", "week");
  };
  auto eq = range_of("w.week = 5");
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(*eq, std::make_pair(int64_t{5}, int64_t{5}));

  auto range = range_of("w.week >= 3 and w.week < 8");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(*range, std::make_pair(int64_t{3}, int64_t{7}));

  auto flipped = range_of("10 >= w.week and w.student = 'a'");
  ASSERT_TRUE(flipped.has_value());
  EXPECT_EQ(flipped->second, 10);

  EXPECT_FALSE(range_of("w.hours = 5").has_value());       // other column
  EXPECT_FALSE(range_of("w.week = 5 or w.week = 7").has_value());  // disjunction
  EXPECT_FALSE(range_of("w.week = w.hours").has_value());  // non-constant
}

}  // namespace
}  // namespace caldb
