// DB substrate corner cases: nulls in grouping and aggregates, ordering
// of mixed types, interval columns, replace/delete through indexes, and
// rule interactions.

#include <gtest/gtest.h>

#include "db/database.h"

namespace caldb {
namespace {

class DbEdgeCases : public ::testing::Test {
 protected:
  void Exec(const std::string& query) {
    auto r = db_.Execute(query);
    ASSERT_TRUE(r.ok()) << query << ": " << r.status();
  }
  QueryResult Query(const std::string& query) {
    auto r = db_.Execute(query);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    return r.value_or(QueryResult{});
  }
  Database db_;
};

TEST_F(DbEdgeCases, NullsInAggregates) {
  Exec("create table t (k text, v int)");
  Exec("append t (k = 'a', v = 1)");
  Exec("append t (k = 'a')");  // v is null
  Exec("append t (k = 'b')");
  QueryResult r = Query(
      "retrieve (t0.k, count(t0.v) as n, sum(t0.v) as s, min(t0.v) as lo) "
      "from t0 in t group by t0.k");
  ASSERT_EQ(r.rows.size(), 2u);
  // Nulls are ignored by aggregates.
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 1);
  EXPECT_EQ(r.rows[0][2].AsInt().value(), 1);
  // A group with only nulls: count 0, sum 0 (int), min null.
  EXPECT_EQ(r.rows[1][1].AsInt().value(), 0);
  EXPECT_TRUE(r.rows[1][3].is_null());
}

TEST_F(DbEdgeCases, NullGroupKeysFormTheirOwnGroup) {
  Exec("create table t (k text, v int)");
  Exec("append t (v = 1)");
  Exec("append t (v = 2)");
  Exec("append t (k = 'x', v = 3)");
  QueryResult r =
      Query("retrieve (t0.k, sum(t0.v) as s) from t0 in t group by t0.k");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 3);
}

TEST_F(DbEdgeCases, OrderByIntervalColumn) {
  Exec("create table spans (name text, span interval)");
  ASSERT_TRUE(db_.registry()
                  .Register("mk", 2, 2,
                            [](const std::vector<Value>& args) -> Result<Value> {
                              return Value::Of(Interval{args[0].AsInt().value(),
                                                        args[1].AsInt().value()});
                            })
                  .ok());
  Exec("append spans (name = 'b', span = mk(10, 20))");
  Exec("append spans (name = 'a', span = mk(1, 5))");
  Exec("append spans (name = 'c', span = mk(10, 30))");
  QueryResult r =
      Query("retrieve (s.name, s.span) from s in spans order by span");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsText().value(), "a");
  EXPECT_EQ(r.rows[1][0].AsText().value(), "b");  // (10,20) < (10,30)
  EXPECT_EQ(r.rows[2][0].AsText().value(), "c");
}

TEST_F(DbEdgeCases, ReplaceAndDeleteUseIndexes) {
  Exec("create table t (day int, v int)");
  for (int d = 1; d <= 100; ++d) {
    Exec("append t (day = " + std::to_string(d) + ", v = 0)");
  }
  Exec("create index on t (day)");
  db_.ResetStats();
  Exec("replace x in t (v = 1) where x.day = 50");
  EXPECT_EQ(db_.stats().index_scans, 1);
  EXPECT_EQ(db_.stats().rows_scanned, 1);
  db_.ResetStats();
  Exec("delete x in t where x.day >= 90 and x.day <= 95");
  EXPECT_EQ(db_.stats().index_scans, 1);
  QueryResult count = Query("retrieve (count(x.day) as n) from x in t");
  EXPECT_EQ(count.rows[0][0].AsInt().value(), 94);
  // The index stays consistent after deletes.
  db_.ResetStats();
  QueryResult gone = Query("retrieve (x.day) from x in t where x.day = 92");
  EXPECT_TRUE(gone.rows.empty());
}

TEST_F(DbEdgeCases, ReplaceSeesPreUpdateValues) {
  // All set expressions evaluate against the old row.
  Exec("create table t (a int, b int)");
  Exec("append t (a = 1, b = 10)");
  Exec("replace x in t (a = x.b, b = x.a)");
  QueryResult r = Query("retrieve (x.a, x.b) from x in t");
  EXPECT_EQ(r.rows[0][0].AsInt().value(), 10);
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 1);
}

TEST_F(DbEdgeCases, RuleChainAcrossTables) {
  // append A -> rule appends B -> rule appends C (bounded cascade).
  Exec("create table a (x int)");
  Exec("create table b (x int)");
  Exec("create table c (x int)");
  Exec("define rule ab on append to a do append b (x = NEW.x + 1)");
  Exec("define rule bc on append to b do append c (x = NEW.x + 1)");
  Exec("append a (x = 1)");
  EXPECT_EQ(Query("retrieve (v.x) from v in b").rows[0][0].AsInt().value(), 2);
  EXPECT_EQ(Query("retrieve (v.x) from v in c").rows[0][0].AsInt().value(), 3);
}

TEST_F(DbEdgeCases, FunctionErrorsPropagateFromRules) {
  Exec("create table t (x int)");
  EventRule rule;
  rule.name = "boom";
  rule.event = DbEvent::kAppend;
  rule.table = "t";
  rule.callback = [](Database&, const EvalScope&) {
    return Status::EvalError("action exploded");
  };
  ASSERT_TRUE(db_.DefineRule(std::move(rule)).ok());
  auto r = db_.Execute("append t (x = 1)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("boom"), std::string::npos);
}

TEST_F(DbEdgeCases, UnknownColumnInSetList) {
  Exec("create table t (x int)");
  EXPECT_FALSE(db_.Execute("append t (nope = 1)").ok());
  EXPECT_FALSE(db_.Execute("replace v in t (nope = 1)").ok());
}

TEST_F(DbEdgeCases, EmptyTableQueries) {
  Exec("create table t (x int)");
  EXPECT_TRUE(Query("retrieve (v.x) from v in t").rows.empty());
  QueryResult agg = Query("retrieve (count(v.x) as n) from v in t");
  // No rows at all: no groups, so no output rows (SQL would give one; the
  // substrate follows Postquel's simpler per-group emission).
  EXPECT_TRUE(agg.rows.empty());
  EXPECT_EQ(Query("delete v in t").affected, 0);
}

TEST_F(DbEdgeCases, TextComparisonsAndOrdering) {
  Exec("create table t (s text)");
  for (const char* s : {"pear", "apple", "fig"}) {
    Exec("append t (s = '" + std::string(s) + "')");
  }
  QueryResult r = Query("retrieve (v.s) from v in t where v.s > 'b' order by s");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText().value(), "fig");
  EXPECT_EQ(r.rows[1][0].AsText().value(), "pear");
}

}  // namespace
}  // namespace caldb
