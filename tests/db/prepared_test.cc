// The parse-once pipeline at the db layer: CompileStatement metadata
// (write classification, referenced tables, normalization), the
// Database::Prepare / ExecuteCompiled entry points, the EXPLAIN/PROFILE
// single-parse contract, and DefineRule's fail-fast on unparseable
// actions.

#include "db/compiled_statement.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "obs/obs.h"

namespace caldb {
namespace {

using WriteClass = CompiledStatement::WriteClass;

int64_t ParseCount() {
  return obs::Metrics().counter("caldb.db.parses")->value();
}

TEST(NormalizeStatementText, CollapsesWhitespaceAndTrims) {
  EXPECT_EQ(NormalizeStatementText("  retrieve   (t.x)\n\tfrom t in t  "),
            "retrieve (t.x) from t in t");
  EXPECT_EQ(NormalizeStatementText("append t (x = 1)"), "append t (x = 1)");
  EXPECT_EQ(NormalizeStatementText(""), "");
  EXPECT_EQ(NormalizeStatementText("   \t\n "), "");
}

TEST(NormalizeStatementText, PreservesQuotedRegions) {
  // Whitespace inside string literals is meaning, not formatting.
  EXPECT_EQ(NormalizeStatementText("append t (s =  'a   b')"),
            "append t (s = 'a   b')");
  EXPECT_EQ(NormalizeStatementText("append t (s = \"x \t y\",  n =  1)"),
            "append t (s = \"x \t y\", n = 1)");
  // An unterminated quote must not crash; the rest stays as-is.
  EXPECT_EQ(NormalizeStatementText("append t (s = 'a   b"),
            "append t (s = 'a   b");
}

TEST(CompileStatement, RetrieveMetadata) {
  auto c = CompileStatement("retrieve (w.x) from w in alerts");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ((*c)->write_class, WriteClass::kReadUnlessRetrieveRules);
  EXPECT_FALSE((*c)->is_ddl);
  ASSERT_EQ((*c)->tables.size(), 1u);
  EXPECT_EQ((*c)->tables[0], "alerts");
  EXPECT_EQ((*c)->text, "retrieve (w.x) from w in alerts");
  EXPECT_EQ((*c)->normalized, "retrieve (w.x) from w in alerts");
  ASSERT_NE((*c)->stmt, nullptr);
  EXPECT_TRUE(std::holds_alternative<RetrieveStmt>(*(*c)->stmt));
}

TEST(CompileStatement, RetrieveIntoWrites) {
  auto c = CompileStatement("retrieve into copy (w.x) from w in alerts");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ((*c)->write_class, WriteClass::kWrite);
  EXPECT_TRUE((*c)->is_ddl);  // creates the target table
  // Both the source and the created table are referenced.
  EXPECT_NE(std::find((*c)->tables.begin(), (*c)->tables.end(), "alerts"),
            (*c)->tables.end());
  EXPECT_NE(std::find((*c)->tables.begin(), (*c)->tables.end(), "copy"),
            (*c)->tables.end());
}

TEST(CompileStatement, DmlAndDdlMetadata) {
  auto append = CompileStatement("append t (x = 1)");
  ASSERT_TRUE(append.ok());
  EXPECT_EQ((*append)->write_class, WriteClass::kWrite);
  EXPECT_FALSE((*append)->is_ddl);
  EXPECT_EQ((*append)->tables, std::vector<std::string>{"t"});

  auto create = CompileStatement("create table t (x int)");
  ASSERT_TRUE(create.ok());
  EXPECT_EQ((*create)->write_class, WriteClass::kWrite);
  EXPECT_TRUE((*create)->is_ddl);
  EXPECT_EQ((*create)->tables, std::vector<std::string>{"t"});

  auto drop = CompileStatement("drop table t");
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE((*drop)->is_ddl);
  EXPECT_EQ((*drop)->tables, std::vector<std::string>{"t"});

  // drop rule: the referenced table is not statically known, so the table
  // list is empty — downstream caches take that as "flush everything".
  auto drop_rule = CompileStatement("drop rule r");
  ASSERT_TRUE(drop_rule.ok());
  EXPECT_TRUE((*drop_rule)->is_ddl);
  EXPECT_TRUE((*drop_rule)->tables.empty());
}

TEST(CompileStatement, ExplainInheritsInnerTablesAndStaysRead) {
  auto c = CompileStatement("explain retrieve (w.x) from w in alerts");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ((*c)->write_class, WriteClass::kRead);
  EXPECT_EQ((*c)->tables, std::vector<std::string>{"alerts"});
  // The inner statement was compiled exactly once, at parse time.
  const auto& stmt = std::get<ExplainStmt>(*(*c)->stmt);
  ASSERT_NE(stmt.inner, nullptr);
  EXPECT_TRUE(std::holds_alternative<RetrieveStmt>(*stmt.inner->stmt));
}

TEST(CompileStatement, ProfileInheritsInnerWriteClass) {
  auto c = CompileStatement("profile append t (x = 1)");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  // PROFILE runs the statement, so it writes what the inner writes.
  EXPECT_EQ((*c)->write_class, WriteClass::kWrite);
  EXPECT_EQ((*c)->tables, std::vector<std::string>{"t"});
}

TEST(CompileStatement, ParseErrorsComeBackAsStatus) {
  auto c = CompileStatement("retrieve from nowhere ((");
  EXPECT_FALSE(c.ok());
  auto empty = CompileStatement("");
  EXPECT_FALSE(empty.ok());
}

TEST(PreparedExecution, HandleExecutesRepeatedlyWithoutReparsing) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());

  auto prepared = Database::Prepare("append t (x = 7)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  const int64_t parses_before = ParseCount();
  for (int i = 0; i < 10; ++i) {
    auto r = db.ExecuteCompiled(**prepared);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(ParseCount(), parses_before);  // zero parses on the hot path

  auto rows = db.Execute("retrieve (t.x) from t in t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 10u);
}

TEST(PreparedExecution, ExplainAndProfileParseOnce) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());
  ASSERT_TRUE(db.Execute("append t (x = 1)").ok());

  // One ParseStatement call for the outer text, one CompileStatement for
  // the inner — and nothing more: plan rendering and the PROFILE timed
  // run reuse the same compiled handle.
  int64_t before = ParseCount();
  auto explain = db.Execute("explain retrieve (t.x) from t in t");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(ParseCount() - before, 2);

  before = ParseCount();
  auto profile = db.Execute("profile retrieve (t.x) from t in t");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(ParseCount() - before, 2);
  EXPECT_FALSE(profile->message.empty());
}

TEST(EventRules, DefineRuleRejectsUnparseableActionAtDefinition) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());

  EventRule bad;
  bad.name = "broken";
  bad.event = DbEvent::kAppend;
  bad.table = "t";
  bad.command = "append nowhere ((((";
  Status st = db.DefineRule(std::move(bad));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("broken"), std::string::npos);
  EXPECT_TRUE(db.ListRules().empty());

  // The language-level spelling fails identically.
  EXPECT_FALSE(
      db.Execute("define rule r2 on append to t do append zzz ((").ok());
}

TEST(EventRules, FiringsExecuteThePrecompiledAction) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());
  ASSERT_TRUE(db.Execute("create table log (v int)").ok());

  EventRule rule;
  rule.name = "mirror";
  rule.event = DbEvent::kAppend;
  rule.table = "t";
  rule.command = "append log (v = NEW.x)";
  ASSERT_TRUE(db.DefineRule(std::move(rule)).ok());
  // The stored rule carries its compiled handle.
  ASSERT_EQ(db.event_rules().size(), 1u);
  ASSERT_NE(db.event_rules()[0].compiled_command, nullptr);

  auto trigger = Database::Prepare("append t (x = 5)");
  ASSERT_TRUE(trigger.ok());
  const int64_t before = ParseCount();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.ExecuteCompiled(**trigger).ok());
  }
  // Neither the trigger statement nor the rule action parsed.
  EXPECT_EQ(ParseCount(), before);

  auto log = db.Execute("retrieve (l.v) from l in log");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->rows.size(), 5u);
}

}  // namespace
}  // namespace caldb
