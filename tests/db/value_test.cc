#include "db/value.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).type(), ValueType::kInt);
  EXPECT_EQ(Value::Float(2.5).type(), ValueType::kFloat);
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Text("hi").type(), ValueType::kText);
  EXPECT_EQ(Value::Of(Interval{1, 5}).type(), ValueType::kInterval);
  EXPECT_EQ(Value::Of(Calendar::Order1(Granularity::kDays, {{1, 5}})).type(),
            ValueType::kCalendar);

  EXPECT_EQ(Value::Int(42).AsInt().value(), 42);
  EXPECT_EQ(Value::Text("hi").AsText().value(), "hi");
  EXPECT_EQ(Value::Of(Interval{1, 5}).AsInterval().value(), (Interval{1, 5}));
}

TEST(ValueTest, IntWidensToFloat) {
  EXPECT_EQ(Value::Int(3).AsFloat().value(), 3.0);
  EXPECT_FALSE(Value::Float(3.0).AsInt().ok());  // no silent narrowing
}

TEST(ValueTest, TypeErrors) {
  EXPECT_EQ(Value::Text("x").AsInt().status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Value::Int(1).AsText().status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Value::Null().AsInt().status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, Truthy) {
  EXPECT_TRUE(Value::Bool(true).Truthy().value());
  EXPECT_FALSE(Value::Bool(false).Truthy().value());
  EXPECT_FALSE(Value::Null().Truthy().value());  // null is false
  EXPECT_FALSE(Value::Int(1).Truthy().ok());     // no int-as-bool
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Text("abc").ToString(), "'abc'");
  EXPECT_EQ(Value::Of(Interval{-4, 3}).ToString(), "(-4,3)");
  EXPECT_EQ(Value::Of(Calendar::Order1(Granularity::kDays, {{1, 2}})).ToString(),
            "{(1,2)}");
}

TEST(ValueTest, Equality) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Int(3)));
  EXPECT_TRUE(Value::Int(3).Equals(Value::Float(3.0)));  // numeric cross-type
  EXPECT_FALSE(Value::Int(3).Equals(Value::Int(4)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_TRUE(Value::Text("a").Equals(Value::Text("a")));
  EXPECT_FALSE(Value::Text("a").Equals(Value::Int(1)));
  EXPECT_TRUE(Value::Of(Interval{1, 5}).Equals(Value::Of(Interval{1, 5})));
  Calendar c = Calendar::Order1(Granularity::kDays, {{1, 5}});
  EXPECT_TRUE(Value::Of(c).Equals(Value::Of(c)));
}

TEST(ValueTest, Compare) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)).value(), 0);
  EXPECT_GT(Value::Float(2.5).Compare(Value::Int(2)).value(), 0);
  EXPECT_EQ(Value::Text("a").Compare(Value::Text("a")).value(), 0);
  EXPECT_LT(Value::Of(Interval{1, 2}).Compare(Value::Of(Interval{1, 3})).value(),
            0);
  EXPECT_FALSE(Value::Int(1).Compare(Value::Text("a")).ok());
  Calendar c = Calendar::Order1(Granularity::kDays, {{1, 5}});
  EXPECT_FALSE(Value::Of(c).Compare(Value::Of(c)).ok());  // not orderable
}

TEST(ValueTest, ParseValueTypes) {
  EXPECT_EQ(ParseValueType("int").value(), ValueType::kInt);
  EXPECT_EQ(ParseValueType("FLOAT").value(), ValueType::kFloat);
  EXPECT_EQ(ParseValueType("text").value(), ValueType::kText);
  EXPECT_EQ(ParseValueType("interval").value(), ValueType::kInterval);
  EXPECT_EQ(ParseValueType("calendar").value(), ValueType::kCalendar);
  EXPECT_FALSE(ParseValueType("varchar").ok());
}

}  // namespace
}  // namespace caldb
