#include "db/btree.h"

#include <algorithm>
#include <map>
#include <random>
#include <set>

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(BTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  int visits = 0;
  tree.ScanAll([&](int64_t, int64_t) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

TEST(BTreeTest, InsertAndScan) {
  BPlusTree tree(4);
  for (int64_t k : {5, 1, 9, 3, 7}) tree.Insert(k, k * 10);
  EXPECT_EQ(tree.size(), 5);
  std::vector<int64_t> keys;
  tree.ScanAll([&](int64_t key, int64_t rowid) {
    EXPECT_EQ(rowid, key * 10);
    keys.push_back(key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 5, 7, 9}));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, RangeScan) {
  BPlusTree tree(4);
  for (int64_t k = 1; k <= 100; ++k) tree.Insert(k, k);
  std::vector<int64_t> keys;
  tree.ScanRange(10, 20, [&](int64_t key, int64_t) {
    keys.push_back(key);
    return true;
  });
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 20);
  // Early stop.
  int count = 0;
  tree.ScanRange(1, 100, [&](int64_t, int64_t) { return ++count < 5; });
  EXPECT_EQ(count, 5);
  // Empty and inverted ranges.
  count = 0;
  tree.ScanRange(200, 300, [&](int64_t, int64_t) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
  tree.ScanRange(20, 10, [&](int64_t, int64_t) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(BTreeTest, DuplicateKeys) {
  BPlusTree tree(4);
  for (int64_t r = 0; r < 10; ++r) tree.Insert(7, r);
  tree.Insert(3, 0);
  tree.Insert(9, 0);
  std::vector<int64_t> rowids;
  tree.ScanRange(7, 7, [&](int64_t, int64_t rowid) {
    rowids.push_back(rowid);
    return true;
  });
  ASSERT_EQ(rowids.size(), 10u);
  EXPECT_TRUE(std::is_sorted(rowids.begin(), rowids.end()));
  EXPECT_TRUE(tree.Erase(7, 4));
  EXPECT_FALSE(tree.Erase(7, 4));  // already gone
  EXPECT_EQ(tree.size(), 11);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, GrowsAndShrinksHeight) {
  BPlusTree tree(4);
  for (int64_t k = 1; k <= 500; ++k) tree.Insert(k, k);
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (int64_t k = 1; k <= 500; ++k) {
    ASSERT_TRUE(tree.Erase(k, k)) << k;
    Status st = tree.CheckInvariants();
    ASSERT_TRUE(st.ok()) << "after erasing " << k << ": " << st;
  }
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.height(), 1);
}

TEST(BTreeTest, EraseMissing) {
  BPlusTree tree(4);
  tree.Insert(1, 1);
  EXPECT_FALSE(tree.Erase(2, 2));
  EXPECT_FALSE(tree.Erase(1, 99));
  EXPECT_EQ(tree.size(), 1);
}

TEST(BTreeTest, NegativeKeys) {
  BPlusTree tree(4);
  for (int64_t k = -50; k <= 50; ++k) {
    if (k == 0) continue;
    tree.Insert(k, k);
  }
  std::vector<int64_t> keys;
  tree.ScanRange(-5, 5, [&](int64_t key, int64_t) {
    keys.push_back(key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{-5, -4, -3, -2, -1, 1, 2, 3, 4, 5}));
}

// Model test: the tree agrees with a std::multimap reference under a
// deterministic random workload, for several fan-outs.
class BTreeModel : public ::testing::TestWithParam<int> {};

TEST_P(BTreeModel, AgreesWithMultimap) {
  const int fanout = GetParam();
  BPlusTree tree(fanout);
  std::multimap<int64_t, int64_t> model;
  std::mt19937_64 rng(static_cast<uint64_t>(fanout) * 7919);
  int64_t next_rowid = 0;
  for (int step = 0; step < 4000; ++step) {
    int64_t key = static_cast<int64_t>(rng() % 200) - 100;
    if (key >= 0) ++key;  // avoid 0 just to mimic time points
    if (rng() % 3 != 0 || model.empty()) {
      int64_t rowid = next_rowid++;
      tree.Insert(key, rowid);
      model.emplace(key, rowid);
    } else {
      // Erase a random existing entry.
      auto it = model.begin();
      std::advance(it, static_cast<int64_t>(rng() % model.size()));
      EXPECT_TRUE(tree.Erase(it->first, it->second));
      model.erase(it);
    }
    if (step % 500 == 0) {
      Status st = tree.CheckInvariants();
      ASSERT_TRUE(st.ok()) << st;
    }
  }
  ASSERT_EQ(tree.size(), static_cast<int64_t>(model.size()));
  // Full-content comparison.
  std::vector<std::pair<int64_t, int64_t>> tree_entries;
  tree.ScanAll([&](int64_t k, int64_t r) {
    tree_entries.emplace_back(k, r);
    return true;
  });
  std::vector<std::pair<int64_t, int64_t>> model_entries(model.begin(),
                                                         model.end());
  std::sort(model_entries.begin(), model_entries.end());
  EXPECT_EQ(tree_entries, model_entries);
  // Random range scans agree.
  for (int probe = 0; probe < 50; ++probe) {
    int64_t lo = static_cast<int64_t>(rng() % 220) - 110;
    int64_t hi = lo + static_cast<int64_t>(rng() % 60);
    std::vector<std::pair<int64_t, int64_t>> got;
    tree.ScanRange(lo, hi, [&](int64_t k, int64_t r) {
      got.emplace_back(k, r);
      return true;
    });
    std::vector<std::pair<int64_t, int64_t>> want;
    for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi;
         ++it) {
      want.emplace_back(it->first, it->second);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(FanOuts, BTreeModel, ::testing::Values(4, 5, 8, 16, 64));

}  // namespace
}  // namespace caldb
