#include "db/table.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

Schema PayrollSchema() {
  return Schema({{"student", ValueType::kText},
                 {"week", ValueType::kInt},
                 {"hours", ValueType::kInt}});
}

Row MakeRow(const std::string& student, int64_t week, int64_t hours) {
  return {Value::Text(student), Value::Int(week), Value::Int(hours)};
}

TEST(SchemaTest, MakeValidates) {
  EXPECT_TRUE(Schema::Make({{"a", ValueType::kInt}}).ok());
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(Schema::Make({{"", ValueType::kInt}}).ok());
  EXPECT_FALSE(
      Schema::Make({{"a", ValueType::kInt}, {"a", ValueType::kText}}).ok());
}

TEST(SchemaTest, IndexOfAndValidate) {
  Schema s = PayrollSchema();
  EXPECT_EQ(s.IndexOf("week").value(), 1u);
  EXPECT_FALSE(s.IndexOf("nope").ok());
  EXPECT_TRUE(s.ValidateRow(MakeRow("ann", 1, 2)).ok());
  EXPECT_FALSE(s.ValidateRow({Value::Int(1)}).ok());  // wrong arity
  EXPECT_FALSE(
      s.ValidateRow({Value::Int(1), Value::Int(2), Value::Int(3)}).ok());
  // Nulls allowed anywhere; ints widen into float columns.
  EXPECT_TRUE(s.ValidateRow({Value::Null(), Value::Int(1), Value::Null()}).ok());
  Schema f({{"x", ValueType::kFloat}});
  EXPECT_TRUE(f.ValidateRow({Value::Int(3)}).ok());
}

TEST(TableTest, InsertGetDelete) {
  Table t("payroll", PayrollSchema());
  auto id1 = t.Insert(MakeRow("ann", 1, 10));
  auto id2 = t.Insert(MakeRow("bob", 1, 25));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(t.size(), 2);
  EXPECT_EQ(t.Get(*id1).value()[0].AsText().value(), "ann");
  ASSERT_TRUE(t.Delete(*id1).ok());
  EXPECT_EQ(t.size(), 1);
  EXPECT_FALSE(t.Get(*id1).ok());
  EXPECT_FALSE(t.Delete(*id1).ok());  // double delete
  EXPECT_FALSE(t.Delete(999).ok());
}

TEST(TableTest, UpdateMaintainsContent) {
  Table t("payroll", PayrollSchema());
  RowId id = t.Insert(MakeRow("ann", 1, 10)).value();
  ASSERT_TRUE(t.Update(id, MakeRow("ann", 2, 12)).ok());
  EXPECT_EQ(t.Get(id).value()[1].AsInt().value(), 2);
  EXPECT_FALSE(t.Update(999, MakeRow("x", 1, 1)).ok());
}

TEST(TableTest, ScanVisitsLiveRowsInOrder) {
  Table t("payroll", PayrollSchema());
  RowId a = t.Insert(MakeRow("a", 1, 1)).value();
  t.Insert(MakeRow("b", 2, 2)).value();
  t.Insert(MakeRow("c", 3, 3)).value();
  ASSERT_TRUE(t.Delete(a).ok());
  std::vector<std::string> seen;
  t.Scan([&](RowId, const Row& row) {
    seen.push_back(row[0].AsText().value());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"b", "c"}));
}

TEST(TableTest, IndexLifecycle) {
  Table t("payroll", PayrollSchema());
  for (int64_t w = 1; w <= 20; ++w) {
    t.Insert(MakeRow("s" + std::to_string(w), w, w * 2)).value();
  }
  // Index created after rows exist picks them all up.
  ASSERT_TRUE(t.CreateIndex("week").ok());
  EXPECT_TRUE(t.HasIndex("week"));
  EXPECT_FALSE(t.CreateIndex("week").ok());         // duplicate
  EXPECT_FALSE(t.CreateIndex("student").ok());      // non-int column
  EXPECT_FALSE(t.CreateIndex("nonexistent").ok());

  std::vector<int64_t> weeks;
  ASSERT_TRUE(t.IndexScan("week", 5, 8, [&](RowId, const Row& row) {
                  weeks.push_back(row[1].AsInt().value());
                  return true;
                }).ok());
  EXPECT_EQ(weeks, (std::vector<int64_t>{5, 6, 7, 8}));
  EXPECT_FALSE(t.IndexScan("hours", 1, 2, [](RowId, const Row&) {
                   return true;
                 }).ok());  // no such index
}

TEST(TableTest, IndexTracksMutations) {
  Table t("payroll", PayrollSchema());
  ASSERT_TRUE(t.CreateIndex("week").ok());
  RowId id = t.Insert(MakeRow("ann", 5, 10)).value();
  t.Insert(MakeRow("bob", 5, 20)).value();

  auto count_in = [&](int64_t lo, int64_t hi) {
    int count = 0;
    EXPECT_TRUE(t.IndexScan("week", lo, hi, [&](RowId, const Row&) {
                    ++count;
                    return true;
                  }).ok());
    return count;
  };
  EXPECT_EQ(count_in(5, 5), 2);
  ASSERT_TRUE(t.Update(id, MakeRow("ann", 9, 10)).ok());
  EXPECT_EQ(count_in(5, 5), 1);
  EXPECT_EQ(count_in(9, 9), 1);
  ASSERT_TRUE(t.Delete(id).ok());
  EXPECT_EQ(count_in(9, 9), 0);
}

TEST(TableTest, NullsAreNotIndexed) {
  Table t("payroll", PayrollSchema());
  ASSERT_TRUE(t.CreateIndex("week").ok());
  t.Insert({Value::Text("x"), Value::Null(), Value::Int(1)}).value();
  int count = 0;
  ASSERT_TRUE(t.IndexScan("week", INT64_MIN, INT64_MAX, [&](RowId, const Row&) {
                  ++count;
                  return true;
                }).ok());
  EXPECT_EQ(count, 0);
  EXPECT_EQ(t.size(), 1);
}

TEST(TableTest, InsertRejectsSchemaViolations) {
  Table t("payroll", PayrollSchema());
  EXPECT_FALSE(t.Insert({Value::Int(1), Value::Int(2), Value::Int(3)}).ok());
  EXPECT_EQ(t.size(), 0);
}

}  // namespace
}  // namespace caldb
