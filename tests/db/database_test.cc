// End-to-end DB substrate tests: DDL, DML, aggregation, index use, and the
// event-rule system of §4.

#include "db/database.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void Exec(const std::string& query) {
    auto r = db_.Execute(query);
    ASSERT_TRUE(r.ok()) << query << ": " << r.status();
  }

  QueryResult Query(const std::string& query) {
    auto r = db_.Execute(query);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    return r.value_or(QueryResult{});
  }

  Database db_;
};

TEST_F(DatabaseTest, CreateInsertRetrieve) {
  Exec("create table payroll (student text, week int, hours int)");
  Exec("append payroll (student = 'ann', week = 1, hours = 22)");
  Exec("append payroll (student = 'bob', week = 1, hours = 15)");
  Exec("append payroll (student = 'ann', week = 2, hours = 18)");

  QueryResult r = Query(
      "retrieve (w.student, w.hours) from w in payroll where w.week = 1");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"student", "hours"}));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText().value(), "ann");
  EXPECT_EQ(r.rows[1][1].AsInt().value(), 15);
}

TEST_F(DatabaseTest, DuplicateTableRejected) {
  Exec("create table t (x int)");
  EXPECT_EQ(db_.Execute("create table t (y int)").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DatabaseTest, MissingColumnsAreNull) {
  Exec("create table t (a int, b text)");
  Exec("append t (a = 1)");
  QueryResult r = Query("retrieve (v.a, v.b) from v in t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(DatabaseTest, ReplaceAndDelete) {
  Exec("create table t (name text, score int)");
  Exec("append t (name = 'a', score = 1)");
  Exec("append t (name = 'b', score = 2)");
  QueryResult rep =
      Query("replace v in t (score = v.score * 10) where v.name = 'a'");
  EXPECT_EQ(rep.affected, 1);
  QueryResult after = Query("retrieve (v.score) from v in t where v.name = 'a'");
  EXPECT_EQ(after.rows[0][0].AsInt().value(), 10);

  QueryResult del = Query("delete v in t where v.score = 2");
  EXPECT_EQ(del.affected, 1);
  EXPECT_EQ(Query("retrieve (v.name) from v in t").rows.size(), 1u);
}

TEST_F(DatabaseTest, AggregationWithGroupBy) {
  Exec("create table payroll (student text, week int, hours int)");
  Exec("append payroll (student = 'ann', week = 1, hours = 22)");
  Exec("append payroll (student = 'ann', week = 2, hours = 18)");
  Exec("append payroll (student = 'bob', week = 1, hours = 15)");

  QueryResult r = Query(
      "retrieve (w.student, sum(w.hours) as total, count(w.hours) as n, "
      "max(w.hours) as peak, avg(w.hours) as mean) "
      "from w in payroll group by w.student order by total desc");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText().value(), "ann");
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 40);
  EXPECT_EQ(r.rows[0][2].AsInt().value(), 2);
  EXPECT_EQ(r.rows[0][3].AsInt().value(), 22);
  EXPECT_EQ(r.rows[0][4].AsFloat().value(), 20.0);
  EXPECT_EQ(r.rows[1][1].AsInt().value(), 15);
}

TEST_F(DatabaseTest, GlobalAggregateWithoutGroupBy) {
  Exec("create table t (x int)");
  for (int i = 1; i <= 5; ++i) {
    Exec("append t (x = " + std::to_string(i) + ")");
  }
  QueryResult r = Query("retrieve (count(v.x) as n, min(v.x) as lo) from v in t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt().value(), 5);
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 1);
}

TEST_F(DatabaseTest, NonAggregateTargetOutsideGroupByRejected) {
  Exec("create table t (a int, b int)");
  Exec("append t (a = 1, b = 2)");
  auto r = db_.Execute("retrieve (v.b, sum(v.a)) from v in t group by v.a");
  EXPECT_FALSE(r.ok());
}

TEST_F(DatabaseTest, IndexAcceleratesEqualityAndRange) {
  Exec("create table events (day int, what text)");
  for (int d = 1; d <= 1000; ++d) {
    Exec("append events (day = " + std::to_string(d) + ", what = 'x')");
  }
  Exec("create index on events (day)");
  db_.ResetStats();
  QueryResult r = Query(
      "retrieve (e.day) from e in events where e.day >= 10 and e.day <= 12");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(db_.stats().index_scans, 1);
  EXPECT_EQ(db_.stats().full_scans, 0);
  EXPECT_EQ(db_.stats().rows_scanned, 3);  // only the indexed range

  db_.ResetStats();
  Query("retrieve (e.day) from e in events where e.what = 'x' and e.day = 5");
  EXPECT_EQ(db_.stats().index_scans, 1);
  EXPECT_EQ(db_.stats().rows_scanned, 1);  // residual filter on 1 row

  db_.ResetStats();
  Query("retrieve (e.day) from e in events where e.what = 'x'");
  EXPECT_EQ(db_.stats().full_scans, 1);
  EXPECT_EQ(db_.stats().rows_scanned, 1000);
}

TEST_F(DatabaseTest, AppendRuleFires) {
  Exec("create table payroll (student text, hours int)");
  Exec("create table alerts (student text, hours int)");
  Exec(
      "define rule watch on append to payroll where NEW.hours > 20 "
      "do append alerts (student = NEW.student, hours = NEW.hours)");

  Exec("append payroll (student = 'ann', hours = 22)");
  Exec("append payroll (student = 'bob', hours = 10)");

  QueryResult alerts = Query("retrieve (a.student) from a in alerts");
  ASSERT_EQ(alerts.rows.size(), 1u);
  EXPECT_EQ(alerts.rows[0][0].AsText().value(), "ann");
  EXPECT_EQ(db_.stats().rules_fired, 1);
}

TEST_F(DatabaseTest, DeleteAndReplaceRulesSeeCurrent) {
  Exec("create table t (name text, v int)");
  Exec("create table log (name text, op text)");
  Exec("define rule on_del on delete to t do "
       "append log (name = CURRENT.name, op = 'delete')");
  Exec("define rule on_rep on replace to t where NEW.v != CURRENT.v do "
       "append log (name = NEW.name, op = 'replace')");

  Exec("append t (name = 'a', v = 1)");
  Exec("replace x in t (v = 2) where x.name = 'a'");
  Exec("replace x in t (v = 2) where x.name = 'a'");  // no-op change: no fire
  Exec("delete x in t where x.name = 'a'");

  QueryResult log = Query("retrieve (l.name, l.op) from l in log");
  ASSERT_EQ(log.rows.size(), 2u);
  EXPECT_EQ(log.rows[0][1].AsText().value(), "replace");
  EXPECT_EQ(log.rows[1][1].AsText().value(), "delete");
}

TEST_F(DatabaseTest, RetrieveRuleFiresPerTuple) {
  Exec("create table t (x int)");
  Exec("create table audit (x int)");
  Exec("define rule spy on retrieve to t do append audit (x = CURRENT.x)");
  Exec("append t (x = 1)");
  Exec("append t (x = 2)");
  Query("retrieve (v.x) from v in t where v.x > 0");
  QueryResult audit = Query("retrieve (a.x) from a in audit");
  EXPECT_EQ(audit.rows.size(), 2u);
}

TEST_F(DatabaseTest, CascadingRulesAreDepthLimited) {
  Exec("create table ping (n int)");
  // A rule that re-appends to its own table loops; the executor must stop it.
  Exec("define rule loop on append to ping do append ping (n = NEW.n + 1)");
  auto r = db_.Execute("append ping (n = 1)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kEvalError);
  EXPECT_NE(r.status().message().find("depth"), std::string::npos);
}

TEST_F(DatabaseTest, CallbackRules) {
  Exec("create table t (x int)");
  int fired = 0;
  EventRule rule;
  rule.name = "cb";
  rule.event = DbEvent::kAppend;
  rule.table = "t";
  rule.callback = [&fired](Database&, const EvalScope&) {
    ++fired;
    return Status::OK();
  };
  ASSERT_TRUE(db_.DefineRule(std::move(rule)).ok());
  Exec("append t (x = 1)");
  Exec("append t (x = 2)");
  EXPECT_EQ(fired, 2);
}

TEST_F(DatabaseTest, RuleManagement) {
  Exec("create table t (x int)");
  Exec("define rule r1 on append to t do append t (x = 1)");
  EXPECT_EQ(db_.ListRules(), (std::vector<std::string>{"r1"}));
  EXPECT_EQ(db_.Execute("define rule r1 on append to t do append t (x = 1)")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  Exec("drop rule r1");
  EXPECT_TRUE(db_.ListRules().empty());
  EXPECT_EQ(db_.Execute("drop rule r1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("define rule r2 on append to missing do append t (x=1)")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(DatabaseTest, QueryResultRendering) {
  Exec("create table t (x int, s text)");
  Exec("append t (x = 1, s = 'a')");
  QueryResult r = Query("retrieve (v.x, v.s) from v in t");
  EXPECT_EQ(r.ToString(), "x | s\n1 | 'a'\n");
}

TEST_F(DatabaseTest, IntervalAndCalendarColumns) {
  Exec("create table spans (name text, span interval)");
  ASSERT_TRUE(db_.registry()
                  .Register("mkint", 2, 2,
                            [](const std::vector<Value>& args) -> Result<Value> {
                              auto lo = args[0].AsInt();
                              auto hi = args[1].AsInt();
                              if (!lo.ok()) return lo.status();
                              if (!hi.ok()) return hi.status();
                              auto i = MakeInterval(*lo, *hi);
                              if (!i.ok()) return i.status();
                              return Value::Of(*i);
                            })
                  .ok());
  Exec("append spans (name = 'jan', span = mkint(1, 31))");
  QueryResult r = Query("retrieve (s.span) from s in spans where s.name = 'jan'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInterval().value(), (Interval{1, 31}));
}

}  // namespace
}  // namespace caldb
