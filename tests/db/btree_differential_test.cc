// BPlusTree::Erase structural edges, pinned by a randomized differential
// test against std::multimap (the reference implementation of a
// (key, rowid) multiset with ordered scans).

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "db/btree.h"

namespace caldb {
namespace {

std::vector<std::pair<int64_t, int64_t>> Dump(const BPlusTree& tree) {
  std::vector<std::pair<int64_t, int64_t>> out;
  tree.ScanAll([&](int64_t key, int64_t rowid) {
    out.emplace_back(key, rowid);
    return true;
  });
  return out;
}

std::vector<std::pair<int64_t, int64_t>> Dump(
    const std::multimap<int64_t, int64_t>& map) {
  std::vector<std::pair<int64_t, int64_t>> out(map.begin(), map.end());
  // The tree orders duplicates by rowid (composite key); multimap
  // preserves insertion order within a key, so sort each key run.
  std::sort(out.begin(), out.end());
  return out;
}

TEST(BTreeInsert, DuplicateCompositeIsANoOp) {
  // The bug this pins: a duplicate (key, rowid) used to be inserted as a
  // second equal entry, and a leaf split between the two copies produced a
  // separator violating the strict bound on the left child.
  BPlusTree tree(4);
  for (int64_t rowid = 0; rowid < 4; ++rowid) EXPECT_TRUE(tree.Insert(27, rowid));
  EXPECT_FALSE(tree.Insert(27, 2));  // present: no-op, size unchanged
  EXPECT_EQ(tree.size(), 4);
  // Force the split that used to corrupt the tree.
  EXPECT_TRUE(tree.Insert(27, 5));
  EXPECT_FALSE(tree.Insert(27, 5));
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), 5);
}

TEST(BTreeErase, DuplicateKeyRemovesOnlyTheNamedRowid) {
  BPlusTree tree(4);
  for (int64_t rowid = 0; rowid < 10; ++rowid) tree.Insert(7, rowid);
  ASSERT_TRUE(tree.CheckInvariants().ok());

  // Erase from the middle, the front, and the back of the duplicate run.
  EXPECT_TRUE(tree.Erase(7, 5));
  EXPECT_TRUE(tree.Erase(7, 0));
  EXPECT_TRUE(tree.Erase(7, 9));
  EXPECT_FALSE(tree.Erase(7, 5));  // already gone
  ASSERT_TRUE(tree.CheckInvariants().ok());

  std::vector<std::pair<int64_t, int64_t>> want = {
      {7, 1}, {7, 2}, {7, 3}, {7, 4}, {7, 6}, {7, 7}, {7, 8}};
  EXPECT_EQ(Dump(tree), want);
  EXPECT_EQ(tree.size(), 7);
}

TEST(BTreeErase, EraseOfAbsentPairLeavesTreeUntouched) {
  BPlusTree tree(4);
  for (int64_t k = 0; k < 20; ++k) tree.Insert(k, k * 100);
  EXPECT_FALSE(tree.Erase(21, 0));     // key absent
  EXPECT_FALSE(tree.Erase(3, 999));    // key present, rowid absent
  EXPECT_FALSE(tree.Erase(-1, -100));  // below the leftmost leaf
  EXPECT_EQ(tree.size(), 20);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeErase, EraseToEmptyThenReinsert) {
  BPlusTree tree(4);
  // Enough entries to force a multi-level tree at fan-out 4.
  for (int64_t k = 0; k < 100; ++k) tree.Insert(k, k);
  EXPECT_GT(tree.height(), 1);
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(tree.Erase(k, k)) << "erasing " << k;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after erasing " << k;
  }
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(Dump(tree).empty());

  // The emptied tree must accept a fresh load and stay consistent.
  for (int64_t k = 100; k > 0; --k) tree.Insert(k, k);
  EXPECT_EQ(tree.size(), 100);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<std::pair<int64_t, int64_t>> got = Dump(tree);
  ASSERT_EQ(got.size(), 100u);
  EXPECT_EQ(got.front(), (std::pair<int64_t, int64_t>{1, 1}));
  EXPECT_EQ(got.back(), (std::pair<int64_t, int64_t>{100, 100}));
}

TEST(BTreeErase, RandomizedDifferentialAgainstMultimap) {
  // Small fan-out and a narrow key range: splits, borrows, merges and
  // duplicate runs all get exercised.  Deterministic seeds keep failures
  // reproducible.
  for (uint32_t seed : {1u, 7u, 42u, 1993u}) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int64_t> key_dist(0, 40);
    std::uniform_int_distribution<int64_t> rowid_dist(0, 5);
    std::uniform_int_distribution<int> op_dist(0, 99);

    BPlusTree tree(4);
    std::multimap<int64_t, int64_t> reference;

    for (int step = 0; step < 4000; ++step) {
      int64_t key = key_dist(rng);
      int64_t rowid = rowid_dist(rng);
      // 55% inserts, 45% erases; erases target hits and misses alike.
      if (op_dist(rng) < 55) {
        bool fresh = true;
        auto [lo, hi] = reference.equal_range(key);
        for (auto it = lo; it != hi; ++it) {
          if (it->second == rowid) {
            fresh = false;
            break;
          }
        }
        // Re-inserting a present composite is a structural no-op.
        EXPECT_EQ(tree.Insert(key, rowid), fresh)
            << "seed " << seed << " step " << step << " (" << key << ","
            << rowid << ")";
        if (fresh) reference.emplace(key, rowid);
      } else {
        bool expect_hit = false;
        auto [lo, hi] = reference.equal_range(key);
        for (auto it = lo; it != hi; ++it) {
          if (it->second == rowid) {
            reference.erase(it);
            expect_hit = true;
            break;
          }
        }
        EXPECT_EQ(tree.Erase(key, rowid), expect_hit)
            << "seed " << seed << " step " << step << " (" << key << ","
            << rowid << ")";
      }
      if (step % 97 == 0) {
        ASSERT_TRUE(tree.CheckInvariants().ok())
            << "seed " << seed << " step " << step;
        ASSERT_EQ(Dump(tree), Dump(reference))
            << "seed " << seed << " step " << step;
      }
      ASSERT_EQ(tree.size(), static_cast<int64_t>(reference.size()));
    }
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "seed " << seed;
    EXPECT_EQ(Dump(tree), Dump(reference)) << "seed " << seed;

    // Drain completely through the same differential path.
    while (!reference.empty()) {
      auto [key, rowid] = *reference.begin();
      reference.erase(reference.begin());
      ASSERT_TRUE(tree.Erase(key, rowid));
    }
    EXPECT_EQ(tree.size(), 0);
    ASSERT_TRUE(tree.CheckInvariants().ok());
  }
}

TEST(BTreeErase, RangeScanStaysCorrectAcrossMerges) {
  BPlusTree tree(4);
  for (int64_t k = 0; k < 60; ++k) tree.Insert(k, k);
  // Punch out the middle so interior nodes merge.
  for (int64_t k = 20; k < 40; ++k) ASSERT_TRUE(tree.Erase(k, k));
  ASSERT_TRUE(tree.CheckInvariants().ok());

  std::vector<int64_t> keys;
  tree.ScanRange(10, 49, [&](int64_t key, int64_t) {
    keys.push_back(key);
    return true;
  });
  std::vector<int64_t> want;
  for (int64_t k = 10; k < 20; ++k) want.push_back(k);
  for (int64_t k = 40; k <= 49; ++k) want.push_back(k);
  EXPECT_EQ(keys, want);
}

}  // namespace
}  // namespace caldb
