// PERF-7 / §1 GNP example: valid-time maintenance — time points of regular
// series are regenerated from calendars, not stored.

#include "timeseries/time_series.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

class TimeSeriesTest : public ::testing::Test {
 protected:
  TimeSeriesTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {
    // Last day of every quarter — the GNP calendar.
    EXPECT_TRUE(catalog_
                    .DefineDerived("QUARTER_ENDS",
                                   "[n]/DAYS:during:caloperate(MONTHS, *, 3)")
                    .ok());
    // Last day of every month.
    EXPECT_TRUE(
        catalog_.DefineDerived("MONTH_ENDS", "[n]/DAYS:during:MONTHS").ok());
  }

  CalendarCatalog catalog_;
};

TEST_F(TimeSeriesTest, QuarterEndPointsAreRegenerated) {
  RegularTimeSeries gnp(&catalog_, "QUARTER_ENDS", /*anchor_day=*/1);
  for (double v : {6000.1, 6100.2, 6200.3, 6300.4}) gnp.Append(v);
  ASSERT_EQ(gnp.size(), 4u);
  // Quarter ends of 1993: Mar 31 (90), Jun 30 (181), Sep 30 (273),
  // Dec 31 (365).
  EXPECT_EQ(gnp.DayAt(0).value(), 90);
  EXPECT_EQ(gnp.DayAt(1).value(), 181);
  EXPECT_EQ(gnp.DayAt(2).value(), 273);
  EXPECT_EQ(gnp.DayAt(3).value(), 365);
}

TEST_F(TimeSeriesTest, MaterializePairsPointsWithValues) {
  RegularTimeSeries gnp(&catalog_, "QUARTER_ENDS", 1);
  gnp.Append(1.0);
  gnp.Append(2.0);
  auto pairs = gnp.Materialize();
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  ASSERT_EQ(pairs->size(), 2u);
  EXPECT_EQ((*pairs)[0], (std::pair<TimePoint, double>{90, 1.0}));
  EXPECT_EQ((*pairs)[1], (std::pair<TimePoint, double>{181, 2.0}));
}

TEST_F(TimeSeriesTest, SeriesExtendsBeyondOneWindow) {
  // 20 monthly observations force the series to grow its evaluation
  // window across the year boundary.
  RegularTimeSeries series(&catalog_, "MONTH_ENDS", 1);
  for (int i = 0; i < 20; ++i) series.Append(i);
  EXPECT_EQ(series.DayAt(0).value(), 31);
  EXPECT_EQ(series.DayAt(11).value(), 365);  // Dec 31 1993
  EXPECT_EQ(series.DayAt(12).value(), 396);  // Jan 31 1994
  EXPECT_EQ(series.DayAt(19).value(), 608);  // Aug 31 1994
}

TEST_F(TimeSeriesTest, AnchorSkipsEarlierIntervals) {
  // Anchor mid-year: the first observation maps to the first month end at
  // or after the anchor.
  RegularTimeSeries series(&catalog_, "MONTH_ENDS", /*anchor_day=*/100);
  series.Append(42.0);
  EXPECT_EQ(series.DayAt(0).value(), 120);  // Apr 30 1993
}

TEST_F(TimeSeriesTest, ValueOnAndSlice) {
  RegularTimeSeries gnp(&catalog_, "QUARTER_ENDS", 1);
  gnp.Append(10.0);
  gnp.Append(20.0);
  gnp.Append(30.0);
  auto v = gnp.ValueOn(181);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(**v, 20.0);
  auto missing = gnp.ValueOn(100);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());

  auto slice = gnp.Slice(Interval{100, 300});
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 2u);
  EXPECT_EQ((*slice)[0].first, 181);
  EXPECT_EQ((*slice)[1].first, 273);
}

TEST_F(TimeSeriesTest, ValueAtBoundsChecked) {
  RegularTimeSeries gnp(&catalog_, "QUARTER_ENDS", 1);
  gnp.Append(1.0);
  EXPECT_TRUE(gnp.ValueAt(0).ok());
  EXPECT_EQ(gnp.ValueAt(1).status().code(), StatusCode::kOutOfRange);
}

TEST(IrregularTimeSeriesTest, AppendAndLookup) {
  IrregularTimeSeries series;
  ASSERT_TRUE(series.Append(5, 1.0).ok());
  ASSERT_TRUE(series.Append(9, 2.0).ok());
  EXPECT_FALSE(series.Append(9, 3.0).ok());  // non-increasing
  EXPECT_FALSE(series.Append(0, 3.0).ok());  // invalid point
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.ValueOn(9).value().value(), 2.0);
  EXPECT_FALSE(series.ValueOn(7).value().has_value());
  EXPECT_EQ(series.AsCalendar().ToString(), "{(5,5),(9,9)}");
}

}  // namespace
}  // namespace caldb
