// The §6 future-work pattern predicates: {S_t < Next(S_t)} etc.

#include "timeseries/pattern.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(PatternTest, PaperRisingPricesPattern) {
  // "the time points at which the end-of-day closing prices for two
  // successive days showed an increase": {S_t < Next(S_t)}.
  std::vector<double> prices = {10, 12, 11, 11, 14, 13};
  auto matches = MatchPatternIndices(prices, "S < next(S)");
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(*matches, (std::vector<size_t>{0, 3}));
}

TEST(PatternTest, PrevAndArithmetic) {
  std::vector<double> v = {1, 2, 4, 4, 3};
  // Strictly rising by at least 1 versus the previous observation.
  auto rising = MatchPatternIndices(v, "S >= prev(S) + 1");
  ASSERT_TRUE(rising.ok());
  EXPECT_EQ(*rising, (std::vector<size_t>{1, 2}));
  // Local maximum.
  auto peak = MatchPatternIndices(v, "S > prev(S) and S > next(S)");
  ASSERT_TRUE(peak.ok());
  EXPECT_TRUE(peak->empty());  // plateau at 4,4 breaks strictness
  auto plateau_peak =
      MatchPatternIndices(v, "S > prev(S) and S >= next(S)");
  ASSERT_TRUE(plateau_peak.ok());
  EXPECT_EQ(*plateau_peak, (std::vector<size_t>{2}));
}

TEST(PatternTest, NestedShifts) {
  std::vector<double> v = {1, 2, 3, 2, 1};
  // Rising two steps ahead.
  auto r = MatchPatternIndices(v, "S < next(next(S))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<size_t>{0}));
}

TEST(PatternTest, BoundaryReferencesFail) {
  std::vector<double> v = {5, 5};
  // next(S) at the last observation is missing: no match there.
  auto r = MatchPatternIndices(v, "S = next(S)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<size_t>{0}));
  // An always-true comparison on S alone matches everywhere.
  auto all = MatchPatternIndices(v, "S = 5");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, (std::vector<size_t>{0, 1}));
}

TEST(PatternTest, OrAndNot) {
  std::vector<double> v = {1, 10, 2, 20};
  auto r = MatchPatternIndices(v, "S < 2 or S > 15");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<size_t>{0, 3}));
  auto n = MatchPatternIndices(v, "not (S < 5)");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, (std::vector<size_t>{1, 3}));
}

TEST(PatternTest, DivisionGuards) {
  std::vector<double> v = {4, 0, 2};
  // Division by a zero observation yields no match rather than an error.
  auto r = MatchPatternIndices(v, "8 / S > 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<size_t>{0, 2}));
}

TEST(PatternTest, ParseErrors) {
  std::vector<double> v = {1};
  EXPECT_FALSE(MatchPatternIndices(v, "").ok());
  EXPECT_FALSE(MatchPatternIndices(v, "S <").ok());
  EXPECT_FALSE(MatchPatternIndices(v, "bogus(S) < 1").ok());
  EXPECT_FALSE(MatchPatternIndices(v, "S + 1").ok());   // not a predicate
  EXPECT_FALSE(MatchPatternIndices(v, "S < 1 extra").ok());
  EXPECT_FALSE(MatchPatternIndices(v, "S @ 1").ok());
}

TEST(PatternTest, RegularSeriesYieldsDayPoints) {
  CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
  ASSERT_TRUE(
      catalog.DefineDerived("MONTH_ENDS", "[n]/DAYS:during:MONTHS").ok());
  RegularTimeSeries series(&catalog, "MONTH_ENDS", 1);
  for (double v : {10.0, 12.0, 11.0, 15.0}) series.Append(v);
  auto cal = MatchPattern(series, "S < next(S)");
  ASSERT_TRUE(cal.ok()) << cal.status();
  // Matches at observations 0 (Jan 31 = day 31) and 2 (Mar 31 = day 90).
  EXPECT_EQ(cal->ToString(), "{(31,31),(90,90)}");
}

TEST(PatternTest, IrregularSeries) {
  IrregularTimeSeries series;
  ASSERT_TRUE(series.Append(3, 1.0).ok());
  ASSERT_TRUE(series.Append(8, 5.0).ok());
  ASSERT_TRUE(series.Append(21, 2.0).ok());
  auto cal = MatchPattern(series, "S > prev(S)");
  ASSERT_TRUE(cal.ok());
  EXPECT_EQ(cal->ToString(), "{(8,8)}");
}

}  // namespace
}  // namespace caldb
