// Property fuzzing: randomly generated calendar expressions evaluate to
// the same result regardless of factorization and window-hint pushdown —
// the two optimizations must never change semantics.

#include <random>

#include <gtest/gtest.h>

#include "catalog/calendar_catalog.h"
#include "common/macros.h"
#include "lang/analyzer.h"
#include "lang/optimizer.h"
#include "lang/parser.h"
#include "lang/planner.h"

namespace caldb {
namespace {

// Builds a random expression from the grammar.  Depth-bounded; biased
// toward the shapes the paper uses (selection over foreach chains).
class ExpressionGenerator {
 public:
  explicit ExpressionGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate() { return AddExpr(3); }

 private:
  int Rand(int bound) { return static_cast<int>(rng_() % static_cast<uint64_t>(bound)); }

  std::string AddExpr(int depth) {
    std::string out = CalExpr(depth);
    while (depth > 0 && Rand(4) == 0) {
      out += Rand(2) == 0 ? " + " : " - ";
      out += CalExpr(depth - 1);
    }
    return out;
  }

  std::string CalExpr(int depth) {
    // Optional selection prefix.
    std::string prefix;
    if (Rand(3) == 0) {
      switch (Rand(5)) {
        case 0:
          prefix = "[" + std::to_string(Rand(4) + 1) + "]/";
          break;
        case 1:
          prefix = "[n]/";
          break;
        case 2:
          prefix = "[-" + std::to_string(Rand(3) + 1) + "]/";
          break;
        case 3:
          prefix = "[1.." + std::to_string(Rand(4) + 2) + "]/";
          break;
        default:
          prefix = "[1,3]/";
          break;
      }
    }
    if (depth <= 0) return prefix + Primary();
    if (Rand(3) == 0) return prefix + Primary();
    // A foreach chain.
    static constexpr const char* kOps[] = {"during", "overlaps", "intersects",
                                           "<", "<=", "meets"};
    const char* op = kOps[Rand(6)];
    const char* mark = Rand(4) == 0 ? "." : ":";
    // Relaxed intersects and relaxed chains are legal; use : for < to keep
    // scripts close to the paper's style.
    return prefix + Primary() + mark + op + mark + CalExpr(depth - 1);
  }

  std::string Primary() {
    switch (Rand(6)) {
      case 0:
        return "DAYS";
      case 1:
        return "WEEKS";
      case 2:
        return "MONTHS";
      case 3:
        return "1993/YEARS";
      case 4: {
        int lo = Rand(120) + 1;
        int hi = lo + Rand(40);
        return "days{(" + std::to_string(lo) + "," + std::to_string(hi) + ")}";
      }
      default: {
        int a = Rand(60) + 1;
        int b = a + Rand(10);
        int c = b + 2 + Rand(40);
        int d = c + Rand(10);
        return "days{(" + std::to_string(a) + "," + std::to_string(b) + "),(" +
               std::to_string(c) + "," + std::to_string(d) + ")}";
      }
    }
  }

  std::mt19937_64 rng_;
};

class RandomExpression : public ::testing::TestWithParam<int> {};

TEST_P(RandomExpression, OptimizationsPreserveSemantics) {
  CalendarCatalog catalog{TimeSystem{CivilDate{1993, 1, 1}}};
  ExpressionGenerator gen(static_cast<uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 1);
  Evaluator evaluator(&catalog.time_system(), &catalog);

  int evaluated = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::string text = gen.Generate();
    SCOPED_TRACE(text);

    auto parsed = ParseScript(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();

    auto run = [&](bool factorize, bool hints) -> Result<ScriptValue> {
      // Re-parse to get an independent tree (the analyzer mutates nodes).
      Script script = ParseScript(text).value();
      Analyzer analyzer(&catalog);
      CALDB_RETURN_IF_ERROR(analyzer.AnalyzeScript(&script));
      if (factorize) CALDB_RETURN_IF_ERROR(OptimizeScript(&script));
      CALDB_ASSIGN_OR_RETURN(Plan plan, CompileScript(script));
      EvalOptions opts;
      opts.window_days = Interval{1, 365};
      opts.use_window_hints = hints;
      Evaluator fresh(&catalog.time_system(), &catalog);
      return fresh.Run(plan, opts);
    };
    auto full = [](const Result<ScriptValue>& v) -> std::string {
      if (v->kind != ScriptValue::Kind::kCalendar) return "null";
      return v->calendar.ToString();
    };
    // Boundary-insensitive view: the flattened point set, restricted to
    // the interior of the window (the naive no-hints evaluation is
    // allowed to differ near the window edges, where it truncates coarse
    // granules that the look-ahead evaluation covers in full).
    auto interior = [](const Result<ScriptValue>& v) -> std::string {
      if (v->kind != ScriptValue::Kind::kCalendar) return "null";
      Calendar flat = v->calendar.Flattened();
      auto clipped =
          ForEachInterval(flat, ListOp::kIntersects, Interval{60, 300},
                          /*strict=*/true);
      if (!clipped.ok()) return "error";
      // Set semantics: flattening an order-k result repeats shared
      // intervals once per group, and group *counts* may differ at the
      // window boundary; the covered point set must not.
      auto deduped = Union(*clipped, Calendar::Order1(Granularity::kDays, {}));
      if (!deduped.ok()) {
        deduped = Union(*clipped, Calendar::Order1(clipped->granularity(), {}));
      }
      return deduped.ok() ? deduped->ToString() : "error";
    };

    Result<ScriptValue> base = run(false, true);
    if (!base.ok()) {
      // Some random expressions are legitimately ill-typed (e.g. an
      // order-2 value feeding a foreach LHS).  They must fail identically
      // in every configuration — never crash, never succeed one way only.
      for (bool factorize : {false, true}) {
        for (bool hints : {false, true}) {
          EXPECT_FALSE(run(factorize, hints).ok());
        }
      }
      continue;
    }
    ++evaluated;
    // Factorization must preserve results exactly.
    Result<ScriptValue> factorized = run(true, true);
    ASSERT_TRUE(factorized.ok()) << factorized.status();
    EXPECT_EQ(full(factorized), full(base));
    // The naive evaluation must agree away from the window boundary.
    for (bool factorize : {false, true}) {
      Result<ScriptValue> naive = run(factorize, false);
      ASSERT_TRUE(naive.ok()) << naive.status();
      EXPECT_EQ(interior(naive), interior(base)) << "factorize=" << factorize;
    }
  }
  // The generator should produce mostly valid expressions.
  EXPECT_GT(evaluated, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpression, ::testing::Range(1, 31));

}  // namespace
}  // namespace caldb
