// FIG-2 / FIG-3: the §3.4 parsing-algorithm examples — derivation
// inlining, factorization, and equivalence of initial vs factorized plans.

#include "lang/optimizer.h"

#include <gtest/gtest.h>

#include "catalog/calendar_catalog.h"
#include "lang/analyzer.h"
#include "lang/evaluator.h"
#include "lang/parser.h"
#include "lang/planner.h"

namespace caldb {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {
    // The derived calendars of §3.4's examples.
    EXPECT_TRUE(catalog_.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS").ok());
    EXPECT_TRUE(
        catalog_.DefineDerived("Januarys", "[1]/MONTHS:during:YEARS").ok());
    EXPECT_TRUE(
        catalog_.DefineDerived("Third_Weeks", "[3]/WEEKS:overlaps:MONTHS").ok());
  }

  // Parses + analyzes (inlining derived calendars); returns the expression.
  ExprPtr Analyze(const std::string& text) {
    auto script = ParseScript(text);
    EXPECT_TRUE(script.ok()) << script.status();
    Analyzer analyzer(&catalog_);
    Status st = analyzer.AnalyzeScript(&script.value());
    EXPECT_TRUE(st.ok()) << st;
    analyzed_ = std::move(script).value();
    return analyzed_.stmts[0].expr;
  }

  Calendar EvalExpr(const std::string& text, bool optimize) {
    auto script = ParseScript(text);
    EXPECT_TRUE(script.ok()) << script.status();
    Analyzer analyzer(&catalog_);
    Status st = analyzer.AnalyzeScript(&script.value());
    EXPECT_TRUE(st.ok()) << st;
    if (optimize) {
      EXPECT_TRUE(OptimizeScript(&script.value()).ok());
    }
    auto plan = CompileScript(*script);
    EXPECT_TRUE(plan.ok()) << plan.status();
    Evaluator evaluator(&catalog_.time_system(), &catalog_);
    EvalOptions opts;
    auto window = catalog_.YearWindow(1990, 1995);
    EXPECT_TRUE(window.ok());
    opts.window_days = *window;
    auto value = evaluator.Run(*plan, opts);
    EXPECT_TRUE(value.ok()) << value.status();
    EXPECT_EQ(value->kind, ScriptValue::Kind::kCalendar);
    return value->calendar;
  }

  CalendarCatalog catalog_;
  Script analyzed_;
};

TEST_F(OptimizerTest, Example1InliningMatchesPaper) {
  // "Mondays during January 1993": after replacing derived calendars by
  // their derivation scripts the paper shows
  //   {([1]/DAYS:during:WEEKS):during:([1]/MONTHS:during:YEARS):during:1993/YEARS}
  ExprPtr e = Analyze("Mondays:during:Januarys:during:1993/Years");
  EXPECT_EQ(ExprToString(*e),
            "([1]/DAYS:during:WEEKS):during:([1]/MONTHS:during:YEARS)"
            ":during:1993/YEARS");
}

TEST_F(OptimizerTest, Example1FactorizationMatchesPaper) {
  // The paper's factorized form:
  //   {([1]/DAYS:during:WEEKS):during:[1]/MONTHS:during:1993/YEARS}
  ExprPtr e = Analyze("Mondays:during:Januarys:during:1993/Years");
  int before = CountExprNodes(*e);
  OptimizeStats stats;
  ASSERT_TRUE(OptimizeExpr(&e, &stats).ok());
  EXPECT_EQ(ExprToString(*e),
            "([1]/DAYS:during:WEEKS):during:[1]/MONTHS:during:1993/YEARS");
  EXPECT_EQ(stats.factorizations, 1);
  EXPECT_LT(CountExprNodes(*e), before);
}

TEST_F(OptimizerTest, Example2FactorizationMatchesPaper) {
  // "Third week in January 1993" factorizes twice, to
  //   {[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS}
  ExprPtr e = Analyze("Third_Weeks:during:Januarys:during:1993/YEARS");
  EXPECT_EQ(ExprToString(*e),
            "([3]/WEEKS:overlaps:MONTHS):during:([1]/MONTHS:during:YEARS)"
            ":during:1993/YEARS");
  OptimizeStats stats;
  ASSERT_TRUE(OptimizeExpr(&e, &stats).ok());
  EXPECT_EQ(ExprToString(*e),
            "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS");
  EXPECT_EQ(stats.factorizations, 2);
}

TEST_F(OptimizerTest, BeforeEqSpecialCase) {
  // The paper's exception: Op1 = <= and Op2 = <= reduces to {X:Op2:Z}.
  ExprPtr e = Analyze("(MONTHS:<=:YEARS):<=:1993/YEARS");
  OptimizeStats stats;
  ASSERT_TRUE(OptimizeExpr(&e, &stats).ok());
  EXPECT_EQ(ExprToString(*e), "MONTHS:<=:1993/YEARS");
  EXPECT_EQ(stats.factorizations, 1);
}

TEST_F(OptimizerTest, GranularityMismatchBlocksFactorization) {
  // The outer expression of Example 1 cannot factorize: WEEKS vs MONTHS.
  ExprPtr e = Analyze("Mondays:during:Januarys:during:1993/Years");
  ASSERT_TRUE(OptimizeExpr(&e).ok());
  // Still two foreach levels on the left chain.
  EXPECT_EQ(ExprToString(*e),
            "([1]/DAYS:during:WEEKS):during:[1]/MONTHS:during:1993/YEARS");
  OptimizeStats again;
  ASSERT_TRUE(OptimizeExpr(&e, &again).ok());
  EXPECT_EQ(again.factorizations, 0);  // fixpoint reached
}

TEST_F(OptimizerTest, NonDuringOuterOpIsLeftAlone) {
  ExprPtr e = Analyze("(WEEKS:during:MONTHS):overlaps:1993/YEARS");
  OptimizeStats stats;
  ASSERT_TRUE(OptimizeExpr(&e, &stats).ok());
  EXPECT_EQ(stats.factorizations, 0);
}

TEST_F(OptimizerTest, UnrelatedCalendarsBlockFactorization) {
  // Z's elements must originate from Y.
  ExprPtr e = Analyze("(DAYS:during:MONTHS):during:[1]/WEEKS:during:1993/YEARS");
  OptimizeStats stats;
  ASSERT_TRUE(OptimizeExpr(&e, &stats).ok());
  EXPECT_EQ(stats.factorizations, 0);
}

TEST_F(OptimizerTest, Example1EvaluatesToMondaysOfJanuary1993) {
  // Mondays of January 1993: Jan 4, 11, 18, 25 (days 4, 11, 18, 25).
  Calendar factorized = EvalExpr("Mondays:during:Januarys:during:1993/Years",
                                 /*optimize=*/true);
  EXPECT_EQ(factorized.ToString(), "{(4,4),(11,11),(18,18),(25,25)}");
}

TEST_F(OptimizerTest, FactorizationPreservesSemantics) {
  // Note: the paper's <=/<= rewrite is applied as specified but is not
  // semantics-preserving under the collection-interval definition of <=,
  // so only `during`-based factorizations are checked for equivalence.
  const char* exprs[] = {
      "Mondays:during:Januarys:during:1993/Years",
      "Third_Weeks:during:Januarys:during:1993/YEARS",
      "([2]/DAYS:during:WEEKS):during:([1]/MONTHS:during:YEARS):during:1994/YEARS",
  };
  for (const char* text : exprs) {
    Calendar initial = EvalExpr(text, /*optimize=*/false);
    Calendar factorized = EvalExpr(text, /*optimize=*/true);
    EXPECT_EQ(initial.ToString(), factorized.ToString()) << text;
  }
}

TEST_F(OptimizerTest, FactorizedPlanGeneratesFewerIntervals) {
  // The point of Figures 2/3: after factorization (and with window hints
  // off, i.e. the paper's static evaluation), calendars need only be
  // generated "for the time interval 1993".
  auto run = [&](bool optimize) {
    auto script = ParseScript("Mondays:during:Januarys:during:1993/Years");
    EXPECT_TRUE(script.ok());
    Analyzer analyzer(&catalog_);
    EXPECT_TRUE(analyzer.AnalyzeScript(&script.value()).ok());
    if (optimize) {
      EXPECT_TRUE(OptimizeScript(&script.value()).ok());
    }
    auto plan = CompileScript(*script);
    EXPECT_TRUE(plan.ok());
    Evaluator evaluator(&catalog_.time_system(), &catalog_);
    EvalOptions opts;
    opts.window_days = *catalog_.YearWindow(1980, 2009);  // 30-year lifespan
    opts.use_window_hints = false;
    EvalStats stats;
    auto value = evaluator.Run(*plan, opts, &stats);
    EXPECT_TRUE(value.ok()) << value.status();
    return stats;
  };
  EvalStats initial = run(false);
  EvalStats factorized = run(true);
  // The factorized plan drops the YEARS generation entirely; fewer steps,
  // fewer generated intervals.
  EXPECT_LT(factorized.intervals_generated, initial.intervals_generated);
  EXPECT_LT(factorized.steps_executed, initial.steps_executed);
}

}  // namespace
}  // namespace caldb
