// EX-F / EX-G / EX-H: the three §3.3 worked scripts — EMP-DAYS, the
// option-expiration if-script, and the last-trading-day while-script.

#include <gtest/gtest.h>

#include "catalog/calendar_catalog.h"

namespace caldb {
namespace {

class ScriptExamples : public ::testing::Test {
 protected:
  ScriptExamples() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {}

  EvalOptions Opts(TimePoint window_lo, TimePoint window_hi,
                   TimePoint today = 1) {
    EvalOptions opts;
    opts.window_days = Interval{window_lo, window_hi};
    opts.today_day = today;
    return opts;
  }

  CalendarCatalog catalog_;
};

TEST_F(ScriptExamples, EmpDaysMatchesPaper) {
  // "The last day of every month in the year. If this is a holiday, then
  // the preceding business day."  With the paper's HOLIDAYS (Jan 31 and
  // Mar 30... rendered as days 31 and 90) and its business-day list, the
  // result is {(30,30),(59,59),(88,88),...}.
  ASSERT_TRUE(catalog_
                  .DefineValues("HOLIDAYS", Calendar::Order1(Granularity::kDays,
                                                             {{31, 31}, {90, 90}}))
                  .ok());
  // The paper's AM_BUS_DAYS: every day except the holidays and day 89.
  std::vector<Interval> bus;
  for (int64_t d = 1; d <= 120; ++d) {
    if (d == 31 || d == 89 || d == 90) continue;
    bus.push_back({d, d});
  }
  ASSERT_TRUE(catalog_
                  .DefineValues("AM_BUS_DAYS",
                                Calendar::Order1(Granularity::kDays, bus))
                  .ok());

  const char* script = R"(
    {LDOM = [n]/DAYS:during:MONTHS;
     LDOM_HOL = LDOM:intersects:HOLIDAYS;
     LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
     return (LDOM - LDOM_HOL + LAST_BUS_DAY);})";

  auto value = catalog_.EvaluateScript(script, Opts(1, 90));
  ASSERT_TRUE(value.ok()) << value.status();
  ASSERT_EQ(value->kind, ScriptValue::Kind::kCalendar);
  EXPECT_EQ(value->calendar.ToString(), "{(30,30),(59,59),(88,88)}");
}

TEST_F(ScriptExamples, EmpDaysAsDerivedCalendar) {
  // The same script stored as the derived calendar EMP-DAYS and evaluated
  // through the catalog.
  ASSERT_TRUE(catalog_
                  .DefineValues("HOLIDAYS", Calendar::Order1(Granularity::kDays,
                                                             {{31, 31}, {90, 90}}))
                  .ok());
  std::vector<Interval> bus;
  for (int64_t d = 1; d <= 120; ++d) {
    if (d == 31 || d == 89 || d == 90) continue;
    bus.push_back({d, d});
  }
  ASSERT_TRUE(catalog_
                  .DefineValues("AM_BUS_DAYS",
                                Calendar::Order1(Granularity::kDays, bus))
                  .ok());
  ASSERT_TRUE(catalog_
                  .DefineDerived("EMP-DAYS", R"(
      {LDOM = [n]/DAYS:during:MONTHS;
       LDOM_HOL = LDOM:intersects:HOLIDAYS;
       LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
       return (LDOM - LDOM_HOL + LAST_BUS_DAY);})")
                  .ok());
  auto cal = catalog_.EvaluateCalendar("EMP-DAYS", Opts(1, 90));
  ASSERT_TRUE(cal.ok()) << cal.status();
  EXPECT_EQ(cal->ToString(), "{(30,30),(59,59),(88,88)}");

  // And referenced from another script (exercises the INVOKE path).
  auto via_expr =
      catalog_.EvaluateScript("EMP-DAYS:intersects:days{(1,60)}", Opts(1, 90));
  ASSERT_TRUE(via_expr.ok()) << via_expr.status();
  EXPECT_EQ(via_expr->calendar.ToString(), "{(30,30),(59,59)}");
}

class OptionExpiration : public ScriptExamples {
 protected:
  void SetUp() override {
    // November 1993 = days 305..334; Fridays: Nov 5/12/19/26 = 309, 316,
    // 323, 330; third Friday = day 323 (Nov 19).
    ASSERT_TRUE(catalog_
                    .DefineValues("Expiration-Month",
                                  Calendar::Order1(Granularity::kDays,
                                                   {{305, 334}}))
                    .ok());
  }

  void DefineHolidays(std::vector<Interval> holidays) {
    ASSERT_TRUE(catalog_
                    .DefineValues("holidays",
                                  Calendar::Order1(Granularity::kDays,
                                                   std::move(holidays)))
                    .ok());
    // Business days: all weekdays (derived via the algebra!) minus the
    // holidays calendar.  Defined after `holidays` — the analyzer resolves
    // names at definition time.
    ASSERT_TRUE(catalog_
                    .DefineDerived("AM_BUS_DAYS", R"(
        {WD = [1,2,3,4,5]/DAYS:during:WEEKS;
         return (WD - holidays);})")
                    .ok());
  }

  static constexpr const char* kScript = R"(
    {Fridays = [5]/DAYS:during:WEEKS;
     temp1 = [3]/Fridays:overlaps:Expiration-Month;
     /* 3rd Friday of the expiration month */
     if (temp1:intersects:holidays) /* if holiday */
        return([n]/AM_BUS_DAYS:<:temp1);
     else
        return(temp1);})";
};

TEST_F(OptionExpiration, ThirdFridayWhenNotAHoliday) {
  DefineHolidays({{1, 1}});  // New Year only
  auto value = catalog_.EvaluateScript(kScript, Opts(1, 365));
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->calendar.ToString(), "{(323,323)}");  // Nov 19 1993
}

TEST_F(OptionExpiration, PrecedingBusinessDayWhenHoliday) {
  // Make Nov 19 1993 a holiday: expiration falls back to Thu Nov 18 (322).
  DefineHolidays({{1, 1}, {323, 323}});
  auto value = catalog_.EvaluateScript(kScript, Opts(1, 365));
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->calendar.ToString(), "{(322,322)}");
}

TEST_F(OptionExpiration, FallbackSkipsConsecutiveHolidays) {
  // Nov 18 and 19 both holidays: fall back to Wed Nov 17 (321).
  DefineHolidays({{322, 322}, {323, 323}});
  auto value = catalog_.EvaluateScript(kScript, Opts(1, 365));
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->calendar.ToString(), "{(321,321)}");
}

class LastTradingDay : public ScriptExamples {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .DefineValues("Expiration-Month",
                                  Calendar::Order1(Granularity::kDays,
                                                   {{305, 334}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .DefineValues("holidays",
                                  Calendar::Order1(Granularity::kDays, {{1, 1}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .DefineDerived("AM_BUS_DAYS", R"(
        {WD = [1,2,3,4,5]/DAYS:during:WEEKS;
         return (WD - holidays);})")
                    .ok());
  }

  static constexpr const char* kScript = R"(
    { temp1 = [n]/AM_BUS_DAYS:during:Expiration-Month;
      /* last business day of the expiration month */
      temp2 = [-7]/AM_BUS_DAYS:<:temp1;
      /* the seventh business day preceding temp1 */
      while (today:<:temp2) ; /* do nothing */
      return ("LAST TRADING DAY");
    })";
};

TEST_F(LastTradingDay, BlocksBeforeTheTriggerDay) {
  // Last business day of Nov 1993 is Tue Nov 30 (334); counting 7 business
  // days back through the paper's <= -inclusive `<` lands on Mon Nov 22
  // (326).  Before that day the script busy-waits.
  auto value = catalog_.EvaluateScript(kScript, Opts(1, 365, /*today=*/320));
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->kind, ScriptValue::Kind::kBlocked);
}

TEST_F(LastTradingDay, AlertsOnceTheConditionTurnsFalse) {
  auto value = catalog_.EvaluateScript(kScript, Opts(1, 365, /*today=*/327));
  ASSERT_TRUE(value.ok()) << value.status();
  ASSERT_EQ(value->kind, ScriptValue::Kind::kString);
  EXPECT_EQ(value->text, "LAST TRADING DAY");
}

TEST_F(ScriptExamples, WhileWithBodyIterates) {
  // A while loop that narrows a variable until the condition fails.
  const char* script = R"(
    { x = days{(1,1),(2,2),(3,3),(4,4)};
      while (x:intersects:days{(3,100)})
        x = x - [n]/x;
      return (x);
    })";
  auto value = catalog_.EvaluateScript(script, Opts(1, 365));
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->calendar.ToString(), "{(1,1),(2,2)}");
}

TEST_F(ScriptExamples, InfiniteLoopIsCapped) {
  const char* script = R"(
    { x = days{(1,1)};
      while (x:intersects:days{(1,1)})
        x = x + days{(1,1)};
      return (x);
    })";
  EvalOptions opts = Opts(1, 365);
  opts.max_loop_iterations = 50;
  auto value = catalog_.EvaluateScript(script, opts);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kEvalError);
}

TEST_F(ScriptExamples, TodayAtCoarserUnit) {
  // A script whose smallest unit is WEEKS: `today` maps to its week.
  const char* script = "WEEKS:intersects:today";
  auto value = catalog_.EvaluateScript(script, Opts(1, 365, /*today=*/10));
  ASSERT_TRUE(value.ok()) << value.status();
  // Day 10 (Jan 10 1993, a Sunday) is in week 2 of the 1993 time system.
  ASSERT_EQ(value->kind, ScriptValue::Kind::kCalendar);
  EXPECT_EQ(value->calendar.granularity(), Granularity::kWeeks);
  EXPECT_EQ(value->calendar.ToString(), "{(2,2)}");
}

TEST_F(ScriptExamples, UndefinedCalendarIsAnError) {
  auto value = catalog_.EvaluateScript("NoSuchCal:during:MONTHS", Opts(1, 90));
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kNotFound);
}

TEST_F(ScriptExamples, GenerateCallMatchesPaper) {
  // §3.2: generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) — epoch 1987.
  CalendarCatalog catalog87{TimeSystem{CivilDate{1987, 1, 1}}};
  auto value = catalog87.EvaluateScript(
      "generate(YEARS, DAYS, \"1987-01-01\", \"1992-01-03\")",
      EvalOptions{.window_days = Interval{1, 2000}});
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->calendar.ToString(),
            "{(1,365),(366,731),(732,1096),(1097,1461),(1462,1826),(1827,1829)}");
}

TEST_F(ScriptExamples, CaloperateCallDerivesQuarters) {
  // At the script's smallest unit (MONTHS), quarters are month triples.
  auto value = catalog_.EvaluateScript(
      "caloperate(MONTHS:during:1993/YEARS, *, 3)", Opts(1, 365));
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->calendar.granularity(), Granularity::kMonths);
  EXPECT_EQ(value->calendar.ToString(), "{(1,3),(4,6),(7,9),(10,12)}");
}

TEST_F(ScriptExamples, CaloperateCallDerivesWeeksFromDays) {
  // The paper's caloperate(..., *; 7) example: grouping the days of the
  // year by 7 gives {(1,7),(8,14),(15,21),...}.
  auto value = catalog_.EvaluateScript(
      "caloperate(DAYS:during:1993/YEARS, *, 7)", Opts(1, 365));
  ASSERT_TRUE(value.ok()) << value.status();
  const Calendar& c = value->calendar;
  ASSERT_EQ(c.size(), 53u);
  EXPECT_EQ(c.intervals()[0], (Interval{1, 7}));
  EXPECT_EQ(c.intervals()[1], (Interval{8, 14}));
  EXPECT_EQ(c.intervals()[2], (Interval{15, 21}));
  EXPECT_EQ(c.intervals()[52], (Interval{365, 365}));
}

}  // namespace
}  // namespace caldb
