#include "lang/parser.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(ParserTest, SimpleForEach) {
  auto r = ParseExpression("WEEKS:during:Jan-1993");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& e = **r;
  ASSERT_EQ(e.kind, Expr::Kind::kForEach);
  EXPECT_EQ(e.op, ListOp::kDuring);
  EXPECT_TRUE(e.strict);
  EXPECT_EQ(e.lhs->name, "WEEKS");
  EXPECT_EQ(e.rhs->name, "Jan-1993");
}

TEST(ParserTest, RelaxedForEach) {
  auto r = ParseExpression("WEEKS.overlaps.Jan-1993");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE((*r)->strict);
  EXPECT_EQ((*r)->op, ListOp::kOverlaps);
}

TEST(ParserTest, SelectionBindsWholeChain) {
  // [3]/WEEKS:overlaps:Jan-1993 selects from the foreach result, not from
  // WEEKS (the paper's own reading in §3.1).
  auto r = ParseExpression("[3]/WEEKS:overlaps:Jan-1993");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& e = **r;
  ASSERT_EQ(e.kind, Expr::Kind::kSelect);
  ASSERT_EQ(e.selection.size(), 1u);
  EXPECT_EQ(e.selection[0], SelectionItem::Index(3));
  EXPECT_EQ(e.child->kind, Expr::Kind::kForEach);
}

TEST(ParserTest, ChainsAreRightAssociative) {
  // a:during:b:during:c == a:during:(b:during:c); the paper parses right
  // to left (§3.4).
  auto r = ParseExpression("Mondays:during:Januarys:during:1993/Years");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& e = **r;
  ASSERT_EQ(e.kind, Expr::Kind::kForEach);
  EXPECT_EQ(e.lhs->name, "Mondays");
  ASSERT_EQ(e.rhs->kind, Expr::Kind::kForEach);
  EXPECT_EQ(e.rhs->lhs->name, "Januarys");
  EXPECT_EQ(e.rhs->rhs->kind, Expr::Kind::kYearSelect);
  EXPECT_EQ(e.rhs->rhs->year, 1993);
}

TEST(ParserTest, ParenthesesOverrideAssociativity) {
  auto r = ParseExpression("(a:during:b):during:c");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& e = **r;
  ASSERT_EQ(e.kind, Expr::Kind::kForEach);
  EXPECT_EQ(e.lhs->kind, Expr::Kind::kForEach);
  EXPECT_EQ(e.rhs->name, "c");
}

TEST(ParserTest, SelectionMidChainStartsNestedChain) {
  // The factorized form of the paper's Example 2:
  // [3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS.
  auto r = ParseExpression("[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& top = **r;
  ASSERT_EQ(top.kind, Expr::Kind::kSelect);
  const Expr& fe = *top.child;
  ASSERT_EQ(fe.kind, Expr::Kind::kForEach);
  EXPECT_EQ(fe.op, ListOp::kOverlaps);
  ASSERT_EQ(fe.rhs->kind, Expr::Kind::kSelect);
  ASSERT_EQ(fe.rhs->child->kind, Expr::Kind::kForEach);
  EXPECT_EQ(fe.rhs->child->op, ListOp::kDuring);
}

TEST(ParserTest, ComparisonListops) {
  auto lt = ParseExpression("AM_BUS_DAYS:<:LDOM_HOL");
  ASSERT_TRUE(lt.ok()) << lt.status();
  EXPECT_EQ((*lt)->op, ListOp::kBefore);
  auto le = ParseExpression("a:<=:b");
  ASSERT_TRUE(le.ok());
  EXPECT_EQ((*le)->op, ListOp::kBeforeEq);
}

TEST(ParserTest, SetOpsAreLeftAssociativeAndLoose) {
  auto r = ParseExpression("LDOM - LDOM_HOL + LAST_BUS_DAY");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& e = **r;
  ASSERT_EQ(e.kind, Expr::Kind::kSetOp);
  EXPECT_EQ(e.set_op, '+');
  ASSERT_EQ(e.lhs->kind, Expr::Kind::kSetOp);
  EXPECT_EQ(e.lhs->set_op, '-');
}

TEST(ParserTest, SetOpsBindLooserThanForEach) {
  auto r = ParseExpression("a - b:during:c");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& e = **r;
  ASSERT_EQ(e.kind, Expr::Kind::kSetOp);
  EXPECT_EQ(e.rhs->kind, Expr::Kind::kForEach);
}

TEST(ParserTest, SelectionItems) {
  auto r = ParseExpression("[1,-2,n,2..4,3..n]/DAYS");
  ASSERT_TRUE(r.ok()) << r.status();
  const auto& sel = (*r)->selection;
  ASSERT_EQ(sel.size(), 5u);
  EXPECT_EQ(sel[0], SelectionItem::Index(1));
  EXPECT_EQ(sel[1], SelectionItem::Index(-2));
  EXPECT_EQ(sel[2], SelectionItem::Last());
  EXPECT_EQ(sel[3], SelectionItem::Range(2, 4));
  EXPECT_EQ(sel[4], SelectionItem::Range(3, SelectionItem::kLastMarker));
}

TEST(ParserTest, SelectionErrors) {
  // Index 0 and ranges starting below 1 have no meaning in the 1-based
  // scheme — rejected at parse time, including the open form `0..n`.
  EXPECT_FALSE(ParseExpression("[0]/DAYS").ok());
  EXPECT_FALSE(ParseExpression("[0..3]/DAYS").ok());
  EXPECT_FALSE(ParseExpression("[0..n]/DAYS").ok());
  EXPECT_FALSE(ParseExpression("[-2..3]/DAYS").ok());
  EXPECT_FALSE(ParseExpression("[3..2]/DAYS").ok());
}

TEST(ParserTest, IntervalLiteral) {
  auto r = ParseExpression("days{(31,31),(90,90)}");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->kind, Expr::Kind::kLiteral);
  EXPECT_EQ((*r)->literal.ToString(), "{(31,31),(90,90)}");
  EXPECT_EQ((*r)->literal.granularity(), Granularity::kDays);
  auto neg = ParseExpression("days{(-4,3)}");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ((*neg)->literal.ToString(), "{(-4,3)}");
}

TEST(ParserTest, LiteralErrors) {
  EXPECT_FALSE(ParseExpression("days{(0,5)}").ok());
  EXPECT_FALSE(ParseExpression("days{(5,1)}").ok());
  EXPECT_FALSE(ParseExpression("bogus{(1,5)}").ok());
}

TEST(ParserTest, CaloperateCall) {
  auto r = ParseExpression("caloperate(DAYS, *, 7)");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& e = **r;
  ASSERT_EQ(e.kind, Expr::Kind::kCall);
  EXPECT_EQ(e.name, "caloperate");
  ASSERT_EQ(e.args.size(), 3u);
  EXPECT_EQ(e.args[1]->kind, Expr::Kind::kStar);
  EXPECT_EQ(e.args[2]->int_value, 7);
}

TEST(ParserTest, GenerateCall) {
  auto r = ParseExpression(
      "generate(YEARS, DAYS, \"1987-01-01\", \"1992-01-03\")");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ((*r)->args.size(), 4u);
  EXPECT_EQ((*r)->args[2]->name, "1987-01-01");
}

TEST(ParserTest, EmpDaysScriptParses) {
  // The §3.3 EMP-DAYS script, verbatim structure.
  const char* script = R"(
    {LDOM = [n]/DAYS:during:MONTHS;
     LDOM_HOL = LDOM:intersects:HOLIDAYS;
     LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
     return (LDOM - LDOM_HOL + LAST_BUS_DAY);})";
  auto r = ParseScript(script);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->stmts.size(), 1u);  // one outer block
  const Stmt& block = r->stmts[0];
  ASSERT_EQ(block.kind, Stmt::Kind::kBlock);
  ASSERT_EQ(block.body.size(), 4u);
  EXPECT_EQ(block.body[0].kind, Stmt::Kind::kAssign);
  EXPECT_EQ(block.body[0].var, "LDOM");
  EXPECT_EQ(block.body[3].kind, Stmt::Kind::kReturn);
}

TEST(ParserTest, IfElseScriptParses) {
  const char* script = R"(
    {Fridays = [5]/DAYS:during:WEEKS;
     temp1 = [3]/Fridays:overlaps:Expiration-Month;
     if (temp1:intersects:holidays)
        return([n]/AM_BUS_DAYS:<:temp1);
     else
        return(temp1);})";
  auto r = ParseScript(script);
  ASSERT_TRUE(r.ok()) << r.status();
  const Stmt& block = r->stmts[0];
  ASSERT_EQ(block.body.size(), 3u);
  const Stmt& if_stmt = block.body[2];
  ASSERT_EQ(if_stmt.kind, Stmt::Kind::kIf);
  ASSERT_EQ(if_stmt.body.size(), 1u);
  ASSERT_EQ(if_stmt.else_body.size(), 1u);
  EXPECT_EQ(if_stmt.body[0].kind, Stmt::Kind::kReturn);
}

TEST(ParserTest, WhileScriptParses) {
  const char* script = R"(
    { temp1 = [n]/AM_BUS_DAYS:during:Expiration-Month;
      temp2 = [-7]/AM_BUS_DAYS:<:temp1;
      while (today:<:temp2) ; /* do nothing */
      return ("LAST TRADING DAY");
    })";
  auto r = ParseScript(script);
  ASSERT_TRUE(r.ok()) << r.status();
  const Stmt& block = r->stmts[0];
  ASSERT_EQ(block.body.size(), 4u);
  const Stmt& while_stmt = block.body[2];
  ASSERT_EQ(while_stmt.kind, Stmt::Kind::kWhile);
  EXPECT_TRUE(while_stmt.body.empty());
  const Stmt& ret = block.body[3];
  ASSERT_EQ(ret.kind, Stmt::Kind::kReturn);
  EXPECT_TRUE(ret.returns_string);
  EXPECT_EQ(ret.str, "LAST TRADING DAY");
}

TEST(ParserTest, BareExpressionBecomesReturn) {
  auto r = ParseScript("[2]/DAYS:during:WEEKS");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->stmts.size(), 1u);
  EXPECT_EQ(r->stmts[0].kind, Stmt::Kind::kReturn);
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* exprs[] = {
      "[3]/WEEKS:overlaps:Jan-1993",
      "WEEKS.overlaps.Jan-1993",
      "LDOM - LDOM_HOL + LAST_BUS_DAY",
      "[n]/AM_BUS_DAYS:<:LDOM_HOL",
      "1993/YEARS",
      "days{(31,31),(90,90)}",
  };
  for (const char* src : exprs) {
    auto first = ParseExpression(src);
    ASSERT_TRUE(first.ok()) << src << ": " << first.status();
    std::string printed = ExprToString(**first);
    auto second = ParseExpression(printed);
    ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
    EXPECT_EQ(printed, ExprToString(**second)) << src;
  }
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseExpression("").ok());
  EXPECT_FALSE(ParseExpression("a:bogusop:b").ok());
  EXPECT_FALSE(ParseExpression("a:during").ok());
  EXPECT_FALSE(ParseExpression("[0]/DAYS").ok());
  EXPECT_FALSE(ParseExpression("[3..1]/DAYS").ok());
  EXPECT_FALSE(ParseExpression("(a:during:b").ok());
  EXPECT_FALSE(ParseScript("x = ;").ok());
  EXPECT_FALSE(ParseScript("if (a) return b").ok());  // missing ';'
  EXPECT_FALSE(ParseScript("{ x = a; ").ok());        // unterminated block
}

}  // namespace
}  // namespace caldb
