#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, SimpleExpression) {
  auto r = Lex("[2]/DAYS:during:WEEKS");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(Kinds(*r),
            (std::vector<TokenKind>{
                TokenKind::kLBracket, TokenKind::kInt, TokenKind::kRBracket,
                TokenKind::kSlash, TokenKind::kIdent, TokenKind::kColon,
                TokenKind::kIdent, TokenKind::kColon, TokenKind::kIdent,
                TokenKind::kEnd}));
  EXPECT_EQ((*r)[1].int_value, 2);
  EXPECT_EQ((*r)[4].text, "DAYS");
  EXPECT_EQ((*r)[6].text, "during");
}

TEST(LexerTest, HyphenatedIdentifiers) {
  auto r = Lex("Jan-1993 EMP-DAYS Expiration-Month");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);
  EXPECT_EQ((*r)[0].text, "Jan-1993");
  EXPECT_EQ((*r)[1].text, "EMP-DAYS");
  EXPECT_EQ((*r)[2].text, "Expiration-Month");
}

TEST(LexerTest, SpacedMinusIsAnOperator) {
  auto r = Lex("LDOM - LDOM_HOL + LAST_BUS_DAY");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Kinds(*r),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kMinus,
                                    TokenKind::kIdent, TokenKind::kPlus,
                                    TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(LexerTest, Keywords) {
  auto r = Lex("if else while return ifx");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kIf);
  EXPECT_EQ((*r)[1].kind, TokenKind::kElse);
  EXPECT_EQ((*r)[2].kind, TokenKind::kWhile);
  EXPECT_EQ((*r)[3].kind, TokenKind::kReturn);
  EXPECT_EQ((*r)[4].kind, TokenKind::kIdent);  // not a keyword
}

TEST(LexerTest, ComparisonListops) {
  auto r = Lex(":<: :<=:");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Kinds(*r),
            (std::vector<TokenKind>{TokenKind::kColon, TokenKind::kLess,
                                    TokenKind::kColon, TokenKind::kColon,
                                    TokenKind::kLessEq, TokenKind::kColon,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, DotsAndRanges) {
  auto r = Lex(".overlaps. 2..5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Kinds(*r),
            (std::vector<TokenKind>{TokenKind::kDot, TokenKind::kIdent,
                                    TokenKind::kDot, TokenKind::kInt,
                                    TokenKind::kDotDot, TokenKind::kInt,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto r = Lex("a /* block \n comment */ b // line comment\n c");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);
  EXPECT_EQ((*r)[0].text, "a");
  EXPECT_EQ((*r)[1].text, "b");
  EXPECT_EQ((*r)[2].text, "c");
}

TEST(LexerTest, StringLiteral) {
  auto r = Lex("return (\"LAST TRADING DAY\");");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[2].kind, TokenKind::kString);
  EXPECT_EQ((*r)[2].text, "LAST TRADING DAY");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto r = Lex("a\n  b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].line, 1);
  EXPECT_EQ((*r)[1].line, 2);
  EXPECT_EQ((*r)[1].column, 3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("/* unterminated").ok());
  EXPECT_FALSE(Lex("a # b").ok());
}

}  // namespace
}  // namespace caldb
