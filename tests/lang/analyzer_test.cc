// Analyzer-level behaviour: identifier classes, smallest-unit inference
// (§3.4), inlining, and error reporting.

#include "lang/analyzer.h"

#include <gtest/gtest.h>

#include "catalog/calendar_catalog.h"
#include "lang/parser.h"

namespace caldb {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {}

  Result<Script> Analyze(const std::string& text) {
    Result<Script> parsed = ParseScript(text);
    if (!parsed.ok()) return parsed.status();
    Script script = std::move(parsed).value();
    Analyzer analyzer(&catalog_);
    Status st = analyzer.AnalyzeScript(&script);
    if (!st.ok()) return st;
    return script;
  }

  Granularity UnitOf(const std::string& text) {
    auto script = Analyze(text);
    EXPECT_TRUE(script.ok()) << text << ": " << script.status();
    return script.ok() ? script->unit : Granularity::kCenturies;
  }

  CalendarCatalog catalog_;
};

TEST_F(AnalyzerTest, SmallestUnitInference) {
  EXPECT_EQ(UnitOf("DAYS:during:MONTHS"), Granularity::kDays);
  EXPECT_EQ(UnitOf("MONTHS:during:YEARS"), Granularity::kMonths);
  EXPECT_EQ(UnitOf("MONTHS:during:1993/YEARS"), Granularity::kMonths);
  EXPECT_EQ(UnitOf("HOURS:during:DAYS"), Granularity::kHours);
  EXPECT_EQ(UnitOf("YEARS:during:DECADES"), Granularity::kYears);
  EXPECT_EQ(UnitOf("DECADES:during:CENTURY"), Granularity::kDecades);
  EXPECT_EQ(UnitOf("SECONDS:during:MINUTES"), Granularity::kSeconds);
}

TEST_F(AnalyzerTest, WeeksMixedWithCoarserDropsToDays) {
  // Week boundaries do not align with months/years, so the smallest unit
  // able to express both is DAYS (§3.4's expressibility requirement).
  EXPECT_EQ(UnitOf("WEEKS:during:MONTHS"), Granularity::kDays);
  EXPECT_EQ(UnitOf("WEEKS:during:1993/YEARS"), Granularity::kDays);
  // Weeks alone stay at weeks; weeks with finer units take the finer unit.
  EXPECT_EQ(UnitOf("WEEKS:during:weeks{(1,52)}"), Granularity::kWeeks);
  EXPECT_EQ(UnitOf("DAYS:during:WEEKS"), Granularity::kDays);
}

TEST_F(AnalyzerTest, LiteralGranularityParticipates) {
  EXPECT_EQ(UnitOf("MONTHS:intersects:days{(1,31)}"), Granularity::kDays);
  EXPECT_EQ(UnitOf("YEARS:intersects:months{(1,12)}"), Granularity::kMonths);
}

TEST_F(AnalyzerTest, VariablesCarryGranularity) {
  auto script = Analyze("{x = MONTHS:during:YEARS; return x - months{(1,2)};}");
  ASSERT_TRUE(script.ok()) << script.status();
  EXPECT_EQ(script->unit, Granularity::kMonths);
}

TEST_F(AnalyzerTest, TodayDoesNotAffectUnit) {
  EXPECT_EQ(UnitOf("MONTHS:intersects:today"), Granularity::kMonths);
}

TEST_F(AnalyzerTest, InliningReplacesSingleExpressionDerivations) {
  ASSERT_TRUE(catalog_.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS").ok());
  auto script = Analyze("Mondays:during:MONTHS");
  ASSERT_TRUE(script.ok());
  // The ident disappeared; its derivation is inlined.
  EXPECT_EQ(ExprToString(*script->stmts[0].expr),
            "([1]/DAYS:during:WEEKS):during:MONTHS");
  EXPECT_EQ(script->unit, Granularity::kDays);
}

TEST_F(AnalyzerTest, MultiStatementDerivationsStayAsReferences) {
  ASSERT_TRUE(catalog_
                  .DefineDerived("Multi", "{t = [1]/DAYS:during:WEEKS; return t;}")
                  .ok());
  auto script = Analyze("Multi:during:MONTHS");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(ExprToString(*script->stmts[0].expr), "Multi:during:MONTHS");
  ASSERT_EQ(script->stmts[0].expr->lhs->ident_class,
            IdentClass::kDerivedCalendar);
  // Its declared granularity (days) still lowers the unit.
  EXPECT_EQ(script->unit, Granularity::kDays);
}

TEST_F(AnalyzerTest, VariablesShadowCalendars) {
  ASSERT_TRUE(catalog_.DefineDerived("Mondays", "[1]/DAYS:during:WEEKS").ok());
  auto script =
      Analyze("{Mondays = months{(1,3)}; return Mondays;}");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->unit, Granularity::kMonths);  // not days: the variable won
}

TEST_F(AnalyzerTest, Errors) {
  EXPECT_EQ(Analyze("NoSuchCalendar:during:MONTHS").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Analyze("1993/MONTHS").status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Analyze("caloperate(DAYS, *)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Analyze("caloperate(DAYS, DAYS, 3)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Analyze("generate(DAYS, MONTHS)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Analyze("generate(Bogus, DAYS, \"1993-01-01\", \"1993-02-01\")")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      Analyze("generate(YEARS, DAYS, \"199x-01-01\", \"1993-02-01\")").status().code(),
      StatusCode::kParseError);
  EXPECT_EQ(Analyze("unknown_fn(DAYS)").status().code(), StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, CaseInsensitiveBaseNames) {
  EXPECT_EQ(UnitOf("days:during:Months"), Granularity::kDays);
  auto script = Analyze("1993/Years");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->unit, Granularity::kYears);
}

}  // namespace
}  // namespace caldb
