// The evaluator's bounded generated-calendar cache: LRU order, entry and
// byte budgets, covering-window lookup, and the eviction counter.

#include <gtest/gtest.h>

#include <vector>

#include "lang/evaluator.h"
#include "obs/obs.h"

namespace caldb {
namespace {

GenCache::Key K(int g, int unit, TimePoint lo, TimePoint hi) {
  return GenCache::Key(g, unit, lo, hi);
}

Calendar DaysCalendar(int64_t n) {
  std::vector<Interval> v;
  for (int64_t i = 1; i <= n; ++i) v.push_back({i, i});
  return Calendar::Order1(Granularity::kDays, std::move(v));
}

TEST(GenCacheTest, FindExactAndMiss) {
  GenCache cache;
  cache.SetBudget(8, 1u << 20);
  cache.Insert(K(1, 1, 1, 100), DaysCalendar(100));
  ASSERT_NE(cache.Find(K(1, 1, 1, 100)), nullptr);
  EXPECT_EQ(cache.Find(K(1, 1, 1, 100))->TotalIntervals(), 100);
  EXPECT_EQ(cache.Find(K(1, 1, 1, 99)), nullptr);
  EXPECT_EQ(cache.Find(K(1, 2, 1, 100)), nullptr);
}

TEST(GenCacheTest, FindCoveringMatchesUnitAndWindow) {
  GenCache cache;
  cache.SetBudget(8, 1u << 20);
  cache.Insert(K(1, 1, 1, 100), DaysCalendar(100));
  // Narrower request in the same unit: covered.
  EXPECT_NE(cache.FindCovering(K(1, 1, 10, 50)), nullptr);
  // Wider request: not covered.
  EXPECT_EQ(cache.FindCovering(K(1, 1, 10, 200)), nullptr);
  // Different unit: never covered.
  EXPECT_EQ(cache.FindCovering(K(1, 2, 10, 50)), nullptr);
}

TEST(GenCacheTest, EntryBudgetEvictsLeastRecentlyUsed) {
  GenCache cache;
  cache.SetBudget(2, 1u << 20);
  obs::Counter* evictions =
      obs::Metrics().counter("caldb.eval.gen_cache.evictions");
  const int64_t before = evictions->value();

  cache.Insert(K(1, 1, 1, 10), DaysCalendar(10));
  cache.Insert(K(1, 1, 1, 20), DaysCalendar(20));
  // Touch the older entry so the newer one becomes the LRU victim.
  ASSERT_NE(cache.Find(K(1, 1, 1, 10)), nullptr);
  cache.Insert(K(1, 1, 1, 30), DaysCalendar(30));

  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(evictions->value(), before + 1);
  EXPECT_NE(cache.Find(K(1, 1, 1, 10)), nullptr);  // survived (touched)
  EXPECT_EQ(cache.Find(K(1, 1, 1, 20)), nullptr);  // evicted
  EXPECT_NE(cache.Find(K(1, 1, 1, 30)), nullptr);
}

TEST(GenCacheTest, ByteBudgetBoundsPayload) {
  GenCache cache;
  // Room for roughly one 1000-interval calendar, not two.
  const size_t one_entry = 1000 * sizeof(Interval) + 512;
  cache.SetBudget(64, one_entry);
  cache.Insert(K(1, 1, 1, 1000), DaysCalendar(1000));
  EXPECT_EQ(cache.entries(), 1u);
  cache.Insert(K(1, 1, 1001, 2000), DaysCalendar(1000));
  // The older entry was evicted to make room; bytes stay under budget.
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_LE(cache.bytes(), one_entry);
  EXPECT_EQ(cache.Find(K(1, 1, 1, 1000)), nullptr);
  EXPECT_NE(cache.Find(K(1, 1, 1001, 2000)), nullptr);
}

TEST(GenCacheTest, InsertReplacesExistingKey) {
  GenCache cache;
  cache.SetBudget(4, 1u << 20);
  cache.Insert(K(1, 1, 1, 10), DaysCalendar(10));
  cache.Insert(K(1, 1, 1, 10), DaysCalendar(5));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.Find(K(1, 1, 1, 10))->TotalIntervals(), 5);
}

TEST(GenCacheTest, HitsShareTheRep) {
  GenCache cache;
  cache.SetBudget(4, 1u << 20);
  Calendar original = DaysCalendar(100);
  const Interval* buffer = original.intervals().data();
  cache.Insert(K(1, 1, 1, 100), std::move(original));
  const Calendar* hit = cache.Find(K(1, 1, 1, 100));
  ASSERT_NE(hit, nullptr);
  // The cached value still wraps the same leaf buffer: a hit is a handle
  // copy, not an interval copy.
  EXPECT_EQ(hit->intervals().data(), buffer);
  Calendar out = *hit;
  EXPECT_EQ(out.intervals().data(), buffer);
}

TEST(GenCacheTest, ShrinkingBudgetEvictsImmediately) {
  GenCache cache;
  cache.SetBudget(8, 1u << 20);
  for (int i = 0; i < 6; ++i) {
    cache.Insert(K(1, 1, 100 * i + 1, 100 * (i + 1)), DaysCalendar(10));
  }
  EXPECT_EQ(cache.entries(), 6u);
  cache.SetBudget(3, 1u << 20);
  EXPECT_EQ(cache.entries(), 3u);
}

}  // namespace
}  // namespace caldb
