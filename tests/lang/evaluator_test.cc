// Evaluator edge cases beyond the paper's worked examples: window
// conversion, granularity mixing, invoke depth, plan rendering.

#include "lang/evaluator.h"

#include <gtest/gtest.h>

#include "catalog/calendar_catalog.h"
#include "lang/ast.h"

namespace caldb {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {}

  ScriptValue Eval(const std::string& script, Interval window = {1, 365},
                   TimePoint today = 1) {
    EvalOptions opts;
    opts.window_days = window;
    opts.today_day = today;
    auto value = catalog_.EvaluateScript(script, opts);
    EXPECT_TRUE(value.ok()) << script << ": " << value.status();
    return value.value_or(ScriptValue::Null());
  }

  CalendarCatalog catalog_;
};

TEST_F(EvaluatorTest, ConvertDayWindowRoundTrips) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  auto days = ConvertDayWindow(ts, {1, 365}, Granularity::kDays);
  ASSERT_TRUE(days.ok());
  EXPECT_EQ(*days, (Interval{1, 365}));
  auto months = ConvertDayWindow(ts, {1, 365}, Granularity::kMonths);
  ASSERT_TRUE(months.ok());
  EXPECT_EQ(*months, (Interval{1, 12}));
  auto weeks = ConvertDayWindow(ts, {1, 31}, Granularity::kWeeks);
  ASSERT_TRUE(weeks.ok());
  EXPECT_EQ(*weeks, (Interval{1, 5}));
  auto hours = ConvertDayWindow(ts, {1, 2}, Granularity::kHours);
  ASSERT_TRUE(hours.ok());
  EXPECT_EQ(*hours, (Interval{1, 48}));
  // Windows before the epoch.
  auto neg = ConvertDayWindow(ts, {-31, -1}, Granularity::kMonths);
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(*neg, (Interval{-1, -1}));  // December 1992
}

TEST_F(EvaluatorTest, SubDayScript) {
  // Hours of the first day: unit inference drops to HOURS.
  ScriptValue v = Eval("HOURS:during:[1]/DAYS:during:1993/YEARS", {1, 3});
  ASSERT_EQ(v.kind, ScriptValue::Kind::kCalendar);
  EXPECT_EQ(v.calendar.granularity(), Granularity::kHours);
  EXPECT_EQ(v.calendar.size(), 24u);
  EXPECT_EQ(v.calendar.intervals().front(), (Interval{1, 1}));
  EXPECT_EQ(v.calendar.intervals().back(), (Interval{24, 24}));
}

TEST_F(EvaluatorTest, CoarseScriptInYears) {
  ScriptValue v = Eval("YEARS:overlaps:1993/YEARS", {1, 365});
  ASSERT_EQ(v.kind, ScriptValue::Kind::kCalendar);
  EXPECT_EQ(v.calendar.granularity(), Granularity::kYears);
  EXPECT_EQ(v.calendar.ToString(), "{(1,1)}");
}

TEST_F(EvaluatorTest, EmptyResultIsNull) {
  // No whole week fits inside a two-day interval.
  ScriptValue v = Eval("WEEKS:during:days{(2,3)}", {1, 31});
  EXPECT_EQ(v.kind, ScriptValue::Kind::kNull);
}

TEST_F(EvaluatorTest, LiteralsExtendGenerationWindows) {
  // Literal calendars are explicit data; with push-down enabled the
  // dependent generation follows them even outside the global window
  // (the look-ahead uses the operand's actual span).
  ScriptValue v = Eval("DAYS:during:days{(400,400)}", {1, 31});
  ASSERT_EQ(v.kind, ScriptValue::Kind::kCalendar);
  EXPECT_EQ(v.calendar.ToString(), "{(400,400)}");
}

TEST_F(EvaluatorTest, IfElseBranches) {
  ScriptValue then_branch = Eval(
      "{x = days{(5,5)}; if (x:intersects:days{(1,10)}) return days{(1,1)}; "
      "else return days{(2,2)};}");
  EXPECT_EQ(then_branch.calendar.ToString(), "{(1,1)}");
  ScriptValue else_branch = Eval(
      "{x = days{(50,50)}; if (x:intersects:days{(1,10)}) return days{(1,1)}; "
      "else return days{(2,2)};}");
  EXPECT_EQ(else_branch.calendar.ToString(), "{(2,2)}");
}

TEST_F(EvaluatorTest, ScriptWithoutReturnYieldsNull) {
  ScriptValue v = Eval("{x = days{(1,1)};}");
  EXPECT_EQ(v.kind, ScriptValue::Kind::kNull);
}

TEST_F(EvaluatorTest, ReturnInsideLoopTerminates) {
  ScriptValue v = Eval(R"(
    { x = days{(1,1),(2,2),(3,3)};
      while (x:intersects:days{(1,100)}) {
        if (x:intersects:days{(2,2)}) return x;
        x = x - [1]/x;
      }
      return days{(99,99)};
    })");
  ASSERT_EQ(v.kind, ScriptValue::Kind::kCalendar);
  EXPECT_EQ(v.calendar.ToString(), "{(1,1),(2,2),(3,3)}");
}

TEST_F(EvaluatorTest, VariableReassignmentAcrossGranularities) {
  // A variable first holds a calendar; reassignment replaces it.
  ScriptValue v = Eval(R"(
    { x = days{(1,5)};
      x = x:intersects:days{(3,10)};
      return x;
    })");
  EXPECT_EQ(v.calendar.ToString(), "{(3,5)}");
}

TEST_F(EvaluatorTest, InvokeDepthIsBounded) {
  // A chain of invoked (multi-statement) calendars deeper than the limit.
  ASSERT_TRUE(catalog_
                  .DefineDerived("base0", "{t = DAYS:during:MONTHS; return [1]/t;}")
                  .ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(catalog_
                    .DefineDerived("base" + std::to_string(i),
                                   "{t = base" + std::to_string(i - 1) +
                                       "; return t;}")
                    .ok());
  }
  EvalOptions opts;
  opts.window_days = Interval{1, 31};
  auto value = catalog_.EvaluateCalendar("base20", opts);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kEvalError);
  EXPECT_NE(value.status().message().find("depth"), std::string::npos);
}

TEST_F(EvaluatorTest, WindowHintsOffStillCorrect) {
  EvalOptions opts;
  opts.window_days = Interval{1, 365};
  opts.use_window_hints = false;
  auto with = catalog_.EvaluateScript("[3]/WEEKS:overlaps:days{(1,31)}", opts);
  opts.use_window_hints = true;
  auto without = catalog_.EvaluateScript("[3]/WEEKS:overlaps:days{(1,31)}", opts);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->calendar.ToString(), without->calendar.ToString());
  EXPECT_EQ(with->calendar.ToString(), "{(11,17)}");
}

TEST_F(EvaluatorTest, StatsCountWork) {
  EvalOptions opts;
  opts.window_days = Interval{1, 90};
  EvalStats stats;
  auto value = catalog_.EvaluateScript("[n]/DAYS:during:MONTHS", opts, &stats);
  ASSERT_TRUE(value.ok());
  EXPECT_GT(stats.steps_executed, 0);
  EXPECT_GT(stats.generate_calls, 0);
  EXPECT_GT(stats.intervals_generated, 0);
  // The same calendar generated twice within one run hits the cache.
  EvalStats stats2;
  auto twice = catalog_.EvaluateScript(
      "(DAYS:during:days{(1,31)}) + (DAYS:during:days{(1,31)})", opts, &stats2);
  ASSERT_TRUE(twice.ok());
  EXPECT_GE(stats2.cache_hits, 1);
}

TEST_F(EvaluatorTest, PlanRenderingCoversControlFlow) {
  auto plan = catalog_.CompileScriptText(R"(
    { x = days{(1,1)};
      while (x:intersects:days{(1,1)})
        x = x - days{(1,1)};
      if (x:intersects:days{(2,2)}) return x; else return ([1]/DAYS:during:WEEKS);
    })");
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::string text = plan->ToString();
  EXPECT_NE(text.find("WHILE"), std::string::npos);
  EXPECT_NE(text.find("IF"), std::string::npos);
  EXPECT_NE(text.find("ELSE"), std::string::npos);
  EXPECT_NE(text.find("GENERATE DAYS"), std::string::npos);
  EXPECT_NE(text.find("SELECT [1]"), std::string::npos);
  EXPECT_NE(text.find("window=span"), std::string::npos);
}

TEST_F(EvaluatorTest, RepeatedCalendarsAreMarked) {
  ASSERT_TRUE(catalog_
                  .DefineDerived("Doubled",
                                 "(DAYS:during:days{(1,5)}) + "
                                 "(DAYS:during:days{(7,9)})")
                  .ok());
  auto def = catalog_.Describe("Doubled");
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(def->parsed_script != nullptr);
  EXPECT_EQ(def->parsed_script->repeated_calendars,
            (std::vector<std::string>{"DAYS"}));
}

}  // namespace
}  // namespace caldb
