// User-defined date arithmetic (§1's bond-yield example).

#include "finance/day_count.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(DayCountTest, Thirty360TreatsEveryMonthAs30Days) {
  // Jan 1 -> Feb 1 is 30 days under 30/360, though January has 31.
  EXPECT_EQ(DayCountDays(DayCount::kThirty360, {1993, 1, 1}, {1993, 2, 1}).value(),
            30);
  // Feb 1 -> Mar 1 is also 30 days, though February 1993 has 28.
  EXPECT_EQ(DayCountDays(DayCount::kThirty360, {1993, 2, 1}, {1993, 3, 1}).value(),
            30);
  // A full year is exactly 360 days.
  EXPECT_EQ(
      DayCountDays(DayCount::kThirty360, {1993, 1, 1}, {1994, 1, 1}).value(),
      360);
}

TEST(DayCountTest, Thirty360EndOfMonthClamps) {
  // Start day 31 clamps to 30.
  EXPECT_EQ(
      DayCountDays(DayCount::kThirty360, {1993, 1, 31}, {1993, 2, 28}).value(),
      28);
  // 30 -> 31 clamps the end too.
  EXPECT_EQ(
      DayCountDays(DayCount::kThirty360, {1993, 3, 30}, {1993, 5, 31}).value(),
      60);
  // But 29 -> 31 keeps the real end day.
  EXPECT_EQ(
      DayCountDays(DayCount::kThirty360, {1993, 3, 29}, {1993, 3, 31}).value(),
      2);
}

TEST(DayCountTest, Thirty360UsNasdRuleTable) {
  // The full US (NASD) 30/360 rule set, table-driven.  Expected values
  // follow the published convention: end-of-February start dates are
  // treated as the 30th, and the end date is pulled to 30 only when the
  // start was also end-of-February (rule 1) or via the 31->30 clamp.
  struct Case {
    CivilDate a;
    CivilDate b;
    int64_t expected;
    const char* why;
  };
  const Case kCases[] = {
      // Rule 1: both end-of-Feb -> d1 = d2 = 30 (Feb 28 1993 -> Feb 28 1994
      // is a clean year).
      {{1993, 2, 28}, {1994, 2, 28}, 360, "EOM-Feb to EOM-Feb, non-leap"},
      {{1992, 2, 29}, {1993, 2, 28}, 360, "leap EOM-Feb to non-leap EOM-Feb"},
      {{1993, 2, 28}, {1996, 2, 29}, 3 * 360, "non-leap EOM-Feb to leap EOM-Feb"},
      // Rule 2: start is EOM-Feb -> d1 = 30, which then lets rule 3 pull a
      // day-31 end date to 30 as well.
      {{1993, 2, 28}, {1993, 3, 31}, 30, "EOM-Feb start, Mar 31 end"},
      {{1992, 2, 29}, {1992, 3, 1}, 1, "leap EOM-Feb start"},
      {{1993, 2, 28}, {1993, 3, 1}, 1, "non-leap EOM-Feb start"},
      // Feb 28 in a leap year is NOT end-of-February: no adjustment.
      {{1992, 2, 28}, {1992, 3, 1}, 3, "Feb 28 of a leap year is day 28"},
      {{1992, 2, 28}, {1993, 2, 28}, 360, "Feb 28 to Feb 28 across leap year"},
      // Rule 3: d2 = 31 with d1 >= 30 -> d2 = 30.
      {{1993, 1, 30}, {1993, 3, 31}, 60, "d1=30 pulls d2=31 to 30"},
      {{1993, 1, 31}, {1993, 3, 31}, 60, "d1=31 pulls d2=31 to 30"},
      // Rule 3 does NOT fire when d1 < 30.
      {{1993, 1, 29}, {1993, 3, 31}, 62, "d1=29 leaves d2=31 alone"},
      // Rule 4: d1 = 31 -> 30, end date otherwise untouched.
      {{1993, 1, 31}, {1993, 2, 1}, 1, "d1=31 alone"},
      // End-of-Feb as the *end* date only is never adjusted.
      {{1993, 1, 15}, {1993, 2, 28}, 43, "EOM-Feb end only, no adjustment"},
      {{1996, 1, 15}, {1996, 2, 29}, 44, "leap EOM-Feb end only"},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(DayCountDays(DayCount::kThirty360, c.a, c.b).value(), c.expected)
        << c.why << ": " << FormatCivil(c.a) << " -> " << FormatCivil(c.b);
  }
}

TEST(DayCountTest, Thirty360YearFractionIsExactForFebruaryAnnualPairs) {
  // A coupon paid annually on the last day of February accrues exactly one
  // 360-day year regardless of leap years -- the regression that motivated
  // the end-of-February rules.
  EXPECT_DOUBLE_EQ(
      YearFraction(DayCount::kThirty360, {1995, 2, 28}, {1996, 2, 29}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      YearFraction(DayCount::kThirty360, {1996, 2, 29}, {1997, 2, 28}).value(),
      1.0);
}

TEST(DayCountTest, ActualConventionsCountRealDays) {
  EXPECT_EQ(DayCountDays(DayCount::kAct365, {1993, 1, 1}, {1993, 2, 1}).value(),
            31);
  EXPECT_EQ(DayCountDays(DayCount::kActAct, {1992, 1, 1}, {1993, 1, 1}).value(),
            366);  // 1992 is a leap year
}

TEST(DayCountTest, YearFractions) {
  EXPECT_DOUBLE_EQ(
      YearFraction(DayCount::kThirty360, {1993, 1, 1}, {1993, 7, 1}).value(),
      0.5);
  EXPECT_DOUBLE_EQ(
      YearFraction(DayCount::kAct365, {1993, 1, 1}, {1994, 1, 1}).value(),
      365.0 / 365.0);
  // ACT/ACT over a leap year is exactly 1.
  EXPECT_DOUBLE_EQ(
      YearFraction(DayCount::kActAct, {1992, 1, 1}, {1993, 1, 1}).value(), 1.0);
  // ACT/ACT across a year boundary splits by year length.
  double f =
      YearFraction(DayCount::kActAct, {1992, 7, 1}, {1993, 7, 1}).value();
  EXPECT_NEAR(f, 184.0 / 366.0 + 181.0 / 365.0, 1e-12);
}

TEST(DayCountTest, NegativeSpans) {
  EXPECT_DOUBLE_EQ(
      YearFraction(DayCount::kThirty360, {1993, 7, 1}, {1993, 1, 1}).value(),
      -0.5);
}

TEST(DayCountTest, AccruedInterest) {
  // 8% coupon on face 1000, half a 30/360 year: 40.
  EXPECT_DOUBLE_EQ(AccruedInterest(1000, 0.08, DayCount::kThirty360,
                                   {1993, 1, 1}, {1993, 7, 1})
                       .value(),
                   40.0);
  EXPECT_FALSE(AccruedInterest(1000, 0.08, DayCount::kThirty360, {1993, 7, 1},
                               {1993, 1, 1})
                   .ok());
}

TEST(DayCountTest, SimpleYieldMixesConventions) {
  // The §1 convention mix: income on 30/360, annualization on ACT/365.
  // Hold Jan 1 -> Jul 1 1993: 30/360 fraction 0.5 -> income 40 on 8%/1000;
  // actual days 181; yield = (40 / 1000) * (365 / 181).
  double y =
      SimpleYield(1000, 1000, 0.08, {1993, 1, 1}, {1993, 7, 1}).value();
  EXPECT_NEAR(y, 0.04 * 365.0 / 181.0, 1e-12);
  // A pure-gregorian calculation would divide by 181/365 of a year exactly,
  // giving a different number — the reason date functions must take the
  // calendar as an argument.
  EXPECT_NE(y, 0.08);
  EXPECT_FALSE(SimpleYield(0, 1000, 0.08, {1993, 1, 1}, {1993, 7, 1}).ok());
  EXPECT_FALSE(SimpleYield(1000, 1000, 0.08, {1993, 1, 1}, {1993, 1, 1}).ok());
}

TEST(DayCountTest, Validation) {
  EXPECT_FALSE(DayCountDays(DayCount::kAct365, {1993, 2, 30}, {1993, 3, 1}).ok());
  EXPECT_EQ(DayCountName(DayCount::kThirty360), "30/360");
  EXPECT_EQ(DayCountName(DayCount::kAct365), "ACT/365");
  EXPECT_EQ(DayCountName(DayCount::kActAct), "ACT/ACT");
}

}  // namespace
}  // namespace caldb
