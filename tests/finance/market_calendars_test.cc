#include "finance/market_calendars.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

class MarketCalendarsTest : public ::testing::Test {
 protected:
  MarketCalendarsTest() : ts_(CivilDate{1993, 1, 1}) {}

  TimePoint Day(int32_t y, int32_t m, int32_t d) {
    return ts_.DayPointFromCivil({y, m, d});
  }

  TimeSystem ts_;
};

TEST_F(MarketCalendarsTest, UsFederalHolidays1993) {
  auto holidays = UsFederalHolidays(ts_, 1993, 1993);
  ASSERT_TRUE(holidays.ok()) << holidays.status();
  // 1993: New Year Fri Jan 1; MLK Mon Jan 18; Presidents Mon Feb 15;
  // Memorial Mon May 31; Independence Sun Jul 4 -> observed Mon Jul 5;
  // Labor Mon Sep 6; Thanksgiving Thu Nov 25; Christmas Sat Dec 25 ->
  // observed Fri Dec 24.
  const TimePoint expected[] = {
      Day(1993, 1, 1),  Day(1993, 1, 18), Day(1993, 2, 15), Day(1993, 5, 31),
      Day(1993, 7, 5),  Day(1993, 9, 6),  Day(1993, 11, 25), Day(1993, 12, 24)};
  ASSERT_EQ(holidays->size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(holidays->intervals()[i].lo, expected[i]) << i;
  }
}

TEST_F(MarketCalendarsTest, HolidayWeekdaysAreCorrect) {
  auto holidays = UsFederalHolidays(ts_, 1990, 2000);
  ASSERT_TRUE(holidays.ok());
  for (const Interval& h : holidays->intervals()) {
    Weekday wd = ts_.WeekdayOfDayPoint(h.lo);
    EXPECT_NE(wd, Weekday::kSaturday) << FormatCivil(ts_.CivilFromDayPoint(h.lo));
    EXPECT_NE(wd, Weekday::kSunday) << FormatCivil(ts_.CivilFromDayPoint(h.lo));
  }
}

TEST_F(MarketCalendarsTest, WeekendsAndBusinessDaysPartitionTheWeek) {
  Interval window{1, 365};
  auto weekends = WeekendDays(ts_, window);
  ASSERT_TRUE(weekends.ok());
  auto holidays = UsFederalHolidays(ts_, 1993, 1993);
  ASSERT_TRUE(holidays.ok());
  auto business = BusinessDays(ts_, window, *holidays);
  ASSERT_TRUE(business.ok());
  // 1993 has 365 days, 104 weekend days and 8 observed holidays (none on
  // weekends).
  EXPECT_EQ(weekends->size(), 104u);
  EXPECT_EQ(business->size(), 365u - 104u - 8u);
  for (TimePoint d = 1; d <= 365; ++d) {
    int memberships = (weekends->ContainsPoint(d) ? 1 : 0) +
                      (holidays->ContainsPoint(d) ? 1 : 0) +
                      (business->ContainsPoint(d) ? 1 : 0);
    EXPECT_EQ(memberships, 1) << "day " << d;
  }
}

TEST_F(MarketCalendarsTest, BusinessDayNavigation) {
  auto holidays = UsFederalHolidays(ts_, 1993, 1993);
  auto business = BusinessDays(ts_, Interval{1, 365}, *holidays);
  ASSERT_TRUE(business.ok());

  // Fri Nov 19 1993 is a business day.
  TimePoint nov19 = Day(1993, 11, 19);
  EXPECT_EQ(NextBusinessDay(*business, nov19).value(), nov19);
  EXPECT_EQ(PrecedingBusinessDay(*business, nov19).value(), nov19);
  // Sat Nov 20: preceding is Fri 19, next is Mon 22.
  EXPECT_EQ(PrecedingBusinessDay(*business, Day(1993, 11, 20)).value(), nov19);
  EXPECT_EQ(NextBusinessDay(*business, Day(1993, 11, 20)).value(),
            Day(1993, 11, 22));
  // Thanksgiving (Thu Nov 25): next business day is Friday Nov 26.
  EXPECT_EQ(NextBusinessDay(*business, Day(1993, 11, 25)).value(),
            Day(1993, 11, 26));

  // AddBusinessDays across a weekend.
  EXPECT_EQ(AddBusinessDays(*business, nov19, 1).value(), Day(1993, 11, 22));
  EXPECT_EQ(AddBusinessDays(*business, nov19, -1).value(), Day(1993, 11, 18));
  EXPECT_EQ(AddBusinessDays(*business, nov19, 0).value(), nov19);
  // The paper's last-trading-day rule: 7 business days back from the last
  // business day of November (Tue Nov 30), skipping Thanksgiving (Thu Nov
  // 25), lands on Thu Nov 18.
  EXPECT_EQ(AddBusinessDays(*business, Day(1993, 11, 30), -7).value(),
            Day(1993, 11, 18));
  // Out-of-calendar arithmetic is an error, not a wrap.
  EXPECT_FALSE(AddBusinessDays(*business, Day(1993, 12, 30), 10).ok());
}

TEST_F(MarketCalendarsTest, OptionExpiration) {
  auto holidays = UsFederalHolidays(ts_, 1993, 1993);
  auto business = BusinessDays(ts_, Interval{1, 365}, *holidays);
  ASSERT_TRUE(business.ok());
  // November 1993: 3rd Friday is Nov 19, a business day.
  EXPECT_EQ(OptionExpirationDay(ts_, 1993, 11, *business).value(),
            Day(1993, 11, 19));
  // Force the 3rd Friday to be a holiday and check the fallback.
  std::vector<Interval> extra(holidays->intervals().begin(),
                              holidays->intervals().end());
  extra.push_back(PointInterval(Day(1993, 11, 19)));
  Calendar more_holidays = Calendar::Order1(Granularity::kDays, extra);
  auto business2 = BusinessDays(ts_, Interval{1, 365}, more_holidays);
  ASSERT_TRUE(business2.ok());
  EXPECT_EQ(OptionExpirationDay(ts_, 1993, 11, *business2).value(),
            Day(1993, 11, 18));
  EXPECT_FALSE(OptionExpirationDay(ts_, 1993, 13, *business).ok());
}

TEST_F(MarketCalendarsTest, InstallMarketCalendars) {
  CalendarCatalog catalog(TimeSystem{CivilDate{1993, 1, 1}});
  ASSERT_TRUE(InstallMarketCalendars(&catalog, 1993, 1994).ok());
  ASSERT_TRUE(catalog.Contains("HOLIDAYS"));
  ASSERT_TRUE(catalog.Contains("AM_BUS_DAYS"));
  // The installed calendars drive the paper's scripts: last business day
  // before Thanksgiving 1993.
  auto value = catalog.EvaluateScript(
      "[n]/AM_BUS_DAYS:<:HOLIDAYS",
      EvalOptions{.window_days = Interval{305, 334}});
  ASSERT_TRUE(value.ok()) << value.status();
}

TEST_F(MarketCalendarsTest, Validation) {
  EXPECT_FALSE(UsFederalHolidays(ts_, 1995, 1993).ok());
  Calendar runs = Calendar::Order1(Granularity::kDays, {{1, 5}});
  EXPECT_FALSE(PrecedingBusinessDay(runs, 3).ok());
  EXPECT_FALSE(BusinessDays(ts_, Interval{1, 10}, runs).ok());
}

}  // namespace
}  // namespace caldb
