// Restart semantics of a durable engine: state survives Stop(), missed
// temporal-rule firings happen exactly once after recovery (the paper's
// catch-up contract), and the audit trail shows the lag.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/session.h"
#include "obs/audit.h"

namespace caldb {
namespace {

std::string FreshDataDir(const char* name) {
  std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

EngineOptions DurableOptions(const std::string& data_dir) {
  EngineOptions opts;
  opts.epoch = CivilDate{1993, 1, 1};
  opts.pool_threads = 1;
  opts.data_dir = data_dir;
  opts.fsync_policy = storage::FsyncPolicy::kOff;  // tests: speed over safety
  return opts;
}

int64_t CountRows(Engine& engine, const std::string& query) {
  Result<QueryResult> r = engine.Execute(query);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status().ToString();
  return r.ok() ? static_cast<int64_t>(r->rows.size()) : -1;
}

TEST(EngineRestart, CheckpointedStateComesBackExactly) {
  std::string dir = FreshDataDir("caldb_restart_state");
  {
    auto engine = Engine::Create(DurableOptions(dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_TRUE((*engine)->durable());
    ASSERT_TRUE((*engine)->Execute("create table LOG (day int)").ok());
    ASSERT_TRUE((*engine)->Execute("append LOG (day = 1)").ok());
    ASSERT_TRUE(
        (*engine)->DefineCalendar("Tuesdays", "[2]/DAYS:during:WEEKS").ok());
    TemporalAction action;
    action.command = "append LOG (day = fire_day())";
    ASSERT_TRUE(
        (*engine)->DeclareRule("weekly", "[2]/DAYS:during:WEEKS", action).ok());
    ASSERT_TRUE((*engine)->AdvanceTo(6).ok());  // fires Tue Jan 5 (day 5)
    EXPECT_EQ(CountRows(**engine, "retrieve (l.day) from l in LOG"), 2);
    ASSERT_TRUE((*engine)->Stop().ok());  // checkpoint_on_stop: snapshots
  }
  {
    auto engine = Engine::Create(DurableOptions(dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const Engine::RecoveryStats& stats = (*engine)->recovery_stats();
    EXPECT_TRUE(stats.snapshot_loaded);
    EXPECT_EQ(stats.wal_records_replayed, 0);  // everything in the snapshot
    EXPECT_EQ(stats.replay_errors, 0);
    EXPECT_EQ((*engine)->Now(), 6);
    EXPECT_EQ(CountRows(**engine, "retrieve (l.day) from l in LOG"), 2);
    EXPECT_TRUE((*engine)->catalog().Describe("Tuesdays").ok());
    // The rule survived and keeps firing from where it left off.
    ASSERT_TRUE((*engine)->AdvanceTo(13).ok());  // fires Tue Jan 12
    EXPECT_EQ(CountRows(**engine, "retrieve (l.day) from l in LOG"), 3);
  }
}

TEST(EngineRestart, WalReplayRebuildsStateWithoutASnapshot) {
  std::string dir = FreshDataDir("caldb_restart_replay");
  EngineOptions opts = DurableOptions(dir);
  opts.checkpoint_on_stop = false;  // leave everything in the WAL
  {
    auto engine = Engine::Create(opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->Execute("create table LOG (day int)").ok());
    TemporalAction action;
    action.command = "append LOG (day = fire_day())";
    ASSERT_TRUE(
        (*engine)->DeclareRule("weekly", "[2]/DAYS:during:WEEKS", action).ok());
    ASSERT_TRUE((*engine)->AdvanceTo(20).ok());  // fires days 5, 12, 19
    EXPECT_EQ(CountRows(**engine, "retrieve (l.day) from l in LOG"), 3);
    ASSERT_TRUE((*engine)->Stop().ok());
  }
  {
    auto engine = Engine::Create(opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const Engine::RecoveryStats& stats = (*engine)->recovery_stats();
    EXPECT_FALSE(stats.snapshot_loaded);
    // create + declare + advances all replay from the log.
    EXPECT_GE(stats.wal_records_replayed, 3);
    EXPECT_EQ(stats.replay_errors, 0);
    EXPECT_EQ((*engine)->Now(), 20);
    // Replaying the advances re-fired the same three rules — not six: the
    // firings themselves are never logged, so replay cannot double them.
    EXPECT_EQ(CountRows(**engine, "retrieve (l.day) from l in LOG"), 3);
  }
}

TEST(EngineRestart, WalReplayParsesEachDistinctShapeOnce) {
  std::string dir = FreshDataDir("caldb_restart_replay_cache");
  EngineOptions opts = DurableOptions(dir);
  opts.checkpoint_on_stop = false;  // leave everything in the WAL
  {
    auto engine = Engine::Create(opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->Execute("create table LOG (day int)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*engine)->Execute("append LOG (day = 7)").ok());
    }
    ASSERT_TRUE((*engine)->Stop().ok());
  }
  {
    auto engine = Engine::Create(opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ((*engine)->recovery_stats().wal_records_replayed, 21);
    EXPECT_EQ(CountRows(**engine, "retrieve (l.day) from l in LOG"), 20);
    // Replay went through the statement cache: two distinct shapes (the
    // create and the append) compiled once each; the 19 repeated appends
    // hit.  The retrieve above added the third miss.
    StatementCache::Stats stats = (*engine)->StatementCacheStats();
    EXPECT_EQ(stats.misses, 3);
    EXPECT_EQ(stats.hits, 19);
  }
}

TEST(EngineRestart, ParameterizedExecutionsReplayWithTheirBoundValues) {
  std::string dir = FreshDataDir("caldb_restart_params");
  EngineOptions opts = DurableOptions(dir);
  opts.checkpoint_on_stop = false;  // leave everything in the WAL
  std::string before_restart;
  {
    auto engine = Engine::Create(opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto session = (*engine)->CreateSession();
    ASSERT_TRUE(session->Execute("create table T (x int, s text)").ok());
    auto insert = session->Prepare("append T (x = $1, s = $2)");
    ASSERT_TRUE(insert.ok()) << insert.status().ToString();
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(insert
                      ->Execute({Value::Int(i),
                                 Value::Text("row " + std::to_string(i))})
                      .ok());
    }
    // A null bind round-trips through the codec too.
    auto odd = session->Prepare("append T (x = $1, s = $2)");
    ASSERT_TRUE(odd.ok());
    ASSERT_TRUE(odd->Execute({Value::Int(100), Value::Null()}).ok());
    Result<QueryResult> rows = (*engine)->Execute(
        "retrieve (t.x, t.s) from t in T order by x");
    ASSERT_TRUE(rows.ok());
    before_restart = rows->ToString();
    ASSERT_TRUE((*engine)->Stop().ok());
  }
  {
    auto engine = Engine::Create(opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const Engine::RecoveryStats& stats = (*engine)->recovery_stats();
    EXPECT_FALSE(stats.snapshot_loaded);
    EXPECT_EQ(stats.replay_errors, 0);
    // create + 13 parameterized appends, all from the log.
    EXPECT_EQ(stats.wal_records_replayed, 14);
    // Byte-identical table contents: every bound value came back through
    // the kParamStatement records' encoded lists.
    Result<QueryResult> rows = (*engine)->Execute(
        "retrieve (t.x, t.s) from t in T order by x");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->ToString(), before_restart);
    // One compiled shape served all 13 appends on replay.
    StatementCache::Stats cache = (*engine)->StatementCacheStats();
    EXPECT_EQ(cache.misses, 3);  // create, append shape, the retrieve above
    EXPECT_EQ(cache.hits, 12);
  }
}

TEST(EngineRestart, MissedFiringsHappenExactlyOnceAndAuditShowsTheLag) {
  std::string dir = FreshDataDir("caldb_restart_missed");
  {
    auto engine = Engine::Create(DurableOptions(dir));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->Execute("create table LOG (day int)").ok());
    TemporalAction action;
    action.command = "append LOG (day = fire_day())";
    ASSERT_TRUE(
        (*engine)->DeclareRule("weekly", "[2]/DAYS:during:WEEKS", action).ok());
    ASSERT_TRUE((*engine)->AdvanceTo(6).ok());  // fired day 5 before "crash"
    ASSERT_TRUE((*engine)->Stop().ok());
  }

  // While the engine was down, days 12 and 19 (Tuesdays) went by: restart
  // with a later start_day, as a process coming back after an outage would.
  obs::Audit().Clear();
  EngineOptions late = DurableOptions(dir);
  late.start_day = 21;
  auto engine = Engine::Create(late);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->Now(), 21);
  // Recovery itself does not fire rules; the next advance catches up.
  ASSERT_TRUE((*engine)->AdvanceTo(22).ok());

  Result<QueryResult> rows =
      (*engine)->Execute("retrieve (l.day) from l in LOG");
  ASSERT_TRUE(rows.ok());
  std::vector<int64_t> days;
  for (const Row& row : rows->rows) days.push_back(row[0].AsInt().value());
  // Day 5 from before the restart; 12 and 19 fired late, exactly once.
  EXPECT_EQ(days, (std::vector<int64_t>{5, 12, 19}));

  // The audit trail records the catch-up lag: scheduled day 12/19, fired
  // on day 21 or later ("late N" = fired_day - scheduled_day).
  std::vector<obs::AuditRecord> audit = obs::Audit().Snapshot();
  int late_firings = 0;
  for (const obs::AuditRecord& record : audit) {
    if (record.rule != "weekly") continue;
    if (record.scheduled_day == 12 || record.scheduled_day == 19) {
      ++late_firings;
      EXPECT_GE(record.fired_day, 21);
      EXPECT_GT(record.fired_day - record.scheduled_day, 0);
      EXPECT_EQ(record.outcome, obs::AuditRecord::Outcome::kOk);
    }
  }
  EXPECT_EQ(late_firings, 2);

  // A second restart replays nothing twice: the log still shows exactly
  // three firings.
  ASSERT_TRUE((*engine)->Stop().ok());
  engine->reset();
  auto again = Engine::Create(late);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(CountRows(**again, "retrieve (l.day) from l in LOG"), 3);
}

TEST(EngineRestart, ManualCheckpointTruncatesTheWal) {
  std::string dir = FreshDataDir("caldb_restart_checkpoint");
  auto engine = Engine::Create(DurableOptions(dir));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->Execute("create table T (x int)").ok());
  ASSERT_TRUE((*engine)->Execute("append T (x = 1)").ok());
  ASSERT_TRUE((*engine)->Checkpoint().ok());
  EXPECT_GT(std::filesystem::file_size(dir + "/snapshot"), 0u);
  EXPECT_EQ(std::filesystem::file_size(dir + "/wal"), 0u);

  // Post-checkpoint statements land in the (fresh) WAL.
  ASSERT_TRUE((*engine)->Execute("append T (x = 2)").ok());
  EXPECT_GT(std::filesystem::file_size(dir + "/wal"), 0u);
}

TEST(EngineRestart, InMemoryEngineRejectsCheckpoint) {
  auto engine = Engine::Create(EngineOptions{});
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->durable());
  EXPECT_FALSE((*engine)->Checkpoint().ok());
}

}  // namespace
}  // namespace caldb
