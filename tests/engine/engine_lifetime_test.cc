// PreparedStatement lifetime guards (PR 10).
//
// Handles are documented to outlive the Session that prepared them; the
// bug this pins: executing a handle after Engine::Stop() or after the
// Engine itself was destroyed used to be unguarded — a dangling Engine*
// dereference (use-after-free) in the destruction case.  Both now fail
// with a clean InvalidArgument.
//
// The destruction test is the ASan-gated one: without the liveness-token
// check, Execute on a dead engine reads freed memory, which the
// tools/check.sh address-sanitizer leg turns into a hard failure — so a
// regression cannot pass CI even if the stale read happens to return
// plausible bytes in a plain build.

#include "caldb.h"

#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace caldb {
namespace {

TEST(PreparedLifetimeTest, ExecuteAfterStopFailsCleanly) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table t (x int)").ok());
  ASSERT_TRUE(session->Execute("append t (x = 1)").ok());
  auto stmt = session->Prepare("retrieve (t.x) from t in t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  // Before Stop the handle works.
  auto rows = stmt->Execute();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 1u);

  ASSERT_TRUE(engine->Stop().ok());
  auto after_stop = stmt->Execute();
  ASSERT_FALSE(after_stop.ok());
  EXPECT_EQ(after_stop.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(after_stop.status().message().find("Stop"), std::string::npos)
      << after_stop.status().ToString();
}

TEST(PreparedLifetimeTest, ExecuteAfterEngineDestructionFailsCleanly) {
  PreparedStatement stmt;
  {
    auto engine = Engine::Create().value();
    auto session = engine->CreateSession();
    ASSERT_TRUE(session->Execute("create table t (x int)").ok());
    auto prepared = session->Prepare("retrieve (t.x) from t in t");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    stmt = *prepared;
    // The handle stays valid past the Session (documented) ...
  }
  // ... but not past the Engine: the liveness token flipped in ~Engine
  // turns this into a clean error instead of a use-after-free.
  ASSERT_TRUE(stmt.valid());
  auto result = stmt.Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("destroyed"), std::string::npos)
      << result.status().ToString();
}

TEST(PreparedLifetimeTest, CopiedHandlesShareTheLivenessToken) {
  std::vector<PreparedStatement> copies;
  {
    auto engine = Engine::Create().value();
    auto session = engine->CreateSession();
    ASSERT_TRUE(session->Execute("create table t (x int)").ok());
    auto prepared = session->Prepare("retrieve (t.x) from t in t");
    ASSERT_TRUE(prepared.ok());
    copies.push_back(*prepared);            // copy
    copies.push_back(std::move(*prepared));  // move
  }
  for (const PreparedStatement& handle : copies) {
    auto result = handle.Execute();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace caldb
