// Regression tests for cached calendar content surviving a redefinition
// (PR 10).
//
// Two caches can hold evaluated calendar content: the CalendarCatalog's
// eval-cache (shared, keyed by name/window) and each Session evaluator's
// gen-cache (private, keyed by granularity/window).  Both now carry the
// catalog's monotonic definition version — CalendarCatalog::version() —
// in their keys/validity checks, so content computed against an old
// definition can never be served after a DefineDerived / DefineValues /
// Drop, even when the redefinition races an in-flight evaluation in
// another session.

#include "caldb.h"

#include <atomic>
#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace caldb {
namespace {

TEST(StaleCacheTest, RedefinitionIsVisibleAcrossSessions) {
  auto engine = Engine::Create().value();
  ASSERT_TRUE(engine->catalog()
                  .DefineValues("E", Calendar::Order1(Granularity::kDays,
                                                      {{10, 10}}))
                  .ok());
  ASSERT_TRUE(engine->catalog().DefineDerived("D", "E").ok());

  auto writer = engine->CreateSession();
  auto reader = engine->CreateSession();

  // Warm both cache layers from the reader's side.
  auto before = reader->EvalCalendar("D");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->ToString(), "{(10,10)}");
  auto again = reader->EvalCalendar("D");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), "{(10,10)}");

  // Another session redefines the values calendar D is built from.
  ASSERT_TRUE(engine->catalog().Drop("E").ok());
  ASSERT_TRUE(engine->catalog()
                  .DefineValues("E", Calendar::Order1(Granularity::kDays,
                                                      {{20, 20}}))
                  .ok());

  // The reader must see the new content, not its cached evaluation.
  auto after = reader->EvalCalendar("D");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->ToString(), "{(20,20)}");
  (void)writer;
}

// The racing variant: before the version key, an evaluation in flight when
// the redefinition cleared the catalog's eval-cache could insert its
// (stale) result *after* the clear, and every later caller would hit it.
// The version captured before Resolve files such an insert under the old
// version, unreachable by post-redefinition lookups.
TEST(StaleCacheTest, RacingRedefinitionNeverServesStaleContent) {
  auto engine = Engine::Create().value();
  ASSERT_TRUE(engine->catalog()
                  .DefineValues("E", Calendar::Order1(Granularity::kDays,
                                                      {{1, 1}}))
                  .ok());
  ASSERT_TRUE(engine->catalog().DefineDerived("D", "E").ok());

  std::atomic<bool> done{false};
  std::thread evaluator([&] {
    auto session = engine->CreateSession();
    while (!done.load(std::memory_order_acquire)) {
      // Mid-redefinition the reference can dangle (E briefly dropped);
      // errors are fine — served *stale* content is the bug.
      auto value = session->EvalCalendar("D");
      if (value.ok()) {
        EXPECT_EQ(value->TotalIntervals(), 1u) << value->ToString();
      }
    }
  });

  constexpr int kRounds = 200;
  for (int day = 2; day <= kRounds; ++day) {
    ASSERT_TRUE(engine->catalog().Drop("E").ok());
    ASSERT_TRUE(engine->catalog()
                    .DefineValues("E", Calendar::Order1(Granularity::kDays,
                                                        {{day, day}}))
                    .ok());
  }
  done.store(true, std::memory_order_release);
  evaluator.join();

  // A fresh evaluation after the dust settles must reflect the final
  // definition — the one observable that the pre-fix race broke.
  auto session = engine->CreateSession();
  auto final_value = session->EvalCalendar("D");
  ASSERT_TRUE(final_value.ok()) << final_value.status().ToString();
  EXPECT_EQ(final_value->ToString(),
            "{(" + std::to_string(kRounds) + "," + std::to_string(kRounds) +
                ")}");
}

// The session-evaluator side: a Session's private gen-cache persists
// across EvalScript calls, and before PR 10 nothing invalidated it when
// the catalog changed underneath.  The stamped catalog_version now clears
// it on mismatch — visible as generate_calls going 0 (warm) -> nonzero
// (after a definition bumps the version).
TEST(StaleCacheTest, SessionGenCacheInvalidatesOnCatalogVersionBump) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  const std::string script = "[n]/DAYS:during:MONTHS";

  auto cold = session->EvalScript(script);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(session->last_eval_stats().generate_calls, 0);

  auto warm = session->EvalScript(script);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(session->last_eval_stats().generate_calls, 0);
  EXPECT_GT(session->last_eval_stats().cache_hits, 0);

  // Any definition bumps CalendarCatalog::version(); the next run on this
  // session sees the new version in its EvalOptions and drops the cache.
  ASSERT_TRUE(session->DefineCalendar("bump", "DAYS:during:days{(1,5)}").ok());
  auto after_bump = session->EvalScript(script);
  ASSERT_TRUE(after_bump.ok());
  EXPECT_GT(session->last_eval_stats().generate_calls, 0);
}

}  // namespace
}  // namespace caldb
