// The shared statement cache (engine/statement_cache.h) and the engine's
// parse-once contract: hit/miss/eviction accounting, normalization
// sharing, DDL invalidation, prepared handles crossing sessions, and —
// via the caldb.db.parses counter — proof that rule firings, EXPLAIN/
// PROFILE and repeated execution never reach the parser.

#include "engine/statement_cache.h"

#include <string>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/session.h"
#include "obs/obs.h"

namespace caldb {
namespace {

int64_t ParseCount() {
  return obs::Metrics().counter("caldb.db.parses")->value();
}

TEST(StatementCache, HitMissAndNormalizationSharing) {
  StatementCache cache(8);
  auto a = cache.GetOrCompile("retrieve (t.x) from t in t");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  // Different spelling, same normalized key: shares the first handle.
  auto b = cache.GetOrCompile("retrieve   (t.x)\n from t   in t");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());

  StatementCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.size, 1);
  EXPECT_EQ(stats.capacity, 8u);
}

TEST(StatementCache, ParseErrorsAreNeverCached) {
  StatementCache cache(8);
  EXPECT_FALSE(cache.GetOrCompile("retrieve ((((").ok());
  EXPECT_FALSE(cache.GetOrCompile("retrieve ((((").ok());
  StatementCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.size, 0);
  EXPECT_EQ(stats.misses, 2);  // both attempts missed; neither inserted
  EXPECT_EQ(stats.hits, 0);
}

TEST(StatementCache, LruEvictionUnderCapacity) {
  StatementCache cache(2);
  ASSERT_TRUE(cache.GetOrCompile("append a (x = 1)").ok());
  ASSERT_TRUE(cache.GetOrCompile("append b (x = 1)").ok());
  // Touch `a` so `b` is the LRU victim when `c` arrives.
  ASSERT_TRUE(cache.GetOrCompile("append a (x = 1)").ok());
  ASSERT_TRUE(cache.GetOrCompile("append c (x = 1)").ok());

  StatementCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 2);

  // `a` survived (hit), `b` was evicted (miss).
  ASSERT_TRUE(cache.GetOrCompile("append a (x = 1)").ok());
  EXPECT_EQ(cache.stats().hits, 2);
  ASSERT_TRUE(cache.GetOrCompile("append b (x = 1)").ok());
  EXPECT_EQ(cache.stats().evictions, 2);  // b's return evicted c
}

TEST(StatementCache, InvalidateTablesIsScoped) {
  StatementCache cache(8);
  ASSERT_TRUE(cache.GetOrCompile("retrieve (e.x) from e in events").ok());
  ASSERT_TRUE(cache.GetOrCompile("append events (x = 1)").ok());
  ASSERT_TRUE(cache.GetOrCompile("retrieve (o.x) from o in other").ok());
  ASSERT_EQ(cache.stats().size, 3);

  cache.InvalidateTables({"events"});
  StatementCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(stats.invalidated_entries, 2);
  EXPECT_EQ(stats.size, 1);  // only the `other` retrieve survives

  // The empty table list is the full flush (drop rule: scope unknown).
  cache.InvalidateTables({});
  stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 2);
  EXPECT_EQ(stats.invalidated_entries, 3);
  EXPECT_EQ(stats.size, 0);
}

TEST(StatementCache, ZeroCapacityDisablesCaching) {
  StatementCache cache(0);
  auto a = cache.GetOrCompile("append t (x = 1)");
  ASSERT_TRUE(a.ok());
  auto b = cache.GetOrCompile("append t (x = 1)");
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());  // compiled fresh each time
  StatementCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.size, 0);
}

TEST(EngineStatementCache, RepeatedExecuteHitsTheCache) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table t (x int)").ok());

  ASSERT_TRUE(session->Execute("append t (x = 1)").ok());
  const int64_t parses_before = ParseCount();
  const StatementCache::Stats before = engine->StatementCacheStats();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session->Execute("append t (x = 1)").ok());
  }
  // Twenty re-executions of cached text: zero parses, twenty hits.
  EXPECT_EQ(ParseCount(), parses_before);
  const StatementCache::Stats after = engine->StatementCacheStats();
  EXPECT_EQ(after.hits - before.hits, 20);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(EngineStatementCache, PreparedHandleCrossesSessions) {
  auto engine = Engine::Create().value();
  auto s1 = engine->CreateSession();
  auto s2 = engine->CreateSession();
  ASSERT_TRUE(s1->Execute("create table t (x int)").ok());

  auto prepared = s1->Prepare("append t (x = 2)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->param_count(), 0);

  const int64_t parses_before = ParseCount();
  ASSERT_TRUE(prepared->Execute().ok());
  ASSERT_TRUE(prepared->Execute().ok());
  // The deprecated raw-handle path still runs, from any session.
  ASSERT_TRUE(s2->Execute(prepared->compiled()).ok());
  EXPECT_EQ(ParseCount(), parses_before);  // handle execution never parses

  // Preparing the same text from the other session returns the shared
  // cache entry, not a second compilation.
  auto again = s2->Prepare("append t (x = 2)");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(prepared->compiled().get(), again->compiled().get());

  // Invalid handles and unpreparable (session-verb) inputs fail as Status.
  EXPECT_FALSE(s1->Execute(CompiledStatementPtr{}).ok());
  EXPECT_FALSE(PreparedStatement{}.Execute().ok());
  EXPECT_FALSE(s1->Prepare("advance to 10").ok());
}

TEST(EngineStatementCache, PlaceholderShapesShareOneEntry) {
  // The whole point of $n in the cache key: value-only variation is ONE
  // shape — the cache holds one entry no matter how many distinct values
  // execute through it.
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table t (x int)").ok());

  auto insert = session->Prepare("append t (x = $1)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  const StatementCache::Stats before = engine->StatementCacheStats();
  const int64_t parses_before = ParseCount();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(insert->Execute({Value::Int(i)}).ok());
  }
  EXPECT_EQ(ParseCount(), parses_before);
  const StatementCache::Stats after = engine->StatementCacheStats();
  EXPECT_EQ(after.size, before.size);  // no per-value entries
  EXPECT_EQ(after.misses, before.misses);

  // And the entry listing shows the one parameterized shape.
  bool found = false;
  for (const auto& entry : engine->StatementCacheEntries()) {
    if (entry.normalized_text.find("$1") != std::string::npos) {
      found = true;
      EXPECT_EQ(entry.compiled->param_count, 1);
    }
  }
  EXPECT_TRUE(found);

  auto rows = session->Execute("retrieve (t.x) from t in t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 200u);
}

TEST(EngineStatementCache, DdlInvalidatesAffectedEntries) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table t (x int)").ok());
  ASSERT_TRUE(session->Execute("create table keep (x int)").ok());
  ASSERT_TRUE(session->Execute("append t (x = 1)").ok());
  ASSERT_TRUE(session->Execute("retrieve (k.x) from k in keep").ok());

  const StatementCache::Stats before = engine->StatementCacheStats();
  ASSERT_TRUE(session->Execute("drop table t").ok());
  const StatementCache::Stats after = engine->StatementCacheStats();
  EXPECT_GT(after.invalidations, before.invalidations);
  // The append on t went; re-running it misses (and now fails: no table).
  EXPECT_FALSE(session->Execute("append t (x = 1)").ok());
  EXPECT_GT(engine->StatementCacheStats().misses, after.misses);

  // The statement on the untouched table is still a hit.
  const StatementCache::Stats keep_before = engine->StatementCacheStats();
  ASSERT_TRUE(session->Execute("retrieve (k.x) from k in keep").ok());
  EXPECT_EQ(engine->StatementCacheStats().hits - keep_before.hits, 1);
}

TEST(EngineStatementCache, EventRuleFiringsNeverParse) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table t (x int)").ok());
  ASSERT_TRUE(session->Execute("create table log (v int)").ok());
  ASSERT_TRUE(session
                  ->Execute("define rule mirror on append to t do "
                            "append log (v = NEW.x)")
                  .ok());

  ASSERT_TRUE(session->Execute("append t (x = 1)").ok());  // warm the cache
  const int64_t parses_before = ParseCount();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(session->Execute("append t (x = 1)").ok());
  }
  // Neither the trigger statement (cached) nor the rule action (compiled
  // at definition) parses on the firing path.
  EXPECT_EQ(ParseCount(), parses_before);
  auto rows = session->Execute("retrieve (l.v) from l in log");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 11u);
}

TEST(EngineStatementCache, TemporalRuleFiringsNeverParse) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table fires (day int)").ok());
  ASSERT_TRUE(session
                  ->Execute("declare rule daily on DAYS do "
                            "append fires (day = fire_day())")
                  .ok());

  const int64_t parses_before = ParseCount();
  ASSERT_TRUE(engine->AdvanceTo(30).ok());  // 29 DBCRON firings
  EXPECT_EQ(ParseCount(), parses_before);   // all through compiled handles
  auto rows = session->Execute("retrieve (f.day) from f in fires");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 29u);
}

TEST(EngineStatementCache, TemporalRuleBindsFireDayAsParameter) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table fires (day int)").ok());
  // $1 in a rule action binds the firing day — same values fire_day()
  // would return, with one compiled shape across every firing.
  ASSERT_TRUE(session
                  ->Execute("declare rule daily on DAYS do "
                            "append fires (day = $1)")
                  .ok());
  const int64_t parses_before = ParseCount();
  ASSERT_TRUE(engine->AdvanceTo(5).ok());
  EXPECT_EQ(ParseCount(), parses_before);
  auto rows = session->Execute(
      "retrieve (f.day) from f in fires order by day");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 4u);  // fired on days 2..5
  EXPECT_EQ(rows->rows.front()[0].AsInt().value(), 2);
  EXPECT_EQ(rows->rows.back()[0].AsInt().value(), 5);

  // $2 and up have nothing to bind to: rejected at declaration.
  auto bad = session->Execute(
      "declare rule broken on DAYS do append fires (day = $2)");
  EXPECT_FALSE(bad.ok());
}

TEST(EngineStatementCache, TemporalRuleDeclarationFailsFastOnBadAction) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  // The action never parses: rejected at declaration, not at first firing.
  auto bad = session->Execute("declare rule broken on DAYS do append ((((");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("broken"), std::string::npos);
  // Nothing was armed; advancing fires nothing and fails nothing.
  ASSERT_TRUE(engine->AdvanceTo(10).ok());
  EXPECT_EQ(engine->CronStats().fires, 0);
}

TEST(EngineStatementCache, ExplainAndProfileUseOneCompilation) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table t (x int)").ok());
  ASSERT_TRUE(session->Execute("append t (x = 1)").ok());

  // First explain: one parse of the outer text + one compile of the inner
  // statement.  Plan rendering and the PROFILE timed run reuse the inner
  // handle — a third parse would be the old double-parse bug.
  int64_t before = ParseCount();
  auto profile = session->Execute("profile retrieve (t.x) from t in t");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(ParseCount() - before, 2);

  // Second time around the whole explain is a cache hit: zero parses.
  before = ParseCount();
  auto cached = session->Execute("profile retrieve (t.x) from t in t");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(ParseCount(), before);
}

TEST(EngineStatementCache, CacheCapacityZeroStillExecutes) {
  EngineOptions opts;
  opts.stmt_cache_entries = 0;
  auto engine = Engine::Create(opts).value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table t (x int)").ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session->Execute("append t (x = 1)").ok());
  }
  const StatementCache::Stats stats = engine->StatementCacheStats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.size, 0);
  auto rows = session->Execute("retrieve (t.x) from t in t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);
}

}  // namespace
}  // namespace caldb
