// End-to-end telemetry: one logical operation = one connected span tree
// across the pool boundary (ExecuteAsync) and on the DBCRON daemon thread
// (AdvanceTo), audit records for temporal and event rules with
// scheduled-vs-actual days and triggering statement/session, the
// slow-statement log, and the audit ring's bound under sustained firing.
//
// These tests read the process-global tracer / audit trail / logger, so
// each clears them first; gtest runs tests in one binary sequentially.

#include "caldb.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace caldb {
namespace {

std::vector<obs::SpanRecord> SpansNamed(
    const std::vector<obs::SpanRecord>& spans, const std::string& name) {
  std::vector<obs::SpanRecord> out;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

TEST(EngineTelemetryTest, AsyncStatementStaysOneSpanTreeAcrossPool) {
  auto engine = Engine::Create().value();
  obs::Trace().Clear();

  uint64_t root_id = 0;
  uint32_t submit_tid = 0;
  {
    obs::Tracer::Span root = obs::Trace().StartSpan("test.submit");
    root_id = root.id();
    submit_tid = obs::CurrentThreadId();
    auto future = engine->ExecuteAsync("create table a (x int)");
    ASSERT_TRUE(future.get().ok());
  }

  std::vector<obs::SpanRecord> spans = obs::Trace().Snapshot();
  std::vector<obs::SpanRecord> executes = SpansNamed(spans, "engine.execute");
  ASSERT_EQ(executes.size(), 1u);
  // The worker-side span parents to the submitter's root: one tree, not
  // an orphan per thread.
  EXPECT_EQ(executes[0].parent_id, root_id);
  EXPECT_NE(executes[0].tid, submit_tid);
}

TEST(EngineTelemetryTest, PooledWorkersDoNotInheritStaleParents) {
  auto engine = Engine::Create().value();
  obs::Trace().Clear();
  // No span is open at submit time, so the worker must record a root
  // span — even though earlier pooled tasks traced on the same workers.
  auto future = engine->ExecuteAsync("create table b (x int)");
  ASSERT_TRUE(future.get().ok());
  std::vector<obs::SpanRecord> executes =
      SpansNamed(obs::Trace().Snapshot(), "engine.execute");
  ASSERT_EQ(executes.size(), 1u);
  EXPECT_EQ(executes[0].parent_id, 0u);
}

TEST(EngineTelemetryTest, DbcronFiringIsOneTreeWithAuditRecord) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table fires (day int)").ok());
  ASSERT_TRUE(session
                  ->Execute("declare rule daily on DAYS:during:WEEKS do "
                            "append fires (day = fire_day())")
                  .ok());
  obs::Trace().Clear();
  obs::Audit().Clear();

  ASSERT_TRUE(engine->AdvanceTo(5).ok());

  // Span tree: every cron.fire (and cron.probe) parents to a cron.advance
  // root on the daemon thread.
  std::vector<obs::SpanRecord> spans = obs::Trace().Snapshot();
  std::map<uint64_t, std::string> by_id;
  for (const obs::SpanRecord& s : spans) by_id[s.id] = s.name;
  std::vector<obs::SpanRecord> fires = SpansNamed(spans, "cron.fire");
  ASSERT_FALSE(fires.empty());
  for (const obs::SpanRecord& fire : fires) {
    ASSERT_NE(fire.parent_id, 0u);
    EXPECT_EQ(by_id[fire.parent_id], "cron.advance");
  }
  for (const obs::SpanRecord& probe : SpansNamed(spans, "cron.probe")) {
    EXPECT_EQ(by_id[probe.parent_id], "cron.advance");
  }

  // Audit: one dbcron record per firing, on time (fired == scheduled).
  std::vector<obs::AuditRecord> records = obs::Audit().Snapshot();
  ASSERT_FALSE(records.empty());
  int64_t fired_days = 0;
  for (const obs::AuditRecord& r : records) {
    EXPECT_EQ(r.source, obs::AuditRecord::Source::kDbCron);
    EXPECT_EQ(r.rule, "daily");
    EXPECT_EQ(r.outcome, obs::AuditRecord::Outcome::kOk);
    EXPECT_EQ(r.trigger, "dbcron");
    EXPECT_EQ(r.fired_day, r.scheduled_day);
    EXPECT_GE(r.duration_ns, 0);
    ++fired_days;
  }
  // Days 2..5 fire (first firing strictly after declaration day 1).
  EXPECT_EQ(fired_days, 4);
  // The trail agrees with the cron counters.
  EXPECT_EQ(static_cast<int64_t>(records.size()),
            engine->CronStats().fires);
}

TEST(EngineTelemetryTest, LateDeclaredRuleAuditsCatchUpLag) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table fires (day int)").ok());
  // Advance first: DBCRON has already probed the window [8, 14] when the
  // rule is declared on day 10, so its day-11 firing is only discovered
  // by the day-15 probe and fires late.
  ASSERT_TRUE(engine->AdvanceTo(10).ok());
  ASSERT_TRUE(session
                  ->Execute("declare rule late on DAYS:during:WEEKS do "
                            "append fires (day = fire_day())")
                  .ok());
  obs::Audit().Clear();
  ASSERT_TRUE(engine->AdvanceTo(16).ok());

  std::vector<obs::AuditRecord> records = obs::Audit().Snapshot();
  ASSERT_FALSE(records.empty());
  const obs::AuditRecord& first = records.front();
  EXPECT_EQ(first.scheduled_day, 11);
  EXPECT_GT(first.fired_day, first.scheduled_day);
  // The human rendering surfaces the lag.
  EXPECT_NE(first.ToString().find("late"), std::string::npos)
      << first.ToString();
}

TEST(EngineTelemetryTest, EventRuleAuditCarriesTriggeringStatement) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table alerts (day int)").ok());
  ASSERT_TRUE(session->Execute("create table audit_rows (day int)").ok());
  ASSERT_TRUE(session
                  ->Execute("define rule mirror on append to alerts do "
                            "append audit_rows (day = NEW.day)")
                  .ok());
  obs::Audit().Clear();
  const std::string trigger_stmt = "append alerts (day = 42)";
  ASSERT_TRUE(session->Execute(trigger_stmt).ok());

  std::vector<obs::AuditRecord> records = obs::Audit().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].source, obs::AuditRecord::Source::kStatement);
  EXPECT_EQ(records[0].rule, "mirror");
  EXPECT_EQ(records[0].outcome, obs::AuditRecord::Outcome::kOk);
  EXPECT_EQ(records[0].trigger, trigger_stmt);
  EXPECT_EQ(records[0].session_id, session->id());
}

TEST(EngineTelemetryTest, SlowStatementsAreLoggedWithText) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table slow (x int)").ok());
  obs::Log().Clear();
  const int64_t saved = Database::SlowStatementThresholdNs();
  Database::SetSlowStatementThresholdNs(1);  // everything is slow now
  const std::string stmt = "retrieve (s.x) from s in slow";
  ASSERT_TRUE(session->Execute(stmt).ok());
  Database::SetSlowStatementThresholdNs(saved);

  bool found = false;
  for (const obs::LogRecord& r : obs::Log().Snapshot()) {
    if (r.event != "db.slow_statement") continue;
    found = true;
    EXPECT_EQ(r.level, obs::LogLevel::kWarn);
    EXPECT_EQ(r.session_id, session->id());
    // Both the context statement and the logged stmt field carry the text.
    EXPECT_EQ(r.statement, stmt);
    EXPECT_NE(obs::RenderLogLine(r).find("retrieve (s.x)"),
              std::string::npos);
  }
  EXPECT_TRUE(found);
  EXPECT_GE(
      obs::Metrics().counter("caldb.db.slow_statements")->value(), 1);
}

TEST(EngineTelemetryTest, ZeroThresholdDisablesSlowStatementLog) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table quiet (x int)").ok());
  obs::Log().Clear();
  const int64_t saved = Database::SlowStatementThresholdNs();
  Database::SetSlowStatementThresholdNs(0);
  ASSERT_TRUE(session->Execute("retrieve (q.x) from q in quiet").ok());
  Database::SetSlowStatementThresholdNs(saved);
  for (const obs::LogRecord& r : obs::Log().Snapshot()) {
    EXPECT_NE(r.event, "db.slow_statement");
  }
}

TEST(EngineTelemetryTest, AuditRingStaysBoundedUnderSustainedFiring) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table t (x int)").ok());
  ASSERT_TRUE(session
                  ->Execute("declare rule everyday on DAYS:during:WEEKS do "
                            "append t (x = fire_day())")
                  .ok());
  obs::Audit().Clear();
  const int64_t target =
      static_cast<int64_t>(obs::Audit().capacity()) + 100;
  ASSERT_TRUE(engine->AdvanceTo(target + 2).ok());

  // More firings than the ring holds: the ring stays at capacity, the
  // running total keeps counting, and the survivors are the most recent.
  EXPECT_GT(obs::Audit().total(),
            static_cast<int64_t>(obs::Audit().capacity()));
  std::vector<obs::AuditRecord> records = obs::Audit().Snapshot();
  ASSERT_EQ(records.size(), obs::Audit().capacity());
  EXPECT_GT(records.front().seq, 1);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
  }
  EXPECT_EQ(records.back().fired_day, target + 2);
}

}  // namespace
}  // namespace caldb
