// Concurrency stress tests for caldb::Engine / caldb::Session.
//
// These are the tests tools/check.sh runs under -DCALDB_SANITIZE=thread:
// N writer + M reader sessions hammer tables and calendar definitions
// while DBCRON advances the virtual clock on its background thread.  The
// assertions are serializable-visible invariants — facts any legal
// interleaving of exclusively-locked writes and shared-locked reads must
// preserve — plus clean shutdown.

#include "caldb.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace caldb {
namespace {

Result<QueryResult> MustOk(Result<QueryResult> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result;
}

int64_t RowCount(const Result<QueryResult>& result) {
  return result.ok() ? static_cast<int64_t>(result->rows.size()) : -1;
}

TEST(EngineFacadeTest, ExecuteReachesEveryVerb) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();

  // Database DDL/DML/query.
  EXPECT_TRUE(session->Execute("create table t (x int)").ok());
  EXPECT_TRUE(session->Execute("append t (x = 7)").ok());
  auto rows = MustOk(session->Execute("retrieve (t.x) from t in t"));
  ASSERT_EQ(RowCount(rows), 1);

  // Calendar script evaluation and catalog DDL.
  auto cal = MustOk(session->Execute("cal [2]/DAYS:during:WEEKS"));
  EXPECT_NE(cal->message.find("("), std::string::npos);
  EXPECT_TRUE(
      session->Execute("define calendar Tu as [2]/DAYS:during:WEEKS").ok());
  EXPECT_TRUE(session->Execute("cal Tu").ok());

  // EXPLAIN both layers, uniformly through Execute.
  auto explain_db =
      MustOk(session->Execute("explain retrieve (t.x) from t in t"));
  EXPECT_FALSE(explain_db->message.empty());
  auto explain_cal = MustOk(session->Execute("explain cal Tu"));
  EXPECT_FALSE(explain_cal->message.empty());

  // Temporal rules and the clock.
  EXPECT_TRUE(session
                  ->Execute("declare rule r1 on Tu do "
                            "append t (x = fire_day())")
                  .ok());
  EXPECT_TRUE(session->Execute("advance to 1993-01-20").ok());
  auto after = MustOk(session->Execute("retrieve (t.x) from t in t"));
  // Jan 5, 12, 19 1993 are Tuesdays: three firings on top of the seed row.
  EXPECT_EQ(RowCount(after), 4);
  EXPECT_TRUE(session->Execute("drop temporal rule r1").ok());

  // Errors come back as Status, never as an exception.
  EXPECT_FALSE(session->Execute("retrieve (z.x) from z in zebra").ok());
  EXPECT_FALSE(session->Execute("cal NOT_A_CALENDAR").ok());
  EXPECT_FALSE(session->Execute("define calendar broken as ((((").ok());
  EXPECT_FALSE(session->Execute("advance to 0").ok());
}

TEST(EngineFacadeTest, StopIsIdempotentAndFailsFurtherAdvances) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  EXPECT_TRUE(session->Execute("advance to 10").ok());
  EXPECT_TRUE(engine->Stop().ok());
  EXPECT_TRUE(engine->Stop().ok());
  EXPECT_FALSE(engine->AdvanceTo(20).ok());
  auto f = engine->ExecuteAsync("retrieve (t.x) from t in t");
  EXPECT_FALSE(f.get().ok());
  // Synchronous Execute keeps working after Stop (single-threaded mode).
  EXPECT_TRUE(session->Execute("create table t (x int)").ok());
}

TEST(EngineFacadeTest, ExecuteBatchPreservesOrder) {
  auto engine = Engine::Create().value();
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Execute("create table seq (x int)").ok());
  std::vector<std::string> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back("append seq (x = " + std::to_string(i) + ")");
  }
  batch.push_back("retrieve (s.x) from s in seq");
  auto results = engine->ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << results[i].status().ToString();
  }
  // The final retrieve was *submitted* after every append, but the pool
  // runs several tasks at once and the db lock is not FIFO-fair, so it
  // may overtake appends still waiting for the write lock: it sees some
  // subset of the 32, never more.
  EXPECT_LE(RowCount(results.back()), 32);
  // Once ExecuteBatch has returned, every append's future has resolved,
  // so a follow-up retrieve sees all 32.
  auto after = engine->ExecuteBatch({"retrieve (s.x) from s in seq"});
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(RowCount(after.front()), 32);
}

// N appenders + M readers on one table, while DBCRON advances and a rule
// fires into a second table.  Invariants:
//  - each reader's observed row count never decreases (appends only add);
//  - every append is visible at the end;
//  - rows written by rule firings equal DBCRON's own fire count.
TEST(EngineConcurrencyTest, WritersReadersAndCronInterleave) {
  EngineOptions opts;
  opts.pool_threads = 4;
  auto engine = Engine::Create(opts).value();
  auto setup = engine->CreateSession();
  ASSERT_TRUE(setup->Execute("create table events (writer int, seq int)").ok());
  ASSERT_TRUE(setup->Execute("create table fires (day int)").ok());
  ASSERT_TRUE(setup
                  ->Execute("declare rule daily on DAYS do "
                            "append fires (day = fire_day())")
                  .ok());

  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kAppendsPerWriter = 200;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto session = engine->CreateSession();
      for (int i = 0; i < kAppendsPerWriter; ++i) {
        auto r = session->Execute("append events (writer = " +
                                  std::to_string(w) +
                                  ", seq = " + std::to_string(i) + ")");
        if (!r.ok()) failed.store(true);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      auto session = engine->CreateSession();
      int64_t last_seen = 0;
      for (int i = 0; i < 100; ++i) {
        auto rows = session->Execute("retrieve (e.seq) from e in events");
        if (!rows.ok()) {
          failed.store(true);
          continue;
        }
        int64_t n = static_cast<int64_t>(rows.value().rows.size());
        if (n < last_seen) failed.store(true);  // time ran backwards
        last_seen = n;
      }
    });
  }
  // The clock advances concurrently with the traffic; firings serialize
  // against the writes on the exclusive lock.
  threads.emplace_back([&] {
    for (TimePoint day = 10; day <= 120; day += 10) {
      if (!engine->AdvanceTo(day).ok()) failed.store(true);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  auto events = MustOk(setup->Execute("retrieve (e.seq) from e in events"));
  EXPECT_EQ(RowCount(events), kWriters * kAppendsPerWriter);
  auto fires = MustOk(setup->Execute("retrieve (f.day) from f in fires"));
  EXPECT_EQ(RowCount(fires), static_cast<int64_t>(engine->CronStats().fires));
  EXPECT_EQ(engine->Now(), 120);
  EXPECT_TRUE(engine->Stop().ok());
}

// Calendar DDL racing calendar evaluation: writers define fresh derived
// calendars; readers evaluate both the stable seed calendar and whatever
// definitions have landed.  Afterwards every definition must resolve.
TEST(EngineConcurrencyTest, CatalogDefinesRaceEvaluations) {
  auto engine = Engine::Create().value();
  {
    auto setup = engine->CreateSession();
    ASSERT_TRUE(
        setup->Execute("define calendar Base as [2]/DAYS:during:WEEKS").ok());
  }

  constexpr int kDefiners = 3;
  constexpr int kPerDefiner = 25;
  constexpr int kEvaluators = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int d = 0; d < kDefiners; ++d) {
    threads.emplace_back([&, d] {
      auto session = engine->CreateSession();
      for (int i = 0; i < kPerDefiner; ++i) {
        std::string name =
            "Cal_" + std::to_string(d) + "_" + std::to_string(i);
        // Derived both from primitives and from Base, so definition
        // compiles resolve concurrently with other defines.
        auto st = session->Execute("define calendar " + name +
                                   " as Base + [" + std::to_string(i + 1) +
                                   "]/DAYS:during:MONTHS");
        if (!st.ok()) failed.store(true);
      }
    });
  }
  for (int e = 0; e < kEvaluators; ++e) {
    threads.emplace_back([&] {
      auto session = engine->CreateSession();
      for (int i = 0; i < 120; ++i) {
        auto v = session->Execute("cal Base:intersects:MONTHS");
        if (!v.ok()) failed.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  auto session = engine->CreateSession();
  for (int d = 0; d < kDefiners; ++d) {
    for (int i = 0; i < kPerDefiner; ++i) {
      std::string name = "Cal_" + std::to_string(d) + "_" + std::to_string(i);
      EXPECT_TRUE(session->Execute("cal " + name).ok()) << name;
    }
  }
}

// The pool path: a read-mostly workload issued via ExecuteAsync from many
// client threads at once, racing a writer.  Checks the futures all
// resolve and the final state is exact.
TEST(EngineConcurrencyTest, AsyncPoolExecution) {
  EngineOptions opts;
  opts.pool_threads = 4;
  auto engine = Engine::Create(opts).value();
  auto setup = engine->CreateSession();
  ASSERT_TRUE(setup->Execute("create table kv (k int, v int)").ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(setup
                    ->Execute("append kv (k = " + std::to_string(i) +
                              ", v = " + std::to_string(i * i) + ")")
                    .ok());
  }

  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(256);
  for (int i = 0; i < 256; ++i) {
    if (i % 16 == 0) {
      futures.push_back(engine->ExecuteAsync(
          "append kv (k = " + std::to_string(100 + i) + ", v = 0)"));
    } else {
      futures.push_back(
          engine->ExecuteAsync("retrieve (e.k, e.v) from e in kv"));
    }
  }
  for (auto& f : futures) {
    auto r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  auto final_rows = MustOk(setup->Execute("retrieve (e.k) from e in kv"));
  EXPECT_EQ(RowCount(final_rows), 16 + 256 / 16);
}

// Many sessions hammering the same statement texts while a DDL thread
// creates and drops tables: GetOrCompile hits race InvalidateTables and
// racing-duplicate compiles race each other's insert.  Run under
// -DCALDB_SANITIZE=thread this is the statement cache's race test; the
// visible invariants are that every execution still succeeds (or fails
// only because its table is legitimately gone) and the accounting adds
// up.
TEST(EngineConcurrencyTest, StatementCacheSharingRacesInvalidation) {
  EngineOptions opts;
  opts.stmt_cache_entries = 64;
  auto engine = Engine::Create(opts).value();
  {
    auto setup = engine->CreateSession();
    ASSERT_TRUE(setup->Execute("create table stable (x int)").ok());
    ASSERT_TRUE(setup->Execute("append stable (x = 1)").ok());
  }

  constexpr int kExecutors = 4;
  constexpr int kIterations = 150;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Executors share a handful of statement texts, so they constantly
  // collide on the same cache entries (and re-insert them after the DDL
  // thread's invalidations).
  for (int e = 0; e < kExecutors; ++e) {
    threads.emplace_back([&, e] {
      auto session = engine->CreateSession();
      for (int i = 0; i < kIterations; ++i) {
        auto rows = session->Execute("retrieve (s.x) from s in stable");
        if (!rows.ok() || rows->rows.empty()) failed.store(true);
        if (!session->Execute("append stable (x = " + std::to_string(e) + ")")
                 .ok()) {
          failed.store(true);
        }
      }
    });
  }
  // The DDL thread churns a scratch table: every create/drop invalidates
  // cache entries referencing it while the executors' statements on
  // `stable` must keep their entries.
  threads.emplace_back([&] {
    auto session = engine->CreateSession();
    for (int i = 0; i < 40; ++i) {
      if (!session->Execute("create table scratch (y int)").ok()) {
        failed.store(true);
      }
      (void)session->Execute("append scratch (y = 1)");
      if (!session->Execute("drop table scratch").ok()) failed.store(true);
    }
  });
  // Prepared handles stay valid across concurrent invalidations: the
  // handle is immutable; invalidation only drops the cache's reference.
  threads.emplace_back([&] {
    auto session = engine->CreateSession();
    auto prepared = session->Prepare("retrieve (s.x) from s in stable");
    if (!prepared.ok()) {
      failed.store(true);
      return;
    }
    for (int i = 0; i < kIterations; ++i) {
      auto rows = prepared->Execute();
      if (!rows.ok() || rows->rows.empty()) failed.store(true);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  StatementCache::Stats stats = engine->StatementCacheStats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.invalidations, 0);
  EXPECT_LE(stats.size, stats.capacity);
  auto session = engine->CreateSession();
  auto final_rows = MustOk(session->Execute("retrieve (s.x) from s in stable"));
  EXPECT_EQ(RowCount(final_rows), 1 + kExecutors * kIterations);
  EXPECT_TRUE(engine->Stop().ok());
}

// The per-table lock manager's stress test (PR 10): readers on table A
// must make progress WHILE a writer holds table B — the property the old
// single-mutex engine could not provide — and fallback statements
// (retrieve-into, DDL, rule firings) race both without breaking any
// serializable-visible invariant.
//
// Progress is witnessed without timing assumptions: the writer on B runs
// ONE long statement (a full-scan replace over a large table) and flags
// the interval around it; readers on A count retrieves completed while
// the flag was up for the whole retrieve.  Under per-table locking those
// retrieves only share B's intent layer, so across many rounds at least
// one must land strictly inside a replace — under a single global mutex,
// none ever could.
TEST(EngineConcurrencyTest, DisjointTableReadersProgressUnderWriter) {
  auto engine = Engine::Create().value();
  {
    auto setup = engine->CreateSession();
    ASSERT_TRUE(setup->Execute("create table a_small (x int)").ok());
    ASSERT_TRUE(setup->Execute("append a_small (x = 1)").ok());
    ASSERT_TRUE(setup->Execute("create table b_big (v int)").ok());
    // Big enough that one full-scan replace takes visible wall time.
    for (int i = 0; i < 4000; ++i) {
      ASSERT_TRUE(
          setup->Execute("append b_big (v = " + std::to_string(i) + ")").ok());
    }
  }

  constexpr int kRounds = 60;
  std::atomic<bool> writer_busy{false};
  std::atomic<bool> done{false};
  std::atomic<int64_t> overlapped_reads{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    auto session = engine->CreateSession();
    for (int round = 0; round < kRounds && !failed.load(); ++round) {
      writer_busy.store(true, std::memory_order_release);
      auto r = session->Execute("replace b in b_big (v = b.v + 1)");
      writer_busy.store(false, std::memory_order_release);
      if (!r.ok() || r->affected != 4000) failed.store(true);
    }
    done.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    auto session = engine->CreateSession();
    while (!done.load(std::memory_order_acquire)) {
      const bool busy_before = writer_busy.load(std::memory_order_acquire);
      auto rows = session->Execute("retrieve (s.x) from s in a_small");
      const bool busy_after = writer_busy.load(std::memory_order_acquire);
      if (!rows.ok() || rows->rows.size() != 1) {
        failed.store(true);
        return;
      }
      // Only count a retrieve bracketed by the same replace: it provably
      // ran while the writer held b_big exclusively.
      if (busy_before && busy_after) {
        overlapped_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Fallback statements race the footprint traffic from a third thread:
  // retrieve-into (creates a table), DDL, and a temporal-rule firing all
  // take the global exclusive path and must interleave cleanly.
  std::thread fallback([&] {
    auto session = engine->CreateSession();
    if (!session
             ->Execute("declare rule tick on DAYS do "
                       "append a_small (x = 0)")
             .ok()) {
      failed.store(true);
      return;
    }
    for (int i = 0; !done.load(std::memory_order_acquire) && i < 1000; ++i) {
      std::string scratch = "scratch_" + std::to_string(i);
      if (!session
               ->Execute("retrieve into " + scratch +
                         " (b.v) from b in b_big where b.v < 0")
               .ok()) {
        failed.store(true);
      }
      if (!session->Execute("drop table " + scratch).ok()) failed.store(true);
    }
    if (!session->Execute("drop temporal rule tick").ok()) failed.store(true);
  });
  writer.join();
  reader.join();
  fallback.join();
  EXPECT_FALSE(failed.load());
  // The rule firing appended into a_small under the fallback path while
  // readers held it shared — but only via AdvanceTo, which this test
  // never calls, so a_small still has exactly its seed row; the invariant
  // the reader checked every iteration held throughout.  The progress
  // property itself:
  EXPECT_GT(overlapped_reads.load(), 0)
      << "no retrieve on a_small completed inside a replace of b_big: "
         "disjoint-table readers are being serialized against the writer";
  EXPECT_TRUE(engine->Stop().ok());
}

// Disjoint-table writers: N threads each own a private table and hammer
// appends.  Exact final counts show per-table exclusive locks lose no
// writes; a concurrent whole-database reader (WithDbRead — the global
// exclusive path) sees consistent totals while they run.
TEST(EngineConcurrencyTest, DisjointTableWritersKeepExactCounts) {
  auto engine = Engine::Create().value();
  constexpr int kWriters = 4;
  constexpr int kAppends = 300;
  {
    auto setup = engine->CreateSession();
    for (int w = 0; w < kWriters; ++w) {
      ASSERT_TRUE(
          setup->Execute("create table own_" + std::to_string(w) + " (x int)")
              .ok());
    }
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto session = engine->CreateSession();
      const std::string stmt =
          "append own_" + std::to_string(w) + " (x = 1)";
      for (int i = 0; i < kAppends; ++i) {
        if (!session->Execute(stmt).ok()) failed.store(true);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      engine->WithDbRead([&](const Database& db) {
        for (int w = 0; w < kWriters; ++w) {
          auto table = db.GetTable("own_" + std::to_string(w));
          if (!table.ok()) failed.store(true);
        }
        return 0;
      });
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  auto session = engine->CreateSession();
  for (int w = 0; w < kWriters; ++w) {
    auto rows = MustOk(
        session->Execute("retrieve (t.x) from t in own_" + std::to_string(w)));
    EXPECT_EQ(RowCount(rows), kAppends) << "own_" << w;
  }
  EXPECT_TRUE(engine->Stop().ok());
}

// Destruction with traffic in flight: Engine::~Engine stops DBCRON and
// drains the pool without losing already-queued work or deadlocking.
TEST(EngineConcurrencyTest, CleanShutdownUnderLoad) {
  for (int round = 0; round < 3; ++round) {
    EngineOptions opts;
    opts.pool_threads = 3;
    auto engine = Engine::Create(opts).value();
    auto session = engine->CreateSession();
    ASSERT_TRUE(session->Execute("create table t (x int)").ok());
    std::vector<std::future<Result<QueryResult>>> futures;
    for (int i = 0; i < 64; ++i) {
      futures.push_back(engine->ExecuteAsync("append t (x = 1)"));
    }
    std::thread advancer([&] { (void)engine->AdvanceTo(50); });
    EXPECT_TRUE(engine->Stop().ok());
    advancer.join();
    int64_t succeeded = 0;
    for (auto& f : futures) {
      if (f.get().ok()) ++succeeded;
    }
    // Queued-before-shutdown tasks ran; tasks rejected after the cutoff
    // failed cleanly.  Nothing hangs, nothing crashes.
    auto rows = session->Execute("retrieve (t.x) from t in t");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(static_cast<int64_t>(rows->rows.size()), succeeded);
  }
}

}  // namespace
}  // namespace caldb
