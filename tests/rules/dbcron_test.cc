// FIG-4: the temporal-rule implementation end to end — declare rule →
// RULE-INFO / RULE-TIME rows → DBCRON probes → firings at the right
// virtual time points.

#include "rules/dbcron.h"

#include <gtest/gtest.h>

#include "catalog/calendar_functions.h"

namespace caldb {
namespace {

class DbCronTest : public ::testing::Test {
 protected:
  DbCronTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {
    auto manager = TemporalRuleManager::Create(&catalog_, &db_);
    EXPECT_TRUE(manager.ok()) << manager.status();
    rules_ = std::move(manager).value();
  }

  CalendarCatalog catalog_;
  Database db_;
  std::unique_ptr<TemporalRuleManager> rules_;
};

TEST_F(DbCronTest, DeclareStoresRuleInfoAndRuleTime) {
  // "On Every Tuesday do Proc_X" ≡ {[2]/DAYS:during:WEEKS} do Proc_X.
  TemporalAction action;
  action.callback = [](TimePoint) { return Status::OK(); };
  auto id = rules_->DeclareRule("every_tuesday", "[2]/DAYS:during:WEEKS",
                                std::move(action), /*now_day=*/1);
  ASSERT_TRUE(id.ok()) << id.status();

  auto info = db_.Execute("retrieve (r.name, r.expression) from r in RULE_INFO");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->rows.size(), 1u);
  EXPECT_EQ(info->rows[0][0].AsText().value(), "every_tuesday");
  EXPECT_EQ(info->rows[0][1].AsText().value(), "[2]/DAYS:during:WEEKS");

  auto time_rows = db_.Execute("retrieve (t.next_fire) from t in RULE_TIME");
  ASSERT_TRUE(time_rows.ok());
  ASSERT_EQ(time_rows->rows.size(), 1u);
  // Jan 1 1993 is a Friday; the next Tuesday is Jan 5 (day 5).
  EXPECT_EQ(time_rows->rows[0][0].AsInt().value(), 5);
}

TEST_F(DbCronTest, TuesdayRuleFiresEveryTuesday) {
  std::vector<TimePoint> fires;
  TemporalAction action;
  action.callback = [&fires](TimePoint day) {
    fires.push_back(day);
    return Status::OK();
  };
  ASSERT_TRUE(rules_
                  ->DeclareRule("every_tuesday", "[2]/DAYS:during:WEEKS",
                                std::move(action), 1)
                  .ok());

  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, /*probe_period_days=*/7);
  ASSERT_TRUE(cron.AdvanceTo(31).ok());

  // Tuesdays of January 1993: Jan 5, 12, 19, 26.
  EXPECT_EQ(fires, (std::vector<TimePoint>{5, 12, 19, 26}));
  EXPECT_EQ(clock.NowDay(), 31);
  EXPECT_GE(cron.stats().probes, 4);
  EXPECT_EQ(cron.stats().fires, 4);
}

TEST_F(DbCronTest, RuleTimeAlwaysHoldsTheNextFiring) {
  TemporalAction action;
  action.callback = [](TimePoint) { return Status::OK(); };
  ASSERT_TRUE(rules_
                  ->DeclareRule("every_tuesday", "[2]/DAYS:during:WEEKS",
                                std::move(action), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(6).ok());  // past the Jan 5 firing
  auto time_rows = db_.Execute("retrieve (t.next_fire) from t in RULE_TIME");
  ASSERT_TRUE(time_rows.ok());
  ASSERT_EQ(time_rows->rows.size(), 1u);
  EXPECT_EQ(time_rows->rows[0][0].AsInt().value(), 12);  // next Tuesday
}

TEST_F(DbCronTest, CommandActionsRunAgainstTheDatabase) {
  ASSERT_TRUE(db_.Execute("create table fired (day int)").ok());
  TemporalAction action;
  action.command = "append fired (day = fire_day())";
  ASSERT_TRUE(rules_
                  ->DeclareRule("every_monday", "[1]/DAYS:during:WEEKS",
                                std::move(action), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(18).ok());
  auto fired = db_.Execute("retrieve (f.day) from f in fired");
  ASSERT_TRUE(fired.ok());
  // Mondays: Jan 4, 11, 18.
  ASSERT_EQ(fired->rows.size(), 3u);
  EXPECT_EQ(fired->rows[0][0].AsInt().value(), 4);
  EXPECT_EQ(fired->rows[2][0].AsInt().value(), 18);
}

TEST_F(DbCronTest, MultipleRulesFireInTimeOrder) {
  std::vector<std::pair<std::string, TimePoint>> log;
  auto make_action = [&log](const std::string& name) {
    TemporalAction action;
    action.callback = [&log, name](TimePoint day) {
      log.emplace_back(name, day);
      return Status::OK();
    };
    return action;
  };
  // Last day of every month, and every Monday.
  ASSERT_TRUE(rules_
                  ->DeclareRule("month_end", "[n]/DAYS:during:MONTHS",
                                make_action("month_end"), 1)
                  .ok());
  ASSERT_TRUE(rules_
                  ->DeclareRule("mondays", "[1]/DAYS:during:WEEKS",
                                make_action("mondays"), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 10);
  ASSERT_TRUE(cron.AdvanceTo(60).ok());

  // Expect Mondays 4,11,18,25,32(Feb 1),39,46,53,60(Mar 1) and month ends
  // 31, 59, interleaved in time order.
  std::vector<std::pair<std::string, TimePoint>> expected = {
      {"mondays", 4},  {"mondays", 11}, {"mondays", 18},  {"mondays", 25},
      {"month_end", 31}, {"mondays", 32}, {"mondays", 39}, {"mondays", 46},
      {"mondays", 53},   {"month_end", 59}, {"mondays", 60}};
  EXPECT_EQ(log, expected);
}

TEST_F(DbCronTest, ProbePeriodDoesNotChangeFirings) {
  for (int64_t period : {1, 3, 7, 30}) {
    CalendarCatalog catalog(TimeSystem{CivilDate{1993, 1, 1}});
    Database db;
    auto manager = TemporalRuleManager::Create(&catalog, &db);
    ASSERT_TRUE(manager.ok());
    std::vector<TimePoint> fires;
    TemporalAction action;
    action.callback = [&fires](TimePoint day) {
      fires.push_back(day);
      return Status::OK();
    };
    ASSERT_TRUE((*manager)
                    ->DeclareRule("tuesdays", "[2]/DAYS:during:WEEKS",
                                  std::move(action), 1)
                    .ok());
    VirtualClock clock(1);
    DbCron cron(manager->get(), &clock, period);
    ASSERT_TRUE(cron.AdvanceTo(40).ok());
    EXPECT_EQ(fires, (std::vector<TimePoint>{5, 12, 19, 26, 33, 40}))
        << "probe period " << period;
  }
}

TEST_F(DbCronTest, DroppedRuleStopsFiring) {
  std::vector<TimePoint> fires;
  TemporalAction action;
  action.callback = [&fires](TimePoint day) {
    fires.push_back(day);
    return Status::OK();
  };
  ASSERT_TRUE(rules_
                  ->DeclareRule("tuesdays", "[2]/DAYS:during:WEEKS",
                                std::move(action), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(6).ok());
  ASSERT_TRUE(rules_->DropRule("tuesdays").ok());
  ASSERT_TRUE(cron.AdvanceTo(31).ok());
  EXPECT_EQ(fires, (std::vector<TimePoint>{5}));
  auto time_rows = db_.Execute("retrieve (t.next_fire) from t in RULE_TIME");
  ASSERT_TRUE(time_rows.ok());
  EXPECT_TRUE(time_rows->rows.empty());
}

TEST_F(DbCronTest, RuleDeclaredMidFlightIsPickedUp) {
  std::vector<TimePoint> fires;
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(10).ok());
  TemporalAction action;
  action.callback = [&fires](TimePoint day) {
    fires.push_back(day);
    return Status::OK();
  };
  ASSERT_TRUE(rules_
                  ->DeclareRule("tuesdays", "[2]/DAYS:during:WEEKS",
                                std::move(action), clock.NowDay())
                  .ok());
  ASSERT_TRUE(cron.AdvanceTo(31).ok());
  EXPECT_EQ(fires, (std::vector<TimePoint>{12, 19, 26}));
}

TEST_F(DbCronTest, DerivedCalendarRule) {
  // A rule on a derived calendar: EMP-DAYS (§3.3).
  ASSERT_TRUE(catalog_
                  .DefineValues("HOLIDAYS", Calendar::Order1(Granularity::kDays,
                                                             {{31, 31}, {90, 90}}))
                  .ok());
  std::vector<Interval> bus;
  for (int64_t d = 1; d <= 365; ++d) {
    if (d == 31 || d == 89 || d == 90) continue;
    bus.push_back({d, d});
  }
  ASSERT_TRUE(catalog_
                  .DefineValues("AM_BUS_DAYS",
                                Calendar::Order1(Granularity::kDays, bus))
                  .ok());
  std::vector<TimePoint> fires;
  TemporalAction action;
  action.callback = [&fires](TimePoint day) {
    fires.push_back(day);
    return Status::OK();
  };
  ASSERT_TRUE(rules_
                  ->DeclareRule("emp_days", R"(
      {LDOM = [n]/DAYS:during:MONTHS;
       LDOM_HOL = LDOM:intersects:HOLIDAYS;
       LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
       return (LDOM - LDOM_HOL + LAST_BUS_DAY);})",
                                std::move(action), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(90).ok());
  EXPECT_EQ(fires, (std::vector<TimePoint>{30, 59, 88}));
}

TEST_F(DbCronTest, DeclareRejectsBadInput) {
  TemporalAction empty;
  EXPECT_EQ(rules_->DeclareRule("x", "[1]/DAYS:during:WEEKS", empty, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  TemporalAction action;
  action.callback = [](TimePoint) { return Status::OK(); };
  EXPECT_EQ(
      rules_->DeclareRule("", "[1]/DAYS:during:WEEKS", action, 1).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(rules_->DeclareRule("bad", "a:nosuch:b", action, 1).status().code(),
            StatusCode::kParseError);
  ASSERT_TRUE(rules_->DeclareRule("ok", "[1]/DAYS:during:WEEKS", action, 1).ok());
  EXPECT_EQ(rules_->DeclareRule("ok", "[1]/DAYS:during:WEEKS", action, 1)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace caldb
