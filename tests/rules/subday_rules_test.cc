// Sub-day temporal rules — the manufacturing / process-control use case
// the paper's introduction motivates.  The rule system runs at HOURS
// granularity: time points are hour granules, DBCRON probes every T
// hours.

#include <gtest/gtest.h>

#include "rules/dbcron.h"

namespace caldb {
namespace {

class SubDayRulesTest : public ::testing::Test {
 protected:
  SubDayRulesTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {
    auto manager = TemporalRuleManager::Create(&catalog_, &db_,
                                               /*horizon=*/24 * 400,
                                               Granularity::kHours);
    EXPECT_TRUE(manager.ok()) << manager.status();
    rules_ = std::move(manager).value();
  }

  CalendarCatalog catalog_;
  Database db_;
  std::unique_ptr<TemporalRuleManager> rules_;
};

TEST_F(SubDayRulesTest, HourlySensorSweep) {
  // "Every 6th hour of every day": hours 6 of each day (an inspection
  // sweep at 05:00-06:00).
  std::vector<TimePoint> fires;
  TemporalAction action;
  action.callback = [&fires](TimePoint hour) {
    fires.push_back(hour);
    return Status::OK();
  };
  ASSERT_TRUE(rules_
                  ->DeclareRule("sweep", "[6]/HOURS:during:DAYS",
                                std::move(action), /*now=*/1)
                  .ok());
  VirtualClock clock(1);  // hour 1 = Jan 1 1993, 00:00-01:00
  DbCron cron(rules_.get(), &clock, /*probe period = one day of hours*/ 24);
  ASSERT_TRUE(cron.AdvanceTo(24 * 3).ok());  // three days
  EXPECT_EQ(fires, (std::vector<TimePoint>{6, 30, 54}));
}

TEST_F(SubDayRulesTest, ShiftBoundariesAcrossTheWeek) {
  // An 8-hour shift change: hours 1, 9, 17 of each day.
  std::vector<TimePoint> fires;
  TemporalAction action;
  action.callback = [&fires](TimePoint hour) {
    fires.push_back(hour);
    return Status::OK();
  };
  ASSERT_TRUE(rules_
                  ->DeclareRule("shift", "[1,9,17]/HOURS:during:DAYS",
                                std::move(action), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 12);
  ASSERT_TRUE(cron.AdvanceTo(48).ok());
  // Hour 1 is not fired (declared at now=1: firings are strictly after).
  EXPECT_EQ(fires, (std::vector<TimePoint>{9, 17, 25, 33, 41}));
}

TEST_F(SubDayRulesTest, RuleTimeHoldsHourPoints) {
  TemporalAction action;
  action.callback = [](TimePoint) { return Status::OK(); };
  ASSERT_TRUE(rules_
                  ->DeclareRule("sweep", "[6]/HOURS:during:DAYS",
                                std::move(action), 1)
                  .ok());
  auto rows = db_.Execute("retrieve (t.next_fire) from t in RULE_TIME");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt().value(), 6);
  EXPECT_EQ(rules_->unit(), Granularity::kHours);
}

TEST_F(SubDayRulesTest, DayGranularityCalendarFiresOncePerCoveredHourRange) {
  // A day-granularity expression used at hours unit: the rule fires at
  // the first hour of each selected day (firings are points, and the next
  // covered hour after a firing within the same day is the next hour — so
  // a whole-day calendar would fire every hour; a selective expression
  // picks specific hours instead).
  std::vector<TimePoint> fires;
  TemporalAction action;
  action.callback = [&fires](TimePoint hour) {
    fires.push_back(hour);
    return Status::OK();
  };
  // First hour of every Monday: [1]/HOURS:during:[1]/DAYS:during:WEEKS.
  ASSERT_TRUE(rules_
                  ->DeclareRule("monday_midnight",
                                "[1]/HOURS:during:[1]/DAYS:during:WEEKS",
                                std::move(action), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 24);
  ASSERT_TRUE(cron.AdvanceTo(24 * 14).ok());  // two weeks
  // Mondays: Jan 4 (day 4 -> hour 73) and Jan 11 (day 11 -> hour 241).
  EXPECT_EQ(fires, (std::vector<TimePoint>{73, 241}));
}

}  // namespace
}  // namespace caldb
