// Long-horizon DBCRON determinism: a decade of simulated time with a mixed
// rule population fires an exactly predictable schedule, regardless of
// probe period, and RULE-TIME ends in the right state.

#include <gtest/gtest.h>

#include "rules/dbcron.h"

namespace caldb {
namespace {

struct SimulationResult {
  int64_t tuesday_fires = 0;
  int64_t month_end_fires = 0;
  int64_t quarter_fires = 0;
  TimePoint last_fire = 0;
  std::vector<std::pair<char, TimePoint>> first_20;
};

SimulationResult Simulate(int64_t probe_period, TimePoint horizon_day) {
  CalendarCatalog catalog{TimeSystem{CivilDate{1990, 1, 1}}};
  Database db;
  auto rules = TemporalRuleManager::Create(&catalog, &db, /*horizon=*/20000)
                   .value();
  SimulationResult result;
  auto record = [&result](char tag, int64_t* counter) {
    TemporalAction action;
    action.callback = [&result, tag, counter](TimePoint day) {
      ++*counter;
      result.last_fire = std::max(result.last_fire, day);
      if (result.first_20.size() < 20) result.first_20.emplace_back(tag, day);
      return Status::OK();
    };
    return action;
  };
  EXPECT_TRUE(rules
                  ->DeclareRule("tuesdays", "[2]/DAYS:during:WEEKS",
                                record('T', &result.tuesday_fires), 1)
                  .ok());
  EXPECT_TRUE(rules
                  ->DeclareRule("month_ends", "[n]/DAYS:during:MONTHS",
                                record('M', &result.month_end_fires), 1)
                  .ok());
  EXPECT_TRUE(rules
                  ->DeclareRule("quarters",
                                "[n]/DAYS:during:caloperate(MONTHS, *, 3)",
                                record('Q', &result.quarter_fires), 1)
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules.get(), &clock, probe_period);
  EXPECT_TRUE(cron.AdvanceTo(horizon_day).ok());
  return result;
}

TEST(DbCronLongHorizon, DecadeOfFiringsIsExact) {
  // 1990-01-01 .. 1999-12-31 = 3652 days (1992 and 1996 are leap years).
  SimulationResult r = Simulate(/*probe_period=*/7, /*horizon_day=*/3652);
  // Tuesdays: Jan 1 1990 was a Monday, so the first Tuesday is day 2;
  // Tuesdays = days 2, 9, ..., the count is ceil((3652 - 2 + 1) / 7).
  EXPECT_EQ(r.tuesday_fires, 522);
  EXPECT_EQ(r.month_end_fires, 120);  // 10 years of months
  EXPECT_EQ(r.quarter_fires, 40);
  EXPECT_EQ(r.last_fire, 3652);       // Dec 31 1999: month + quarter end
}

TEST(DbCronLongHorizon, ProbePeriodNeverChangesTheSchedule) {
  SimulationResult base = Simulate(7, 800);
  for (int64_t period : {1, 13, 97, 365}) {
    SimulationResult variant = Simulate(period, 800);
    EXPECT_EQ(variant.tuesday_fires, base.tuesday_fires) << period;
    EXPECT_EQ(variant.month_end_fires, base.month_end_fires) << period;
    EXPECT_EQ(variant.quarter_fires, base.quarter_fires) << period;
    EXPECT_EQ(variant.first_20, base.first_20) << period;
  }
}

TEST(DbCronLongHorizon, FiringsInterleaveInTimeOrder) {
  SimulationResult r = Simulate(7, 120);
  TimePoint prev = 0;
  for (const auto& [tag, day] : r.first_20) {
    EXPECT_GE(day, prev);
    prev = day;
  }
  // Day 90 (Mar 31 1990) fires both the month-end and the quarter rule.
  int fires_on_90 = 0;
  for (const auto& [tag, day] : r.first_20) {
    if (day == 90) ++fires_on_90;
  }
  EXPECT_EQ(fires_on_90, 2);
}

}  // namespace
}  // namespace caldb
