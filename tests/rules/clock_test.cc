#include "rules/clock.h"

#include <gtest/gtest.h>

namespace caldb {
namespace {

TEST(VirtualClockTest, StartsWhereTold) {
  VirtualClock clock(42);
  EXPECT_EQ(clock.NowDay(), 42);
}

TEST(VirtualClockTest, TimeNeverGoesBackwards) {
  VirtualClock clock(10);
  clock.AdvanceTo(5);
  EXPECT_EQ(clock.NowDay(), 10);
  clock.AdvanceTo(20);
  EXPECT_EQ(clock.NowDay(), 20);
}

TEST(VirtualClockTest, TickSkipsZero) {
  VirtualClock clock(-2);
  clock.Tick();
  EXPECT_EQ(clock.NowDay(), -1);
  clock.Tick();
  EXPECT_EQ(clock.NowDay(), 1);  // no day 0
  clock.Tick(3);
  EXPECT_EQ(clock.NowDay(), 4);
}

TEST(SystemClockTest, ReportsAPlausibleToday) {
  TimeSystem ts{CivilDate{1993, 1, 1}};
  SystemClock clock(&ts);
  TimePoint now = clock.NowDay();
  CivilDate today = ts.CivilFromDayPoint(now);
  // This test suite is being run well after 2020 and (optimistically)
  // before 2200.
  EXPECT_GT(today.year, 2020);
  EXPECT_LT(today.year, 2200);
  EXPECT_TRUE(IsValidCivil(today));
}

}  // namespace
}  // namespace caldb
