// The §6(b) future-work extension: temporal rules gated by a database
// Condition — "On Calendar-Expression where Condition do Action".

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "rules/dbcron.h"

namespace caldb {
namespace {

class ConditionalRulesTest : public ::testing::Test {
 protected:
  ConditionalRulesTest() : catalog_(TimeSystem{CivilDate{1993, 1, 1}}) {
    auto manager = TemporalRuleManager::Create(&catalog_, &db_);
    EXPECT_TRUE(manager.ok());
    rules_ = std::move(manager).value();
    EXPECT_TRUE(db_.Execute("create table inventory (item text, qty int)").ok());
    EXPECT_TRUE(db_.Execute("create table reorders (day int, item text)").ok());
    EXPECT_TRUE(
        db_.Execute("append inventory (item = 'widget', qty = 100)").ok());
  }

  CalendarCatalog catalog_;
  Database db_;
  std::unique_ptr<TemporalRuleManager> rules_;
};

TEST_F(ConditionalRulesTest, ConditionGatesTheAction) {
  // Every Monday, if stock is low, place a reorder.
  TemporalAction action;
  action.command = "append reorders (day = fire_day(), item = 'widget')";
  ASSERT_TRUE(rules_
                  ->DeclareRule("reorder_check", "[1]/DAYS:during:WEEKS",
                                std::move(action), 1,
                                "retrieve (i.item) from i in inventory "
                                "where i.qty < 50")
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);

  // Stock is plentiful through January: the rule fires but the condition
  // suppresses the action.
  ASSERT_TRUE(cron.AdvanceTo(31).ok());
  auto none = db_.Execute("retrieve (r.day) from r in reorders");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->rows.empty());
  EXPECT_EQ(rules_->fire_stats().fired, 0);
  EXPECT_GE(rules_->fire_stats().suppressed_by_condition, 4);

  // Stock drops; subsequent Mondays reorder.
  ASSERT_TRUE(
      db_.Execute("replace i in inventory (qty = 10) where i.item = 'widget'")
          .ok());
  ASSERT_TRUE(cron.AdvanceTo(59).ok());
  auto reorders = db_.Execute("retrieve (r.day) from r in reorders");
  ASSERT_TRUE(reorders.ok());
  // Mondays in February 1993: Feb 1 (32), 8 (39), 15 (46), 22 (53).
  ASSERT_EQ(reorders->rows.size(), 4u);
  EXPECT_EQ(reorders->rows[0][0].AsInt().value(), 32);
  EXPECT_GE(rules_->fire_stats().fired, 4);
}

TEST_F(ConditionalRulesTest, SchedulingContinuesWhileSuppressed) {
  TemporalAction action;
  action.callback = [](TimePoint) { return Status::OK(); };
  ASSERT_TRUE(rules_
                  ->DeclareRule("gated", "[1]/DAYS:during:WEEKS",
                                std::move(action), 1,
                                "retrieve (i.item) from i in inventory "
                                "where i.qty < 0")
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(31).ok());
  // The RULE-TIME row keeps advancing even though nothing ever runs.
  auto next = db_.Execute("retrieve (t.next_fire) from t in RULE_TIME");
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(next->rows.size(), 1u);
  EXPECT_GT(next->rows[0][0].AsInt().value(), 31);
}

TEST_F(ConditionalRulesTest, ConditionMayUseFireDay) {
  // Fire the action only on month-end Mondays, by probing fire_day() in
  // the condition (a genuinely temporal condition).
  ASSERT_TRUE(db_.Execute("create table markers (day int)").ok());
  for (int day : {31, 59, 90}) {
    ASSERT_TRUE(
        db_.Execute("append markers (day = " + std::to_string(day) + ")").ok());
  }
  TemporalAction action;
  action.command = "append reorders (day = fire_day(), item = 'monthend')";
  ASSERT_TRUE(rules_
                  ->DeclareRule("monthend_mondays", "DAYS:during:WEEKS",
                                std::move(action), 1,
                                "retrieve (m.day) from m in markers "
                                "where m.day = fire_day()")
                  .ok());
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(90).ok());
  auto rows = db_.Execute("retrieve (r.day) from r in reorders");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(rows->rows[0][0].AsInt().value(), 31);
  EXPECT_EQ(rows->rows[2][0].AsInt().value(), 90);
}

TEST_F(ConditionalRulesTest, BadConditionRejectedAtDeclaration) {
  TemporalAction action;
  action.callback = [](TimePoint) { return Status::OK(); };
  EXPECT_EQ(rules_
                ->DeclareRule("bad1", "[1]/DAYS:during:WEEKS", action, 1,
                              "not a query at all !!!")
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(rules_
                ->DeclareRule("bad2", "[1]/DAYS:during:WEEKS", action, 1,
                              "append reorders (day = 1)")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ConditionalRulesTest, BadActionCommandRejectedAtDeclaration) {
  // Fail-fast: an action that cannot parse is a declaration-time error,
  // never a first-firing surprise.
  TemporalAction action;
  action.command = "append reorders ((((";
  auto r = rules_->DeclareRule("bad_action", "[1]/DAYS:during:WEEKS",
                               std::move(action), 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().ToString().find("bad_action"), std::string::npos);
  // Nothing leaked into the catalog tables or the in-memory map.
  EXPECT_TRUE(rules_->ListRules().empty());
  auto info = db_.Execute("retrieve (i.name) from i in RULE_INFO");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->rows.empty());

  // The rejected declaration did not consume a rule id: the next good
  // declaration still gets id 1.
  TemporalAction good;
  good.callback = [](TimePoint) { return Status::OK(); };
  auto id = rules_->DeclareRule("good", "[1]/DAYS:during:WEEKS",
                                std::move(good), 1);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1);
}

TEST_F(ConditionalRulesTest, FiringsUseThePrecompiledHandles) {
  TemporalAction action;
  action.command = "append reorders (day = fire_day(), item = 'x')";
  ASSERT_TRUE(rules_
                  ->DeclareRule("weekly", "[1]/DAYS:during:WEEKS",
                                std::move(action), 1,
                                "retrieve (i.item) from i in inventory")
                  .ok());
  auto rule = rules_->GetRuleByName("weekly");
  ASSERT_TRUE(rule.ok());
  ASSERT_NE(rule->compiled_command, nullptr);
  ASSERT_NE(rule->compiled_condition, nullptr);

  // Firing is parse-free: the caldb.db.parses counter stays flat.
  obs::Counter* parses = obs::Metrics().counter("caldb.db.parses");
  const int64_t before = parses->value();
  VirtualClock clock(1);
  DbCron cron(rules_.get(), &clock, 7);
  ASSERT_TRUE(cron.AdvanceTo(31).ok());
  EXPECT_EQ(parses->value(), before);
  EXPECT_GE(rules_->fire_stats().fired, 4);
}

}  // namespace
}  // namespace caldb
