#!/usr/bin/env bash
# Smoke check: ASan/UBSan build + full test suite, then a standalone
# UBSan build over the rep/sweep surface, then a TSan build over the
# engine's concurrency stress tests.
#
#   tools/check.sh [--no-tsan | --tsan-only] [build-dir]
#
# --no-tsan    lints + ASan suite + UBSan sweep, skip the TSan leg
# --tsan-only  just the TSan leg (plus the cheap lints)
#
# The two flags exist so CI can run the sanitizer legs as separate jobs
# (.github/workflows/ci.yml): the TSan build shares nothing with the
# ASan/UBSan trees, so splitting it halves the critical path.  With no
# flag, everything runs — the pre-push default.
#
# Uses build-asan/ (and build-ubsan/, build-tsan/) by default so it never
# disturbs the regular build/.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

run_asan=1
run_tsan=1
case "${1:-}" in
  --no-tsan)   run_tsan=0; shift ;;
  --tsan-only) run_asan=0; shift ;;
esac
build_dir="${1:-$repo_root/build-asan}"

# Cheap static checks first: every registered metric must be documented,
# and every WAL record type must have a documented on-disk meaning.
"$repo_root/tools/lint_metrics.sh"
"$repo_root/tools/lint_wal.sh"

if [[ "$run_asan" == 1 ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCALDB_SANITIZE=address
  cmake --build "$build_dir" -j "$(nproc)"

  # The randomized differential harness (sweep kernels vs their naive
  # references, ~18k operator applications) is the densest memory-error
  # surface — run it by name first so a failure there is attributed clearly.
  ctest --test-dir "$build_dir" -R 'sweep_test' --output-on-failure

  # Durability fault injection under ASan: a child engine (fsync=always) is
  # SIGKILLed mid-burst and recovered; every acknowledged statement must
  # survive, torn tails truncate, missed rule firings happen exactly once.
  ctest --test-dir "$build_dir" -R '^wal_fault_test$' --output-on-failure

  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

  # Standalone UBSan pass over the shared-rep machinery: the CSR offset
  # arithmetic and span views in calendar_rep/sweep are where a stale index
  # turns into UB before it turns into a crash.
  ubsan_dir="$repo_root/build-ubsan"
  cmake -B "$ubsan_dir" -S "$repo_root" -DCALDB_SANITIZE=undefined
  cmake --build "$ubsan_dir" -j "$(nproc)" --target sweep_test calendar_rep_test
  ctest --test-dir "$ubsan_dir" -R '^(sweep_test|calendar_rep_test)$' \
        --output-on-failure
fi

if [[ "$run_tsan" == 1 ]]; then
  # TSan pass over the concurrent engine: N writer + M reader sessions
  # racing DBCRON, plus the per-table lock stress tests (readers on one
  # table progressing under a writer hammering another —
  # tests/engine/engine_concurrency_test.cc).  TSan cannot combine with
  # ASan, so it gets its own tree; any data race in the
  # Engine/LockManager/Session/ThreadPool/catalog locking shows up here
  # as a hard failure.
  tsan_dir="$repo_root/build-tsan"
  cmake -B "$tsan_dir" -S "$repo_root" -DCALDB_SANITIZE=thread
  cmake --build "$tsan_dir" -j "$(nproc)" --target engine_concurrency_test
  TSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "$tsan_dir" -R '^engine_concurrency_test$' \
            --output-on-failure
fi
