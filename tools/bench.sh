#!/usr/bin/env bash
# Runs the benchmark binaries and appends their machine-readable result
# lines to BENCH_<name>.json in the repo root (gitignored; see
# bench/bench_util.h for the line format).
#
#   tools/bench.sh [bench-name ...]
#
# With no arguments every bench/bench_* binary runs.  Extra knobs:
#
#   CALDB_BENCH_FILTER   --benchmark_filter regex (default: everything)
#   CALDB_BENCH_MIN_TIME --benchmark_min_time seconds (default: 0.2)
#
# Uses the regular build/ tree (configures it if missing).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
min_time="${CALDB_BENCH_MIN_TIME:-0.2}"
filter="${CALDB_BENCH_FILTER:-}"

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" -j "$(nproc)" >/dev/null

if [[ $# -gt 0 ]]; then
  names=("$@")
else
  names=()
  for bin in "$build_dir"/bench/bench_*; do
    [[ -x $bin ]] && names+=("$(basename "$bin")")
  done
fi

for name in "${names[@]}"; do
  bin="$build_dir/bench/$name"
  if [[ ! -x $bin ]]; then
    echo "no such bench binary: $bin" >&2
    exit 1
  fi
  out="$repo_root/BENCH_${name#bench_}.json"
  echo "== $name -> $out"
  args=(--benchmark_min_time="$min_time")
  [[ -n $filter ]] && args+=(--benchmark_filter="$filter")
  CALDB_BENCH_JSON="$out" "$bin" "${args[@]}"
done
