#!/usr/bin/env bash
# The WAL record-type enum and the durability doc must agree: extract the
# WalRecordType members from src/storage/wal.h and require each to
# appear, backtick-wrapped, in docs/DURABILITY.md (the "Record types"
# table).  A tag added to the enum without a documented on-disk meaning
# fails tools/check.sh.
#
#   tools/lint_wal.sh

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
header="$repo_root/src/storage/wal.h"
doc="$repo_root/docs/DURABILITY.md"

# Members of the WalRecordType enum block only (not FsyncPolicy etc.).
names="$(sed -n '/enum class WalRecordType/,/^};/p' "$header" |
         grep -oE '^  k[A-Za-z0-9]+' | tr -d ' ' | sort -u)"

if [[ -z "$names" ]]; then
  echo "lint_wal: no WalRecordType members found in $header" >&2
  exit 1
fi

missing=0
while IFS= read -r name; do
  if ! grep -qF "\`$name\`" "$doc"; then
    echo "undocumented WAL record type: $name (add to docs/DURABILITY.md)" >&2
    missing=1
  fi
done <<< "$names"

if [[ $missing -ne 0 ]]; then
  exit 1
fi
echo "lint_wal: $(wc -l <<< "$names") record types, all documented"
