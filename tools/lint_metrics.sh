#!/usr/bin/env bash
# Every metric registered in src/ must be documented: extract the
# instrument names from counter("caldb...")/gauge(...)/histogram(...)
# registration sites and require each to appear, backtick-wrapped, in
# docs/OBSERVABILITY.md (the "Instrument index" section).
#
#   tools/lint_metrics.sh
#
# Registration names are string literals by convention (the registry
# also accepts computed names, but src/ never uses them — this lint is
# what keeps it that way, since a computed name would escape the doc
# check silently).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
doc="$repo_root/docs/OBSERVABILITY.md"

names="$(grep -rhoE '(counter|gauge|histogram)\("caldb\.[A-Za-z0-9_.]+"' \
              "$repo_root/src" |
         sed -E 's/^[a-z]+\("//; s/"$//' | sort -u)"

missing=0
while IFS= read -r name; do
  if ! grep -qF "\`$name\`" "$doc"; then
    echo "undocumented metric: $name (add to docs/OBSERVABILITY.md)" >&2
    missing=1
  fi
done <<< "$names"

if [[ $missing -ne 0 ]]; then
  exit 1
fi
echo "lint_metrics: $(wc -l <<< "$names") instruments, all documented"
