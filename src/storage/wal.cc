#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/macros.h"
#include "obs/obs.h"
#include "storage/codec.h"

namespace caldb::storage {

namespace {

struct WalMetrics {
  obs::Counter* appends = obs::Metrics().counter("caldb.wal.appends");
  obs::Counter* bytes = obs::Metrics().counter("caldb.wal.bytes");
  obs::Counter* syncs = obs::Metrics().counter("caldb.wal.syncs");
  obs::Histogram* append_ns = obs::Metrics().histogram("caldb.wal.append_ns");
};

WalMetrics& Metrics() {
  static WalMetrics* m = new WalMetrics();
  return *m;
}

Status Errno(std::string_view what, const std::string& path) {
  return Status::Internal(std::string(what) + " failed for '" + path +
                          "': " + std::strerror(errno));
}

// A frame header is [u32 len][u32 crc].
constexpr size_t kFrameHeader = 8;
// Frames larger than this are rejected as corruption rather than
// attempted: no legitimate logical record approaches it, and a garbage
// length must not drive a gigabyte allocation.
constexpr uint32_t kMaxPayload = 64u << 20;

bool ValidType(uint8_t tag) {
  return tag >= static_cast<uint8_t>(WalRecordType::kStatement) &&
         tag <= static_cast<uint8_t>(WalRecordType::kParamStatement);
}

}  // namespace

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "?";
}

std::string WalRecord::Encode() const {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(type));
  PutU64(&out, lsn);
  PutI64(&out, day);
  PutString(&out, a);
  PutString(&out, b);
  PutString(&out, c);
  PutString(&out, d);
  return out;
}

Result<WalRecord> WalRecord::Decode(std::string_view payload) {
  Decoder dec(payload);
  WalRecord record;
  CALDB_ASSIGN_OR_RETURN(uint8_t tag, dec.ReadU8());
  if (!ValidType(tag)) {
    return Status::ParseError("unknown WAL record type tag " +
                              std::to_string(tag));
  }
  record.type = static_cast<WalRecordType>(tag);
  CALDB_ASSIGN_OR_RETURN(record.lsn, dec.ReadU64());
  CALDB_ASSIGN_OR_RETURN(record.day, dec.ReadI64());
  CALDB_ASSIGN_OR_RETURN(record.a, dec.ReadString());
  CALDB_ASSIGN_OR_RETURN(record.b, dec.ReadString());
  CALDB_ASSIGN_OR_RETURN(record.c, dec.ReadString());
  CALDB_ASSIGN_OR_RETURN(record.d, dec.ReadString());
  if (!dec.done()) {
    return Status::ParseError("trailing bytes after WAL record");
  }
  return record;
}

WalWriter::WalWriter(int fd, std::string path, Options options,
                     uint64_t next_lsn, int64_t bytes)
    : fd_(fd),
      path_(std::move(path)),
      options_(options),
      next_lsn_(next_lsn),
      bytes_(bytes) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   Options options,
                                                   uint64_t next_lsn) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status err = Errno("fstat", path);
    ::close(fd);
    return err;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, path, options, next_lsn, st.st_size));
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (unsynced_bytes_ > 0) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<uint64_t> WalWriter::Append(WalRecord record) {
  obs::ScopedLatency latency(Metrics().append_ns);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::Internal("WAL writer is closed");
  record.lsn = next_lsn_;
  const std::string payload = record.Encode();
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame += payload;

  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    off += static_cast<size_t>(n);
  }
  ++next_lsn_;
  bytes_ += static_cast<int64_t>(frame.size());
  unsynced_bytes_ += static_cast<int64_t>(frame.size());
  Metrics().appends->Increment();
  Metrics().bytes->Add(static_cast<int64_t>(frame.size()));

  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      CALDB_RETURN_IF_ERROR(SyncLocked());
      break;
    case FsyncPolicy::kBatch:
      if (unsynced_bytes_ >= options_.batch_bytes) {
        CALDB_RETURN_IF_ERROR(SyncLocked());
      }
      break;
    case FsyncPolicy::kOff:
      break;
  }
  return record.lsn;
}

Status WalWriter::SyncLocked() {
  if (unsynced_bytes_ == 0) return Status::OK();
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  unsynced_bytes_ = 0;
  Metrics().syncs->Increment();
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::Internal("WAL writer is closed");
  return SyncLocked();
}

Status WalWriter::ResetAfterCheckpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::Internal("WAL writer is closed");
  if (::ftruncate(fd_, 0) != 0) return Errno("ftruncate", path_);
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  bytes_ = 0;
  unsynced_bytes_ = 0;
  return Status::OK();
}

uint64_t WalWriter::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

int64_t WalWriter::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return result;  // no log yet: empty
    return Errno("open", path);
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status err = Errno("read", path);
      ::close(fd);
      return err;
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t pos = 0;
  uint64_t prev_lsn = 0;
  auto reject = [&](std::string why) {
    result.torn_tail = true;
    result.tail_error = std::move(why);
  };
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeader) {
      reject("partial frame header (" + std::to_string(data.size() - pos) +
             " bytes)");
      break;
    }
    Decoder header(std::string_view(data).substr(pos, kFrameHeader));
    const uint32_t len = *header.ReadU32();
    const uint32_t crc = *header.ReadU32();
    if (len > kMaxPayload) {
      reject("frame length " + std::to_string(len) + " exceeds limit");
      break;
    }
    if (data.size() - pos - kFrameHeader < len) {
      reject("partial frame payload (have " +
             std::to_string(data.size() - pos - kFrameHeader) + " of " +
             std::to_string(len) + " bytes)");
      break;
    }
    const std::string_view payload =
        std::string_view(data).substr(pos + kFrameHeader, len);
    if (Crc32(payload) != crc) {
      reject("checksum mismatch");
      break;
    }
    Result<WalRecord> record = WalRecord::Decode(payload);
    if (!record.ok()) {
      reject("undecodable record: " + record.status().ToString());
      break;
    }
    // LSNs must be strictly increasing within one log file; a regression
    // means frames from different epochs got interleaved — stop trusting
    // the file at that point.
    if (record->lsn <= prev_lsn) {
      reject("non-monotonic LSN " + std::to_string(record->lsn));
      break;
    }
    prev_lsn = record->lsn;
    result.records.push_back(*std::move(record));
    pos += kFrameHeader + len;
    result.valid_bytes = static_cast<int64_t>(pos);
  }
  return result;
}

Status TruncateWal(const std::string& path, int64_t valid_bytes) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    if (errno == ENOENT && valid_bytes == 0) return Status::OK();
    return Errno("open", path);
  }
  if (::ftruncate(fd, valid_bytes) != 0) {
    Status err = Errno("ftruncate", path);
    ::close(fd);
    return err;
  }
  if (::fsync(fd) != 0) {
    Status err = Errno("fsync", path);
    ::close(fd);
    return err;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace caldb::storage
