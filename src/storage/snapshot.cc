#include "storage/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "catalog/catalog_io.h"
#include "common/macros.h"
#include "lang/parser.h"
#include "obs/obs.h"
#include "storage/codec.h"

namespace caldb::storage {

namespace {

constexpr char kMagic[] = "CALDBSNP";  // 8 bytes, no terminator on disk
constexpr uint32_t kVersion = 1;

Status Errno(std::string_view what, const std::string& path) {
  return Status::Internal(std::string(what) + " failed for '" + path +
                          "': " + std::strerror(errno));
}

// --- Value cells ------------------------------------------------------------

// One-byte tags; kCalendar cells are written as their granularity-tagged
// literal text (e.g. "DAYS{(1,5)}") and re-parsed on decode, mirroring
// how catalog_io.cc persists value calendars.
Status EncodeValue(const Value& value, std::string* out) {
  PutU8(out, static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      return Status::OK();
    case ValueType::kInt: {
      CALDB_ASSIGN_OR_RETURN(int64_t v, value.AsInt());
      PutI64(out, v);
      return Status::OK();
    }
    case ValueType::kFloat: {
      CALDB_ASSIGN_OR_RETURN(double v, value.AsFloat());
      PutF64(out, v);
      return Status::OK();
    }
    case ValueType::kBool: {
      CALDB_ASSIGN_OR_RETURN(bool v, value.AsBool());
      PutU8(out, v ? 1 : 0);
      return Status::OK();
    }
    case ValueType::kText: {
      CALDB_ASSIGN_OR_RETURN(std::string v, value.AsText());
      PutString(out, v);
      return Status::OK();
    }
    case ValueType::kInterval: {
      CALDB_ASSIGN_OR_RETURN(Interval v, value.AsInterval());
      PutI64(out, v.lo);
      PutI64(out, v.hi);
      return Status::OK();
    }
    case ValueType::kCalendar: {
      CALDB_ASSIGN_OR_RETURN(Calendar v, value.AsCalendar());
      PutString(out, std::string(GranularityName(v.granularity())) +
                         v.ToString());
      return Status::OK();
    }
  }
  return Status::Internal("unencodable value type");
}

Result<Value> DecodeValue(Decoder* dec) {
  CALDB_ASSIGN_OR_RETURN(uint8_t tag, dec->ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      CALDB_ASSIGN_OR_RETURN(int64_t v, dec->ReadI64());
      return Value::Int(v);
    }
    case ValueType::kFloat: {
      CALDB_ASSIGN_OR_RETURN(double v, dec->ReadF64());
      return Value::Float(v);
    }
    case ValueType::kBool: {
      CALDB_ASSIGN_OR_RETURN(uint8_t v, dec->ReadU8());
      return Value::Bool(v != 0);
    }
    case ValueType::kText: {
      CALDB_ASSIGN_OR_RETURN(std::string v, dec->ReadString());
      return Value::Text(std::move(v));
    }
    case ValueType::kInterval: {
      CALDB_ASSIGN_OR_RETURN(int64_t lo, dec->ReadI64());
      CALDB_ASSIGN_OR_RETURN(int64_t hi, dec->ReadI64());
      CALDB_ASSIGN_OR_RETURN(Interval v, MakeInterval(lo, hi));
      return Value::Of(v);
    }
    case ValueType::kCalendar: {
      CALDB_ASSIGN_OR_RETURN(std::string text, dec->ReadString());
      CALDB_ASSIGN_OR_RETURN(ExprPtr literal, ParseExpression(text));
      if (literal->kind != Expr::Kind::kLiteral) {
        return Status::ParseError("snapshot calendar cell '" + text +
                                  "' is not a calendar literal");
      }
      return Value::Of(literal->literal);
    }
  }
  return Status::ParseError("unknown value type tag " + std::to_string(tag));
}

}  // namespace

Result<std::string> EncodeParamValues(const ParamList& params) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(params.size()));
  for (const Value& value : params) {
    CALDB_RETURN_IF_ERROR(EncodeValue(value, &out));
  }
  return out;
}

Result<ParamList> DecodeParamValues(std::string_view blob) {
  Decoder dec(blob);
  CALDB_ASSIGN_OR_RETURN(uint32_t count, dec.ReadU32());
  // A frame-level CRC has already vetted the blob, so a huge count means
  // a logic bug, not corruption — but cap it anyway before reserving.
  if (count > 1'000'000) {
    return Status::ParseError("parameter list count " + std::to_string(count) +
                              " is implausible");
  }
  ParamList params;
  params.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CALDB_ASSIGN_OR_RETURN(Value v, DecodeValue(&dec));
    params.push_back(std::move(v));
  }
  return params;
}

Result<SnapshotImage> CaptureSnapshot(const Database& db,
                                      const CalendarCatalog& catalog,
                                      const TemporalRuleManager& rules,
                                      TimePoint clock_day, uint64_t last_lsn) {
  SnapshotImage image;
  image.epoch = catalog.time_system().epoch();
  image.clock_day = clock_day;
  image.last_lsn = last_lsn;
  image.next_rule_id = rules.next_id();
  CALDB_ASSIGN_OR_RETURN(image.catalog_dump, DumpCatalog(catalog));

  for (const std::string& name : db.ListTables()) {
    CALDB_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    SnapshotImage::TableImage ti;
    ti.name = name;
    ti.columns = table->schema().columns();
    for (const Column& column : ti.columns) {
      if (column.type == ValueType::kInt && table->HasIndex(column.name)) {
        ti.indexed_columns.push_back(column.name);
      }
    }
    table->Scan([&](RowId, const Row& row) {
      ti.rows.push_back(row);
      return true;
    });
    image.tables.push_back(std::move(ti));
  }

  for (const TemporalRule& rule : rules.ListRuleDefs()) {
    if (rule.action.command.empty()) {
      // Callback-only: the function object cannot be serialized.  The
      // RULE-INFO/RULE-TIME rows still restore with the tables, but the
      // in-memory rule (and hence its firings) will be absent until the
      // application re-registers it.
      obs::LogEvent(obs::LogLevel::kWarn, "storage.skip_callback_rule",
                    {{"rule", rule.name}});
      continue;
    }
    image.temporal_rules.push_back({rule.id, rule.name, rule.expression,
                                    rule.action.command,
                                    rule.condition_query});
  }

  for (const EventRule& rule : db.event_rules()) {
    if (rule.command.empty()) {
      obs::LogEvent(obs::LogLevel::kWarn, "storage.skip_callback_rule",
                    {{"rule", rule.name}});
      continue;
    }
    SnapshotImage::EventRuleImage ei;
    ei.name = rule.name;
    ei.event = rule.event;
    ei.table = rule.table;
    if (rule.where != nullptr) ei.where_text = rule.where->ToString();
    ei.command = rule.command;
    image.event_rules.push_back(std::move(ei));
  }
  return image;
}

Result<std::string> EncodeSnapshot(const SnapshotImage& image) {
  std::string payload;
  PutI64(&payload, image.epoch.year);
  PutI64(&payload, image.epoch.month);
  PutI64(&payload, image.epoch.day);
  PutI64(&payload, image.clock_day);
  PutU64(&payload, image.last_lsn);
  PutI64(&payload, image.next_rule_id);
  PutString(&payload, image.catalog_dump);

  PutU32(&payload, static_cast<uint32_t>(image.tables.size()));
  for (const auto& table : image.tables) {
    PutString(&payload, table.name);
    PutU32(&payload, static_cast<uint32_t>(table.columns.size()));
    for (const Column& column : table.columns) {
      PutString(&payload, column.name);
      PutU8(&payload, static_cast<uint8_t>(column.type));
    }
    PutU32(&payload, static_cast<uint32_t>(table.indexed_columns.size()));
    for (const std::string& column : table.indexed_columns) {
      PutString(&payload, column);
    }
    PutU32(&payload, static_cast<uint32_t>(table.rows.size()));
    for (const Row& row : table.rows) {
      for (const Value& value : row) {
        CALDB_RETURN_IF_ERROR(EncodeValue(value, &payload));
      }
    }
  }

  PutU32(&payload, static_cast<uint32_t>(image.temporal_rules.size()));
  for (const auto& rule : image.temporal_rules) {
    PutI64(&payload, rule.id);
    PutString(&payload, rule.name);
    PutString(&payload, rule.expression);
    PutString(&payload, rule.command);
    PutString(&payload, rule.condition_query);
  }

  PutU32(&payload, static_cast<uint32_t>(image.event_rules.size()));
  for (const auto& rule : image.event_rules) {
    PutString(&payload, rule.name);
    PutU8(&payload, static_cast<uint8_t>(rule.event));
    PutString(&payload, rule.table);
    PutString(&payload, rule.where_text);
    PutString(&payload, rule.command);
  }

  std::string out(kMagic, 8);
  PutU32(&out, kVersion);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload));
  out += payload;
  return out;
}

Result<SnapshotImage> DecodeSnapshot(std::string_view blob) {
  if (blob.size() < 8 + 12 || blob.substr(0, 8) != std::string_view(kMagic, 8)) {
    return Status::ParseError("not a caldb snapshot (bad magic)");
  }
  Decoder header(blob.substr(8, 12));
  const uint32_t version = *header.ReadU32();
  if (version != kVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version));
  }
  const uint32_t len = *header.ReadU32();
  const uint32_t crc = *header.ReadU32();
  if (blob.size() - 20 != len) {
    return Status::ParseError("snapshot payload length mismatch");
  }
  const std::string_view payload = blob.substr(20);
  if (Crc32(payload) != crc) {
    return Status::ParseError("snapshot checksum mismatch");
  }

  Decoder dec(payload);
  SnapshotImage image;
  CALDB_ASSIGN_OR_RETURN(int64_t year, dec.ReadI64());
  CALDB_ASSIGN_OR_RETURN(int64_t month, dec.ReadI64());
  CALDB_ASSIGN_OR_RETURN(int64_t day, dec.ReadI64());
  image.epoch = CivilDate{static_cast<int32_t>(year),
                          static_cast<int32_t>(month),
                          static_cast<int32_t>(day)};
  CALDB_ASSIGN_OR_RETURN(image.clock_day, dec.ReadI64());
  CALDB_ASSIGN_OR_RETURN(image.last_lsn, dec.ReadU64());
  CALDB_ASSIGN_OR_RETURN(image.next_rule_id, dec.ReadI64());
  CALDB_ASSIGN_OR_RETURN(image.catalog_dump, dec.ReadString());

  CALDB_ASSIGN_OR_RETURN(uint32_t table_count, dec.ReadU32());
  for (uint32_t t = 0; t < table_count; ++t) {
    SnapshotImage::TableImage ti;
    CALDB_ASSIGN_OR_RETURN(ti.name, dec.ReadString());
    CALDB_ASSIGN_OR_RETURN(uint32_t column_count, dec.ReadU32());
    for (uint32_t c = 0; c < column_count; ++c) {
      Column column;
      CALDB_ASSIGN_OR_RETURN(column.name, dec.ReadString());
      CALDB_ASSIGN_OR_RETURN(uint8_t type_tag, dec.ReadU8());
      if (type_tag > static_cast<uint8_t>(ValueType::kCalendar)) {
        return Status::ParseError("bad column type tag in snapshot");
      }
      column.type = static_cast<ValueType>(type_tag);
      ti.columns.push_back(std::move(column));
    }
    CALDB_ASSIGN_OR_RETURN(uint32_t index_count, dec.ReadU32());
    for (uint32_t idx = 0; idx < index_count; ++idx) {
      CALDB_ASSIGN_OR_RETURN(std::string column, dec.ReadString());
      ti.indexed_columns.push_back(std::move(column));
    }
    CALDB_ASSIGN_OR_RETURN(uint32_t row_count, dec.ReadU32());
    for (uint32_t r = 0; r < row_count; ++r) {
      Row row;
      row.reserve(column_count);
      for (uint32_t c = 0; c < column_count; ++c) {
        CALDB_ASSIGN_OR_RETURN(Value value, DecodeValue(&dec));
        row.push_back(std::move(value));
      }
      ti.rows.push_back(std::move(row));
    }
    image.tables.push_back(std::move(ti));
  }

  CALDB_ASSIGN_OR_RETURN(uint32_t rule_count, dec.ReadU32());
  for (uint32_t r = 0; r < rule_count; ++r) {
    SnapshotImage::TemporalRuleImage rule;
    CALDB_ASSIGN_OR_RETURN(rule.id, dec.ReadI64());
    CALDB_ASSIGN_OR_RETURN(rule.name, dec.ReadString());
    CALDB_ASSIGN_OR_RETURN(rule.expression, dec.ReadString());
    CALDB_ASSIGN_OR_RETURN(rule.command, dec.ReadString());
    CALDB_ASSIGN_OR_RETURN(rule.condition_query, dec.ReadString());
    image.temporal_rules.push_back(std::move(rule));
  }

  CALDB_ASSIGN_OR_RETURN(uint32_t event_count, dec.ReadU32());
  for (uint32_t r = 0; r < event_count; ++r) {
    SnapshotImage::EventRuleImage rule;
    CALDB_ASSIGN_OR_RETURN(rule.name, dec.ReadString());
    CALDB_ASSIGN_OR_RETURN(uint8_t event_tag, dec.ReadU8());
    if (event_tag > static_cast<uint8_t>(DbEvent::kRetrieve)) {
      return Status::ParseError("bad event tag in snapshot");
    }
    rule.event = static_cast<DbEvent>(event_tag);
    CALDB_ASSIGN_OR_RETURN(rule.table, dec.ReadString());
    CALDB_ASSIGN_OR_RETURN(rule.where_text, dec.ReadString());
    CALDB_ASSIGN_OR_RETURN(rule.command, dec.ReadString());
    image.event_rules.push_back(std::move(rule));
  }
  if (!dec.done()) {
    return Status::ParseError("trailing bytes after snapshot payload");
  }
  return image;
}

Status WriteSnapshotFile(const std::string& path, const SnapshotImage& image) {
  CALDB_ASSIGN_OR_RETURN(std::string blob, EncodeSnapshot(image));
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  size_t off = 0;
  while (off < blob.size()) {
    ssize_t n = ::write(fd, blob.data() + off, blob.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status err = Errno("write", tmp);
      ::close(fd);
      return err;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status err = Errno("fsync", tmp);
    ::close(fd);
    return err;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) return Errno("rename", tmp);
  // Make the rename itself durable.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  int dir_fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Result<SnapshotReadResult> ReadSnapshotFile(const std::string& path) {
  SnapshotReadResult result;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return result;
    return Errno("open", path);
  }
  std::string blob;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status err = Errno("read", path);
      ::close(fd);
      return err;
    }
    if (n == 0) break;
    blob.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  CALDB_ASSIGN_OR_RETURN(result.image, DecodeSnapshot(blob));
  result.found = true;
  return result;
}

Status RestoreTables(const SnapshotImage& image, Database* db) {
  for (const auto& ti : image.tables) {
    CALDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(ti.columns));
    CALDB_RETURN_IF_ERROR(db->CreateTable(ti.name, std::move(schema)));
    CALDB_ASSIGN_OR_RETURN(Table * table, db->GetTable(ti.name));
    for (const Row& row : ti.rows) {
      CALDB_RETURN_IF_ERROR(table->Insert(row).status());
    }
    // Indexes after the bulk insert (CreateIndex indexes existing rows).
    for (const std::string& column : ti.indexed_columns) {
      CALDB_RETURN_IF_ERROR(table->CreateIndex(column));
    }
  }
  return Status::OK();
}

Status RestoreEventRules(const SnapshotImage& image, Database* db) {
  for (const auto& ei : image.event_rules) {
    EventRule rule;
    rule.name = ei.name;
    rule.event = ei.event;
    rule.table = ei.table;
    if (!ei.where_text.empty()) {
      CALDB_ASSIGN_OR_RETURN(rule.where, ParseDbExpression(ei.where_text));
    }
    rule.command = ei.command;
    CALDB_RETURN_IF_ERROR(db->DefineRule(std::move(rule)));
  }
  return Status::OK();
}

}  // namespace caldb::storage
