// Binary encoding helpers shared by the WAL and the snapshot writer:
// little-endian fixed-width integers, length-prefixed strings, and the
// IEEE CRC-32 that guards both file formats.  The encoding is deliberately
// boring — fixed widths, no varints — so a torn or corrupted record is
// detected by the checksum, never mis-parsed.

#ifndef CALDB_STORAGE_CODEC_H_
#define CALDB_STORAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"

namespace caldb::storage {

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) over `data`.
uint32_t Crc32(std::string_view data);

// --- encoding ---------------------------------------------------------------

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// --- decoding ---------------------------------------------------------------

/// A bounds-checked cursor over an encoded buffer.  Every Read* returns
/// ParseError instead of reading past the end, so a decoder over a
/// checksummed payload can still never crash on adversarial input.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) return Short("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() {
    if (remaining() < 4) return Short("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    if (remaining() < 8) return Short("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<int64_t> ReadI64() {
    auto v = ReadU64();
    if (!v.ok()) return v.status();
    return static_cast<int64_t>(*v);
  }

  Result<double> ReadF64() {
    auto bits = ReadU64();
    if (!bits.ok()) return bits.status();
    double v;
    std::memcpy(&v, &*bits, sizeof(v));
    return v;
  }

  Result<std::string> ReadString() {
    auto len = ReadU32();
    if (!len.ok()) return len.status();
    if (remaining() < *len) return Short("string body");
    std::string s(data_.substr(pos_, *len));
    pos_ += *len;
    return s;
  }

 private:
  static Status Short(std::string_view what) {
    return Status::ParseError("encoded buffer too short reading " +
                              std::string(what));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace caldb::storage

#endif  // CALDB_STORAGE_CODEC_H_
