#include "storage/codec.h"

#include <array>

namespace caldb::storage {

namespace {

// Table-driven IEEE CRC-32 (polynomial 0xEDB88320, the reflected form).
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace caldb::storage
