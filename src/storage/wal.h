// Write-ahead log: the redo half of the durability subsystem.
//
// The engine appends one logical record per mutating operation — a
// database statement, a rule declaration/drop, a calendar definition, a
// clock advance — and recovery replays them in order on top of the latest
// snapshot (storage/snapshot.h).  Records are *logical* (statement text,
// not page images): replay re-executes them through the same code paths
// that ran them originally, which keeps the log format independent of the
// in-memory layout.
//
// On-disk format (docs/DURABILITY.md): the file is a sequence of frames
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// where the payload is the encoded WalRecord (type tag, LSN, fields).
// Append is atomic-enough under POSIX semantics for a single writer; a
// crash mid-frame leaves a *torn tail* that the reader detects via the
// length/checksum and reports, and recovery truncates.  Anything after
// the first bad frame is ignored — the WAL never resynchronizes, because
// a frame boundary found after garbage cannot be trusted.
//
// Fsync policy:
//   kAlways — fsync before Append returns (durable-before-acknowledge),
//   kBatch  — fsync when >= batch_bytes accumulated since the last sync
//             (bounded loss window; the default),
//   kOff    — never fsync except on checkpoint/Stop (OS crash may lose
//             the tail; process crash does not, the kernel has the data).

#ifndef CALDB_STORAGE_WAL_H_
#define CALDB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace caldb::storage {

enum class FsyncPolicy { kAlways, kBatch, kOff };

std::string_view FsyncPolicyName(FsyncPolicy policy);

/// Logical record types.  Stable on-disk tags — append only, never renumber
/// (tools/lint_wal.sh keeps this enum and docs/DURABILITY.md in lockstep).
enum class WalRecordType : uint8_t {
  kStatement = 1,       // one mutating database statement (text)
  kDeclareRule = 2,     // temporal-rule declaration
  kDropRule = 3,        // temporal-rule drop
  kAdvance = 4,         // virtual-clock advance (rule firings replay from it)
  kDefineCalendar = 5,  // derived-calendar definition (name + script)
  kDropCalendar = 6,    // calendar drop
  kParamStatement = 7,  // parameterized statement (text + encoded bind list)
};

/// One logical record.  The string fields a..d are typed per record kind:
///   kStatement:      a = statement text
///   kDeclareRule:    a = name, b = calendar expression, c = action command,
///                    d = condition query; day = declaration day
///   kDropRule:       a = name
///   kAdvance:        day = target day
///   kDefineCalendar: a = name, b = script, c = lifespan ("" or "lo,hi")
///   kDropCalendar:   a = name
///   kParamStatement: a = statement text, b = bound values encoded with the
///                    snapshot value codec (storage/snapshot.h
///                    EncodeParamValues) — replay recompiles `a` once per
///                    shape and binds the decoded list per record
struct WalRecord {
  WalRecordType type = WalRecordType::kStatement;
  uint64_t lsn = 0;  // assigned by WalWriter::Append
  std::string a, b, c, d;
  int64_t day = 0;

  std::string Encode() const;
  static Result<WalRecord> Decode(std::string_view payload);
};

/// Single-writer appender.  Thread-safe (internal mutex), though the
/// engine additionally serializes appends under its exclusive lock so the
/// log order matches the execution order.
class WalWriter {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    /// kBatch: fsync once this many bytes accumulate since the last sync.
    int64_t batch_bytes = 64 * 1024;
  };

  /// Opens (creating if absent) `path` for appending.  `next_lsn` is the
  /// LSN the first Append will be assigned — recovery passes
  /// max(snapshot LSN, last replayed LSN) + 1.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 Options options,
                                                 uint64_t next_lsn);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (stamping its LSN) and applies the fsync policy.
  /// Returns the assigned LSN.
  Result<uint64_t> Append(WalRecord record);

  /// Forces an fsync (checkpoint/Stop path).  No-op on an empty sync set.
  Status Sync();

  /// Truncates the log to zero length after a successful checkpoint.  The
  /// LSN counter keeps running — LSNs are global, not per-file, so replay
  /// skips stale frames by comparing against the snapshot's LSN even if a
  /// crash lands between snapshot rename and truncation.
  Status ResetAfterCheckpoint();

  /// LSN of the most recently appended record (next_lsn - 1).
  uint64_t last_lsn() const;
  /// Bytes currently in the log file (since open or the last reset).
  int64_t bytes() const;

 private:
  WalWriter(int fd, std::string path, Options options, uint64_t next_lsn,
            int64_t bytes);

  Status SyncLocked();

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  Options options_;
  uint64_t next_lsn_ = 1;
  int64_t bytes_ = 0;
  int64_t unsynced_bytes_ = 0;
};

/// What ReadWal found.  `valid_bytes` is the offset of the first byte past
/// the last intact frame — the truncation point when `torn_tail` is set.
struct WalReadResult {
  std::vector<WalRecord> records;
  int64_t valid_bytes = 0;
  bool torn_tail = false;
  std::string tail_error;  // why the tail was rejected (empty when clean)
};

/// Reads every intact frame of `path`.  A missing file reads as empty.
/// Corruption is not an error: the result flags the torn tail and reports
/// everything before it.
Result<WalReadResult> ReadWal(const std::string& path);

/// Truncates `path` to `valid_bytes` (the recovery response to a torn
/// tail) and fsyncs.
Status TruncateWal(const std::string& path, int64_t valid_bytes);

}  // namespace caldb::storage

#endif  // CALDB_STORAGE_WAL_H_
