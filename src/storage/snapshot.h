// Snapshots: a point-in-time image of everything the engine would lose in
// a restart — tables (with schemas, rows and index definitions), the
// CALENDARS catalog, event rules, temporal-rule definitions, and the
// DBCRON virtual clock — plus the WAL LSN the image is consistent with.
//
// Recovery (engine/engine.cc) loads the latest valid snapshot, replays
// the WAL frames with LSN greater than the snapshot's, and resumes.  The
// image is written atomically: serialize to `<path>.tmp`, fsync, rename
// over `<path>`, fsync the directory — a crash mid-checkpoint leaves the
// previous snapshot intact.
//
// On-disk format: an 8-byte magic, a u32 version, a u32 payload length, a
// u32 CRC-32 of the payload, then the payload (storage/codec.h encoding).
// Any mismatch — magic, version, length, checksum — fails the read; a
// snapshot is all-or-nothing, unlike the WAL's frame-by-frame salvage.
//
// Known non-durable state (docs/DURABILITY.md): C++ callbacks on temporal
// or event rules cannot be serialized — rules whose only action is a
// callback are dropped from the image with a warning log; re-register
// them after recovery.  Event-rule where-clauses round-trip through
// DbExpr::ToString / ParseDbExpression.

#ifndef CALDB_STORAGE_SNAPSHOT_H_
#define CALDB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/calendar_catalog.h"
#include "db/database.h"
#include "rules/temporal_rules.h"

namespace caldb::storage {

/// The decoded image.  Plain data: the engine applies the pieces in its
/// own order (tables before the rule manager exists, rule definitions
/// after), which is why this is not a single Restore(Database*) call.
struct SnapshotImage {
  CivilDate epoch;
  TimePoint clock_day = 1;
  uint64_t last_lsn = 0;
  int64_t next_rule_id = 1;
  std::string catalog_dump;  // catalog_io.h text format

  struct TableImage {
    std::string name;
    std::vector<Column> columns;
    std::vector<std::string> indexed_columns;
    std::vector<Row> rows;
  };
  std::vector<TableImage> tables;

  struct TemporalRuleImage {
    int64_t id = 0;
    std::string name;
    std::string expression;
    std::string command;
    std::string condition_query;
  };
  std::vector<TemporalRuleImage> temporal_rules;

  struct EventRuleImage {
    std::string name;
    DbEvent event = DbEvent::kAppend;
    std::string table;
    std::string where_text;  // "" = no where clause
    std::string command;
  };
  std::vector<EventRuleImage> event_rules;
};

/// Captures a consistent image of the running parts.  The caller must hold
/// the engine's exclusive lock (nothing here locks).  Callback-only rules
/// are skipped (see header comment).
Result<SnapshotImage> CaptureSnapshot(const Database& db,
                                      const CalendarCatalog& catalog,
                                      const TemporalRuleManager& rules,
                                      TimePoint clock_day, uint64_t last_lsn);

Result<std::string> EncodeSnapshot(const SnapshotImage& image);
Result<SnapshotImage> DecodeSnapshot(std::string_view blob);

/// Encodes and writes `image` atomically to `path` (tmp + fsync + rename
/// + directory fsync).
Status WriteSnapshotFile(const std::string& path, const SnapshotImage& image);

/// Reads and decodes `path`.  `found=false` (and an empty image) when the
/// file does not exist; a corrupt file is an error.
struct SnapshotReadResult {
  bool found = false;
  SnapshotImage image;
};
Result<SnapshotReadResult> ReadSnapshotFile(const std::string& path);

/// Restores the table section of an image into a fresh database: creates
/// each table, inserts its rows, rebuilds its indexes.  Fails on a name
/// clash (the database must not already define the tables).
Status RestoreTables(const SnapshotImage& image, Database* db);

/// Restores the event-rule section (where clauses re-parsed from text).
Status RestoreEventRules(const SnapshotImage& image, Database* db);

/// Encodes a bind list with the snapshot value codec (count-prefixed,
/// one-byte type tag per value).  The WAL's parameterized-statement
/// records (kParamStatement) carry this blob, so bound executions replay
/// byte-identically through the same codec that persists table cells.
Result<std::string> EncodeParamValues(const ParamList& params);
Result<ParamList> DecodeParamValues(std::string_view blob);

}  // namespace caldb::storage

#endif  // CALDB_STORAGE_SNAPSHOT_H_
