#include "engine/session.h"

#include <exception>

#include "common/macros.h"
#include "common/strings.h"
#include "engine/engine.h"
#include "obs/obs.h"
#include "time/civil.h"

namespace caldb {

namespace {

struct SessionMetrics {
  obs::Counter* scripts = obs::Metrics().counter("caldb.engine.scripts");
};

SessionMetrics& Metrics() {
  static SessionMetrics* m = new SessionMetrics();
  return *m;
}

// If `text` begins with the given space-separated keywords (ASCII
// case-insensitive), strips them and returns the trimmed remainder.
bool ConsumeKeywords(std::string_view text,
                     std::initializer_list<std::string_view> keywords,
                     std::string_view* rest) {
  std::string_view s = TrimWhitespace(text);
  for (std::string_view kw : keywords) {
    size_t end = s.find_first_of(" \t\r\n");
    std::string_view word = end == std::string_view::npos ? s : s.substr(0, end);
    if (!EqualsIgnoreCase(word, kw)) return false;
    s = end == std::string_view::npos ? std::string_view{}
                                      : TrimWhitespace(s.substr(end));
  }
  *rest = s;
  return true;
}

QueryResult MessageResult(std::string message) {
  QueryResult result;
  result.message = std::move(message);
  return result;
}

std::string RenderScriptValue(const ScriptValue& value) {
  switch (value.kind) {
    case ScriptValue::Kind::kCalendar:
      return value.calendar.ToString();
    case ScriptValue::Kind::kString:
      return "\"" + value.text + "\"";
    case ScriptValue::Kind::kBlocked:
      return "(blocked: the script is waiting for a later day)";
    case ScriptValue::Kind::kNull:
      return "(null)";
  }
  return "(?)";
}

}  // namespace

Session::Session(Engine* engine, uint64_t id)
    : engine_(engine),
      id_(id),
      evaluator_(&engine->time_system(), &engine->catalog()) {
  opts_.window_days = Interval{1, 365};
  opts_.gen_cache_max_entries = engine->options().session_gen_cache_entries;
  opts_.gen_cache_max_bytes = engine->options().session_gen_cache_bytes;
}

Session::~Session() { engine_->ReleaseSession(); }

TimePoint Session::Today() const {
  return today_override_.value_or(engine_->Now());
}

EvalOptions Session::EffectiveOptions() const {
  EvalOptions opts = opts_;
  opts.today_day = Today();
  // Stamp the catalog's current definition version so this session's
  // evaluator invalidates its gen-cache across another session's
  // define/drop (the two-session staleness bug PR 10 fixes).
  opts.catalog_version = engine_->catalog().version();
  return opts;
}

Status Session::SetWindowYears(int32_t first_year, int32_t last_year) {
  CALDB_ASSIGN_OR_RETURN(opts_.window_days,
                         engine_->catalog().YearWindow(first_year, last_year));
  return Status::OK();
}

Result<ScriptValue> Session::EvalScript(const std::string& script) {
  try {
    Metrics().scripts->Increment();
    CALDB_ASSIGN_OR_RETURN(Plan plan,
                           engine_->catalog().CompileScriptText(script));
    last_stats_ = EvalStats{};
    return evaluator_.Run(plan, EffectiveOptions(), &last_stats_);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in EvalScript: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in EvalScript");
  }
}

Result<Calendar> Session::EvalCalendar(const std::string& name) {
  try {
    last_stats_ = EvalStats{};
    return engine_->catalog().EvaluateCalendar(name, EffectiveOptions(),
                                               &last_stats_);
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in EvalCalendar: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in EvalCalendar");
  }
}

Result<std::string> Session::ExplainScript(const std::string& script) {
  try {
    return engine_->catalog().ExplainScript(script, EffectiveOptions());
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in ExplainScript: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in ExplainScript");
  }
}

Status Session::DefineCalendar(const std::string& name,
                               const std::string& script,
                               std::optional<Interval> lifespan_days) {
  try {
    // Via the engine so a durable engine WAL-logs the definition.
    return engine_->DefineCalendar(name, script, lifespan_days);
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in DefineCalendar: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in DefineCalendar");
  }
}

Result<QueryResult> PreparedStatement::Execute(const ParamList& params) const {
  if (engine_ == nullptr || compiled_ == nullptr) {
    return Status::InvalidArgument(
        "invalid prepared statement (default-constructed or moved-from)");
  }
  // Liveness first, before engine_ is dereferenced at all: a handle that
  // outlived its engine must fail cleanly, not read freed memory.  Then
  // the stop flag — after Engine::Stop() the pool and DBCRON are gone,
  // and a handle's execution contract ends with them.
  if (engine_alive_ == nullptr ||
      !engine_alive_->load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "prepared statement outlived its engine (the Engine was destroyed)");
  }
  if (engine_->stopped()) {
    return Status::InvalidArgument(
        "cannot execute a prepared statement after Engine::Stop()");
  }
  try {
    obs::ScopedLogContext log_scope{
        obs::LogContext{session_id_, compiled_->text}};
    // The empty bind list goes through the same path: CheckParamList
    // enforces exact arity, so a 0-param handle accepts {} and a
    // parameterized one reports the missing values up front.
    return engine_->ExecuteCompiled(compiled_, params);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in Execute: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in Execute");
  }
}

int PreparedStatement::param_count() const {
  return compiled_ == nullptr ? 0 : compiled_->param_count;
}

std::string PreparedStatement::signature() const {
  return compiled_ == nullptr ? "()" : RenderParamSignature(*compiled_);
}

const std::string& PreparedStatement::text() const {
  static const std::string kEmpty;
  return compiled_ == nullptr ? kEmpty : compiled_->text;
}

Result<PreparedStatement> Session::Prepare(const std::string& text) {
  // Engine::Prepare already carries the no-throw catch-all.
  CALDB_ASSIGN_OR_RETURN(CompiledStatementPtr compiled,
                         engine_->Prepare(text));
  return PreparedStatement(engine_, engine_->alive_, id_, std::move(compiled));
}

Result<QueryResult> Session::Execute(const CompiledStatementPtr& prepared) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("null prepared statement");
  }
  try {
    obs::ScopedLogContext log_scope{obs::LogContext{id_, prepared->text}};
    return engine_->ExecuteCompiled(prepared);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in Execute: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in Execute");
  }
}

Result<QueryResult> Session::Execute(const std::string& text) {
  try {
    // Stamp this session (and the command text) into the thread's log
    // context for the duration; Engine::ExecuteImpl narrows the statement
    // but keeps the session id.
    obs::ScopedLogContext log_scope{obs::LogContext{id_, text}};
    return ExecuteImpl(text);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in Execute: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in Execute");
  }
}

Result<QueryResult> Session::ExecuteImpl(const std::string& text) {
  std::string_view rest;

  // Calendar-expression verbs, layered over the database language so the
  // whole system is reachable through one entry point.
  if (ConsumeKeywords(text, {"cal"}, &rest)) {
    CALDB_ASSIGN_OR_RETURN(ScriptValue value, EvalScript(std::string(rest)));
    return MessageResult(RenderScriptValue(value));
  }
  if (ConsumeKeywords(text, {"explain", "cal"}, &rest) ||
      ConsumeKeywords(text, {"profile", "cal"}, &rest)) {
    CALDB_ASSIGN_OR_RETURN(std::string report,
                           ExplainScript(std::string(rest)));
    return MessageResult(std::move(report));
  }
  if (ConsumeKeywords(text, {"define", "calendar"}, &rest)) {
    size_t as_pos = AsciiToLower(std::string(rest)).find(" as ");
    if (as_pos == std::string::npos || as_pos == 0) {
      return Status::ParseError(
          "usage: define calendar <name> as <script>");
    }
    std::string name(TrimWhitespace(rest.substr(0, as_pos)));
    std::string script(TrimWhitespace(rest.substr(as_pos + 4)));
    CALDB_RETURN_IF_ERROR(DefineCalendar(name, script));
    return MessageResult("defined calendar " + name);
  }
  if (ConsumeKeywords(text, {"drop", "calendar"}, &rest)) {
    std::string name(rest);
    CALDB_RETURN_IF_ERROR(engine_->DropCalendar(name));
    return MessageResult("dropped calendar " + name);
  }
  if (ConsumeKeywords(text, {"declare", "rule"}, &rest)) {
    size_t on_pos = AsciiToLower(std::string(rest)).find(" on ");
    size_t do_pos = AsciiToLower(std::string(rest)).find(" do ");
    if (on_pos == std::string::npos || do_pos == std::string::npos ||
        do_pos < on_pos) {
      return Status::ParseError(
          "usage: declare rule <name> on <calendar-expr> do <command>");
    }
    std::string name(TrimWhitespace(rest.substr(0, on_pos)));
    std::string expr(
        TrimWhitespace(rest.substr(on_pos + 4, do_pos - on_pos - 4)));
    TemporalAction action;
    action.command = std::string(TrimWhitespace(rest.substr(do_pos + 4)));
    CALDB_ASSIGN_OR_RETURN(int64_t id,
                           engine_->DeclareRule(name, expr, std::move(action)));
    return MessageResult("declared rule " + name + " (id " +
                         std::to_string(id) + ")");
  }
  if (ConsumeKeywords(text, {"drop", "temporal", "rule"}, &rest)) {
    std::string name(rest);
    CALDB_RETURN_IF_ERROR(engine_->DropTemporalRule(name));
    return MessageResult("dropped temporal rule " + name);
  }
  if (ConsumeKeywords(text, {"advance", "to"}, &rest)) {
    TimePoint target = 0;
    Result<CivilDate> date = ParseCivil(rest);
    if (date.ok()) {
      target = engine_->time_system().DayPointFromCivil(*date);
    } else {
      CALDB_ASSIGN_OR_RETURN(int64_t day, ParseInt64(rest));
      target = day;
    }
    CALDB_RETURN_IF_ERROR(engine_->AdvanceTo(target));
    return MessageResult(
        "advanced to day " + std::to_string(engine_->Now()) + " (" +
        std::to_string(engine_->CronStats().fires) + " firings so far)");
  }

  // Everything else is a database statement (including explain/profile of
  // one), executed under the engine's reader/writer lock.
  return engine_->Execute(text);
}

}  // namespace caldb
