#include "engine/statement_cache.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/obs.h"

namespace caldb {

namespace {

struct CacheMetrics {
  obs::Counter* hits = obs::Metrics().counter("caldb.stmt_cache.hits");
  obs::Counter* misses = obs::Metrics().counter("caldb.stmt_cache.misses");
  obs::Counter* evictions =
      obs::Metrics().counter("caldb.stmt_cache.evictions");
  obs::Counter* invalidations =
      obs::Metrics().counter("caldb.stmt_cache.invalidations");
  obs::Gauge* size = obs::Metrics().gauge("caldb.stmt_cache.size");
};

CacheMetrics& Metrics() {
  static CacheMetrics* m = new CacheMetrics();
  return *m;
}

}  // namespace

StatementCache::StatementCache(size_t max_entries)
    : max_entries_(max_entries) {
  stats_.capacity = max_entries;
}

Result<CompiledStatementPtr> StatementCache::GetOrCompile(
    const std::string& text) {
  std::string key = NormalizeStatementText(text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      Metrics().hits->Increment();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.compiled;
    }
    ++stats_.misses;
    Metrics().misses->Increment();
  }

  // Compile outside the lock: a slow parse must not serialize the
  // sessions that are hitting.  Errors are returned, never cached.
  CALDB_ASSIGN_OR_RETURN(CompiledStatementPtr compiled,
                         CompileStatement(text));
  if (max_entries_ == 0) return compiled;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing session inserted the same statement first; keep its handle
    // so everyone shares one compilation.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.compiled;
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Entry{compiled, lru_.begin()});
  while (entries_.size() > max_entries_) {
    auto victim = entries_.find(lru_.back());
    EraseLocked(victim);
    ++stats_.evictions;
    Metrics().evictions->Increment();
  }
  stats_.size = entries_.size();
  Metrics().size->Set(static_cast<int64_t>(entries_.size()));
  return compiled;
}

void StatementCache::EraseLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void StatementCache::InvalidateTables(const std::vector<std::string>& tables) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.invalidations;
  Metrics().invalidations->Increment();
  if (tables.empty()) {
    stats_.invalidated_entries += static_cast<int64_t>(entries_.size());
    entries_.clear();
    lru_.clear();
  } else {
    for (auto it = entries_.begin(); it != entries_.end();) {
      const std::vector<std::string>& referenced =
          it->second.compiled->tables;
      const bool affected = std::any_of(
          tables.begin(), tables.end(), [&](const std::string& t) {
            return std::find(referenced.begin(), referenced.end(), t) !=
                   referenced.end();
          });
      if (affected) {
        auto dead = it++;
        EraseLocked(dead);
        ++stats_.invalidated_entries;
      } else {
        ++it;
      }
    }
  }
  stats_.size = entries_.size();
  Metrics().size->Set(static_cast<int64_t>(entries_.size()));
}

void StatementCache::InvalidateAll() { InvalidateTables({}); }

StatementCache::Stats StatementCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<StatementCache::EntryInfo> StatementCache::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(entries_.size());
  for (const std::string& key : lru_) {  // MRU first
    auto it = entries_.find(key);
    if (it != entries_.end()) out.push_back({key, it->second.compiled});
  }
  return out;
}

}  // namespace caldb
