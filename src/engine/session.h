// caldb::Session — a per-client handle on a caldb::Engine.
//
// A Session carries the client-local state a connection would hold in the
// paper's DBMS: the evaluation window, "today" (pinned or tracking the
// engine's virtual clock), and a private Evaluator whose bounded gen-cache
// stays warm across calls — so repeated calendar probes from one client
// cost pointer copies, while different clients never contend on a shared
// evaluator.
//
// Sessions are single-threaded by design (create one per thread via
// Engine::CreateSession); the Engine they point into is fully thread-safe
// and must outlive them.
//
// Execute() is the uniform entry point of the facade: every verb of the
// system is reachable through it —
//
//   retrieve (w.day) from w in alerts       database statements (Postquel)
//   explain <stmt> / profile <stmt>         DB access-plan EXPLAIN (§5)
//   cal <script>                            calendar-expression evaluation
//   explain cal <script>                    CalendarCatalog::ExplainScript
//   define calendar <name> as <script>      catalog DDL
//   drop calendar <name>
//   declare rule <name> on <expr> do <cmd>  temporal rules (§4)
//   drop temporal rule <name>
//   advance to <YYYY-MM-DD | day>           drive DBCRON's virtual clock
//
// No exception escapes Execute or any other public method (see the
// no-throw contract in common/result.h).

#ifndef CALDB_ENGINE_SESSION_H_
#define CALDB_ENGINE_SESSION_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "db/database.h"
#include "lang/evaluator.h"

namespace caldb {

class Engine;

/// A bound-at-execute statement handle: the one prepared-execution path of
/// the facade.  Session::Prepare compiles the text (through the engine's
/// shared statement cache) into an immutable CompiledStatementPtr and wraps
/// it with the originating session's identity, so log lines and audit
/// records produced by Execute carry the right "session":N even though the
/// underlying handle is shared engine-wide.
///
/// Placeholders: statement text may contain $1, $2, ... positional
/// parameters (docs/LANGUAGE.md).  Execute binds one Value per placeholder,
/// checked for arity and type against the compiled signature before any
/// lock or WAL traffic.  A handle with no placeholders executes with the
/// default empty bind list.
///
///   auto stmt = session->Prepare(
///       "retrieve (a.balance) from a in accounts where a.id = $1");
///   auto row = stmt->Execute({Value::Int(37)});
///
/// Handles are cheap to copy (two shared_ptrs + two scalars) and may
/// outlive the Session that prepared them — and, since PR 10, even the
/// Engine: the handle carries the engine's liveness token, so Execute
/// after Engine::Stop() or ~Engine fails with a clean InvalidArgument
/// instead of undefined behavior.  (Destroying the engine *concurrently
/// with* an in-flight Execute is still a caller race; the token makes
/// sequential misuse safe and diagnosable.)  Execute is safe to call from
/// any thread; the handle itself is immutable after Prepare.
class PreparedStatement {
 public:
  /// Default-constructed handles are invalid; Execute on one fails with
  /// InvalidArgument instead of crashing.
  PreparedStatement() = default;

  /// Executes the statement with `params` bound to $1..$n (left to right).
  /// Fails with InvalidArgument on arity or type mismatch, before any
  /// side effect.  No exception escapes (common/result.h contract).
  Result<QueryResult> Execute(const ParamList& params = {}) const;

  /// Number of placeholders in the statement ($n with the largest n).
  int param_count() const;

  /// Human-readable parameter signature, e.g. "($1:int, $2:any)".
  std::string signature() const;

  /// The statement text this handle was compiled from (as written;
  /// compiled()->normalized holds the cache-key spelling).
  const std::string& text() const;

  /// The shared compiled handle (null when invalid).
  const CompiledStatementPtr& compiled() const { return compiled_; }

  bool valid() const { return compiled_ != nullptr; }

 private:
  friend class Session;
  PreparedStatement(Engine* engine,
                    std::shared_ptr<const std::atomic<bool>> engine_alive,
                    uint64_t session_id, CompiledStatementPtr compiled)
      : engine_(engine),
        engine_alive_(std::move(engine_alive)),
        session_id_(session_id),
        compiled_(std::move(compiled)) {}

  Engine* engine_ = nullptr;
  // The engine's liveness token (engine/engine.h): flipped false at the
  // top of ~Engine.  Checked before engine_ is ever dereferenced, so a
  // handle that outlived its engine fails cleanly.
  std::shared_ptr<const std::atomic<bool>> engine_alive_;
  uint64_t session_id_ = 0;
  CompiledStatementPtr compiled_;
};

class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- the uniform entry point ----------------------------------------------

  /// Executes one command (see the header comment for the verb list).
  /// Calendar values and reports are rendered into QueryResult::message.
  Result<QueryResult> Execute(const std::string& text);

  // --- prepared statements --------------------------------------------------

  /// Compiles a *database* statement (including explain/profile of one)
  /// into a PreparedStatement handle through the engine's shared statement
  /// cache.  The text may contain $1..$n placeholders, bound at
  /// handle.Execute({...}).  Session-level verbs (cal, define calendar,
  /// declare rule, advance to, ...) are not preparable — they fail to
  /// parse here.
  Result<PreparedStatement> Prepare(const std::string& text);

  /// DEPRECATED: executes a raw compiled handle.  This predates
  /// PreparedStatement and cannot bind parameters — a handle with
  /// placeholders fails with InvalidArgument.  Migrate:
  ///
  ///   before:  auto h = session->Prepare(text);       // raw ptr, old API
  ///            session->Execute(*h);
  ///   after:   auto stmt = session->Prepare(text);
  ///            stmt->Execute();            // or stmt->Execute({v1, v2})
  ///
  /// Kept so code holding CompiledStatementPtr (e.g. from
  /// Engine::Prepare) still runs; new code should not call this.
  Result<QueryResult> Execute(const CompiledStatementPtr& prepared);

  // --- typed calendar surface -----------------------------------------------

  /// Compiles and runs a calendar script on this session's evaluator.
  Result<ScriptValue> EvalScript(const std::string& script);

  /// Evaluates a named calendar over this session's window.
  Result<Calendar> EvalCalendar(const std::string& name);

  /// CalendarCatalog::ExplainScript with this session's options.
  Result<std::string> ExplainScript(const std::string& script);

  /// Defines a derived calendar in the engine's catalog.
  Status DefineCalendar(const std::string& name, const std::string& script,
                        std::optional<Interval> lifespan_days = std::nullopt);

  // --- session state --------------------------------------------------------

  /// Evaluation window, in DAYS points.
  void SetWindow(Interval window_days) { opts_.window_days = window_days; }
  /// Convenience: the window covering civil years [first, last].
  Status SetWindowYears(int32_t first_year, int32_t last_year);
  Interval window() const { return opts_.window_days; }

  /// Pins `today` for this session; by default it tracks the engine's
  /// virtual clock.
  void SetToday(TimePoint day) { today_override_ = day; }
  void ClearToday() { today_override_.reset(); }
  TimePoint Today() const;

  /// Evaluation counters of the most recent EvalScript/EvalCalendar.
  const EvalStats& last_eval_stats() const { return last_stats_; }

  /// This session's engine-assigned id (1, 2, ...).  Log lines and audit
  /// records produced while the session executes carry it ("session":N).
  uint64_t id() const { return id_; }

  Engine& engine() { return *engine_; }

 private:
  friend class Engine;
  Session(Engine* engine, uint64_t id);

  EvalOptions EffectiveOptions() const;
  Result<QueryResult> ExecuteImpl(const std::string& text);

  Engine* engine_;
  const uint64_t id_;
  Evaluator evaluator_;
  EvalOptions opts_;
  std::optional<TimePoint> today_override_;
  EvalStats last_stats_;
};

}  // namespace caldb

#endif  // CALDB_ENGINE_SESSION_H_
