#include "engine/engine.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <variant>

#include "catalog/calendar_functions.h"
#include "catalog/catalog_io.h"
#include "common/macros.h"
#include "common/strings.h"
#include "engine/session.h"
#include "obs/obs.h"
#include "storage/snapshot.h"

namespace caldb {

namespace {

struct EngineMetrics {
  obs::Gauge* active_sessions =
      obs::Metrics().gauge("caldb.engine.active_sessions");
  obs::Gauge* active_sessions_max =
      obs::Metrics().gauge("caldb.engine.active_sessions_max");
  obs::Counter* statements = obs::Metrics().counter("caldb.engine.statements");
  obs::Counter* read_locks = obs::Metrics().counter("caldb.engine.read_locks");
  obs::Counter* write_locks =
      obs::Metrics().counter("caldb.engine.write_locks");
  obs::Histogram* read_wait_ns =
      obs::Metrics().histogram("caldb.engine.lock_wait_ns.read");
  obs::Histogram* write_wait_ns =
      obs::Metrics().histogram("caldb.engine.lock_wait_ns.write");
  obs::Counter* cron_advances =
      obs::Metrics().counter("caldb.engine.cron.advances");
  obs::Counter* recovery_runs = obs::Metrics().counter("caldb.recovery.runs");
  obs::Counter* recovery_snapshots =
      obs::Metrics().counter("caldb.recovery.snapshot_loads");
  obs::Counter* recovery_replayed =
      obs::Metrics().counter("caldb.recovery.replayed_records");
  obs::Counter* recovery_replay_errors =
      obs::Metrics().counter("caldb.recovery.replay_errors");
  obs::Counter* recovery_torn_tails =
      obs::Metrics().counter("caldb.recovery.torn_tails");
  obs::Histogram* recovery_ns =
      obs::Metrics().histogram("caldb.recovery.ns");
  obs::Counter* checkpoints =
      obs::Metrics().counter("caldb.storage.checkpoints");
  obs::Histogram* checkpoint_ns =
      obs::Metrics().histogram("caldb.storage.checkpoint_ns");
};

EngineMetrics& Metrics() {
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

// Whether executing `compiled` can modify database state, from the
// precomputed write classification.  The one dynamic bit: a plain
// retrieve is a read unless retrieve-event rules are armed at execution
// time (a §4 event rule's action may write) — an atomic flag read, so
// the hot path never re-inspects (let alone re-parses) the statement.
bool StatementWrites(const CompiledStatement& compiled, const Database& db) {
  switch (compiled.write_class) {
    case CompiledStatement::WriteClass::kRead:
      return false;
    case CompiledStatement::WriteClass::kWrite:
      return true;
    case CompiledStatement::WriteClass::kReadUnlessRetrieveRules:
      return db.HasRetrieveRules();
  }
  return true;
}

// Lifespan round-trip for kDefineCalendar records ("" = none, else
// "lo,hi" — the catalog_io.h convention).
std::string FormatLifespan(const std::optional<Interval>& lifespan) {
  if (!lifespan.has_value()) return "";
  return std::to_string(lifespan->lo) + "," + std::to_string(lifespan->hi);
}

Result<std::optional<Interval>> ParseLifespanField(std::string_view text) {
  if (text.empty()) return std::optional<Interval>(std::nullopt);
  std::vector<std::string_view> parts = StrSplit(text, ',');
  if (parts.size() != 2) {
    return Status::ParseError("bad lifespan field '" + std::string(text) + "'");
  }
  CALDB_ASSIGN_OR_RETURN(int64_t lo, ParseInt64(parts[0]));
  CALDB_ASSIGN_OR_RETURN(int64_t hi, ParseInt64(parts[1]));
  CALDB_ASSIGN_OR_RETURN(Interval interval, MakeInterval(lo, hi));
  return std::optional<Interval>(interval);
}

}  // namespace

Engine::Engine(EngineOptions opts)
    : opts_(opts),
      catalog_(TimeSystem{opts.epoch}),
      stmt_cache_(opts.stmt_cache_entries),
      clock_(opts.start_day),
      cron_target_(opts.start_day),
      cron_reached_(opts.start_day) {}

Result<std::unique_ptr<Engine>> Engine::Create(EngineOptions opts) {
  opts.pool_threads = std::max(1, opts.pool_threads);
  auto engine = std::unique_ptr<Engine>(new Engine(opts));
  CALDB_RETURN_IF_ERROR(engine->Init());
  return engine;
}

Status Engine::Init() {
  CALDB_RETURN_IF_ERROR(RegisterCalendarFunctions(&db_, &catalog_));
  if (!opts_.data_dir.empty()) {
    // Durable start: snapshot restore + WAL replay build rules_/cron_ and
    // open the writer.  No lock needed — no other thread exists yet.
    CALDB_RETURN_IF_ERROR(Recover());
  } else {
    CALDB_ASSIGN_OR_RETURN(
        rules_, TemporalRuleManager::Create(&catalog_, &db_, opts_.rule_horizon,
                                            opts_.rule_unit));
    cron_ = std::make_unique<DbCron>(rules_.get(), &clock_, opts_.probe_period);
  }
  pool_ = std::make_unique<ThreadPool>(opts_.pool_threads);
  if (opts_.slow_statement_ns >= 0) {
    Database::SetSlowStatementThresholdNs(opts_.slow_statement_ns);
  }
  std::string snapshot_path = opts_.metrics_snapshot_path;
  int snapshot_interval_ms = opts_.metrics_snapshot_interval_ms;
  if (snapshot_path.empty()) {
    const char* env_path = std::getenv("CALDB_METRICS_FILE");
    if (env_path != nullptr && *env_path != '\0') {
      snapshot_path = env_path;
      const char* env_ms = std::getenv("CALDB_METRICS_INTERVAL_MS");
      if (env_ms != nullptr && *env_ms != '\0') {
        snapshot_interval_ms = std::atoi(env_ms);
      }
    }
  }
  if (!snapshot_path.empty()) {
    obs::SnapshotterOptions snap_opts;
    snap_opts.path = snapshot_path;
    snap_opts.interval_ms = snapshot_interval_ms;
    snapshotter_ = std::make_unique<obs::MetricsSnapshotter>(snap_opts);
    CALDB_RETURN_IF_ERROR(snapshotter_->Start());
    obs::LogEvent(obs::LogLevel::kInfo, "engine.snapshotter",
                  {{"path", snapshot_path},
                   {"interval_ms", snapshot_interval_ms}});
  }
  cron_thread_ = std::thread([this] { CronLoop(); });
  return Status::OK();
}

Engine::~Engine() {
  // Flip the liveness token before any teardown: a PreparedStatement
  // executed from here on fails with a clean Status instead of touching a
  // dying engine (engine/session.h).
  alive_->store(false, std::memory_order_release);
  Stop();
  // Stop() is idempotent and only checkpoints on its first call; post-Stop
  // single-threaded statements still append, so push their tail to disk.
  if (wal_ != nullptr) (void)wal_->Sync();
}

std::string Engine::SnapshotPath() const {
  return opts_.data_dir + "/snapshot";
}

std::string Engine::WalPath() const { return opts_.data_dir + "/wal"; }

Status Engine::Recover() {
  const int64_t start_ns = obs::NowNs();
  Metrics().recovery_runs->Increment();
  std::error_code ec;
  std::filesystem::create_directories(opts_.data_dir, ec);
  if (ec) {
    return Status::Internal("cannot create data dir '" + opts_.data_dir +
                            "': " + ec.message());
  }

  // 1. Latest valid snapshot: catalog, tables, clock.
  CALDB_ASSIGN_OR_RETURN(storage::SnapshotReadResult snapshot,
                         storage::ReadSnapshotFile(SnapshotPath()));
  uint64_t snapshot_lsn = 0;
  if (snapshot.found) {
    const storage::SnapshotImage& image = snapshot.image;
    if (!(image.epoch == opts_.epoch)) {
      return Status::InvalidArgument(
          "snapshot epoch " + FormatCivil(image.epoch) +
          " does not match engine epoch " + FormatCivil(opts_.epoch));
    }
    CALDB_RETURN_IF_ERROR(RestoreCatalog(image.catalog_dump, &catalog_));
    CALDB_RETURN_IF_ERROR(storage::RestoreTables(image, &db_));
    clock_.AdvanceTo(image.clock_day);  // clamps: start_day may be later
    snapshot_lsn = image.last_lsn;
    recovery_stats_.snapshot_loaded = true;
    Metrics().recovery_snapshots->Increment();
  }

  // 2. Rule machinery on top of the restored tables (Create skips the
  //    RULE-INFO/RULE-TIME tables when the snapshot already brought them).
  CALDB_ASSIGN_OR_RETURN(
      rules_, TemporalRuleManager::Create(&catalog_, &db_, opts_.rule_horizon,
                                          opts_.rule_unit));
  if (snapshot.found) {
    for (const auto& rule : snapshot.image.temporal_rules) {
      TemporalAction action;
      action.command = rule.command;
      CALDB_RETURN_IF_ERROR(rules_->RestoreRule(rule.id, rule.name,
                                                rule.expression,
                                                std::move(action),
                                                rule.condition_query));
    }
    rules_->SetNextId(snapshot.image.next_rule_id);
    CALDB_RETURN_IF_ERROR(storage::RestoreEventRules(snapshot.image, &db_));
  }
  cron_ = std::make_unique<DbCron>(rules_.get(), &clock_, opts_.probe_period);

  // 3. WAL tail: replay everything past the snapshot, in log order.  A
  //    record that failed originally fails identically on replay — same
  //    state either way — so replay errors are logged, counted, and
  //    skipped rather than aborting recovery.
  CALDB_ASSIGN_OR_RETURN(storage::WalReadResult wal,
                         storage::ReadWal(WalPath()));
  uint64_t max_lsn = snapshot_lsn;
  auto note_replay_error = [&](const Status& st, const storage::WalRecord& r) {
    ++recovery_stats_.replay_errors;
    Metrics().recovery_replay_errors->Increment();
    obs::LogEvent(obs::LogLevel::kWarn, "storage.replay_error",
                  {{"lsn", r.lsn},
                   {"type", static_cast<int64_t>(r.type)},
                   {"error", st.ToString()}});
  };
  for (const storage::WalRecord& record : wal.records) {
    if (record.lsn <= snapshot_lsn) continue;  // superseded by the snapshot
    max_lsn = record.lsn;
    ++recovery_stats_.wal_records_replayed;
    Metrics().recovery_replayed->Increment();
    switch (record.type) {
      case storage::WalRecordType::kStatement: {
        // Through the shared statement cache: replaying thousands of
        // identical statement shapes parses each distinct shape once.
        Result<QueryResult> r = [&]() -> Result<QueryResult> {
          CALDB_ASSIGN_OR_RETURN(CompiledStatementPtr compiled,
                                 stmt_cache_.GetOrCompile(record.a));
          return db_.Replay(*compiled);
        }();
        if (!r.ok()) note_replay_error(r.status(), record);
        break;
      }
      case storage::WalRecordType::kDeclareRule: {
        TemporalAction action;
        action.command = record.c;
        Result<int64_t> r = rules_->DeclareRule(record.a, record.b,
                                                std::move(action), record.day,
                                                record.d);
        if (!r.ok()) note_replay_error(r.status(), record);
        break;
      }
      case storage::WalRecordType::kDropRule: {
        Status st = rules_->DropRule(record.a);
        if (!st.ok()) note_replay_error(st, record);
        break;
      }
      case storage::WalRecordType::kAdvance: {
        // Re-fires the rules the original advance fired, in the same
        // (fire_day, rule_id) order — the firings themselves were never
        // logged, only the advance that triggered them.
        Status st = cron_->AdvanceTo(record.day);
        if (!st.ok()) note_replay_error(st, record);
        break;
      }
      case storage::WalRecordType::kDefineCalendar: {
        Status st = [&] {
          CALDB_ASSIGN_OR_RETURN(std::optional<Interval> lifespan,
                                 ParseLifespanField(record.c));
          return catalog_.DefineDerived(record.a, record.b, lifespan);
        }();
        if (!st.ok()) note_replay_error(st, record);
        break;
      }
      case storage::WalRecordType::kDropCalendar: {
        Status st = catalog_.Drop(record.a);
        if (!st.ok()) note_replay_error(st, record);
        break;
      }
      case storage::WalRecordType::kParamStatement: {
        // One compiled shape per distinct statement text, one decoded
        // bind list per record: a burst of value-only-varying executions
        // replays with a single parse.
        Result<QueryResult> r = [&]() -> Result<QueryResult> {
          CALDB_ASSIGN_OR_RETURN(CompiledStatementPtr compiled,
                                 stmt_cache_.GetOrCompile(record.a));
          CALDB_ASSIGN_OR_RETURN(ParamList params,
                                 storage::DecodeParamValues(record.b));
          return db_.Replay(*compiled, params);
        }();
        if (!r.ok()) note_replay_error(r.status(), record);
        break;
      }
    }
  }

  // 4. Torn tail: drop the unusable bytes so the appender never writes
  //    after garbage.
  if (wal.torn_tail) {
    obs::LogEvent(obs::LogLevel::kWarn, "storage.torn_tail",
                  {{"path", WalPath()},
                   {"valid_bytes", wal.valid_bytes},
                   {"reason", wal.tail_error}});
    CALDB_RETURN_IF_ERROR(storage::TruncateWal(WalPath(), wal.valid_bytes));
    recovery_stats_.torn_tail_truncated = true;
    Metrics().recovery_torn_tails->Increment();
  }

  // 5. Open the appender past everything replayed, and line the DBCRON
  //    coordination up with the recovered clock (the thread starts later
  //    in Init; overdue RULE-TIME entries fire on the next advance, late,
  //    exactly once — the paper's catch-up contract).
  storage::WalWriter::Options wal_opts;
  wal_opts.fsync = opts_.fsync_policy;
  wal_opts.batch_bytes = std::max<int64_t>(1, opts_.wal_batch_bytes);
  CALDB_ASSIGN_OR_RETURN(wal_,
                         storage::WalWriter::Open(WalPath(), wal_opts,
                                                  max_lsn + 1));
  cron_target_ = cron_reached_ = clock_.NowDay();

  Metrics().recovery_ns->Record(obs::NowNs() - start_ns);
  obs::LogEvent(obs::LogLevel::kInfo, "storage.recovery",
                {{"data_dir", opts_.data_dir},
                 {"snapshot", recovery_stats_.snapshot_loaded},
                 {"replayed", recovery_stats_.wal_records_replayed},
                 {"replay_errors", recovery_stats_.replay_errors},
                 {"torn_tail", recovery_stats_.torn_tail_truncated},
                 {"clock_day", clock_.NowDay()}});
  return Status::OK();
}

LockManager::Guard Engine::AcquireRead() const {
  Metrics().read_locks->Increment();
  const int64_t t0 = obs::Enabled() ? obs::NowNs() : 0;
  LockManager::Guard lock = lock_mgr_.AcquireGlobalShared();
  if (t0 != 0) Metrics().read_wait_ns->Record(obs::NowNs() - t0);
  return lock;
}

LockManager::Guard Engine::AcquireWrite() const {
  Metrics().write_locks->Increment();
  const int64_t t0 = obs::Enabled() ? obs::NowNs() : 0;
  LockManager::Guard lock = lock_mgr_.AcquireGlobalExclusive();
  if (t0 != 0) Metrics().write_wait_ns->Record(obs::NowNs() - t0);
  return lock;
}

LockManager::Guard Engine::AcquireStatementTables(
    const std::vector<std::string>& tables, bool exclusive) const {
  if (exclusive) {
    Metrics().write_locks->Increment();
  } else {
    Metrics().read_locks->Increment();
  }
  // The table_locks.{acquired,wait_ns} instruments are recorded inside
  // the manager itself (engine/lock_manager.cc).
  return lock_mgr_.AcquireTables(tables, exclusive);
}

std::unique_ptr<Session> Engine::CreateSession() {
  Metrics().active_sessions->Add(1);
  Metrics().active_sessions->SetWithMax(Metrics().active_sessions->value(),
                                        Metrics().active_sessions_max);
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(this, id));
}

void Engine::ReleaseSession() {
  Metrics().active_sessions->Add(-1);
}

Result<QueryResult> Engine::Execute(const std::string& statement,
                                    const EvalScope* ambient) {
  // The facade's no-throw contract (common/result.h): a defect below this
  // frame surfaces as kInternal, never as an exception crossing the API.
  try {
    Result<QueryResult> result = ExecuteImpl(statement, ambient);
    MaybeCheckpoint();
    return result;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in Execute: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in Execute");
  }
}

Status Engine::LogDurable(storage::WalRecord record) {
  if (wal_ == nullptr) return Status::OK();
  Result<uint64_t> lsn = wal_->Append(std::move(record));
  if (!lsn.ok()) {
    // Effects are applied in memory but not persisted — surface it; the
    // caller turns it into the operation's status.
    return lsn.status().WithContext("WAL append");
  }
  if (opts_.checkpoint_wal_bytes > 0 &&
      wal_->bytes() >= opts_.checkpoint_wal_bytes) {
    checkpoint_due_.store(true, std::memory_order_release);
  }
  return Status::OK();
}

void Engine::MaybeCheckpoint() {
  if (wal_ == nullptr || !checkpoint_due_.load(std::memory_order_acquire)) {
    return;
  }
  bool expected = true;
  if (!checkpoint_due_.compare_exchange_strong(expected, false)) return;
  Status st = Checkpoint();
  if (!st.ok()) {
    obs::LogEvent(obs::LogLevel::kWarn, "storage.checkpoint_error",
                  {{"error", st.ToString()}});
  }
}

Status Engine::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("engine has no data dir to checkpoint to");
  }
  try {
    LockManager::Guard lock = AcquireWrite();
    return CheckpointLocked();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in Checkpoint: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in Checkpoint");
  }
}

Status Engine::CheckpointLocked() {
  const int64_t start_ns = obs::NowNs();
  CALDB_ASSIGN_OR_RETURN(
      storage::SnapshotImage image,
      storage::CaptureSnapshot(db_, catalog_, *rules_, clock_.NowDay(),
                               wal_->last_lsn()));
  CALDB_RETURN_IF_ERROR(storage::WriteSnapshotFile(SnapshotPath(), image));
  // A crash before this truncation replays stale frames — harmless, their
  // LSNs are <= the snapshot's and replay skips them.
  CALDB_RETURN_IF_ERROR(wal_->ResetAfterCheckpoint());
  Metrics().checkpoints->Increment();
  Metrics().checkpoint_ns->Record(obs::NowNs() - start_ns);
  obs::LogEvent(obs::LogLevel::kInfo, "storage.checkpoint",
                {{"path", SnapshotPath()},
                 {"last_lsn", static_cast<int64_t>(image.last_lsn)},
                 {"clock_day", image.clock_day}});
  return Status::OK();
}

Status Engine::DefineCalendar(const std::string& name,
                              const std::string& script,
                              std::optional<Interval> lifespan_days) {
  try {
    // The exclusive lock serializes the WAL append with statement/rule
    // records (lock order: db_mu_ before catalog internals).
    LockManager::Guard lock = AcquireWrite();
    CALDB_RETURN_IF_ERROR(catalog_.DefineDerived(name, script, lifespan_days));
    storage::WalRecord record;
    record.type = storage::WalRecordType::kDefineCalendar;
    record.a = name;
    record.b = script;
    record.c = FormatLifespan(lifespan_days);
    return LogDurable(std::move(record));
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in DefineCalendar: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in DefineCalendar");
  }
}

Status Engine::DropCalendar(const std::string& name) {
  try {
    LockManager::Guard lock = AcquireWrite();
    CALDB_RETURN_IF_ERROR(catalog_.Drop(name));
    storage::WalRecord record;
    record.type = storage::WalRecordType::kDropCalendar;
    record.a = name;
    return LogDurable(std::move(record));
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in DropCalendar: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in DropCalendar");
  }
}

Result<QueryResult> Engine::ExecuteImpl(const std::string& statement,
                                        const EvalScope* ambient) {
  // The text pipeline is now compile-through-cache + handle execution:
  // each distinct statement shape is parsed once per cache residency.
  CALDB_ASSIGN_OR_RETURN(CompiledStatementPtr compiled,
                         stmt_cache_.GetOrCompile(statement));
  return ExecuteCompiledImpl(*compiled, nullptr, ambient);
}

Result<CompiledStatementPtr> Engine::Prepare(const std::string& statement) {
  try {
    return stmt_cache_.GetOrCompile(statement);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in Prepare: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in Prepare");
  }
}

Result<QueryResult> Engine::ExecuteCompiled(const CompiledStatementPtr& compiled,
                                            const EvalScope* ambient) {
  if (compiled == nullptr || compiled->stmt == nullptr) {
    return Status::InvalidArgument("null compiled statement");
  }
  try {
    Result<QueryResult> result = ExecuteCompiledImpl(*compiled, nullptr,
                                                     ambient);
    MaybeCheckpoint();
    return result;
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in ExecuteCompiled: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in ExecuteCompiled");
  }
}

Result<QueryResult> Engine::ExecuteCompiled(const CompiledStatementPtr& compiled,
                                            const ParamList& params,
                                            const EvalScope* ambient) {
  if (compiled == nullptr || compiled->stmt == nullptr) {
    return Status::InvalidArgument("null compiled statement");
  }
  try {
    Result<QueryResult> result = ExecuteCompiledImpl(*compiled, &params,
                                                     ambient);
    MaybeCheckpoint();
    return result;
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in ExecuteCompiled: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in ExecuteCompiled");
  }
}

Result<QueryResult> Engine::ExecuteCompiledImpl(const CompiledStatement& compiled,
                                                const ParamList* params,
                                                const EvalScope* ambient) {
  // Bind-list validation happens before any lock or WAL traffic: a bad
  // arity or type never reaches execution, and an unbound placeholder is
  // an error here rather than deep inside evaluation.
  if (params != nullptr) {
    CALDB_RETURN_IF_ERROR(CheckParamList(compiled, *params));
  } else if (compiled.param_count > 0 &&
             (ambient == nullptr || ambient->params == nullptr)) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(compiled.param_count) +
        " parameter(s) " + RenderParamSignature(compiled) +
        "; bind them with the parameterized execute");
  }
  // Thread the bind list through the ambient scope — evaluation reads
  // params in place, so one compiled shape serves every binding.
  EvalScope bound_scope;
  if (params != nullptr) {
    if (ambient != nullptr) bound_scope = *ambient;
    bound_scope.params = params;
    ambient = &bound_scope;
  }
  Metrics().statements->Increment();
  obs::Tracer::Span span = obs::StartSpan("engine.execute");
  // Stamp the statement into the thread's LogContext (keeping whatever
  // session a Session installed a frame up) so slow-statement log lines
  // and event-rule audit records name what the user ran.
  obs::LogContext log_ctx = obs::CurrentLogContext();
  log_ctx.statement = compiled.text;
  obs::ScopedLogContext log_scope{std::move(log_ctx)};
  // HasRetrieveRules / HasEventRules are atomic reads, so classification
  // needs no lock; rules armed between classification and acquisition are
  // picked up by the next statement (same guarantee a probing daemon
  // gives) — arming itself is rule DDL, which takes the global exclusive
  // lock and so cannot interleave with a statement already running.
  const bool writes = StatementWrites(compiled, db_);
  // The per-table path needs an exact footprint.  For writes it further
  // needs no armed event rules (a firing's action may touch tables
  // outside the footprint) and no DDL (schema changes must exclude
  // everything).  Note armed *retrieve* rules reclassify the retrieve as
  // a write above, and HasRetrieveRules implies HasEventRules — so that
  // case falls back too, as required.
  const bool per_table =
      opts_.per_table_locks && compiled.footprint_exact && !compiled.is_ddl &&
      (!writes || !db_.HasEventRules());
  if (writes) {
    span.AddAttr("lock", per_table ? "table-write" : "write");
    // Encode the bind list for the redo record before taking the lock
    // (the values are immutable for the duration of the call).
    std::string encoded_params;
    if (wal_ != nullptr && params != nullptr && !params->empty()) {
      CALDB_ASSIGN_OR_RETURN(encoded_params,
                             storage::EncodeParamValues(*params));
    }
    Result<QueryResult> result = [&] {
      // Per-table DML holds exclusive locks on exactly its tables (under
      // the shared intent layer); the fallback holds the global exclusive
      // lock.  Either way the WAL append happens before release, so WAL
      // order matches execution order per table — concurrent appends from
      // disjoint-table writers interleave, but those records commute, and
      // the WalWriter's own mutex keeps each record atomic.
      LockManager::Guard lock =
          per_table ? AcquireStatementTables(compiled.tables, true)
                    : AcquireWrite();
      Result<QueryResult> r = db_.ExecuteParsed(*compiled.stmt, ambient,
                                                compiled.text);
      // Redo-log the statement whatever its outcome: a failing statement
      // may have applied partial effects, and replaying it fails
      // identically — deterministic either way.  (Not reached for parse
      // errors.)  A bound execution logs kParamStatement (text + encoded
      // values); recovery recompiles the shape once and replays each
      // record's own bind list.
      storage::WalRecord redo;
      if (params != nullptr && !params->empty()) {
        redo.type = storage::WalRecordType::kParamStatement;
        redo.a = compiled.text;
        redo.b = std::move(encoded_params);
      } else {
        redo.type = storage::WalRecordType::kStatement;
        redo.a = compiled.text;
      }
      Status logged = LogDurable(std::move(redo));
      if (!logged.ok() && r.ok()) return Result<QueryResult>(logged);
      return r;
    }();
    // DDL changed schema or rule state: drop cached statements whose
    // precomputed metadata could now be stale.  Outside the db lock (the
    // cache mutex is a leaf); statements racing this drop re-compile on
    // their next miss.  (DDL is never per-table, so the fallback lock
    // covered the execution.)
    if (compiled.is_ddl && result.ok()) {
      stmt_cache_.InvalidateTables(compiled.tables);
    }
    return result;
  }
  if (per_table) {
    // Shared locks on exactly the retrieve's tables: readers of table A
    // are oblivious to a writer hammering table B.
    span.AddAttr("lock", "table-read");
    LockManager::Guard lock = AcquireStatementTables(compiled.tables, false);
    return db_.ExecuteParsed(*compiled.stmt, ambient, compiled.text);
  }
  if (opts_.per_table_locks) {
    // A read that did not qualify for the footprint path (hand-built
    // explain, or any shape without exact metadata) may touch tables it
    // cannot name: under the per-table scheme only the global exclusive
    // lock excludes per-table writers from all of them.  The global
    // *shared* layer alone would not.
    span.AddAttr("lock", "write");
    LockManager::Guard lock = AcquireWrite();
    return db_.ExecuteParsed(*compiled.stmt, ambient, compiled.text);
  }
  // Legacy discipline (per_table_locks = false): every read shares the
  // one global lock, every write excludes — the single-mutex baseline.
  span.AddAttr("lock", "read");
  LockManager::Guard lock = AcquireRead();
  return db_.ExecuteParsed(*compiled.stmt, ambient, compiled.text);
}

std::future<Result<QueryResult>> Engine::ExecuteAsync(std::string statement) {
  // Capture the submitter's trace and log context so the statement stays
  // one span tree (and one session attribution) across the pool boundary;
  // the pool's own isolating context is swapped out inside the task.
  const obs::TraceContext trace_ctx = obs::Tracer::CurrentContext();
  obs::LogContext log_ctx = obs::CurrentLogContext();
  // Not SubmitTask: when Stop() races the submit, a dropped packaged_task
  // would surface as a broken_promise *exception* from future::get — the
  // rejection has to come back as a Status like every other failure.
  auto task = std::make_shared<std::packaged_task<Result<QueryResult>()>>(
      [this, stmt = std::move(statement), trace_ctx,
       log_ctx = std::move(log_ctx)] {
        obs::ScopedTraceContext trace_scope{trace_ctx};
        obs::ScopedLogContext log_scope{log_ctx};
        return Execute(stmt);
      });
  std::future<Result<QueryResult>> result = task->get_future();
  if (stopped() || !pool_->Submit([task] { (*task)(); })) {
    std::promise<Result<QueryResult>> p;
    p.set_value(Status::InvalidArgument("engine is stopped"));
    return p.get_future();
  }
  return result;
}

std::vector<Result<QueryResult>> Engine::ExecuteBatch(
    const std::vector<std::string>& statements) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(statements.size());
  for (const std::string& stmt : statements) {
    futures.push_back(ExecuteAsync(stmt));
  }
  std::vector<Result<QueryResult>> results;
  results.reserve(statements.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

Result<int64_t> Engine::DeclareRule(const std::string& name,
                                    const std::string& expression,
                                    TemporalAction action,
                                    const std::string& condition_query) {
  try {
    LockManager::Guard lock = AcquireWrite();
    const TimePoint declared_at = Now();
    const std::string command = action.command;
    const bool has_callback = static_cast<bool>(action.callback);
    CALDB_ASSIGN_OR_RETURN(
        int64_t id, rules_->DeclareRule(name, expression, std::move(action),
                                        declared_at, condition_query));
    if (command.empty() && has_callback) {
      // A callback cannot be redo-logged; the declaration will not survive
      // recovery (docs/DURABILITY.md) — re-register it after restart.
      obs::LogEvent(obs::LogLevel::kWarn, "storage.skip_callback_rule",
                    {{"rule", name}});
      return id;
    }
    storage::WalRecord record;
    record.type = storage::WalRecordType::kDeclareRule;
    record.a = name;
    record.b = expression;
    record.c = command;
    record.d = condition_query;
    record.day = declared_at;
    CALDB_RETURN_IF_ERROR(LogDurable(std::move(record)));
    return id;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in DeclareRule: ") +
                            e.what());
  }
}

Status Engine::DropTemporalRule(const std::string& name) {
  LockManager::Guard lock = AcquireWrite();
  CALDB_RETURN_IF_ERROR(rules_->DropRule(name));
  storage::WalRecord record;
  record.type = storage::WalRecordType::kDropRule;
  record.a = name;
  return LogDurable(std::move(record));
}

Status Engine::AdvanceTo(TimePoint day) {
  if (!IsValidPoint(day)) {
    return Status::InvalidArgument("cannot advance to point 0");
  }
  std::unique_lock<std::mutex> lock(cron_mu_);
  if (cron_stop_) return Status::InvalidArgument("engine is stopped");
  if (day > cron_target_) {
    cron_target_ = day;
    cron_cv_.notify_one();
  }
  cron_done_cv_.wait(lock,
                     [&] { return cron_reached_ >= day || cron_stop_; });
  Status st = cron_status_;
  lock.unlock();
  MaybeCheckpoint();
  return st;
}

Status Engine::AdvanceToCivil(const CivilDate& date) {
  return AdvanceTo(time_system().DayPointFromCivil(date));
}

DbCron::CronStats Engine::CronStats() const {
  // Firings mutate the stats under the exclusive lock (CronLoop), so a
  // shared lock makes this snapshot race-free.
  LockManager::Guard lock = AcquireRead();
  return cron_->stats();
}

void Engine::CronLoop() {
  for (;;) {
    TimePoint target;
    {
      std::unique_lock<std::mutex> lock(cron_mu_);
      cron_cv_.wait(lock,
                    [&] { return cron_stop_ || cron_target_ > cron_reached_; });
      if (cron_stop_ && cron_target_ <= cron_reached_) return;
      target = cron_target_;
    }
    // Advance in probe-period chunks so readers interleave with firings
    // instead of stalling behind one long exclusive section.
    TimePoint reached;
    {
      std::unique_lock<std::mutex> lock(cron_mu_);
      reached = cron_reached_;
    }
    while (reached < target) {
      const TimePoint chunk =
          std::min(target, PointAdd(reached, cron_->probe_period_days()));
      Status st;
      {
        // The root of this advance's span tree: cron.probe and cron.fire
        // spans started inside AdvanceTo parent to it, so `\trace` shows
        // one tree per clock advance on the daemon thread.
        obs::Tracer::Span span = obs::StartSpan("cron.advance");
        span.AddAttr("to_day", std::to_string(chunk));
        LockManager::Guard db_lock = AcquireWrite();
        st = cron_->AdvanceTo(chunk);
        // Redo-log the advance whatever its status: firings before an
        // error already applied, and replaying the advance reproduces
        // them (and the error) deterministically.  The firings themselves
        // are never logged — only the advance that triggers them.
        storage::WalRecord record;
        record.type = storage::WalRecordType::kAdvance;
        record.day = chunk;
        Status logged = LogDurable(std::move(record));
        if (!logged.ok() && st.ok()) st = logged;
      }
      Metrics().cron_advances->Increment();
      reached = chunk;
      std::unique_lock<std::mutex> lock(cron_mu_);
      cron_reached_ = chunk;
      if (!st.ok() && cron_status_.ok()) cron_status_ = st;
      cron_done_cv_.notify_all();
      // A concurrent AdvanceTo may have raised the target mid-advance.
      target = cron_target_;
      if (cron_stop_ && !st.ok()) break;
    }
  }
}

Status Engine::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    return Status::OK();
  }
  {
    std::unique_lock<std::mutex> lock(cron_mu_);
    cron_stop_ = true;
    cron_cv_.notify_all();
    cron_done_cv_.notify_all();
  }
  if (cron_thread_.joinable()) cron_thread_.join();
  {
    // Waiters blocked in AdvanceTo must observe the stop.
    std::unique_lock<std::mutex> lock(cron_mu_);
    cron_done_cv_.notify_all();
  }
  if (pool_ != nullptr) pool_->Shutdown();
  if (snapshotter_ != nullptr) snapshotter_->Stop();
  Status st;
  {
    std::unique_lock<std::mutex> lock(cron_mu_);
    st = cron_status_;
  }
  if (wal_ != nullptr) {
    if (opts_.checkpoint_on_stop) {
      Status cp = Checkpoint();
      if (!cp.ok()) {
        obs::LogEvent(obs::LogLevel::kWarn, "storage.checkpoint_error",
                      {{"error", cp.ToString()}});
        if (st.ok()) st = cp;
      }
    } else {
      Status sync = wal_->Sync();
      if (!sync.ok() && st.ok()) st = sync;
    }
  }
  // Telemetry sinks drain last, so the checkpoint's own log events make
  // it out too: the logger's buffered file sink (the snapshotter flushed
  // its final delta in Stop() above).
  obs::Log().Flush();
  return st;
}

}  // namespace caldb
