#include "engine/engine.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <variant>

#include "catalog/calendar_functions.h"
#include "common/macros.h"
#include "engine/session.h"
#include "obs/obs.h"

namespace caldb {

namespace {

struct EngineMetrics {
  obs::Gauge* active_sessions =
      obs::Metrics().gauge("caldb.engine.active_sessions");
  obs::Gauge* active_sessions_max =
      obs::Metrics().gauge("caldb.engine.active_sessions_max");
  obs::Counter* statements = obs::Metrics().counter("caldb.engine.statements");
  obs::Counter* read_locks = obs::Metrics().counter("caldb.engine.read_locks");
  obs::Counter* write_locks =
      obs::Metrics().counter("caldb.engine.write_locks");
  obs::Histogram* read_wait_ns =
      obs::Metrics().histogram("caldb.engine.lock_wait_ns.read");
  obs::Histogram* write_wait_ns =
      obs::Metrics().histogram("caldb.engine.lock_wait_ns.write");
  obs::Counter* cron_advances =
      obs::Metrics().counter("caldb.engine.cron.advances");
};

EngineMetrics& Metrics() {
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

// Whether executing `stmt` can modify database state.  Retrieves are
// reads unless they materialize ("retrieve into") or retrieve-event rules
// are armed (a §4 event rule's action may write).  EXPLAIN describes the
// plan without running it; PROFILE executes the inner statement, so it
// inherits the inner statement's classification.
bool StatementWrites(const Statement& stmt, const Database& db) {
  if (const auto* retrieve = std::get_if<RetrieveStmt>(&stmt)) {
    return !retrieve->into.empty() || db.HasRetrieveRules();
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    if (!explain->profile) return false;
    Result<Statement> inner = ParseStatement(explain->query);
    // An unparsable inner statement fails identically under either lock.
    if (!inner.ok()) return false;
    return StatementWrites(*inner, db);
  }
  return true;
}

}  // namespace

Engine::Engine(EngineOptions opts)
    : opts_(opts),
      catalog_(TimeSystem{opts.epoch}),
      clock_(opts.start_day),
      cron_target_(opts.start_day),
      cron_reached_(opts.start_day) {}

Result<std::unique_ptr<Engine>> Engine::Create(EngineOptions opts) {
  opts.pool_threads = std::max(1, opts.pool_threads);
  auto engine = std::unique_ptr<Engine>(new Engine(opts));
  CALDB_RETURN_IF_ERROR(engine->Init());
  return engine;
}

Status Engine::Init() {
  CALDB_RETURN_IF_ERROR(RegisterCalendarFunctions(&db_, &catalog_));
  CALDB_ASSIGN_OR_RETURN(
      rules_, TemporalRuleManager::Create(&catalog_, &db_, opts_.rule_horizon,
                                          opts_.rule_unit));
  cron_ = std::make_unique<DbCron>(rules_.get(), &clock_, opts_.probe_period);
  pool_ = std::make_unique<ThreadPool>(opts_.pool_threads);
  if (opts_.slow_statement_ns >= 0) {
    Database::SetSlowStatementThresholdNs(opts_.slow_statement_ns);
  }
  std::string snapshot_path = opts_.metrics_snapshot_path;
  int snapshot_interval_ms = opts_.metrics_snapshot_interval_ms;
  if (snapshot_path.empty()) {
    const char* env_path = std::getenv("CALDB_METRICS_FILE");
    if (env_path != nullptr && *env_path != '\0') {
      snapshot_path = env_path;
      const char* env_ms = std::getenv("CALDB_METRICS_INTERVAL_MS");
      if (env_ms != nullptr && *env_ms != '\0') {
        snapshot_interval_ms = std::atoi(env_ms);
      }
    }
  }
  if (!snapshot_path.empty()) {
    obs::SnapshotterOptions snap_opts;
    snap_opts.path = snapshot_path;
    snap_opts.interval_ms = snapshot_interval_ms;
    snapshotter_ = std::make_unique<obs::MetricsSnapshotter>(snap_opts);
    CALDB_RETURN_IF_ERROR(snapshotter_->Start());
    obs::LogEvent(obs::LogLevel::kInfo, "engine.snapshotter",
                  {{"path", snapshot_path},
                   {"interval_ms", snapshot_interval_ms}});
  }
  cron_thread_ = std::thread([this] { CronLoop(); });
  return Status::OK();
}

Engine::~Engine() { Stop(); }

Engine::ReadLock Engine::AcquireRead() const {
  Metrics().read_locks->Increment();
  const int64_t t0 = obs::Enabled() ? obs::NowNs() : 0;
  ReadLock lock(db_mu_);
  if (t0 != 0) Metrics().read_wait_ns->Record(obs::NowNs() - t0);
  return lock;
}

Engine::WriteLock Engine::AcquireWrite() const {
  Metrics().write_locks->Increment();
  const int64_t t0 = obs::Enabled() ? obs::NowNs() : 0;
  WriteLock lock(db_mu_);
  if (t0 != 0) Metrics().write_wait_ns->Record(obs::NowNs() - t0);
  return lock;
}

std::unique_ptr<Session> Engine::CreateSession() {
  Metrics().active_sessions->Add(1);
  Metrics().active_sessions->SetWithMax(Metrics().active_sessions->value(),
                                        Metrics().active_sessions_max);
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(this, id));
}

void Engine::ReleaseSession() {
  Metrics().active_sessions->Add(-1);
}

Result<QueryResult> Engine::Execute(const std::string& statement,
                                    const EvalScope* ambient) {
  // The facade's no-throw contract (common/result.h): a defect below this
  // frame surfaces as kInternal, never as an exception crossing the API.
  try {
    return ExecuteImpl(statement, ambient);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in Execute: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("uncaught non-exception throw in Execute");
  }
}

Result<QueryResult> Engine::ExecuteImpl(const std::string& statement,
                                        const EvalScope* ambient) {
  Metrics().statements->Increment();
  obs::Tracer::Span span = obs::StartSpan("engine.execute");
  // Stamp the statement into the thread's LogContext (keeping whatever
  // session a Session installed a frame up) so slow-statement log lines
  // and event-rule audit records name what the user ran.
  obs::LogContext log_ctx = obs::CurrentLogContext();
  log_ctx.statement = statement;
  obs::ScopedLogContext log_scope{std::move(log_ctx)};
  CALDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  // HasRetrieveRules is an atomic read, so classification needs no lock;
  // rules armed between classification and acquisition are picked up by
  // the next statement (same guarantee a probing daemon gives).
  if (StatementWrites(stmt, db_)) {
    span.AddAttr("lock", "write");
    WriteLock lock = AcquireWrite();
    return db_.ExecuteParsed(stmt, ambient, statement);
  }
  span.AddAttr("lock", "read");
  ReadLock lock = AcquireRead();
  return db_.ExecuteParsed(stmt, ambient, statement);
}

std::future<Result<QueryResult>> Engine::ExecuteAsync(std::string statement) {
  // Capture the submitter's trace and log context so the statement stays
  // one span tree (and one session attribution) across the pool boundary;
  // the pool's own isolating context is swapped out inside the task.
  const obs::TraceContext trace_ctx = obs::Tracer::CurrentContext();
  obs::LogContext log_ctx = obs::CurrentLogContext();
  // Not SubmitTask: when Stop() races the submit, a dropped packaged_task
  // would surface as a broken_promise *exception* from future::get — the
  // rejection has to come back as a Status like every other failure.
  auto task = std::make_shared<std::packaged_task<Result<QueryResult>()>>(
      [this, stmt = std::move(statement), trace_ctx,
       log_ctx = std::move(log_ctx)] {
        obs::ScopedTraceContext trace_scope{trace_ctx};
        obs::ScopedLogContext log_scope{log_ctx};
        return Execute(stmt);
      });
  std::future<Result<QueryResult>> result = task->get_future();
  if (stopped() || !pool_->Submit([task] { (*task)(); })) {
    std::promise<Result<QueryResult>> p;
    p.set_value(Status::InvalidArgument("engine is stopped"));
    return p.get_future();
  }
  return result;
}

std::vector<Result<QueryResult>> Engine::ExecuteBatch(
    const std::vector<std::string>& statements) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(statements.size());
  for (const std::string& stmt : statements) {
    futures.push_back(ExecuteAsync(stmt));
  }
  std::vector<Result<QueryResult>> results;
  results.reserve(statements.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

Result<int64_t> Engine::DeclareRule(const std::string& name,
                                    const std::string& expression,
                                    TemporalAction action,
                                    const std::string& condition_query) {
  try {
    WriteLock lock = AcquireWrite();
    return rules_->DeclareRule(name, expression, std::move(action), Now(),
                               condition_query);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("uncaught exception in DeclareRule: ") +
                            e.what());
  }
}

Status Engine::DropTemporalRule(const std::string& name) {
  WriteLock lock = AcquireWrite();
  return rules_->DropRule(name);
}

Status Engine::AdvanceTo(TimePoint day) {
  if (!IsValidPoint(day)) {
    return Status::InvalidArgument("cannot advance to point 0");
  }
  std::unique_lock<std::mutex> lock(cron_mu_);
  if (cron_stop_) return Status::InvalidArgument("engine is stopped");
  if (day > cron_target_) {
    cron_target_ = day;
    cron_cv_.notify_one();
  }
  cron_done_cv_.wait(lock,
                     [&] { return cron_reached_ >= day || cron_stop_; });
  return cron_status_;
}

Status Engine::AdvanceToCivil(const CivilDate& date) {
  return AdvanceTo(time_system().DayPointFromCivil(date));
}

DbCron::CronStats Engine::CronStats() const {
  // Firings mutate the stats under the exclusive lock (CronLoop), so a
  // shared lock makes this snapshot race-free.
  ReadLock lock = AcquireRead();
  return cron_->stats();
}

void Engine::CronLoop() {
  for (;;) {
    TimePoint target;
    {
      std::unique_lock<std::mutex> lock(cron_mu_);
      cron_cv_.wait(lock,
                    [&] { return cron_stop_ || cron_target_ > cron_reached_; });
      if (cron_stop_ && cron_target_ <= cron_reached_) return;
      target = cron_target_;
    }
    // Advance in probe-period chunks so readers interleave with firings
    // instead of stalling behind one long exclusive section.
    TimePoint reached;
    {
      std::unique_lock<std::mutex> lock(cron_mu_);
      reached = cron_reached_;
    }
    while (reached < target) {
      const TimePoint chunk =
          std::min(target, PointAdd(reached, cron_->probe_period_days()));
      Status st;
      {
        // The root of this advance's span tree: cron.probe and cron.fire
        // spans started inside AdvanceTo parent to it, so `\trace` shows
        // one tree per clock advance on the daemon thread.
        obs::Tracer::Span span = obs::StartSpan("cron.advance");
        span.AddAttr("to_day", std::to_string(chunk));
        WriteLock db_lock = AcquireWrite();
        st = cron_->AdvanceTo(chunk);
      }
      Metrics().cron_advances->Increment();
      reached = chunk;
      std::unique_lock<std::mutex> lock(cron_mu_);
      cron_reached_ = chunk;
      if (!st.ok() && cron_status_.ok()) cron_status_ = st;
      cron_done_cv_.notify_all();
      // A concurrent AdvanceTo may have raised the target mid-advance.
      target = cron_target_;
      if (cron_stop_ && !st.ok()) break;
    }
  }
}

Status Engine::Stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    return Status::OK();
  }
  {
    std::unique_lock<std::mutex> lock(cron_mu_);
    cron_stop_ = true;
    cron_cv_.notify_all();
    cron_done_cv_.notify_all();
  }
  if (cron_thread_.joinable()) cron_thread_.join();
  {
    // Waiters blocked in AdvanceTo must observe the stop.
    std::unique_lock<std::mutex> lock(cron_mu_);
    cron_done_cv_.notify_all();
  }
  if (pool_ != nullptr) pool_->Shutdown();
  if (snapshotter_ != nullptr) snapshotter_->Stop();
  Status st;
  {
    std::unique_lock<std::mutex> lock(cron_mu_);
    st = cron_status_;
  }
  return st;
}

}  // namespace caldb
