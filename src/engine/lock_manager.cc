#include "engine/lock_manager.h"

#include <algorithm>

#include "obs/obs.h"

namespace caldb {

namespace {

struct LockMetrics {
  obs::Counter* acquired =
      obs::Metrics().counter("caldb.engine.table_locks.acquired");
  obs::Counter* fallbacks =
      obs::Metrics().counter("caldb.engine.table_locks.fallbacks");
  obs::Histogram* wait_ns =
      obs::Metrics().histogram("caldb.engine.table_locks.wait_ns");
};

LockMetrics& Metrics() {
  static LockMetrics* m = new LockMetrics();
  return *m;
}

}  // namespace

LockManager::Guard& LockManager::Guard::operator=(Guard&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    mode_ = other.mode_;
    tables_exclusive_ = other.tables_exclusive_;
    table_locks_ = std::move(other.table_locks_);
    other.mgr_ = nullptr;
    other.mode_ = Mode::kNone;
    other.table_locks_.clear();
  }
  return *this;
}

void LockManager::Guard::Release() {
  if (mode_ == Mode::kNone) return;
  // Reverse acquisition order: tables (last to first), then the intent
  // layer.  Unlock order does not affect correctness for mutexes, but
  // keeping it LIFO makes the guard read like nested scopes.
  for (auto it = table_locks_.rbegin(); it != table_locks_.rend(); ++it) {
    if (tables_exclusive_) {
      (*it)->unlock();
    } else {
      (*it)->unlock_shared();
    }
  }
  table_locks_.clear();
  if (mode_ == Mode::kGlobalExclusive) {
    mgr_->global_mu_.unlock();
  } else {
    mgr_->global_mu_.unlock_shared();
  }
  mode_ = Mode::kNone;
  mgr_ = nullptr;
}

std::shared_mutex* LockManager::TableMutex(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(registry_mu_);
    auto it = table_mu_.find(name);
    if (it != table_mu_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(registry_mu_);
  std::unique_ptr<std::shared_mutex>& slot = table_mu_[name];
  if (slot == nullptr) slot = std::make_unique<std::shared_mutex>();
  return slot.get();
}

LockManager::Guard LockManager::AcquireTables(
    const std::vector<std::string>& tables, bool exclusive) {
  Metrics().acquired->Increment();
  const int64_t t0 = obs::Enabled() ? obs::NowNs() : 0;
  Guard guard;
  guard.mgr_ = this;
  guard.tables_exclusive_ = exclusive;
  global_mu_.lock_shared();
  guard.mode_ = Guard::Mode::kTables;
  auto lock_one = [&guard, exclusive](std::shared_mutex* mu) {
    // Resolution happened under the registry leaf lock; block on the
    // table lock with the registry released — a blocked acquisition must
    // never stall other statements' name resolution.
    if (exclusive) {
      mu->lock();
    } else {
      mu->lock_shared();
    }
    guard.table_locks_.push_back(mu);
  };
  if (tables.size() == 1) {
    // The dominant case (point retrieves, single-table DML): no copy, no
    // sort — a one-element set is trivially in sorted order.
    guard.table_locks_.reserve(1);
    lock_one(TableMutex(tables[0]));
  } else {
    // Sorted-name order keeps concurrent footprint statements acquiring
    // any overlapping table sets in one global order — the
    // deadlock-freedom invariant.  Compiled metadata deduplicates but
    // does not sort.
    std::vector<std::string> sorted(tables);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    guard.table_locks_.reserve(sorted.size());
    for (const std::string& name : sorted) lock_one(TableMutex(name));
  }
  if (t0 != 0) Metrics().wait_ns->Record(obs::NowNs() - t0);
  return guard;
}

LockManager::Guard LockManager::AcquireGlobalExclusive() {
  Metrics().fallbacks->Increment();
  const int64_t t0 = obs::Enabled() ? obs::NowNs() : 0;
  Guard guard;
  guard.mgr_ = this;
  global_mu_.lock();
  guard.mode_ = Guard::Mode::kGlobalExclusive;
  if (t0 != 0) Metrics().wait_ns->Record(obs::NowNs() - t0);
  return guard;
}

LockManager::Guard LockManager::AcquireGlobalShared() {
  Guard guard;
  guard.mgr_ = this;
  global_mu_.lock_shared();
  guard.mode_ = Guard::Mode::kGlobalShared;
  return guard;
}

}  // namespace caldb
