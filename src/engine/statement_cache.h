// StatementCache — a bounded, thread-safe LRU of compiled statements,
// shared by every Session of an Engine.
//
// The system's hot loops are repetitive: DBCRON fires the same action
// text on every tick, event rules re-run one command per matching append,
// recovery replays thousands of identical statement shapes, and clients
// hammer the same retrieves.  The cache memoizes CompileStatement per
// whitespace-normalized statement text, so each distinct shape pays the
// parser exactly once and every later execution is a hash lookup
// returning a shared immutable handle.
//
// Invalidation: compiled ASTs resolve tables at execution time, so a
// cached handle can never dangle into a dropped schema — but its
// precomputed metadata (referenced tables, write classification) must not
// go stale either.  After any DDL (create/drop table, create index,
// define/drop rule, retrieve-into) the Engine calls InvalidateTables with
// the statement's table list; entries referencing any of those tables are
// dropped.  DDL with no statically known scope (drop rule) flushes
// everything.
//
// Thread safety: one mutex over the map+LRU list.  Compilation happens
// OUTSIDE the lock (a miss compiles, then inserts; a racing duplicate
// insert is coalesced), so a slow parse never blocks concurrent hits.
//
// Instruments: caldb.stmt_cache.{hits,misses,evictions,invalidations}
// counters and the caldb.stmt_cache.size gauge (docs/OBSERVABILITY.md).

#ifndef CALDB_ENGINE_STATEMENT_CACHE_H_
#define CALDB_ENGINE_STATEMENT_CACHE_H_

#include <cstddef>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/compiled_statement.h"

namespace caldb {

class StatementCache {
 public:
  /// `max_entries` bounds the cache; 0 disables caching (every call
  /// compiles fresh — useful to isolate the cache in benches).
  explicit StatementCache(size_t max_entries = 512);

  StatementCache(const StatementCache&) = delete;
  StatementCache& operator=(const StatementCache&) = delete;

  /// The pipeline entry point: returns the cached handle for `text`
  /// (keyed by normalized text), compiling and inserting on a miss.
  /// Parse errors are NOT cached — a later identical call re-parses, so a
  /// typo fixed by a schema change (or just retried) is not pinned.
  Result<CompiledStatementPtr> GetOrCompile(const std::string& text);

  /// Drops every entry whose referenced-table list intersects `tables`;
  /// an empty list means the scope is unknown and flushes everything.
  /// Counted once per call in caldb.stmt_cache.invalidations.
  void InvalidateTables(const std::vector<std::string>& tables);

  /// Drops everything (rule-state changes with no table scope).
  void InvalidateAll();

  /// Point-in-time accounting, for tests and the shell's \stmtcache.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t invalidations = 0;  // invalidation *calls*
    int64_t invalidated_entries = 0;
    size_t size = 0;
    size_t capacity = 0;
  };
  Stats stats() const;

  /// One row per cached entry, most recently used first.  `compiled` is
  /// the live shared handle — callers render param signatures etc. from
  /// it without re-locking the cache.  For the shell's \stmtcache.
  struct EntryInfo {
    std::string normalized_text;
    CompiledStatementPtr compiled;
  };
  std::vector<EntryInfo> Entries() const;

 private:
  struct Entry {
    CompiledStatementPtr compiled;
    std::list<std::string>::iterator lru_it;  // position in lru_ (MRU front)
  };

  // Caller holds mu_.  Removes `it` from both structures.
  void EraseLocked(std::unordered_map<std::string, Entry>::iterator it);

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace caldb

#endif  // CALDB_ENGINE_STATEMENT_CACHE_H_
