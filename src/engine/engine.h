// caldb::Engine — the concurrent run-time of the §4 architecture.
//
// The paper assumes DBCRON runs as a daemon *concurrent with* user
// sessions probing RULE-TIME.  The Engine realizes that: it owns the
// database, the CALENDARS catalog, the temporal-rule manager and DBCRON
// behind one thread-safe object, hands out per-client Session handles
// (see session.h), and executes statements from any number of threads:
//
//  - Database statements run under a per-table lock manager
//    (engine/lock_manager.h): a statement with an exact compiled
//    footprint locks just its tables — shared for retrieves, exclusive
//    for DML — so writers on disjoint tables proceed in parallel.
//    Statements whose footprint is unknowable (DDL, retrieve-into, rule
//    definitions, any DML while event rules are armed, rule firings,
//    checkpoints) fall back to a global exclusive lock that excludes
//    every footprint statement at once.
//  - The CALENDARS catalog carries its own internal locks (readers
//    scale; DefineDerived/DefineValues/Drop are exclusive), so calendar
//    evaluation never contends with table scans.
//  - DBCRON runs on a background thread that sleeps on a condition
//    variable until the virtual clock is advanced; rule firings happen
//    under the exclusive database lock, serialized against conflicting
//    writes.  Stop() drains the pending advance and joins.
//  - A fixed-size ThreadPool backs ExecuteAsync/ExecuteBatch for
//    parallel query execution.
//
// Construction of Database / DbCron / TemporalRuleManager directly is
// deprecated for servers: embed an Engine and use its accessors (the
// parts remain public for single-threaded library use and tests).
//
// Lock ordering (to stay deadlock-free): the lock manager's intent
// layer, then per-table mutexes in sorted-name order, then any catalog
// internal mutex.  The catalog never calls into the database, so the
// reverse edge cannot occur.
//
// Observability: "caldb.engine.*" (docs/OBSERVABILITY.md) — active
// session count, pool queue depth, per-mode lock wait histograms,
// per-table lock counters (caldb.engine.table_locks.*), statement/script
// counters.

#ifndef CALDB_ENGINE_ENGINE_H_
#define CALDB_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/calendar_catalog.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "engine/lock_manager.h"
#include "engine/statement_cache.h"
#include "obs/snapshot.h"
#include "rules/clock.h"
#include "rules/dbcron.h"
#include "rules/temporal_rules.h"
#include "storage/wal.h"

namespace caldb {

class Session;

struct EngineOptions {
  /// Day 1 of the engine's time system.
  CivilDate epoch{1993, 1, 1};
  /// The virtual clock's starting day.
  TimePoint start_day = 1;
  /// Worker threads backing ExecuteAsync / ExecuteBatch (>= 1).
  int pool_threads = 4;
  /// DBCRON probe period T, in rule-unit granules.
  int64_t probe_period = 7;
  /// Rule scheduling horizon, in rule-unit granules.
  TimePoint rule_horizon = 20000;
  /// Granularity of rule time points (DAYS; HOURS for process control).
  Granularity rule_unit = Granularity::kDays;
  /// Default gen-cache budget handed to each new Session's evaluator.
  size_t session_gen_cache_entries = 64;
  size_t session_gen_cache_bytes = 16u << 20;
  /// Capacity of the shared compiled-statement cache (LRU entries; every
  /// session, rule firing and WAL replay share it).  0 disables caching —
  /// each execution compiles fresh.  See engine/statement_cache.h.
  size_t stmt_cache_entries = 512;
  /// When true (the default), statements with an exact compiled footprint
  /// lock only their tables (engine/lock_manager.h); when false, every
  /// write takes the global exclusive lock and every read the global
  /// shared lock — the pre-PR-10 single-mutex discipline, kept for the
  /// bench baseline and for bisecting locking regressions.
  bool per_table_locks = true;

  // --- durability -----------------------------------------------------------

  /// When nonempty, the engine is durable: construction recovers from
  /// `<data_dir>/snapshot` + `<data_dir>/wal` (replaying the WAL tail and
  /// truncating a torn final record), every mutating operation appends a
  /// WAL record, and Stop() checkpoints.  Empty (the default) keeps the
  /// engine purely in-memory.  See docs/DURABILITY.md.
  std::string data_dir;
  /// When WAL appends reach disk (storage/wal.h): kAlways fsyncs before
  /// the statement is acknowledged, kBatch every `wal_batch_bytes`, kOff
  /// only at checkpoints.
  storage::FsyncPolicy fsync_policy = storage::FsyncPolicy::kBatch;
  /// kBatch: fsync once this many unsynced bytes accumulate.
  int64_t wal_batch_bytes = 64 * 1024;
  /// Auto-checkpoint once the WAL grows past this many bytes (0 disables;
  /// Stop() and the shell's \checkpoint still snapshot).
  int64_t checkpoint_wal_bytes = 8 << 20;
  /// Whether Stop() writes a snapshot and truncates the WAL.  Crash tests
  /// turn this off to exercise the replay path on a clean shutdown.
  bool checkpoint_on_stop = true;

  // --- telemetry ------------------------------------------------------------

  /// Slow-statement threshold, ns.  < 0 keeps the process-wide default
  /// (CALDB_SLOW_STMT_MS, else 20ms); 0 disables the slow-statement log.
  int64_t slow_statement_ns = -1;
  /// When nonempty (or CALDB_METRICS_FILE is set), the engine runs a
  /// MetricsSnapshotter appending one metrics-delta JSON line to this
  /// file every `metrics_snapshot_interval_ms` (see obs/snapshot.h).
  std::string metrics_snapshot_path;
  /// Snapshot period, ms (clamped to >= 10; CALDB_METRICS_INTERVAL_MS
  /// overrides when the path came from the environment).
  int metrics_snapshot_interval_ms = 1000;
};

class Engine {
 public:
  /// Builds the catalog, database (with the calendar operators of §5
  /// registered), temporal-rule manager and DBCRON, and starts the
  /// background threads.
  static Result<std::unique_ptr<Engine>> Create(EngineOptions opts = {});

  /// Stops the engine (see Stop) and tears the parts down.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// A new client session.  Sessions are cheap, single-threaded handles;
  /// create one per thread.  The Engine must outlive it.
  std::unique_ptr<Session> CreateSession();

  // --- statements -----------------------------------------------------------

  /// Parses and executes one database statement under the appropriate
  /// lock: shared for retrieve/explain, exclusive for anything that can
  /// write (including retrieves when retrieve-event rules are armed, and
  /// "retrieve into").  Never throws; never lets a callee's exception
  /// escape.
  Result<QueryResult> Execute(const std::string& statement,
                              const EvalScope* ambient = nullptr);

  /// Compiles one database statement through the shared StatementCache
  /// and returns the immutable handle: the prepared-execution entry
  /// point.  Preparing the same (whitespace-normalized) text twice
  /// returns the same handle without re-parsing.  Never throws.
  Result<CompiledStatementPtr> Prepare(const std::string& statement);

  /// Executes a compiled handle (from Prepare, or Database::Prepare).
  /// Lock classification comes from the handle's precomputed metadata —
  /// no text sniffing, no parsing, on the hot path.  Fails with
  /// InvalidArgument when the handle has $n placeholders (bind them with
  /// the ParamList overload).  Never throws.
  ///
  /// DEPRECATED as a public entry point: prefer Session::Prepare, which
  /// returns a PreparedStatement handle wrapping this (engine/session.h).
  Result<QueryResult> ExecuteCompiled(const CompiledStatementPtr& compiled,
                                      const EvalScope* ambient = nullptr);
  /// Executes a compiled handle with a bind list: params[0] binds $1.
  /// The list is validated against the handle's signature (arity +
  /// inferred types) before any lock is taken.  On the durable path the
  /// WAL gets one kParamStatement record — statement text plus the
  /// encoded values — so recovery replays one compiled shape per distinct
  /// statement no matter how many bindings ran.  Never throws.
  Result<QueryResult> ExecuteCompiled(const CompiledStatementPtr& compiled,
                                      const ParamList& params,
                                      const EvalScope* ambient = nullptr);

  /// Point-in-time accounting of the shared statement cache.
  StatementCache::Stats StatementCacheStats() const {
    return stmt_cache_.stats();
  }

  /// The cached entries themselves (MRU first), each with its live
  /// compiled handle — the shell's \stmtcache renders normalized text and
  /// parameter signature per row from this.
  std::vector<StatementCache::EntryInfo> StatementCacheEntries() const {
    return stmt_cache_.Entries();
  }

  /// Enqueues a statement on the pool; the future carries its result.
  std::future<Result<QueryResult>> ExecuteAsync(std::string statement);

  /// Executes a batch on the pool, preserving order of results.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<std::string>& statements);

  // --- temporal rules / clock -----------------------------------------------

  /// Declares a temporal rule ("On <expr> do <action>", §4) as of the
  /// current virtual day, under the exclusive lock.
  Result<int64_t> DeclareRule(const std::string& name,
                              const std::string& expression,
                              TemporalAction action,
                              const std::string& condition_query = "");

  /// Drops a temporal rule, under the exclusive lock.
  Status DropTemporalRule(const std::string& name);

  /// The current day on the engine's virtual clock.
  TimePoint Now() const { return clock_.NowDay(); }

  /// Plays the virtual clock forward to `day`, firing due temporal rules
  /// from the DBCRON thread.  Blocks until time has reached `day`; rules
  /// fire under the exclusive database lock, interleaved with (not inside)
  /// concurrent statements.  Returns the first firing error, if any.
  Status AdvanceTo(TimePoint day);
  Status AdvanceToCivil(const CivilDate& date);

  /// Snapshot of DBCRON's probe/fire counters (taken under a shared lock,
  /// so it is consistent with respect to firings).
  DbCron::CronStats CronStats() const;

  // --- durability -----------------------------------------------------------

  /// Whether this engine persists to a data directory.
  bool durable() const { return wal_ != nullptr; }

  /// Defines a derived calendar through the durable path: the definition
  /// is WAL-logged (and so survives recovery).  Equivalent to
  /// catalog().DefineDerived for an in-memory engine.
  Status DefineCalendar(const std::string& name, const std::string& script,
                        std::optional<Interval> lifespan_days = std::nullopt);
  /// Drops a calendar through the durable path.
  Status DropCalendar(const std::string& name);

  /// Writes a snapshot of the full engine state and truncates the WAL,
  /// under the exclusive lock (the shell's \checkpoint).  InvalidArgument
  /// for an in-memory engine.
  Status Checkpoint();

  struct RecoveryStats {
    bool snapshot_loaded = false;
    int64_t wal_records_replayed = 0;
    int64_t replay_errors = 0;
    bool torn_tail_truncated = false;
  };
  /// What recovery did at construction (zeros for an in-memory engine or
  /// a cold start).
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Drains the DBCRON thread's pending advance and the pool, then joins
  /// both.  Idempotent; called by the destructor.  After Stop, Execute
  /// keeps working single-threaded but AdvanceTo / ExecuteAsync fail.
  Status Stop();

  // --- locked access to the parts -------------------------------------------

  /// Runs `fn(const Database&)` with every writer excluded.  Under the
  /// per-table scheme this is the global exclusive lock: a whole-database
  /// read has no statement footprint, and the global *shared* layer alone
  /// would not exclude per-table writers.
  template <typename F>
  auto WithDbRead(F&& fn) const {
    LockManager::Guard lock = AcquireWrite();
    return fn(static_cast<const Database&>(db_));
  }

  /// Runs `fn(Database&)` under the global exclusive lock.
  template <typename F>
  auto WithDbWrite(F&& fn) {
    LockManager::Guard lock = AcquireWrite();
    return fn(db_);
  }

  /// Runs `fn(const TemporalRuleManager&)` under the global shared lock
  /// (rule metadata lives both in the manager and in RULE-INFO/RULE-TIME
  /// rows; it is only ever mutated under the global exclusive lock, so
  /// the shared intent layer suffices).
  template <typename F>
  auto WithRulesRead(F&& fn) const {
    LockManager::Guard lock = AcquireRead();
    return fn(static_cast<const TemporalRuleManager&>(*rules_));
  }

  // --- accessors ------------------------------------------------------------

  const TimeSystem& time_system() const { return catalog_.time_system(); }
  /// The catalog is internally thread-safe; use it directly.
  CalendarCatalog& catalog() { return catalog_; }
  const CalendarCatalog& catalog() const { return catalog_; }
  const EngineOptions& options() const { return opts_; }
  ThreadPool& pool() { return *pool_; }
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

 private:
  explicit Engine(EngineOptions opts);
  Status Init();
  // Bookkeeping for the active_sessions gauge (called by ~Session).
  void ReleaseSession();

  /// Global shared (intent) lock: excludes global-exclusive holders but
  /// NOT per-table writers — safe for state mutated only under the
  /// exclusive path (cron counters, rule metadata), never for table data.
  LockManager::Guard AcquireRead() const;
  /// Global exclusive lock — the fallback path every footprint statement
  /// and every other global holder yields to.
  LockManager::Guard AcquireWrite() const;
  /// Footprint acquisition: the statement's tables, shared or exclusive,
  /// under the shared intent layer.
  LockManager::Guard AcquireStatementTables(
      const std::vector<std::string>& tables, bool exclusive) const;

  Result<QueryResult> ExecuteImpl(const std::string& statement,
                                  const EvalScope* ambient);
  /// The shared execution body: classifies the lock from the compiled
  /// metadata, runs under it, WAL-logs writes, and invalidates the
  /// statement cache after DDL.  `params` (nullable) is the bind list for
  /// the handle's $n placeholders.
  Result<QueryResult> ExecuteCompiledImpl(const CompiledStatement& compiled,
                                          const ParamList* params,
                                          const EvalScope* ambient);
  void CronLoop();

  // --- durability internals -------------------------------------------------

  std::string SnapshotPath() const;
  std::string WalPath() const;
  /// Builds rules_/cron_ from the data dir: snapshot restore, WAL replay,
  /// torn-tail truncation.  Called from Init instead of the in-memory
  /// construction when opts_.data_dir is set.
  Status Recover();
  /// Appends one WAL record (no-op for an in-memory engine; callers hold
  /// the exclusive lock so log order matches execution order).  Flags an
  /// auto-checkpoint when the log outgrows the threshold.
  Status LogDurable(storage::WalRecord record);
  /// Snapshot + WAL truncation; caller holds the exclusive lock.
  Status CheckpointLocked();
  /// Runs a due auto-checkpoint, if flagged.  Must be called lock-free.
  void MaybeCheckpoint();

  EngineOptions opts_;
  CalendarCatalog catalog_;
  Database db_;
  // The shared compiled-statement cache.  Internally locked; its mutex is
  // a leaf (never held while acquiring db_mu_ or any catalog mutex).
  StatementCache stmt_cache_;
  VirtualClock clock_;
  std::unique_ptr<TemporalRuleManager> rules_;
  std::unique_ptr<DbCron> cron_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter_;
  // Durability (null for an in-memory engine).  Appends happen under
  // db_mu_ exclusive; the writer's own mutex covers Sync from Stop().
  std::unique_ptr<storage::WalWriter> wal_;
  RecoveryStats recovery_stats_;
  std::atomic<bool> checkpoint_due_{false};

  // Two-layer lock over the database (engine/lock_manager.h): per-table
  // shared_mutexes under a global intent layer.  Footprint statements
  // lock just their tables; DDL, rule firings and checkpoints take the
  // global exclusive fallback.  mutable: const snapshot methods take the
  // shared intent side.
  mutable LockManager lock_mgr_;

  // Liveness token shared with PreparedStatement handles: flipped false
  // at the top of ~Engine, so a handle executed after destruction fails
  // with a clean Status instead of dereferencing a dangling Engine*.
  // (A *concurrent* destruction is still the caller's race to lose; the
  // token makes sequential misuse safe and diagnosable.)
  std::shared_ptr<std::atomic<bool>> alive_ =
      std::make_shared<std::atomic<bool>>(true);

  // DBCRON thread coordination.  cron_target_ only grows; cron_reached_
  // trails it; both are guarded by cron_mu_.
  std::thread cron_thread_;
  mutable std::mutex cron_mu_;
  std::condition_variable cron_cv_;       // wakes the DBCRON thread
  std::condition_variable cron_done_cv_;  // wakes AdvanceTo waiters
  TimePoint cron_target_ = 1;
  TimePoint cron_reached_ = 1;
  Status cron_status_;
  bool cron_stop_ = false;

  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> next_session_id_{1};

  friend class Session;
};

}  // namespace caldb

#endif  // CALDB_ENGINE_ENGINE_H_
