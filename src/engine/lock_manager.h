// LockManager — per-table locking for the Engine's critical section.
//
// The paper's §4 architecture has DBCRON concurrent with user sessions;
// until PR 10 the Engine realized that with a single std::shared_mutex
// over the whole Database, so writes on unrelated tables serialized.
// The LockManager splits that lock in two layers:
//
//   - a global *intent* shared_mutex.  Statements whose footprint is
//     known (the compiled metadata's table list) hold it SHARED for the
//     duration; operations whose footprint is unknowable — DDL,
//     retrieve-into, rule definitions, rule firings, WAL
//     checkpoint/recovery — take it EXCLUSIVE, which by construction
//     excludes every footprint statement at once.  This is the "existing
//     global exclusive path": correctness never depends on footprint
//     precision.
//   - one shared_mutex per table, created on first reference and never
//     destroyed (a drop leaves the mutex behind; the registry is a map of
//     stable heap slots).  A footprint statement locks exactly its tables
//     — shared for retrieves, exclusive for DML — so writers on disjoint
//     tables proceed in parallel under the shared intent layer.
//
// Deadlock freedom: every footprint acquisition locks the intent layer
// first, then its tables in sorted-name order; global-exclusive holders
// take only the intent mutex.  The registry mutex is a leaf — held only
// to resolve names to mutex pointers, never while blocking on a table
// lock.
//
// Observability ("caldb.engine.table_locks.*", docs/OBSERVABILITY.md):
//   .acquired   footprint acquisitions (per-table path taken)
//   .fallbacks  global-exclusive acquisitions (fallback path taken)
//   .wait_ns    wall time spent blocked acquiring either path

#ifndef CALDB_ENGINE_LOCK_MANAGER_H_
#define CALDB_ENGINE_LOCK_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace caldb {

class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Move-only RAII over one acquisition.  Destruction (or explicit
  /// Release) unlocks everything in reverse acquisition order.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept { *this = std::move(other); }
    Guard& operator=(Guard&& other) noexcept;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    void Release();
    bool held() const { return mode_ != Mode::kNone; }

   private:
    friend class LockManager;
    enum class Mode {
      kNone,
      kGlobalShared,     // intent shared, no table locks
      kGlobalExclusive,  // intent exclusive (the fallback path)
      kTables,           // intent shared + per-table locks
    };
    LockManager* mgr_ = nullptr;
    Mode mode_ = Mode::kNone;
    bool tables_exclusive_ = false;
    // The table mutexes this guard holds, in acquisition (sorted-name)
    // order.  Pointers are stable: registry slots are never destroyed.
    std::vector<std::shared_mutex*> table_locks_;
  };

  /// Footprint acquisition: intent shared, then each named table (sorted,
  /// deduplicated) shared or exclusive.  An empty list degrades to the
  /// intent-shared layer alone — correct for statements that touch no
  /// table data.
  Guard AcquireTables(const std::vector<std::string>& tables, bool exclusive);

  /// The fallback path: intent exclusive.  Excludes every footprint
  /// statement and every other global holder; used for operations whose
  /// footprint cannot be known from compiled metadata (DDL, rule firings,
  /// checkpoints) and for whole-database reads.
  Guard AcquireGlobalExclusive();

  /// Intent shared with no table locks.  This does NOT exclude per-table
  /// writers — safe only for state that is mutated exclusively under the
  /// global-exclusive path (rule-manager metadata, DBCRON counters),
  /// never for table data.
  Guard AcquireGlobalShared();

 private:
  std::shared_mutex* TableMutex(const std::string& name);

  std::shared_mutex global_mu_;
  // Leaf lock: guards the name -> mutex registry only; released before
  // blocking on any table lock.  Reader/writer because the steady state
  // is all lookups: a table's slot is created once (first statement to
  // touch it) and never removed, so after warm-up every statement takes
  // only the shared side.
  std::shared_mutex registry_mu_;
  std::map<std::string, std::unique_ptr<std::shared_mutex>> table_mu_;
};

}  // namespace caldb

#endif  // CALDB_ENGINE_LOCK_MANAGER_H_
