// CompiledStatement — the parse-once handle of the statement pipeline.
//
// Every execution surface of the system (Session::Execute, rule firings,
// WAL replay, EXPLAIN/PROFILE) used to re-lex and re-parse statement text
// on each call.  CompileStatement runs the parser exactly once and wraps
// the result in an immutable, shareable handle carrying the metadata the
// layers above need without looking at the AST again:
//
//   - write classification, so the Engine picks its reader/writer lock
//     from precomputed data instead of text sniffing;
//   - the referenced tables, so the Engine's StatementCache can invalidate
//     exactly the entries a DDL statement could affect;
//   - whitespace-normalized text (quote-aware), the cache key under which
//     equivalent spellings of one statement share a single compilation;
//   - the measured parse cost, surfaced by benches and EXPLAIN tooling.
//
// Handles are deeply immutable (`shared_ptr<const ...>`): any number of
// sessions, the DBCRON thread and recovery may execute one concurrently.
// Pipeline: text → compile → cache → execute (see DESIGN.md §5).

#ifndef CALDB_DB_COMPILED_STATEMENT_H_
#define CALDB_DB_COMPILED_STATEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/query.h"

namespace caldb {

struct CompiledStatement {
  /// How executing the statement interacts with the Engine's lock.
  /// kReadUnlessRetrieveRules is the dynamic case: a plain retrieve is a
  /// read, unless retrieve-event rules are armed at execution time (a §4
  /// rule action may write) — that half of the decision stays with the
  /// Engine, which reads Database::HasRetrieveRules() per execution.
  enum class WriteClass {
    kRead,                     // never writes (explain without profile)
    kWrite,                    // DML / DDL / rule DDL / retrieve into
    kReadUnlessRetrieveRules,  // plain retrieve
  };

  /// The parsed statement.  Shared and never mutated after compilation.
  std::shared_ptr<const Statement> stmt;
  /// The original source text, exactly as compiled (WAL redo records and
  /// slow-statement log lines carry this, so replay is byte-identical).
  std::string text;
  /// Whitespace-normalized text (NormalizeStatementText) — the statement
  /// cache key, so "retrieve  (x.v)" and "retrieve (x.v)" share an entry.
  std::string normalized;
  WriteClass write_class = WriteClass::kWrite;
  /// Tables the statement references (targets, range variables, rule
  /// tables), deduplicated.  DDL invalidation matches against this list.
  std::vector<std::string> tables;
  /// Whether the statement changes schema or rule state (create/drop
  /// table, create index, define/drop rule): executing it must invalidate
  /// cached statements that reference the affected tables.
  bool is_ddl = false;
  /// Whether `tables` is the statement's *complete* lock footprint: every
  /// table the execution can touch is in the list.  True for plain
  /// retrieves and single-table DML; false for anything that can reach
  /// tables not nameable at compile time (retrieve-into creates one, rule
  /// DDL re-arms firing paths, a hand-built explain has no metadata).
  /// The Engine's per-table lock path requires this — a statement without
  /// an exact footprint falls back to the global exclusive lock
  /// (engine/lock_manager.h).
  bool footprint_exact = false;
  /// Number of positional placeholders ($1..$param_count).  Placeholder
  /// numbering must be contiguous from $1; a gap ($1, $3) fails
  /// compilation.  0 for a statement without placeholders.
  int param_count = 0;
  /// Inferred type per parameter, index 0 = $1.  kNull means "any": the
  /// type could not be inferred from the statement shape.  kInt and
  /// kFloat are one numeric class at bind time — either binds both.
  std::vector<ValueType> param_types;
  /// Wall time the parse took, ns (0 when obs timing is disabled).
  int64_t parse_ns = 0;
};

using CompiledStatementPtr = std::shared_ptr<const CompiledStatement>;

/// Positional parameter values bound at execute time; element i binds $i+1.
using ParamList = std::vector<Value>;

/// Parses `text` once and precomputes the metadata above.  The returned
/// handle is immutable and safe to share across threads.
Result<CompiledStatementPtr> CompileStatement(std::string_view text);

/// Wraps an already parsed statement (used by the explain pipeline and by
/// callers that build ASTs programmatically).  `text` should be the
/// statement's source when available — it feeds logs and WAL records.
CompiledStatementPtr CompileParsedStatement(Statement stmt, std::string text,
                                            int64_t parse_ns = 0);

/// Collapses whitespace runs outside quoted literals to single spaces and
/// trims the ends.  Quote-aware: text inside '...' / "..." is preserved
/// byte for byte, so normalization never changes statement meaning.
/// Placeholders normalize like any other token, so "where a.id = $1" is
/// one cache entry no matter what values are later bound to it.
std::string NormalizeStatementText(std::string_view text);

/// Validates a bind list against the compiled signature: exact arity
/// (params.size() == param_count); kInt and kFloat interchange as one
/// numeric class; a null value binds any slot; an inferred kNull ("any")
/// slot accepts any value.  Returns InvalidArgument on mismatch.
Status CheckParamList(const CompiledStatement& compiled,
                      const ParamList& params);

/// Renders the parameter signature for tooling, e.g. "($1:int, $2:any)";
/// "()" when the statement takes no parameters.
std::string RenderParamSignature(const CompiledStatement& compiled);

}  // namespace caldb

#endif  // CALDB_DB_COMPILED_STATEMENT_H_
