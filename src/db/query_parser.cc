#include <cctype>

#include "common/macros.h"
#include "common/strings.h"
#include "db/compiled_statement.h"
#include "db/query.h"
#include "obs/obs.h"

namespace caldb {

std::string_view DbEventName(DbEvent event) {
  switch (event) {
    case DbEvent::kAppend:
      return "append";
    case DbEvent::kDelete:
      return "delete";
    case DbEvent::kReplace:
      return "replace";
    case DbEvent::kRetrieve:
      return "retrieve";
  }
  return "?";
}

namespace {

enum class QTok {
  kIdent,
  kInt,
  kFloat,
  kString,
  kParam,  // positional placeholder $n, index in `int_value`
  kPunct,  // single/double char operator, text in `text`
  kEnd,
};

struct QToken {
  QTok kind = QTok::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;  // byte offset in the source (for `do` tails)
};

Result<std::vector<QToken>> QLex(std::string_view src) {
  std::vector<QToken> tokens;
  size_t i = 0;
  while (i < src.size()) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    QToken tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_')) {
        ++i;
      }
      tok.kind = QTok::kIdent;
      tok.text = std::string(src.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
        ++i;
      }
      if (i + 1 < src.size() && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        ++i;
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i]))) {
          ++i;
        }
        tok.kind = QTok::kFloat;
        // ParseDouble, not std::stod: an over-long literal must come back
        // as a ParseError, not an exception (no-throw contract,
        // common/result.h).
        CALDB_ASSIGN_OR_RETURN(tok.float_value,
                               ParseDouble(src.substr(start, i - start)));
      } else {
        tok.kind = QTok::kInt;
        tok.int_value = 0;
        for (size_t j = start; j < i; ++j) {
          tok.int_value = tok.int_value * 10 + (src[j] - '0');
        }
      }
    } else if (c == '$') {
      // Positional placeholder $n.  Strings are handled below, so a `$`
      // inside a quoted literal never reaches this branch.
      size_t start = ++i;
      while (i < src.size() &&
             std::isdigit(static_cast<unsigned char>(src[i]))) {
        ++i;
      }
      if (i == start) {
        return Status::ParseError(
            "expected a parameter number after '$' (placeholders are $1, "
            "$2, ...)");
      }
      tok.kind = QTok::kParam;
      tok.int_value = 0;
      for (size_t j = start; j < i && tok.int_value <= 1'000'000; ++j) {
        tok.int_value = tok.int_value * 10 + (src[j] - '0');
      }
      if (tok.int_value < 1 || tok.int_value > 1'000'000) {
        return Status::ParseError("parameter $" +
                                  std::string(src.substr(start, i - start)) +
                                  " out of range (placeholders start at $1)");
      }
      tok.text = "$" + std::to_string(tok.int_value);
    } else if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      tok.kind = QTok::kString;
      while (i < src.size() && src[i] != quote) {
        tok.text.push_back(src[i]);
        ++i;
      }
      if (i >= src.size()) {
        return Status::ParseError("unterminated string literal");
      }
      ++i;
    } else {
      tok.kind = QTok::kPunct;
      // Two-character operators.
      if (i + 1 < src.size()) {
        std::string_view two = src.substr(i, 2);
        if (two == "!=" || two == "<=" || two == ">=") {
          tok.text = std::string(two);
          i += 2;
          tokens.push_back(std::move(tok));
          continue;
        }
      }
      static constexpr std::string_view kSingles = "(),.=<>+-*/";
      if (kSingles.find(c) == std::string_view::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' in query");
      }
      tok.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  QToken end;
  end.kind = QTok::kEnd;
  end.offset = src.size();
  tokens.push_back(end);
  return tokens;
}

class QueryParser {
 public:
  QueryParser(std::string_view src, std::vector<QToken> tokens)
      : src_(src), tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatementTop() {
    if (MatchKeyword("retrieve")) return ParseRetrieve();
    if (MatchKeyword("append")) return ParseAppend();
    if (MatchKeyword("replace")) return ParseReplace();
    if (MatchKeyword("delete")) return ParseDelete();
    if (MatchKeyword("create")) {
      if (MatchKeyword("table")) return ParseCreateTable();
      if (MatchKeyword("index")) return ParseCreateIndex();
      return Fail("'table' or 'index' after 'create'");
    }
    if (MatchKeyword("define")) {
      CALDB_RETURN_IF_ERROR(ExpectKeyword("rule"));
      return ParseDefineRule();
    }
    if (MatchKeyword("drop")) {
      if (MatchKeyword("rule")) {
        DropRuleStmt stmt;
        CALDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("rule name"));
        CALDB_RETURN_IF_ERROR(ExpectEnd());
        return Statement{std::move(stmt)};
      }
      if (MatchKeyword("table")) {
        DropTableStmt stmt;
        CALDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
        CALDB_RETURN_IF_ERROR(ExpectEnd());
        return Statement{std::move(stmt)};
      }
      return Fail("'rule' or 'table' after 'drop'");
    }
    return Fail("a statement (retrieve/append/replace/delete/create/define/drop)");
  }

  Result<DbExprPtr> ParseExpressionTop() {
    CALDB_ASSIGN_OR_RETURN(DbExprPtr e, ParseOr());
    CALDB_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  const QToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const QToken& Advance() {
    return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
  }
  bool CheckPunct(std::string_view p) const {
    return Peek().kind == QTok::kPunct && Peek().text == p;
  }
  bool MatchPunct(std::string_view p) {
    if (!CheckPunct(p)) return false;
    Advance();
    return true;
  }
  bool CheckKeyword(std::string_view kw, size_t ahead = 0) const {
    return Peek(ahead).kind == QTok::kIdent &&
           EqualsIgnoreCase(Peek(ahead).text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status Fail(std::string_view wanted) const {
    const QToken& t = Peek();
    std::string found = t.kind == QTok::kEnd ? "end of query" : "'" + t.text + "'";
    if (t.kind == QTok::kInt) found = std::to_string(t.int_value);
    return Status::ParseError("expected " + std::string(wanted) + " but found " +
                              found);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Fail("'" + std::string(kw) + "'");
  }
  Status ExpectPunct(std::string_view p) {
    if (MatchPunct(p)) return Status::OK();
    return Fail("'" + std::string(p) + "'");
  }
  Status ExpectEnd() {
    if (Peek().kind == QTok::kEnd) return Status::OK();
    return Fail("end of query");
  }
  Result<std::string> ExpectIdent(std::string_view what) {
    if (Peek().kind != QTok::kIdent) return Fail(what);
    return Advance().text;
  }

  // --- statements -----------------------------------------------------------

  Result<Statement> ParseRetrieve() {
    RetrieveStmt stmt;
    if (MatchKeyword("into")) {
      CALDB_ASSIGN_OR_RETURN(stmt.into, ExpectIdent("result table name"));
    }
    CALDB_RETURN_IF_ERROR(ExpectPunct("("));
    while (true) {
      RetrieveStmt::Target target;
      CALDB_ASSIGN_OR_RETURN(target.expr, ParseOr());
      if (MatchKeyword("as")) {
        CALDB_ASSIGN_OR_RETURN(target.alias, ExpectIdent("alias"));
      } else {
        target.alias = target.expr->kind == DbExpr::Kind::kColumnRef
                           ? target.expr->column
                           : target.expr->ToString();
      }
      stmt.targets.push_back(std::move(target));
      if (!MatchPunct(",")) break;
    }
    CALDB_RETURN_IF_ERROR(ExpectPunct(")"));
    CALDB_RETURN_IF_ERROR(ExpectKeyword("from"));
    while (true) {
      RetrieveStmt::TableRef ref;
      CALDB_ASSIGN_OR_RETURN(ref.var, ExpectIdent("range variable"));
      CALDB_RETURN_IF_ERROR(ExpectKeyword("in"));
      CALDB_ASSIGN_OR_RETURN(ref.table, ExpectIdent("table name"));
      for (const RetrieveStmt::TableRef& existing : stmt.tables) {
        if (existing.var == ref.var) {
          return Status::ParseError("duplicate range variable '" + ref.var +
                                    "'");
        }
      }
      stmt.tables.push_back(std::move(ref));
      if (!MatchPunct(",")) break;
    }
    if (MatchKeyword("where")) {
      CALDB_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (MatchKeyword("group")) {
      CALDB_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        CALDB_ASSIGN_OR_RETURN(std::string first, ExpectIdent("group column"));
        std::string var;
        std::string column = first;
        if (MatchPunct(".")) {
          var = first;
          CALDB_ASSIGN_OR_RETURN(column, ExpectIdent("group column"));
        }
        stmt.group_by.emplace_back(var, column);
        if (!MatchPunct(",")) break;
      }
    }
    if (MatchKeyword("order")) {
      CALDB_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        CALDB_ASSIGN_OR_RETURN(std::string column, ExpectIdent("order column"));
        bool asc = true;
        if (MatchKeyword("desc")) {
          asc = false;
        } else {
          MatchKeyword("asc");
        }
        stmt.order_by.emplace_back(column, asc);
        if (!MatchPunct(",")) break;
      }
    }
    CALDB_RETURN_IF_ERROR(ExpectEnd());
    return Statement{std::move(stmt)};
  }

  Result<std::vector<std::pair<std::string, DbExprPtr>>> ParseSetList() {
    std::vector<std::pair<std::string, DbExprPtr>> sets;
    CALDB_RETURN_IF_ERROR(ExpectPunct("("));
    while (true) {
      CALDB_ASSIGN_OR_RETURN(std::string column, ExpectIdent("column name"));
      CALDB_RETURN_IF_ERROR(ExpectPunct("="));
      CALDB_ASSIGN_OR_RETURN(DbExprPtr value, ParseOr());
      sets.emplace_back(std::move(column), std::move(value));
      if (!MatchPunct(",")) break;
    }
    CALDB_RETURN_IF_ERROR(ExpectPunct(")"));
    return sets;
  }

  Result<Statement> ParseAppend() {
    AppendStmt stmt;
    CALDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    CALDB_ASSIGN_OR_RETURN(stmt.sets, ParseSetList());
    CALDB_RETURN_IF_ERROR(ExpectEnd());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseReplace() {
    ReplaceStmt stmt;
    CALDB_ASSIGN_OR_RETURN(stmt.var, ExpectIdent("range variable"));
    CALDB_RETURN_IF_ERROR(ExpectKeyword("in"));
    CALDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    CALDB_ASSIGN_OR_RETURN(stmt.sets, ParseSetList());
    if (MatchKeyword("where")) {
      CALDB_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    CALDB_RETURN_IF_ERROR(ExpectEnd());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseDelete() {
    DeleteStmt stmt;
    CALDB_ASSIGN_OR_RETURN(stmt.var, ExpectIdent("range variable"));
    CALDB_RETURN_IF_ERROR(ExpectKeyword("in"));
    CALDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (MatchKeyword("where")) {
      CALDB_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    CALDB_RETURN_IF_ERROR(ExpectEnd());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseCreateTable() {
    CreateTableStmt stmt;
    CALDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    CALDB_RETURN_IF_ERROR(ExpectPunct("("));
    while (true) {
      Column column;
      CALDB_ASSIGN_OR_RETURN(column.name, ExpectIdent("column name"));
      CALDB_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("column type"));
      CALDB_ASSIGN_OR_RETURN(column.type, ParseValueType(type_name));
      stmt.columns.push_back(std::move(column));
      if (!MatchPunct(",")) break;
    }
    CALDB_RETURN_IF_ERROR(ExpectPunct(")"));
    CALDB_RETURN_IF_ERROR(ExpectEnd());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseCreateIndex() {
    CreateIndexStmt stmt;
    CALDB_RETURN_IF_ERROR(ExpectKeyword("on"));
    CALDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    CALDB_RETURN_IF_ERROR(ExpectPunct("("));
    CALDB_ASSIGN_OR_RETURN(stmt.column, ExpectIdent("column name"));
    CALDB_RETURN_IF_ERROR(ExpectPunct(")"));
    CALDB_RETURN_IF_ERROR(ExpectEnd());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseDefineRule() {
    DefineRuleStmt stmt;
    CALDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("rule name"));
    CALDB_RETURN_IF_ERROR(ExpectKeyword("on"));
    CALDB_ASSIGN_OR_RETURN(std::string event, ExpectIdent("event"));
    if (EqualsIgnoreCase(event, "append")) {
      stmt.event = DbEvent::kAppend;
    } else if (EqualsIgnoreCase(event, "delete")) {
      stmt.event = DbEvent::kDelete;
    } else if (EqualsIgnoreCase(event, "replace")) {
      stmt.event = DbEvent::kReplace;
    } else if (EqualsIgnoreCase(event, "retrieve")) {
      stmt.event = DbEvent::kRetrieve;
    } else {
      return Status::ParseError("unknown rule event '" + event +
                                "' (append/delete/replace/retrieve)");
    }
    CALDB_RETURN_IF_ERROR(ExpectKeyword("to"));
    CALDB_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (MatchKeyword("where")) {
      CALDB_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (!CheckKeyword("do")) return Fail("'do'");
    const QToken& do_tok = Peek();
    // The action is the raw remainder of the query after 'do'.
    size_t tail_start = do_tok.offset + 2;
    stmt.action_command =
        std::string(TrimWhitespace(src_.substr(tail_start)));
    if (stmt.action_command.empty()) {
      return Status::ParseError("rule action after 'do' must not be empty");
    }
    return Statement{std::move(stmt)};
  }

  // --- expressions ----------------------------------------------------------

  Result<DbExprPtr> ParseOr() {
    CALDB_ASSIGN_OR_RETURN(DbExprPtr lhs, ParseAnd());
    while (MatchKeyword("or")) {
      CALDB_ASSIGN_OR_RETURN(DbExprPtr rhs, ParseAnd());
      auto node = std::make_shared<DbExpr>();
      node->kind = DbExpr::Kind::kLogical;
      node->log = LogOp::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<DbExprPtr> ParseAnd() {
    CALDB_ASSIGN_OR_RETURN(DbExprPtr lhs, ParseNot());
    while (MatchKeyword("and")) {
      CALDB_ASSIGN_OR_RETURN(DbExprPtr rhs, ParseNot());
      auto node = std::make_shared<DbExpr>();
      node->kind = DbExpr::Kind::kLogical;
      node->log = LogOp::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<DbExprPtr> ParseNot() {
    if (MatchKeyword("not")) {
      CALDB_ASSIGN_OR_RETURN(DbExprPtr inner, ParseNot());
      auto node = std::make_shared<DbExpr>();
      node->kind = DbExpr::Kind::kLogical;
      node->log = LogOp::kNot;
      node->lhs = std::move(inner);
      return node;
    }
    return ParseComparison();
  }

  Result<DbExprPtr> ParseComparison() {
    CALDB_ASSIGN_OR_RETURN(DbExprPtr lhs, ParseAdd());
    CmpOp op;
    if (MatchPunct("=")) {
      op = CmpOp::kEq;
    } else if (MatchPunct("!=")) {
      op = CmpOp::kNe;
    } else if (MatchPunct("<=")) {
      op = CmpOp::kLe;
    } else if (MatchPunct("<")) {
      op = CmpOp::kLt;
    } else if (MatchPunct(">=")) {
      op = CmpOp::kGe;
    } else if (MatchPunct(">")) {
      op = CmpOp::kGt;
    } else {
      return lhs;
    }
    CALDB_ASSIGN_OR_RETURN(DbExprPtr rhs, ParseAdd());
    auto node = std::make_shared<DbExpr>();
    node->kind = DbExpr::Kind::kCompare;
    node->cmp = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<DbExprPtr> ParseAdd() {
    CALDB_ASSIGN_OR_RETURN(DbExprPtr lhs, ParseMul());
    while (CheckPunct("+") || CheckPunct("-")) {
      char op = Advance().text[0];
      CALDB_ASSIGN_OR_RETURN(DbExprPtr rhs, ParseMul());
      auto node = std::make_shared<DbExpr>();
      node->kind = DbExpr::Kind::kArith;
      node->arith = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<DbExprPtr> ParseMul() {
    CALDB_ASSIGN_OR_RETURN(DbExprPtr lhs, ParsePrimary());
    while (CheckPunct("*") || CheckPunct("/")) {
      char op = Advance().text[0];
      CALDB_ASSIGN_OR_RETURN(DbExprPtr rhs, ParsePrimary());
      auto node = std::make_shared<DbExpr>();
      node->kind = DbExpr::Kind::kArith;
      node->arith = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<DbExprPtr> ParsePrimary() {
    const QToken& t = Peek();
    auto node = std::make_shared<DbExpr>();
    switch (t.kind) {
      case QTok::kInt:
        node->kind = DbExpr::Kind::kConst;
        node->constant = Value::Int(Advance().int_value);
        return node;
      case QTok::kFloat:
        node->kind = DbExpr::Kind::kConst;
        node->constant = Value::Float(Advance().float_value);
        return node;
      case QTok::kString:
        node->kind = DbExpr::Kind::kConst;
        node->constant = Value::Text(Advance().text);
        return node;
      case QTok::kParam:
        node->kind = DbExpr::Kind::kParam;
        node->param_index = static_cast<int>(Advance().int_value);
        return node;
      case QTok::kIdent: {
        if (MatchKeyword("true")) {
          node->kind = DbExpr::Kind::kConst;
          node->constant = Value::Bool(true);
          return node;
        }
        if (MatchKeyword("false")) {
          node->kind = DbExpr::Kind::kConst;
          node->constant = Value::Bool(false);
          return node;
        }
        if (MatchKeyword("null")) {
          node->kind = DbExpr::Kind::kConst;
          node->constant = Value::Null();
          return node;
        }
        std::string name = Advance().text;
        if (MatchPunct("(")) {
          node->kind = DbExpr::Kind::kCall;
          node->fn_name = std::move(name);
          if (!CheckPunct(")")) {
            while (true) {
              CALDB_ASSIGN_OR_RETURN(DbExprPtr arg, ParseOr());
              node->args.push_back(std::move(arg));
              if (!MatchPunct(",")) break;
            }
          }
          CALDB_RETURN_IF_ERROR(ExpectPunct(")"));
          return node;
        }
        node->kind = DbExpr::Kind::kColumnRef;
        if (MatchPunct(".")) {
          node->var = std::move(name);
          CALDB_ASSIGN_OR_RETURN(node->column, ExpectIdent("column name"));
        } else {
          node->column = std::move(name);
        }
        return node;
      }
      case QTok::kPunct:
        if (MatchPunct("(")) {
          CALDB_ASSIGN_OR_RETURN(DbExprPtr inner, ParseOr());
          CALDB_RETURN_IF_ERROR(ExpectPunct(")"));
          return inner;
        }
        if (MatchPunct("-")) {
          // Unary minus: fold into constants, or rewrite as 0 - expr.
          CALDB_ASSIGN_OR_RETURN(DbExprPtr inner, ParsePrimary());
          if (inner->kind == DbExpr::Kind::kConst &&
              inner->constant.type() == ValueType::kInt) {
            inner->constant = Value::Int(-inner->constant.AsInt().value());
            return inner;
          }
          if (inner->kind == DbExpr::Kind::kConst &&
              inner->constant.type() == ValueType::kFloat) {
            inner->constant = Value::Float(-inner->constant.AsFloat().value());
            return inner;
          }
          auto zero = std::make_shared<DbExpr>();
          zero->kind = DbExpr::Kind::kConst;
          zero->constant = Value::Int(0);
          node->kind = DbExpr::Kind::kArith;
          node->arith = '-';
          node->lhs = std::move(zero);
          node->rhs = std::move(inner);
          return node;
        }
        break;
      case QTok::kEnd:
        break;
    }
    return Fail("an expression");
  }

  std::string_view src_;
  std::vector<QToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view query) {
  // The parse-once contract is pinned by this counter: tests assert its
  // delta stays flat while cached statements re-execute.
  static obs::Counter* parses = obs::Metrics().counter("caldb.db.parses");
  parses->Increment();
  CALDB_ASSIGN_OR_RETURN(std::vector<QToken> tokens, QLex(query));
  // `explain <stmt>` / `profile <stmt>`: strip the verb and compile the
  // tail exactly once — plan rendering and the PROFILE run share the
  // handle (see ExplainStmt).
  if (tokens.size() >= 2 && tokens[0].kind == QTok::kIdent &&
      (EqualsIgnoreCase(tokens[0].text, "explain") ||
       EqualsIgnoreCase(tokens[0].text, "profile"))) {
    ExplainStmt stmt;
    stmt.profile = EqualsIgnoreCase(tokens[0].text, "profile");
    stmt.query = std::string(query.substr(tokens[1].offset));
    CALDB_ASSIGN_OR_RETURN(stmt.inner, CompileStatement(stmt.query));
    return Statement{std::move(stmt)};
  }
  return QueryParser(query, std::move(tokens)).ParseStatementTop();
}

Result<DbExprPtr> ParseDbExpression(std::string_view text) {
  CALDB_ASSIGN_OR_RETURN(std::vector<QToken> tokens, QLex(text));
  return QueryParser(text, std::move(tokens)).ParseExpressionTop();
}

}  // namespace caldb
