#include "db/compiled_statement.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/obs.h"

namespace caldb {

namespace {

void AddTable(std::vector<std::string>* tables, const std::string& name) {
  if (name.empty()) return;
  if (std::find(tables->begin(), tables->end(), name) != tables->end()) return;
  tables->push_back(name);
}

// Fills write_class / tables / is_ddl from the parsed statement.  The
// explain case folds in the precompiled inner handle, so a PROFILE takes
// the lock its inner statement needs.
void ComputeMetadata(const Statement& stmt, CompiledStatement* out) {
  if (const auto* retrieve = std::get_if<RetrieveStmt>(&stmt)) {
    for (const RetrieveStmt::TableRef& ref : retrieve->tables) {
      AddTable(&out->tables, ref.table);
    }
    if (!retrieve->into.empty()) {
      // "retrieve into" materializes a new table: a write, and schema
      // change enough to invalidate statements naming the result table.
      AddTable(&out->tables, retrieve->into);
      out->write_class = CompiledStatement::WriteClass::kWrite;
      out->is_ddl = true;
    } else {
      out->write_class = CompiledStatement::WriteClass::kReadUnlessRetrieveRules;
    }
    return;
  }
  if (const auto* append = std::get_if<AppendStmt>(&stmt)) {
    AddTable(&out->tables, append->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    return;
  }
  if (const auto* replace = std::get_if<ReplaceStmt>(&stmt)) {
    AddTable(&out->tables, replace->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    return;
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    AddTable(&out->tables, del->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    return;
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    AddTable(&out->tables, create->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (const auto* index = std::get_if<CreateIndexStmt>(&stmt)) {
    AddTable(&out->tables, index->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (const auto* rule = std::get_if<DefineRuleStmt>(&stmt)) {
    AddTable(&out->tables, rule->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (std::holds_alternative<DropRuleStmt>(stmt)) {
    // The dropped rule's table is only known at execution time, so the
    // statement carries no table list — invalidation falls back to a full
    // flush (StatementCache treats empty-tables DDL as "affects anything").
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (const auto* drop_table = std::get_if<DropTableStmt>(&stmt)) {
    AddTable(&out->tables, drop_table->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    if (explain->inner != nullptr) {
      out->tables = explain->inner->tables;
      if (explain->profile) {
        // PROFILE executes the inner statement; inherit its classification.
        out->write_class = explain->inner->write_class;
        out->is_ddl = explain->inner->is_ddl;
      } else {
        out->write_class = CompiledStatement::WriteClass::kRead;
      }
    } else {
      // A hand-built ExplainStmt without a compiled inner: stay
      // conservative (exclusive lock, no invalidation scope known).
      out->write_class = explain->profile
                             ? CompiledStatement::WriteClass::kWrite
                             : CompiledStatement::WriteClass::kRead;
    }
    return;
  }
  // Unknown kinds stay at the conservative default (kWrite).
}

}  // namespace

std::string NormalizeStatementText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  char quote = '\0';
  bool pending_space = false;
  for (char c : text) {
    if (quote != '\0') {
      out.push_back(c);
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
      quote = c;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  }
  return out;
}

Result<CompiledStatementPtr> CompileStatement(std::string_view text) {
  const int64_t t0 = obs::Enabled() ? obs::NowNs() : 0;
  CALDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(text));
  const int64_t parse_ns = t0 != 0 ? obs::NowNs() - t0 : 0;
  return CompileParsedStatement(std::move(stmt), std::string(text), parse_ns);
}

CompiledStatementPtr CompileParsedStatement(Statement stmt, std::string text,
                                            int64_t parse_ns) {
  auto compiled = std::make_shared<CompiledStatement>();
  compiled->stmt = std::make_shared<const Statement>(std::move(stmt));
  compiled->text = std::move(text);
  compiled->normalized = NormalizeStatementText(compiled->text);
  compiled->parse_ns = parse_ns;
  ComputeMetadata(*compiled->stmt, compiled.get());
  return compiled;
}

}  // namespace caldb
