#include "db/compiled_statement.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/obs.h"

namespace caldb {

namespace {

void AddTable(std::vector<std::string>* tables, const std::string& name) {
  if (name.empty()) return;
  if (std::find(tables->begin(), tables->end(), name) != tables->end()) return;
  tables->push_back(name);
}

// Fills write_class / tables / is_ddl from the parsed statement.  The
// explain case folds in the precompiled inner handle, so a PROFILE takes
// the lock its inner statement needs.
void ComputeMetadata(const Statement& stmt, CompiledStatement* out) {
  if (const auto* retrieve = std::get_if<RetrieveStmt>(&stmt)) {
    for (const RetrieveStmt::TableRef& ref : retrieve->tables) {
      AddTable(&out->tables, ref.table);
    }
    if (!retrieve->into.empty()) {
      // "retrieve into" materializes a new table: a write, and schema
      // change enough to invalidate statements naming the result table.
      AddTable(&out->tables, retrieve->into);
      out->write_class = CompiledStatement::WriteClass::kWrite;
      out->is_ddl = true;
    } else {
      out->write_class = CompiledStatement::WriteClass::kReadUnlessRetrieveRules;
      out->footprint_exact = true;
    }
    return;
  }
  if (const auto* append = std::get_if<AppendStmt>(&stmt)) {
    AddTable(&out->tables, append->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->footprint_exact = true;
    return;
  }
  if (const auto* replace = std::get_if<ReplaceStmt>(&stmt)) {
    AddTable(&out->tables, replace->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->footprint_exact = true;
    return;
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    AddTable(&out->tables, del->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->footprint_exact = true;
    return;
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    AddTable(&out->tables, create->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (const auto* index = std::get_if<CreateIndexStmt>(&stmt)) {
    AddTable(&out->tables, index->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (const auto* rule = std::get_if<DefineRuleStmt>(&stmt)) {
    AddTable(&out->tables, rule->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (std::holds_alternative<DropRuleStmt>(stmt)) {
    // The dropped rule's table is only known at execution time, so the
    // statement carries no table list — invalidation falls back to a full
    // flush (StatementCache treats empty-tables DDL as "affects anything").
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (const auto* drop_table = std::get_if<DropTableStmt>(&stmt)) {
    AddTable(&out->tables, drop_table->table);
    out->write_class = CompiledStatement::WriteClass::kWrite;
    out->is_ddl = true;
    return;
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    if (explain->inner != nullptr) {
      out->tables = explain->inner->tables;
      out->footprint_exact = explain->inner->footprint_exact;
      if (explain->profile) {
        // PROFILE executes the inner statement; inherit its classification.
        out->write_class = explain->inner->write_class;
        out->is_ddl = explain->inner->is_ddl;
      } else {
        out->write_class = CompiledStatement::WriteClass::kRead;
      }
    } else {
      // A hand-built ExplainStmt without a compiled inner: stay
      // conservative (exclusive lock, no invalidation scope known).
      out->write_class = explain->profile
                             ? CompiledStatement::WriteClass::kWrite
                             : CompiledStatement::WriteClass::kRead;
    }
    return;
  }
  // Unknown kinds stay at the conservative default (kWrite).
}

// --- parameter signature ----------------------------------------------------

// Accumulates placeholder occurrences while walking a statement's
// expressions.  `types[i]` is the inferred type of $i+1 (kNull = any);
// `seen[i]` distinguishes "never referenced" from "referenced, type
// unknown" so gaps ($1, $3) can be rejected at compile time.
struct ParamSig {
  std::vector<ValueType> types;
  std::vector<bool> seen;

  void Note(int index, ValueType hint) {
    if (index < 1) return;
    if (static_cast<size_t>(index) > seen.size()) {
      seen.resize(static_cast<size_t>(index), false);
      types.resize(static_cast<size_t>(index), ValueType::kNull);
    }
    seen[static_cast<size_t>(index) - 1] = true;
    if (hint == ValueType::kNull) return;
    ValueType& slot = types[static_cast<size_t>(index) - 1];
    if (slot == ValueType::kNull) {
      slot = hint;
      return;
    }
    const bool both_numeric =
        (slot == ValueType::kInt || slot == ValueType::kFloat) &&
        (hint == ValueType::kInt || hint == ValueType::kFloat);
    if (slot != hint && !both_numeric) {
      // Conflicting hints: widen back to "any" rather than guess.
      slot = ValueType::kNull;
    }
  }
};

void WalkExprParams(const DbExpr& expr, ParamSig* sig) {
  if (expr.kind == DbExpr::Kind::kParam) {
    sig->Note(expr.param_index, ValueType::kNull);
  }
  // Infer a type when a placeholder sits directly across a comparison or
  // arithmetic operator from a constant: `a.id = $1` says nothing, but
  // `$1 > 100` pins $1 to the numeric class and `$2 = 'x'` pins $2 to
  // text.  (Unary minus parses as `0 - expr`, so `-$1` is numeric too.)
  if ((expr.kind == DbExpr::Kind::kCompare ||
       expr.kind == DbExpr::Kind::kArith) &&
      expr.lhs && expr.rhs) {
    if (expr.lhs->kind == DbExpr::Kind::kParam &&
        expr.rhs->kind == DbExpr::Kind::kConst) {
      sig->Note(expr.lhs->param_index, expr.rhs->constant.type());
    }
    if (expr.rhs->kind == DbExpr::Kind::kParam &&
        expr.lhs->kind == DbExpr::Kind::kConst) {
      sig->Note(expr.rhs->param_index, expr.lhs->constant.type());
    }
  }
  if (expr.lhs) WalkExprParams(*expr.lhs, sig);
  if (expr.rhs) WalkExprParams(*expr.rhs, sig);
  for (const DbExprPtr& arg : expr.args) {
    if (arg) WalkExprParams(*arg, sig);
  }
}

void CollectParams(const Statement& stmt, ParamSig* sig) {
  if (const auto* retrieve = std::get_if<RetrieveStmt>(&stmt)) {
    for (const RetrieveStmt::Target& target : retrieve->targets) {
      if (target.expr) WalkExprParams(*target.expr, sig);
    }
    if (retrieve->where) WalkExprParams(*retrieve->where, sig);
    return;
  }
  if (const auto* append = std::get_if<AppendStmt>(&stmt)) {
    for (const auto& [column, value] : append->sets) {
      if (value) WalkExprParams(*value, sig);
    }
    return;
  }
  if (const auto* replace = std::get_if<ReplaceStmt>(&stmt)) {
    for (const auto& [column, value] : replace->sets) {
      if (value) WalkExprParams(*value, sig);
    }
    if (replace->where) WalkExprParams(*replace->where, sig);
    return;
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    if (del->where) WalkExprParams(*del->where, sig);
    return;
  }
  if (const auto* rule = std::get_if<DefineRuleStmt>(&stmt)) {
    // A rule's where clause and action run later, in event scopes that
    // carry no bind list — a placeholder there could never be bound.
    // CompileStatement rejects these; collecting them here makes the
    // rejection uniform.
    if (rule->where) WalkExprParams(*rule->where, sig);
    return;
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    if (explain->inner != nullptr) {
      // Fold the inner handle's signature so `profile <stmt>` demands the
      // same bind list the statement itself would.
      for (size_t i = 0; i < explain->inner->param_types.size(); ++i) {
        sig->Note(static_cast<int>(i) + 1, explain->inner->param_types[i]);
      }
    }
    return;
  }
  // create table / create index / drop rule / drop table carry no
  // expressions.
}

std::string_view ParamTypeName(ValueType t) {
  return t == ValueType::kNull ? std::string_view("any") : ValueTypeName(t);
}

}  // namespace

std::string NormalizeStatementText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  char quote = '\0';
  bool pending_space = false;
  for (char c : text) {
    if (quote != '\0') {
      out.push_back(c);
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
      quote = c;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  }
  return out;
}

Result<CompiledStatementPtr> CompileStatement(std::string_view text) {
  const int64_t t0 = obs::Enabled() ? obs::NowNs() : 0;
  CALDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(text));
  const int64_t parse_ns = t0 != 0 ? obs::NowNs() - t0 : 0;
  // Placeholder numbering must be contiguous from $1: a gap is almost
  // always a typo, and silently accepting `$1, $3` would make arity
  // checking meaningless.  Only the text path validates — hand-built ASTs
  // through CompileParsedStatement are the caller's contract.
  ParamSig sig;
  CollectParams(stmt, &sig);
  for (size_t i = 0; i < sig.seen.size(); ++i) {
    if (!sig.seen[i]) {
      return Status::ParseError(
          "placeholder $" + std::to_string(i + 1) +
          " is missing: parameters must be numbered contiguously from $1 "
          "($" +
          std::to_string(sig.seen.size()) + " is used)");
    }
  }
  if (!sig.seen.empty() && std::holds_alternative<DefineRuleStmt>(stmt)) {
    return Status::ParseError(
        "placeholders are not allowed in a rule's where clause: rule "
        "conditions are evaluated at event time with no bind list");
  }
  return CompileParsedStatement(std::move(stmt), std::string(text), parse_ns);
}

CompiledStatementPtr CompileParsedStatement(Statement stmt, std::string text,
                                            int64_t parse_ns) {
  auto compiled = std::make_shared<CompiledStatement>();
  compiled->stmt = std::make_shared<const Statement>(std::move(stmt));
  compiled->text = std::move(text);
  compiled->normalized = NormalizeStatementText(compiled->text);
  compiled->parse_ns = parse_ns;
  ComputeMetadata(*compiled->stmt, compiled.get());
  ParamSig sig;
  CollectParams(*compiled->stmt, &sig);
  compiled->param_count = static_cast<int>(sig.seen.size());
  compiled->param_types = std::move(sig.types);
  return compiled;
}

Status CheckParamList(const CompiledStatement& compiled,
                      const ParamList& params) {
  if (static_cast<int>(params.size()) != compiled.param_count) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(compiled.param_count) +
        " parameter(s) " + RenderParamSignature(compiled) + ", got " +
        std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const ValueType expected = compiled.param_types[i];
    const ValueType actual = params[i].type();
    if (expected == ValueType::kNull || actual == ValueType::kNull) continue;
    const bool both_numeric =
        (expected == ValueType::kInt || expected == ValueType::kFloat) &&
        (actual == ValueType::kInt || actual == ValueType::kFloat);
    if (actual != expected && !both_numeric) {
      return Status::InvalidArgument(
          "parameter $" + std::to_string(i + 1) + " expects " +
          std::string(ParamTypeName(expected)) + ", got " +
          std::string(ParamTypeName(actual)) + " (" + params[i].ToString() +
          ")");
    }
  }
  return Status::OK();
}

std::string RenderParamSignature(const CompiledStatement& compiled) {
  std::string out = "(";
  for (int i = 0; i < compiled.param_count; ++i) {
    if (i > 0) out += ", ";
    out += "$" + std::to_string(i + 1) + ":";
    const ValueType t = static_cast<size_t>(i) < compiled.param_types.size()
                            ? compiled.param_types[static_cast<size_t>(i)]
                            : ValueType::kNull;
    out += ParamTypeName(t);
  }
  return out + ")";
}

}  // namespace caldb
