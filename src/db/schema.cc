#include "db/schema.h"

#include <set>

namespace caldb {

Result<Schema> Schema::Make(std::vector<Column> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("a schema needs at least one column");
  }
  std::set<std::string> names;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("column names must not be empty");
    }
    if (!names.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column name '" + c.name + "'");
    }
  }
  return Schema(std::move(columns));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::HasColumn(const std::string& name) const {
  return IndexOf(name).ok();
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != columns_[i].type) {
      // Ints widen into float columns.
      if (columns_[i].type == ValueType::kFloat &&
          row[i].type() == ValueType::kInt) {
        continue;
      }
      return Status::TypeError("column '" + columns_[i].name + "' expects " +
                               std::string(ValueTypeName(columns_[i].type)) +
                               ", got " +
                               std::string(ValueTypeName(row[i].type())));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace caldb
