// Value: the dynamically-typed cell of the DB substrate.  The calendar
// types (Interval, Calendar) are first-class — the extensible-database
// premise of the paper (§1: "object support by allowing the definition and
// manipulation of complex data types").  Calendar is a copy-on-write
// handle over a shared rep (core/calendar_rep.h), so storing one in a
// Value — and copying that Value through rows, registers and caches —
// costs a refcount bump, not an interval-buffer copy.

#ifndef CALDB_DB_VALUE_H_
#define CALDB_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "core/calendar.h"
#include "core/interval.h"

namespace caldb {

enum class ValueType {
  kNull,
  kInt,
  kFloat,
  kBool,
  kText,
  kInterval,
  kCalendar,
};

std::string_view ValueTypeName(ValueType t);

/// Parses a column-type name ("int", "float", "bool", "text", "interval",
/// "calendar").
Result<ValueType> ParseValueType(std::string_view name);

class Value {
 public:
  Value() = default;  // null

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Float(double v) { return Value(Payload(v)); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Text(std::string v) { return Value(Payload(std::move(v))); }
  static Value Of(Interval v) { return Value(Payload(v)); }
  static Value Of(Calendar v) { return Value(Payload(std::move(v))); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  // Checked accessors.
  Result<int64_t> AsInt() const;
  Result<double> AsFloat() const;   // accepts int too (widening)
  Result<bool> AsBool() const;
  Result<std::string> AsText() const;
  Result<Interval> AsInterval() const;
  Result<Calendar> AsCalendar() const;

  /// SQL-style truthiness: bool as-is; null is false; other types error.
  Result<bool> Truthy() const;

  /// Display form ("NULL", "42", "'abc'", "(1,5)", "{(1,5)}").
  std::string ToString() const;

  /// Deep equality (numeric values compare across int/float).
  bool Equals(const Value& other) const;

  /// Three-way comparison for orderable types (numbers, text, bool,
  /// interval by (lo,hi)).  TypeError for calendars/null or mixed
  /// non-numeric types.
  Result<int> Compare(const Value& other) const;

 private:
  using Payload = std::variant<std::monostate, int64_t, double, bool,
                               std::string, Interval, Calendar>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

}  // namespace caldb

#endif  // CALDB_DB_VALUE_H_
