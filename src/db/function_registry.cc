#include "db/function_registry.h"

#include "common/strings.h"

namespace caldb {

Status FunctionRegistry::Register(const std::string& name, int min_args,
                                  int max_args, Fn fn) {
  std::string key = AsciiToLower(name);
  if (key.empty()) {
    return Status::InvalidArgument("function name must not be empty");
  }
  if (fns_.count(key) > 0) {
    return Status::AlreadyExists("function '" + name + "' already registered");
  }
  if (min_args < 0 || (max_args >= 0 && max_args < min_args)) {
    return Status::InvalidArgument("invalid arity bounds for '" + name + "'");
  }
  fns_[key] = Entry{min_args, max_args, std::move(fn)};
  return Status::OK();
}

bool FunctionRegistry::Contains(const std::string& name) const {
  return fns_.count(AsciiToLower(name)) > 0;
}

Result<Value> FunctionRegistry::Call(const std::string& name,
                                     const std::vector<Value>& args) const {
  auto it = fns_.find(AsciiToLower(name));
  if (it == fns_.end()) {
    return Status::NotFound("unknown function '" + name + "'");
  }
  const Entry& entry = it->second;
  int argc = static_cast<int>(args.size());
  if (argc < entry.min_args || (entry.max_args >= 0 && argc > entry.max_args)) {
    return Status::InvalidArgument(
        "function '" + name + "' called with " + std::to_string(argc) +
        " arguments (expects " + std::to_string(entry.min_args) +
        (entry.max_args < 0 ? "+" : ".." + std::to_string(entry.max_args)) + ")");
  }
  return entry.fn(args);
}

std::vector<std::string> FunctionRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(fns_.size());
  for (const auto& [name, entry] : fns_) names.push_back(name);
  return names;
}

}  // namespace caldb
