#include "db/btree.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/obs.h"

namespace caldb {

namespace {

struct BtreeMetrics {
  obs::Counter* node_reads = obs::Metrics().counter("caldb.btree.node_reads");
  obs::Counter* splits = obs::Metrics().counter("caldb.btree.splits");
};

BtreeMetrics& Metrics() {
  static BtreeMetrics* m = new BtreeMetrics();
  return *m;
}

}  // namespace

struct BPlusTree::Node {
  bool is_leaf = true;
  // Leaf payload, sorted by (key, rowid).
  std::vector<Entry> entries;
  // Internal: children[i] holds composites < seps[i] <= children[i+1].
  // seps[i] is the smallest composite reachable under children[i+1].
  std::vector<Entry> seps;
  std::vector<std::unique_ptr<Node>> children;
  Node* next = nullptr;  // leaf chain
};

BPlusTree::BPlusTree(int max_entries)
    : max_entries_(std::max(4, max_entries)),
      min_entries_(std::max(2, max_entries / 2)),
      root_(std::make_unique<Node>()) {}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

int BPlusTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

bool BPlusTree::Insert(int64_t key, int64_t rowid) {
  Entry entry{key, rowid};
  bool inserted = false;
  std::unique_ptr<SplitResult> split = InsertRec(root_.get(), entry, &inserted);
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->seps.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  if (inserted) ++size_;
  return inserted;
}

std::unique_ptr<BPlusTree::SplitResult> BPlusTree::InsertRec(Node* node,
                                                             const Entry& entry,
                                                             bool* inserted) {
  Metrics().node_reads->Increment();
  if (node->is_leaf) {
    auto pos = std::lower_bound(node->entries.begin(), node->entries.end(), entry);
    if (pos != node->entries.end() && *pos == entry) return nullptr;
    *inserted = true;
    node->entries.insert(pos, entry);
    if (static_cast<int>(node->entries.size()) <= max_entries_) return nullptr;
    Metrics().splits->Increment();
    // Split: right half moves to a new leaf.
    auto right = std::make_unique<Node>();
    size_t mid = node->entries.size() / 2;
    right->entries.assign(node->entries.begin() + static_cast<int64_t>(mid),
                          node->entries.end());
    node->entries.resize(mid);
    right->next = node->next;
    node->next = right.get();
    auto result = std::make_unique<SplitResult>();
    result->separator = right->entries.front();
    result->right = std::move(right);
    return result;
  }

  size_t idx = static_cast<size_t>(
      std::upper_bound(node->seps.begin(), node->seps.end(), entry) -
      node->seps.begin());
  std::unique_ptr<SplitResult> child_split =
      InsertRec(node->children[idx].get(), entry, inserted);
  if (child_split == nullptr) return nullptr;
  node->seps.insert(node->seps.begin() + static_cast<int64_t>(idx),
                    child_split->separator);
  node->children.insert(node->children.begin() + static_cast<int64_t>(idx) + 1,
                        std::move(child_split->right));
  if (static_cast<int>(node->children.size()) <= max_entries_) return nullptr;
  Metrics().splits->Increment();
  // Split internal node: the middle separator moves up.
  auto right = std::make_unique<Node>();
  right->is_leaf = false;
  size_t mid = node->seps.size() / 2;
  Entry up = node->seps[mid];
  right->seps.assign(node->seps.begin() + static_cast<int64_t>(mid) + 1,
                     node->seps.end());
  node->seps.resize(mid);
  right->children.reserve(node->children.size() - mid - 1);
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->children.resize(mid + 1);
  auto result = std::make_unique<SplitResult>();
  result->separator = up;
  result->right = std::move(right);
  return result;
}

bool BPlusTree::Erase(int64_t key, int64_t rowid) {
  Entry entry{key, rowid};
  if (!EraseRec(root_.get(), entry)) return false;
  // Collapse a root with a single child.
  if (!root_->is_leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  --size_;
  return true;
}

bool BPlusTree::EraseRec(Node* node, const Entry& entry) {
  if (node->is_leaf) {
    auto pos = std::lower_bound(node->entries.begin(), node->entries.end(), entry);
    if (pos == node->entries.end() || *pos != entry) return false;
    node->entries.erase(pos);
    return true;
  }
  size_t idx = static_cast<size_t>(
      std::upper_bound(node->seps.begin(), node->seps.end(), entry) -
      node->seps.begin());
  if (!EraseRec(node->children[idx].get(), entry)) return false;
  RebalanceChild(node, idx);
  return true;
}

void BPlusTree::RebalanceChild(Node* parent, size_t idx) {
  Node* child = parent->children[idx].get();
  const size_t occupancy =
      child->is_leaf ? child->entries.size() : child->children.size();
  if (static_cast<int>(occupancy) >= min_entries_) return;

  auto left_sibling = [&]() -> Node* {
    return idx > 0 ? parent->children[idx - 1].get() : nullptr;
  };
  auto right_sibling = [&]() -> Node* {
    return idx + 1 < parent->children.size() ? parent->children[idx + 1].get()
                                             : nullptr;
  };

  Node* left = left_sibling();
  Node* right = right_sibling();

  if (child->is_leaf) {
    // Borrow from a sibling when possible.
    if (left != nullptr && static_cast<int>(left->entries.size()) > min_entries_) {
      child->entries.insert(child->entries.begin(), left->entries.back());
      left->entries.pop_back();
      parent->seps[idx - 1] = child->entries.front();
      return;
    }
    if (right != nullptr &&
        static_cast<int>(right->entries.size()) > min_entries_) {
      child->entries.push_back(right->entries.front());
      right->entries.erase(right->entries.begin());
      parent->seps[idx] = right->entries.front();
      return;
    }
    // Merge with a sibling.
    if (left != nullptr) {
      left->entries.insert(left->entries.end(), child->entries.begin(),
                           child->entries.end());
      left->next = child->next;
      parent->children.erase(parent->children.begin() + static_cast<int64_t>(idx));
      parent->seps.erase(parent->seps.begin() + static_cast<int64_t>(idx) - 1);
    } else if (right != nullptr) {
      child->entries.insert(child->entries.end(), right->entries.begin(),
                            right->entries.end());
      child->next = right->next;
      parent->children.erase(parent->children.begin() + static_cast<int64_t>(idx) +
                             1);
      parent->seps.erase(parent->seps.begin() + static_cast<int64_t>(idx));
    }
    return;
  }

  // Internal child.
  if (left != nullptr && static_cast<int>(left->children.size()) > min_entries_) {
    child->seps.insert(child->seps.begin(), parent->seps[idx - 1]);
    child->children.insert(child->children.begin(),
                           std::move(left->children.back()));
    left->children.pop_back();
    parent->seps[idx - 1] = left->seps.back();
    left->seps.pop_back();
    return;
  }
  if (right != nullptr && static_cast<int>(right->children.size()) > min_entries_) {
    child->seps.push_back(parent->seps[idx]);
    child->children.push_back(std::move(right->children.front()));
    right->children.erase(right->children.begin());
    parent->seps[idx] = right->seps.front();
    right->seps.erase(right->seps.begin());
    return;
  }
  if (left != nullptr) {
    left->seps.push_back(parent->seps[idx - 1]);
    left->seps.insert(left->seps.end(), child->seps.begin(), child->seps.end());
    for (auto& c : child->children) left->children.push_back(std::move(c));
    parent->children.erase(parent->children.begin() + static_cast<int64_t>(idx));
    parent->seps.erase(parent->seps.begin() + static_cast<int64_t>(idx) - 1);
  } else if (right != nullptr) {
    child->seps.push_back(parent->seps[idx]);
    child->seps.insert(child->seps.end(), right->seps.begin(), right->seps.end());
    for (auto& c : right->children) child->children.push_back(std::move(c));
    parent->children.erase(parent->children.begin() + static_cast<int64_t>(idx) + 1);
    parent->seps.erase(parent->seps.begin() + static_cast<int64_t>(idx));
  }
}

const BPlusTree::Node* BPlusTree::FindLeaf(int64_t key) const {
  Entry probe{key, INT64_MIN};
  const Node* node = root_.get();
  int64_t reads = 1;
  while (!node->is_leaf) {
    size_t idx = static_cast<size_t>(
        std::upper_bound(node->seps.begin(), node->seps.end(), probe) -
        node->seps.begin());
    node = node->children[idx].get();
    ++reads;
  }
  Metrics().node_reads->Add(reads);
  return node;
}

void BPlusTree::ScanRange(
    int64_t lo, int64_t hi,
    const std::function<bool(int64_t, int64_t)>& fn) const {
  if (lo > hi) return;
  const Node* leaf = FindLeaf(lo);
  Entry probe{lo, INT64_MIN};
  while (leaf != nullptr) {
    auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(), probe);
    for (; it != leaf->entries.end(); ++it) {
      if (it->first > hi) return;
      if (!fn(it->first, it->second)) return;
    }
    leaf = leaf->next;
    probe = Entry{INT64_MIN, INT64_MIN};  // subsequent leaves scan from start
  }
}

void BPlusTree::ScanAll(const std::function<bool(int64_t, int64_t)>& fn) const {
  ScanRange(INT64_MIN, INT64_MAX, fn);
}

int BPlusTree::LeafDepth() const {
  int depth = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++depth;
  }
  return depth;
}

Status BPlusTree::CheckNode(const Node* node, int depth, int leaf_depth,
                            bool is_root, const Entry* lower,
                            const Entry* upper) const {
  auto within = [&](const Entry& e) {
    if (lower != nullptr && e < *lower) return false;
    if (upper != nullptr && !(e < *upper)) return false;
    return true;
  };
  if (node->is_leaf) {
    if (depth != leaf_depth) {
      return Status::Internal("leaves at non-uniform depth");
    }
    if (!is_root && static_cast<int>(node->entries.size()) < min_entries_) {
      return Status::Internal("leaf underflow");
    }
    if (static_cast<int>(node->entries.size()) > max_entries_) {
      return Status::Internal("leaf overflow");
    }
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (i > 0 && node->entries[i] < node->entries[i - 1]) {
        return Status::Internal("leaf entries out of order");
      }
      if (!within(node->entries[i])) {
        return Status::Internal("leaf entry outside separator bounds");
      }
    }
    return Status::OK();
  }
  if (node->children.size() != node->seps.size() + 1) {
    return Status::Internal("internal node children/separator mismatch");
  }
  if (!is_root && static_cast<int>(node->children.size()) < min_entries_) {
    return Status::Internal("internal underflow");
  }
  if (static_cast<int>(node->children.size()) > max_entries_) {
    return Status::Internal("internal overflow");
  }
  for (size_t i = 0; i + 1 < node->seps.size(); ++i) {
    if (!(node->seps[i] < node->seps[i + 1])) {
      return Status::Internal("separators out of order");
    }
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Entry* child_lower = i == 0 ? lower : &node->seps[i - 1];
    const Entry* child_upper = i == node->seps.size() ? upper : &node->seps[i];
    CALDB_RETURN_IF_ERROR(CheckNode(node->children[i].get(), depth + 1,
                                    leaf_depth, false, child_lower, child_upper));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  CALDB_RETURN_IF_ERROR(
      CheckNode(root_.get(), 0, LeafDepth(), /*is_root=*/true, nullptr, nullptr));
  // The leaf chain enumerates exactly size_ entries in order.
  int64_t count = 0;
  Entry prev{INT64_MIN, INT64_MIN};
  bool first = true;
  Status status = Status::OK();
  ScanAll([&](int64_t key, int64_t rowid) {
    Entry e{key, rowid};
    if (!first && e < prev) {
      status = Status::Internal("leaf chain out of order");
      return false;
    }
    prev = e;
    first = false;
    ++count;
    return true;
  });
  CALDB_RETURN_IF_ERROR(status);
  if (count != size_) {
    return Status::Internal("leaf chain count " + std::to_string(count) +
                            " != size " + std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace caldb
