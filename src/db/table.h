// Table: an in-memory row store with stable row ids, tombstoned deletes,
// and B+tree secondary indexes on int columns.

#ifndef CALDB_DB_TABLE_H_
#define CALDB_DB_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/btree.h"
#include "db/schema.h"

namespace caldb {

using RowId = int64_t;

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Live row count.
  int64_t size() const { return live_count_; }

  /// Appends a row; returns its id.  Maintains indexes.
  Result<RowId> Insert(Row row);

  /// Tombstones a row.  NotFound when already deleted / out of range.
  Status Delete(RowId id);

  /// Replaces a row in place.  Maintains indexes.
  Status Update(RowId id, Row row);

  /// The row, or NotFound when deleted.
  Result<Row> Get(RowId id) const;

  bool IsLive(RowId id) const;

  /// Visits live rows in insertion order; visitor returns false to stop.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  // --- indexes ---------------------------------------------------------

  /// Builds a B+tree index over an int column (indexes existing rows).
  Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;

  /// Visits live rows with lo <= row[column] <= hi using the index.
  Status IndexScan(const std::string& column, int64_t lo, int64_t hi,
                   const std::function<bool(RowId, const Row&)>& fn) const;

 private:
  Status IndexInsert(RowId id, const Row& row);
  void IndexErase(RowId id, const Row& row);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  int64_t live_count_ = 0;
  // column name -> index over that column.
  std::map<std::string, std::unique_ptr<BPlusTree>> indexes_;
};

}  // namespace caldb

#endif  // CALDB_DB_TABLE_H_
