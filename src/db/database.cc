#include "db/database.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>

#include "common/macros.h"
#include "common/strings.h"
#include "obs/obs.h"

namespace caldb {

namespace {

// Process-wide counters mirroring Database::Stats, plus the per-statement
// latency histogram.  Looked up once; see docs/OBSERVABILITY.md.
struct DbMetrics {
  obs::Counter* statements = obs::Metrics().counter("caldb.db.statements");
  obs::Counter* rows_scanned =
      obs::Metrics().counter("caldb.db.rows_scanned");
  obs::Counter* index_scans = obs::Metrics().counter("caldb.db.index_scans");
  obs::Counter* full_scans = obs::Metrics().counter("caldb.db.full_scans");
  obs::Counter* rules_fired = obs::Metrics().counter("caldb.db.rules_fired");
  obs::Counter* slow_statements =
      obs::Metrics().counter("caldb.db.slow_statements");
  obs::Histogram* statement_ns =
      obs::Metrics().histogram("caldb.db.statement_ns");
};

DbMetrics& Metrics() {
  static DbMetrics* m = new DbMetrics();
  return *m;
}

int64_t InitialSlowThresholdNs() {
  constexpr int64_t kDefaultNs = 20 * 1000 * 1000;  // 20ms
  const char* env = std::getenv("CALDB_SLOW_STMT_MS");
  if (env == nullptr || *env == '\0') return kDefaultNs;
  char* end = nullptr;
  long ms = std::strtol(env, &end, 10);
  if (end == env) return kDefaultNs;
  return static_cast<int64_t>(ms) * 1000 * 1000;
}

std::atomic<int64_t>& SlowThresholdNs() {
  static std::atomic<int64_t> ns{InitialSlowThresholdNs()};
  return ns;
}

}  // namespace

void Database::SetSlowStatementThresholdNs(int64_t ns) {
  SlowThresholdNs().store(ns, std::memory_order_relaxed);
}

int64_t Database::SlowStatementThresholdNs() {
  return SlowThresholdNs().load(std::memory_order_relaxed);
}

std::string QueryResult::ToString() const {
  if (columns.empty()) {
    return message.empty() ? "(" + std::to_string(affected) + " rows affected)"
                           : message;
  }
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Status Database::CreateTable(const std::string& name, Schema schema) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[name] = std::make_unique<Table>(name, std::move(schema));
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  for (const EventRule& rule : rules_) {
    if (rule.table == name) {
      return Status::InvalidArgument("table '" + name +
                                     "' is referenced by rule '" + rule.name +
                                     "'");
    }
  }
  tables_.erase(it);
  return Status::OK();
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::ListTables() const {
  std::vector<std::string> names;
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

EvalScope Database::MakeScope(const EvalScope* ambient) const {
  EvalScope scope;
  scope.registry = &registry_;
  if (ambient != nullptr) {
    scope.tuples = ambient->tuples;
    scope.params = ambient->params;
  }
  return scope;
}

Result<QueryResult> Database::Execute(const std::string& query,
                                      const EvalScope* ambient) {
  Metrics().statements->Increment();
  obs::ScopedLatency latency(Metrics().statement_ns);
  obs::Tracer::Span span = obs::StartSpan("db.execute");
  CALDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(query));
  return ExecuteParsed(stmt, ambient, query);
}

Result<QueryResult> Database::Replay(const std::string& statement) {
  CALDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  return ExecuteParsedImpl(stmt, nullptr);
}

Result<QueryResult> Database::Replay(const CompiledStatement& compiled) {
  return ExecuteParsedImpl(*compiled.stmt, nullptr);
}

Result<QueryResult> Database::Replay(const CompiledStatement& compiled,
                                     const ParamList& params) {
  CALDB_RETURN_IF_ERROR(CheckParamList(compiled, params));
  EvalScope ambient;
  ambient.params = &params;
  return ExecuteParsedImpl(*compiled.stmt, &ambient);
}

Result<CompiledStatementPtr> Database::Prepare(std::string_view query) {
  return CompileStatement(query);
}

Result<QueryResult> Database::ExecuteCompiled(const CompiledStatement& compiled,
                                              const EvalScope* ambient) {
  if (compiled.param_count > 0 &&
      (ambient == nullptr || ambient->params == nullptr)) {
    // Fail fast with the signature instead of an eval-time "not bound".
    return Status::InvalidArgument(
        "statement expects " + std::to_string(compiled.param_count) +
        " parameter(s) " + RenderParamSignature(compiled) +
        "; bind them with the parameterized execute");
  }
  Metrics().statements->Increment();
  obs::ScopedLatency latency(Metrics().statement_ns);
  obs::Tracer::Span span = obs::StartSpan("db.execute");
  return ExecuteParsed(*compiled.stmt, ambient, compiled.text);
}

Result<QueryResult> Database::ExecuteCompiled(const CompiledStatement& compiled,
                                              const ParamList& params,
                                              const EvalScope* ambient) {
  CALDB_RETURN_IF_ERROR(CheckParamList(compiled, params));
  Metrics().statements->Increment();
  obs::ScopedLatency latency(Metrics().statement_ns);
  obs::Tracer::Span span = obs::StartSpan("db.execute");
  EvalScope scope = MakeScope(ambient);
  scope.params = &params;
  return ExecuteParsed(*compiled.stmt, &scope, compiled.text);
}

Result<QueryResult> Database::ExecuteParsed(const Statement& stmt,
                                            const EvalScope* ambient,
                                            std::string_view text) {
  const int64_t threshold_ns = SlowStatementThresholdNs();
  if (!obs::Enabled() || threshold_ns <= 0) {
    return ExecuteParsedImpl(stmt, ambient);
  }
  const int64_t start_ns = obs::NowNs();
  Result<QueryResult> result = ExecuteParsedImpl(stmt, ambient);
  const int64_t elapsed_ns = obs::NowNs() - start_ns;
  if (elapsed_ns >= threshold_ns) {
    Metrics().slow_statements->Increment();
    // Prefer the statement text we were handed; fall back to the thread's
    // LogContext (set by Engine/Session) so even bare ExecuteParsed calls
    // say what ran.
    std::string_view stmt_text =
        !text.empty() ? text : std::string_view(obs::CurrentLogContext().statement);
    obs::LogEvent(obs::LogLevel::kWarn, "db.slow_statement",
                  {{"stmt", stmt_text},
                   {"elapsed_ms", static_cast<double>(elapsed_ns) / 1e6},
                   {"threshold_ms", static_cast<double>(threshold_ns) / 1e6},
                   {"ok", result.ok()}});
  }
  return result;
}

Result<QueryResult> Database::ExecuteParsedImpl(const Statement& stmt,
                                                const EvalScope* ambient) {
  if (const auto* retrieve = std::get_if<RetrieveStmt>(&stmt)) {
    return ExecuteRetrieve(*retrieve, ambient);
  }
  if (const auto* append = std::get_if<AppendStmt>(&stmt)) {
    return ExecuteAppend(*append, ambient);
  }
  if (const auto* replace = std::get_if<ReplaceStmt>(&stmt)) {
    return ExecuteReplace(*replace, ambient);
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    return ExecuteDelete(*del, ambient);
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    CALDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(create->columns));
    CALDB_RETURN_IF_ERROR(CreateTable(create->table, std::move(schema)));
    QueryResult result;
    result.message = "created table " + create->table;
    return result;
  }
  if (const auto* index = std::get_if<CreateIndexStmt>(&stmt)) {
    CALDB_ASSIGN_OR_RETURN(Table * table, GetTable(index->table));
    CALDB_RETURN_IF_ERROR(table->CreateIndex(index->column));
    QueryResult result;
    result.message = "created index on " + index->table + "(" + index->column + ")";
    return result;
  }
  if (const auto* rule = std::get_if<DefineRuleStmt>(&stmt)) {
    EventRule event_rule;
    event_rule.name = rule->name;
    event_rule.event = rule->event;
    event_rule.table = rule->table;
    event_rule.where = rule->where;
    event_rule.command = rule->action_command;
    CALDB_RETURN_IF_ERROR(DefineRule(std::move(event_rule)));
    QueryResult result;
    result.message = "defined rule " + rule->name;
    return result;
  }
  if (const auto* drop = std::get_if<DropRuleStmt>(&stmt)) {
    CALDB_RETURN_IF_ERROR(DropRule(drop->name));
    QueryResult result;
    result.message = "dropped rule " + drop->name;
    return result;
  }
  if (const auto* drop_table = std::get_if<DropTableStmt>(&stmt)) {
    CALDB_RETURN_IF_ERROR(DropTable(drop_table->table));
    QueryResult result;
    result.message = "dropped table " + drop_table->table;
    return result;
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    return ExecuteExplain(*explain, ambient);
  }
  return Status::Internal("unhandled statement kind");
}

std::optional<Database::IndexChoice> Database::ChooseIndex(
    const Table& table, const std::string& var, const DbExpr* where,
    const std::vector<Value>* params) {
  if (where == nullptr) return std::nullopt;
  for (const Column& column : table.schema().columns()) {
    if (column.type != ValueType::kInt) continue;
    if (!table.HasIndex(column.name)) continue;
    std::optional<std::pair<int64_t, int64_t>> range =
        ExtractIndexRange(*where, var, column.name, params);
    if (!range.has_value()) continue;
    return IndexChoice{column.name, range->first, range->second};
  }
  return std::nullopt;
}

Status Database::CollectMatches(Table* table, const std::string& var,
                                const DbExpr* where, const EvalScope* ambient,
                                std::vector<std::pair<RowId, Row>>* out) {
  EvalScope scope = MakeScope(ambient);
  Status visit_status = Status::OK();
  auto visit = [&](RowId id, const Row& row) {
    stats_.rows_scanned.fetch_add(1, std::memory_order_relaxed);
    Metrics().rows_scanned->Increment();
    if (where != nullptr) {
      scope.tuples[var] = TupleBinding{&table->schema(), &row};
      Result<Value> cond = EvalDbExpr(*where, scope);
      if (!cond.ok()) {
        visit_status = cond.status();
        return false;
      }
      Result<bool> truth = cond->Truthy();
      if (!truth.ok()) {
        visit_status = truth.status();
        return false;
      }
      if (!*truth) return true;
    }
    out->emplace_back(id, row);
    return true;
  };

  // Try index acceleration: any indexed int column constrained by `where`
  // — by a constant, or by a placeholder whose value is bound this call.
  if (std::optional<IndexChoice> choice =
          ChooseIndex(*table, var, where, scope.params)) {
    stats_.index_scans.fetch_add(1, std::memory_order_relaxed);
    Metrics().index_scans->Increment();
    CALDB_RETURN_IF_ERROR(
        table->IndexScan(choice->column, choice->lo, choice->hi, visit));
    return visit_status;
  }
  stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
  Metrics().full_scans->Increment();
  table->Scan(visit);
  return visit_status;
}

Status Database::FireRules(DbEvent event, const std::string& table,
                           const Schema& schema, const Row* new_row,
                           const Row* current_row) {
  // Match before touching any mutable state: retrieves run concurrently
  // under the Engine's shared lock when no retrieve rule is armed, and on
  // that path this function must stay read-only.
  bool any_match = false;
  for (const EventRule& rule : rules_) {
    if (rule.event == event && rule.table == table) {
      any_match = true;
      break;
    }
  }
  if (!any_match) return Status::OK();
  if (fire_depth_ >= kMaxRuleDepth) {
    return Status::EvalError("rule cascade exceeds depth " +
                             std::to_string(kMaxRuleDepth));
  }
  ++fire_depth_;
  Status status = Status::OK();
  for (const EventRule& rule : rules_) {
    if (rule.event != event || rule.table != table) continue;
    EvalScope scope;
    scope.registry = &registry_;
    if (new_row != nullptr) {
      scope.tuples["NEW"] = TupleBinding{&schema, new_row};
    }
    if (current_row != nullptr) {
      scope.tuples["CURRENT"] = TupleBinding{&schema, current_row};
    }
    if (rule.where != nullptr) {
      Result<Value> cond = EvalDbExpr(*rule.where, scope);
      if (!cond.ok()) {
        status = cond.status().WithContext("rule " + rule.name);
        break;
      }
      Result<bool> truth = cond->Truthy();
      if (!truth.ok() || !*truth) {
        if (!truth.ok()) {
          status = truth.status().WithContext("rule " + rule.name);
          break;
        }
        continue;
      }
    }
    stats_.rules_fired.fetch_add(1, std::memory_order_relaxed);
    Metrics().rules_fired->Increment();
    const int64_t action_start_ns = obs::NowNs();
    if (rule.callback) {
      status = rule.callback(*this, scope);
    } else if (rule.compiled_command != nullptr) {
      // The pre-compiled action (DefineRule): firings never parse.
      Result<QueryResult> r = ExecuteCompiled(*rule.compiled_command, &scope);
      status = r.status();
    } else if (!rule.command.empty()) {
      Result<QueryResult> r = Execute(rule.command, &scope);
      status = r.status();
    }
    {
      // The thread's LogContext still carries the outermost triggering
      // statement/session here (nested rule-command Executes don't reset
      // it), so cascaded firings attribute to the statement the user ran.
      const obs::LogContext& ctx = obs::CurrentLogContext();
      obs::AuditRecord record;
      record.source = obs::AuditRecord::Source::kStatement;
      record.rule = rule.name;
      record.duration_ns = obs::NowNs() - action_start_ns;
      record.session_id = ctx.session_id;
      record.trigger = ctx.statement;
      if (!status.ok()) {
        record.outcome = obs::AuditRecord::Outcome::kError;
        record.error = status.ToString();
      }
      obs::Audit().Record(std::move(record));
    }
    if (!status.ok()) {
      status = status.WithContext("rule " + rule.name);
      break;
    }
  }
  --fire_depth_;
  return status;
}

Status Database::DefineRule(EventRule rule) {
  if (rule.name.empty()) {
    return Status::InvalidArgument("rule name must not be empty");
  }
  for (const EventRule& existing : rules_) {
    if (existing.name == rule.name) {
      return Status::AlreadyExists("rule '" + rule.name + "' already exists");
    }
  }
  if (!HasTable(rule.table)) {
    return Status::NotFound("rule table '" + rule.table + "' does not exist");
  }
  if (!rule.callback && rule.command.empty()) {
    return Status::InvalidArgument("rule '" + rule.name + "' has no action");
  }
  if (!rule.command.empty() && rule.compiled_command == nullptr) {
    // Fail fast: an action that does not parse is an error here, at
    // definition time, not at the rule's first firing.  The compiled
    // handle is what firings execute.
    Result<CompiledStatementPtr> compiled = CompileStatement(rule.command);
    if (!compiled.ok()) {
      return compiled.status().WithContext("rule '" + rule.name +
                                           "' action does not parse");
    }
    rule.compiled_command = *std::move(compiled);
  }
  if (rule.compiled_command != nullptr &&
      rule.compiled_command->param_count > 0) {
    // Firings evaluate actions in a fresh NEW/CURRENT scope with no bind
    // list; a placeholder could never be bound.  Reject at definition.
    return Status::InvalidArgument(
        "rule '" + rule.name + "' action uses placeholders " +
        RenderParamSignature(*rule.compiled_command) +
        "; event-rule actions cannot take parameters");
  }
  if (rule.event == DbEvent::kRetrieve) {
    retrieve_rules_.fetch_add(1, std::memory_order_release);
  }
  total_rules_.fetch_add(1, std::memory_order_release);
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status Database::DropRule(const std::string& name) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->name == name) {
      if (it->event == DbEvent::kRetrieve) {
        retrieve_rules_.fetch_sub(1, std::memory_order_release);
      }
      total_rules_.fetch_sub(1, std::memory_order_release);
      rules_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no rule named '" + name + "'");
}

std::vector<std::string> Database::ListRules() const {
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const EventRule& rule : rules_) names.push_back(rule.name);
  return names;
}

namespace {

// Aggregate accumulator for one (target, group).
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t sum_int = 0;
  Value min;
  Value max;
};

// Group key: rendered group-by values (order matters).
std::string GroupKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

namespace {

// Collects the range variables an expression references.  An unqualified
// column reference could bind to any table, so it references all of them.
void CollectVars(const DbExpr& e, const std::vector<std::string>& all_vars,
                 std::set<std::string>* out) {
  if (e.kind == DbExpr::Kind::kColumnRef) {
    if (e.var.empty()) {
      out->insert(all_vars.begin(), all_vars.end());
    } else {
      out->insert(e.var);
    }
    return;
  }
  if (e.lhs) CollectVars(*e.lhs, all_vars, out);
  if (e.rhs) CollectVars(*e.rhs, all_vars, out);
  for (const DbExprPtr& arg : e.args) CollectVars(*arg, all_vars, out);
}

// Flattens the AND-tree of a where clause into conjuncts.
void FlattenConjuncts(const DbExprPtr& e, std::vector<const DbExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == DbExpr::Kind::kLogical && e->log == LogOp::kAnd) {
    FlattenConjuncts(e->lhs, out);
    FlattenConjuncts(e->rhs, out);
    return;
  }
  out->push_back(e.get());
}

}  // namespace

Result<QueryResult> Database::ExecuteRetrieve(const RetrieveStmt& stmt,
                                              const EvalScope* ambient) {
  if (stmt.tables.empty()) {
    return Status::InvalidArgument("retrieve needs at least one table");
  }
  // Resolve the sources.
  std::vector<Table*> tables;
  std::vector<std::string> vars;
  for (const RetrieveStmt::TableRef& ref : stmt.tables) {
    CALDB_ASSIGN_OR_RETURN(Table * table, GetTable(ref.table));
    tables.push_back(table);
    vars.push_back(ref.var);
  }

  // Predicate pushdown into the nested-loop join: each conjunct is
  // evaluated at the innermost level where all its variables are bound.
  std::vector<const DbExpr*> conjuncts;
  FlattenConjuncts(stmt.where, &conjuncts);
  std::vector<std::vector<const DbExpr*>> conjuncts_at(stmt.tables.size());
  for (const DbExpr* conjunct : conjuncts) {
    std::set<std::string> used;
    CollectVars(*conjunct, vars, &used);
    size_t level = 0;
    for (size_t k = 0; k < vars.size(); ++k) {
      if (used.count(vars[k]) > 0) level = std::max(level, k);
    }
    conjuncts_at[level].push_back(conjunct);
  }

  const bool aggregating =
      !stmt.group_by.empty() ||
      std::any_of(stmt.targets.begin(), stmt.targets.end(),
                  [](const RetrieveStmt::Target& t) {
                    return ContainsAggregate(*t.expr);
                  });

  QueryResult result;
  for (const RetrieveStmt::Target& target : stmt.targets) {
    result.columns.push_back(target.alias);
  }

  // Aggregation validation + state.
  if (aggregating) {
    for (const RetrieveStmt::Target& target : stmt.targets) {
      const DbExpr& e = *target.expr;
      const bool is_agg =
          e.kind == DbExpr::Kind::kCall && IsAggregateName(e.fn_name);
      const bool is_group_col =
          e.kind == DbExpr::Kind::kColumnRef &&
          std::any_of(stmt.group_by.begin(), stmt.group_by.end(),
                      [&e](const std::pair<std::string, std::string>& g) {
                        return g.second == e.column &&
                               (g.first.empty() || e.var.empty() ||
                                g.first == e.var);
                      });
      if (!is_agg && !is_group_col) {
        return Status::InvalidArgument(
            "target '" + e.ToString() +
            "' must be an aggregate or a group-by column");
      }
      if (is_agg && e.args.size() > 1) {
        return Status::InvalidArgument("aggregate '" + e.fn_name +
                                       "' takes at most one argument");
      }
    }
  }
  std::map<std::string, std::pair<Row, std::vector<AggState>>> groups;
  std::vector<std::string> group_order;

  EvalScope scope = MakeScope(ambient);
  // Rows currently bound at each join level (stable storage for bindings).
  std::vector<Row> bound_rows(stmt.tables.size());
  // Tuples touched, for retrieve-rule firing (deduplicated).
  std::set<std::pair<std::string, RowId>> touched;

  // Group-by columns resolve to (level, column index) pairs.
  struct GroupCol {
    size_t level;
    size_t column;
  };
  std::vector<GroupCol> group_cols;
  for (const auto& [var, column] : stmt.group_by) {
    bool found = false;
    for (size_t k = 0; k < vars.size(); ++k) {
      if (!var.empty() && vars[k] != var) continue;
      Result<size_t> idx = tables[k]->schema().IndexOf(column);
      if (!idx.ok()) {
        if (!var.empty()) return idx.status();
        continue;
      }
      group_cols.push_back(GroupCol{k, *idx});
      found = true;
      break;
    }
    if (!found) {
      return Status::NotFound("group by column '" + column + "' not found");
    }
  }

  // One fully bound combination: emit a row or feed the aggregates.
  auto emit = [&]() -> Status {
    if (!aggregating) {
      Row out;
      out.reserve(stmt.targets.size());
      for (const RetrieveStmt::Target& target : stmt.targets) {
        CALDB_ASSIGN_OR_RETURN(Value v, EvalDbExpr(*target.expr, scope));
        out.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out));
      return Status::OK();
    }
    std::vector<Value> key_values;
    key_values.reserve(group_cols.size());
    for (const GroupCol& g : group_cols) {
      key_values.push_back(bound_rows[g.level][g.column]);
    }
    std::string key = GroupKey(key_values);
    auto [it, inserted] = groups.try_emplace(
        key, Row{}, std::vector<AggState>(stmt.targets.size()));
    if (inserted) {
      it->second.first = key_values;
      group_order.push_back(key);
    }
    std::vector<AggState>& states = it->second.second;
    for (size_t t = 0; t < stmt.targets.size(); ++t) {
      const DbExpr& e = *stmt.targets[t].expr;
      if (e.kind != DbExpr::Kind::kCall || !IsAggregateName(e.fn_name)) {
        continue;
      }
      Value v = Value::Null();
      if (!e.args.empty()) {
        CALDB_ASSIGN_OR_RETURN(v, EvalDbExpr(*e.args[0], scope));
        if (v.is_null()) continue;  // nulls are ignored by aggregates
      }
      AggState& state = states[t];
      ++state.count;
      if (!e.args.empty() &&
          (v.type() == ValueType::kInt || v.type() == ValueType::kFloat)) {
        if (v.type() == ValueType::kInt) {
          state.sum_int += v.AsInt().value();
        } else {
          state.sum_is_int = false;
        }
        state.sum += v.AsFloat().value();
      }
      if (state.min.is_null()) {
        state.min = v;
        state.max = v;
      } else if (!v.is_null()) {
        Result<int> cmp_min = v.Compare(state.min);
        if (cmp_min.ok() && *cmp_min < 0) state.min = v;
        Result<int> cmp_max = v.Compare(state.max);
        if (cmp_max.ok() && *cmp_max > 0) state.max = v;
      }
    }
    return Status::OK();
  };

  // Recursive nested-loop enumeration with per-level filtering; level 0
  // may use an index range extracted from the where clause.
  std::function<Status(size_t)> enumerate = [&](size_t level) -> Status {
    if (level == stmt.tables.size()) return emit();
    Table* table = tables[level];
    Status inner_status = Status::OK();
    auto visit = [&](RowId id, const Row& row) {
      stats_.rows_scanned.fetch_add(1, std::memory_order_relaxed);
      Metrics().rows_scanned->Increment();
      bound_rows[level] = row;
      scope.tuples[vars[level]] =
          TupleBinding{&table->schema(), &bound_rows[level]};
      for (const DbExpr* conjunct : conjuncts_at[level]) {
        Result<Value> cond = EvalDbExpr(*conjunct, scope);
        if (!cond.ok()) {
          inner_status = cond.status();
          return false;
        }
        Result<bool> truth = cond->Truthy();
        if (!truth.ok()) {
          inner_status = truth.status();
          return false;
        }
        if (!*truth) return true;  // filtered out; next row
      }
      touched.emplace(stmt.tables[level].table, id);
      inner_status = enumerate(level + 1);
      return inner_status.ok();
    };
    if (std::optional<IndexChoice> choice =
            ChooseIndex(*table, vars[level], stmt.where.get(),
                        scope.params)) {
      stats_.index_scans.fetch_add(1, std::memory_order_relaxed);
      Metrics().index_scans->Increment();
      CALDB_RETURN_IF_ERROR(
          table->IndexScan(choice->column, choice->lo, choice->hi, visit));
      return inner_status;
    }
    stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
    Metrics().full_scans->Increment();
    table->Scan(visit);
    return inner_status;
  };
  CALDB_RETURN_IF_ERROR(enumerate(0));

  if (aggregating) {
    // Emit one row per group, in first-seen order.
    for (const std::string& key : group_order) {
      auto& [key_values, states] = groups[key];
      Row out;
      for (size_t t = 0; t < stmt.targets.size(); ++t) {
        const DbExpr& e = *stmt.targets[t].expr;
        if (e.kind == DbExpr::Kind::kColumnRef) {
          // Position of the column in the group-by key.
          size_t pos = 0;
          for (size_t g = 0; g < stmt.group_by.size(); ++g) {
            if (stmt.group_by[g].second == e.column &&
                (stmt.group_by[g].first.empty() || e.var.empty() ||
                 stmt.group_by[g].first == e.var)) {
              pos = g;
              break;
            }
          }
          out.push_back(key_values[pos]);
          continue;
        }
        const AggState& state = states[t];
        std::string agg = AsciiToLower(e.fn_name);
        if (agg == "count") {
          out.push_back(Value::Int(state.count));
        } else if (agg == "sum") {
          out.push_back(state.sum_is_int ? Value::Int(state.sum_int)
                                         : Value::Float(state.sum));
        } else if (agg == "avg") {
          out.push_back(state.count == 0
                            ? Value::Null()
                            : Value::Float(state.sum /
                                           static_cast<double>(state.count)));
        } else if (agg == "min") {
          out.push_back(state.min);
        } else {
          out.push_back(state.max);
        }
      }
      result.rows.push_back(std::move(out));
    }
  }

  // order by named output columns.
  if (!stmt.order_by.empty()) {
    std::vector<size_t> order_idx;
    std::vector<bool> order_asc;
    for (const auto& [column, asc] : stmt.order_by) {
      auto it = std::find(result.columns.begin(), result.columns.end(), column);
      if (it == result.columns.end()) {
        return Status::InvalidArgument("order by column '" + column +
                                       "' is not in the target list");
      }
      order_idx.push_back(static_cast<size_t>(it - result.columns.begin()));
      order_asc.push_back(asc);
    }
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < order_idx.size(); ++k) {
                         Result<int> cmp = a[order_idx[k]].Compare(b[order_idx[k]]);
                         int c = cmp.ok() ? *cmp : 0;
                         if (c != 0) return order_asc[k] ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }

  // Postquel's "retrieve into": materialize the result as a new table.
  if (!stmt.into.empty()) {
    std::vector<Column> columns;
    for (size_t c = 0; c < result.columns.size(); ++c) {
      ValueType type = ValueType::kText;  // all-null columns default to text
      for (const Row& row : result.rows) {
        if (!row[c].is_null()) {
          type = row[c].type();
          break;
        }
      }
      columns.push_back(Column{result.columns[c], type});
    }
    CALDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
    CALDB_RETURN_IF_ERROR(CreateTable(stmt.into, std::move(schema)));
    CALDB_ASSIGN_OR_RETURN(Table * into_table, GetTable(stmt.into));
    for (Row& row : result.rows) {
      CALDB_RETURN_IF_ERROR(into_table->Insert(std::move(row)).status());
    }
    int64_t materialized = static_cast<int64_t>(result.rows.size());
    result = QueryResult{};
    result.affected = materialized;
    result.message = "retrieved " + std::to_string(materialized) +
                     " rows into " + stmt.into;
  }

  // Fire retrieve rules once per accessed tuple of each table.
  for (const auto& [table_name, id] : touched) {
    CALDB_ASSIGN_OR_RETURN(Table * touched_table, GetTable(table_name));
    Result<Row> row = touched_table->Get(id);
    if (!row.ok()) continue;  // deleted mid-statement by a rule
    CALDB_RETURN_IF_ERROR(FireRules(DbEvent::kRetrieve, table_name,
                                    touched_table->schema(), nullptr,
                                    &row.value()));
  }
  if (stmt.into.empty()) {
    result.affected = static_cast<int64_t>(result.rows.size());
  }
  return result;
}

Result<QueryResult> Database::ExecuteAppend(const AppendStmt& stmt,
                                            const EvalScope* ambient) {
  CALDB_ASSIGN_OR_RETURN(Table * table, GetTable(stmt.table));
  const Schema& schema = table->schema();
  Row row(schema.size(), Value::Null());
  EvalScope scope = MakeScope(ambient);
  std::vector<bool> assigned(schema.size(), false);
  for (const auto& [column, expr] : stmt.sets) {
    CALDB_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
    if (assigned[idx]) {
      return Status::InvalidArgument("column '" + column + "' set twice");
    }
    assigned[idx] = true;
    CALDB_ASSIGN_OR_RETURN(row[idx], EvalDbExpr(*expr, scope));
  }
  CALDB_ASSIGN_OR_RETURN(RowId id, table->Insert(row));
  (void)id;
  CALDB_RETURN_IF_ERROR(
      FireRules(DbEvent::kAppend, stmt.table, schema, &row, nullptr));
  QueryResult result;
  result.affected = 1;
  result.message = "appended 1 row to " + stmt.table;
  return result;
}

Result<QueryResult> Database::ExecuteReplace(const ReplaceStmt& stmt,
                                             const EvalScope* ambient) {
  CALDB_ASSIGN_OR_RETURN(Table * table, GetTable(stmt.table));
  const Schema& schema = table->schema();
  // Validate the set list up front, even when no row matches.
  for (const auto& [column, expr] : stmt.sets) {
    CALDB_RETURN_IF_ERROR(schema.IndexOf(column).status());
  }
  std::vector<std::pair<RowId, Row>> matches;
  CALDB_RETURN_IF_ERROR(
      CollectMatches(table, stmt.var, stmt.where.get(), ambient, &matches));
  EvalScope scope = MakeScope(ambient);
  for (const auto& [id, old_row] : matches) {
    scope.tuples[stmt.var] = TupleBinding{&schema, &old_row};
    Row new_row = old_row;
    for (const auto& [column, expr] : stmt.sets) {
      CALDB_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column));
      CALDB_ASSIGN_OR_RETURN(new_row[idx], EvalDbExpr(*expr, scope));
    }
    CALDB_RETURN_IF_ERROR(table->Update(id, new_row));
    CALDB_RETURN_IF_ERROR(
        FireRules(DbEvent::kReplace, stmt.table, schema, &new_row, &old_row));
  }
  QueryResult result;
  result.affected = static_cast<int64_t>(matches.size());
  result.message = "replaced " + std::to_string(matches.size()) + " rows in " +
                   stmt.table;
  return result;
}

Result<QueryResult> Database::ExecuteDelete(const DeleteStmt& stmt,
                                            const EvalScope* ambient) {
  CALDB_ASSIGN_OR_RETURN(Table * table, GetTable(stmt.table));
  std::vector<std::pair<RowId, Row>> matches;
  CALDB_RETURN_IF_ERROR(
      CollectMatches(table, stmt.var, stmt.where.get(), ambient, &matches));
  for (const auto& [id, row] : matches) {
    CALDB_RETURN_IF_ERROR(
        FireRules(DbEvent::kDelete, stmt.table, table->schema(), nullptr, &row));
    CALDB_RETURN_IF_ERROR(table->Delete(id));
  }
  QueryResult result;
  result.affected = static_cast<int64_t>(matches.size());
  result.message = "deleted " + std::to_string(matches.size()) + " rows from " +
                   stmt.table;
  return result;
}

namespace {

std::string RangeToString(int64_t lo, int64_t hi) {
  return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

}  // namespace

Result<std::string> Database::DescribePlan(const Statement& stmt) const {
  std::string out;
  auto describe_scan = [&](const Table& table, const std::string& var,
                           const DbExpr* where) {
    std::optional<IndexChoice> choice = ChooseIndex(table, var, where);
    out += "  scan " + var + " in " + table.name();
    if (choice.has_value()) {
      out += ": index scan on (" + choice->column + ") range " +
             RangeToString(choice->lo, choice->hi);
    } else {
      out += ": full scan (" + std::to_string(table.size()) + " rows)";
    }
    out += "\n";
  };
  auto describe_rules = [&](DbEvent event, const std::string& table) {
    int armed = 0;
    for (const EventRule& rule : rules_) {
      if (rule.event == event && rule.table == table) ++armed;
    }
    if (armed > 0) {
      out += "  rules armed on " + std::string(DbEventName(event)) + " " +
             table + ": " + std::to_string(armed) + "\n";
    }
  };

  if (const auto* retrieve = std::get_if<RetrieveStmt>(&stmt)) {
    out += "retrieve: nested-loop join over " +
           std::to_string(retrieve->tables.size()) + " range variable" +
           (retrieve->tables.size() == 1 ? "" : "s") + "\n";
    for (const RetrieveStmt::TableRef& ref : retrieve->tables) {
      CALDB_ASSIGN_OR_RETURN(const Table* table, GetTable(ref.table));
      describe_scan(*table, ref.var, retrieve->where.get());
      describe_rules(DbEvent::kRetrieve, ref.table);
    }
    if (!retrieve->group_by.empty()) {
      out += "  group by " + std::to_string(retrieve->group_by.size()) +
             " column" + (retrieve->group_by.size() == 1 ? "" : "s") + "\n";
    }
    if (!retrieve->order_by.empty()) {
      out += "  sort by " + std::to_string(retrieve->order_by.size()) +
             " column" + (retrieve->order_by.size() == 1 ? "" : "s") + "\n";
    }
    if (!retrieve->into.empty()) {
      out += "  materialize into " + retrieve->into + "\n";
    }
    return out;
  }
  if (const auto* replace = std::get_if<ReplaceStmt>(&stmt)) {
    out += "replace in " + replace->table + "\n";
    CALDB_ASSIGN_OR_RETURN(const Table* table, GetTable(replace->table));
    describe_scan(*table, replace->var, replace->where.get());
    describe_rules(DbEvent::kReplace, replace->table);
    return out;
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    out += "delete from " + del->table + "\n";
    CALDB_ASSIGN_OR_RETURN(const Table* table, GetTable(del->table));
    describe_scan(*table, del->var, del->where.get());
    describe_rules(DbEvent::kDelete, del->table);
    return out;
  }
  if (const auto* append = std::get_if<AppendStmt>(&stmt)) {
    out += "append 1 row to " + append->table + "\n";
    describe_rules(DbEvent::kAppend, append->table);
    return out;
  }
  if (std::holds_alternative<ExplainStmt>(stmt)) {
    return Status::InvalidArgument("explain of an explain statement");
  }
  // DDL and rule management have no access plan.
  out += "utility statement (no access plan)\n";
  return out;
}

Result<QueryResult> Database::ExecuteExplain(const ExplainStmt& stmt,
                                             const EvalScope* ambient) {
  // One compiled handle serves both the plan rendering and the PROFILE
  // timed run.  The parse-time handle is reused when present; only a
  // hand-built ExplainStmt (inner == nullptr) compiles here.
  CompiledStatementPtr inner = stmt.inner;
  if (inner == nullptr) {
    CALDB_ASSIGN_OR_RETURN(inner, CompileStatement(stmt.query));
  }
  QueryResult result;
  CALDB_ASSIGN_OR_RETURN(result.message, DescribePlan(*inner->stmt));
  if (!stmt.profile) return result;

  const Stats before = stats();
  const int64_t t0 = obs::NowNs();
  CALDB_ASSIGN_OR_RETURN(QueryResult run, ExecuteParsed(*inner->stmt, ambient,
                                                        inner->text));
  const int64_t ns = obs::NowNs() - t0;

  result.message += "profile: rows_scanned=" +
                    std::to_string(stats().rows_scanned - before.rows_scanned) +
                    " index_scans=" +
                    std::to_string(stats().index_scans - before.index_scans) +
                    " full_scans=" +
                    std::to_string(stats().full_scans - before.full_scans) +
                    " rules_fired=" +
                    std::to_string(stats().rules_fired - before.rules_fired) +
                    " rows_out=" + std::to_string(run.affected) + " time=" +
                    std::to_string(ns / 1000) + "." +
                    std::to_string(ns / 100 % 10) + "us\n";
  return result;
}

}  // namespace caldb
