// Schema: ordered, typed columns of a table.

#ifndef CALDB_DB_SCHEMA_H_
#define CALDB_DB_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace caldb {

struct Column {
  std::string name;
  ValueType type = ValueType::kInt;

  bool operator==(const Column&) const = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// Validates uniqueness and non-emptiness of column names.
  static Result<Schema> Make(std::vector<Column> columns);

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }

  /// Index of a column by name, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  bool HasColumn(const std::string& name) const;

  /// Checks that a row matches the schema (null is allowed in any column).
  Status ValidateRow(const std::vector<Value>& row) const;

  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Column> columns_;
};

using Row = std::vector<Value>;

}  // namespace caldb

#endif  // CALDB_DB_SCHEMA_H_
