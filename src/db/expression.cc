#include "db/expression.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"

namespace caldb {

namespace {

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

std::string DbExpr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kColumnRef:
      return var.empty() ? column : var + "." + column;
    case Kind::kCompare:
      return "(" + lhs->ToString() + " " + std::string(CmpOpName(cmp)) + " " +
             rhs->ToString() + ")";
    case Kind::kLogical:
      if (log == LogOp::kNot) return "(not " + lhs->ToString() + ")";
      return "(" + lhs->ToString() + (log == LogOp::kAnd ? " and " : " or ") +
             rhs->ToString() + ")";
    case Kind::kArith:
      return "(" + lhs->ToString() + " " + arith + " " + rhs->ToString() + ")";
    case Kind::kCall: {
      std::string out = fn_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kParam:
      return "$" + std::to_string(param_index);
  }
  return "?";
}

Result<Value> EvalDbExpr(const DbExpr& expr, const EvalScope& scope) {
  switch (expr.kind) {
    case DbExpr::Kind::kConst:
      return expr.constant;

    case DbExpr::Kind::kColumnRef: {
      const TupleBinding* binding = nullptr;
      if (!expr.var.empty()) {
        auto it = scope.tuples.find(expr.var);
        if (it == scope.tuples.end()) {
          return Status::EvalError("unknown range variable '" + expr.var + "'");
        }
        binding = &it->second;
      } else {
        if (scope.tuples.size() != 1) {
          return Status::EvalError("unqualified column '" + expr.column +
                                   "' is ambiguous");
        }
        binding = &scope.tuples.begin()->second;
      }
      CALDB_ASSIGN_OR_RETURN(size_t idx, binding->schema->IndexOf(expr.column));
      return (*binding->row)[idx];
    }

    case DbExpr::Kind::kCompare: {
      CALDB_ASSIGN_OR_RETURN(Value a, EvalDbExpr(*expr.lhs, scope));
      CALDB_ASSIGN_OR_RETURN(Value b, EvalDbExpr(*expr.rhs, scope));
      if (expr.cmp == CmpOp::kEq) return Value::Bool(a.Equals(b));
      if (expr.cmp == CmpOp::kNe) return Value::Bool(!a.Equals(b));
      if (a.is_null() || b.is_null()) return Value::Bool(false);
      CALDB_ASSIGN_OR_RETURN(int c, a.Compare(b));
      switch (expr.cmp) {
        case CmpOp::kLt:
          return Value::Bool(c < 0);
        case CmpOp::kLe:
          return Value::Bool(c <= 0);
        case CmpOp::kGt:
          return Value::Bool(c > 0);
        case CmpOp::kGe:
          return Value::Bool(c >= 0);
        default:
          break;
      }
      return Status::Internal("unhandled comparison");
    }

    case DbExpr::Kind::kLogical: {
      CALDB_ASSIGN_OR_RETURN(Value a, EvalDbExpr(*expr.lhs, scope));
      CALDB_ASSIGN_OR_RETURN(bool av, a.Truthy());
      if (expr.log == LogOp::kNot) return Value::Bool(!av);
      // Short-circuit.
      if (expr.log == LogOp::kAnd && !av) return Value::Bool(false);
      if (expr.log == LogOp::kOr && av) return Value::Bool(true);
      CALDB_ASSIGN_OR_RETURN(Value b, EvalDbExpr(*expr.rhs, scope));
      CALDB_ASSIGN_OR_RETURN(bool bv, b.Truthy());
      return Value::Bool(bv);
    }

    case DbExpr::Kind::kArith: {
      CALDB_ASSIGN_OR_RETURN(Value a, EvalDbExpr(*expr.lhs, scope));
      CALDB_ASSIGN_OR_RETURN(Value b, EvalDbExpr(*expr.rhs, scope));
      if (a.is_null() || b.is_null()) return Value::Null();
      const bool both_int =
          a.type() == ValueType::kInt && b.type() == ValueType::kInt;
      if (both_int) {
        CALDB_ASSIGN_OR_RETURN(int64_t x, a.AsInt());
        CALDB_ASSIGN_OR_RETURN(int64_t y, b.AsInt());
        switch (expr.arith) {
          case '+':
            return Value::Int(x + y);
          case '-':
            return Value::Int(x - y);
          case '*':
            return Value::Int(x * y);
          case '/':
            if (y == 0) return Status::EvalError("division by zero");
            return Value::Int(x / y);
        }
      }
      CALDB_ASSIGN_OR_RETURN(double x, a.AsFloat());
      CALDB_ASSIGN_OR_RETURN(double y, b.AsFloat());
      switch (expr.arith) {
        case '+':
          return Value::Float(x + y);
        case '-':
          return Value::Float(x - y);
        case '*':
          return Value::Float(x * y);
        case '/':
          if (y == 0.0) return Status::EvalError("division by zero");
          return Value::Float(x / y);
      }
      return Status::Internal("unhandled arithmetic operator");
    }

    case DbExpr::Kind::kCall: {
      if (IsAggregateName(expr.fn_name)) {
        return Status::EvalError("aggregate '" + expr.fn_name +
                                 "' outside an aggregating retrieve");
      }
      if (scope.registry == nullptr) {
        return Status::EvalError("no function registry available");
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const DbExprPtr& arg : expr.args) {
        CALDB_ASSIGN_OR_RETURN(Value v, EvalDbExpr(*arg, scope));
        args.push_back(std::move(v));
      }
      return scope.registry->Call(expr.fn_name, args);
    }

    case DbExpr::Kind::kParam: {
      if (scope.params == nullptr ||
          static_cast<size_t>(expr.param_index) > scope.params->size() ||
          expr.param_index < 1) {
        return Status::EvalError("parameter $" +
                                 std::to_string(expr.param_index) +
                                 " is not bound");
      }
      return (*scope.params)[static_cast<size_t>(expr.param_index) - 1];
    }
  }
  return Status::Internal("unknown expression kind");
}

bool IsAggregateName(const std::string& name) {
  std::string lower = AsciiToLower(name);
  return lower == "count" || lower == "sum" || lower == "min" ||
         lower == "max" || lower == "avg";
}

bool ContainsAggregate(const DbExpr& expr) {
  if (expr.kind == DbExpr::Kind::kCall && IsAggregateName(expr.fn_name)) {
    return true;
  }
  if (expr.lhs && ContainsAggregate(*expr.lhs)) return true;
  if (expr.rhs && ContainsAggregate(*expr.rhs)) return true;
  for (const DbExprPtr& arg : expr.args) {
    if (ContainsAggregate(*arg)) return true;
  }
  return false;
}

namespace {

// Resolves an expression to an int key usable for index planning: an int
// constant, or — when a bind list is present — a placeholder whose bound
// value is an int.  Params make the plan per-execution: the same compiled
// shape index-scans with one bind list and may full-scan with another.
std::optional<int64_t> KeyFromExpr(const DbExpr& e,
                                   const std::vector<Value>* params) {
  const Value* v = nullptr;
  if (e.kind == DbExpr::Kind::kConst) {
    v = &e.constant;
  } else if (e.kind == DbExpr::Kind::kParam && params != nullptr &&
             e.param_index >= 1 &&
             static_cast<size_t>(e.param_index) <= params->size()) {
    v = &(*params)[e.param_index - 1];
  } else {
    return std::nullopt;
  }
  Result<int64_t> key = v->AsInt();
  if (!key.ok()) return std::nullopt;
  return *key;
}

// Narrows [lo, hi] using one comparison conjunct when it matches
// var.column <op> key (either operand order), where key is an int constant
// or a bound placeholder.
void NarrowFromCompare(const DbExpr& cmp, const std::string& var,
                       const std::string& column,
                       const std::vector<Value>* params, int64_t* lo,
                       int64_t* hi) {
  bool flipped = false;
  auto is_col = [&](const DbExpr& e) {
    return e.kind == DbExpr::Kind::kColumnRef && e.column == column &&
           (e.var == var || e.var.empty());
  };
  std::optional<int64_t> key;
  if (is_col(*cmp.lhs) && (key = KeyFromExpr(*cmp.rhs, params))) {
    // column on the left
  } else if (is_col(*cmp.rhs) && (key = KeyFromExpr(*cmp.lhs, params))) {
    flipped = true;
  } else {
    return;
  }
  CmpOp op = cmp.cmp;
  if (flipped) {
    switch (op) {
      case CmpOp::kLt:
        op = CmpOp::kGt;
        break;
      case CmpOp::kLe:
        op = CmpOp::kGe;
        break;
      case CmpOp::kGt:
        op = CmpOp::kLt;
        break;
      case CmpOp::kGe:
        op = CmpOp::kLe;
        break;
      default:
        break;
    }
  }
  switch (op) {
    case CmpOp::kEq:
      *lo = std::max(*lo, *key);
      *hi = std::min(*hi, *key);
      break;
    case CmpOp::kLt:
      *hi = std::min(*hi, *key - 1);
      break;
    case CmpOp::kLe:
      *hi = std::min(*hi, *key);
      break;
    case CmpOp::kGt:
      *lo = std::max(*lo, *key + 1);
      break;
    case CmpOp::kGe:
      *lo = std::max(*lo, *key);
      break;
    case CmpOp::kNe:
      break;
  }
}

void WalkConjuncts(const DbExpr& expr, const std::string& var,
                   const std::string& column,
                   const std::vector<Value>* params, int64_t* lo, int64_t* hi,
                   bool* narrowed) {
  if (expr.kind == DbExpr::Kind::kLogical && expr.log == LogOp::kAnd) {
    WalkConjuncts(*expr.lhs, var, column, params, lo, hi, narrowed);
    WalkConjuncts(*expr.rhs, var, column, params, lo, hi, narrowed);
    return;
  }
  if (expr.kind == DbExpr::Kind::kCompare) {
    int64_t before_lo = *lo;
    int64_t before_hi = *hi;
    NarrowFromCompare(expr, var, column, params, lo, hi);
    if (*lo != before_lo || *hi != before_hi) *narrowed = true;
  }
  // Other conjunct shapes are residual filters; they never widen the range.
}

}  // namespace

std::optional<std::pair<int64_t, int64_t>> ExtractIndexRange(
    const DbExpr& expr, const std::string& var, const std::string& column,
    const std::vector<Value>* params) {
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;
  bool narrowed = false;
  WalkConjuncts(expr, var, column, params, &lo, &hi, &narrowed);
  if (!narrowed) return std::nullopt;
  return std::make_pair(lo, hi);
}

}  // namespace caldb
