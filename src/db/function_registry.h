// FunctionRegistry: the extensibility hook of the DB substrate.  User code
// registers named functions over Values; registered functions are callable
// from the query language — the way the paper's calendar operators are
// "declared as operators to the extensible DBMS" (§5).

#ifndef CALDB_DB_FUNCTION_REGISTRY_H_
#define CALDB_DB_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace caldb {

class FunctionRegistry {
 public:
  using Fn = std::function<Result<Value>(const std::vector<Value>&)>;

  /// Registers a function.  `max_args` = -1 means variadic.
  Status Register(const std::string& name, int min_args, int max_args, Fn fn);

  bool Contains(const std::string& name) const;

  Result<Value> Call(const std::string& name,
                     const std::vector<Value>& args) const;

  std::vector<std::string> List() const;

 private:
  struct Entry {
    int min_args;
    int max_args;
    Fn fn;
  };
  std::map<std::string, Entry> fns_;
};

}  // namespace caldb

#endif  // CALDB_DB_FUNCTION_REGISTRY_H_
