// Query-language expressions: column references, constants, comparisons,
// boolean logic, arithmetic, and registered-function calls.

#ifndef CALDB_DB_EXPRESSION_H_
#define CALDB_DB_EXPRESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/function_registry.h"
#include "db/schema.h"

namespace caldb {

struct DbExpr;
using DbExprPtr = std::shared_ptr<DbExpr>;

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogOp { kAnd, kOr, kNot };

struct DbExpr {
  enum class Kind {
    kConst,
    kColumnRef,
    kCompare,
    kLogical,
    kArith,
    kCall,
    kParam
  };

  Kind kind = Kind::kConst;
  Value constant;                  // kConst
  std::string var;                 // kColumnRef: range variable (may be "")
  std::string column;              // kColumnRef
  CmpOp cmp = CmpOp::kEq;          // kCompare
  LogOp log = LogOp::kAnd;         // kLogical (kNot uses lhs only)
  char arith = '+';                // kArith: + - * /
  std::string fn_name;             // kCall
  std::vector<DbExprPtr> args;     // kCall
  int param_index = 0;             // kParam: 1-based ($1 is index 1)
  DbExprPtr lhs;
  DbExprPtr rhs;

  std::string ToString() const;
};

/// A named tuple visible during evaluation (the range variable, NEW,
/// CURRENT).
struct TupleBinding {
  const Schema* schema = nullptr;
  const Row* row = nullptr;
};

struct EvalScope {
  std::map<std::string, TupleBinding> tuples;
  const FunctionRegistry* registry = nullptr;
  // Positional parameter values bound at execute time; $n evaluates to
  // (*params)[n - 1].  Null when the statement was executed without
  // parameters ($n then fails with an EvalError).
  const std::vector<Value>* params = nullptr;
};

/// Evaluates an expression against bound tuples.
Result<Value> EvalDbExpr(const DbExpr& expr, const EvalScope& scope);

/// Collects the set of aggregate calls (count/sum/min/max/avg) in an
/// expression.  Returns true when any is present.
bool ContainsAggregate(const DbExpr& expr);

/// True for the built-in aggregate function names.
bool IsAggregateName(const std::string& name);

/// Index-planning helper: when `expr` (a where clause) constrains
/// `var.column` to a contiguous int range (via =, <, <=, >, >= conjuncts),
/// returns that [lo, hi] range.  Conservative: returns nullopt when any
/// disjunction or unsupported shape is involved.  When `params` is
/// non-null, bound placeholders count as constants — `t.x = $1` plans an
/// index scan using the value bound at execute time.
std::optional<std::pair<int64_t, int64_t>> ExtractIndexRange(
    const DbExpr& expr, const std::string& var, const std::string& column,
    const std::vector<Value>* params = nullptr);

}  // namespace caldb

#endif  // CALDB_DB_EXPRESSION_H_
