// An in-memory B+tree mapping int64 keys to row ids.
//
// This is the index structure the paper relies on for "the creation of
// indexes to optimize the performance of these operators" (§1): time
// points are integers, so a single int64-keyed tree covers the calendar
// use cases.  Duplicate keys are supported by treating (key, rowid) as the
// composite search key.  Leaves are chained for range scans.

#ifndef CALDB_DB_BTREE_H_
#define CALDB_DB_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"

namespace caldb {

class BPlusTree {
 public:
  /// `max_entries` is the node fan-out (>= 4); defaults suit in-memory use.
  explicit BPlusTree(int max_entries = 64);
  ~BPlusTree();  // out-of-line: Node is incomplete here

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts one (key, rowid) entry; false (and no change) when that exact
  /// pair is already present.  The composite is the tree's unique key — a
  /// duplicate would let a leaf split land between two equal entries,
  /// leaving no valid separator.
  bool Insert(int64_t key, int64_t rowid);

  /// Removes one (key, rowid) entry; false when absent.
  bool Erase(int64_t key, int64_t rowid);

  /// Visits entries with lo <= key <= hi in key order.  The visitor
  /// returns false to stop early.
  void ScanRange(int64_t lo, int64_t hi,
                 const std::function<bool(int64_t key, int64_t rowid)>& fn) const;

  /// Visits all entries in key order.
  void ScanAll(const std::function<bool(int64_t, int64_t)>& fn) const;

  int64_t size() const { return size_; }
  int height() const;

  /// Structural invariant check (sortedness, uniform depth, separator
  /// bounds, occupancy).  Used by tests.
  Status CheckInvariants() const;

 private:
  using Entry = std::pair<int64_t, int64_t>;  // (key, rowid)
  struct Node;

  // Insert result: set when the child split.
  struct SplitResult {
    Entry separator;  // smallest composite of the new right node
    std::unique_ptr<Node> right;
  };

  std::unique_ptr<SplitResult> InsertRec(Node* node, const Entry& entry,
                                         bool* inserted);
  bool EraseRec(Node* node, const Entry& entry);
  void RebalanceChild(Node* parent, size_t child_idx);
  const Node* FindLeaf(int64_t key) const;
  Status CheckNode(const Node* node, int depth, int leaf_depth, bool is_root,
                   const Entry* lower, const Entry* upper) const;
  int LeafDepth() const;

  int max_entries_;
  int min_entries_;
  int64_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace caldb

#endif  // CALDB_DB_BTREE_H_
