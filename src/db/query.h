// Statements of the Postquel-style query language of the DB substrate:
//
//   create table payroll (student text, week int, hours int)
//   create index on payroll (week)
//   append payroll (student = 'ann', week = 3, hours = 22)
//   retrieve (w.student, sum(w.hours) as total) from w in payroll
//       where w.week >= 1 group by w.student order by total desc
//   replace w in payroll (hours = 10) where w.student = 'ann'
//   delete w in payroll where w.week = 3
//   define rule r1 on append to payroll where NEW.hours > 20
//       do append alerts (student = NEW.student)
//   drop rule r1

#ifndef CALDB_DB_QUERY_H_
#define CALDB_DB_QUERY_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "db/expression.h"
#include "db/schema.h"

namespace caldb {

/// The rule-triggering database operations (§4).
enum class DbEvent { kAppend, kDelete, kReplace, kRetrieve };

std::string_view DbEventName(DbEvent event);

struct RetrieveStmt {
  struct Target {
    DbExprPtr expr;
    std::string alias;  // output column name
  };
  struct TableRef {
    std::string var;
    std::string table;
  };
  std::vector<Target> targets;
  // Postquel's materialization: "retrieve into t (...) from ..." creates
  // table `into` holding the result (empty = return rows to the caller).
  std::string into;
  // One or more range variables; several form a join:
  //   retrieve (s.name) from s in students, w in work where s.name = w.name
  std::vector<TableRef> tables;
  DbExprPtr where;  // may be null
  // Grouping columns as (var, column); var may be "" when unambiguous.
  std::vector<std::pair<std::string, std::string>> group_by;
  std::vector<std::pair<std::string, bool>> order_by;  // (output column, asc)
};

struct AppendStmt {
  std::string table;
  std::vector<std::pair<std::string, DbExprPtr>> sets;
};

struct ReplaceStmt {
  std::string var;
  std::string table;
  std::vector<std::pair<std::string, DbExprPtr>> sets;
  DbExprPtr where;  // may be null
};

struct DeleteStmt {
  std::string var;
  std::string table;
  DbExprPtr where;  // may be null
};

struct CreateTableStmt {
  std::string table;
  std::vector<Column> columns;
};

struct CreateIndexStmt {
  std::string table;
  std::string column;
};

struct DefineRuleStmt {
  std::string name;
  DbEvent event = DbEvent::kAppend;
  std::string table;
  DbExprPtr where;  // may be null; NEW/CURRENT are in scope
  std::string action_command;  // a statement executed when the rule fires
};

struct DropRuleStmt {
  std::string name;
};

struct DropTableStmt {
  std::string table;
};

struct CompiledStatement;  // db/compiled_statement.h

/// `explain <stmt>` / `profile <stmt>`.  The inner statement is compiled
/// exactly once at parse time and the handle shared here (the variant
/// stays non-recursive — the indirection is through the shared_ptr), so
/// plan rendering and the PROFILE timed run reuse one parse.
/// EXPLAIN describes the access plan (index vs full scan per range
/// variable, pushed-down conjuncts, rules armed); PROFILE additionally
/// executes the statement and reports scan counters and latency.
struct ExplainStmt {
  bool profile = false;
  std::string query;  // inner statement source (inner->text when compiled)
  std::shared_ptr<const CompiledStatement> inner;
};

using Statement =
    std::variant<RetrieveStmt, AppendStmt, ReplaceStmt, DeleteStmt,
                 CreateTableStmt, CreateIndexStmt, DefineRuleStmt, DropRuleStmt,
                 DropTableStmt, ExplainStmt>;

/// Parses one statement.
Result<Statement> ParseStatement(std::string_view query);

/// Parses a standalone expression (used by rule conditions and tests).
Result<DbExprPtr> ParseDbExpression(std::string_view text);

}  // namespace caldb

#endif  // CALDB_DB_QUERY_H_
