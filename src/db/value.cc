#include "db/value.h"

#include <cmath>

#include "common/strings.h"

namespace caldb {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kFloat:
      return "float";
    case ValueType::kBool:
      return "bool";
    case ValueType::kText:
      return "text";
    case ValueType::kInterval:
      return "interval";
    case ValueType::kCalendar:
      return "calendar";
  }
  return "?";
}

Result<ValueType> ParseValueType(std::string_view name) {
  std::string lower = AsciiToLower(name);
  if (lower == "int" || lower == "int8" || lower == "integer") return ValueType::kInt;
  if (lower == "float" || lower == "float8" || lower == "double") return ValueType::kFloat;
  if (lower == "bool" || lower == "boolean") return ValueType::kBool;
  if (lower == "text" || lower == "string") return ValueType::kText;
  if (lower == "interval") return ValueType::kInterval;
  if (lower == "calendar") return ValueType::kCalendar;
  return Status::InvalidArgument("unknown column type '" + std::string(name) + "'");
}

ValueType Value::type() const {
  switch (payload_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kFloat;
    case 3:
      return ValueType::kBool;
    case 4:
      return ValueType::kText;
    case 5:
      return ValueType::kInterval;
    case 6:
      return ValueType::kCalendar;
  }
  return ValueType::kNull;
}

namespace {
Status TypeMismatch(ValueType want, ValueType got) {
  return Status::TypeError("expected " + std::string(ValueTypeName(want)) +
                           ", got " + std::string(ValueTypeName(got)));
}
}  // namespace

Result<int64_t> Value::AsInt() const {
  if (const int64_t* v = std::get_if<int64_t>(&payload_)) return *v;
  return TypeMismatch(ValueType::kInt, type());
}

Result<double> Value::AsFloat() const {
  if (const double* v = std::get_if<double>(&payload_)) return *v;
  if (const int64_t* v = std::get_if<int64_t>(&payload_)) {
    return static_cast<double>(*v);
  }
  return TypeMismatch(ValueType::kFloat, type());
}

Result<bool> Value::AsBool() const {
  if (const bool* v = std::get_if<bool>(&payload_)) return *v;
  return TypeMismatch(ValueType::kBool, type());
}

Result<std::string> Value::AsText() const {
  if (const std::string* v = std::get_if<std::string>(&payload_)) return *v;
  return TypeMismatch(ValueType::kText, type());
}

Result<Interval> Value::AsInterval() const {
  if (const Interval* v = std::get_if<Interval>(&payload_)) return *v;
  return TypeMismatch(ValueType::kInterval, type());
}

Result<Calendar> Value::AsCalendar() const {
  if (const Calendar* v = std::get_if<Calendar>(&payload_)) return *v;
  return TypeMismatch(ValueType::kCalendar, type());
}

Result<bool> Value::Truthy() const {
  if (is_null()) return false;
  if (const bool* v = std::get_if<bool>(&payload_)) return *v;
  return Status::TypeError("condition must be boolean, got " +
                           std::string(ValueTypeName(type())));
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(payload_));
    case ValueType::kFloat: {
      double v = std::get<double>(payload_);
      std::string s = std::to_string(v);
      return s;
    }
    case ValueType::kBool:
      return std::get<bool>(payload_) ? "true" : "false";
    case ValueType::kText:
      return "'" + std::get<std::string>(payload_) + "'";
    case ValueType::kInterval:
      return FormatInterval(std::get<Interval>(payload_));
    case ValueType::kCalendar:
      return std::get<Calendar>(payload_).ToString();
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) return a == b;
  // Numeric cross-type equality.
  if ((a == ValueType::kInt || a == ValueType::kFloat) &&
      (b == ValueType::kInt || b == ValueType::kFloat)) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      return std::get<int64_t>(payload_) == std::get<int64_t>(other.payload_);
    }
    return AsFloat().value() == other.AsFloat().value();
  }
  if (a != b) return false;
  return payload_ == other.payload_;
}

Result<int> Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if ((a == ValueType::kInt || a == ValueType::kFloat) &&
      (b == ValueType::kInt || b == ValueType::kFloat)) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      int64_t x = std::get<int64_t>(payload_);
      int64_t y = std::get<int64_t>(other.payload_);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = AsFloat().value();
    double y = other.AsFloat().value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) {
    return Status::TypeError("cannot compare " + std::string(ValueTypeName(a)) +
                             " with " + std::string(ValueTypeName(b)));
  }
  switch (a) {
    case ValueType::kText: {
      const std::string& x = std::get<std::string>(payload_);
      const std::string& y = std::get<std::string>(other.payload_);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kBool: {
      bool x = std::get<bool>(payload_);
      bool y = std::get<bool>(other.payload_);
      return x == y ? 0 : (x ? 1 : -1);
    }
    case ValueType::kInterval: {
      const Interval& x = std::get<Interval>(payload_);
      const Interval& y = std::get<Interval>(other.payload_);
      if (x.lo != y.lo) return x.lo < y.lo ? -1 : 1;
      if (x.hi != y.hi) return x.hi < y.hi ? -1 : 1;
      return 0;
    }
    default:
      return Status::TypeError("type " + std::string(ValueTypeName(a)) +
                               " is not orderable");
  }
}

}  // namespace caldb
