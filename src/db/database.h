// Database: tables + catalogs + query execution + the event-rule system
// ("On Event where Condition do Action", §4).

#ifndef CALDB_DB_DATABASE_H_
#define CALDB_DB_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/compiled_statement.h"
#include "db/function_registry.h"
#include "db/query.h"
#include "db/table.h"

namespace caldb {

class Database;

/// Query output: column names plus rows, or a DML summary.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected = 0;
  std::string message;

  /// Plain-text rendering for examples and debugging.
  std::string ToString() const;
};

/// An event rule.  Fires when `event` touches `table` and `where` (with
/// NEW and/or CURRENT bound) holds.  The action is either a query-language
/// command (re-executed with the same bindings) or a C++ callback.
struct EventRule {
  std::string name;
  DbEvent event = DbEvent::kAppend;
  std::string table;
  DbExprPtr where;      // may be null (always fire)
  std::string command;  // may be empty when callback is set
  /// The action command compiled at DefineRule time — firings execute this
  /// handle directly, never re-parsing `command` (and a command that does
  /// not parse is rejected at definition, not at first firing).
  CompiledStatementPtr compiled_command;
  std::function<Status(Database&, const EvalScope&)> callback;
};

// Thread safety: the Database itself is NOT internally locked.  Concurrent
// use goes through caldb::Engine (src/engine/engine.h), which serializes
// statements with a reader/writer lock — any number of concurrent
// retrieves, exclusive DDL/DML/rule firings.  Under that discipline the
// only members mutated on the shared (read) path are the scan counters,
// which are atomics below.  Direct construction is supported for
// single-threaded library use and tests; servers should embed an Engine.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  FunctionRegistry& registry() { return registry_; }
  const FunctionRegistry& registry() const { return registry_; }

  Status CreateTable(const std::string& name, Schema schema);
  /// Removes a table.  Refused while an event rule references it.
  Status DropTable(const std::string& name);
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> ListTables() const;

  /// Parses and executes one statement.  `ambient` supplies extra tuple
  /// bindings (NEW / CURRENT) when executing rule actions.
  Result<QueryResult> Execute(const std::string& query,
                              const EvalScope* ambient = nullptr);

  /// Compiles one statement into an immutable, shareable handle without
  /// executing it (db/compiled_statement.h).  A thin wrapper over
  /// CompileStatement; servers go through the Engine, whose shared
  /// StatementCache memoizes this per statement text.
  static Result<CompiledStatementPtr> Prepare(std::string_view query);

  /// Executes a previously compiled statement.  The parse-once entry
  /// point: repeated executions of one handle never touch the parser.
  /// Fails with InvalidArgument when `compiled` has placeholders and
  /// neither this call nor `ambient` supplies a bind list.
  Result<QueryResult> ExecuteCompiled(const CompiledStatement& compiled,
                                      const EvalScope* ambient = nullptr);
  /// Executes a compiled statement with positional parameters bound to
  /// its $n placeholders: params[0] binds $1, and so on.  The bind list
  /// is validated against the compiled signature (arity and inferred
  /// types, CheckParamList) before execution.  `params` must outlive the
  /// call; values are read in place, never copied into the handle — one
  /// compiled shape serves every binding concurrently.
  Result<QueryResult> ExecuteCompiled(const CompiledStatement& compiled,
                                      const ParamList& params,
                                      const EvalScope* ambient = nullptr);
  /// `text`, when provided, is the statement's source — it makes the
  /// slow-statement log line actionable for callers (the Engine) that
  /// parse themselves and skip Execute().
  Result<QueryResult> ExecuteParsed(const Statement& stmt,
                                    const EvalScope* ambient = nullptr,
                                    std::string_view text = {});

  /// Recovery entry point (src/storage/): re-executes one WAL statement
  /// record through the normal dispatch, skipping the slow-statement
  /// envelope — replay latency is recovery throughput, not user latency.
  /// Event rules fire exactly as they did originally; a statement that
  /// failed originally fails identically here (same state either way), so
  /// callers log and continue on error.
  Result<QueryResult> Replay(const std::string& statement);
  /// Replay of an already compiled record — the Engine's recovery path
  /// routes WAL statements through its StatementCache and hands the
  /// handles here, so replaying thousands of identical statement shapes
  /// parses each distinct shape once.
  Result<QueryResult> Replay(const CompiledStatement& compiled);
  /// Replay of a parameterized WAL record: one compiled shape, the bound
  /// values decoded from the record (storage/snapshot.h value codec).
  Result<QueryResult> Replay(const CompiledStatement& compiled,
                             const ParamList& params);

  /// Statements slower than this are logged ("db.slow_statement", warn)
  /// and counted in caldb.db.slow_statements.  Process-wide; initialized
  /// from CALDB_SLOW_STMT_MS (default 20ms); <= 0 disables.
  static void SetSlowStatementThresholdNs(int64_t ns);
  static int64_t SlowStatementThresholdNs();

  // --- event rules ----------------------------------------------------------

  Status DefineRule(EventRule rule);
  Status DropRule(const std::string& name);
  std::vector<std::string> ListRules() const;
  /// The armed rules, in definition order (the snapshot writer serializes
  /// them; storage/snapshot.h).
  const std::vector<EventRule>& event_rules() const { return rules_; }

  /// Whether any retrieve-event rule is armed.  An atomic read: the
  /// Engine uses it to classify retrieves (a retrieve that can fire rules
  /// must take the exclusive lock, since rule actions may write).
  bool HasRetrieveRules() const {
    return retrieve_rules_.load(std::memory_order_acquire) > 0;
  }

  /// Whether ANY event rule is armed, whatever its event.  An atomic
  /// read: the Engine's per-table lock path requires this to be false for
  /// DML — a firing's action may touch tables outside the statement's
  /// compiled footprint, so any armed rule forces the global exclusive
  /// fallback (engine/lock_manager.h).
  bool HasEventRules() const {
    return total_rules_.load(std::memory_order_acquire) > 0;
  }

  // --- instrumentation (used by benches) -------------------------------

  /// Thin per-database view of the scan counters; the same events also
  /// feed the process-wide registry ("caldb.db.*", docs/OBSERVABILITY.md).
  /// Counters are relaxed atomics internally (retrieves increment them
  /// under the Engine's shared lock); stats() returns a snapshot.
  struct Stats {
    int64_t rows_scanned = 0;
    int64_t index_scans = 0;
    int64_t full_scans = 0;
    int64_t rules_fired = 0;
  };
  Stats stats() const {
    Stats s;
    s.rows_scanned = stats_.rows_scanned.load(std::memory_order_relaxed);
    s.index_scans = stats_.index_scans.load(std::memory_order_relaxed);
    s.full_scans = stats_.full_scans.load(std::memory_order_relaxed);
    s.rules_fired = stats_.rules_fired.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    stats_.rows_scanned.store(0, std::memory_order_relaxed);
    stats_.index_scans.store(0, std::memory_order_relaxed);
    stats_.full_scans.store(0, std::memory_order_relaxed);
    stats_.rules_fired.store(0, std::memory_order_relaxed);
  }

 private:
  // The access path CollectMatches / the join enumerator would take for
  // (table, var, where): the indexed int column and key range, or nullopt
  // for a full scan.  Shared by execution and EXPLAIN so the explanation
  // can never drift from what actually runs.
  struct IndexChoice {
    std::string column;
    int64_t lo = 0;
    int64_t hi = 0;
  };
  static std::optional<IndexChoice> ChooseIndex(
      const Table& table, const std::string& var, const DbExpr* where,
      const std::vector<Value>* params = nullptr);

  // The dispatch body behind ExecuteParsed (which adds the slow-statement
  // timing envelope around it).
  Result<QueryResult> ExecuteParsedImpl(const Statement& stmt,
                                        const EvalScope* ambient);

  Result<QueryResult> ExecuteExplain(const ExplainStmt& stmt,
                                     const EvalScope* ambient);
  // Renders the access plan of a parsed statement ("EXPLAIN" body).
  Result<std::string> DescribePlan(const Statement& stmt) const;

  Result<QueryResult> ExecuteRetrieve(const RetrieveStmt& stmt,
                                      const EvalScope* ambient);
  Result<QueryResult> ExecuteAppend(const AppendStmt& stmt,
                                    const EvalScope* ambient);
  Result<QueryResult> ExecuteReplace(const ReplaceStmt& stmt,
                                     const EvalScope* ambient);
  Result<QueryResult> ExecuteDelete(const DeleteStmt& stmt,
                                    const EvalScope* ambient);

  // Collects (rowid, row) pairs of `table` matching `where` under range
  // variable `var`, using an index when the where clause permits.
  Status CollectMatches(Table* table, const std::string& var,
                        const DbExpr* where, const EvalScope* ambient,
                        std::vector<std::pair<RowId, Row>>* out);

  Status FireRules(DbEvent event, const std::string& table,
                   const Schema& schema, const Row* new_row,
                   const Row* current_row);

  EvalScope MakeScope(const EvalScope* ambient) const;

  struct AtomicStats {
    std::atomic<int64_t> rows_scanned{0};
    std::atomic<int64_t> index_scans{0};
    std::atomic<int64_t> full_scans{0};
    std::atomic<int64_t> rules_fired{0};
  };

  FunctionRegistry registry_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<EventRule> rules_;
  // Count of armed kRetrieve rules; see HasRetrieveRules().
  std::atomic<int> retrieve_rules_{0};
  // Count of all armed rules; see HasEventRules().
  std::atomic<int> total_rules_{0};
  AtomicStats stats_;
  // Cascade depth.  Only touched when a rule matching (event, table)
  // exists, which forces the statement onto the exclusive path.
  int fire_depth_ = 0;
  static constexpr int kMaxRuleDepth = 16;
};

}  // namespace caldb

#endif  // CALDB_DB_DATABASE_H_
