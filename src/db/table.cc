#include "db/table.h"

#include "common/macros.h"

namespace caldb {

Result<RowId> Table::Insert(Row row) {
  CALDB_RETURN_IF_ERROR(schema_.ValidateRow(row));
  RowId id = static_cast<RowId>(rows_.size());
  CALDB_RETURN_IF_ERROR(IndexInsert(id, row));
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  return id;
}

Status Table::Delete(RowId id) {
  if (!IsLive(id)) {
    return Status::NotFound("row " + std::to_string(id) + " is not live");
  }
  IndexErase(id, rows_[static_cast<size_t>(id)]);
  live_[static_cast<size_t>(id)] = false;
  --live_count_;
  return Status::OK();
}

Status Table::Update(RowId id, Row row) {
  if (!IsLive(id)) {
    return Status::NotFound("row " + std::to_string(id) + " is not live");
  }
  CALDB_RETURN_IF_ERROR(schema_.ValidateRow(row));
  IndexErase(id, rows_[static_cast<size_t>(id)]);
  CALDB_RETURN_IF_ERROR(IndexInsert(id, row));
  rows_[static_cast<size_t>(id)] = std::move(row);
  return Status::OK();
}

Result<Row> Table::Get(RowId id) const {
  if (!IsLive(id)) {
    return Status::NotFound("row " + std::to_string(id) + " is not live");
  }
  return rows_[static_cast<size_t>(id)];
}

bool Table::IsLive(RowId id) const {
  return id >= 0 && static_cast<size_t>(id) < rows_.size() &&
         live_[static_cast<size_t>(id)];
}

void Table::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!live_[i]) continue;
    if (!fn(static_cast<RowId>(i), rows_[i])) return;
  }
}

Status Table::CreateIndex(const std::string& column) {
  CALDB_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  if (schema_.columns()[col].type != ValueType::kInt) {
    return Status::InvalidArgument("index column '" + column +
                                   "' must have type int");
  }
  if (indexes_.count(column) > 0) {
    return Status::AlreadyExists("index on '" + column + "' already exists");
  }
  auto tree = std::make_unique<BPlusTree>();
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!live_[i]) continue;
    const Value& v = rows_[i][col];
    if (v.is_null()) continue;
    tree->Insert(v.AsInt().value(), static_cast<RowId>(i));
  }
  indexes_[column] = std::move(tree);
  return Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  return indexes_.count(column) > 0;
}

Status Table::IndexScan(const std::string& column, int64_t lo, int64_t hi,
                        const std::function<bool(RowId, const Row&)>& fn) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    return Status::NotFound("no index on column '" + column + "'");
  }
  it->second->ScanRange(lo, hi, [&](int64_t, int64_t rowid) {
    if (!IsLive(rowid)) return true;  // defensive; deletes unindex eagerly
    return fn(rowid, rows_[static_cast<size_t>(rowid)]);
  });
  return Status::OK();
}

Status Table::IndexInsert(RowId id, const Row& row) {
  for (auto& [column, tree] : indexes_) {
    CALDB_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
    const Value& v = row[col];
    if (v.is_null()) continue;
    CALDB_ASSIGN_OR_RETURN(int64_t key, v.AsInt());
    tree->Insert(key, id);
  }
  return Status::OK();
}

void Table::IndexErase(RowId id, const Row& row) {
  for (auto& [column, tree] : indexes_) {
    size_t col = schema_.IndexOf(column).value();
    const Value& v = row[col];
    if (v.is_null()) continue;
    tree->Erase(v.AsInt().value(), id);
  }
}

}  // namespace caldb
