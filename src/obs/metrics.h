// MetricRegistry: process-wide named counters, gauges and log-scale
// latency histograms.
//
// Design rules:
//  - The hot path is lock-free: Counter/Gauge/Histogram only touch
//    std::atomic with relaxed ordering.  The registry mutex is taken only
//    on first lookup of a name, so instrumentation sites cache the pointer
//    (typically in a function-local static).
//  - Instruments are never removed once registered; ResetAll() zeroes
//    values but keeps the objects, so cached pointers stay valid forever.
//  - Histograms bucket by powers of two (bucket i holds values whose bit
//    width is i), which gives <= 2x relative error on percentiles over the
//    full int64 range at a fixed 65-slot footprint — the classic HdrHistogram
//    trade squeezed down to what latency dashboards actually need.
//
// Naming scheme (see docs/OBSERVABILITY.md): dot-separated, lowercase,
// "caldb.<layer>.<what>[.<detail>]", e.g. "caldb.eval.gen_cache.hits".

#ifndef CALDB_OBS_METRICS_H_
#define CALDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace caldb::obs {

class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

  /// Set() that also tracks the high-water mark in `max_gauge`.
  void SetWithMax(int64_t v, Gauge* max_gauge) {
    Set(v);
    int64_t seen = max_gauge->value();
    while (v > seen &&
           !max_gauge->value_.compare_exchange_weak(
               seen, v, std::memory_order_relaxed, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative int64 samples (latencies in
/// nanoseconds, sizes, ...).  Bucket 0 holds zeros and negatives; bucket i
/// (1..64) holds values v with bit_width(v) == i, i.e. [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void Record(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Upper bound of the bucket holding the p-th percentile sample
  /// (p in [0,100]); 0 when empty.  Exact for same-bucket samples, <= 2x
  /// high otherwise.
  int64_t Percentile(double p) const;

  void Reset();

  /// Raw bucket counts (for export and tests).
  std::vector<int64_t> BucketCounts() const;

  /// Inclusive upper bound of bucket i.
  static int64_t BucketUpperBound(int i);

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Named instrument registry.  `Global()` is the process-wide instance;
/// separate instances are used by tests.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  /// Get-or-create.  Returned pointers are valid for the registry's
  /// lifetime (forever, for Global()).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Instrument names currently registered, sorted.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Human-readable dump: one "name value" line per instrument, sorted;
  /// histograms show count/mean/p50/p95/p99/max.
  std::string ExportText() const;

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{name:
  /// {"count":..,"sum":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..}}}.
  /// Emitted on a single line so a bench harness can append it to a
  /// BENCH_*.json log as-is.
  std::string ExportJson() const;

  /// Zeroes every instrument (objects stay registered; pointers stay valid).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace caldb::obs

#endif  // CALDB_OBS_METRICS_H_
