#include "obs/obs.h"

#include <cstdlib>

namespace caldb::obs {

namespace internal {

namespace {

bool InitialEnabled() {
  const char* off = std::getenv("CALDB_OBS_OFF");
  return off == nullptr || off[0] == '\0' || off[0] == '0';
}

}  // namespace

std::atomic<bool> g_enabled{InitialEnabled()};

}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
  Tracer::Global().set_enabled(on);
}

}  // namespace caldb::obs
