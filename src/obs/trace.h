// Tracer: RAII spans recorded into a fixed-size ring buffer.
//
// A Span captures (name, start/end ns on the steady clock, parent span,
// key/value attributes).  Nesting is tracked per thread: a span started
// while another is open on the same thread records that span as its
// parent.  Finished spans overwrite the oldest entries once the ring is
// full, so tracing is cheap enough to leave on: the cost of an enabled
// span is two clock reads plus one short critical section at destruction;
// a disabled tracer costs one relaxed atomic load.
//
// Spans are scope-bound (LIFO per thread), which RAII usage guarantees.
//
// Cross-thread propagation: a logical operation that hops threads (an
// ExecuteAsync statement crossing the pool boundary, a DBCRON firing on
// the daemon thread) stays one tree by capturing Tracer::CurrentContext()
// on the submitting thread and installing it on the executing thread with
// a ScopedTraceContext — which swaps the worker's thread-local span stack
// for one seeded with the captured parent, and restores the original on
// scope exit.  A default TraceContext{} isolates instead of propagating:
// the thread pool wraps every task in one so a worker never parents spans
// to whatever span happened to be open (or leaked) on that thread before.

#ifndef CALDB_OBS_TRACE_H_
#define CALDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace caldb::obs {

struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  uint32_t tid = 0;        // small per-process thread id (CurrentThreadId)
  std::string name;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  int64_t duration_ns() const { return end_ns - start_ns; }
};

/// A capturable reference to the innermost open span of some thread —
/// what crosses a thread boundary to keep one logical operation a single
/// span tree.  span_id 0 means "no parent" (adopting it isolates).
struct TraceContext {
  uint64_t span_id = 0;
};

/// RAII adoption of a TraceContext: swaps this thread's span stack for
/// one seeded with the context's span (empty for a null context), and
/// restores the previous stack — stale entries and all — on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::vector<uint64_t> saved_;
};

/// A small dense per-process thread id (1, 2, ...), stable for the
/// thread's lifetime.  Shared by spans, log lines and Chrome trace rows.
uint32_t CurrentThreadId();

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static Tracer& Global();

  explicit Tracer(size_t capacity = kDefaultCapacity);

  /// A live span.  Move-only; records itself into the tracer's ring on
  /// destruction (or End()).  Inactive spans (disabled tracer) are no-ops.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    void AddAttr(std::string_view key, std::string value);
    bool active() const { return tracer_ != nullptr; }
    uint64_t id() const { return record_.id; }

    /// Finishes the span early (idempotent).
    void End();

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    SpanRecord record_;
  };

  Span StartSpan(std::string_view name);

  /// The innermost open span on the calling thread (null context when
  /// none) — capture before handing work to another thread.
  static TraceContext CurrentContext();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Finished spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// Renders the most recent `limit` finished spans as an indented tree
  /// fragment: "name  123.4us  key=value ...".
  std::string ToString(size_t limit = 64) const;

  /// Renders the ring as Chrome/Perfetto trace-event JSON (one complete
  /// "X" event per finished span; span id/parent and attrs in args), in
  /// the format chrome://tracing and https://ui.perfetto.dev load
  /// directly.  The shell's `\trace save <path>` writes this to a file.
  std::string ExportChromeTrace() const;

  void Clear();

  size_t capacity() const { return capacity_; }
  /// Total spans finished since construction/Clear (>= ring occupancy).
  int64_t total_finished() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  void Finish(SpanRecord record);

  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> total_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // ring_[(start_ + i) % capacity_]
  size_t start_ = 0;
};

/// Nanoseconds on the monotonic clock (the time base of all spans and
/// latency histograms).
int64_t NowNs();

}  // namespace caldb::obs

#endif  // CALDB_OBS_TRACE_H_
