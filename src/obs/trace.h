// Tracer: RAII spans recorded into a fixed-size ring buffer.
//
// A Span captures (name, start/end ns on the steady clock, parent span,
// key/value attributes).  Nesting is tracked per thread: a span started
// while another is open on the same thread records that span as its
// parent.  Finished spans overwrite the oldest entries once the ring is
// full, so tracing is cheap enough to leave on: the cost of an enabled
// span is two clock reads plus one short critical section at destruction;
// a disabled tracer costs one relaxed atomic load.
//
// Spans are scope-bound (LIFO per thread), which RAII usage guarantees.

#ifndef CALDB_OBS_TRACE_H_
#define CALDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace caldb::obs {

struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  int64_t duration_ns() const { return end_ns - start_ns; }
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static Tracer& Global();

  explicit Tracer(size_t capacity = kDefaultCapacity);

  /// A live span.  Move-only; records itself into the tracer's ring on
  /// destruction (or End()).  Inactive spans (disabled tracer) are no-ops.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    void AddAttr(std::string_view key, std::string value);
    bool active() const { return tracer_ != nullptr; }
    uint64_t id() const { return record_.id; }

    /// Finishes the span early (idempotent).
    void End();

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    SpanRecord record_;
  };

  Span StartSpan(std::string_view name);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Finished spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// Renders the most recent `limit` finished spans as an indented tree
  /// fragment: "name  123.4us  key=value ...".
  std::string ToString(size_t limit = 64) const;

  void Clear();

  size_t capacity() const { return capacity_; }
  /// Total spans finished since construction/Clear (>= ring occupancy).
  int64_t total_finished() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  void Finish(SpanRecord record);

  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> total_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // ring_[(start_ + i) % capacity_]
  size_t start_ = 0;
};

/// Nanoseconds on the monotonic clock (the time base of all spans and
/// latency histograms).
int64_t NowNs();

}  // namespace caldb::obs

#endif  // CALDB_OBS_TRACE_H_
