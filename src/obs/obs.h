// Umbrella header for the observability layer: the global metric
// registry, the global tracer, the structured logger (obs/log.h), the
// rule-firing audit trail (obs/audit.h), the metrics snapshotter and
// dashboard renderer (obs/snapshot.h), the kill switch, and the scoped
// latency timer that instrumentation sites use.
//
// Typical instrumentation site:
//
//   #include "obs/obs.h"
//   ...
//   static obs::Counter* hits =
//       obs::Metrics().counter("caldb.eval.gen_cache.hits");
//   hits->Increment();
//
//   obs::ScopedLatency timer(
//       obs::Metrics().histogram("caldb.db.statement_ns"));
//   obs::Tracer::Span span = obs::Trace().StartSpan("db.execute");
//
// The function-local static caches the registry lookup, so steady-state
// cost is one relaxed atomic add.  `obs::SetEnabled(false)` turns off all
// timing work (clock reads, span recording); plain counters stay on —
// they are too cheap to gate and benches read them.

#ifndef CALDB_OBS_OBS_H_
#define CALDB_OBS_OBS_H_

#include <atomic>

#include "obs/audit.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace caldb::obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}

/// Global timing kill switch (also initialized from the CALDB_OBS_OFF
/// environment variable at startup).  Default: enabled.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool on);

/// The process-wide registry / tracer, by their short names.
inline MetricRegistry& Metrics() { return MetricRegistry::Global(); }
inline Tracer& Trace() { return Tracer::Global(); }

/// Records the scope's wall time (steady clock, ns) into a histogram.
/// No-op when `h` is null or observability is disabled.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* h)
      : h_(h), start_ns_(h != nullptr && Enabled() ? NowNs() : 0) {}
  ~ScopedLatency() {
    if (start_ns_ != 0) h_->Record(NowNs() - start_ns_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* h_;
  int64_t start_ns_;
};

/// StartSpan on the global tracer, gated on Enabled().
inline Tracer::Span StartSpan(std::string_view name) {
  if (!Enabled()) return Tracer::Span();
  return Trace().StartSpan(name);
}

}  // namespace caldb::obs

#endif  // CALDB_OBS_OBS_H_
