// Rule-firing audit trail: who fired what, when, triggered by which
// statement, and how it went.
//
// Every temporal-rule firing (DBCRON) and event-rule trigger (a
// statement's append/replace/delete/retrieve) appends one AuditRecord to
// a bounded ring.  Temporal records carry the scheduled firing point from
// RULE-TIME next to the virtual-clock day the rule actually fired — the
// two differ when a rule was declared after its window had been probed
// and DBCRON caught up late, exactly the case an operator needs to see.
// Event-rule records carry the triggering statement and session from the
// thread's LogContext instead.
//
// The trail is the queryable counterpart of the `caldb.cron.fires` /
// `caldb.db.rules_fired` counters: the shell's `\audit` renders the most
// recent records, Snapshot() hands them to tests and tools.  Like every
// obs ring it is bounded (oldest records overwritten) and thread-safe.

#ifndef CALDB_OBS_AUDIT_H_
#define CALDB_OBS_AUDIT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace caldb::obs {

struct AuditRecord {
  enum class Source { kDbCron, kStatement };
  enum class Outcome { kOk, kSuppressed, kError };

  int64_t seq = 0;  // assigned by the trail, monotonically increasing
  Source source = Source::kDbCron;
  Outcome outcome = Outcome::kOk;
  std::string rule;
  int64_t rule_id = 0;        // temporal-rule id; 0 for event rules
  int64_t scheduled_day = 0;  // RULE-TIME firing point (temporal rules)
  int64_t fired_day = 0;      // virtual-clock day at firing (0 = n/a)
  int64_t wall_us = 0;        // wall clock at firing (stamped by the trail)
  int64_t duration_ns = 0;    // condition + action execution time
  uint64_t session_id = 0;    // triggering session (0 = daemon / none)
  std::string trigger;        // "dbcron" or the triggering statement
  std::string error;          // outcome == kError

  /// One human-readable line (what `\audit` prints per record).
  std::string ToString() const;
  /// One JSON object (same field names as the struct).
  std::string ToJson() const;
};

class AuditTrail {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  static AuditTrail& Global();

  explicit AuditTrail(size_t capacity = kDefaultCapacity);
  AuditTrail(const AuditTrail&) = delete;
  AuditTrail& operator=(const AuditTrail&) = delete;

  /// Appends one record, stamping seq and wall_us.
  void Record(AuditRecord record);

  /// Ring contents, oldest first.
  std::vector<AuditRecord> Snapshot() const;

  /// The most recent `limit` records, oldest first, one line each.
  std::string ToString(size_t limit = 32) const;

  void Clear();

  size_t capacity() const { return capacity_; }
  /// Records appended since construction/Clear (>= ring occupancy).
  int64_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  std::atomic<int64_t> total_{0};
  int64_t next_seq_ = 1;  // guarded by mu_
  mutable std::mutex mu_;
  std::vector<AuditRecord> ring_;  // ring_[(start_ + i) % capacity_]
  size_t start_ = 0;
};

/// The process-wide trail, by its short name (mirrors Metrics()/Trace()).
inline AuditTrail& Audit() { return AuditTrail::Global(); }

}  // namespace caldb::obs

#endif  // CALDB_OBS_AUDIT_H_
