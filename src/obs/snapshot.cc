#include "obs/snapshot.h"

#include <algorithm>
#include <chrono>

#include "obs/json.h"

namespace caldb::obs {

namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

int64_t DeltaOf(const std::map<std::string, int64_t>& deltas,
                const std::string& name) {
  auto it = deltas.find(name);
  return it == deltas.end() ? 0 : it->second;
}

std::string FormatRate(int64_t delta, double interval_s) {
  const double rate = interval_s > 0 ? static_cast<double>(delta) / interval_s
                                     : 0.0;
  const int64_t tenths = static_cast<int64_t>(rate * 10 + 0.5);
  return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10);
}

std::string FormatUs(int64_t ns) {
  const int64_t tenths = ns / 100;
  return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10) +
         "us";
}

}  // namespace

CounterDeltas::CounterDeltas(MetricRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricRegistry::Global()) {}

std::map<std::string, int64_t> CounterDeltas::Step() {
  std::map<std::string, int64_t> deltas;
  for (const std::string& name : registry_->CounterNames()) {
    const int64_t value = registry_->counter(name)->value();
    // A counter reset between steps shows as the full new value, not a
    // negative delta.
    const int64_t prev = prev_[name];
    deltas[name] = value >= prev ? value - prev : value;
    prev_[name] = value;
  }
  return deltas;
}

std::string RenderDashboard(MetricRegistry& registry,
                            const std::map<std::string, int64_t>& deltas,
                            double interval_s) {
  std::string out = "caldb top — " + FormatRate(
                        static_cast<int64_t>(interval_s * 10), 10.0) +
                    "s interval\n";
  out += "  statements   " +
         FormatRate(DeltaOf(deltas, "caldb.engine.statements"), interval_s) +
         "/s engine, " +
         FormatRate(DeltaOf(deltas, "caldb.db.statements"), interval_s) +
         "/s db, " +
         FormatRate(DeltaOf(deltas, "caldb.engine.scripts"), interval_s) +
         "/s cal scripts\n";
  out += "  slow stmts   +" +
         std::to_string(DeltaOf(deltas, "caldb.db.slow_statements")) +
         " (total " +
         std::to_string(registry.counter("caldb.db.slow_statements")->value()) +
         ")\n";
  out += "  lock wait    p99 read " +
         FormatUs(registry.histogram("caldb.engine.lock_wait_ns.read")
                      ->Percentile(99)) +
         " / write " +
         FormatUs(registry.histogram("caldb.engine.lock_wait_ns.write")
                      ->Percentile(99)) +
         " (cumulative)\n";
  out += "  pool         depth " +
         std::to_string(
             registry.gauge("caldb.engine.pool.queue_depth")->value()) +
         " (max " +
         std::to_string(
             registry.gauge("caldb.engine.pool.queue_depth_max")->value()) +
         "), wait p99 " +
         FormatUs(
             registry.histogram("caldb.engine.pool.wait_ns")->Percentile(99)) +
         "\n";
  out += "  sessions     " +
         std::to_string(
             registry.gauge("caldb.engine.active_sessions")->value()) +
         " (max " +
         std::to_string(
             registry.gauge("caldb.engine.active_sessions_max")->value()) +
         ")\n";
  out += "  cron         +" + std::to_string(DeltaOf(deltas, "caldb.cron.fires")) +
         " fires (total " +
         std::to_string(registry.counter("caldb.cron.fires")->value()) +
         "), heap " +
         std::to_string(registry.gauge("caldb.cron.heap_depth")->value()) +
         ", advances +" +
         std::to_string(DeltaOf(deltas, "caldb.engine.cron.advances")) + "\n";
  out += "  rows scanned +" +
         std::to_string(DeltaOf(deltas, "caldb.db.rows_scanned")) +
         ", audit +" + std::to_string(DeltaOf(deltas, "caldb.audit.records")) +
         " records (" +
         std::to_string(registry.counter("caldb.audit.errors")->value()) +
         " errors total)\n";
  return out;
}

MetricsSnapshotter::MetricsSnapshotter(SnapshotterOptions opts)
    : opts_(std::move(opts)),
      deltas_(opts_.registry != nullptr ? opts_.registry
                                        : &MetricRegistry::Global()) {
  opts_.interval_ms = std::max(10, opts_.interval_ms);
  if (opts_.registry == nullptr) opts_.registry = &MetricRegistry::Global();
}

MetricsSnapshotter::~MetricsSnapshotter() { Stop(); }

Status MetricsSnapshotter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::OK();
  if (opts_.path.empty()) {
    return Status::InvalidArgument("metrics snapshotter needs a path");
  }
  sink_ = std::fopen(opts_.path.c_str(), "a");
  if (sink_ == nullptr) {
    return Status::InvalidArgument("cannot open metrics snapshot file '" +
                                   opts_.path + "'");
  }
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MetricsSnapshotter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
  running_ = false;
}

std::string MetricsSnapshotter::SnapshotLine() {
  const std::map<std::string, int64_t> deltas = deltas_.Step();
  MetricRegistry& registry = *opts_.registry;
  std::string out = "{\"ts_us\":" + std::to_string(WallMicros()) +
                    ",\"interval_ms\":" + std::to_string(opts_.interval_ms);
  out += ",\"counters_delta\":{";
  bool first = true;
  for (const auto& [name, delta] : deltas) {
    if (delta == 0) continue;
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(delta);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const std::string& name : registry.GaugeNames()) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(registry.gauge(name)->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram* h = registry.histogram(name);
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\":" + std::to_string(h->count()) +
           ",\"p50\":" + std::to_string(h->Percentile(50)) +
           ",\"p99\":" + std::to_string(h->Percentile(99)) +
           ",\"max\":" + std::to_string(h->max()) + "}";
  }
  out += "}}";
  return out;
}

void MetricsSnapshotter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(opts_.interval_ms),
        [this] { return stop_; });
    // One final snapshot on the way out so short-lived runs still leave a
    // trace of their last interval.
    lock.unlock();
    const std::string line = SnapshotLine();
    lock.lock();
    if (sink_ != nullptr) {
      std::fwrite(line.data(), 1, line.size(), sink_);
      std::fputc('\n', sink_);
      std::fflush(sink_);
    }
    snapshots_.fetch_add(1, std::memory_order_relaxed);
    if (stopping) return;
  }
}

}  // namespace caldb::obs
