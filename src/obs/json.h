// Minimal JSON emission helpers shared by every obs exporter (metric
// registry JSON, structured log lines, Chrome trace events, audit
// records, metrics snapshots).  Emission only — parsing lives in tests.
//
// All helpers append to an out-string; none allocate beyond it.  Strings
// are escaped per RFC 8259: quote, backslash, and the C0 control range
// (\b \f \n \r \t get their short forms, the rest \u00XX), so any byte
// sequence round-trips through a standards-compliant parser.

#ifndef CALDB_OBS_JSON_H_
#define CALDB_OBS_JSON_H_

#include <string>
#include <string_view>

namespace caldb::obs {

/// Appends the escaped body of `s` (no surrounding quotes).
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Appends `s` as a JSON string literal, quotes included.
void AppendJsonString(std::string* out, std::string_view s);

/// Appends `"key":` — a JSON object key plus its colon.
void AppendJsonKey(std::string* out, std::string_view key);

/// Appends `ns` nanoseconds as fractional microseconds with three decimal
/// places ("12.345") — the time unit of Chrome trace events.
void AppendJsonMicros(std::string* out, int64_t ns);

/// Appends a double with enough precision to round-trip, rendering
/// non-finite values as 0 (JSON has no NaN/Inf).
void AppendJsonDouble(std::string* out, double v);

}  // namespace caldb::obs

#endif  // CALDB_OBS_JSON_H_
