// Periodic metrics snapshots and the delta arithmetic behind the shell's
// `\top` dashboard.
//
// A MetricsSnapshotter is a background thread that every `interval_ms`
// appends one JSON line to a file:
//
//   {"ts_us":...,"interval_ms":1000,
//    "counters_delta":{"caldb.engine.statements":1234,...},   // since the
//    "gauges":{"caldb.engine.pool.queue_depth":0,...},        //   previous line
//    "histograms":{"caldb.engine.lock_wait_ns.write":
//                  {"count":12,"p50":63,"p99":4095,"max":3801}}}
//
// Counter values are reported as deltas (zero deltas omitted), so each
// line reads as "what happened in this interval" and a stalled system
// produces short lines.  Gauges are instantaneous; histogram quantiles
// are cumulative since start/reset (the bounded-memory trade: per-interval
// quantiles would need a second bucket array per histogram).
//
// The Engine starts one when EngineOptions::metrics_snapshot_path (or the
// CALDB_METRICS_FILE environment variable) is set.  CounterDeltas and
// RenderDashboard are the reusable pieces: the shell's `\top` steps a
// CounterDeltas at its refresh interval and renders a dashboard frame
// from the same numbers the snapshotter writes.

#ifndef CALDB_OBS_SNAPSHOT_H_
#define CALDB_OBS_SNAPSHOT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace caldb::obs {

/// Tracks counter values between calls.  Step() returns the per-name
/// increments since the previous Step (first call: since zero), including
/// names that first appeared in between.  Not thread-safe; each consumer
/// owns one.
class CounterDeltas {
 public:
  /// `registry` defaults to the global registry; must outlive this.
  explicit CounterDeltas(MetricRegistry* registry = nullptr);

  std::map<std::string, int64_t> Step();

 private:
  MetricRegistry* registry_;
  std::map<std::string, int64_t> prev_;
};

/// One `\top` frame: qps and rule/pool/lock/cron vitals computed from the
/// registry's current state and the last interval's counter deltas.
std::string RenderDashboard(MetricRegistry& registry,
                            const std::map<std::string, int64_t>& deltas,
                            double interval_s);

struct SnapshotterOptions {
  std::string path;          // file to append snapshot lines to
  int interval_ms = 1000;    // clamped to >= 10
  MetricRegistry* registry = nullptr;  // nullptr = the global registry
};

class MetricsSnapshotter {
 public:
  explicit MetricsSnapshotter(SnapshotterOptions opts);
  ~MetricsSnapshotter();  // Stop()s
  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Opens the sink and starts the thread.  Fails if the file cannot be
  /// opened; idempotent once running.
  Status Start();

  /// Takes a final snapshot, flushes and joins (idempotent).
  void Stop();

  /// Snapshot lines written so far.
  int64_t snapshots() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

  /// Builds one snapshot line (no newline) and advances the delta state —
  /// what the loop appends each interval.  Exposed for tests.
  std::string SnapshotLine();

 private:
  void Loop();

  SnapshotterOptions opts_;
  CounterDeltas deltas_;
  std::FILE* sink_ = nullptr;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::atomic<int64_t> snapshots_{0};
};

}  // namespace caldb::obs

#endif  // CALDB_OBS_SNAPSHOT_H_
