#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace caldb::obs {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  AppendJsonEscaped(out, s);
  *out += '"';
}

void AppendJsonKey(std::string* out, std::string_view key) {
  AppendJsonString(out, key);
  *out += ':';
}

void AppendJsonMicros(std::string* out, int64_t ns) {
  if (ns < 0) {
    *out += '-';
    ns = -ns;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), ".%03d", static_cast<int>(ns % 1000));
  *out += std::to_string(ns / 1000);
  *out += buf;
}

void AppendJsonDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += '0';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace caldb::obs
