#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/json.h"

namespace caldb::obs {

namespace {

// Open-span stack of the current thread (ids), for parent attribution.
thread_local std::vector<uint64_t> t_span_stack;

std::string FormatUs(int64_t ns) {
  // "123.4us" with one decimal.
  int64_t tenths = ns / 100;
  return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10) +
         "us";
}

}  // namespace

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local uint32_t tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceContext Tracer::CurrentContext() {
  return TraceContext{t_span_stack.empty() ? 0 : t_span_stack.back()};
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) {
  saved_.swap(t_span_stack);
  if (ctx.span_id != 0) t_span_stack.push_back(ctx.span_id);
}

ScopedTraceContext::~ScopedTraceContext() { t_span_stack.swap(saved_); }

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Span::AddAttr(std::string_view key, std::string value) {
  if (tracer_ == nullptr) return;
  record_.attrs.emplace_back(std::string(key), std::move(value));
}

void Tracer::Span::End() {
  if (tracer_ == nullptr) return;
  record_.end_ns = NowNs();
  if (!t_span_stack.empty() && t_span_stack.back() == record_.id) {
    t_span_stack.pop_back();
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->Finish(std::move(record_));
}

Tracer::Span Tracer::StartSpan(std::string_view name) {
  Span span;
  if (!enabled()) return span;
  span.tracer_ = this;
  span.record_.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.record_.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  span.record_.tid = CurrentThreadId();
  span.record_.name = std::string(name);
  span.record_.start_ns = NowNs();
  t_span_stack.push_back(span.record_.id);
  return span;
}

void Tracer::Finish(SpanRecord record) {
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[start_] = std::move(record);
    start_ = (start_ + 1) % capacity_;
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start_ + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::ToString(size_t limit) const {
  std::vector<SpanRecord> spans = Snapshot();
  if (spans.size() > limit) {
    spans.erase(spans.begin(),
                spans.begin() + static_cast<ptrdiff_t>(spans.size() - limit));
  }
  // The ring is ordered by finish time (children before parents); render
  // in start order so parents precede their children.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  // Indent children under parents still present in the window.
  std::map<uint64_t, int> depth;
  std::string out;
  for (const SpanRecord& s : spans) {
    int d = 0;
    auto parent = depth.find(s.parent_id);
    if (parent != depth.end()) d = parent->second + 1;
    depth[s.id] = d;
    out += std::string(static_cast<size_t>(d) * 2, ' ') + s.name + "  " +
           FormatUs(s.duration_ns());
    for (const auto& [key, value] : s.attrs) {
      out += "  " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

std::string Tracer::ExportChromeTrace() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"cat\":\"caldb\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(s.tid);
    out += ",\"ts\":";
    AppendJsonMicros(&out, s.start_ns);
    out += ",\"dur\":";
    AppendJsonMicros(&out, s.duration_ns());
    out += ",\"args\":{\"id\":" + std::to_string(s.id) +
           ",\"parent\":" + std::to_string(s.parent_id);
    for (const auto& [key, value] : s.attrs) {
      out += ',';
      AppendJsonKey(&out, key);
      AppendJsonString(&out, value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  start_ = 0;
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace caldb::obs
