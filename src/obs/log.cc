#include "obs/log.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace caldb::obs {

namespace {

thread_local LogContext t_log_context;

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

LogLevel LevelFromEnv() {
  const char* level = std::getenv("CALDB_LOG_LEVEL");
  if (level == nullptr) return LogLevel::kInfo;
  if (std::strcmp(level, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(level, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(level, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

Counter* LinesCounter() {
  static Counter* lines = MetricRegistry::Global().counter("caldb.log.lines");
  return lines;
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

LogField::LogField(std::string_view key, std::string_view value) : key_(key) {
  AppendJsonString(&json_value_, value);
}

LogField::LogField(std::string_view key, int64_t value)
    : key_(key), json_value_(std::to_string(value)) {}

LogField::LogField(std::string_view key, uint64_t value)
    : key_(key), json_value_(std::to_string(value)) {}

LogField::LogField(std::string_view key, double value) : key_(key) {
  AppendJsonDouble(&json_value_, value);
}

LogField::LogField(std::string_view key, bool value)
    : key_(key), json_value_(value ? "true" : "false") {}

std::string RenderLogLine(const LogRecord& record) {
  std::string out = "{\"ts_us\":" + std::to_string(record.wall_us);
  out += ",\"level\":\"";
  out += LogLevelName(record.level);
  out += "\",\"event\":";
  AppendJsonString(&out, record.event);
  out += ",\"tid\":" + std::to_string(record.tid);
  if (record.session_id != 0) {
    out += ",\"session\":" + std::to_string(record.session_id);
  }
  if (!record.statement.empty()) {
    out += ",\"stmt\":";
    AppendJsonString(&out, record.statement);
  }
  if (!record.fields_json.empty()) {
    out += ',';
    out += record.fields_json;
  }
  out += '}';
  return out;
}

const LogContext& CurrentLogContext() { return t_log_context; }

ScopedLogContext::ScopedLogContext(LogContext ctx)
    : saved_(std::move(t_log_context)) {
  t_log_context = std::move(ctx);
}

ScopedLogContext::~ScopedLogContext() { t_log_context = std::move(saved_); }

Logger& Logger::Global() {
  static Logger* logger = [] {
    Logger* instance = new Logger();
    instance->set_min_level(LevelFromEnv());
    const char* path = std::getenv("CALDB_LOG_FILE");
    if (path != nullptr && path[0] != '\0') {
      Status ignored = instance->SetSinkPath(path);
      (void)ignored;
    }
    return instance;
  }();
  return *logger;
}

Logger::Logger(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

Logger::~Logger() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
}

void Logger::Log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!ShouldLog(level)) return;
  LogRecord record;
  record.level = level;
  record.wall_us = WallMicros();
  record.tid = CurrentThreadId();
  record.session_id = t_log_context.session_id;
  record.statement = t_log_context.statement;
  record.event = std::string(event);
  for (const LogField& field : fields) {
    if (!record.fields_json.empty()) record.fields_json += ',';
    AppendJsonKey(&record.fields_json, field.key());
    record.fields_json += field.json_value();
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  LinesCounter()->Increment();
  // Render the sink line before taking the lock; the critical section is
  // a ring slot move plus one buffered fwrite.
  std::string line;
  if (sink_open_.load(std::memory_order_acquire)) {
    line = RenderLogLine(record) + "\n";
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
    } else {
      ring_[start_] = std::move(record);
      start_ = (start_ + 1) % capacity_;
    }
    if (sink_ != nullptr && !line.empty()) {
      std::fwrite(line.data(), 1, line.size(), sink_);
      if (level >= LogLevel::kWarn) std::fflush(sink_);
    }
  }
}

Status Logger::SetSinkPath(const std::string& path) {
  std::FILE* next = nullptr;
  if (!path.empty()) {
    next = std::fopen(path.c_str(), "a");
    if (next == nullptr) {
      return Status::InvalidArgument("cannot open log sink '" + path + "'");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
  sink_ = next;
  sink_open_.store(next != nullptr, std::memory_order_release);
  return Status::OK();
}

bool Logger::has_sink() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_ != nullptr;
}

void Logger::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) std::fflush(sink_);
}

std::vector<LogRecord> Logger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start_ + i) % ring_.size()]);
  }
  return out;
}

std::string Logger::Tail(size_t n) const {
  std::vector<LogRecord> records = Snapshot();
  size_t first = records.size() > n ? records.size() - n : 0;
  std::string out;
  for (size_t i = first; i < records.size(); ++i) {
    out += RenderLogLine(records[i]);
    out += '\n';
  }
  return out;
}

void Logger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  start_ = 0;
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace caldb::obs
