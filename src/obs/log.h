// Structured logger: leveled JSON-lines events with key/value fields.
//
// Every event renders as one single-line JSON object —
//
//   {"ts_us":1700000000123456,"level":"warn","event":"db.slow_statement",
//    "tid":3,"session":2,"stmt":"retrieve ...","duration_ms":41.2}
//
// — kept in a bounded in-memory ring (the shell's `\log`) and, when a
// file sink is configured (`CALDB_LOG_FILE` or SetSinkPath), appended to
// that file as it happens.  The design mirrors the tracer: the hot path
// is one relaxed atomic load when the level is below the threshold, and
// one short critical section (ring push + optional fwrite of a
// pre-rendered line) when it is not.  Rendering happens outside the lock.
//
// Context: a thread-local LogContext carries the current session id and
// statement text.  Engine/Session install it with ScopedLogContext, the
// thread pool propagates it across ExecuteAsync, and every log line (and
// audit record) stamps it — so a slow statement logged three frames deep
// still says which session and which statement caused it.
//
// Event names follow the span convention ("layer.what", no "caldb."
// prefix): db.slow_statement, rule.fire_error, engine.snapshotter, ...

#ifndef CALDB_OBS_LOG_H_
#define CALDB_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace caldb::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view LogLevelName(LogLevel level);

/// One key/value field.  The value is rendered to its final JSON form at
/// construction (escaped string literal, or a bare numeral/bool), so the
/// logger's critical section never formats anything.
class LogField {
 public:
  LogField(std::string_view key, std::string_view value);
  LogField(std::string_view key, const std::string& value)
      : LogField(key, std::string_view(value)) {}
  LogField(std::string_view key, const char* value)
      : LogField(key, std::string_view(value)) {}
  LogField(std::string_view key, int64_t value);
  LogField(std::string_view key, int value)
      : LogField(key, static_cast<int64_t>(value)) {}
  LogField(std::string_view key, uint64_t value);
  LogField(std::string_view key, double value);
  LogField(std::string_view key, bool value);

  const std::string& key() const { return key_; }
  /// The value as a complete JSON token.
  const std::string& json_value() const { return json_value_; }

 private:
  std::string key_;
  std::string json_value_;
};

/// A finished event as held in the ring.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  int64_t wall_us = 0;  // system clock, microseconds since the Unix epoch
  uint32_t tid = 0;
  uint64_t session_id = 0;  // 0 = no session context
  std::string statement;    // context statement, possibly empty
  std::string event;
  std::string fields_json;  // rendered `"k":v,...` body, no braces
};

/// Renders one record as its single-line JSON form (no trailing newline).
std::string RenderLogLine(const LogRecord& record);

/// Per-thread logging context; see the header comment.
struct LogContext {
  uint64_t session_id = 0;
  std::string statement;
};

/// The current thread's context (empty defaults when none installed).
const LogContext& CurrentLogContext();

/// RAII: installs `ctx` for the current thread, restoring the previous
/// context on destruction.  Cheap to nest (Engine overwrites only the
/// statement, keeping the session a Session installed a frame up).
class ScopedLogContext {
 public:
  explicit ScopedLogContext(LogContext ctx);
  ~ScopedLogContext();
  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;

 private:
  LogContext saved_;
};

class Logger {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  /// The process-wide logger.  Its file sink starts on the path in the
  /// CALDB_LOG_FILE environment variable (no sink when unset), and its
  /// minimum level from CALDB_LOG_LEVEL (debug|info|warn|error; default
  /// info).
  static Logger& Global();

  explicit Logger(size_t capacity = kDefaultCapacity);
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  /// The one-atomic-load gate callers may use to skip field construction.
  bool ShouldLog(LogLevel level) const { return level >= min_level(); }

  /// Records one event (no-op below the minimum level).  Stamps the
  /// wall clock, thread id and the thread's LogContext.
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields);

  /// Appends lines to `path` (creating it); an empty path closes the
  /// current sink.
  Status SetSinkPath(const std::string& path);
  bool has_sink() const;

  /// Flushes the file sink's buffered tail (info/debug lines are only
  /// fflushed at warn+ on the hot path).  Engine::Stop() calls this so a
  /// process exit right after Stop cannot drop buffered lines.  No-op
  /// without a sink.
  void Flush();

  /// Ring contents, oldest first.
  std::vector<LogRecord> Snapshot() const;

  /// The last `n` records rendered as JSON lines, oldest first, one per
  /// line with a trailing newline each.
  std::string Tail(size_t n) const;

  void Clear();

  size_t capacity() const { return capacity_; }
  /// Events recorded since construction/Clear (>= ring occupancy).
  int64_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<int64_t> total_{0};
  mutable std::mutex mu_;
  std::vector<LogRecord> ring_;  // ring_[(start_ + i) % capacity_]
  size_t start_ = 0;
  std::FILE* sink_ = nullptr;              // guarded by mu_
  std::atomic<bool> sink_open_{false};     // mirrors sink_ != nullptr
};

/// The process-wide logger, by its short name (mirrors Metrics()/Trace()).
inline Logger& Log() { return Logger::Global(); }

/// Convenience: log on the global logger.
inline void LogEvent(LogLevel level, std::string_view event,
                     std::initializer_list<LogField> fields) {
  Logger& log = Logger::Global();
  if (log.ShouldLog(level)) log.Log(level, event, fields);
}

}  // namespace caldb::obs

#endif  // CALDB_OBS_LOG_H_
