#include "obs/audit.h"

#include <algorithm>
#include <chrono>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace caldb::obs {

namespace {

struct AuditMetrics {
  Counter* records = MetricRegistry::Global().counter("caldb.audit.records");
  Counter* errors = MetricRegistry::Global().counter("caldb.audit.errors");
};

AuditMetrics& Metrics() {
  static AuditMetrics* m = new AuditMetrics();
  return *m;
}

const char* SourceName(AuditRecord::Source source) {
  return source == AuditRecord::Source::kDbCron ? "dbcron" : "statement";
}

const char* OutcomeName(AuditRecord::Outcome outcome) {
  switch (outcome) {
    case AuditRecord::Outcome::kOk:
      return "ok";
    case AuditRecord::Outcome::kSuppressed:
      return "suppressed";
    case AuditRecord::Outcome::kError:
      return "error";
  }
  return "ok";
}

}  // namespace

std::string AuditRecord::ToString() const {
  std::string out = "#" + std::to_string(seq) + " " + SourceName(source) +
                    " rule=" + rule;
  if (source == Source::kDbCron) {
    out += " fired=day" + std::to_string(fired_day) +
           " sched=day" + std::to_string(scheduled_day);
    const int64_t lag = fired_day - scheduled_day;
    if (lag != 0) out += " (late " + std::to_string(lag) + ")";
  }
  out += " ";
  out += OutcomeName(outcome);
  // Sub-microsecond firings render as 0.0ms; the trail is about outcomes
  // and lateness, histograms carry the precise latency story.
  const int64_t tenth_ms = duration_ns / 100000;
  out += " " + std::to_string(tenth_ms / 10) + "." +
         std::to_string(tenth_ms % 10) + "ms";
  if (session_id != 0) out += " session=" + std::to_string(session_id);
  if (!trigger.empty() && trigger != std::string(SourceName(source))) {
    out += " trigger=\"" + trigger + "\"";
  }
  if (!error.empty()) out += " error=\"" + error + "\"";
  return out;
}

std::string AuditRecord::ToJson() const {
  std::string out = "{\"seq\":" + std::to_string(seq);
  out += ",\"source\":\"";
  out += SourceName(source);
  out += "\",\"outcome\":\"";
  out += OutcomeName(outcome);
  out += "\",\"rule\":";
  AppendJsonString(&out, rule);
  if (rule_id != 0) out += ",\"rule_id\":" + std::to_string(rule_id);
  if (scheduled_day != 0) {
    out += ",\"scheduled_day\":" + std::to_string(scheduled_day);
  }
  if (fired_day != 0) out += ",\"fired_day\":" + std::to_string(fired_day);
  out += ",\"wall_us\":" + std::to_string(wall_us);
  out += ",\"duration_ns\":" + std::to_string(duration_ns);
  if (session_id != 0) out += ",\"session\":" + std::to_string(session_id);
  if (!trigger.empty()) {
    out += ",\"trigger\":";
    AppendJsonString(&out, trigger);
  }
  if (!error.empty()) {
    out += ",\"error\":";
    AppendJsonString(&out, error);
  }
  out += '}';
  return out;
}

AuditTrail& AuditTrail::Global() {
  static AuditTrail* trail = new AuditTrail();
  return *trail;
}

AuditTrail::AuditTrail(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void AuditTrail::Record(AuditRecord record) {
  record.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  Metrics().records->Increment();
  if (record.outcome == AuditRecord::Outcome::kError) {
    Metrics().errors->Increment();
    LogEvent(LogLevel::kError, "rule.fire_error",
             {{"rule", record.rule}, {"error", record.error}});
  } else {
    LogEvent(LogLevel::kDebug, "rule.fire",
             {{"rule", record.rule}, {"fired_day", record.fired_day}});
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[start_] = std::move(record);
    start_ = (start_ + 1) % capacity_;
  }
}

std::vector<AuditRecord> AuditTrail::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start_ + i) % ring_.size()]);
  }
  return out;
}

std::string AuditTrail::ToString(size_t limit) const {
  std::vector<AuditRecord> records = Snapshot();
  size_t first = records.size() > limit ? records.size() - limit : 0;
  std::string out;
  for (size_t i = first; i < records.size(); ++i) {
    out += records[i].ToString();
    out += '\n';
  }
  if (out.empty()) out = "(no rule firings recorded)\n";
  return out;
}

void AuditTrail::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  start_ = 0;
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace caldb::obs
