#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.h"

namespace caldb::obs {

namespace {

int BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  return std::bit_width(static_cast<uint64_t>(v));
}

}  // namespace

void Histogram::Record(int64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v,
                                                 std::memory_order_relaxed,
                                                 std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= 63) return INT64_MAX;
  return (int64_t{1} << i) - 1;
}

int64_t Histogram::Percentile(double p) const {
  // Snapshot the buckets first; concurrent Record()s may make the total
  // differ from count_, so rank against the snapshot's own total.
  int64_t counts[kBuckets];
  int64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the percentile sample (nearest-rank definition).
  int64_t rank = static_cast<int64_t>(std::ceil(p / 100.0 * total));
  rank = std::max<int64_t>(rank, 1);
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    out[static_cast<size_t>(i)] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::vector<std::string> MetricRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::string MetricRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += name + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " count=" + std::to_string(h->count()) +
           " mean=" + std::to_string(static_cast<int64_t>(h->mean())) +
           " p50=" + std::to_string(h->Percentile(50)) +
           " p95=" + std::to_string(h->Percentile(95)) +
           " p99=" + std::to_string(h->Percentile(99)) +
           " max=" + std::to_string(h->max()) + "\n";
  }
  return out;
}

std::string MetricRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) +
           ",\"mean\":" + std::to_string(h->mean()) +
           ",\"p50\":" + std::to_string(h->Percentile(50)) +
           ",\"p95\":" + std::to_string(h->Percentile(95)) +
           ",\"p99\":" + std::to_string(h->Percentile(99)) +
           ",\"max\":" + std::to_string(h->max()) + "}";
  }
  out += "}}";
  return out;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace caldb::obs
