#include "catalog/calendar_catalog.h"

#include "common/macros.h"
#include "common/strings.h"
#include "core/generate.h"
#include "lang/analyzer.h"
#include "lang/optimizer.h"
#include "lang/parser.h"
#include "lang/planner.h"
#include "obs/obs.h"

namespace caldb {

namespace {

bool IsBaseName(const std::string& name) {
  return ParseGranularity(name).ok();
}

// Registry instruments of the catalog layer.
struct CatalogMetrics {
  obs::Counter* defines = obs::Metrics().counter("caldb.catalog.defines");
  obs::Counter* eval_cache_hits =
      obs::Metrics().counter("caldb.catalog.eval_cache.hits");
  obs::Counter* eval_cache_misses =
      obs::Metrics().counter("caldb.catalog.eval_cache.misses");
  obs::Histogram* eval_ns = obs::Metrics().histogram("caldb.catalog.eval_ns");
};

CatalogMetrics& Metrics() {
  static CatalogMetrics* metrics = new CatalogMetrics();
  return *metrics;
}

}  // namespace

Status CalendarCatalog::CheckNameFreeLocked(const std::string& name) const {
  if (name.empty()) {
    return Status::InvalidArgument("calendar name must not be empty");
  }
  if (IsBaseName(name)) {
    return Status::AlreadyExists("'" + name + "' names a base calendar");
  }
  if (EqualsIgnoreCase(name, "today")) {
    return Status::AlreadyExists("'today' is reserved");
  }
  if (defs_.count(name) > 0) {
    return Status::AlreadyExists("calendar '" + name + "' already exists");
  }
  return Status::OK();
}

Status CalendarCatalog::DefineDerived(const std::string& name,
                                      const std::string& script_text,
                                      std::optional<Interval> lifespan_days) {
  obs::Tracer::Span span = obs::StartSpan("catalog.define");
  span.AddAttr("name", name);
  Metrics().defines->Increment();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    CALDB_RETURN_IF_ERROR(CheckNameFreeLocked(name));
  }
  // Compile outside the lock: analysis re-enters Resolve(), and plans can
  // take a while to build.  The name is re-checked before insertion.
  Result<Script> parsed = ParseScript(script_text);
  if (!parsed.ok()) {
    return parsed.status().WithContext("defining calendar '" + name + "'");
  }
  Script script = std::move(parsed).value();
  Analyzer analyzer(this);
  CALDB_RETURN_IF_ERROR(
      analyzer.AnalyzeScript(&script).WithContext("defining calendar '" + name +
                                                  "'"));
  CALDB_RETURN_IF_ERROR(OptimizeScript(&script));
  Result<Plan> plan = CompileScript(script);
  if (!plan.ok()) {
    return plan.status().WithContext("defining calendar '" + name + "'");
  }
  CalendarDef def;
  def.name = name;
  def.derivation_script = script_text;
  def.granularity = script.unit;
  def.parsed_script = std::make_shared<const Script>(std::move(script));
  def.eval_plan = std::make_shared<const Plan>(std::move(plan).value());
  def.lifespan_days = lifespan_days;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CALDB_RETURN_IF_ERROR(CheckNameFreeLocked(name));
    defs_[name] = std::move(def);
  }
  // Version bump before the clear: a racing miss that evaluated against
  // the pre-define catalog inserts under the old version, where no
  // post-define lookup can find it.
  version_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  eval_cache_.clear();
  return Status::OK();
}

Status CalendarCatalog::DefineValues(const std::string& name, Calendar values,
                                     std::optional<Interval> lifespan_days) {
  if (values.order() != 1) {
    return Status::InvalidArgument(
        "explicit calendar values must be an order-1 calendar");
  }
  CalendarDef def;
  def.name = name;
  def.granularity = values.granularity();
  def.values = std::move(values);
  def.lifespan_days = lifespan_days;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    CALDB_RETURN_IF_ERROR(CheckNameFreeLocked(name));
    defs_[name] = std::move(def);
  }
  // A new values calendar changes what derived plans referencing the name
  // evaluate to (the reference was dangling until now): same bump + clear
  // discipline as the other mutators.  Pre-PR-10 this path cleared
  // nothing, which left a Drop+DefineValues redefinition able to revive a
  // stale racing insert.
  version_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  eval_cache_.clear();
  return Status::OK();
}

Status CalendarCatalog::Drop(const std::string& name) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (defs_.erase(name) == 0) {
      return Status::NotFound("calendar '" + name + "' does not exist");
    }
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  eval_cache_.clear();
  return Status::OK();
}

bool CalendarCatalog::Contains(const std::string& name) const {
  if (IsBaseName(name)) return true;
  std::shared_lock<std::shared_mutex> lock(mu_);
  return defs_.count(name) > 0;
}

Result<CalendarDef> CalendarCatalog::Describe(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    return Status::NotFound("calendar '" + name + "' has no catalog row");
  }
  return it->second;
}

std::vector<std::string> CalendarCatalog::ListCalendars() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(defs_.size());
  for (const auto& [name, def] : defs_) names.push_back(name);
  return names;
}

Result<std::string> CalendarCatalog::FormatRow(const std::string& name) const {
  CALDB_ASSIGN_OR_RETURN(CalendarDef def, Describe(name));
  std::string out;
  out += "Name              | " + def.name + "\n";
  out += "Derivation-Script | " +
         (def.derivation_script.empty() ? "(none)" : def.derivation_script) +
         "\n";
  out += "Eval-Plan         | " +
         std::string(def.eval_plan ? "set of procedural statements" : "(none)") +
         "\n";
  std::string lifespan = "(-inf, inf)";
  if (def.lifespan_days.has_value()) {
    lifespan = "(" + FormatCivil(time_system_.CivilFromDayPoint(def.lifespan_days->lo)) +
               ", " +
               FormatCivil(time_system_.CivilFromDayPoint(def.lifespan_days->hi)) +
               ")";
  }
  out += "Lifespan          | " + lifespan + "\n";
  out += "Granularity       | " + std::string(GranularityName(def.granularity)) +
         "\n";
  out += "Values            | " +
         (def.values.has_value() ? def.values->ToString() : "") + "\n";
  return out;
}

Result<ResolvedCalendar> CalendarCatalog::Resolve(const std::string& name) const {
  Result<Granularity> base = ParseGranularity(name);
  if (base.ok()) {
    ResolvedCalendar resolved;
    resolved.kind = ResolvedCalendar::Kind::kBase;
    resolved.granularity = *base;
    return resolved;
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    return Status::NotFound("unknown calendar '" + name + "'");
  }
  // Copied out (shared_ptr script/plan, COW values), so the caller holds
  // no lock while it evaluates.
  const CalendarDef& def = it->second;
  ResolvedCalendar resolved;
  resolved.granularity = def.granularity;
  if (def.values.has_value()) {
    resolved.kind = ResolvedCalendar::Kind::kValues;
    resolved.values = *def.values;
  } else {
    resolved.kind = ResolvedCalendar::Kind::kDerived;
    resolved.script = def.parsed_script;
    resolved.plan = def.eval_plan;
  }
  return resolved;
}

Result<Calendar> CalendarCatalog::EvaluateCalendar(const std::string& name,
                                                   const EvalOptions& opts_in,
                                                   EvalStats* stats) const {
  // Capture the catalog version BEFORE resolving: everything read from
  // here on (the plan, the lifespan, the referenced calendars during the
  // unlocked evaluation) is at-or-after this version, so caching the
  // result under it can never mark stale content current.
  const uint64_t version_at_resolve = version();
  CALDB_ASSIGN_OR_RETURN(ResolvedCalendar resolved, Resolve(name));
  // A calendar has no values outside its lifespan: clamp the window.
  EvalOptions opts = opts_in;
  std::optional<Interval> lifespan;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto def = defs_.find(name);
    if (def != defs_.end()) lifespan = def->second.lifespan_days;
  }
  if (lifespan.has_value()) {
    std::optional<Interval> clamped = Intersect(opts.window_days, *lifespan);
    if (!clamped.has_value()) {
      return Calendar::Order1(resolved.granularity, {});
    }
    opts.window_days = *clamped;
  }
  switch (resolved.kind) {
    case ResolvedCalendar::Kind::kBase: {
      CALDB_ASSIGN_OR_RETURN(
          Interval window,
          ConvertDayWindow(time_system_, opts.window_days, resolved.granularity));
      return GenerateBaseCalendar(time_system_, resolved.granularity,
                                  resolved.granularity, window, /*clip=*/false);
    }
    case ResolvedCalendar::Kind::kValues: {
      CALDB_ASSIGN_OR_RETURN(
          Interval window,
          ConvertDayWindow(time_system_, opts.window_days, resolved.granularity));
      return ForEachInterval(resolved.values, ListOp::kOverlaps, window,
                             /*strict=*/false);
    }
    case ResolvedCalendar::Kind::kDerived: {
      // Keyed by the version captured at the top: if a Define*/Drop lands
      // mid-evaluation (bumping the version and clearing the cache), this
      // miss's insert files under the captured — now old — version,
      // unreachable by any post-mutation lookup.  Without the version key
      // a racing insert could land after the clear and serve stale
      // content to every later caller.
      auto key = std::make_tuple(name, version_at_resolve, opts.window_days.lo,
                                 opts.window_days.hi);
      {
        std::lock_guard<std::mutex> cache_lock(cache_mu_);
        auto cached = eval_cache_.find(key);
        if (cached != eval_cache_.end()) {
          Metrics().eval_cache_hits->Increment();
          return cached->second;  // a COW handle copy
        }
      }
      // Evaluate unlocked: two racing misses both compute the (identical)
      // value; the second insert overwrites the first.
      Metrics().eval_cache_misses->Increment();
      obs::ScopedLatency latency(Metrics().eval_ns);
      Evaluator evaluator(&time_system_, this);
      CALDB_ASSIGN_OR_RETURN(ScriptValue value,
                             evaluator.Run(*resolved.plan, opts, stats));
      if (value.kind == ScriptValue::Kind::kNull) {
        return Calendar::Order1(resolved.plan->unit, {});
      }
      if (value.kind != ScriptValue::Kind::kCalendar) {
        return Status::EvalError("calendar '" + name +
                                 "' evaluated to a non-calendar value");
      }
      {
        std::lock_guard<std::mutex> cache_lock(cache_mu_);
        eval_cache_[key] = value.calendar;
      }
      return value.calendar;
    }
  }
  return Status::Internal("unknown resolved-calendar kind");
}

Result<ScriptValue> CalendarCatalog::EvaluateScript(
    const std::string& script_text, const EvalOptions& opts,
    EvalStats* stats) const {
  CALDB_ASSIGN_OR_RETURN(Plan plan, CompileScriptText(script_text));
  Evaluator evaluator(&time_system_, this);
  return evaluator.Run(plan, opts, stats);
}

Result<Plan> CalendarCatalog::CompileScriptText(
    const std::string& script_text) const {
  CALDB_ASSIGN_OR_RETURN(Script script, ParseScript(script_text));
  Analyzer analyzer(this);
  CALDB_RETURN_IF_ERROR(analyzer.AnalyzeScript(&script));
  CALDB_RETURN_IF_ERROR(OptimizeScript(&script));
  return CompileScript(script);
}

namespace {

int CountScriptNodes(const std::vector<Stmt>& stmts) {
  int count = 0;
  for (const Stmt& stmt : stmts) {
    if (stmt.expr) count += CountExprNodes(*stmt.expr);
    count += CountScriptNodes(stmt.body);
    count += CountScriptNodes(stmt.else_body);
  }
  return count;
}

std::string FormatNsAsUs(int64_t ns) {
  int64_t tenths = ns / 100;
  return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10) +
         "us";
}

}  // namespace

Result<std::string> CalendarCatalog::ExplainScript(
    const std::string& script_text, const EvalOptions& opts_in) const {
  obs::Tracer::Span span = obs::StartSpan("catalog.explain");
  // The inline rewrite happens inside the analyzer; read it off the
  // registry as a delta around the phase.
  obs::Counter* inline_counter =
      obs::Metrics().counter("caldb.opt.rewrite.inline");

  int64_t t0 = obs::NowNs();
  CALDB_ASSIGN_OR_RETURN(Script script, ParseScript(script_text));
  int64_t t_parse = obs::NowNs();
  const int nodes_parsed = CountScriptNodes(script.stmts);

  const int64_t inlines_before = inline_counter->value();
  Analyzer analyzer(this);
  CALDB_RETURN_IF_ERROR(analyzer.AnalyzeScript(&script));
  int64_t t_analyze = obs::NowNs();
  const int64_t inlines = inline_counter->value() - inlines_before;

  OptimizeStats opt_stats;
  CALDB_RETURN_IF_ERROR(OptimizeScript(&script, &opt_stats));
  int64_t t_optimize = obs::NowNs();
  const int nodes_optimized = CountScriptNodes(script.stmts);

  CALDB_ASSIGN_OR_RETURN(Plan plan, CompileScript(script));
  int64_t t_plan = obs::NowNs();

  int pushdowns = 0;
  for (const PlanStep& step : plan.steps) {
    // Counting only top-level steps keeps this a property of this plan
    // (the registry counter is process-wide).
    if (step.hint.mode != WindowHint::Mode::kNone) ++pushdowns;
  }

  EvalOptions opts = opts_in;
  StepProfile profile;
  opts.profile = &profile;
  EvalStats stats;
  Evaluator evaluator(&time_system_, this);
  int64_t run0 = obs::NowNs();
  CALDB_ASSIGN_OR_RETURN(ScriptValue value, evaluator.Run(plan, opts, &stats));
  int64_t run_ns = obs::NowNs() - run0;

  std::string out = "EXPLAIN " + script_text + "\n";
  out += "compile: parse=" + FormatNsAsUs(t_parse - t0) +
         " analyze=" + FormatNsAsUs(t_analyze - t_parse) +
         " optimize=" + FormatNsAsUs(t_optimize - t_analyze) +
         " plan=" + FormatNsAsUs(t_plan - t_optimize) + "\n";
  out += "rewrites: inline=" + std::to_string(inlines) +
         " factorize=" + std::to_string(opt_stats.factorizations) +
         " pushdown=" + std::to_string(pushdowns) + " nodes " +
         std::to_string(nodes_parsed) + " -> " +
         std::to_string(nodes_optimized) + "\n";
  out += plan.ToString(&profile);
  out += "eval: steps=" + std::to_string(stats.steps_executed) +
         " generate_calls=" + std::to_string(stats.generate_calls) +
         " intervals_generated=" + std::to_string(stats.intervals_generated) +
         " gen_cache_hits=" + std::to_string(stats.cache_hits) +
         " time=" + FormatNsAsUs(run_ns) + "\n";
  switch (value.kind) {
    case ScriptValue::Kind::kCalendar:
      out += "result: calendar order=" + std::to_string(value.calendar.order()) +
             " intervals=" + std::to_string(value.calendar.TotalIntervals()) +
             "\n";
      break;
    case ScriptValue::Kind::kString:
      out += "result: \"" + value.text + "\"\n";
      break;
    case ScriptValue::Kind::kBlocked:
      out += "result: (blocked)\n";
      break;
    case ScriptValue::Kind::kNull:
      out += "result: (null)\n";
      break;
  }
  return out;
}

namespace {

// Earliest `unit` point > after covered by `cal` (granularity-converted),
// or nullopt.
Result<std::optional<TimePoint>> FirstPointAfter(const TimeSystem& ts,
                                                 const Calendar& cal,
                                                 TimePoint after,
                                                 Granularity unit) {
  // The min over all leaves is order-independent, so walk the shared flat
  // buffer directly (zero-copy) instead of materializing a flatten.
  std::optional<TimePoint> best;
  for (const Interval& i : cal.Leaves()) {
    CALDB_ASSIGN_OR_RETURN(Interval points,
                           IntervalToUnit(ts, cal.granularity(), i, unit));
    if (points.hi <= after) continue;
    TimePoint candidate = points.lo > after ? points.lo : PointAdd(after, 1);
    if (!best.has_value() || candidate < *best) best = candidate;
  }
  return best;
}

}  // namespace

Result<std::optional<TimePoint>> CalendarCatalog::NextFireDay(
    const std::string& name, TimePoint after_day, TimePoint limit_day) const {
  CALDB_ASSIGN_OR_RETURN(ResolvedCalendar resolved, Resolve(name));
  (void)resolved;
  // Search in year-aligned windows of doubling width.
  int32_t start_year =
      time_system_.CivilFromDayPoint(PointAdd(after_day, 1)).year;
  int32_t limit_year = time_system_.CivilFromDayPoint(limit_day).year;
  for (int32_t span = 1;; span *= 2) {
    int32_t end_year = std::min<int32_t>(start_year + span - 1, limit_year);
    CALDB_ASSIGN_OR_RETURN(Interval window, YearWindow(start_year, end_year));
    EvalOptions opts;
    opts.window_days = window;
    opts.today_day = PointAdd(after_day, 1);
    CALDB_ASSIGN_OR_RETURN(Calendar cal, EvaluateCalendar(name, opts));
    CALDB_ASSIGN_OR_RETURN(
        std::optional<TimePoint> hit,
        FirstPointAfter(time_system_, cal, after_day, Granularity::kDays));
    if (hit.has_value() && *hit <= limit_day) return hit;
    if (end_year >= limit_year) return std::optional<TimePoint>(std::nullopt);
  }
}

Result<std::optional<TimePoint>> CalendarCatalog::NextFireDayForPlan(
    const Plan& plan, TimePoint after_day, TimePoint limit_day) const {
  return NextFirePointForPlan(plan, after_day, limit_day, Granularity::kDays);
}

Result<std::optional<TimePoint>> CalendarCatalog::NextFirePointForPlan(
    const Plan& plan, TimePoint after_point, TimePoint limit_point,
    Granularity unit) const {
  // Convert unit points to a day anchor for the year-aligned search
  // windows.
  CALDB_ASSIGN_OR_RETURN(
      Interval after_days,
      IntervalToUnit(time_system_, unit, PointInterval(after_point),
                     Granularity::kDays));
  CALDB_ASSIGN_OR_RETURN(
      Interval limit_days,
      IntervalToUnit(time_system_, unit, PointInterval(limit_point),
                     Granularity::kDays));
  int32_t start_year =
      time_system_.CivilFromDayPoint(after_days.lo).year;
  int32_t limit_year = time_system_.CivilFromDayPoint(limit_days.hi).year;
  Evaluator evaluator(&time_system_, this);
  for (int32_t span = 1;; span *= 2) {
    int32_t end_year = std::min<int32_t>(start_year + span - 1, limit_year);
    CALDB_ASSIGN_OR_RETURN(Interval window, YearWindow(start_year, end_year));
    EvalOptions opts;
    opts.window_days = window;
    opts.today_day = after_days.lo;
    CALDB_ASSIGN_OR_RETURN(ScriptValue value, evaluator.Run(plan, opts));
    if (value.kind == ScriptValue::Kind::kCalendar) {
      CALDB_ASSIGN_OR_RETURN(
          std::optional<TimePoint> hit,
          FirstPointAfter(time_system_, value.calendar, after_point, unit));
      if (hit.has_value() && *hit <= limit_point) return hit;
    }
    if (end_year >= limit_year) return std::optional<TimePoint>(std::nullopt);
  }
}

Result<Interval> CalendarCatalog::YearWindow(int32_t first_year,
                                             int32_t last_year) const {
  if (last_year < first_year) {
    return Status::InvalidArgument("year window end precedes start");
  }
  return time_system_.DayIntervalFromCivil(CivilDate{first_year, 1, 1},
                                           CivilDate{last_year, 12, 31});
}

}  // namespace caldb
