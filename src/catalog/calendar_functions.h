// Registers the calendar operators with a Database's function registry —
// the paper's integration story (§5): "The calendar expression parser,
// procedures to generate calendars and procedures to evaluate calendar
// expressions are declared as operators to the extensible DBMS.  Once
// declared to the DBMS, they can be used as part of the query language."
//
// Registered functions (usable in retrieve/where clauses):
//   cal_contains(name, day)      -> bool: day point inside the calendar
//   cal_next(name, day)          -> int:  first calendar day after `day`
//   cal_eval(script)             -> calendar: evaluate an expression
//   cal_span(calendar)           -> interval covering the calendar
//   cal_count(calendar)          -> int: number of intervals
//   interval_lo(i), interval_hi(i) -> int
//   make_interval(lo, hi)        -> interval
//   overlaps(i, j), during(i, j), meets(i, j), before(i, j) -> bool
//   day_of_week(day)             -> int (Monday = 1 .. Sunday = 7)
//   date_to_day('YYYY-MM-DD')    -> int day point
//   day_to_date(day)             -> text 'YYYY-MM-DD'

#ifndef CALDB_CATALOG_CALENDAR_FUNCTIONS_H_
#define CALDB_CATALOG_CALENDAR_FUNCTIONS_H_

#include "catalog/calendar_catalog.h"
#include "db/database.h"

namespace caldb {

/// `catalog` must outlive `db`.  Evaluation windows for named calendars
/// default to the calendar's lifespan, falling back to +-`default_window`
/// days around the probed point.
Status RegisterCalendarFunctions(Database* db, const CalendarCatalog* catalog,
                                 int64_t default_window_days = 800);

}  // namespace caldb

#endif  // CALDB_CATALOG_CALENDAR_FUNCTIONS_H_
