// Textual persistence for the CALENDARS catalog: dump every user-defined
// calendar (derivation scripts and explicit values) to a text form, and
// restore it — the durable half of the paper's catalog table.

#ifndef CALDB_CATALOG_CATALOG_IO_H_
#define CALDB_CATALOG_CATALOG_IO_H_

#include <string>

#include "catalog/calendar_catalog.h"

namespace caldb {

/// Serializes the catalog (epoch + all user calendars).  Derived calendars
/// are written after the calendars their scripts reference, so a restore
/// replays cleanly.
Result<std::string> DumpCatalog(const CalendarCatalog& catalog);

/// Restores calendars from a dump into `catalog`, whose time-system epoch
/// must match the dump's (time points are epoch-relative).  Existing
/// calendars with clashing names cause AlreadyExists.
Status RestoreCatalog(const std::string& dump, CalendarCatalog* catalog);

/// Convenience: builds a fresh catalog from a dump.  Returned by pointer:
/// the catalog owns internal locks and is neither movable nor copyable.
Result<std::unique_ptr<CalendarCatalog>> LoadCatalog(const std::string& dump);

}  // namespace caldb

#endif  // CALDB_CATALOG_CATALOG_IO_H_
