#include "catalog/catalog_io.h"

#include <functional>
#include <map>
#include <set>

#include "common/macros.h"
#include "common/strings.h"
#include "lang/parser.h"

namespace caldb {

namespace {

constexpr char kHeader[] = "# caldb catalog dump v1";
constexpr char kScriptBegin[] = "<<<SCRIPT";
constexpr char kScriptEnd[] = "SCRIPT>>>";

// Calendar names referenced by a (raw, unanalyzed) script, restricted to
// names the catalog defines — the reload dependencies.
void CollectIdents(const Expr& e, std::set<std::string>* out) {
  if (e.kind == Expr::Kind::kIdent) out->insert(e.name);
  if (e.lhs) CollectIdents(*e.lhs, out);
  if (e.rhs) CollectIdents(*e.rhs, out);
  if (e.child) CollectIdents(*e.child, out);
  for (const ExprPtr& a : e.args) CollectIdents(*a, out);
}

void CollectIdents(const std::vector<Stmt>& body, std::set<std::string>* out) {
  for (const Stmt& stmt : body) {
    if (stmt.expr) CollectIdents(*stmt.expr, out);
    CollectIdents(stmt.body, out);
    CollectIdents(stmt.else_body, out);
  }
}

std::string LifespanToString(const std::optional<Interval>& lifespan) {
  if (!lifespan.has_value()) return "none";
  return std::to_string(lifespan->lo) + "," + std::to_string(lifespan->hi);
}

Result<std::optional<Interval>> ParseLifespan(std::string_view text) {
  if (text == "none") return std::optional<Interval>(std::nullopt);
  std::vector<std::string_view> parts = StrSplit(text, ',');
  if (parts.size() != 2) {
    return Status::ParseError("bad lifespan '" + std::string(text) + "'");
  }
  CALDB_ASSIGN_OR_RETURN(int64_t lo, ParseInt64(parts[0]));
  CALDB_ASSIGN_OR_RETURN(int64_t hi, ParseInt64(parts[1]));
  CALDB_ASSIGN_OR_RETURN(Interval i, MakeInterval(lo, hi));
  return std::optional<Interval>(i);
}

}  // namespace

Result<std::string> DumpCatalog(const CalendarCatalog& catalog) {
  std::string out;
  out += kHeader;
  out += "\nepoch ";
  out += FormatCivil(catalog.time_system().epoch());
  out += "\n";

  // Topologically order: a derived calendar follows everything its raw
  // script references.
  std::vector<std::string> names = catalog.ListCalendars();
  std::set<std::string> defined(names.begin(), names.end());
  std::map<std::string, std::set<std::string>> deps;
  for (const std::string& name : names) {
    CALDB_ASSIGN_OR_RETURN(CalendarDef def, catalog.Describe(name));
    std::set<std::string> refs;
    if (!def.derivation_script.empty()) {
      CALDB_ASSIGN_OR_RETURN(Script raw, ParseScript(def.derivation_script));
      std::set<std::string> idents;
      CollectIdents(raw.stmts, &idents);
      for (const std::string& ident : idents) {
        if (ident != name && defined.count(ident) > 0) refs.insert(ident);
      }
    }
    deps[name] = std::move(refs);
  }
  std::vector<std::string> ordered;
  std::set<std::string> emitted;
  std::set<std::string> visiting;
  std::function<Status(const std::string&)> visit =
      [&](const std::string& name) -> Status {
    if (emitted.count(name) > 0) return Status::OK();
    if (!visiting.insert(name).second) {
      return Status::Internal("cyclic catalog dependency at '" + name + "'");
    }
    for (const std::string& dep : deps[name]) {
      CALDB_RETURN_IF_ERROR(visit(dep));
    }
    visiting.erase(name);
    emitted.insert(name);
    ordered.push_back(name);
    return Status::OK();
  };
  for (const std::string& name : names) {
    CALDB_RETURN_IF_ERROR(visit(name));
  }

  for (const std::string& name : ordered) {
    CALDB_ASSIGN_OR_RETURN(CalendarDef def, catalog.Describe(name));
    if (def.values.has_value()) {
      out += "calendar " + name + " values lifespan=" +
             LifespanToString(def.lifespan_days) + "\n";
      out += std::string(GranularityName(def.values->granularity())) +
             def.values->ToString() + "\n";
    } else {
      out += "calendar " + name + " derived lifespan=" +
             LifespanToString(def.lifespan_days) + "\n";
      out += kScriptBegin;
      out += "\n";
      out += def.derivation_script;
      out += "\n";
      out += kScriptEnd;
      out += "\n";
    }
  }
  return out;
}

Status RestoreCatalog(const std::string& dump, CalendarCatalog* catalog) {
  std::vector<std::string_view> lines = StrSplit(dump, '\n');
  size_t i = 0;
  auto next_line = [&]() -> std::optional<std::string_view> {
    while (i < lines.size()) {
      std::string_view line = TrimWhitespace(lines[i]);
      ++i;
      if (line.empty() || line[0] == '#') continue;
      return line;
    }
    return std::nullopt;
  };

  std::optional<std::string_view> epoch_line = next_line();
  if (!epoch_line.has_value() || epoch_line->substr(0, 6) != "epoch ") {
    return Status::ParseError("catalog dump must start with an 'epoch' line");
  }
  CALDB_ASSIGN_OR_RETURN(CivilDate epoch,
                         ParseCivil(TrimWhitespace(epoch_line->substr(6))));
  if (!(epoch == catalog->time_system().epoch())) {
    return Status::InvalidArgument(
        "dump epoch " + FormatCivil(epoch) + " does not match catalog epoch " +
        FormatCivil(catalog->time_system().epoch()));
  }

  while (true) {
    std::optional<std::string_view> line = next_line();
    if (!line.has_value()) break;
    std::vector<std::string_view> fields = StrSplit(*line, ' ');
    if (fields.size() != 4 || fields[0] != "calendar" ||
        fields[3].substr(0, 9) != "lifespan=") {
      return Status::ParseError("bad calendar header line: '" +
                                std::string(*line) + "'");
    }
    std::string name(fields[1]);
    CALDB_ASSIGN_OR_RETURN(std::optional<Interval> lifespan,
                           ParseLifespan(fields[3].substr(9)));
    if (fields[2] == "values") {
      std::optional<std::string_view> payload = next_line();
      if (!payload.has_value()) {
        return Status::ParseError("missing values for calendar '" + name + "'");
      }
      // The payload is a granularity-tagged literal, e.g. DAYS{(1,2)}.
      CALDB_ASSIGN_OR_RETURN(ExprPtr literal,
                             ParseExpression(std::string(*payload)));
      if (literal->kind != Expr::Kind::kLiteral) {
        return Status::ParseError("values of '" + name +
                                  "' are not an interval-list literal");
      }
      CALDB_RETURN_IF_ERROR(
          catalog->DefineValues(name, literal->literal, lifespan));
    } else if (fields[2] == "derived") {
      // Raw lines (no trimming) between the script markers.
      if (i >= lines.size() || TrimWhitespace(lines[i]) != kScriptBegin) {
        return Status::ParseError("missing script block for '" + name + "'");
      }
      ++i;
      std::string script;
      bool closed = false;
      while (i < lines.size()) {
        if (TrimWhitespace(lines[i]) == kScriptEnd) {
          ++i;
          closed = true;
          break;
        }
        script += std::string(lines[i]);
        script += "\n";
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated script block for '" + name +
                                  "'");
      }
      CALDB_RETURN_IF_ERROR(catalog->DefineDerived(
          name, std::string(TrimWhitespace(script)), lifespan));
    } else {
      return Status::ParseError("unknown calendar kind '" +
                                std::string(fields[2]) + "'");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<CalendarCatalog>> LoadCatalog(const std::string& dump) {
  // Peek the epoch to construct the catalog.
  for (std::string_view line : StrSplit(dump, '\n')) {
    line = TrimWhitespace(line);
    if (line.empty() || line[0] == '#') continue;
    if (line.substr(0, 6) != "epoch ") break;
    CALDB_ASSIGN_OR_RETURN(CivilDate epoch,
                           ParseCivil(TrimWhitespace(line.substr(6))));
    auto catalog = std::make_unique<CalendarCatalog>(TimeSystem{epoch});
    CALDB_RETURN_IF_ERROR(RestoreCatalog(dump, catalog.get()));
    return catalog;
  }
  return Status::ParseError("catalog dump must start with an 'epoch' line");
}

}  // namespace caldb
