#include "catalog/calendar_functions.h"

#include "common/macros.h"
#include "core/generate.h"

namespace caldb {

namespace {

// The evaluation window for probing a named calendar near `day`.
EvalOptions WindowAround(const CalendarCatalog& catalog,
                         const std::string& name, TimePoint day,
                         int64_t default_window_days) {
  EvalOptions opts;
  Result<CalendarDef> def = catalog.Describe(name);
  if (def.ok() && def->lifespan_days.has_value()) {
    opts.window_days = *def->lifespan_days;
  } else {
    opts.window_days = Interval{PointAdd(day, -default_window_days),
                                PointAdd(day, default_window_days)};
  }
  opts.today_day = day;
  return opts;
}

}  // namespace

Status RegisterCalendarFunctions(Database* db, const CalendarCatalog* catalog,
                                 int64_t default_window_days) {
  FunctionRegistry& registry = db->registry();

  CALDB_RETURN_IF_ERROR(registry.Register(
      "cal_contains", 2, 2,
      [catalog, default_window_days](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(std::string name, args[0].AsText());
        CALDB_ASSIGN_OR_RETURN(int64_t day, args[1].AsInt());
        if (!IsValidPoint(day)) {
          return Status::InvalidArgument("0 is not a valid time point");
        }
        EvalOptions opts = WindowAround(*catalog, name, day, default_window_days);
        CALDB_ASSIGN_OR_RETURN(Calendar cal, catalog->EvaluateCalendar(name, opts));
        // Convert the day to the calendar's granularity before probing.
        Granularity g = cal.granularity();
        TimePoint probe = day;
        if (g != Granularity::kDays) {
          if (FinerThan(Granularity::kDays, g)) {
            CALDB_ASSIGN_OR_RETURN(
                probe, catalog->time_system().GranuleContaining(
                           g, day, Granularity::kDays));
          } else {
            CALDB_ASSIGN_OR_RETURN(
                Interval r, catalog->time_system().GranuleToUnit(
                                Granularity::kDays, day, g));
            probe = r.lo;
          }
        }
        return Value::Bool(cal.ContainsPoint(probe));
      }));

  CALDB_RETURN_IF_ERROR(registry.Register(
      "cal_next", 2, 2,
      [catalog](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(std::string name, args[0].AsText());
        CALDB_ASSIGN_OR_RETURN(int64_t day, args[1].AsInt());
        CALDB_ASSIGN_OR_RETURN(
            std::optional<TimePoint> next,
            catalog->NextFireDay(name, day, PointAdd(day, 3700)));
        if (!next.has_value()) return Value::Null();
        return Value::Int(*next);
      }));

  CALDB_RETURN_IF_ERROR(registry.Register(
      "cal_eval", 1, 3,
      [catalog](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(std::string script, args[0].AsText());
        EvalOptions opts;
        if (args.size() == 3) {
          CALDB_ASSIGN_OR_RETURN(int64_t lo, args[1].AsInt());
          CALDB_ASSIGN_OR_RETURN(int64_t hi, args[2].AsInt());
          CALDB_ASSIGN_OR_RETURN(opts.window_days, MakeInterval(lo, hi));
        }
        CALDB_ASSIGN_OR_RETURN(ScriptValue value,
                               catalog->EvaluateScript(script, opts));
        if (value.kind != ScriptValue::Kind::kCalendar) {
          return Status::EvalError("cal_eval script did not return a calendar");
        }
        return Value::Of(std::move(value.calendar));
      }));

  CALDB_RETURN_IF_ERROR(registry.Register(
      "cal_span", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(Calendar cal, args[0].AsCalendar());
        std::optional<Interval> span = cal.Span();
        if (!span.has_value()) return Value::Null();
        return Value::Of(*span);
      }));

  CALDB_RETURN_IF_ERROR(registry.Register(
      "cal_count", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(Calendar cal, args[0].AsCalendar());
        return Value::Int(cal.TotalIntervals());
      }));

  CALDB_RETURN_IF_ERROR(registry.Register(
      "interval_lo", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(Interval i, args[0].AsInterval());
        return Value::Int(i.lo);
      }));
  CALDB_RETURN_IF_ERROR(registry.Register(
      "interval_hi", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(Interval i, args[0].AsInterval());
        return Value::Int(i.hi);
      }));
  CALDB_RETURN_IF_ERROR(registry.Register(
      "make_interval", 2, 2,
      [](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(int64_t lo, args[0].AsInt());
        CALDB_ASSIGN_OR_RETURN(int64_t hi, args[1].AsInt());
        CALDB_ASSIGN_OR_RETURN(Interval i, MakeInterval(lo, hi));
        return Value::Of(i);
      }));

  // The listops, as boolean operators over interval values.
  struct ListOpFn {
    const char* name;
    ListOp op;
  };
  for (const ListOpFn& entry :
       {ListOpFn{"overlaps", ListOp::kOverlaps}, ListOpFn{"during", ListOp::kDuring},
        ListOpFn{"meets", ListOp::kMeets}, ListOpFn{"before", ListOp::kBefore}}) {
    ListOp op = entry.op;
    CALDB_RETURN_IF_ERROR(registry.Register(
        entry.name, 2, 2,
        [op](const std::vector<Value>& args) -> Result<Value> {
          CALDB_ASSIGN_OR_RETURN(Interval a, args[0].AsInterval());
          CALDB_ASSIGN_OR_RETURN(Interval b, args[1].AsInterval());
          return Value::Bool(EvalListOp(op, a, b));
        }));
  }

  CALDB_RETURN_IF_ERROR(registry.Register(
      "day_of_week", 1, 1,
      [catalog](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(int64_t day, args[0].AsInt());
        if (!IsValidPoint(day)) {
          return Status::InvalidArgument("0 is not a valid time point");
        }
        return Value::Int(
            static_cast<int>(catalog->time_system().WeekdayOfDayPoint(day)));
      }));

  CALDB_RETURN_IF_ERROR(registry.Register(
      "date_to_day", 1, 1,
      [catalog](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(std::string text, args[0].AsText());
        CALDB_ASSIGN_OR_RETURN(CivilDate date, ParseCivil(text));
        return Value::Int(catalog->time_system().DayPointFromCivil(date));
      }));

  CALDB_RETURN_IF_ERROR(registry.Register(
      "day_to_date", 1, 1,
      [catalog](const std::vector<Value>& args) -> Result<Value> {
        CALDB_ASSIGN_OR_RETURN(int64_t day, args[0].AsInt());
        if (!IsValidPoint(day)) {
          return Status::InvalidArgument("0 is not a valid time point");
        }
        return Value::Text(
            FormatCivil(catalog->time_system().CivilFromDayPoint(day)));
      }));

  // Civil-calendar arithmetic on day points, with the day-of-month clamp
  // (Jan 31 + 1 month = Feb 28/29; a Feb 29 anniversary lands on Feb 28 in
  // non-leap years), so recurrence rules anchored on month ends resolve
  // deterministically.
  struct CivilAddFn {
    const char* name;
    CivilDate (*apply)(CivilDate, int64_t);
  };
  for (const CivilAddFn& entry :
       {CivilAddFn{"add_months", &AddMonths}, CivilAddFn{"add_years", &AddYears}}) {
    auto apply = entry.apply;
    CALDB_RETURN_IF_ERROR(registry.Register(
        entry.name, 2, 2,
        [catalog, apply](const std::vector<Value>& args) -> Result<Value> {
          CALDB_ASSIGN_OR_RETURN(int64_t day, args[0].AsInt());
          CALDB_ASSIGN_OR_RETURN(int64_t count, args[1].AsInt());
          if (!IsValidPoint(day)) {
            return Status::InvalidArgument("0 is not a valid time point");
          }
          CivilDate date = catalog->time_system().CivilFromDayPoint(day);
          return Value::Int(
              catalog->time_system().DayPointFromCivil(apply(date, count)));
        }));
  }

  return Status::OK();
}

}  // namespace caldb
