// CalendarCatalog: the CALENDARS table of §3.2 (Figure 1).
//
//   CALENDARS(name, derivation-script, eval-plan, lifespan, granularity,
//             values)
//
// A derived calendar is parsed, analyzed, factorized and compiled to its
// eval-plan *at definition time*, exactly as the paper stores the plan in
// the catalog row.  Explicit-value calendars (e.g. HOLIDAYS) store their
// intervals in `values`.  The nine base calendars are implicit.

#ifndef CALDB_CATALOG_CALENDAR_CATALOG_H_
#define CALDB_CATALOG_CALENDAR_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/calendar.h"
#include "lang/calendar_source.h"
#include "lang/evaluator.h"
#include "lang/plan.h"
#include "time/time_system.h"

namespace caldb {

/// One row of the CALENDARS table.
struct CalendarDef {
  std::string name;
  std::string derivation_script;                 // source text ("" for values)
  std::shared_ptr<const Script> parsed_script;   // analyzed + factorized
  std::shared_ptr<const Plan> eval_plan;
  std::optional<Interval> lifespan_days;         // nullopt = unbounded
  Granularity granularity = Granularity::kDays;
  std::optional<Calendar> values;                // explicit values
};

class CalendarCatalog : public CalendarSource {
 public:
  explicit CalendarCatalog(TimeSystem time_system)
      : time_system_(std::move(time_system)) {}

  const TimeSystem& time_system() const { return time_system_; }

  /// Monotonic definition version: bumped by every DefineDerived /
  /// DefineValues / Drop.  Caches of evaluated calendar content — the
  /// catalog's own eval-cache and each Session evaluator's gen-cache —
  /// key or invalidate on this, so no session can serve generations of a
  /// calendar another session has since redefined.  Starts at 1 (0 is the
  /// "unversioned" sentinel in EvalOptions).
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Defines a derived calendar.  The script is parsed, analyzed against
  /// this catalog, factorized, and compiled; its granularity is inferred
  /// from the script's smallest time unit (the paper: "In most cases, the
  /// granularity can be inferred from the derivation-script").
  /// AlreadyExists if the name is taken (including the base names).
  Status DefineDerived(const std::string& name, const std::string& script_text,
                       std::optional<Interval> lifespan_days = std::nullopt);

  /// Defines an explicit-values calendar (values must be order-1).
  Status DefineValues(const std::string& name, Calendar values,
                      std::optional<Interval> lifespan_days = std::nullopt);

  /// Removes a user calendar.  Calendars already inlined into other
  /// definitions' plans are unaffected (plans are compiled at define time).
  Status Drop(const std::string& name);

  bool Contains(const std::string& name) const;

  /// The stored row.  NotFound for base calendars (they have no row).
  Result<CalendarDef> Describe(const std::string& name) const;

  /// User-defined calendar names, sorted.
  std::vector<std::string> ListCalendars() const;

  /// Renders the row in the style of the paper's Figure 1.
  Result<std::string> FormatRow(const std::string& name) const;

  // --- CalendarSource -------------------------------------------------------
  Result<ResolvedCalendar> Resolve(const std::string& name) const override;

  // --- evaluation -------------------------------------------------------

  /// Evaluates a named calendar over opts.window_days.  For a derived
  /// calendar this runs its eval-plan; for a value calendar it returns the
  /// stored intervals overlapping the window; for a base calendar it
  /// materializes granules overlapping the window.
  Result<Calendar> EvaluateCalendar(const std::string& name,
                                    const EvalOptions& opts,
                                    EvalStats* stats = nullptr) const;

  /// Parses, analyzes, factorizes, compiles and runs an ad-hoc script.
  Result<ScriptValue> EvaluateScript(const std::string& script_text,
                                     const EvalOptions& opts,
                                     EvalStats* stats = nullptr) const;

  /// Compiles a script without running it (for inspection / DBCRON).
  Result<Plan> CompileScriptText(const std::string& script_text) const;

  /// EXPLAIN: compiles `script_text` timing each pipeline phase, runs it
  /// with per-plan-node profiling, and renders a report — phase timings,
  /// rewrite counts (inline / factorize / pushdown), the optimized plan
  /// annotated with per-node execution counts/timings/output sizes, and
  /// the evaluation counters of the run (generate calls, cache hits...).
  Result<std::string> ExplainScript(const std::string& script_text,
                                    const EvalOptions& opts) const;

  /// Convenience: the DAYS window covering civil years [first, last].
  Result<Interval> YearWindow(int32_t first_year, int32_t last_year) const;

  /// The first DAY point strictly after `after_day` covered by the named
  /// calendar, searching no further than `limit_day`.  Evaluation windows
  /// grow in whole-year steps so that month/year-relative selections
  /// ([n]/DAYS:during:MONTHS) stay meaningful.  nullopt when none found.
  /// This is the primitive DBCRON uses to fill the RULE-TIME table (§4).
  Result<std::optional<TimePoint>> NextFireDay(const std::string& name,
                                               TimePoint after_day,
                                               TimePoint limit_day) const;

  /// Same, for an ad-hoc compiled rule expression.
  Result<std::optional<TimePoint>> NextFireDayForPlan(const Plan& plan,
                                                      TimePoint after_day,
                                                      TimePoint limit_day) const;

  /// Granularity-generalized next firing: points are granules of `unit`
  /// (HOURS for process-control rules, DAYS for the paper's examples).
  Result<std::optional<TimePoint>> NextFirePointForPlan(const Plan& plan,
                                                        TimePoint after_point,
                                                        TimePoint limit_point,
                                                        Granularity unit) const;

 private:
  // Requires mu_ held (either mode); callers lock.
  Status CheckNameFreeLocked(const std::string& name) const;

  TimeSystem time_system_;

  // Thread safety: the catalog is shared by every Session of an Engine, so
  // it locks internally.  `mu_` guards `defs_` — lookups take the shared
  // side and *copy out* what they need (rows hold shared_ptr plans and
  // COW Calendar handles, so a copy is cheap); Define*/Drop take the
  // exclusive side.  No lock is ever held across evaluation or script
  // compilation: a plan being compiled re-enters Resolve(), which takes
  // and releases the shared lock per call — holding mu_ across the
  // compile would self-deadlock and stall writers behind long
  // evaluations.  `cache_mu_` guards only `eval_cache_`; a miss evaluates
  // unlocked and inserts afterwards (two racing misses both compute; the
  // values are identical, last insert wins).
  // Lock ordering: an Engine's db lock may be held when these are taken
  // (calendar operators run inside query execution); the reverse never
  // happens — the catalog does not call into the database.
  mutable std::shared_mutex mu_;
  std::map<std::string, CalendarDef> defs_;
  // See version().  Bumped *before* the mutator's cache clear, so an
  // insert racing the clear (its unlocked evaluation started pre-mutation)
  // lands under the old version and is unreachable by post-mutation
  // lookups — the clear alone could not guarantee that.
  std::atomic<uint64_t> version_{1};
  // Evaluated values of derived calendars, keyed by (name, catalog
  // version, window) — the caching role of the CALENDARS row's `values`
  // column.  Cleared on Define*/Drop; the version key component is what
  // makes a stale racing insert harmless (see version_ above).
  mutable std::mutex cache_mu_;
  mutable std::map<std::tuple<std::string, uint64_t, TimePoint, TimePoint>,
                   Calendar>
      eval_cache_;
};

}  // namespace caldb

#endif  // CALDB_CATALOG_CALENDAR_CATALOG_H_
