// Small string utilities shared across caldb modules.

#ifndef CALDB_COMMON_STRINGS_H_
#define CALDB_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace caldb {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string_view> StrSplit(std::string_view s, char sep);

/// ASCII lower-casing.
std::string AsciiToLower(std::string_view s);
/// ASCII upper-casing.
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a base-10 signed integer occupying the whole string.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a decimal floating-point literal occupying the whole string.
/// Never throws (unlike std::stod, which raises out_of_range on
/// magnitudes beyond double): overflow comes back as a ParseError.
Result<double> ParseDouble(std::string_view s);

}  // namespace caldb

#endif  // CALDB_COMMON_STRINGS_H_
