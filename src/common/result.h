// Result<T>: a value-or-Status, the return type of fallible caldb
// operations that produce a value.
//
// The no-throw contract
// ---------------------
// caldb never throws across a public API.  Every fallible operation
// reachable from the facade (caldb.h) — parsing, evaluation, catalog and
// database calls, Engine/Session entry points — reports failure as a
// Status or Result<T>; exceptions are not part of the error surface:
//
//  - Library code does not `throw`, and avoids throwing std:: helpers on
//    user-controlled input (e.g. ParseDouble in common/strings.h instead
//    of std::stod, which raises out_of_range).
//  - The facade entry points (Engine::Execute, Session::Execute and the
//    typed Session surface) additionally wrap their implementations in a
//    catch-all that converts any escaped exception — out-of-memory aside,
//    these would be defects — into Status::Internal, so a bug below the
//    facade degrades into an error return instead of terminating a server
//    worker thread.
//  - Accessing value() on an error Result is a programming error checked
//    by assert, not an exception.
//
// Callers may therefore invoke any public caldb function from
// exception-unaware code (worker threads, C callbacks) safely.

#ifndef CALDB_COMMON_RESULT_H_
#define CALDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace caldb {

/// Holds either a T (success) or a non-OK Status (failure).
///
/// Usage:
///   Result<int> r = ParseInt(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
///
/// The CALDB_ASSIGN_OR_RETURN macro in macros.h removes the boilerplate.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // clean ("return 42;" / "return Status::NotFound(...)").
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace caldb

#endif  // CALDB_COMMON_RESULT_H_
