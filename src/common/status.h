// Status: the error model used across the caldb public API.
//
// caldb does not throw exceptions across API boundaries (following the
// Arrow / RocksDB database-engine idiom).  Every fallible operation returns
// either a Status or a Result<T> (see result.h).

#ifndef CALDB_COMMON_STATUS_H_
#define CALDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace caldb {

// Error categories.  kOk is the unique success code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kTypeError,
  kEvalError,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("ParseError" etc).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value.  Cheap to copy in the success case (no
/// allocation); errors carry a message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prepends context to the error message; no-op on OK statuses.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace caldb

#endif  // CALDB_COMMON_STATUS_H_
