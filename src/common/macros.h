// Error-propagation and invariant-check macros.

#ifndef CALDB_COMMON_MACROS_H_
#define CALDB_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#include "common/result.h"
#include "common/status.h"

// Propagates a non-OK Status to the caller.
#define CALDB_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::caldb::Status _caldb_status = (expr);          \
    if (!_caldb_status.ok()) return _caldb_status;   \
  } while (false)

#define CALDB_CONCAT_IMPL(a, b) a##b
#define CALDB_CONCAT(a, b) CALDB_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>), propagating errors; on success assigns
// the value to `lhs` (which may include a declaration).
#define CALDB_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  CALDB_ASSIGN_OR_RETURN_IMPL(CALDB_CONCAT(_caldb_res_, __LINE__),    \
                              lhs, rexpr)

#define CALDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

// Internal invariant check: aborts with a message.  Used for conditions
// that indicate caldb bugs (never for user input, which gets a Status).
#define CALDB_DCHECK(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CALDB_DCHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, msg);                                        \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // CALDB_COMMON_MACROS_H_
