// ThreadPool: a fixed-size worker pool with a FIFO task queue.
//
// The pool is the execution substrate of caldb::Engine (parallel query /
// script execution); it is deliberately minimal: Submit enqueues a
// callable, workers drain the queue, the destructor (or Shutdown) stops
// accepting work, runs everything already queued to completion and joins.
// SubmitTask wraps the callable in a std::packaged_task so callers can
// wait on a std::future of the result.
//
// Observability ("caldb.engine.pool.*", docs/OBSERVABILITY.md):
//   pool.tasks        counter   tasks submitted
//   pool.queue_depth  gauge     current queue length
//   pool.queue_depth_max gauge  high-water mark
//   pool.wait_ns      histogram queue wait per task (submit -> start)
//
// Each task runs under an isolating obs::ScopedTraceContext, so spans a
// task starts never parent to leftovers on the worker's span stack; a
// task that wants to continue its submitter's trace installs the
// submitter's captured TraceContext itself (see Engine::ExecuteAsync).

#ifndef CALDB_COMMON_THREAD_POOL_H_
#define CALDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace caldb {

class ThreadPool {
 public:
  /// Starts `threads` workers (values < 1 are clamped to 1; pass
  /// std::thread::hardware_concurrency() yourself if that is what you
  /// want — the pool does not guess).
  explicit ThreadPool(int threads);

  /// Runs queued tasks to completion, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`.  Returns false (and drops the task) after Shutdown.
  bool Submit(std::function<void()> fn);

  /// Enqueues a callable and returns a future of its result.  If the pool
  /// is shut down the returned future holds a broken_promise error.
  template <typename F, typename R = std::invoke_result_t<F&>>
  std::future<R> SubmitTask(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Submit([task]() { (*task)(); });
    return result;
  }

  /// Stops accepting tasks, drains the queue and joins (idempotent).
  void Shutdown();

  /// Blocks until the queue is empty and every worker is idle.
  void Drain();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // Drain waits for quiescence
  // Each entry carries its submit time so the dequeue can record queue
  // wait into the pool.wait_ns histogram.
  std::deque<std::pair<std::function<void()>, int64_t>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace caldb

#endif  // CALDB_COMMON_THREAD_POOL_H_
