#include "common/thread_pool.h"

#include <algorithm>

#include "obs/obs.h"

namespace caldb {

namespace {

struct PoolMetrics {
  obs::Counter* tasks = obs::Metrics().counter("caldb.engine.pool.tasks");
  obs::Gauge* queue_depth =
      obs::Metrics().gauge("caldb.engine.pool.queue_depth");
  obs::Gauge* queue_depth_max =
      obs::Metrics().gauge("caldb.engine.pool.queue_depth_max");
  obs::Histogram* wait_ns =
      obs::Metrics().histogram("caldb.engine.pool.wait_ns");
};

PoolMetrics& Metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.emplace_back(std::move(fn), obs::NowNs());
    Metrics().tasks->Increment();
    Metrics().queue_depth->SetWithMax(static_cast<int64_t>(queue_.size()),
                                      Metrics().queue_depth_max);
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      auto [fn, submitted_ns] = std::move(queue_.front());
      queue_.pop_front();
      task = std::move(fn);
      ++active_;
      Metrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
      if (obs::Enabled()) {
        Metrics().wait_ns->Record(obs::NowNs() - submitted_ns);
      }
    }
    {
      // Isolate the task's span parentage: without this, a span leaked
      // onto this worker's thread-local stack by an earlier task (e.g.
      // one moved across threads and never Ended here) would become the
      // silent parent of every span the next task starts.  A null
      // context swaps in an empty stack; tasks that want propagation
      // (Engine::ExecuteAsync) install their captured context inside.
      obs::ScopedTraceContext isolate{obs::TraceContext{}};
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace caldb
