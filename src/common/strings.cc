#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace caldb {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> StrSplit(std::string_view s, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(s.substr(start));
      break;
    }
    pieces.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view s) {
  int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  // strtod needs a NUL terminator; literals are short, so the copy is
  // noise.  errno (not an exception) reports range errors.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    return Status::ParseError("not a number: '" + buf + "'");
  }
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return Status::ParseError("number out of range: '" + buf + "'");
  }
  return value;
}

}  // namespace caldb
