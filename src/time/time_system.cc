#include "time/time_system.h"

#include "common/macros.h"

namespace caldb {

namespace {

int CoarsenessOf(Granularity g) { return static_cast<int>(g); }

}  // namespace

TimeSystem::TimeSystem(CivilDate epoch) : epoch_(epoch) {
  CALDB_DCHECK(IsValidCivil(epoch), "TimeSystem epoch must be a valid civil date");
  epoch_serial_ = DaysFromCivil(epoch_);
  int weekday = static_cast<int>(WeekdayFromDays(epoch_serial_));  // Mon=1..Sun=7
  epoch_monday_offset_ = -(weekday - 1);
  decade_start_year_ =
      epoch_.year - static_cast<int32_t>(FloorMod(epoch_.year, 10));
  century_start_year_ =
      epoch_.year - static_cast<int32_t>(FloorMod(epoch_.year, 100));
}

TimePoint TimeSystem::DayPointFromCivil(CivilDate d) const {
  return OffsetToPoint(DaysFromCivil(d) - epoch_serial_);
}

CivilDate TimeSystem::CivilFromDayPoint(TimePoint p) const {
  return CivilFromDays(epoch_serial_ + PointToOffset(p));
}

Weekday TimeSystem::WeekdayOfDayPoint(TimePoint p) const {
  return WeekdayFromDays(epoch_serial_ + PointToOffset(p));
}

void TimeSystem::DayRangeOfGranule(Granularity g, int64_t j, int64_t* lo,
                                   int64_t* hi) const {
  switch (g) {
    case Granularity::kDays:
      *lo = j;
      *hi = j;
      return;
    case Granularity::kWeeks:
      *lo = epoch_monday_offset_ + 7 * j;
      *hi = *lo + 6;
      return;
    case Granularity::kMonths: {
      const int64_t ym0 = static_cast<int64_t>(epoch_.year) * 12 + (epoch_.month - 1);
      const int64_t ym = ym0 + j;
      const int32_t y = static_cast<int32_t>(FloorDiv(ym, 12));
      const int32_t m = static_cast<int32_t>(FloorMod(ym, 12)) + 1;
      *lo = DaysFromCivil(CivilDate{y, m, 1}) - epoch_serial_;
      *hi = *lo + DaysInMonth(y, m) - 1;
      return;
    }
    case Granularity::kYears: {
      const int32_t y = epoch_.year + static_cast<int32_t>(j);
      *lo = DaysFromCivil(CivilDate{y, 1, 1}) - epoch_serial_;
      *hi = DaysFromCivil(CivilDate{y, 12, 31}) - epoch_serial_;
      return;
    }
    case Granularity::kDecades: {
      const int32_t y = decade_start_year_ + static_cast<int32_t>(10 * j);
      *lo = DaysFromCivil(CivilDate{y, 1, 1}) - epoch_serial_;
      *hi = DaysFromCivil(CivilDate{y + 9, 12, 31}) - epoch_serial_;
      return;
    }
    case Granularity::kCenturies: {
      const int32_t y = century_start_year_ + static_cast<int32_t>(100 * j);
      *lo = DaysFromCivil(CivilDate{y, 1, 1}) - epoch_serial_;
      *hi = DaysFromCivil(CivilDate{y + 99, 12, 31}) - epoch_serial_;
      return;
    }
    default:
      CALDB_DCHECK(false, "DayRangeOfGranule requires DAYS or coarser");
  }
}

int64_t TimeSystem::GranuleOffsetContainingDay(Granularity g, int64_t d) const {
  switch (g) {
    case Granularity::kDays:
      return d;
    case Granularity::kWeeks:
      return FloorDiv(d - epoch_monday_offset_, 7);
    case Granularity::kMonths: {
      const CivilDate c = CivilFromDays(epoch_serial_ + d);
      const int64_t ym0 = static_cast<int64_t>(epoch_.year) * 12 + (epoch_.month - 1);
      const int64_t ym = static_cast<int64_t>(c.year) * 12 + (c.month - 1);
      return ym - ym0;
    }
    case Granularity::kYears: {
      const CivilDate c = CivilFromDays(epoch_serial_ + d);
      return static_cast<int64_t>(c.year) - epoch_.year;
    }
    case Granularity::kDecades: {
      const CivilDate c = CivilFromDays(epoch_serial_ + d);
      return FloorDiv(static_cast<int64_t>(c.year) - decade_start_year_, 10);
    }
    case Granularity::kCenturies: {
      const CivilDate c = CivilFromDays(epoch_serial_ + d);
      return FloorDiv(static_cast<int64_t>(c.year) - century_start_year_, 100);
    }
    default:
      CALDB_DCHECK(false, "GranuleOffsetContainingDay requires DAYS or coarser");
      return 0;
  }
}

Result<Interval> TimeSystem::GranuleToUnit(Granularity g, TimePoint index,
                                           Granularity unit) const {
  if (!IsValidPoint(index)) {
    return Status::InvalidArgument("granule index 0 is not a valid time point");
  }
  if (CoarsenessOf(unit) > CoarsenessOf(g)) {
    return Status::InvalidArgument(
        std::string("cannot express ") + std::string(GranularityName(g)) +
        " granules in coarser unit " + std::string(GranularityName(unit)));
  }
  if (unit == g) return Interval{index, index};

  const int64_t j = PointToOffset(index);
  int64_t lo_off = 0;
  int64_t hi_off = 0;
  if (IsSubDay(g)) {
    // Both g and unit are sub-day; ratios divide exactly (86400/1440/24).
    const int64_t ratio = GranulesPerDay(unit) / GranulesPerDay(g);
    lo_off = j * ratio;
    hi_off = (j + 1) * ratio - 1;
  } else {
    int64_t dlo = 0;
    int64_t dhi = 0;
    DayRangeOfGranule(g, j, &dlo, &dhi);
    if (unit == Granularity::kDays) {
      lo_off = dlo;
      hi_off = dhi;
    } else if (IsSubDay(unit)) {
      const int64_t per_day = GranulesPerDay(unit);
      lo_off = dlo * per_day;
      hi_off = (dhi + 1) * per_day - 1;
    } else {
      // unit strictly between DAYS and g (e.g. months of a year): the range
      // of unit-granules overlapping the g-granule.
      lo_off = GranuleOffsetContainingDay(unit, dlo);
      hi_off = GranuleOffsetContainingDay(unit, dhi);
    }
  }
  return Interval{OffsetToPoint(lo_off), OffsetToPoint(hi_off)};
}

Result<TimePoint> TimeSystem::GranuleContaining(Granularity g, TimePoint p,
                                                Granularity unit) const {
  if (!IsValidPoint(p)) {
    return Status::InvalidArgument("point 0 is not a valid time point");
  }
  if (CoarsenessOf(g) < CoarsenessOf(unit)) {
    return Status::InvalidArgument(
        std::string("granularity ") + std::string(GranularityName(g)) +
        " is finer than unit " + std::string(GranularityName(unit)));
  }
  if (g == unit) return p;

  const int64_t off = PointToOffset(p);
  if (IsSubDay(unit)) {
    if (IsSubDay(g)) {
      const int64_t ratio = GranulesPerDay(unit) / GranulesPerDay(g);
      return OffsetToPoint(FloorDiv(off, ratio));
    }
    const int64_t d = FloorDiv(off, GranulesPerDay(unit));
    return OffsetToPoint(GranuleOffsetContainingDay(g, d));
  }
  int64_t day = 0;
  if (unit == Granularity::kDays) {
    day = off;
  } else {
    int64_t dhi = 0;
    DayRangeOfGranule(unit, off, &day, &dhi);  // start day of the unit granule
  }
  return OffsetToPoint(GranuleOffsetContainingDay(g, day));
}

TimePoint TimeSystem::YearIndex(int32_t civil_year) const {
  return OffsetToPoint(static_cast<int64_t>(civil_year) - epoch_.year);
}

int32_t TimeSystem::CivilYearOfIndex(TimePoint year_index) const {
  return epoch_.year + static_cast<int32_t>(PointToOffset(year_index));
}

TimePoint TimeSystem::MonthIndex(int32_t civil_year, int32_t month) const {
  const int64_t ym0 = static_cast<int64_t>(epoch_.year) * 12 + (epoch_.month - 1);
  const int64_t ym = static_cast<int64_t>(civil_year) * 12 + (month - 1);
  return OffsetToPoint(ym - ym0);
}

Result<Interval> TimeSystem::DayIntervalFromCivil(CivilDate a, CivilDate b) const {
  if (!IsValidCivil(a) || !IsValidCivil(b)) {
    return Status::InvalidArgument("invalid civil date");
  }
  if (b < a) {
    return Status::InvalidArgument("civil range end precedes start");
  }
  return Interval{DayPointFromCivil(a), DayPointFromCivil(b)};
}

}  // namespace caldb
