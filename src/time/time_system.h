// TimeSystem: maps granules of the base calendars (SECONDS..CENTURY) to
// skip-zero time points relative to a configurable system epoch (§3.2 uses
// Jan 1 1987; the §3.1 worked examples use Jan 1 1993).
//
// Granule index 1 of every granularity is the granule *containing* the
// epoch instant (epoch date at 00:00:00); index -1 is the granule just
// before it.  Week granules start on Monday (the paper numbers Monday = 1).
// Decades and centuries align to civil boundaries (years divisible by
// 10/100).  Sub-day granules subdivide days from midnight; a day is a fixed
// 86400 seconds (no leap seconds).

#ifndef CALDB_TIME_TIME_SYSTEM_H_
#define CALDB_TIME_TIME_SYSTEM_H_

#include <cstdint>

#include "common/result.h"
#include "core/interval.h"
#include "time/civil.h"
#include "time/granularity.h"
#include "time/timepoint.h"

namespace caldb {

class TimeSystem {
 public:
  /// Epoch defaults to the paper's system start date, January 1 1987.
  explicit TimeSystem(CivilDate epoch = CivilDate{1987, 1, 1});

  const CivilDate& epoch() const { return epoch_; }

  // --- Day-level conversions ------------------------------------------------

  /// The DAYS point of a civil date (point 1 == the epoch date).
  TimePoint DayPointFromCivil(CivilDate d) const;

  /// Inverse of DayPointFromCivil.
  CivilDate CivilFromDayPoint(TimePoint p) const;

  /// Day of week of a DAYS point.
  Weekday WeekdayOfDayPoint(TimePoint p) const;

  // --- Granule geometry -----------------------------------------------------

  /// The interval of `unit` points covered by granule `index` of
  /// granularity `g`.  `unit` must be finer than or equal to `g`
  /// (e.g. the days of a month, the months of a year, the seconds of an
  /// hour).  For `unit` coarser than DAYS but finer than `g`, the result is
  /// the range of unit-granules whose *start* lies within the g-granule.
  Result<Interval> GranuleToUnit(Granularity g, TimePoint index,
                                 Granularity unit) const;

  /// Index of the granule of `g` containing the *start* of unit-granule
  /// `p`.  `g` must be coarser than or equal to `unit`.
  Result<TimePoint> GranuleContaining(Granularity g, TimePoint p,
                                      Granularity unit) const;

  // --- Civil-labelled lookups ----------------------------------------------

  /// YEARS granule index of a civil year (e.g. 1993 -> 7 when the epoch is
  /// Jan 1 1987).
  TimePoint YearIndex(int32_t civil_year) const;

  /// Civil year of a YEARS granule index.
  int32_t CivilYearOfIndex(TimePoint year_index) const;

  /// MONTHS granule index of a civil (year, month).
  TimePoint MonthIndex(int32_t civil_year, int32_t month) const;

  /// The DAYS interval covering civil dates [a, b].
  Result<Interval> DayIntervalFromCivil(CivilDate a, CivilDate b) const;

 private:
  // Zero-based day-offset range [lo, hi] of granule offset `j` of
  // granularity g (g must be DAYS or coarser).
  void DayRangeOfGranule(Granularity g, int64_t j, int64_t* lo, int64_t* hi) const;

  // Zero-based granule offset of g containing zero-based day offset d
  // (g must be DAYS or coarser).
  int64_t GranuleOffsetContainingDay(Granularity g, int64_t d) const;

  CivilDate epoch_;
  int64_t epoch_serial_;        // DaysFromCivil(epoch_)
  int64_t epoch_monday_offset_;  // day-offset of the Monday of the epoch week (<= 0)
  int32_t decade_start_year_;   // first year of the decade containing the epoch
  int32_t century_start_year_;  // first year of the century containing the epoch
};

/// Floor division (rounds toward negative infinity).
constexpr int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Floor modulus (result has the sign of b).
constexpr int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace caldb

#endif  // CALDB_TIME_TIME_SYSTEM_H_
