// Proleptic-Gregorian civil-date arithmetic.
//
// Day serial numbers here are *zero-based offsets* from 1970-01-01 (the
// classic days-from-civil encoding); the paper's 1-based skip-zero time
// points are layered on top by TimeSystem (see time_system.h).

#ifndef CALDB_TIME_CIVIL_H_
#define CALDB_TIME_CIVIL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace caldb {

/// A calendar date in the proleptic Gregorian calendar.
struct CivilDate {
  int32_t year = 1970;
  int32_t month = 1;  // 1..12
  int32_t day = 1;    // 1..DaysInMonth(year, month)

  bool operator==(const CivilDate&) const = default;
  auto operator<=>(const CivilDate&) const = default;
};

/// Day of week; numbering follows the paper (Monday = 1 ... Sunday = 7).
enum class Weekday : int {
  kMonday = 1,
  kTuesday = 2,
  kWednesday = 3,
  kThursday = 4,
  kFriday = 5,
  kSaturday = 6,
  kSunday = 7,
};

bool IsLeapYear(int32_t year);

/// Number of days in `month` of `year` (handles leap February).
int DaysInMonth(int32_t year, int32_t month);

/// Number of days in `year` (365 or 366).
int DaysInYear(int32_t year);

/// Days since 1970-01-01 (negative before).  `d` must be a valid date.
int64_t DaysFromCivil(CivilDate d);

/// Inverse of DaysFromCivil.
CivilDate CivilFromDays(int64_t days);

/// Day of week of a day serial number.
Weekday WeekdayFromDays(int64_t days);

/// True when year/month/day form a real Gregorian date.
bool IsValidCivil(CivilDate d);

/// `d` plus `months` calendar months, clamping the day-of-month into the
/// target month: Jan 31 + 1 month = Feb 28 (Feb 29 in a leap year).
/// Handles year rollover and negative counts.
CivilDate AddMonths(CivilDate d, int64_t months);

/// `d` plus `years` calendar years, with the same clamp — the leap-day
/// recurrence rule: an anniversary anchored on Feb 29 resolves to Feb 28
/// in a non-leap year, deterministically (docs/DURABILITY.md notes why
/// recurrences must be deterministic across replay).
CivilDate AddYears(CivilDate d, int64_t years);

/// "YYYY-MM-DD".
std::string FormatCivil(CivilDate d);

/// Parses "YYYY-MM-DD" (also accepts negative years).
Result<CivilDate> ParseCivil(std::string_view s);

/// Short weekday name ("Mon".."Sun").
std::string_view WeekdayName(Weekday w);

}  // namespace caldb

#endif  // CALDB_TIME_CIVIL_H_
