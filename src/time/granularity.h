// The nine base granularities of the paper's calendar system (§3.2):
// SECONDS, MINUTES, HOURS, DAYS, WEEKS, MONTHS, YEARS, DECADES, CENTURY.

#ifndef CALDB_TIME_GRANULARITY_H_
#define CALDB_TIME_GRANULARITY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace caldb {

/// Ordered finest-to-coarsest; the integer values are used for "smaller
/// time unit" comparisons during expression analysis (§3.4).
enum class Granularity : int {
  kSeconds = 0,
  kMinutes = 1,
  kHours = 2,
  kDays = 3,
  kWeeks = 4,
  kMonths = 5,
  kYears = 6,
  kDecades = 7,
  kCenturies = 8,
};

/// Canonical (upper-case plural) name, e.g. "DAYS".
std::string_view GranularityName(Granularity g);

/// Parses a granularity name (case-insensitive; accepts "CENTURY" too).
Result<Granularity> ParseGranularity(std::string_view name);

/// True if `a` is strictly finer than `b` (e.g. DAYS finer than MONTHS).
inline bool FinerThan(Granularity a, Granularity b) {
  return static_cast<int>(a) < static_cast<int>(b);
}

/// The finer of the two granularities.
inline Granularity Finest(Granularity a, Granularity b) {
  return FinerThan(a, b) ? a : b;
}

/// True for units whose granules all have the same length in seconds
/// (SECONDS..WEEKS); false for MONTHS and coarser.
bool IsUniform(Granularity g);

/// Length in seconds of a granule of a uniform granularity.
/// Precondition: IsUniform(g).
int64_t SecondsPerGranule(Granularity g);

/// True for sub-day uniform units (SECONDS, MINUTES, HOURS).
inline bool IsSubDay(Granularity g) {
  return static_cast<int>(g) < static_cast<int>(Granularity::kDays);
}

/// Number of granules of sub-day unit `g` per day (86400 / 1440 / 24).
/// Precondition: IsSubDay(g).
int64_t GranulesPerDay(Granularity g);

}  // namespace caldb

#endif  // CALDB_TIME_GRANULARITY_H_
