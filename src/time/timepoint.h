// The paper's skip-zero time-point convention (§3.1):
//
//   "we adopt the convention that an interval will never contain 0"
//
// Time points are nonzero integers.  Point 1 is the first granule at/after
// the system epoch; point -1 the granule just before it.  Internally we map
// points to ordinary zero-based offsets so arithmetic stays simple:
//
//   point:   ... -3 -2 -1  1  2  3 ...
//   offset:  ... -3 -2 -1  0  1  2 ...

#ifndef CALDB_TIME_TIMEPOINT_H_
#define CALDB_TIME_TIMEPOINT_H_

#include <cstdint>

namespace caldb {

/// A skip-zero time point in some granularity.  0 is not a valid point.
using TimePoint = int64_t;

/// Converts a skip-zero point to its zero-based offset.
constexpr int64_t PointToOffset(TimePoint p) { return p > 0 ? p - 1 : p; }

/// Converts a zero-based offset to the skip-zero point covering it.
constexpr TimePoint OffsetToPoint(int64_t offset) {
  return offset >= 0 ? offset + 1 : offset;
}

/// True for representable points (anything nonzero).
constexpr bool IsValidPoint(TimePoint p) { return p != 0; }

/// The point `delta` granules after `p`, skipping zero correctly
/// (e.g. PointAdd(-1, 1) == 1, not 0).
constexpr TimePoint PointAdd(TimePoint p, int64_t delta) {
  return OffsetToPoint(PointToOffset(p) + delta);
}

/// Number of granules from `a` to `b` (b - a in offset space).
constexpr int64_t PointDistance(TimePoint a, TimePoint b) {
  return PointToOffset(b) - PointToOffset(a);
}

}  // namespace caldb

#endif  // CALDB_TIME_TIMEPOINT_H_
