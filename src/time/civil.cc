#include "time/civil.h"

#include <cstdio>

#include "common/macros.h"
#include "common/strings.h"

namespace caldb {

bool IsLeapYear(int32_t year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int32_t year, int32_t month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

int DaysInYear(int32_t year) { return IsLeapYear(year) ? 366 : 365; }

// Howard Hinnant's days_from_civil / civil_from_days algorithms.
int64_t DaysFromCivil(CivilDate d) {
  int64_t y = d.year;
  const int64_t m = d.month;
  const int64_t dd = d.day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                   // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + dd - 1;  // [0, 365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + doe - 719468;
}

CivilDate CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                                    // [0, 146096]
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                       // [0, 11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  return CivilDate{static_cast<int32_t>(y + (m <= 2)), static_cast<int32_t>(m),
                   static_cast<int32_t>(d)};
}

Weekday WeekdayFromDays(int64_t days) {
  // 1970-01-01 was a Thursday (=4).
  int64_t w = (days + 3) % 7;  // 0 => Monday
  if (w < 0) w += 7;
  return static_cast<Weekday>(w + 1);
}

bool IsValidCivil(CivilDate d) {
  return d.month >= 1 && d.month <= 12 && d.day >= 1 &&
         d.day <= DaysInMonth(d.year, d.month);
}

CivilDate AddMonths(CivilDate d, int64_t months) {
  // Months since year 0, floor-divided back apart so negative totals land
  // in the right year.
  const int64_t total = static_cast<int64_t>(d.year) * 12 + (d.month - 1) +
                        months;
  int64_t year = total / 12;
  int64_t month = total % 12;
  if (month < 0) {
    month += 12;
    --year;
  }
  CivilDate out{static_cast<int32_t>(year), static_cast<int32_t>(month + 1),
                d.day};
  const int cap = DaysInMonth(out.year, out.month);
  if (out.day > cap) out.day = cap;
  return out;
}

CivilDate AddYears(CivilDate d, int64_t years) {
  CivilDate out{static_cast<int32_t>(d.year + years), d.month, d.day};
  const int cap = DaysInMonth(out.year, out.month);
  if (out.day > cap) out.day = cap;  // Feb 29 anniversary -> Feb 28
  return out;
}

std::string FormatCivil(CivilDate d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

Result<CivilDate> ParseCivil(std::string_view s) {
  // Allow a leading '-' on the year.
  bool negative_year = !s.empty() && s[0] == '-';
  std::string_view body = negative_year ? s.substr(1) : s;
  std::vector<std::string_view> parts = StrSplit(body, '-');
  if (parts.size() != 3) {
    return Status::ParseError("expected YYYY-MM-DD, got '" + std::string(s) + "'");
  }
  CALDB_ASSIGN_OR_RETURN(int64_t year, ParseInt64(parts[0]));
  CALDB_ASSIGN_OR_RETURN(int64_t month, ParseInt64(parts[1]));
  CALDB_ASSIGN_OR_RETURN(int64_t day, ParseInt64(parts[2]));
  if (negative_year) year = -year;
  CivilDate d{static_cast<int32_t>(year), static_cast<int32_t>(month),
              static_cast<int32_t>(day)};
  if (!IsValidCivil(d)) {
    return Status::InvalidArgument("invalid civil date '" + std::string(s) + "'");
  }
  return d;
}

std::string_view WeekdayName(Weekday w) {
  switch (w) {
    case Weekday::kMonday:
      return "Mon";
    case Weekday::kTuesday:
      return "Tue";
    case Weekday::kWednesday:
      return "Wed";
    case Weekday::kThursday:
      return "Thu";
    case Weekday::kFriday:
      return "Fri";
    case Weekday::kSaturday:
      return "Sat";
    case Weekday::kSunday:
      return "Sun";
  }
  return "?";
}

}  // namespace caldb
