#include "time/granularity.h"

#include "common/strings.h"

namespace caldb {

std::string_view GranularityName(Granularity g) {
  switch (g) {
    case Granularity::kSeconds:
      return "SECONDS";
    case Granularity::kMinutes:
      return "MINUTES";
    case Granularity::kHours:
      return "HOURS";
    case Granularity::kDays:
      return "DAYS";
    case Granularity::kWeeks:
      return "WEEKS";
    case Granularity::kMonths:
      return "MONTHS";
    case Granularity::kYears:
      return "YEARS";
    case Granularity::kDecades:
      return "DECADES";
    case Granularity::kCenturies:
      return "CENTURY";
  }
  return "?";
}

Result<Granularity> ParseGranularity(std::string_view name) {
  std::string upper = AsciiToUpper(name);
  if (upper == "SECONDS" || upper == "SECOND") return Granularity::kSeconds;
  if (upper == "MINUTES" || upper == "MINUTE") return Granularity::kMinutes;
  if (upper == "HOURS" || upper == "HOUR") return Granularity::kHours;
  if (upper == "DAYS" || upper == "DAY") return Granularity::kDays;
  if (upper == "WEEKS" || upper == "WEEK") return Granularity::kWeeks;
  if (upper == "MONTHS" || upper == "MONTH") return Granularity::kMonths;
  if (upper == "YEARS" || upper == "YEAR") return Granularity::kYears;
  if (upper == "DECADES" || upper == "DECADE") return Granularity::kDecades;
  if (upper == "CENTURY" || upper == "CENTURIES") return Granularity::kCenturies;
  return Status::InvalidArgument("unknown granularity '" + std::string(name) + "'");
}

bool IsUniform(Granularity g) {
  return static_cast<int>(g) <= static_cast<int>(Granularity::kWeeks);
}

int64_t SecondsPerGranule(Granularity g) {
  switch (g) {
    case Granularity::kSeconds:
      return 1;
    case Granularity::kMinutes:
      return 60;
    case Granularity::kHours:
      return 3600;
    case Granularity::kDays:
      return 86400;
    case Granularity::kWeeks:
      return 7 * 86400;
    default:
      return -1;  // non-uniform; guarded by precondition
  }
}

int64_t GranulesPerDay(Granularity g) {
  switch (g) {
    case Granularity::kSeconds:
      return 86400;
    case Granularity::kMinutes:
      return 1440;
    case Granularity::kHours:
      return 24;
    default:
      return -1;  // guarded by precondition
  }
}

}  // namespace caldb
