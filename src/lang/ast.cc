#include "lang/ast.h"

namespace caldb {

namespace {

std::string SelectionToString(const std::vector<SelectionItem>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    const SelectionItem& it = items[i];
    switch (it.kind) {
      case SelectionItem::Kind::kIndex:
        out += std::to_string(it.index);
        break;
      case SelectionItem::Kind::kLast:
        out += "n";
        break;
      case SelectionItem::Kind::kRange:
        out += std::to_string(it.range_lo);
        out += "..";
        out += it.range_hi == SelectionItem::kLastMarker
                   ? "n"
                   : std::to_string(it.range_hi);
        break;
    }
  }
  out += "]";
  return out;
}

void TreeToString(const Expr& e, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (e.kind) {
    case Expr::Kind::kIdent:
      *out += e.name;
      *out += "\n";
      return;
    case Expr::Kind::kLiteral:
      *out += "literal ";
      *out += e.literal.ToString();
      *out += "\n";
      return;
    case Expr::Kind::kYearSelect:
      *out += std::to_string(e.year);
      *out += "/YEARS\n";
      return;
    case Expr::Kind::kForEach:
      *out += "foreach ";
      *out += e.strict ? ":" : ".";
      *out += ListOpName(e.op);
      *out += e.strict ? ":" : ".";
      *out += "\n";
      TreeToString(*e.lhs, depth + 1, out);
      TreeToString(*e.rhs, depth + 1, out);
      return;
    case Expr::Kind::kSelect:
      *out += "select ";
      *out += SelectionToString(e.selection);
      *out += "\n";
      TreeToString(*e.child, depth + 1, out);
      return;
    case Expr::Kind::kSetOp:
      *out += e.set_op;
      *out += "\n";
      TreeToString(*e.lhs, depth + 1, out);
      TreeToString(*e.rhs, depth + 1, out);
      return;
    case Expr::Kind::kCall:
      *out += e.name;
      *out += "()\n";
      for (const ExprPtr& a : e.args) TreeToString(*a, depth + 1, out);
      return;
    case Expr::Kind::kIntConst:
      *out += std::to_string(e.int_value);
      *out += "\n";
      return;
    case Expr::Kind::kStar:
      *out += "*\n";
      return;
  }
}

void StmtToString(const Stmt& s, int depth, std::string* out);

void BodyToString(const std::vector<Stmt>& body, int depth, std::string* out) {
  for (const Stmt& s : body) StmtToString(s, depth, out);
}

void StmtToString(const Stmt& s, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (s.kind) {
    case Stmt::Kind::kAssign:
      *out += s.var + " = " + ExprToString(*s.expr) + ";\n";
      return;
    case Stmt::Kind::kIf:
      *out += "if (" + ExprToString(*s.expr) + ")\n";
      BodyToString(s.body, depth + 1, out);
      if (!s.else_body.empty()) {
        out->append(static_cast<size_t>(depth) * 2, ' ');
        *out += "else\n";
        BodyToString(s.else_body, depth + 1, out);
      }
      return;
    case Stmt::Kind::kWhile:
      *out += "while (" + ExprToString(*s.expr) + ")\n";
      BodyToString(s.body, depth + 1, out);
      return;
    case Stmt::Kind::kReturn:
      if (s.returns_string) {
        *out += "return (\"" + s.str + "\");\n";
      } else {
        *out += "return " + ExprToString(*s.expr) + ";\n";
      }
      return;
    case Stmt::Kind::kBlock:
      *out += "{\n";
      BodyToString(s.body, depth + 1, out);
      out->append(static_cast<size_t>(depth) * 2, ' ');
      *out += "}\n";
      return;
  }
}

}  // namespace

std::string ExprToString(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kIdent:
      return e.name;
    case Expr::Kind::kLiteral:
      return std::string(GranularityName(e.literal.granularity())) +
             e.literal.ToString();
    case Expr::Kind::kYearSelect:
      return std::to_string(e.year) + "/YEARS";
    case Expr::Kind::kForEach: {
      const char* mark = e.strict ? ":" : ".";
      std::string lhs = ExprToString(*e.lhs);
      if (e.lhs->kind == Expr::Kind::kForEach ||
          e.lhs->kind == Expr::Kind::kSelect ||
          e.lhs->kind == Expr::Kind::kSetOp) {
        lhs = "(" + lhs + ")";
      }
      return lhs + mark + std::string(ListOpName(e.op)) + mark +
             ExprToString(*e.rhs);
    }
    case Expr::Kind::kSelect:
      return SelectionToString(e.selection) + "/" + ExprToString(*e.child);
    case Expr::Kind::kSetOp:
      return ExprToString(*e.lhs) + " " + e.set_op + " " + ExprToString(*e.rhs);
    case Expr::Kind::kCall: {
      std::string out = e.name + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToString(*e.args[i]);
      }
      out += ")";
      return out;
    }
    case Expr::Kind::kIntConst:
      return std::to_string(e.int_value);
    case Expr::Kind::kStar:
      return "*";
  }
  return "?";
}

std::string ExprTreeToString(const Expr& e) {
  std::string out;
  TreeToString(e, 0, &out);
  return out;
}

std::string ScriptToString(const Script& s) {
  std::string out;
  BodyToString(s.stmts, 0, &out);
  return out;
}

ExprPtr CloneExpr(const Expr& e) {
  ExprPtr out = std::make_shared<Expr>(e);
  if (e.lhs) out->lhs = CloneExpr(*e.lhs);
  if (e.rhs) out->rhs = CloneExpr(*e.rhs);
  if (e.child) out->child = CloneExpr(*e.child);
  out->args.clear();
  for (const ExprPtr& a : e.args) out->args.push_back(CloneExpr(*a));
  return out;
}

}  // namespace caldb
