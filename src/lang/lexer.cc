#include "lang/lexer.h"

#include <cctype>

#include "common/macros.h"
#include "obs/obs.h"

namespace caldb {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDotDot:
      return "'..'";
    case TokenKind::kLess:
      return "'<'";
    case TokenKind::kLessEq:
      return "'<='";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kIf:
      return "'if'";
    case TokenKind::kElse:
      return "'else'";
    case TokenKind::kWhile:
      return "'while'";
    case TokenKind::kReturn:
      return "'return'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      CALDB_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (AtEnd()) {
        tok.kind = TokenKind::kEnd;
        tokens.push_back(tok);
        return tokens;
      }
      const char c = Peek();
      if (IsIdentStart(c)) {
        tok.kind = TokenKind::kIdent;
        tok.text = LexIdentifier();
        if (tok.text == "if") tok.kind = TokenKind::kIf;
        else if (tok.text == "else") tok.kind = TokenKind::kElse;
        else if (tok.text == "while") tok.kind = TokenKind::kWhile;
        else if (tok.text == "return") tok.kind = TokenKind::kReturn;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        tok.kind = TokenKind::kInt;
        int64_t v = 0;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          v = v * 10 + (Peek() - '0');
          Advance();
        }
        tok.int_value = v;
      } else if (c == '"') {
        Advance();
        tok.kind = TokenKind::kString;
        while (!AtEnd() && Peek() != '"') {
          tok.text.push_back(Peek());
          Advance();
        }
        if (AtEnd()) {
          return Status::ParseError("unterminated string literal at line " +
                                    std::to_string(tok.line));
        }
        Advance();  // closing quote
      } else {
        switch (c) {
          case '{': tok.kind = TokenKind::kLBrace; Advance(); break;
          case '}': tok.kind = TokenKind::kRBrace; Advance(); break;
          case '(': tok.kind = TokenKind::kLParen; Advance(); break;
          case ')': tok.kind = TokenKind::kRParen; Advance(); break;
          case '[': tok.kind = TokenKind::kLBracket; Advance(); break;
          case ']': tok.kind = TokenKind::kRBracket; Advance(); break;
          case ',': tok.kind = TokenKind::kComma; Advance(); break;
          case ';': tok.kind = TokenKind::kSemicolon; Advance(); break;
          case '=': tok.kind = TokenKind::kAssign; Advance(); break;
          case '+': tok.kind = TokenKind::kPlus; Advance(); break;
          case '-': tok.kind = TokenKind::kMinus; Advance(); break;
          case '/': tok.kind = TokenKind::kSlash; Advance(); break;
          case ':': tok.kind = TokenKind::kColon; Advance(); break;
          case '*': tok.kind = TokenKind::kStar; Advance(); break;
          case '.':
            Advance();
            if (!AtEnd() && Peek() == '.') {
              tok.kind = TokenKind::kDotDot;
              Advance();
            } else {
              tok.kind = TokenKind::kDot;
            }
            break;
          case '<':
            Advance();
            if (!AtEnd() && Peek() == '=') {
              tok.kind = TokenKind::kLessEq;
              Advance();
            } else {
              tok.kind = TokenKind::kLess;
            }
            break;
          default:
            return Status::ParseError(std::string("unexpected character '") + c +
                                      "' at line " + std::to_string(line_) +
                                      ", column " + std::to_string(column_));
        }
      }
      tokens.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  std::string LexIdentifier() {
    std::string out;
    while (!AtEnd()) {
      const char c = Peek();
      if (IsIdentChar(c)) {
        out.push_back(c);
        Advance();
      } else if (c == '-' && IsIdentChar(PeekAt(1))) {
        // Hyphen fused into the identifier (Jan-1993, EMP-DAYS).
        out.push_back(c);
        Advance();
      } else {
        break;
      }
    }
    return out;
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && PeekAt(1) == '*') {
        const int start_line = line_;
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && PeekAt(1) == '/')) Advance();
        if (AtEnd()) {
          return Status::ParseError("unterminated comment starting at line " +
                                    std::to_string(start_line));
        }
        Advance();
        Advance();
      } else if (c == '/' && PeekAt(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  static obs::Counter* calls = obs::Metrics().counter("caldb.lang.lex.calls");
  static obs::Counter* tokens = obs::Metrics().counter("caldb.lang.lex.tokens");
  calls->Increment();
  Result<std::vector<Token>> result = LexerImpl(source).Run();
  if (result.ok()) tokens->Add(static_cast<int64_t>(result->size()));
  return result;
}

}  // namespace caldb
