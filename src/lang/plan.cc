#include "lang/plan.h"

namespace caldb {

std::string_view PlanOpCodeName(PlanOpCode op) {
  switch (op) {
    case PlanOpCode::kGenerate:
      return "GENERATE";
    case PlanOpCode::kLoadValues:
      return "LOAD_VALUES";
    case PlanOpCode::kInvoke:
      return "INVOKE";
    case PlanOpCode::kToday:
      return "TODAY";
    case PlanOpCode::kLiteral:
      return "LITERAL";
    case PlanOpCode::kYearSelect:
      return "YEAR_SELECT";
    case PlanOpCode::kGenerateSpan:
      return "GENERATE_SPAN";
    case PlanOpCode::kForEach:
      return "FOREACH";
    case PlanOpCode::kSelect:
      return "SELECT";
    case PlanOpCode::kUnion:
      return "UNION";
    case PlanOpCode::kDifference:
      return "DIFFERENCE";
    case PlanOpCode::kCalOperate:
      return "CALOPERATE";
    case PlanOpCode::kCopy:
      return "COPY";
    case PlanOpCode::kReturn:
      return "RETURN";
    case PlanOpCode::kReturnString:
      return "RETURN_STRING";
    case PlanOpCode::kIf:
      return "IF";
    case PlanOpCode::kWhile:
      return "WHILE";
  }
  return "?";
}

namespace {

std::string HintToString(const WindowHint& hint) {
  switch (hint.mode) {
    case WindowHint::Mode::kNone:
      return "";
    case WindowHint::Mode::kSpan:
      return " window=span(r" + std::to_string(hint.reg) + ")";
    case WindowHint::Mode::kBefore:
      return " window=before(r" + std::to_string(hint.reg) + ")";
  }
  return "";
}

std::string ProfileSuffix(const StepProfile* profile, const PlanStep& s) {
  if (profile == nullptr) return "";
  const StepProfile::Node* node = profile->Find(s);
  if (node == nullptr || node->execs == 0) return "  [not executed]";
  // Sub-microsecond times render with one decimal ("0.3us").
  int64_t tenths = node->total_ns / 100;
  return "  [execs=" + std::to_string(node->execs) + " time=" +
         std::to_string(tenths / 10) + "." + std::to_string(tenths % 10) +
         "us out=" + std::to_string(node->out_intervals) + "]";
}

void StepsToString(const std::vector<PlanStep>& steps, int depth,
                   const StepProfile* profile, std::string* out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  for (const PlanStep& s : steps) {
    *out += indent;
    switch (s.op) {
      case PlanOpCode::kGenerate:
        *out += "r" + std::to_string(s.dst) + " = GENERATE " +
                std::string(GranularityName(s.gran_arg)) + HintToString(s.hint);
        break;
      case PlanOpCode::kLoadValues:
        *out += "r" + std::to_string(s.dst) + " = LOAD_VALUES " + s.name +
                HintToString(s.hint);
        break;
      case PlanOpCode::kInvoke:
        *out += "r" + std::to_string(s.dst) + " = INVOKE " + s.name +
                HintToString(s.hint);
        break;
      case PlanOpCode::kToday:
        *out += "r" + std::to_string(s.dst) + " = TODAY";
        break;
      case PlanOpCode::kLiteral:
        *out += "r" + std::to_string(s.dst) + " = LITERAL " + s.literal.ToString();
        break;
      case PlanOpCode::kYearSelect:
        *out += "r" + std::to_string(s.dst) + " = YEAR " + std::to_string(s.year);
        break;
      case PlanOpCode::kGenerateSpan:
        *out += "r" + std::to_string(s.dst) + " = GENERATE " +
                std::string(GranularityName(s.gran_arg)) + " in " +
                std::string(GranularityName(s.unit_arg)) + " [" + s.civil_start +
                ", " + s.civil_end + "]";
        break;
      case PlanOpCode::kForEach:
        *out += "r" + std::to_string(s.dst) + " = FOREACH r" +
                std::to_string(s.lhs) + (s.strict ? " :" : " .") +
                std::string(ListOpName(s.listop)) + (s.strict ? ": r" : ". r") +
                std::to_string(s.rhs);
        break;
      case PlanOpCode::kSelect: {
        *out += "r" + std::to_string(s.dst) + " = SELECT [";
        for (size_t i = 0; i < s.selection.size(); ++i) {
          if (i > 0) *out += ",";
          const SelectionItem& it = s.selection[i];
          switch (it.kind) {
            case SelectionItem::Kind::kIndex:
              *out += std::to_string(it.index);
              break;
            case SelectionItem::Kind::kLast:
              *out += "n";
              break;
            case SelectionItem::Kind::kRange:
              *out += std::to_string(it.range_lo) + ".." +
                      (it.range_hi == SelectionItem::kLastMarker
                           ? "n"
                           : std::to_string(it.range_hi));
              break;
          }
        }
        *out += "] r" + std::to_string(s.lhs);
        break;
      }
      case PlanOpCode::kUnion:
        *out += "r" + std::to_string(s.dst) + " = r" + std::to_string(s.lhs) +
                " + r" + std::to_string(s.rhs);
        break;
      case PlanOpCode::kDifference:
        *out += "r" + std::to_string(s.dst) + " = r" + std::to_string(s.lhs) +
                " - r" + std::to_string(s.rhs);
        break;
      case PlanOpCode::kCalOperate: {
        *out += "r" + std::to_string(s.dst) + " = CALOPERATE r" +
                std::to_string(s.lhs) + " te=";
        *out += s.te.has_value() ? std::to_string(*s.te) : "*";
        *out += " groups=(";
        for (size_t i = 0; i < s.groups.size(); ++i) {
          if (i > 0) *out += ";";
          *out += std::to_string(s.groups[i]);
        }
        *out += ")";
        break;
      }
      case PlanOpCode::kCopy:
        *out += "r" + std::to_string(s.dst) + " = r" + std::to_string(s.lhs);
        break;
      case PlanOpCode::kReturn:
        *out += "RETURN r" + std::to_string(s.lhs);
        break;
      case PlanOpCode::kReturnString:
        *out += "RETURN \"" + s.name + "\"";
        break;
      case PlanOpCode::kIf:
        *out += "IF cond(r" + std::to_string(s.lhs) + "):" +
                ProfileSuffix(profile, s) + "\n";
        StepsToString(s.cond_steps, depth + 1, profile, out);
        *out += indent + "THEN:\n";
        StepsToString(s.body_steps, depth + 1, profile, out);
        if (!s.else_steps.empty()) {
          *out += indent + "ELSE:\n";
          StepsToString(s.else_steps, depth + 1, profile, out);
        }
        continue;
      case PlanOpCode::kWhile:
        *out += "WHILE cond(r" + std::to_string(s.lhs) + "):" +
                ProfileSuffix(profile, s) + "\n";
        StepsToString(s.cond_steps, depth + 1, profile, out);
        *out += indent + "DO:\n";
        StepsToString(s.body_steps, depth + 1, profile, out);
        continue;
    }
    *out += ProfileSuffix(profile, s);
    *out += "\n";
  }
}

}  // namespace

std::string Plan::ToString(const StepProfile* profile) const {
  std::string out = "plan unit=" + std::string(GranularityName(unit)) +
                    " registers=" + std::to_string(num_registers) + "\n";
  StepsToString(steps, 0, profile, &out);
  return out;
}

}  // namespace caldb
