#include "lang/parser.h"

#include "common/macros.h"
#include "obs/obs.h"
#include "lang/lexer.h"

namespace caldb {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> ParseScriptTop() {
    Script script;
    while (!Check(TokenKind::kEnd)) {
      CALDB_ASSIGN_OR_RETURN(Stmt stmt, ParseStmt());
      script.stmts.push_back(std::move(stmt));
    }
    if (script.stmts.empty()) {
      return Status::ParseError("empty calendar script");
    }
    return script;
  }

  Result<ExprPtr> ParseExprTop() {
    CALDB_ASSIGN_OR_RETURN(ExprPtr e, ParseAddExpr());
    if (!Check(TokenKind::kEnd)) {
      return Unexpected("end of expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind k, size_t ahead = 0) const { return Peek(ahead).kind == k; }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenKind k) {
    if (!Check(k)) return false;
    Advance();
    return true;
  }

  Status Unexpected(std::string_view wanted) const {
    const Token& t = Peek();
    return Status::ParseError("expected " + std::string(wanted) + " but found " +
                              std::string(TokenKindName(t.kind)) +
                              (t.kind == TokenKind::kIdent ? " '" + t.text + "'" : "") +
                              " at line " + std::to_string(t.line) + ", column " +
                              std::to_string(t.column));
  }

  Status Expect(TokenKind k) {
    if (Match(k)) return Status::OK();
    return Unexpected(std::string(TokenKindName(k)));
  }

  // --- statements -----------------------------------------------------------

  Result<Stmt> ParseStmt() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kLBrace) return ParseBlock();
    if (t.kind == TokenKind::kIf) return ParseIf();
    if (t.kind == TokenKind::kWhile) return ParseWhile();
    if (t.kind == TokenKind::kReturn) return ParseReturn();
    if (t.kind == TokenKind::kIdent && Check(TokenKind::kAssign, 1)) {
      return ParseAssign();
    }
    // Expression statement: treated as an implicit return (lets bare
    // derivation expressions like "[2]/DAYS:during:WEEKS" parse as scripts).
    Stmt stmt;
    stmt.kind = Stmt::Kind::kReturn;
    stmt.line = t.line;
    CALDB_ASSIGN_OR_RETURN(stmt.expr, ParseAddExpr());
    Match(TokenKind::kSemicolon);  // optional for the final expression
    return stmt;
  }

  Result<Stmt> ParseBlock() {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kBlock;
    stmt.line = Peek().line;
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (!Check(TokenKind::kRBrace)) {
      if (Check(TokenKind::kEnd)) return Unexpected("'}'");
      CALDB_ASSIGN_OR_RETURN(Stmt inner, ParseStmt());
      stmt.body.push_back(std::move(inner));
    }
    Advance();  // '}'
    return stmt;
  }

  // A statement body: a block's statements, or a single statement.
  Result<std::vector<Stmt>> ParseBody() {
    if (Check(TokenKind::kLBrace)) {
      CALDB_ASSIGN_OR_RETURN(Stmt block, ParseBlock());
      return std::move(block.body);
    }
    std::vector<Stmt> body;
    CALDB_ASSIGN_OR_RETURN(Stmt stmt, ParseStmt());
    body.push_back(std::move(stmt));
    return body;
  }

  Result<Stmt> ParseIf() {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kIf;
    stmt.line = Peek().line;
    Advance();  // 'if'
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    CALDB_ASSIGN_OR_RETURN(stmt.expr, ParseAddExpr());
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    CALDB_ASSIGN_OR_RETURN(stmt.body, ParseBody());
    if (Match(TokenKind::kElse)) {
      CALDB_ASSIGN_OR_RETURN(stmt.else_body, ParseBody());
    }
    return stmt;
  }

  Result<Stmt> ParseWhile() {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kWhile;
    stmt.line = Peek().line;
    Advance();  // 'while'
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    CALDB_ASSIGN_OR_RETURN(stmt.expr, ParseAddExpr());
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (Match(TokenKind::kSemicolon)) {
      // "while (cond) ;" — the paper's do-nothing wait loop.
      return stmt;
    }
    CALDB_ASSIGN_OR_RETURN(stmt.body, ParseBody());
    return stmt;
  }

  Result<Stmt> ParseReturn() {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kReturn;
    stmt.line = Peek().line;
    Advance();  // 'return'
    // return ("STRING");
    if (Check(TokenKind::kLParen) && Check(TokenKind::kString, 1) &&
        Check(TokenKind::kRParen, 2)) {
      Advance();
      stmt.returns_string = true;
      stmt.str = Advance().text;
      Advance();
      CALDB_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      return stmt;
    }
    CALDB_ASSIGN_OR_RETURN(stmt.expr, ParseAddExpr());
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  Result<Stmt> ParseAssign() {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kAssign;
    stmt.line = Peek().line;
    stmt.var = Advance().text;
    Advance();  // '='
    CALDB_ASSIGN_OR_RETURN(stmt.expr, ParseAddExpr());
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  // --- expressions ----------------------------------------------------------

  // addexpr := calexpr (('+' | '-') calexpr)*   (left-associative)
  Result<ExprPtr> ParseAddExpr() {
    CALDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCalExpr());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const Token& op = Advance();
      CALDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCalExpr());
      ExprPtr node = std::make_shared<Expr>();
      node->kind = Expr::Kind::kSetOp;
      node->line = op.line;
      node->set_op = op.kind == TokenKind::kPlus ? '+' : '-';
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  // calexpr := '[' sel ']' '/' calexpr | INT '/' IDENT
  //          | primary (foreach-op calexpr)?
  // Foreach chains are right-associative (the paper parses right to left),
  // and a selection prefix binds the whole chain to its right.
  Result<ExprPtr> ParseCalExpr() {
    if (Check(TokenKind::kLBracket)) {
      ExprPtr node = std::make_shared<Expr>();
      node->kind = Expr::Kind::kSelect;
      node->line = Peek().line;
      Advance();  // '['
      CALDB_ASSIGN_OR_RETURN(node->selection, ParseSelectionItems());
      CALDB_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      CALDB_RETURN_IF_ERROR(Expect(TokenKind::kSlash));
      CALDB_ASSIGN_OR_RETURN(node->child, ParseCalExpr());
      return node;
    }
    ExprPtr lhs;
    if (Check(TokenKind::kInt) && Check(TokenKind::kSlash, 1)) {
      // 1993/YEARS — selection by civil-year label; chainable like any
      // other head ("1993/YEARS:overlaps:...").
      lhs = std::make_shared<Expr>();
      lhs->kind = Expr::Kind::kYearSelect;
      lhs->line = Peek().line;
      lhs->year = static_cast<int32_t>(Advance().int_value);
      Advance();  // '/'
      if (!Check(TokenKind::kIdent)) return Unexpected("calendar name");
      lhs->name = Advance().text;
    } else {
      CALDB_ASSIGN_OR_RETURN(lhs, ParsePrimary());
    }
    // Optional foreach operator, then the rest of the chain.
    bool strict;
    if (Check(TokenKind::kColon)) {
      strict = true;
    } else if (Check(TokenKind::kDot)) {
      strict = false;
    } else {
      return lhs;
    }
    const TokenKind mark = Peek().kind;
    Advance();  // ':' or '.'
    CALDB_ASSIGN_OR_RETURN(ListOp op, ParseListOpToken());
    if (!Match(mark)) return Unexpected(strict ? "':'" : "'.'");
    CALDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCalExpr());
    ExprPtr node = std::make_shared<Expr>();
    node->kind = Expr::Kind::kForEach;
    node->line = lhs->line;
    node->op = op;
    node->strict = strict;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<ListOp> ParseListOpToken() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kLess) {
      Advance();
      return ListOp::kBefore;
    }
    if (t.kind == TokenKind::kLessEq) {
      Advance();
      return ListOp::kBeforeEq;
    }
    if (t.kind == TokenKind::kIdent) {
      Result<ListOp> op = ParseListOp(t.text);
      if (op.ok()) {
        Advance();
        return op;
      }
      return Status::ParseError("unknown listop '" + t.text + "' at line " +
                                std::to_string(t.line));
    }
    return Unexpected("listop (overlaps/during/meets/</<=/intersects)");
  }

  Result<std::vector<SelectionItem>> ParseSelectionItems() {
    std::vector<SelectionItem> items;
    while (true) {
      CALDB_ASSIGN_OR_RETURN(SelectionItem item, ParseSelectionItem());
      items.push_back(item);
      if (!Match(TokenKind::kComma)) break;
    }
    return items;
  }

  Result<SelectionItem> ParseSelectionItem() {
    if (Check(TokenKind::kIdent) && Peek().text == "n") {
      Advance();
      return SelectionItem::Last();
    }
    if (Match(TokenKind::kMinus)) {
      if (!Check(TokenKind::kInt)) return Unexpected("integer after '-'");
      int64_t v = Advance().int_value;
      if (v == 0) return Status::ParseError("selection index 0 is invalid");
      return SelectionItem::Index(-v);
    }
    if (!Check(TokenKind::kInt)) return Unexpected("selection index");
    int64_t lo = Advance().int_value;
    if (Match(TokenKind::kDotDot)) {
      if (lo <= 0) {
        // `0..n` used to slip through unvalidated and silently select
        // everything; range starts are 1-based like plain indices.
        return Status::ParseError("invalid selection range start " +
                                  std::to_string(lo));
      }
      if (Check(TokenKind::kIdent) && Peek().text == "n") {
        Advance();
        return SelectionItem::Range(lo, SelectionItem::kLastMarker);
      }
      if (!Check(TokenKind::kInt)) return Unexpected("range end");
      int64_t hi = Advance().int_value;
      if (lo <= 0 || hi < lo) {
        return Status::ParseError("invalid selection range " + std::to_string(lo) +
                                  ".." + std::to_string(hi));
      }
      return SelectionItem::Range(lo, hi);
    }
    if (lo == 0) return Status::ParseError("selection index 0 is invalid");
    return SelectionItem::Index(lo);
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kLParen) {
      Advance();
      CALDB_ASSIGN_OR_RETURN(ExprPtr e, ParseAddExpr());
      CALDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return e;
    }
    if (t.kind != TokenKind::kIdent) {
      return Unexpected("calendar expression");
    }
    std::string name = Advance().text;
    if (Check(TokenKind::kLParen)) {
      return ParseCall(std::move(name), t.line);
    }
    if (Check(TokenKind::kLBrace)) {
      return ParseLiteral(std::move(name), t.line);
    }
    ExprPtr node = std::make_shared<Expr>();
    node->kind = Expr::Kind::kIdent;
    node->line = t.line;
    node->name = std::move(name);
    return node;
  }

  Result<ExprPtr> ParseCall(std::string name, int line) {
    ExprPtr node = std::make_shared<Expr>();
    node->kind = Expr::Kind::kCall;
    node->line = line;
    node->name = std::move(name);
    Advance();  // '('
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        if (Check(TokenKind::kStar)) {
          Advance();
          ExprPtr star = std::make_shared<Expr>();
          star->kind = Expr::Kind::kStar;
          node->args.push_back(std::move(star));
        } else if (Check(TokenKind::kInt) && !Check(TokenKind::kSlash, 1)) {
          ExprPtr num = std::make_shared<Expr>();
          num->kind = Expr::Kind::kIntConst;
          num->int_value = Advance().int_value;
          node->args.push_back(std::move(num));
        } else if (Check(TokenKind::kString)) {
          // Civil-date argument, e.g. generate(YEARS, DAYS, "1987-01-01", ...).
          ExprPtr str = std::make_shared<Expr>();
          str->kind = Expr::Kind::kIntConst;
          str->name = Advance().text;
          node->args.push_back(std::move(str));
        } else {
          CALDB_ASSIGN_OR_RETURN(ExprPtr arg, ParseAddExpr());
          node->args.push_back(std::move(arg));
        }
        if (!Match(TokenKind::kComma) && !Match(TokenKind::kSemicolon)) break;
      }
    }
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return node;
  }

  // IDENT '{' (lo, hi), ... '}' — a granularity-tagged interval-list
  // literal, e.g. days{(31,31),(90,90)}.
  Result<ExprPtr> ParseLiteral(std::string gran_name, int line) {
    Result<Granularity> gran = ParseGranularity(gran_name);
    if (!gran.ok()) {
      return Status::ParseError("'" + gran_name +
                                "' is not a granularity; interval literals are "
                                "written like days{(1,5)} (line " +
                                std::to_string(line) + ")");
    }
    Advance();  // '{'
    std::vector<Interval> intervals;
    if (!Check(TokenKind::kRBrace)) {
      while (true) {
        CALDB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        CALDB_ASSIGN_OR_RETURN(int64_t lo, ParseSignedInt());
        CALDB_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        CALDB_ASSIGN_OR_RETURN(int64_t hi, ParseSignedInt());
        CALDB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        CALDB_ASSIGN_OR_RETURN(Interval i, MakeInterval(lo, hi));
        intervals.push_back(i);
        if (!Match(TokenKind::kComma)) break;
      }
    }
    CALDB_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    ExprPtr node = std::make_shared<Expr>();
    node->kind = Expr::Kind::kLiteral;
    node->line = line;
    CALDB_ASSIGN_OR_RETURN(node->literal,
                           Calendar::MakeOrder1(*gran, std::move(intervals)));
    return node;
  }

  Result<int64_t> ParseSignedInt() {
    bool neg = Match(TokenKind::kMinus);
    if (!Check(TokenKind::kInt)) return Unexpected("integer");
    int64_t v = Advance().int_value;
    return neg ? -v : v;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Script> ParseScript(std::string_view source) {
  static obs::Counter* calls =
      obs::Metrics().counter("caldb.lang.parse.calls");
  calls->Increment();
  obs::Tracer::Span span = obs::StartSpan("lang.parse");
  CALDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseScriptTop();
}

Result<ExprPtr> ParseExpression(std::string_view source) {
  static obs::Counter* calls =
      obs::Metrics().counter("caldb.lang.parse.expr_calls");
  calls->Increment();
  CALDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseExprTop();
}

}  // namespace caldb
