#include "lang/evaluator.h"

#include <algorithm>
#include <optional>

#include "common/macros.h"
#include "core/generate.h"
#include "obs/obs.h"
#include "time/civil.h"

namespace caldb {

namespace {

// Registry instruments of the evaluator, resolved once.
struct EvalMetrics {
  obs::Counter* steps = obs::Metrics().counter("caldb.eval.steps");
  obs::Counter* generate_calls =
      obs::Metrics().counter("caldb.eval.generate_calls");
  obs::Counter* intervals_generated =
      obs::Metrics().counter("caldb.eval.intervals_generated");
  obs::Counter* cache_hits =
      obs::Metrics().counter("caldb.eval.gen_cache.hits");
  obs::Counter* cache_covered_hits =
      obs::Metrics().counter("caldb.eval.gen_cache.covered_hits");
  obs::Counter* cache_misses =
      obs::Metrics().counter("caldb.eval.gen_cache.misses");
  obs::Counter* cache_evictions =
      obs::Metrics().counter("caldb.eval.gen_cache.evictions");
  obs::Histogram* run_ns = obs::Metrics().histogram("caldb.eval.run_ns");
};

EvalMetrics& Metrics() {
  static EvalMetrics* metrics = new EvalMetrics();
  return *metrics;
}

}  // namespace

void GenCache::SetBudget(size_t max_entries, size_t max_bytes) {
  max_entries_ = max_entries;
  max_bytes_ = max_bytes;
  EvictPastBudget();
}

void GenCache::Touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

const Calendar* GenCache::Find(const Key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  Touch(it->second);
  return &it->second->value;
}

const Calendar* GenCache::FindCovering(const Key& key) {
  for (auto& [ckey, entry] : index_) {
    if (std::get<0>(ckey) != std::get<0>(key) ||
        std::get<1>(ckey) != std::get<1>(key)) {
      continue;
    }
    if (std::get<2>(ckey) > std::get<2>(key) ||
        std::get<3>(ckey) < std::get<3>(key)) {
      continue;
    }
    Touch(entry);
    return &entry->value;
  }
  return nullptr;
}

void GenCache::Insert(const Key& key, Calendar value) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  Entry entry;
  entry.key = key;
  entry.bytes = static_cast<size_t>(value.TotalIntervals()) * sizeof(Interval) +
                sizeof(Entry);
  entry.value = std::move(value);
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  EvictPastBudget();
}

void GenCache::EvictPastBudget() {
  while (!lru_.empty() &&
         (index_.size() > max_entries_ || bytes_ > max_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    Metrics().cache_evictions->Increment();
  }
}

void GenCache::Clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

Result<Interval> ConvertDayWindow(const TimeSystem& ts, const Interval& days,
                                  Granularity unit) {
  if (unit == Granularity::kDays) return days;
  if (FinerThan(unit, Granularity::kDays)) {
    CALDB_ASSIGN_OR_RETURN(Interval lo,
                           ts.GranuleToUnit(Granularity::kDays, days.lo, unit));
    CALDB_ASSIGN_OR_RETURN(Interval hi,
                           ts.GranuleToUnit(Granularity::kDays, days.hi, unit));
    return Interval{lo.lo, hi.hi};
  }
  CALDB_ASSIGN_OR_RETURN(TimePoint lo, ts.GranuleContaining(unit, days.lo,
                                                            Granularity::kDays));
  CALDB_ASSIGN_OR_RETURN(TimePoint hi, ts.GranuleContaining(unit, days.hi,
                                                            Granularity::kDays));
  return Interval{lo, hi};
}

struct Evaluator::Frame {
  const Plan* plan = nullptr;
  const EvalOptions* opts = nullptr;
  Interval window_unit{1, 1};  // the global window in plan-unit points
  int depth = 0;
  std::vector<std::optional<Calendar>> regs;
};

Result<ScriptValue> Evaluator::Run(const Plan& plan, const EvalOptions& opts,
                                   EvalStats* stats) {
  stats_ = stats;
  // The catalog was redefined since the cache was filled: drop everything.
  // Cheap insurance today (only catalog-independent base generations are
  // cached), load-bearing the moment any catalog-derived value lands in
  // the gen-cache — and it pins the Session-facing guarantee that one
  // session's cache never outlives another session's redefinition.
  if (opts.catalog_version != 0 &&
      opts.catalog_version != gen_cache_version_) {
    gen_cache_.Clear();
    gen_cache_version_ = opts.catalog_version;
  }
  gen_cache_.SetBudget(opts.gen_cache_max_entries, opts.gen_cache_max_bytes);
  obs::ScopedLatency latency(Metrics().run_ns);
  obs::Tracer::Span span = obs::StartSpan("eval.run");
  Result<ScriptValue> result = RunPlan(plan, opts, /*depth=*/0);
  stats_ = nullptr;
  return result;
}

Result<ScriptValue> Evaluator::RunPlan(const Plan& plan,
                                       const EvalOptions& opts, int depth) {
  if (depth > opts.max_invoke_depth) {
    return Status::EvalError("calendar invocation depth exceeds " +
                             std::to_string(opts.max_invoke_depth) +
                             " (cyclic derivation?)");
  }
  Frame frame;
  frame.plan = &plan;
  frame.opts = &opts;
  frame.depth = depth;
  frame.regs.resize(static_cast<size_t>(plan.num_registers));
  CALDB_ASSIGN_OR_RETURN(frame.window_unit,
                         ConvertDayWindow(*ts_, opts.window_days, plan.unit));
  ScriptValue returned;
  bool did_return = false;
  CALDB_RETURN_IF_ERROR(RunSteps(plan.steps, &frame, &returned, &did_return));
  if (!did_return) return ScriptValue::Null();
  return returned;
}

Status Evaluator::RunSteps(const std::vector<PlanStep>& steps, Frame* frame,
                           ScriptValue* returned, bool* did_return) {
  for (const PlanStep& step : steps) {
    CALDB_RETURN_IF_ERROR(RunStep(step, frame, returned, did_return));
    if (*did_return) return Status::OK();
  }
  return Status::OK();
}

Result<Calendar> Evaluator::ReadReg(const Frame& frame, int reg,
                                    int /*line_hint*/) const {
  if (reg < 0 || static_cast<size_t>(reg) >= frame.regs.size()) {
    return Status::Internal("plan references register r" + std::to_string(reg) +
                            " out of range");
  }
  if (!frame.regs[static_cast<size_t>(reg)].has_value()) {
    return Status::EvalError("variable read before assignment (register r" +
                             std::to_string(reg) + ")");
  }
  return *frame.regs[static_cast<size_t>(reg)];
}

Result<Interval> Evaluator::WindowFor(const PlanStep& step,
                                      const Frame& frame) const {
  if (!frame.opts->use_window_hints) return frame.window_unit;
  // Window hints realize the §3.4 look-ahead: a calendar being compared
  // against an already evaluated operand is generated over that operand's
  // actual span (which may extend past the global window where a coarse
  // granule overlaps its edge — that is what keeps positional selections
  // like [2]/DAYS:during:WEEKS meaningful for the boundary week).
  switch (step.hint.mode) {
    case WindowHint::Mode::kNone:
      return frame.window_unit;
    case WindowHint::Mode::kSpan: {
      CALDB_ASSIGN_OR_RETURN(Calendar bound, ReadReg(frame, step.hint.reg, 0));
      std::optional<Interval> span = bound.Span();
      if (!span) return Status::NotFound("empty window");  // nothing to generate
      return *span;
    }
    case WindowHint::Mode::kBefore: {
      CALDB_ASSIGN_OR_RETURN(Calendar bound, ReadReg(frame, step.hint.reg, 0));
      std::optional<Interval> span = bound.Span();
      if (!span) return Status::NotFound("empty window");
      TimePoint lo = std::min(frame.window_unit.lo, span->hi);
      return Interval{lo, span->hi};
    }
  }
  return Status::Internal("unknown window-hint mode");
}

Status Evaluator::RunStep(const PlanStep& step, Frame* frame,
                          ScriptValue* returned, bool* did_return) {
  if (stats_ != nullptr) ++stats_->steps_executed;
  Metrics().steps->Increment();
  StepProfile* profile = frame->opts->profile;
  if (profile == nullptr) {
    return RunStepImpl(step, frame, returned, did_return);
  }
  const int64_t start_ns = obs::NowNs();
  Status status = RunStepImpl(step, frame, returned, did_return);
  StepProfile::Node& node = profile->NodeFor(step);
  ++node.execs;
  node.total_ns += obs::NowNs() - start_ns;
  if (status.ok() && step.dst >= 0 &&
      static_cast<size_t>(step.dst) < frame->regs.size() &&
      frame->regs[static_cast<size_t>(step.dst)].has_value()) {
    node.out_intervals =
        frame->regs[static_cast<size_t>(step.dst)]->TotalIntervals();
  }
  return status;
}

Status Evaluator::RunStepImpl(const PlanStep& step, Frame* frame,
                              ScriptValue* returned, bool* did_return) {
  const Granularity unit = frame->plan->unit;
  auto set = [frame](int reg, Calendar value) {
    frame->regs[static_cast<size_t>(reg)] = std::move(value);
  };

  switch (step.op) {
    case PlanOpCode::kGenerate: {
      Result<Interval> window = WindowFor(step, *frame);
      if (!window.ok()) {
        if (window.status().code() == StatusCode::kNotFound) {
          set(step.dst, Calendar::Order1(unit, {}));
          return Status::OK();
        }
        return window.status();
      }
      const GenCache::Key key(static_cast<int>(step.gran_arg),
                              static_cast<int>(unit), window->lo, window->hi);
      if (const Calendar* cached = gen_cache_.Find(key)) {
        // Exact hit: a shared-rep handle copy, O(1) in the interval count.
        if (stats_ != nullptr) ++stats_->cache_hits;
        Metrics().cache_hits->Increment();
        set(step.dst, *cached);
        return Status::OK();
      }
      // No exact entry — reuse any cached window covering the request.
      // Generation over W materializes exactly the granules overlapping W,
      // so slicing a covering entry with a relaxed-overlaps sweep is
      // bit-identical to generating afresh (the cache stays coherent
      // without storing per-slice copies).
      if (const Calendar* covering = gen_cache_.FindCovering(key)) {
        CALDB_ASSIGN_OR_RETURN(
            Calendar sliced,
            ForEachInterval(*covering, ListOp::kOverlaps, *window,
                            /*strict=*/false));
        if (stats_ != nullptr) ++stats_->cache_hits;
        Metrics().cache_covered_hits->Increment();
        set(step.dst, std::move(sliced));
        return Status::OK();
      }
      Metrics().cache_misses->Increment();
      CALDB_ASSIGN_OR_RETURN(
          Calendar generated,
          GenerateBaseCalendar(*ts_, step.gran_arg, unit, *window,
                               /*clip=*/false));
      if (stats_ != nullptr) {
        ++stats_->generate_calls;
        stats_->intervals_generated += generated.TotalIntervals();
      }
      Metrics().generate_calls->Increment();
      Metrics().intervals_generated->Add(generated.TotalIntervals());
      gen_cache_.Insert(key, generated);
      set(step.dst, std::move(generated));
      return Status::OK();
    }

    case PlanOpCode::kLoadValues: {
      if (source_ == nullptr) {
        return Status::EvalError("no calendar source to load '" + step.name +
                                 "' from");
      }
      CALDB_ASSIGN_OR_RETURN(ResolvedCalendar resolved,
                             source_->Resolve(step.name));
      if (resolved.kind != ResolvedCalendar::Kind::kValues) {
        return Status::EvalError("calendar '" + step.name +
                                 "' is not a value calendar");
      }
      CALDB_ASSIGN_OR_RETURN(Calendar values,
                             Rescale(*ts_, resolved.values, unit));
      Result<Interval> window = WindowFor(step, *frame);
      if (!window.ok()) {
        if (window.status().code() == StatusCode::kNotFound) {
          set(step.dst, Calendar::Order1(unit, {}));
          return Status::OK();
        }
        return window.status();
      }
      // Keep whole stored elements overlapping the window.
      CALDB_ASSIGN_OR_RETURN(
          Calendar filtered,
          ForEachInterval(values, ListOp::kOverlaps, *window, /*strict=*/false));
      set(step.dst, std::move(filtered));
      return Status::OK();
    }

    case PlanOpCode::kInvoke: {
      if (source_ == nullptr) {
        return Status::EvalError("no calendar source to invoke '" + step.name +
                                 "'");
      }
      CALDB_ASSIGN_OR_RETURN(ResolvedCalendar resolved,
                             source_->Resolve(step.name));
      if (resolved.kind != ResolvedCalendar::Kind::kDerived ||
          resolved.plan == nullptr) {
        return Status::EvalError("calendar '" + step.name +
                                 "' has no evaluation plan");
      }
      EvalOptions inner_opts = *frame->opts;
      Result<Interval> window = WindowFor(step, *frame);
      if (window.ok()) {
        // Convert the window back to DAYS for the nested evaluation.
        if (unit == Granularity::kDays) {
          inner_opts.window_days = *window;
        } else if (FinerThan(unit, Granularity::kDays)) {
          CALDB_ASSIGN_OR_RETURN(
              TimePoint lo,
              ts_->GranuleContaining(Granularity::kDays, window->lo, unit));
          CALDB_ASSIGN_OR_RETURN(
              TimePoint hi,
              ts_->GranuleContaining(Granularity::kDays, window->hi, unit));
          inner_opts.window_days = Interval{lo, hi};
        } else {
          CALDB_ASSIGN_OR_RETURN(
              Interval lo, ts_->GranuleToUnit(unit, window->lo, Granularity::kDays));
          CALDB_ASSIGN_OR_RETURN(
              Interval hi, ts_->GranuleToUnit(unit, window->hi, Granularity::kDays));
          inner_opts.window_days = Interval{lo.lo, hi.hi};
        }
      } else if (window.status().code() == StatusCode::kNotFound) {
        set(step.dst, Calendar::Order1(unit, {}));
        return Status::OK();
      } else {
        return window.status();
      }
      CALDB_ASSIGN_OR_RETURN(
          ScriptValue value,
          RunPlan(*resolved.plan, inner_opts, frame->depth + 1));
      if (value.kind == ScriptValue::Kind::kNull) {
        set(step.dst, Calendar::Order1(unit, {}));
        return Status::OK();
      }
      if (value.kind != ScriptValue::Kind::kCalendar) {
        return Status::EvalError("derived calendar '" + step.name +
                                 "' returned a non-calendar value");
      }
      CALDB_ASSIGN_OR_RETURN(Calendar rescaled,
                             Rescale(*ts_, value.calendar, unit));
      set(step.dst, std::move(rescaled));
      return Status::OK();
    }

    case PlanOpCode::kToday: {
      const TimePoint today = frame->opts->today_day;
      if (FinerThan(unit, Granularity::kDays) || unit == Granularity::kDays) {
        CALDB_ASSIGN_OR_RETURN(Interval i,
                               ts_->GranuleToUnit(Granularity::kDays, today, unit));
        set(step.dst, Calendar::Singleton(unit, i));
      } else {
        CALDB_ASSIGN_OR_RETURN(
            TimePoint p, ts_->GranuleContaining(unit, today, Granularity::kDays));
        set(step.dst, Calendar::Singleton(unit, PointInterval(p)));
      }
      return Status::OK();
    }

    case PlanOpCode::kLiteral: {
      CALDB_ASSIGN_OR_RETURN(Calendar value, Rescale(*ts_, step.literal, unit));
      set(step.dst, std::move(value));
      return Status::OK();
    }

    case PlanOpCode::kYearSelect: {
      CALDB_ASSIGN_OR_RETURN(
          Interval i,
          ts_->GranuleToUnit(Granularity::kYears, ts_->YearIndex(step.year), unit));
      set(step.dst, Calendar::Singleton(unit, i));
      return Status::OK();
    }

    case PlanOpCode::kGenerateSpan: {
      CALDB_ASSIGN_OR_RETURN(CivilDate start, ParseCivil(step.civil_start));
      CALDB_ASSIGN_OR_RETURN(CivilDate end, ParseCivil(step.civil_end));
      CALDB_ASSIGN_OR_RETURN(Interval days, ts_->DayIntervalFromCivil(start, end));
      CALDB_ASSIGN_OR_RETURN(Interval span,
                             ConvertDayWindow(*ts_, days, step.unit_arg));
      CALDB_ASSIGN_OR_RETURN(
          Calendar generated,
          GenerateBaseCalendar(*ts_, step.gran_arg, step.unit_arg, span,
                               /*clip=*/true));
      if (stats_ != nullptr) {
        ++stats_->generate_calls;
        stats_->intervals_generated += generated.TotalIntervals();
      }
      Metrics().generate_calls->Increment();
      Metrics().intervals_generated->Add(generated.TotalIntervals());
      CALDB_ASSIGN_OR_RETURN(Calendar value, Rescale(*ts_, generated, unit));
      set(step.dst, std::move(value));
      return Status::OK();
    }

    case PlanOpCode::kForEach: {
      CALDB_ASSIGN_OR_RETURN(Calendar lhs, ReadReg(*frame, step.lhs, 0));
      CALDB_ASSIGN_OR_RETURN(Calendar rhs, ReadReg(*frame, step.rhs, 0));
      CALDB_ASSIGN_OR_RETURN(Calendar value,
                             ForEach(lhs, step.listop, rhs, step.strict));
      set(step.dst, std::move(value));
      return Status::OK();
    }

    case PlanOpCode::kSelect: {
      CALDB_ASSIGN_OR_RETURN(Calendar src, ReadReg(*frame, step.lhs, 0));
      CALDB_ASSIGN_OR_RETURN(Calendar value, Select(step.selection, src));
      set(step.dst, std::move(value));
      return Status::OK();
    }

    case PlanOpCode::kUnion:
    case PlanOpCode::kDifference: {
      CALDB_ASSIGN_OR_RETURN(Calendar lhs, ReadReg(*frame, step.lhs, 0));
      CALDB_ASSIGN_OR_RETURN(Calendar rhs, ReadReg(*frame, step.rhs, 0));
      Result<Calendar> value = step.op == PlanOpCode::kUnion
                                   ? Union(lhs, rhs)
                                   : Difference(lhs, rhs);
      CALDB_RETURN_IF_ERROR(value.status());
      set(step.dst, std::move(value).value());
      return Status::OK();
    }

    case PlanOpCode::kCalOperate: {
      CALDB_ASSIGN_OR_RETURN(Calendar src, ReadReg(*frame, step.lhs, 0));
      std::optional<TimePoint> te;
      if (step.te.has_value()) te = *step.te;
      CALDB_ASSIGN_OR_RETURN(Calendar value, CalOperate(src, te, step.groups));
      set(step.dst, std::move(value));
      return Status::OK();
    }

    case PlanOpCode::kCopy: {
      CALDB_ASSIGN_OR_RETURN(Calendar value, ReadReg(*frame, step.lhs, 0));
      set(step.dst, std::move(value));
      return Status::OK();
    }

    case PlanOpCode::kReturn: {
      CALDB_ASSIGN_OR_RETURN(Calendar value, ReadReg(*frame, step.lhs, 0));
      *returned = value.IsNull() ? ScriptValue::Null()
                                 : ScriptValue::Of(std::move(value));
      *did_return = true;
      return Status::OK();
    }

    case PlanOpCode::kReturnString: {
      *returned = ScriptValue::Of(step.name);
      *did_return = true;
      return Status::OK();
    }

    case PlanOpCode::kIf: {
      CALDB_RETURN_IF_ERROR(RunSteps(step.cond_steps, frame, returned, did_return));
      if (*did_return) return Status::OK();
      CALDB_ASSIGN_OR_RETURN(Calendar cond, ReadReg(*frame, step.lhs, 0));
      const std::vector<PlanStep>& branch =
          cond.IsNull() ? step.else_steps : step.body_steps;
      return RunSteps(branch, frame, returned, did_return);
    }

    case PlanOpCode::kWhile: {
      for (int64_t iter = 0;; ++iter) {
        if (iter >= frame->opts->max_loop_iterations) {
          return Status::EvalError("while loop exceeded " +
                                   std::to_string(frame->opts->max_loop_iterations) +
                                   " iterations");
        }
        CALDB_RETURN_IF_ERROR(
            RunSteps(step.cond_steps, frame, returned, did_return));
        if (*did_return) return Status::OK();
        CALDB_ASSIGN_OR_RETURN(Calendar cond, ReadReg(*frame, step.lhs, 0));
        if (cond.IsNull()) return Status::OK();
        if (step.body_steps.empty()) {
          // The paper's "while (today:<:temp2) ;" busy-wait: the script is
          // blocked until the condition turns false.
          *returned = ScriptValue::Blocked();
          *did_return = true;
          return Status::OK();
        }
        CALDB_RETURN_IF_ERROR(
            RunSteps(step.body_steps, frame, returned, did_return));
        if (*did_return) return Status::OK();
      }
    }
  }
  return Status::Internal("unknown plan opcode");
}

}  // namespace caldb
