// Tokens of the calendar expression language (§3.3).

#ifndef CALDB_LANG_TOKEN_H_
#define CALDB_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace caldb {

enum class TokenKind {
  kIdent,      // Tuesdays, AM_BUS_DAYS, Jan-1993 (hyphens join identifiers)
  kInt,        // 1993
  kString,     // "LAST TRADING DAY"
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kComma,      // ,
  kSemicolon,  // ;
  kAssign,     // =
  kPlus,       // +
  kMinus,      // -
  kSlash,      // /
  kColon,      // :
  kDot,        // .
  kDotDot,     // ..
  kLess,       // <   (the < listop)
  kLessEq,     // <=  (the <= listop)
  kStar,       // *   (caloperate's unbounded end time)
  kIf,
  kElse,
  kWhile,
  kReturn,
  kEnd,        // end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier spelling / string contents
  int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

/// Human-readable token-kind name for diagnostics.
std::string_view TokenKindName(TokenKind kind);

}  // namespace caldb

#endif  // CALDB_LANG_TOKEN_H_
