// AST of the calendar expression language (§3.3).
//
// Grammar (right-associative foreach chains; selection binds the whole
// chain to its right, as in the paper's "[3]/WEEKS:overlaps:Jan-1993"):
//
//   script   := stmt*
//   stmt     := IDENT '=' addexpr ';'
//             | 'if' '(' addexpr ')' block ('else' block)?
//             | 'while' '(' addexpr ')' (stmt | ';')
//             | 'return' addexpr ';' | 'return' '(' STRING ')' ';'
//             | '{' stmt* '}'
//   addexpr  := calexpr (('+' | '-') calexpr)*
//   calexpr  := '[' selitem (',' selitem)* ']' '/' calexpr
//             | INT '/' IDENT                     // 1993/YEARS
//             | primary ((':' op ':' | '.' op '.') calexpr)?
//   primary  := IDENT | IDENT '(' args ')' | IDENT '{' intervals '}'
//             | '(' addexpr ')'
//   op       := IDENT | '<' | '<='
//   selitem  := INT | '-' INT | 'n' | INT '..' (INT | 'n')

#ifndef CALDB_LANG_AST_H_
#define CALDB_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/algebra.h"
#include "core/calendar.h"
#include "core/interval.h"
#include "time/granularity.h"

namespace caldb {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// How the analyzer classified an identifier leaf.
enum class IdentClass {
  kUnresolved,
  kBaseCalendar,     // SECONDS..CENTURY
  kDerivedCalendar,  // multi-statement derivation, invoked at runtime
  kValueCalendar,    // explicit stored values
  kVariable,         // script-local temporary
  kToday,            // the runtime's current time point
};

struct Expr {
  enum class Kind {
    kIdent,       // calendar or variable reference
    kLiteral,     // days{(31,31),(90,90)}
    kYearSelect,  // 1993/YEARS
    kForEach,     // lhs :op: rhs  /  lhs .op. rhs
    kSelect,      // [items]/child
    kSetOp,       // lhs + rhs / lhs - rhs
    kCall,        // caloperate(...)
    kIntConst,    // bare integer argument inside a call
    kStar,        // '*' argument inside a call (unbounded end time)
  };

  Kind kind = Kind::kIdent;
  int line = 0;

  // kIdent (name), kCall (callee name).
  std::string name;
  // kLiteral.
  Calendar literal;
  // kYearSelect.
  int32_t year = 0;
  // kForEach.
  ListOp op = ListOp::kDuring;
  bool strict = true;
  ExprPtr lhs;
  ExprPtr rhs;
  // kSelect.
  std::vector<SelectionItem> selection;
  ExprPtr child;
  // kSetOp: '+' or '-'.
  char set_op = '+';
  // kCall: ordered arguments (kIntConst / kStar nodes for scalar args).
  std::vector<ExprPtr> args;
  // kIntConst.
  int64_t int_value = 0;

  // --- analysis annotations (filled by Analyzer) ---
  IdentClass ident_class = IdentClass::kUnresolved;
  // The node's *semantic* granularity (the paper's factorization rule
  // compares these), independent of the unit evaluation happens in.
  Granularity sem_granularity = Granularity::kDays;
};

struct Stmt {
  enum class Kind { kAssign, kIf, kWhile, kReturn, kBlock };

  Kind kind = Kind::kAssign;
  int line = 0;

  std::string var;   // kAssign target
  ExprPtr expr;      // kAssign value / kIf,kWhile condition / kReturn value
  bool returns_string = false;
  std::string str;   // kReturn string payload

  std::vector<Stmt> body;       // kIf then / kWhile body / kBlock
  std::vector<Stmt> else_body;  // kIf else
};

struct Script {
  std::vector<Stmt> stmts;

  // --- analysis annotations ---
  // The smallest time unit appearing in the script (§3.4): evaluation
  // expresses every calendar in this unit.
  Granularity unit = Granularity::kDays;
  // Calendar names referenced more than once (generated once and cached).
  std::vector<std::string> repeated_calendars;
};

/// Pretty-prints an expression in the paper's surface syntax.
std::string ExprToString(const Expr& e);

/// Pretty-prints a parse tree, one node per line (Figures 2 and 3).
std::string ExprTreeToString(const Expr& e);

/// Pretty-prints a whole script.
std::string ScriptToString(const Script& s);

/// Deep-copies an expression tree.
ExprPtr CloneExpr(const Expr& e);

}  // namespace caldb

#endif  // CALDB_LANG_AST_H_
