// Semantic analysis of calendar scripts (§3.4, steps 1 and 4 of the
// parsing algorithm):
//  - resolve identifiers (base calendar / derived calendar / stored values /
//    script variable / `today`);
//  - inline single-expression derived calendars ("when a derived calendar
//    is encountered, replace it by its derivation script");
//  - annotate every node with its semantic granularity (needed by the
//    factorization rule);
//  - determine the smallest time unit of the script;
//  - mark calendars referenced more than once.

#ifndef CALDB_LANG_ANALYZER_H_
#define CALDB_LANG_ANALYZER_H_

#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "lang/ast.h"
#include "lang/calendar_source.h"

namespace caldb {

class Analyzer {
 public:
  /// `source` may be null (only base calendars, literals, variables and
  /// `today` resolve then).  Does not take ownership.
  explicit Analyzer(const CalendarSource* source) : source_(source) {}

  /// Annotates the script in place.  Statement order defines variable
  /// visibility; derivation cycles are reported as errors.
  Status AnalyzeScript(Script* script);

 private:
  struct Scope;

  Status AnalyzeBody(std::vector<Stmt>* body, Scope* scope);
  Status AnalyzeStmt(Stmt* stmt, Scope* scope);
  Status AnalyzeExpr(ExprPtr* node, Scope* scope);
  Status ResolveIdent(ExprPtr* node, Scope* scope);
  Status AnalyzeCall(Expr* node, Scope* scope);

  void RecordLeaf(Granularity g);

  const CalendarSource* source_;
  std::set<std::string> inlining_;  // cycle detection
  // Per-script accumulators.  The smallest unit must be able to *express*
  // every leaf calendar exactly (§3.4); weeks cannot express months or
  // coarser units, so mixing them forces the unit down to days.
  Granularity finest_ = Granularity::kCenturies;
  bool has_weeks_leaf_ = false;
  bool has_coarser_than_weeks_leaf_ = false;
  std::map<std::string, int> calendar_refs_;
};

}  // namespace caldb

#endif  // CALDB_LANG_ANALYZER_H_
