// Recursive-descent parser for calendar scripts and expressions (§3.3-3.4).

#ifndef CALDB_LANG_PARSER_H_
#define CALDB_LANG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "lang/ast.h"

namespace caldb {

/// Parses a full calendar script.  A bare expression is accepted and
/// wrapped as `return <expr>;`, so derivation scripts like the Tuesdays
/// tuple's "[2]/DAYS:during:WEEKS" parse directly.  An outer pair of
/// braces around the script (the paper's convention) is allowed.
Result<Script> ParseScript(std::string_view source);

/// Parses a single calendar expression.
Result<ExprPtr> ParseExpression(std::string_view source);

}  // namespace caldb

#endif  // CALDB_LANG_PARSER_H_
