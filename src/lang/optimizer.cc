#include "lang/optimizer.h"

#include "common/macros.h"
#include "common/strings.h"
#include "obs/obs.h"

namespace caldb {

namespace {

obs::Counter* FactorizeCounter() {
  static obs::Counter* counter =
      obs::Metrics().counter("caldb.opt.rewrite.factorize");
  return counter;
}

}  // namespace

namespace {

// Canonical identity of a named calendar leaf (base names fold to their
// canonical granularity spelling).
std::string CanonicalCalendarName(const Expr& e) {
  if (e.kind == Expr::Kind::kIdent &&
      (e.ident_class == IdentClass::kBaseCalendar ||
       e.ident_class == IdentClass::kValueCalendar ||
       e.ident_class == IdentClass::kDerivedCalendar)) {
    if (e.ident_class == IdentClass::kBaseCalendar) {
      return std::string(GranularityName(e.sem_granularity));
    }
    return e.name;
  }
  return "";
}

// Traces the element origin of Z through element-preserving operators:
// selection picks elements; a strict `during` foreach and any relaxed
// foreach keep elements of their left operand whole.
std::string ElementOrigin(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kIdent:
      return CanonicalCalendarName(e);
    case Expr::Kind::kYearSelect:
      return std::string(GranularityName(Granularity::kYears));
    case Expr::Kind::kSelect:
      return ElementOrigin(*e.child);
    case Expr::Kind::kForEach:
      if (!e.strict || e.op == ListOp::kDuring) return ElementOrigin(*e.lhs);
      return "";
    default:
      return "";
  }
}

// Peels selection prefixes off L, returning the innermost expression and
// recording the chain (outermost first).
Expr* PeelSelections(Expr* e, std::vector<Expr*>* chain) {
  while (e->kind == Expr::Kind::kSelect) {
    chain->push_back(e);
    e = e->child.get();
  }
  return e;
}

// Attempts the factorization rewrite on a kForEach node; returns true when
// a rewrite happened.
bool TryFactorize(ExprPtr* node_ptr) {
  Expr* node = node_ptr->get();
  if (node->kind != Expr::Kind::kForEach) return false;
  Expr* z = node->rhs.get();

  std::vector<Expr*> selections;
  Expr* inner = PeelSelections(node->lhs.get(), &selections);
  if (inner->kind != Expr::Kind::kForEach) return false;

  const Expr& y = *inner->rhs;
  // Granularity(Y) must equal granularity(Z).
  if (y.sem_granularity != z->sem_granularity) return false;
  // Z ⊆ Y, established structurally.
  std::string y_name = CanonicalCalendarName(y);
  if (y_name.empty() || ElementOrigin(*z) != y_name) return false;

  const bool both_before_eq =
      inner->op == ListOp::kBeforeEq && node->op == ListOp::kBeforeEq;
  if (node->op != ListOp::kDuring && !both_before_eq) return false;

  // Rewrite: replace Y by Z inside the inner foreach and drop the outer
  // foreach, keeping the selection chain.
  if (both_before_eq) inner->op = node->op;  // the paper's <=/<= special case
  inner->rhs = node->rhs;
  *node_ptr = node->lhs;  // the (possibly selection-wrapped) inner chain
  return true;
}

int FactorizeRec(ExprPtr* node_ptr) {
  Expr* node = node_ptr->get();
  int count = 0;
  switch (node->kind) {
    case Expr::Kind::kForEach:
      count += FactorizeRec(&node->lhs);
      count += FactorizeRec(&node->rhs);
      break;
    case Expr::Kind::kSelect:
      count += FactorizeRec(&node->child);
      break;
    case Expr::Kind::kSetOp:
      count += FactorizeRec(&node->lhs);
      count += FactorizeRec(&node->rhs);
      break;
    case Expr::Kind::kCall:
      for (ExprPtr& a : node->args) count += FactorizeRec(&a);
      break;
    default:
      break;
  }
  while (TryFactorize(node_ptr)) {
    ++count;
    // The rewritten node may expose another factorization opportunity.
    node_ptr->get();
  }
  return count;
}

int OptimizeBody(std::vector<Stmt>* body) {
  int count = 0;
  for (Stmt& stmt : *body) {
    if (stmt.expr) count += FactorizeRec(&stmt.expr);
    count += OptimizeBody(&stmt.body);
    count += OptimizeBody(&stmt.else_body);
  }
  return count;
}

}  // namespace

Status OptimizeScript(Script* script, OptimizeStats* stats) {
  int count = OptimizeBody(&script->stmts);
  if (stats != nullptr) stats->factorizations += count;
  if (count > 0) FactorizeCounter()->Add(count);
  return Status::OK();
}

Status OptimizeExpr(ExprPtr* expr, OptimizeStats* stats) {
  int count = FactorizeRec(expr);
  if (stats != nullptr) stats->factorizations += count;
  if (count > 0) FactorizeCounter()->Add(count);
  return Status::OK();
}

int CountExprNodes(const Expr& e) {
  int count = 1;
  if (e.lhs) count += CountExprNodes(*e.lhs);
  if (e.rhs) count += CountExprNodes(*e.rhs);
  if (e.child) count += CountExprNodes(*e.child);
  for (const ExprPtr& a : e.args) count += CountExprNodes(*a);
  return count;
}

}  // namespace caldb
