// Factorization of calendar expressions (§3.4, step 2):
//
//   {(X:Op1:Y):Op2:Z}  →  {X:Op1:Z}
//
// when granularity(Y) == granularity(Z) and Z ⊆ Y — except when Op1 and
// Op2 are both <=, where the paper reduces to {X:Op2:Z}.  The left side
// may carry selection prefixes, which are preserved:
//
//   {(sel/(X:Op1:Y)):Op2:Z}  →  {sel/(X:Op1:Z)}
//
// Containment Z ⊆ Y is established structurally: Z's element origin is
// traced through selections, strict `during` foreaches and relaxed
// foreaches (all element-preserving) down to a named calendar or a year
// label over one, and compared with Y.  We additionally require Op2 to be
// `during` (both of the paper's examples use it); other outer ops are left
// untouched, which is conservative but always correct.

#ifndef CALDB_LANG_OPTIMIZER_H_
#define CALDB_LANG_OPTIMIZER_H_

#include "common/status.h"
#include "lang/ast.h"

namespace caldb {

struct OptimizeStats {
  int factorizations = 0;
};

/// Factorizes every expression in the script (post-order, to fixpoint).
/// The script must have been analyzed (granularity annotations are used).
Status OptimizeScript(Script* script, OptimizeStats* stats = nullptr);

/// Factorizes a single analyzed expression tree.
Status OptimizeExpr(ExprPtr* expr, OptimizeStats* stats = nullptr);

/// Number of nodes in an expression tree (for the Figure 2/3 comparisons).
int CountExprNodes(const Expr& e);

}  // namespace caldb

#endif  // CALDB_LANG_OPTIMIZER_H_
