#include "lang/planner.h"

#include <map>
#include <set>

#include "common/macros.h"
#include "obs/obs.h"
#include "common/strings.h"

namespace caldb {

namespace {

class Planner {
 public:
  explicit Planner(const Script& script) : script_(script) {}

  Result<Plan> Run() {
    Plan plan;
    plan.unit = script_.unit;
    CALDB_RETURN_IF_ERROR(CompileBody(script_.stmts, &plan.steps));
    plan.num_registers = next_reg_;
    plan.generated_granularities.assign(generated_.begin(), generated_.end());
    return plan;
  }

 private:
  int NewReg() { return next_reg_++; }

  Status CompileBody(const std::vector<Stmt>& body, std::vector<PlanStep>* out) {
    for (const Stmt& stmt : body) {
      CALDB_RETURN_IF_ERROR(CompileStmt(stmt, out));
    }
    return Status::OK();
  }

  Status CompileStmt(const Stmt& stmt, std::vector<PlanStep>* out) {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign: {
        CALDB_ASSIGN_OR_RETURN(int value_reg,
                               CompileExpr(*stmt.expr, WindowHint{}, out));
        auto it = vars_.find(stmt.var);
        int var_reg;
        if (it == vars_.end()) {
          var_reg = NewReg();
          vars_[stmt.var] = var_reg;
        } else {
          var_reg = it->second;
        }
        PlanStep step;
        step.op = PlanOpCode::kCopy;
        step.dst = var_reg;
        step.lhs = value_reg;
        out->push_back(std::move(step));
        return Status::OK();
      }
      case Stmt::Kind::kIf: {
        PlanStep step;
        step.op = PlanOpCode::kIf;
        CALDB_ASSIGN_OR_RETURN(
            step.lhs, CompileExpr(*stmt.expr, WindowHint{}, &step.cond_steps));
        CALDB_RETURN_IF_ERROR(CompileBody(stmt.body, &step.body_steps));
        CALDB_RETURN_IF_ERROR(CompileBody(stmt.else_body, &step.else_steps));
        out->push_back(std::move(step));
        return Status::OK();
      }
      case Stmt::Kind::kWhile: {
        PlanStep step;
        step.op = PlanOpCode::kWhile;
        CALDB_ASSIGN_OR_RETURN(
            step.lhs, CompileExpr(*stmt.expr, WindowHint{}, &step.cond_steps));
        CALDB_RETURN_IF_ERROR(CompileBody(stmt.body, &step.body_steps));
        out->push_back(std::move(step));
        return Status::OK();
      }
      case Stmt::Kind::kReturn: {
        PlanStep step;
        if (stmt.returns_string) {
          step.op = PlanOpCode::kReturnString;
          step.name = stmt.str;
        } else {
          step.op = PlanOpCode::kReturn;
          CALDB_ASSIGN_OR_RETURN(step.lhs,
                                 CompileExpr(*stmt.expr, WindowHint{}, out));
        }
        out->push_back(std::move(step));
        return Status::OK();
      }
      case Stmt::Kind::kBlock:
        return CompileBody(stmt.body, out);
    }
    return Status::Internal("unknown statement kind");
  }

  // Compiles an expression; returns the register holding its value.
  Result<int> CompileExpr(const Expr& e, const WindowHint& hint,
                          std::vector<PlanStep>* out) {
    switch (e.kind) {
      case Expr::Kind::kIdent:
        return CompileIdent(e, hint, out);
      case Expr::Kind::kLiteral: {
        PlanStep step;
        step.op = PlanOpCode::kLiteral;
        step.dst = NewReg();
        step.literal = e.literal;
        out->push_back(step);
        return step.dst;
      }
      case Expr::Kind::kYearSelect: {
        PlanStep step;
        step.op = PlanOpCode::kYearSelect;
        step.dst = NewReg();
        step.year = e.year;
        generated_.insert(Granularity::kYears);
        out->push_back(step);
        return step.dst;
      }
      case Expr::Kind::kForEach: {
        CALDB_ASSIGN_OR_RETURN(int rhs_reg, CompileExpr(*e.rhs, hint, out));
        // The §3.4 selection pushdown: the left operand is generated only
        // within the span of the evaluated right operand.
        static obs::Counter* pushdown_counter =
            obs::Metrics().counter("caldb.opt.rewrite.pushdown");
        pushdown_counter->Increment();
        WindowHint lhs_hint;
        lhs_hint.reg = rhs_reg;
        lhs_hint.mode = (e.op == ListOp::kBefore || e.op == ListOp::kBeforeEq)
                            ? WindowHint::Mode::kBefore
                            : WindowHint::Mode::kSpan;
        CALDB_ASSIGN_OR_RETURN(int lhs_reg, CompileExpr(*e.lhs, lhs_hint, out));
        PlanStep step;
        step.op = PlanOpCode::kForEach;
        step.dst = NewReg();
        step.lhs = lhs_reg;
        step.rhs = rhs_reg;
        step.listop = e.op;
        step.strict = e.strict;
        out->push_back(std::move(step));
        return step.dst;
      }
      case Expr::Kind::kSelect: {
        CALDB_ASSIGN_OR_RETURN(int src_reg, CompileExpr(*e.child, hint, out));
        PlanStep step;
        step.op = PlanOpCode::kSelect;
        step.dst = NewReg();
        step.lhs = src_reg;
        step.selection = e.selection;
        out->push_back(std::move(step));
        return step.dst;
      }
      case Expr::Kind::kSetOp: {
        CALDB_ASSIGN_OR_RETURN(int lhs_reg, CompileExpr(*e.lhs, hint, out));
        CALDB_ASSIGN_OR_RETURN(int rhs_reg, CompileExpr(*e.rhs, hint, out));
        PlanStep step;
        step.op = e.set_op == '+' ? PlanOpCode::kUnion : PlanOpCode::kDifference;
        step.dst = NewReg();
        step.lhs = lhs_reg;
        step.rhs = rhs_reg;
        out->push_back(std::move(step));
        return step.dst;
      }
      case Expr::Kind::kCall:
        return CompileCall(e, hint, out);
      case Expr::Kind::kIntConst:
      case Expr::Kind::kStar:
        return Status::Internal("scalar call argument outside a call");
    }
    return Status::Internal("unknown expression kind");
  }

  Result<int> CompileIdent(const Expr& e, const WindowHint& hint,
                           std::vector<PlanStep>* out) {
    switch (e.ident_class) {
      case IdentClass::kVariable: {
        auto it = vars_.find(e.name);
        if (it == vars_.end()) {
          return Status::EvalError("variable '" + e.name +
                                   "' used before assignment (line " +
                                   std::to_string(e.line) + ")");
        }
        return it->second;
      }
      case IdentClass::kToday: {
        PlanStep step;
        step.op = PlanOpCode::kToday;
        step.dst = NewReg();
        out->push_back(step);
        return step.dst;
      }
      case IdentClass::kBaseCalendar: {
        PlanStep step;
        step.op = PlanOpCode::kGenerate;
        step.dst = NewReg();
        step.gran_arg = e.sem_granularity;
        step.name = std::string(GranularityName(e.sem_granularity));
        step.hint = hint;
        generated_.insert(e.sem_granularity);
        out->push_back(step);
        return step.dst;
      }
      case IdentClass::kValueCalendar: {
        PlanStep step;
        step.op = PlanOpCode::kLoadValues;
        step.dst = NewReg();
        step.name = e.name;
        step.hint = hint;
        out->push_back(step);
        return step.dst;
      }
      case IdentClass::kDerivedCalendar: {
        PlanStep step;
        step.op = PlanOpCode::kInvoke;
        step.dst = NewReg();
        step.name = e.name;
        step.hint = hint;
        out->push_back(step);
        return step.dst;
      }
      case IdentClass::kUnresolved:
        return Status::Internal("unresolved identifier '" + e.name +
                                "' reached the planner (script not analyzed?)");
    }
    return Status::Internal("unknown identifier class");
  }

  Result<int> CompileCall(const Expr& e, const WindowHint& hint,
                          std::vector<PlanStep>* out) {
    if (EqualsIgnoreCase(e.name, "caloperate")) {
      CALDB_ASSIGN_OR_RETURN(int src_reg, CompileExpr(*e.args[0], hint, out));
      PlanStep step;
      step.op = PlanOpCode::kCalOperate;
      step.dst = NewReg();
      step.lhs = src_reg;
      if (e.args[1]->kind == Expr::Kind::kIntConst) {
        step.te = e.args[1]->int_value;
      }
      for (size_t i = 2; i < e.args.size(); ++i) {
        step.groups.push_back(e.args[i]->int_value);
      }
      out->push_back(std::move(step));
      return step.dst;
    }
    if (EqualsIgnoreCase(e.name, "generate")) {
      PlanStep step;
      step.op = PlanOpCode::kGenerateSpan;
      step.dst = NewReg();
      step.gran_arg = e.args[0]->sem_granularity;
      step.unit_arg = e.args[1]->sem_granularity;
      step.civil_start = e.args[2]->name;
      step.civil_end = e.args[3]->name;
      out->push_back(std::move(step));
      return step.dst;
    }
    return Status::Internal("unknown call '" + e.name +
                            "' reached the planner");
  }

  const Script& script_;
  int next_reg_ = 0;
  std::map<std::string, int> vars_;
  std::set<Granularity> generated_;
};

}  // namespace

Result<Plan> CompileScript(const Script& script) {
  return Planner(script).Run();
}

}  // namespace caldb
