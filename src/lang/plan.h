// The evaluation plan (§3.2's eval-plan column, §3.4 step 5): a register
// program of generate / caloperate / foreach / selection / set steps with
// structured control flow, produced by the Planner and executed by the
// Evaluator.
//
// Each materializing step can carry a *window hint*: the register whose
// evaluated span bounds the interval over which calendar values are
// generated.  This realizes the paper's look-ahead ("the selection
// predicate determines the time interval within which values of calendars
// are generated") dynamically: the right operand of a foreach is always
// evaluated first, and the left operand's generation window is derived
// from its actual span.

#ifndef CALDB_LANG_PLAN_H_
#define CALDB_LANG_PLAN_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/algebra.h"
#include "core/calendar.h"
#include "time/granularity.h"

namespace caldb {

enum class PlanOpCode {
  kGenerate,      // dst <- base calendar gran_arg at plan unit, within window
  kLoadValues,    // dst <- stored values of calendar `name`
  kInvoke,        // dst <- result of derived calendar `name`'s plan
  kToday,         // dst <- singleton for the current time point
  kLiteral,       // dst <- literal calendar
  kYearSelect,    // dst <- singleton spanning civil year `year`
  kGenerateSpan,  // dst <- generate(gran_arg, unit_arg, [civil_start,civil_end])
  kForEach,       // dst <- foreach(lhs, listop, rhs, strict)
  kSelect,        // dst <- select(selection, lhs)
  kUnion,         // dst <- lhs + rhs
  kDifference,    // dst <- lhs - rhs
  kCalOperate,    // dst <- caloperate(lhs, te, groups)
  kCopy,          // dst <- lhs
  kReturn,        // script returns register lhs
  kReturnString,  // script returns string `name`
  kIf,            // run cond_steps; lhs = condition register
  kWhile,         // run cond_steps repeatedly; empty body => Blocked
};

struct WindowHint {
  enum class Mode {
    kNone,    // use the global evaluation window
    kSpan,    // generate within the span of register `reg`
    kBefore,  // generate from the global window start to span(reg).hi
  };
  Mode mode = Mode::kNone;
  int reg = -1;
};

struct PlanStep {
  PlanOpCode op = PlanOpCode::kCopy;
  int dst = -1;
  int lhs = -1;
  int rhs = -1;

  std::string name;  // calendar name / returned string
  Granularity gran_arg = Granularity::kDays;   // kGenerate/kGenerateSpan base
  Granularity unit_arg = Granularity::kDays;   // kGenerateSpan unit
  std::string civil_start;                     // kGenerateSpan "YYYY-MM-DD"
  std::string civil_end;
  ListOp listop = ListOp::kDuring;
  bool strict = true;
  std::vector<SelectionItem> selection;
  Calendar literal;
  int32_t year = 0;
  std::optional<int64_t> te;     // kCalOperate end time (nullopt = '*')
  std::vector<int64_t> groups;   // kCalOperate group sizes
  WindowHint hint;

  std::vector<PlanStep> cond_steps;  // kIf / kWhile condition
  std::vector<PlanStep> body_steps;  // kIf then / kWhile body
  std::vector<PlanStep> else_steps;  // kIf else
};

/// Per-plan-node execution profile, collected by the Evaluator when
/// EvalOptions::profile is set (the substrate of EXPLAIN/PROFILE).  Keyed
/// by step address, so it is only meaningful while the plan is alive.
/// For kIf/kWhile the time includes the nested condition/body steps.
struct StepProfile {
  struct Node {
    int64_t execs = 0;
    int64_t total_ns = 0;
    int64_t out_intervals = 0;  // intervals in dst after the last execution
  };
  std::unordered_map<const PlanStep*, Node> nodes;

  Node& NodeFor(const PlanStep& step) { return nodes[&step]; }
  const Node* Find(const PlanStep& step) const {
    auto it = nodes.find(&step);
    return it == nodes.end() ? nullptr : &it->second;
  }
};

struct Plan {
  std::vector<PlanStep> steps;
  int num_registers = 0;
  // Every calendar in the plan is expressed in this unit (the script's
  // smallest time unit, §3.4).
  Granularity unit = Granularity::kDays;
  // Informational: the base-calendar granularities this plan materializes
  // (useful for tooling and cost inspection; evaluation itself derives
  // windows dynamically from operand spans).
  std::vector<Granularity> generated_granularities;

  /// Human-readable listing ("the set of procedural statements" shown in
  /// the paper's Figure 1).  With a profile, each step is annotated with
  /// its execution count, accumulated time and output size.
  std::string ToString(const StepProfile* profile = nullptr) const;
};

/// Name of a plan opcode ("GENERATE", "FOREACH", ...).
std::string_view PlanOpCodeName(PlanOpCode op);

}  // namespace caldb

#endif  // CALDB_LANG_PLAN_H_
