// Lowers an analyzed (and optionally factorized) script to an evaluation
// plan (§3.4 step 5).

#ifndef CALDB_LANG_PLANNER_H_
#define CALDB_LANG_PLANNER_H_

#include "common/result.h"
#include "lang/ast.h"
#include "lang/plan.h"

namespace caldb {

/// Compiles an analyzed script into a Plan.  The right operand of every
/// foreach is compiled before the left operand, and the left subtree's
/// materializing steps receive a window hint derived from the right
/// operand's register — the paper's look-ahead, applied dynamically.
Result<Plan> CompileScript(const Script& script);

}  // namespace caldb

#endif  // CALDB_LANG_PLANNER_H_
