// Executes evaluation plans.

#ifndef CALDB_LANG_EVALUATOR_H_
#define CALDB_LANG_EVALUATOR_H_

#include <cstddef>
#include <list>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "core/calendar.h"
#include "lang/calendar_source.h"
#include "lang/plan.h"
#include "time/time_system.h"

namespace caldb {

/// What a script evaluation produced.
struct ScriptValue {
  enum class Kind {
    kNull,      // no return executed / empty result
    kCalendar,  // a calendar value
    kString,    // a string alert ("LAST TRADING DAY")
    kBlocked,   // an empty-bodied while whose condition is still true —
                // the paper's busy-wait ("while (today:<:temp2) ;")
  };
  Kind kind = Kind::kNull;
  Calendar calendar;
  std::string text;

  static ScriptValue Null() { return {}; }
  static ScriptValue Of(Calendar c) {
    ScriptValue v;
    v.kind = Kind::kCalendar;
    v.calendar = std::move(c);
    return v;
  }
  static ScriptValue Of(std::string s) {
    ScriptValue v;
    v.kind = Kind::kString;
    v.text = std::move(s);
    return v;
  }
  static ScriptValue Blocked() {
    ScriptValue v;
    v.kind = Kind::kBlocked;
    return v;
  }
};

struct EvalOptions {
  /// Generation window for calendars with no tighter bound, in DAYS points.
  Interval window_days{1, 365};
  /// The DAYS point of "today" (used by `today` and DBCRON rules).
  TimePoint today_day = 1;
  /// When false, window hints are ignored and every calendar is generated
  /// over the full global window — the naive evaluation the paper's
  /// factorization optimization is measured against (benchmarks PERF-1/2).
  bool use_window_hints = true;
  int64_t max_loop_iterations = 100000;
  int max_invoke_depth = 16;
  /// When set, per-plan-node execution counts/timings are recorded here
  /// (EXPLAIN/PROFILE).  Propagates into nested kInvoke plans.
  StepProfile* profile = nullptr;
  /// Budget of the evaluator's generated-calendar cache (entries and
  /// payload bytes); least-recently-used entries are evicted past either
  /// limit, so long DBCRON sessions cannot grow the cache without bound.
  size_t gen_cache_max_entries = 64;
  size_t gen_cache_max_bytes = 16u << 20;  // 16 MiB of interval payload
  /// The CalendarCatalog definition version this evaluation runs against
  /// (CalendarCatalog::version()).  A persistent Evaluator (each Session
  /// keeps one) clears its gen-cache when the version changes between
  /// runs, so cached generations never outlive a DefineDerived /
  /// DefineValues / Drop in another session.  0 (the default) means
  /// "unversioned": the cache is kept across runs unconditionally —
  /// correct for catalog-free use and throwaway evaluators.
  uint64_t catalog_version = 0;
};

/// Size/byte-budget LRU over generated base calendars, keyed by
/// (granularity, unit, window.lo, window.hi).  Values are shared Calendar
/// handles, so a hit costs a pointer copy, and the byte accounting charges
/// each entry its rep's leaf payload.  Evictions feed
/// "caldb.eval.gen_cache.evictions".
class GenCache {
 public:
  using Key = std::tuple<int, int, TimePoint, TimePoint>;

  void SetBudget(size_t max_entries, size_t max_bytes);

  /// Exact-key lookup; touches the entry.  Null when absent.
  const Calendar* Find(const Key& key);

  /// First entry (in key order, matching the historical std::map scan)
  /// with the same granularity/unit whose window covers the requested one;
  /// touches it.  Null when absent.
  const Calendar* FindCovering(const Key& key);

  /// Inserts (replacing any previous value) and evicts past the budget.
  void Insert(const Key& key, Calendar value);

  void Clear();
  size_t entries() const { return index_.size(); }
  size_t bytes() const { return bytes_; }

 private:
  struct Entry {
    Key key;
    Calendar value;
    size_t bytes = 0;
  };
  void Touch(std::list<Entry>::iterator it);
  void EvictPastBudget();

  size_t max_entries_ = 64;
  size_t max_bytes_ = 16u << 20;
  size_t bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
};

/// Counters used by the factorization / push-down benchmarks.  A thin
/// per-run view: the same events also feed the process-wide registry
/// ("caldb.eval.*", see docs/OBSERVABILITY.md).
struct EvalStats {
  int64_t steps_executed = 0;
  int64_t generate_calls = 0;
  int64_t intervals_generated = 0;  // intervals materialized by GENERATE
  int64_t cache_hits = 0;           // exact-key and covering-window hits
};

class Evaluator {
 public:
  /// Neither pointer is owned.  `source` may be null when the plan has no
  /// kLoadValues / kInvoke steps.
  Evaluator(const TimeSystem* ts, const CalendarSource* source)
      : ts_(ts), source_(source) {}

  /// Runs a plan to completion.
  Result<ScriptValue> Run(const Plan& plan, const EvalOptions& opts,
                          EvalStats* stats = nullptr);

 private:
  struct Frame;

  Result<ScriptValue> RunPlan(const Plan& plan, const EvalOptions& opts,
                              int depth);
  // Executes steps; sets *returned when a return fired.
  Status RunSteps(const std::vector<PlanStep>& steps, Frame* frame,
                  ScriptValue* returned, bool* did_return);
  // RunStep wraps RunStepImpl with the per-step profiler.
  Status RunStep(const PlanStep& step, Frame* frame, ScriptValue* returned,
                 bool* did_return);
  Status RunStepImpl(const PlanStep& step, Frame* frame, ScriptValue* returned,
                     bool* did_return);
  Result<Interval> WindowFor(const PlanStep& step, const Frame& frame) const;
  Result<Calendar> ReadReg(const Frame& frame, int reg, int line_hint) const;

  const TimeSystem* ts_;
  const CalendarSource* source_;
  EvalStats* stats_ = nullptr;
  // Cache of generated base calendars, keyed by granularity/unit/window.
  // Lookups also reuse any cached entry whose window *covers* the request:
  // because fresh generation over W yields exactly the granules overlapping
  // W, slicing a covering entry down to W (relaxed overlaps sweep) is
  // bit-identical to regenerating — the cache stays coherent without
  // storing the slice.  Bounded LRU (EvalOptions::gen_cache_max_*); hits
  // hand out shared reps, so they cost a pointer copy regardless of the
  // calendar's interval count.
  GenCache gen_cache_;
  // The catalog version gen_cache_ content was computed against; Run
  // clears the cache when EvalOptions::catalog_version moves past it.
  uint64_t gen_cache_version_ = 0;
};

/// Converts a DAYS window to a covering window in `unit` points.
Result<Interval> ConvertDayWindow(const TimeSystem& ts, const Interval& days,
                                  Granularity unit);

}  // namespace caldb

#endif  // CALDB_LANG_EVALUATOR_H_
