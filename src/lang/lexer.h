// Lexer for the calendar expression language.

#ifndef CALDB_LANG_LEXER_H_
#define CALDB_LANG_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lang/token.h"

namespace caldb {

/// Tokenizes a calendar script.  Notes:
///  - /* ... */ and // ... comments are skipped;
///  - identifiers may embed hyphens when directly attached to an
///    alphanumeric character (Jan-1993, EMP-DAYS), so the set-difference
///    operator must be written with surrounding whitespace (a - b), as the
///    paper's scripts do;
///  - string literals use double quotes.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace caldb

#endif  // CALDB_LANG_LEXER_H_
