// CalendarSource: the interface through which the expression language
// resolves calendar names.  The catalog module (the CALENDARS table of
// §3.2) implements it; tests supply small in-memory sources.

#ifndef CALDB_LANG_CALENDAR_SOURCE_H_
#define CALDB_LANG_CALENDAR_SOURCE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/calendar.h"
#include "time/granularity.h"

namespace caldb {

struct Script;  // defined in lang/ast.h
struct Plan;    // defined in lang/plan.h

/// What a calendar name resolves to.
struct ResolvedCalendar {
  enum class Kind {
    kBase,     // one of SECONDS..CENTURY, materialized by generate()
    kDerived,  // defined by a derivation script (inlined or invoked)
    kValues,   // explicit stored values (e.g. HOLIDAYS)
  };

  Kind kind = Kind::kBase;
  Granularity granularity = Granularity::kDays;

  // kDerived: the parsed derivation script and its compiled eval-plan
  // (the CALENDARS table's derivation-script / eval-plan columns).
  std::shared_ptr<const Script> script;
  std::shared_ptr<const Plan> plan;

  // kValues: the stored intervals.
  Calendar values;
};

class CalendarSource {
 public:
  virtual ~CalendarSource() = default;

  /// Resolves a calendar name (case-sensitive for user calendars; the nine
  /// base names are case-insensitive).  NotFound when unknown.
  virtual Result<ResolvedCalendar> Resolve(const std::string& name) const = 0;
};

}  // namespace caldb

#endif  // CALDB_LANG_CALENDAR_SOURCE_H_
