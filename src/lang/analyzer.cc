#include "lang/analyzer.h"

#include <map>

#include "common/macros.h"
#include "common/strings.h"
#include "obs/obs.h"
#include "time/civil.h"

namespace caldb {

struct Analyzer::Scope {
  // Variable name -> granularity of its current value.
  std::map<std::string, Granularity> vars;
};

namespace {

bool IsBaseCalendarName(const std::string& name, Granularity* g) {
  // Base-calendar names are case-insensitive (the paper writes both
  // "YEARS" and "Years"); any spelling a granularity parses from is base.
  Result<Granularity> r = ParseGranularity(name);
  if (!r.ok()) return false;
  *g = *r;
  return true;
}

}  // namespace

void Analyzer::RecordLeaf(Granularity g) {
  finest_ = Finest(finest_, g);
  if (g == Granularity::kWeeks) has_weeks_leaf_ = true;
  if (FinerThan(Granularity::kWeeks, g)) has_coarser_than_weeks_leaf_ = true;
}

Status Analyzer::AnalyzeScript(Script* script) {
  finest_ = Granularity::kCenturies;
  has_weeks_leaf_ = false;
  has_coarser_than_weeks_leaf_ = false;
  calendar_refs_.clear();
  Scope scope;
  CALDB_RETURN_IF_ERROR(AnalyzeBody(&script->stmts, &scope));
  script->unit = finest_;
  // §3.4: the unit must express every calendar exactly.  Week boundaries
  // do not align with month/year boundaries, so mixing WEEKS with coarser
  // units forces evaluation down to DAYS.
  if (script->unit == Granularity::kWeeks && has_coarser_than_weeks_leaf_) {
    script->unit = Granularity::kDays;
  }
  script->repeated_calendars.clear();
  for (const auto& [name, count] : calendar_refs_) {
    if (count > 1) script->repeated_calendars.push_back(name);
  }
  return Status::OK();
}

Status Analyzer::AnalyzeBody(std::vector<Stmt>* body, Scope* scope) {
  for (Stmt& stmt : *body) {
    CALDB_RETURN_IF_ERROR(AnalyzeStmt(&stmt, scope));
  }
  return Status::OK();
}

Status Analyzer::AnalyzeStmt(Stmt* stmt, Scope* scope) {
  switch (stmt->kind) {
    case Stmt::Kind::kAssign: {
      CALDB_RETURN_IF_ERROR(AnalyzeExpr(&stmt->expr, scope));
      Granularity g = stmt->expr->sem_granularity;
      auto it = scope->vars.find(stmt->var);
      if (it == scope->vars.end()) {
        scope->vars[stmt->var] = g;
      } else {
        it->second = Finest(it->second, g);
      }
      return Status::OK();
    }
    case Stmt::Kind::kIf: {
      CALDB_RETURN_IF_ERROR(AnalyzeExpr(&stmt->expr, scope));
      CALDB_RETURN_IF_ERROR(AnalyzeBody(&stmt->body, scope));
      return AnalyzeBody(&stmt->else_body, scope);
    }
    case Stmt::Kind::kWhile: {
      CALDB_RETURN_IF_ERROR(AnalyzeExpr(&stmt->expr, scope));
      return AnalyzeBody(&stmt->body, scope);
    }
    case Stmt::Kind::kReturn:
      if (stmt->returns_string) return Status::OK();
      return AnalyzeExpr(&stmt->expr, scope);
    case Stmt::Kind::kBlock:
      return AnalyzeBody(&stmt->body, scope);
  }
  return Status::Internal("unknown statement kind");
}

Status Analyzer::AnalyzeExpr(ExprPtr* node_ptr, Scope* scope) {
  Expr* node = node_ptr->get();
  switch (node->kind) {
    case Expr::Kind::kIdent:
      return ResolveIdent(node_ptr, scope);
    case Expr::Kind::kLiteral:
      node->sem_granularity = node->literal.granularity();
      RecordLeaf(node->sem_granularity);
      return Status::OK();
    case Expr::Kind::kYearSelect: {
      if (!EqualsIgnoreCase(node->name, "YEARS") &&
          !EqualsIgnoreCase(node->name, "Years")) {
        return Status::TypeError(
            "label selection '" + std::to_string(node->year) + "/" + node->name +
            "' is only supported on YEARS (line " + std::to_string(node->line) +
            ")");
      }
      node->sem_granularity = Granularity::kYears;
      RecordLeaf(Granularity::kYears);
      return Status::OK();
    }
    case Expr::Kind::kForEach: {
      CALDB_RETURN_IF_ERROR(AnalyzeExpr(&node->rhs, scope));
      CALDB_RETURN_IF_ERROR(AnalyzeExpr(&node->lhs, scope));
      node->sem_granularity = node->lhs->sem_granularity;
      return Status::OK();
    }
    case Expr::Kind::kSelect: {
      CALDB_RETURN_IF_ERROR(AnalyzeExpr(&node->child, scope));
      node->sem_granularity = node->child->sem_granularity;
      return Status::OK();
    }
    case Expr::Kind::kSetOp: {
      CALDB_RETURN_IF_ERROR(AnalyzeExpr(&node->lhs, scope));
      CALDB_RETURN_IF_ERROR(AnalyzeExpr(&node->rhs, scope));
      node->sem_granularity =
          Finest(node->lhs->sem_granularity, node->rhs->sem_granularity);
      return Status::OK();
    }
    case Expr::Kind::kCall:
      return AnalyzeCall(node, scope);
    case Expr::Kind::kIntConst:
    case Expr::Kind::kStar:
      return Status::OK();
  }
  return Status::Internal("unknown expression kind");
}

Status Analyzer::ResolveIdent(ExprPtr* node_ptr, Scope* scope) {
  Expr* node = node_ptr->get();
  const std::string& name = node->name;

  // 1. Script-local variables shadow calendars.
  auto var = scope->vars.find(name);
  if (var != scope->vars.end()) {
    node->ident_class = IdentClass::kVariable;
    node->sem_granularity = var->second;
    return Status::OK();
  }

  // 2. `today`: the runtime's current time point.
  if (EqualsIgnoreCase(name, "today")) {
    node->ident_class = IdentClass::kToday;
    node->sem_granularity = Granularity::kDays;
    return Status::OK();
  }

  // 3. Base calendars.
  Granularity g;
  if (IsBaseCalendarName(name, &g)) {
    node->ident_class = IdentClass::kBaseCalendar;
    node->sem_granularity = g;
    RecordLeaf(g);
    ++calendar_refs_[AsciiToUpper(name)];
    return Status::OK();
  }

  // 4. The calendar source (the CALENDARS catalog).
  if (source_ == nullptr) {
    return Status::NotFound("unknown calendar or variable '" + name +
                            "' (line " + std::to_string(node->line) + ")");
  }
  CALDB_ASSIGN_OR_RETURN(ResolvedCalendar resolved, source_->Resolve(name));
  ++calendar_refs_[name];
  switch (resolved.kind) {
    case ResolvedCalendar::Kind::kBase:
      node->ident_class = IdentClass::kBaseCalendar;
      node->sem_granularity = resolved.granularity;
      RecordLeaf(resolved.granularity);
      return Status::OK();
    case ResolvedCalendar::Kind::kValues:
      node->ident_class = IdentClass::kValueCalendar;
      node->sem_granularity = resolved.granularity;
      RecordLeaf(resolved.granularity);
      return Status::OK();
    case ResolvedCalendar::Kind::kDerived: {
      if (resolved.script == nullptr) {
        return Status::Internal("derived calendar '" + name +
                                "' has no parsed derivation script");
      }
      // Single-expression derivations are inlined, as in the paper's
      // parsing algorithm; multi-statement scripts are invoked at runtime.
      const Script& script = *resolved.script;
      const bool single_expr = script.stmts.size() == 1 &&
                               script.stmts[0].kind == Stmt::Kind::kReturn &&
                               !script.stmts[0].returns_string;
      if (!single_expr) {
        node->ident_class = IdentClass::kDerivedCalendar;
        node->sem_granularity = resolved.granularity;
        RecordLeaf(resolved.granularity);
        return Status::OK();
      }
      if (inlining_.count(name) > 0) {
        return Status::EvalError("cyclic calendar derivation involving '" +
                                 name + "'");
      }
      inlining_.insert(name);
      ExprPtr inlined = CloneExpr(*script.stmts[0].expr);
      Scope empty_scope;  // the derivation has no access to our variables
      Status st = AnalyzeExpr(&inlined, &empty_scope);
      inlining_.erase(name);
      CALDB_RETURN_IF_ERROR(st);
      *node_ptr = std::move(inlined);
      static obs::Counter* inline_counter =
          obs::Metrics().counter("caldb.opt.rewrite.inline");
      inline_counter->Increment();
      return Status::OK();
    }
  }
  return Status::Internal("unknown resolved-calendar kind");
}

Status Analyzer::AnalyzeCall(Expr* node, Scope* scope) {
  if (EqualsIgnoreCase(node->name, "caloperate")) {
    // caloperate(expr, * | Te, x1, x2, ...)
    if (node->args.size() < 3) {
      return Status::InvalidArgument(
          "caloperate needs (calendar, end-time, group sizes...) (line " +
          std::to_string(node->line) + ")");
    }
    CALDB_RETURN_IF_ERROR(AnalyzeExpr(&node->args[0], scope));
    if (node->args[1]->kind != Expr::Kind::kStar &&
        node->args[1]->kind != Expr::Kind::kIntConst) {
      return Status::InvalidArgument(
          "caloperate end time must be '*' or an integer (line " +
          std::to_string(node->line) + ")");
    }
    for (size_t i = 2; i < node->args.size(); ++i) {
      if (node->args[i]->kind != Expr::Kind::kIntConst) {
        return Status::InvalidArgument(
            "caloperate group sizes must be integers (line " +
            std::to_string(node->line) + ")");
      }
    }
    node->sem_granularity = node->args[0]->sem_granularity;
    return Status::OK();
  }
  if (EqualsIgnoreCase(node->name, "generate")) {
    // generate(BASE, UNIT, "YYYY-MM-DD", "YYYY-MM-DD")
    if (node->args.size() != 4 || node->args[0]->kind != Expr::Kind::kIdent ||
        node->args[1]->kind != Expr::Kind::kIdent) {
      return Status::InvalidArgument(
          "generate needs (base-calendar, unit, start-date, end-date) (line " +
          std::to_string(node->line) + ")");
    }
    Granularity g;
    Granularity unit;
    if (!IsBaseCalendarName(node->args[0]->name, &g) ||
        !IsBaseCalendarName(node->args[1]->name, &unit)) {
      return Status::InvalidArgument(
          "generate arguments must be base calendars (line " +
          std::to_string(node->line) + ")");
    }
    for (size_t i = 2; i < 4; ++i) {
      if (node->args[i]->kind != Expr::Kind::kIntConst ||
          node->args[i]->name.empty()) {
        return Status::InvalidArgument(
            "generate start/end must be \"YYYY-MM-DD\" strings (line " +
            std::to_string(node->line) + ")");
      }
      CALDB_RETURN_IF_ERROR(ParseCivil(node->args[i]->name).status());
    }
    node->args[0]->sem_granularity = g;
    node->args[1]->sem_granularity = unit;
    node->sem_granularity = unit;
    RecordLeaf(unit);
    return Status::OK();
  }
  return Status::NotFound("unknown function '" + node->name + "' (line " +
                          std::to_string(node->line) + ")");
}

}  // namespace caldb
