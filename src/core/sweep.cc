#include "core/sweep.h"

#include <algorithm>

#include "obs/obs.h"

namespace caldb {

namespace {

// Registry instruments, resolved once; hot loops accumulate into a local
// SweepStats and flush a single relaxed add per call.
struct SweepCounters {
  obs::Counter* joins = obs::Metrics().counter("caldb.sweep.joins");
  obs::Counter* comparisons = obs::Metrics().counter("caldb.sweep.comparisons");
  obs::Counter* emits = obs::Metrics().counter("caldb.sweep.emits");
  obs::Counter* gallop_skips =
      obs::Metrics().counter("caldb.sweep.gallop_skips");
};

SweepCounters& Counters() {
  static SweepCounters* counters = new SweepCounters();
  return *counters;
}

void Flush(const SweepStats& st) {
  SweepCounters& c = Counters();
  c.joins->Increment();
  c.comparisons->Add(st.comparisons);
  c.emits->Add(st.emits);
  c.gallop_skips->Add(st.gallop_skips);
}

// First index in [from, n) where `true_at` turns false, assuming true_at
// holds on a prefix of [from, n).  Exponential probe doubling the stride,
// then binary search inside the overshoot bracket — the galloping skip.
template <typename Pred>
size_t Gallop(size_t from, size_t n, SweepStats& st, Pred true_at) {
  if (from >= n) return n;
  ++st.comparisons;
  if (!true_at(from)) return from;
  size_t known = from;  // true_at(known) holds
  size_t step = 1;
  size_t bound = n;  // first false (if any) lies in (known, bound]
  while (known + step < n) {
    size_t probe = known + step;
    ++st.comparisons;
    if (true_at(probe)) {
      st.gallop_skips += static_cast<int64_t>(probe - known - 1);
      known = probe;
      step <<= 1;
    } else {
      bound = probe;
      break;
    }
  }
  size_t lo = known + 1;
  size_t hi = bound;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    ++st.comparisons;
    if (true_at(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Linear advance used where the skipped prefix is not a monotone predicate
// (guarded fallback for runs whose upper endpoints are not sorted).
template <typename Pred>
size_t LinearAdvance(size_t from, size_t n, SweepStats& st, Pred true_at) {
  while (from < n) {
    ++st.comparisons;
    if (!true_at(from)) break;
    ++from;
  }
  return from;
}

}  // namespace

SweepStats SweepJoin(IntervalSpan lhs, ListOp op,
                     IntervalSpan rhs, bool lhs_hi_monotone,
                     const SweepEmit& emit) {
  SweepStats st;
  const size_t n = lhs.size();
  auto do_emit = [&](size_t i, size_t j) {
    ++st.emits;
    emit(i, j);
  };

  switch (op) {
    case ListOp::kOverlaps:
    case ListOp::kIntersects: {
      // match: lhs.lo <= r.hi && lhs.hi >= r.lo.  Elements whose hi falls
      // before r.lo are dead for every later probe (rhs.lo is
      // non-decreasing), so the start cursor only moves forward.
      size_t start = 0;
      for (size_t j = 0; j < rhs.size(); ++j) {
        const Interval& r = rhs[j];
        auto dead = [&](size_t i) { return lhs[i].hi < r.lo; };
        start = lhs_hi_monotone ? Gallop(start, n, st, dead)
                                : LinearAdvance(start, n, st, dead);
        for (size_t i = start; i < n; ++i) {
          ++st.comparisons;
          if (lhs[i].lo > r.hi) break;
          if (lhs_hi_monotone || lhs[i].hi >= r.lo) do_emit(i, j);
        }
      }
      break;
    }

    case ListOp::kDuring: {
      // match: lhs.lo >= r.lo && lhs.hi <= r.hi.  The lo prefix below r.lo
      // is dead for every later probe; galloping is always sound on lo.
      size_t start = 0;
      for (size_t j = 0; j < rhs.size(); ++j) {
        const Interval& r = rhs[j];
        start =
            Gallop(start, n, st, [&](size_t i) { return lhs[i].lo < r.lo; });
        for (size_t i = start; i < n; ++i) {
          ++st.comparisons;
          if (lhs[i].lo > r.hi) break;
          if (lhs[i].hi <= r.hi) {
            do_emit(i, j);
          } else if (lhs_hi_monotone) {
            break;  // every later hi is at least as large
          }
        }
      }
      break;
    }

    case ListOp::kMeets: {
      // match: lhs.hi == r.lo (which forces lhs.lo <= r.lo).
      size_t start = 0;
      for (size_t j = 0; j < rhs.size(); ++j) {
        const Interval& r = rhs[j];
        auto dead = [&](size_t i) { return lhs[i].hi < r.lo; };
        start = lhs_hi_monotone ? Gallop(start, n, st, dead)
                                : LinearAdvance(start, n, st, dead);
        for (size_t i = start; i < n; ++i) {
          ++st.comparisons;
          if (lhs[i].lo > r.lo) break;
          if (lhs[i].hi == r.lo) {
            do_emit(i, j);
          } else if (lhs_hi_monotone && lhs[i].hi > r.lo) {
            break;
          }
        }
      }
      break;
    }

    case ListOp::kBefore: {
      // match: lhs.hi <= r.lo — each probe emits a prefix.  With monotone
      // upper endpoints the prefix boundary only moves forward, so it is
      // maintained by galloping; otherwise scan the lo-bounded prefix.
      size_t boundary = 0;  // monotone case: first index with hi > r.lo
      for (size_t j = 0; j < rhs.size(); ++j) {
        const Interval& r = rhs[j];
        if (lhs_hi_monotone) {
          boundary = Gallop(boundary, n, st,
                            [&](size_t i) { return lhs[i].hi <= r.lo; });
          for (size_t i = 0; i < boundary; ++i) do_emit(i, j);
        } else {
          for (size_t i = 0; i < n; ++i) {
            ++st.comparisons;
            if (lhs[i].lo > r.lo) break;
            if (lhs[i].hi <= r.lo) do_emit(i, j);
          }
        }
      }
      break;
    }

    case ListOp::kBeforeEq: {
      // match: lhs.lo <= r.lo && lhs.hi <= r.hi.  The lo boundary moves
      // forward monotonically (gallop); the hi filter is per-probe because
      // rhs upper endpoints carry no ordering guarantee.
      size_t lo_boundary = 0;  // first index with lo > r.lo
      for (size_t j = 0; j < rhs.size(); ++j) {
        const Interval& r = rhs[j];
        lo_boundary = Gallop(lo_boundary, n, st,
                             [&](size_t i) { return lhs[i].lo <= r.lo; });
        if (lhs_hi_monotone) {
          // Emit [0, min(lo_boundary, first hi > r.hi)).
          size_t hi_boundary =
              static_cast<size_t>(std::partition_point(
                                      lhs.begin(), lhs.begin() + lo_boundary,
                                      [&](const Interval& x) {
                                        ++st.comparisons;
                                        return x.hi <= r.hi;
                                      }) -
                                  lhs.begin());
          for (size_t i = 0; i < hi_boundary; ++i) do_emit(i, j);
        } else {
          for (size_t i = 0; i < lo_boundary; ++i) {
            ++st.comparisons;
            if (lhs[i].hi <= r.hi) do_emit(i, j);
          }
        }
      }
      break;
    }
  }

  Flush(st);
  return st;
}

SweepStats SweepSemiJoinOverlaps(IntervalSpan items,
                                 IntervalSpan against,
                                 const std::function<void(size_t)>& emit) {
  SweepStats st;
  const size_t m = against.size();
  size_t start = 0;
  for (size_t k = 0; k < items.size(); ++k) {
    const Interval& it = items[k];
    // against[start] with hi < it.lo can never overlap this or any later
    // item (item los are non-decreasing) — discard permanently.
    start = LinearAdvance(start, m, st,
                          [&](size_t x) { return against[x].hi < it.lo; });
    if (start >= m) break;
    // Here against[start].hi >= it.lo; overlap iff its lo is <= it.hi.  If
    // not, every later against starts even further right — no match.
    ++st.comparisons;
    if (against[start].lo <= it.hi) {
      ++st.emits;
      emit(k);
    }
  }
  Flush(st);
  return st;
}

std::vector<Interval> SweepUnion(IntervalSpan a,
                                 IntervalSpan b) {
  SweepStats st;
  std::vector<Interval> out;
  out.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  auto absorb = [&](const Interval& next) {
    ++st.comparisons;
    if (!out.empty() && next.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, next.hi);
    } else {
      ++st.emits;
      out.push_back(next);
    }
  };
  while (i < a.size() && j < b.size()) {
    ++st.comparisons;
    const bool take_a = a[i].lo != b[j].lo ? a[i].lo < b[j].lo
                                           : a[i].hi < b[j].hi;
    absorb(take_a ? a[i++] : b[j++]);
  }
  while (i < a.size()) absorb(a[i++]);
  while (j < b.size()) absorb(b[j++]);
  Flush(st);
  return out;
}

std::vector<Interval> SweepDifference(IntervalSpan a,
                                      IntervalSpan b) {
  SweepStats st;
  std::vector<Interval> out;
  // Subtrahend elements wholly before the current minuend never matter
  // again, so the scan start advances monotonically.  The uncovered
  // remainder of each minuend is tracked in offset space so that splits
  // across the skip-zero gap stay correct.
  size_t j_start = 0;
  for (const Interval& ai : a) {
    int64_t lo_off = PointToOffset(ai.lo);
    const int64_t hi_off = PointToOffset(ai.hi);
    bool consumed = false;
    j_start = LinearAdvance(j_start, b.size(), st, [&](size_t x) {
      return PointToOffset(b[x].hi) < lo_off;
    });
    for (size_t j = j_start; j < b.size(); ++j) {
      const int64_t blo = PointToOffset(b[j].lo);
      const int64_t bhi = PointToOffset(b[j].hi);
      ++st.comparisons;
      if (bhi < lo_off) continue;
      if (blo > hi_off) break;
      if (blo > lo_off) {
        ++st.emits;
        out.push_back(Interval{OffsetToPoint(lo_off), OffsetToPoint(blo - 1)});
      }
      lo_off = bhi + 1;
      if (lo_off > hi_off) {
        consumed = true;
        break;
      }
    }
    if (!consumed) {
      ++st.emits;
      out.push_back(Interval{OffsetToPoint(lo_off), OffsetToPoint(hi_off)});
    }
  }
  Flush(st);
  return out;
}

std::vector<Interval> SweepIntersect(IntervalSpan a,
                                     IntervalSpan b) {
  SweepStats st;
  std::vector<Interval> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++st.comparisons;
    if (std::optional<Interval> x = Intersect(a[i], b[j])) {
      ++st.emits;
      out.push_back(*x);
    }
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  Flush(st);
  return out;
}

std::vector<Interval> SweepGroup(IntervalSpan src,
                                 std::optional<TimePoint> te,
                                 const std::vector<int64_t>& groups) {
  SweepStats st;
  // Cutoff: the grouped prefix ends at the first interval past te.
  size_t limit = src.size();
  if (te.has_value()) {
    limit = LinearAdvance(0, src.size(), st,
                          [&](size_t i) { return src[i].hi <= *te; });
  }
  std::vector<Interval> out;
  size_t group_idx = 0;
  for (size_t i = 0; i < limit;) {
    const size_t want =
        static_cast<size_t>(groups[group_idx % groups.size()]);
    ++group_idx;
    const size_t take = std::min(want, limit - i);
    ++st.emits;
    out.push_back(Interval{src[i].lo, src[i + take - 1].hi});
    i += take;
  }
  Flush(st);
  return out;
}

namespace naive {

SweepStats Join(IntervalSpan lhs, ListOp op,
                IntervalSpan rhs, const SweepEmit& emit) {
  SweepStats st;
  for (size_t j = 0; j < rhs.size(); ++j) {
    for (size_t i = 0; i < lhs.size(); ++i) {
      ++st.comparisons;
      if (EvalListOp(op, lhs[i], rhs[j])) {
        ++st.emits;
        emit(i, j);
      }
    }
  }
  return st;
}

}  // namespace naive

}  // namespace caldb
